// Package femuxbench is the top-level benchmark harness: bench_test.go
// contains one testing.B benchmark per table and figure of the paper, each
// delegating to internal/experiments and reporting the reproduced headline
// numbers as custom benchmark metrics.
//
// Run the full harness with:
//
//	go test -bench=. -benchmem .
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-versus-measured results.
package femuxbench
