// Command femux-sim runs the paper's offline simulation experiments (§4.2
// and §5.1) end-to-end on a synthetic Azure-2019-shape fleet: the
// MAE-vs-RUM comparison (C1), per-class forecasting (Fig 8), temporal
// switching (Fig 9), the FaasCache / IceBreaker / Aquatope comparisons
// (Fig 11), multi-tier RUMs (Fig 12), the exec-aware RUM study (§5.1.3),
// and the sensitivity studies (Figs 17-18, block size, classifiers).
//
// Usage:
//
//	femux-sim -apps 60 -days 3 -exp all
//	femux-sim -exp fig11-faascache -apps 40
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"github.com/ubc-cirrus-lab/femux-go/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("femux-sim: ")
	var (
		apps       = flag.Int("apps", 48, "number of applications")
		days       = flag.Float64("days", 2, "trace length in days")
		seed       = flag.Int64("seed", 1, "generation seed")
		workers    = flag.Int("workers", 0, "worker goroutines for training and sweeps (0 = one per CPU)")
		exp        = flag.String("exp", "all", "experiment: c1, fig8, fig9, fig11-faascache, fig11-icebreaker, fig11-aquatope, fig12, s513, fig17, fig18, blocksize, classifiers, zoo, quantiles, drift, all")
		cacheDir   = flag.String("cache-dir", "", "spill the training cache to this directory so repeated runs warm-start (default: in-memory only)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("memprofile: %v", err)
			}
		}()
	}

	experiments.SetWorkers(*workers)
	if *cacheDir != "" {
		if err := experiments.SetCacheDir(*cacheDir); err != nil {
			log.Fatalf("cache-dir: %v", err)
		}
	}
	scale := experiments.Scale{Seed: *seed, Apps: *apps, Days: *days}
	all := experiments.AzureFleet(scale)
	train, test := experiments.SplitTrainTest(all, *seed+100)
	fmt.Printf("fleet: %d apps (%d train / %d test), %.0f days\n\n", len(all), len(train), len(test), *days)

	want := func(name string) bool {
		return *exp == "all" || strings.EqualFold(*exp, name)
	}
	fail := func(name string, err error) {
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}

	if want("c1") {
		fmt.Println("== C1 (§4.2.1): MAE vs RUM disagree ==")
		fmt.Println(experiments.C1(all))
		fmt.Println()
	}
	if want("fig8") {
		fmt.Println("== Fig 8: per-volume-class forecaster choice ==")
		fmt.Println(experiments.Fig8(all))
		fmt.Println()
	}
	if want("fig9") {
		fmt.Println("== Fig 9: forecaster suitability changes over time ==")
		fmt.Println(experiments.Fig9(*seed))
		fmt.Println()
	}
	if want("fig11-faascache") {
		fmt.Println("== Fig 11-Left: FeMux vs FaasCache ==")
		r, err := experiments.Fig11FaasCache(train, test, []float64{0.5, 1, 2, 4, 8})
		fail("fig11-faascache", err)
		fmt.Println(r)
		fmt.Println()
	}
	if want("fig11-icebreaker") {
		fmt.Println("== Fig 11-Middle: FeMux vs IceBreaker ==")
		r, err := experiments.Fig11IceBreaker(train, test)
		fail("fig11-icebreaker", err)
		fmt.Println(r)
		fmt.Println()
	}
	if want("fig11-aquatope") {
		fmt.Println("== Fig 11-Right: FeMux vs Aquatope ==")
		sub := test
		if len(sub) > 10 {
			sub = sub[:10] // per-app LSTM training dominates runtime
		}
		r, err := experiments.Fig11Aquatope(train, sub, 5)
		fail("fig11-aquatope", err)
		fmt.Println(r)
		fmt.Println()
	}
	if want("fig12") {
		fmt.Println("== Fig 12: multi-tier RUMs ==")
		r, err := experiments.Fig12(train, test)
		fail("fig12", err)
		fmt.Println(r)
		fmt.Println()
	}
	if want("s513") {
		fmt.Println("== §5.1.3: default vs exec-aware RUM ==")
		r, err := experiments.S513(train, test)
		fail("s513", err)
		fmt.Println(r)
		fmt.Println()
	}
	if want("fig17") {
		fmt.Println("== Fig 17: FeMux vs individual forecasters ==")
		r, err := experiments.Fig17(train, test)
		fail("fig17", err)
		fmt.Println(r)
	}
	if want("fig18") {
		fmt.Println("== Fig 18: feature ablation ==")
		r, err := experiments.Fig18(train, test)
		fail("fig18", err)
		fmt.Println(r)
	}
	if want("blocksize") {
		fmt.Println("== Appendix C: block-size sensitivity ==")
		r, err := experiments.BlockSize(train, test, []int{96, 144, 288, 432})
		fail("blocksize", err)
		fmt.Println(r)
	}
	if want("classifiers") {
		fmt.Println("== §4.3.4: K-means vs supervised classifiers ==")
		r, err := experiments.Classifiers(train, test)
		fail("classifiers", err)
		fmt.Println(r)
	}
	if want("zoo") {
		fmt.Println("== Policy zoo: every lifetime policy on one fleet ==")
		r, err := experiments.PolicyZoo(train, test)
		fail("zoo", err)
		fmt.Println(r)
	}
	if want("quantiles") {
		levels := experiments.DefaultQuantileLevels()
		fmt.Println("== Quantile sweep: cold-start-vs-waste frontier (Azure fleet) ==")
		r, err := experiments.QuantileSweep(train, test, levels)
		fail("quantiles", err)
		fmt.Println(r)
		fmt.Println("== Quantile sweep: sparse heavy-tailed fleet ==")
		sp := experiments.SparseFleet(scale)
		spTrain, spTest := experiments.SplitTrainTest(sp, *seed+200)
		rs, err := experiments.QuantileSweep(spTrain, spTest, levels)
		fail("quantiles", err)
		fmt.Println(rs)
	}

	if want("drift") {
		fmt.Println("== Regime change: static model vs retrain lifecycle ==")
		r, err := experiments.DriftStudy(scale, 6, 3)
		fail("drift", err)
		fmt.Println(r)
	}

	if st := experiments.CacheStats(); st.Hits+st.Misses > 0 {
		fmt.Printf("\ntraining cache: %d hits / %d misses (%.1f%% hit rate, %d from disk)\n",
			st.Hits, st.Misses, 100*st.HitRate(), st.DiskHits)
	}
}
