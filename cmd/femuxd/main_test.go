package main

import (
	"encoding/json"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/femux"
	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
	"github.com/ubc-cirrus-lab/femux-go/internal/knative"
	"github.com/ubc-cirrus-lab/femux-go/internal/lifecycle"
	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
	"github.com/ubc-cirrus-lab/femux-go/internal/serving"
	"github.com/ubc-cirrus-lab/femux-go/internal/timeseries"
)

func tinyModel(t testing.TB) *femux.Model {
	t.Helper()
	cfg := femux.DefaultConfig(rum.Default())
	cfg.BlockSize = 30
	cfg.Window = 30
	cfg.K = 3
	// Only registry forecasters: the round-trip test reloads by name.
	cfg.Forecasters = []forecast.Forecaster{
		forecast.NewFFT(10),
		forecast.NewExpSmoothing(),
		forecast.NewCeilPeak(10),
	}
	rng := rand.New(rand.NewSource(11))
	apps := make([]femux.TrainApp, 6)
	for i := range apps {
		vals := make([]float64, 120)
		for tt := range vals {
			if (tt+i)%8 < 2 {
				vals[tt] = 1 + rng.Float64()
			}
		}
		apps[i] = femux.TrainApp{Demand: timeseries.New(time.Minute, vals), ExecSec: 0.1, MemoryGB: 0.2}
	}
	m, err := femux.Train(apps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestModelSaveLoadRoundTrip is the regression test for the CLI
// save/load path (writeModel previously ignored the Close error, so a
// full disk could silently truncate the model file).
func TestModelSaveLoadRoundTrip(t *testing.T) {
	m := tinyModel(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := writeModel(path, m); err != nil {
		t.Fatalf("writeModel: %v", err)
	}
	got, err := loadModelFile(path)
	if err != nil {
		t.Fatalf("loadModelFile: %v", err)
	}
	if got.DefaultForecaster().Name() != m.DefaultForecaster().Name() {
		t.Errorf("default forecaster %q != %q",
			got.DefaultForecaster().Name(), m.DefaultForecaster().Name())
	}
	if got.Diag.Clusters != m.Diag.Clusters {
		t.Errorf("clusters %d != %d", got.Diag.Clusters, m.Diag.Clusters)
	}
	// Decisions must survive the round trip byte-for-byte.
	hist := []float64{0, 1, 2, 3, 2, 1, 0, 1, 2, 3}
	p1, p2 := m.NewAppPolicy(0), got.NewAppPolicy(0)
	for i := 1; i <= len(hist); i++ {
		if a, b := p1.Target(hist[:i], 1), p2.Target(hist[:i], 1); a != b {
			t.Fatalf("target diverged at step %d: %d != %d", i, a, b)
		}
	}
}

func TestWriteModelErrors(t *testing.T) {
	m := tinyModel(t)
	if err := writeModel(filepath.Join(t.TempDir(), "no", "such", "dir", "m.json"), m); err == nil {
		t.Error("writeModel into a missing directory should fail")
	}
	// Loading garbage fails cleanly.
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := writeModel(path, m); err != nil {
		t.Fatal(err)
	}
	if _, err := loadModelFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing file should fail")
	}
}

// TestHandlerAdminReload exercises the full production handler stack:
// metrics scrape, admin reload happy path, method guard, rebuild failure,
// and the busy guard against overlapping reloads.
func TestHandlerAdminReload(t *testing.T) {
	model := tinyModel(t)
	svc := knative.NewService(model)
	reg := serving.NewRegistry()
	reg.RegisterGoMetrics()
	svc.InstrumentWith(reg)

	next := tinyModel(t)
	block := make(chan struct{})
	var rebuildErr error
	rebuild := func() (*femux.Model, error) {
		<-block
		if rebuildErr != nil {
			return nil, rebuildErr
		}
		return next, nil
	}
	logger := log.New(io.Discard, "", 0)
	srv := httptest.NewServer(newHandler(svc, reg, rebuild, logger, 5*time.Second, nil, nil))
	defer srv.Close()

	// Wrong method.
	resp, err := http.Get(srv.URL + "/v1/admin/reload")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET reload = %d, want 405", resp.StatusCode)
	}

	// Overlapping reloads: the first blocks in rebuild, the second is
	// rejected with 409.
	first := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v1/admin/reload", "", nil)
		if err != nil {
			first <- nil
			return
		}
		first <- resp
	}()
	waitUntil(t, func() bool { return reloadBusy.Load() })
	resp, err = http.Post(srv.URL+"/v1/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("concurrent reload = %d, want 409", resp.StatusCode)
	}
	close(block)
	r1 := <-first
	if r1 == nil {
		t.Fatal("first reload request failed")
	}
	var rr reloadResponse
	if err := json.NewDecoder(r1.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	r1.Body.Close()
	if r1.StatusCode != http.StatusOK || rr.Reloads != 1 {
		t.Errorf("first reload: status=%d resp=%+v", r1.StatusCode, rr)
	}
	if svc.Model() != next {
		t.Error("model not swapped by admin reload")
	}

	// Rebuild failure surfaces as 500 and leaves the model untouched.
	rebuildErr = io.ErrUnexpectedEOF
	resp, err = http.Post(srv.URL+"/v1/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("failed reload = %d, want 500", resp.StatusCode)
	}
	if svc.Model() != next {
		t.Error("failed reload must not swap the model")
	}

	// The stack serves API traffic and reflects it in /metrics.
	resp, err = http.Post(srv.URL+"/v1/apps/demo/observe", "application/json",
		strings.NewReader(`{"concurrency": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe through stack = %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`femux_http_requests_total{endpoint="observe",method="POST",code="200"} 1`,
		`femux_observations_total{app="demo"} 1`,
		"femux_model_reloads_total 1",
		"go_goroutines",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// pprof index is mounted.
	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index = %d", resp.StatusCode)
	}
}

// TestHandlerAdminLifecycle covers the /v1/admin/lifecycle surface: 404
// while the lifecycle is disabled, GET status, POST as the synchronous
// cycle trigger, and the method guard.
func TestHandlerAdminLifecycle(t *testing.T) {
	model := tinyModel(t)
	svc := knative.NewService(model)
	reg := serving.NewRegistry()
	svc.InstrumentWith(reg)
	logger := log.New(io.Discard, "", 0)
	rebuild := func() (*femux.Model, error) { return model, nil }

	// Disabled (-retrain-every 0): the endpoint 404s.
	off := httptest.NewServer(newHandler(svc, reg, rebuild, logger, 5*time.Second, nil, nil))
	defer off.Close()
	resp, err := http.Get(off.URL + "/v1/admin/lifecycle")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled lifecycle GET = %d, want 404", resp.StatusCode)
	}

	lcm := lifecycle.New(svc, lifecycle.Config{DriftThreshold: 0, MinImprove: -100, Seed: 3})
	lcm.InstrumentWith(reg)
	srv := httptest.NewServer(newHandler(svc, reg, rebuild, logger, 5*time.Second, nil, lcm))
	defer srv.Close()

	// GET: status JSON, zero cycles so far.
	resp, err = http.Get(srv.URL + "/v1/admin/lifecycle")
	if err != nil {
		t.Fatal(err)
	}
	var st lifecycle.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.Cycles != 0 {
		t.Errorf("initial status: code=%d %+v", resp.StatusCode, st)
	}

	// POST triggers one synchronous cycle; an empty service has no data.
	resp, err = http.Post(srv.URL+"/v1/admin/lifecycle", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var res lifecycle.CycleResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || res.Outcome != lifecycle.OutcomeNoData {
		t.Errorf("empty-fleet cycle: code=%d outcome=%q", resp.StatusCode, res.Outcome)
	}

	// With real windows the POSTed cycle retrains and promotes.
	for _, app := range []string{"x", "y", "z"} {
		for i := 0; i < 120; i++ {
			c := "0"
			if i%8 < 2 {
				c = "2.5"
			}
			resp, err := http.Post(srv.URL+"/v1/apps/"+app+"/observe", "application/json",
				strings.NewReader(`{"concurrency": `+c+`}`))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
	}
	resp, err = http.Post(srv.URL+"/v1/admin/lifecycle", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if res.Outcome != lifecycle.OutcomePromoted {
		t.Errorf("cycle outcome = %q (err %q), want promoted", res.Outcome, res.Error)
	}
	if svc.Reloads() != 1 {
		t.Errorf("reloads = %d, want 1 after promotion", svc.Reloads())
	}

	// Method guard.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/admin/lifecycle", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE lifecycle = %d, want 405", resp.StatusCode)
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
