// Command femuxd runs the FeMux forecasting microservice (Fig 13): it
// trains a model (on a synthetic fleet by default, or on a CSV trace pair
// produced by tracegen) and serves the REST API that Knative's autoscaler
// integration queries for predictive scale targets.
//
// Usage:
//
//	femuxd -addr :8080
//	femuxd -addr :8080 -apps ibm_apps.csv -invocations ibm_invocations.csv
//
// Endpoints: POST /v1/apps/{app}/observe, GET /v1/apps/{app}/target,
// GET /v1/apps/{app}/forecast, GET /healthz.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/experiments"
	"github.com/ubc-cirrus-lab/femux-go/internal/femux"
	"github.com/ubc-cirrus-lab/femux-go/internal/knative"
	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
	"github.com/ubc-cirrus-lab/femux-go/internal/timeseries"
	"github.com/ubc-cirrus-lab/femux-go/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("femuxd: ")
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		appsCSV   = flag.String("apps", "", "apps CSV from tracegen (optional)")
		invCSV    = flag.String("invocations", "", "invocations CSV from tracegen (optional)")
		fleet     = flag.Int("fleet", 48, "synthetic training fleet size when no CSV is given")
		seed      = flag.Int64("seed", 1, "seed for synthetic training")
		blockMin  = flag.Int("block", 144, "block size in minutes")
		modelPath = flag.String("model", "", "load a trained model instead of training")
		savePath  = flag.String("save", "", "save the trained model to this path")
	)
	flag.Parse()

	var model *femux.Model
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		model, err = femux.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded model from %s", *modelPath)
	} else {
		var train []femux.TrainApp
		if *appsCSV != "" && *invCSV != "" {
			ds, err := loadDataset(*appsCSV, *invCSV)
			if err != nil {
				log.Fatal(err)
			}
			train = trainAppsFromDataset(ds)
			log.Printf("loaded %d apps from %s", len(train), *appsCSV)
		} else {
			train = experiments.AzureFleet(experiments.Scale{Seed: *seed, Apps: *fleet, Days: 2})
			log.Printf("training on synthetic fleet of %d apps", len(train))
		}
		cfg := femux.DefaultConfig(rum.Default())
		cfg.BlockSize = *blockMin
		cfg.Window = 120
		var err error
		model, err = femux.Train(train, cfg)
		if err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("model ready: %d clusters, default forecaster %s",
		model.Diag.Clusters, model.DefaultForecaster().Name())
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := model.Save(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		log.Printf("saved model to %s", *savePath)
	}

	svc := knative.NewService(model)
	server := &http.Server{
		Addr:         *addr,
		Handler:      svc.Handler(),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 10 * time.Second,
	}
	log.Printf("serving FeMux API on %s", *addr)
	if err := server.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}

func loadDataset(appsPath, invPath string) (*trace.Dataset, error) {
	af, err := os.Open(appsPath)
	if err != nil {
		return nil, err
	}
	defer af.Close()
	inf, err := os.Open(invPath)
	if err != nil {
		return nil, err
	}
	defer inf.Close()
	return trace.ReadDataset(af, inf, 62*24*time.Hour)
}

// trainAppsFromDataset converts millisecond events into per-minute average
// concurrency for training.
func trainAppsFromDataset(d *trace.Dataset) []femux.TrainApp {
	var maxEnd time.Duration
	for _, a := range d.Apps {
		for _, inv := range a.Invocations {
			if end := inv.Arrival + inv.Duration; end > maxEnd {
				maxEnd = end
			}
		}
	}
	minutes := int(maxEnd/time.Minute) + 1
	out := make([]femux.TrainApp, 0, len(d.Apps))
	for _, a := range d.Apps {
		spans := make([]timeseries.Interval, len(a.Invocations))
		counts := make([]float64, minutes)
		var execSum float64
		for i, inv := range a.Invocations {
			spans[i] = timeseries.Interval{Start: inv.Arrival, End: inv.Arrival + inv.Duration}
			m := int(inv.Arrival / time.Minute)
			if m >= 0 && m < minutes {
				counts[m]++
			}
			execSum += inv.Duration.Seconds()
		}
		exec := 0.0
		if len(a.Invocations) > 0 {
			exec = execSum / float64(len(a.Invocations))
		}
		out = append(out, femux.TrainApp{
			Name:            a.Name,
			Demand:          timeseries.AverageConcurrency(spans, time.Minute, minutes),
			Invocations:     counts,
			ExecSec:         exec,
			MemoryGB:        a.Config.MemoryGB,
			UnitConcurrency: a.Config.Concurrency,
		})
	}
	return out
}
