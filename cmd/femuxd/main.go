// Command femuxd runs the FeMux forecasting microservice (Fig 13): it
// trains a model (on a synthetic fleet by default, or on a CSV trace pair
// produced by tracegen) and serves the REST API that Knative's autoscaler
// integration queries for predictive scale targets.
//
// Usage:
//
//	femuxd -addr :8080
//	femuxd -addr :8080 -apps ibm_apps.csv -invocations ibm_invocations.csv
//	femuxd -addr :8080 -data-dir /var/lib/femux -fsync always
//	femuxd -addr :8081 -model shared/model.json -watch-model \
//	       -data-dir /var/lib/femux-0 -shards 2 -shard-id 0
//
// Endpoints: POST /v1/apps/{app}/observe, POST /v1/observe/batch,
// GET /v1/apps/{app}/target, GET /v1/apps/{app}/forecast, GET /healthz,
// GET /metrics (Prometheus text), POST /v1/admin/reload (hot-swap a
// retrained model; SIGHUP does the same), and /debug/pprof.
// SIGINT/SIGTERM drain in-flight requests before exiting.
//
// With -data-dir, every acknowledged observation is persisted through a
// CRC-framed write-ahead log before it is applied, and the per-app
// sliding windows are restored on boot — a restart or reload-from-disk
// loses no state. -max-hot-apps / -max-workspaces / -max-warm-apps bound
// the hot, workspace, and in-memory-window tiers so a million-app fleet
// serves in bounded RSS: the LRU excess is demoted to compact windows
// and, past the warm budget, paged to disk, then restored transparently
// (and bit-identically) on first touch. With -shards/-shard-id the instance owns only its
// FNV-1a hash partition of the apps (see cmd/femux-shard for the
// router), and -watch-model hot-reloads the -model file whenever it
// changes, so one retrain in a shared model directory propagates across
// the fleet.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/experiments"
	"github.com/ubc-cirrus-lab/femux-go/internal/femux"
	"github.com/ubc-cirrus-lab/femux-go/internal/knative"
	"github.com/ubc-cirrus-lab/femux-go/internal/lifecycle"
	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
	"github.com/ubc-cirrus-lab/femux-go/internal/serving"
	"github.com/ubc-cirrus-lab/femux-go/internal/store"
	"github.com/ubc-cirrus-lab/femux-go/internal/timeseries"
	"github.com/ubc-cirrus-lab/femux-go/internal/trace"
)

// buildOpts captures everything needed to (re)build the serving model, so
// startup, SIGHUP, and POST /v1/admin/reload share one code path.
type buildOpts struct {
	modelPath string // load a serialized model instead of training
	appsCSV   string
	invCSV    string
	fleet     int
	days      float64
	seed      int64
	blockMin  int
	window    int
	workers   int
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("femuxd: ")
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		appsCSV   = flag.String("apps", "", "apps CSV from tracegen (optional)")
		invCSV    = flag.String("invocations", "", "invocations CSV from tracegen (optional)")
		fleet     = flag.Int("fleet", 48, "synthetic training fleet size when no CSV is given")
		days      = flag.Float64("days", 2, "synthetic training trace length in days")
		seed      = flag.Int64("seed", 1, "seed for synthetic training")
		blockMin  = flag.Int("block", 144, "block size in minutes")
		workers   = flag.Int("workers", 0, "training worker goroutines (0 = one per CPU)")
		modelPath = flag.String("model", "", "load a trained model instead of training")
		savePath  = flag.String("save", "", "save the trained model to this path")

		reqTimeout      = flag.Duration("request-timeout", 10*time.Second, "per-request handler timeout on the API path")
		shutdownTimeout = flag.Duration("shutdown-timeout", 15*time.Second, "drain deadline on SIGINT/SIGTERM")

		dataDir       = flag.String("data-dir", "", "durable observation store directory (empty = in-memory only)")
		fsyncPolicy   = flag.String("fsync", "always", "WAL fsync policy: always, interval, or never")
		fsyncInterval = flag.Duration("fsync-interval", 100*time.Millisecond, "flush period for -fsync interval")
		compactEvery  = flag.Int("compact-every", 1<<16, "snapshot-compact the WAL after this many observations (-1 = never)")
		windowCap     = flag.Int("window-cap", 0, "per-app durable window cap in observations (0 = unlimited)")

		maxHotApps = flag.Int("max-hot-apps", 0,
			"apps with materialized serving state; LRU excess is demoted to compact windows (0 = unlimited)")
		maxWorkspaces = flag.Int("max-workspaces", 0,
			"apps holding forecast workspaces; LRU excess returns them to the shared pool (0 = unlimited)")
		maxWarmApps = flag.Int("max-warm-apps", 0,
			"apps with in-memory compact windows in the store; excess is paged to disk (0 = unlimited, requires -data-dir)")
		quantileLevel = flag.Float64("quantile-level", 0,
			"provision pod targets for this forecast quantile of demand (e.g. 0.95) instead of the point forecast (0 = off)")
		tierShards = flag.Int("tier-shards", 0,
			"shared-nothing stripes for the tier layer (app map, LRUs, budgets); 0 = one per CPU, 1 = unstriped")
		restoreAhead = flag.Duration("restore-ahead", 0,
			"prefetch period: forecast demoted apps and promote predicted-to-fire ones off the request path (0 = disabled)")
		restoreAheadLevel = flag.Float64("restore-ahead-level", knative.DefaultRestoreAheadLevel,
			"forecast quantile a demoted app must fire at to be prefetched")
		restoreAheadBudget = flag.Int("restore-ahead-budget", 0,
			"max promotions per prefetch cycle (0 = hot budget / 8, clamped to [1, 256])")

		shards     = flag.Int("shards", 1, "total femuxd instances in the fleet (hash-partitioned by app)")
		shardID    = flag.Int("shard-id", 0, "this instance's shard index in [0, shards)")
		watchModel = flag.Bool("watch-model", false, "poll the -model file and hot-reload when it changes")
		watchEvery = flag.Duration("watch-interval", 2*time.Second, "poll period for -watch-model")

		replicaOf    = flag.String("replica-of", "", "primary femuxd base URL: start as a gated replica tailing its WAL (requires -data-dir)")
		replInterval = flag.Duration("repl-interval", 100*time.Millisecond, "replication poll period when caught up")
		joining      = flag.Bool("joining", false, "start as a reshard-joining shard: serve only migrated-in apps until the reshard's epoch bump")

		retrainEvery = flag.Duration("retrain-every", 0,
			"run a drift-aware retrain cycle this often: retrain on recent windows, shadow-evaluate, auto-promote winners (0 = disabled)")
		driftThreshold = flag.Float64("drift-threshold", 0.5,
			"minimum per-app drift score before a retrain cycle trains a candidate (0 = retrain every cycle)")
		shadowWindow = flag.Int("shadow-window", 0,
			"trailing observations per app used for retraining and shadow evaluation (0 = full window)")
		minImprove = flag.Float64("min-improve", 0.01,
			"fractional shadow-RUM improvement a candidate needs to be auto-promoted")
		promoteSave = flag.String("promote-save", "",
			"write auto-promoted models to this path (atomic rename; feeds -watch-model fleets)")
	)
	flag.Parse()
	if *shards < 1 || *shardID < 0 || *shardID >= *shards {
		log.Fatalf("invalid shard config: -shard-id %d must be in [0, %d)", *shardID, *shards)
	}
	if *watchModel && *modelPath == "" {
		log.Fatal("-watch-model requires -model")
	}
	if *replicaOf != "" && *dataDir == "" {
		log.Fatal("-replica-of requires -data-dir (the replicated WAL needs somewhere to live)")
	}

	opts := buildOpts{
		modelPath: *modelPath, appsCSV: *appsCSV, invCSV: *invCSV,
		fleet: *fleet, days: *days, seed: *seed, blockMin: *blockMin,
		window: 120, workers: *workers,
	}
	model, err := buildModel(opts)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("model ready: %d clusters, default forecaster %s",
		model.Diag.Clusters, model.DefaultForecaster().Name())
	if *savePath != "" {
		if err := writeModel(*savePath, model); err != nil {
			log.Fatal(err)
		}
		log.Printf("saved model to %s", *savePath)
	}

	var st *store.Store
	if *dataDir != "" {
		pol, err := store.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			log.Fatal(err)
		}
		st, err = store.Open(*dataDir, store.Options{
			Sync:         pol,
			SyncInterval: *fsyncInterval,
			WindowCap:    *windowCap,
			CompactEvery: *compactEvery,
			InlineBudget: *maxWarmApps,
		})
		if err != nil {
			log.Fatal(err)
		}
		stats := st.Stats()
		log.Printf("durable store %s: restored %d observations across %d apps (fsync=%s)",
			*dataDir, stats.Restored, stats.Apps, pol)
		if stats.TornTail {
			log.Printf("durable store: truncated a torn WAL tail (crash recovery)")
		}
	}

	if *maxWarmApps > 0 && st == nil {
		log.Fatal("-max-warm-apps requires -data-dir (paging needs a store)")
	}
	if *quantileLevel < 0 || *quantileLevel >= 1 {
		log.Fatalf("-quantile-level must be in [0, 1), got %g", *quantileLevel)
	}
	if *tierShards < 0 {
		log.Fatalf("-tier-shards must be >= 0, got %d", *tierShards)
	}
	if *restoreAheadLevel <= 0 || *restoreAheadLevel >= 1 {
		log.Fatalf("-restore-ahead-level must be in (0, 1), got %g", *restoreAheadLevel)
	}
	svc := knative.NewServiceWith(model, knative.ServiceOptions{
		Store: st, ShardID: *shardID, Shards: *shards,
		Replica: *replicaOf != "", Joining: *joining,
		MaxHotApps: *maxHotApps, MaxWorkspaces: *maxWorkspaces,
		TierShards:    *tierShards,
		QuantileLevel: *quantileLevel,
	})
	if *quantileLevel > 0 {
		log.Printf("SLO-aware provisioning: pod targets use the p%g demand quantile", *quantileLevel*100)
	}
	if svc.Stripes() > 1 {
		log.Printf("tier layer striped %d ways (shared-nothing; -tier-shards)", svc.Stripes())
	}
	reg := serving.NewRegistry()
	reg.RegisterGoMetrics()
	svc.InstrumentWith(reg)
	if st != nil {
		registerStoreMetrics(reg, st)
	}

	var repl *knative.Replicator
	if *replicaOf != "" {
		repl = knative.NewReplicator(st, strings.TrimRight(*replicaOf, "/"),
			&http.Client{Timeout: 5 * time.Second})
		repl.Interval = *replInterval
		repl.InstrumentWith(reg)
		repl.Start()
		log.Printf("replica: tailing %s every %s (serving gated until promotion)", *replicaOf, *replInterval)
	}
	if *shards > 1 {
		shardInfo := reg.NewGauge("femux_shard_info",
			"Constant 1, labeled with this instance's shard assignment.",
			"shard", "shards")
		shardInfo.Set(1, fmt.Sprint(*shardID), fmt.Sprint(*shards))
		log.Printf("serving shard %d of %d (FNV-1a partition by app)", *shardID, *shards)
	}

	var lcm *lifecycle.Manager
	if *retrainEvery > 0 {
		lcm = lifecycle.New(svc, lifecycle.Config{
			RetrainEvery:   *retrainEvery,
			DriftThreshold: *driftThreshold,
			ShadowWindow:   *shadowWindow,
			MinImprove:     *minImprove,
			Workers:        *workers,
			Seed:           *seed,
			SaveTo:         *promoteSave,
			Logf:           log.Printf,
		})
		lcm.InstrumentWith(reg)
		lcm.Start()
		log.Printf("lifecycle: retraining every %s (drift threshold %g, shadow window %d, min improvement %g)",
			*retrainEvery, *driftThreshold, *shadowWindow, *minImprove)
	}

	reload := func() (*femux.Model, error) { return buildModel(opts) }
	handler := newHandler(svc, reg, reload, log.Default(), *reqTimeout, repl, lcm)

	server := &http.Server{
		Addr:         *addr,
		Handler:      handler,
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 0, // per-route deadlines come from http.TimeoutHandler
	}

	stop := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	go func() {
		for sig := range sigc {
			if sig == syscall.SIGHUP {
				log.Printf("SIGHUP: reloading model")
				go func() {
					if err := reloadAndSwap(svc, reload); err != nil {
						log.Printf("reload failed: %v", err)
					} else {
						log.Printf("reload complete: %d total", svc.Reloads())
					}
				}()
				continue
			}
			log.Printf("received %s", sig)
			close(stop)
			return
		}
	}()

	if *restoreAhead > 0 {
		log.Printf("restore-ahead: prefetching every %s at the p%g forecast quantile",
			*restoreAhead, *restoreAheadLevel*100)
		go func() {
			t := time.NewTicker(*restoreAhead)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					scanned, promoted := svc.RestoreAheadCycle(*restoreAheadLevel, *restoreAheadBudget)
					if promoted > 0 {
						log.Printf("restore-ahead: promoted %d of %d scanned apps", promoted, scanned)
					}
				}
			}
		}()
	}

	if *watchModel {
		go watchModelFile(*modelPath, *watchEvery, stop, func() {
			if err := reloadAndSwap(svc, reload); err != nil {
				log.Printf("model watch: reload failed: %v", err)
			} else {
				log.Printf("model watch: %s changed, reloaded (%d total)", *modelPath, svc.Reloads())
			}
		})
	}

	log.Printf("serving FeMux API on %s", *addr)
	err = serving.Run(server, stop, *shutdownTimeout, log.Printf)
	if lcm != nil {
		lcm.Stop()
	}
	if repl != nil {
		repl.Stop()
	}
	if st != nil {
		if cerr := st.Close(); cerr != nil {
			log.Printf("closing durable store: %v", cerr)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
}

// registerStoreMetrics exposes the durable store's state. The counters
// are derived from on-disk state, so femux_store_observations survives
// SIGKILL and restart — the CI crash smoke test cross-checks it against
// the number of replayed observations.
func registerStoreMetrics(reg *serving.Registry, st *store.Store) {
	reg.NewGaugeFunc("femux_store_observations",
		"Lifetime observations in the durable store (restored + appended).",
		func() float64 { return float64(st.TotalObservations()) })
	reg.NewGaugeFunc("femux_store_apps",
		"Applications with durable observation history.",
		func() float64 { return float64(st.Apps()) })
	reg.NewGaugeFunc("femux_store_wal_bytes",
		"Bytes across live WAL segments.",
		func() float64 { return float64(st.Stats().WALBytes) })
	reg.NewGaugeFunc("femux_store_wal_segments",
		"Live WAL segment files.",
		func() float64 { return float64(st.Stats().Segments) })
	reg.NewCounterFunc("femux_store_fsyncs_total",
		"WAL fsyncs since process start.",
		func() float64 { return float64(st.Stats().Fsyncs) })
	reg.NewGaugeFunc("femux_store_paged_apps",
		"Cold apps whose window is paged to disk.",
		func() float64 { return float64(st.PagedApps()) })
	reg.NewGaugeFunc("femux_store_page_bytes",
		"Bytes across live page files.",
		func() float64 { return float64(st.Stats().PageBytes) })
	reg.NewGaugeFunc("femux_store_window_bytes",
		"Heap bytes retained by in-memory compact windows.",
		func() float64 { return float64(st.Stats().WindowBytes) })
	reg.NewCounterFunc("femux_store_page_outs_total",
		"Lifetime warm-to-cold demotions (windows paged to disk).",
		func() float64 { return float64(st.Stats().PageOuts) })
	reg.NewCounterFunc("femux_store_page_errors_total",
		"Page-in failures (window lost, durable total conserved).",
		func() float64 { return float64(st.Stats().PageErrors) })
}

// watchModelFile polls path and fires onChange whenever its (mtime, size)
// pair moves — the shared-model-directory hot-reload path: the offline
// trainer writes a retrained model into the directory every instance
// watches, and the whole fleet picks it up without being touched.
// Polling (rather than inotify) keeps it dependency-free and works on
// network filesystems; transient stat errors (the trainer's atomic
// rename window) are skipped.
func watchModelFile(path string, every time.Duration, stop <-chan struct{}, onChange func()) {
	var lastMod time.Time
	var lastSize int64
	if fi, err := os.Stat(path); err == nil {
		lastMod, lastSize = fi.ModTime(), fi.Size()
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			fi, err := os.Stat(path)
			if err != nil {
				continue
			}
			if fi.ModTime().Equal(lastMod) && fi.Size() == lastSize {
				continue
			}
			lastMod, lastSize = fi.ModTime(), fi.Size()
			onChange()
		}
	}
}

// buildModel loads or trains the serving model according to opts.
func buildModel(opts buildOpts) (*femux.Model, error) {
	if opts.modelPath != "" {
		m, err := loadModelFile(opts.modelPath)
		if err != nil {
			return nil, err
		}
		log.Printf("loaded model from %s", opts.modelPath)
		return m, nil
	}
	var train []femux.TrainApp
	if opts.appsCSV != "" && opts.invCSV != "" {
		ds, err := loadDataset(opts.appsCSV, opts.invCSV)
		if err != nil {
			return nil, err
		}
		train = trainAppsFromDataset(ds)
		log.Printf("loaded %d apps from %s", len(train), opts.appsCSV)
	} else {
		train = experiments.AzureFleet(experiments.Scale{Seed: opts.seed, Apps: opts.fleet, Days: opts.days})
		log.Printf("training on synthetic fleet of %d apps", len(train))
	}
	cfg := femux.DefaultConfig(rum.Default())
	cfg.BlockSize = opts.blockMin
	cfg.Window = opts.window
	cfg.Workers = opts.workers
	return femux.Train(train, cfg)
}

// loadModelFile reads a model serialized by femux.Model.Save.
func loadModelFile(path string) (*femux.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return femux.Load(f)
}

// writeModel saves the model, reporting Close errors: on a full disk the
// final flush is what fails, and ignoring it would ship a truncated model.
func writeModel(path string, m *femux.Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("femuxd: closing %s: %w", path, err)
	}
	return nil
}

// reloadState serializes hot reloads: a second reload while one is in
// flight is rejected rather than queued (the newest model wins anyway).
var reloadBusy atomic.Bool

// reloadAndSwap rebuilds the model and atomically swaps it into the
// service. In-flight requests keep the old model until they finish.
func reloadAndSwap(svc *knative.Service, rebuild func() (*femux.Model, error)) error {
	if !reloadBusy.CompareAndSwap(false, true) {
		return fmt.Errorf("reload already in progress")
	}
	defer reloadBusy.Store(false)
	m, err := rebuild()
	if err != nil {
		return err
	}
	svc.SwapModel(m)
	return nil
}

// reloadResponse is the admin reload reply.
type reloadResponse struct {
	Reloads           int    `json:"reloads"`
	DefaultForecaster string `json:"defaultForecaster"`
	Clusters          int    `json:"clusters"`
	DurationMs        int64  `json:"durationMs"`
}

// newHandler assembles the production middleware stack:
//
//	logging -> instrumentation -> { API (timeout-bounded), /metrics,
//	                               /v1/admin/reload, /debug/pprof }
//
// The admin reload and pprof routes sit outside the request timeout:
// retraining and CPU profiles legitimately run for longer than an API
// request is allowed to.
func newHandler(svc *knative.Service, reg *serving.Registry, rebuild func() (*femux.Model, error), logger *log.Logger, timeout time.Duration, repl *knative.Replicator, lcm *lifecycle.Manager) http.Handler {
	var api http.Handler = svc.Handler()
	if timeout > 0 {
		api = http.TimeoutHandler(api, timeout, "request timed out\n")
	}

	root := http.NewServeMux()
	root.Handle("/", api)
	root.Handle("/metrics", reg.Handler())
	if repl != nil {
		// Shadow the service's promote route so the replication pull loop
		// is fully stopped BEFORE the serving gate drops — a promoted
		// instance must never interleave replicated chunks with the direct
		// writes it now accepts.
		root.HandleFunc("/v1/admin/promote", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "promote requires POST", http.StatusMethodNotAllowed)
				return
			}
			repl.Stop()
			apps := svc.Promote()
			logger.Printf("promoted to primary: serving %d apps", apps)
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(struct {
				Apps       int `json:"apps"`
				Promotions int `json:"promotions"`
			}{apps, svc.Promotions()})
		})
	}
	root.HandleFunc("/v1/admin/reload", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "reload requires POST", http.StatusMethodNotAllowed)
			return
		}
		start := time.Now()
		if err := reloadAndSwap(svc, rebuild); err != nil {
			status := http.StatusInternalServerError
			if err.Error() == "reload already in progress" {
				status = http.StatusConflict
			}
			http.Error(w, err.Error(), status)
			return
		}
		m := svc.Model()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(reloadResponse{
			Reloads:           svc.Reloads(),
			DefaultForecaster: m.DefaultForecaster().Name(),
			Clusters:          m.Diag.Clusters,
			DurationMs:        time.Since(start).Milliseconds(),
		})
	})
	// Lifecycle admin: GET reports status, POST triggers one synchronous
	// retrain cycle (the same injectable trigger the ticker and the tests
	// use). Outside the request timeout: a cycle legitimately retrains.
	root.HandleFunc("/v1/admin/lifecycle", func(w http.ResponseWriter, r *http.Request) {
		if lcm == nil {
			http.Error(w, "lifecycle disabled (-retrain-every 0)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		switch r.Method {
		case http.MethodGet:
			json.NewEncoder(w).Encode(lcm.Status())
		case http.MethodPost:
			res := lcm.RunCycle()
			logger.Printf("lifecycle: admin-triggered cycle: %s", res.Outcome)
			json.NewEncoder(w).Encode(res)
		default:
			http.Error(w, "lifecycle requires GET or POST", http.StatusMethodNotAllowed)
		}
	})
	root.HandleFunc("/debug/pprof/", pprof.Index)
	root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	root.HandleFunc("/debug/pprof/profile", pprof.Profile)
	root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	root.HandleFunc("/debug/pprof/trace", pprof.Trace)

	hm := serving.NewHTTPMetrics(reg)
	return serving.LogRequests(logger, hm.Instrument(root))
}

func loadDataset(appsPath, invPath string) (*trace.Dataset, error) {
	af, err := os.Open(appsPath)
	if err != nil {
		return nil, err
	}
	defer af.Close()
	inf, err := os.Open(invPath)
	if err != nil {
		return nil, err
	}
	defer inf.Close()
	return trace.ReadDataset(af, inf, 62*24*time.Hour)
}

// trainAppsFromDataset converts millisecond events into per-minute average
// concurrency for training.
func trainAppsFromDataset(d *trace.Dataset) []femux.TrainApp {
	var maxEnd time.Duration
	for _, a := range d.Apps {
		for _, inv := range a.Invocations {
			if end := inv.Arrival + inv.Duration; end > maxEnd {
				maxEnd = end
			}
		}
	}
	minutes := int(maxEnd/time.Minute) + 1
	out := make([]femux.TrainApp, 0, len(d.Apps))
	for _, a := range d.Apps {
		spans := make([]timeseries.Interval, len(a.Invocations))
		counts := make([]float64, minutes)
		var execSum float64
		for i, inv := range a.Invocations {
			spans[i] = timeseries.Interval{Start: inv.Arrival, End: inv.Arrival + inv.Duration}
			m := int(inv.Arrival / time.Minute)
			if m >= 0 && m < minutes {
				counts[m]++
			}
			execSum += inv.Duration.Seconds()
		}
		exec := 0.0
		if len(a.Invocations) > 0 {
			exec = execSum / float64(len(a.Invocations))
		}
		out = append(out, femux.TrainApp{
			Name:            a.Name,
			Demand:          timeseries.AverageConcurrency(spans, time.Minute, minutes),
			Invocations:     counts,
			ExecSec:         exec,
			MemoryGB:        a.Config.MemoryGB,
			UnitConcurrency: a.Config.Concurrency,
		})
	}
	return out
}
