package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/knative"
)

// TestFemuxdSigtermRestartBitIdentical is the process-level
// zero-state-loss test: a real femuxd binary is fed half a replay,
// SIGTERMed, restarted from the same -data-dir, fed the rest, and every
// forecast it then serves must be bit-for-bit what an uninterrupted
// in-process service computes over the same stream. Skipped with -short
// (it compiles the binary); the nightly full tier runs it.
func TestFemuxdSigtermRestartBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the femuxd binary; skipped in -short")
	}
	bin := buildFemuxd(t)

	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.json")
	dataDir := filepath.Join(dir, "data")
	model := tinyModel(t)
	if err := writeModel(modelPath, model); err != nil {
		t.Fatal(err)
	}

	apps := []string{"pay", "auth", "feed"}
	feed := func(baseURL string, from, to int) {
		t.Helper()
		for m := from; m < to; m++ {
			obs := make([]knative.BatchObservation, len(apps))
			for i, app := range apps {
				obs[i] = knative.BatchObservation{App: app, Concurrency: float64((m*5+i)%7) + 0.5}
			}
			body, err := json.Marshal(knative.BatchObserveRequest{Observations: obs})
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(baseURL+"/v1/observe/batch", "application/json",
				strings.NewReader(string(body)))
			if err != nil {
				t.Fatalf("minute %d: %v", m, err)
			}
			var out knative.BatchObserveResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || out.Rejected != 0 {
				t.Fatalf("minute %d: status=%d rejected=%d", m, resp.StatusCode, out.Rejected)
			}
		}
	}

	const half, total = 20, 40

	// Uninterrupted control over the identical model and stream.
	ctl := httptest.NewServer(knative.NewService(model).Handler())
	defer ctl.Close()
	feed(ctl.URL, 0, total)

	// First femuxd process: half the replay, then SIGTERM.
	addr := freeAddr(t)
	proc1 := startFemuxd(t, bin, addr, modelPath, dataDir)
	feed("http://"+addr, 0, half)
	if err := proc1.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := proc1.Wait(); err != nil {
		t.Fatalf("femuxd did not exit cleanly on SIGTERM: %v", err)
	}

	// Second process, same data dir: must restore and resume.
	proc2 := startFemuxd(t, bin, addr, modelPath, dataDir)
	defer func() {
		proc2.Process.Signal(syscall.SIGTERM)
		proc2.Wait()
	}()
	feed("http://"+addr, half, total)

	// The restored instance's durable counter covers the whole stream.
	scrape := httpGet(t, "http://"+addr+"/metrics")
	wantObs := fmt.Sprintf("femux_store_observations %d", total*len(apps))
	if !strings.Contains(scrape, wantObs) {
		t.Errorf("metrics missing %q after restart", wantObs)
	}

	for _, app := range apps {
		var want, got knative.TargetResponse
		mustGetJSON(t, ctl.URL+"/v1/apps/"+app+"/target?concurrency=1", &want)
		mustGetJSON(t, "http://"+addr+"/v1/apps/"+app+"/target?concurrency=1", &got)
		if want != got {
			t.Errorf("%s: target %+v (uninterrupted) != %+v (restarted binary)", app, want, got)
		}
		var wantF, gotF knative.ForecastResponse
		mustGetJSON(t, ctl.URL+"/v1/apps/"+app+"/forecast?horizon=6", &wantF)
		mustGetJSON(t, "http://"+addr+"/v1/apps/"+app+"/forecast?horizon=6", &gotF)
		if len(wantF.Values) != len(gotF.Values) {
			t.Fatalf("%s: forecast lengths differ", app)
		}
		for i := range wantF.Values {
			if math.Float64bits(wantF.Values[i]) != math.Float64bits(gotF.Values[i]) {
				t.Errorf("%s: forecast[%d] %v != %v (not bit-identical)",
					app, i, wantF.Values[i], gotF.Values[i])
			}
		}
	}
}

func buildFemuxd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "femuxd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building femuxd: %v\n%s", err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func startFemuxd(t *testing.T, bin, addr, modelPath, dataDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addr,
		"-model", modelPath,
		"-data-dir", dataDir,
		"-fsync", "always",
		"-shutdown-timeout", "10s",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("femuxd never became healthy")
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return b.String()
}

func mustGetJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}
