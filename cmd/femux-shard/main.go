// Command femux-shard routes FeMux API traffic across a sharded femuxd
// fleet. Each femuxd instance owns an FNV-1a hash partition of the apps
// (femuxd -shards N -shard-id I); the router forwards per-app requests to
// the owning instance, splits /v1/observe/batch bodies into per-shard
// sub-batches posted concurrently, and fans /v1/admin/reload out to every
// instance so a retrained model in a shared directory goes live
// fleet-wide.
//
// Usage:
//
//	femux-shard -addr :8080 \
//	    -backends http://127.0.0.1:9090,http://127.0.0.1:9091
//
// The backend order defines the shard numbering and must match each
// instance's -shard-id; /healthz reports healthy only when every shard
// is. /metrics exposes the router's per-shard routing counters.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/knative"
	"github.com/ubc-cirrus-lab/femux-go/internal/serving"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("femux-shard: ")
	var (
		addr            = flag.String("addr", ":8080", "listen address")
		backends        = flag.String("backends", "", "comma-separated femuxd base URLs, in shard order")
		timeout         = flag.Duration("timeout", 10*time.Second, "per-backend request timeout")
		shutdownTimeout = flag.Duration("shutdown-timeout", 15*time.Second, "drain deadline on SIGINT/SIGTERM")
	)
	flag.Parse()

	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, b)
		}
	}
	rt, err := knative.NewShardRouter(urls, &http.Client{Timeout: *timeout})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("routing %d shards: %s", rt.Shards(), strings.Join(urls, ", "))

	server := &http.Server{
		Addr:        *addr,
		Handler:     serving.LogRequests(log.Default(), rt.Handler()),
		ReadTimeout: 10 * time.Second,
	}
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("received %s", sig)
		close(stop)
	}()

	log.Printf("serving shard router on %s", *addr)
	if err := serving.Run(server, stop, *shutdownTimeout, log.Printf); err != nil {
		log.Fatal(err)
	}
}
