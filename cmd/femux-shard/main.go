// Command femux-shard routes FeMux API traffic across a sharded femuxd
// fleet. Each femuxd instance owns an FNV-1a hash partition of the apps
// (femuxd -shards N -shard-id I); the router forwards per-app requests to
// the owning instance, splits /v1/observe/batch bodies into per-shard
// sub-batches posted concurrently, and fans /v1/admin/reload out to every
// instance so a retrained model in a shared directory goes live
// fleet-wide.
//
// Each -backends entry is one shard's backend GROUP: a primary
// optionally followed by '|'-separated replicas started with
// femuxd -replica-of. The router health-checks every shard's active
// backend and, after -health-fails consecutive failures, promotes the
// next backend in the group (POST /v1/admin/promote) and fails traffic
// over — no client ever needs to know which backend is serving. It is
// also the resharding coordinator: POST /v1/admin/reshard
// {"add": "url[|url...]"} migrates each moving app's history to the
// joining shard and bumps the fleet-wide ownership epoch, growing the
// fleet N -> N+1 under live traffic.
//
// Usage:
//
//	femux-shard -addr :8080 \
//	    -backends 'http://127.0.0.1:9090|http://127.0.0.1:9190,http://127.0.0.1:9091'
//
// The backend-group order defines the shard numbering and must match
// each instance's -shard-id; /healthz reports healthy only when every
// shard's active backend is. /metrics exposes the router's per-shard
// routing, promotion, and reshard counters.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/knative"
	"github.com/ubc-cirrus-lab/femux-go/internal/serving"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("femux-shard: ")
	var (
		addr            = flag.String("addr", ":8080", "listen address")
		backends        = flag.String("backends", "", "comma-separated backend groups in shard order; each group is 'primary[|replica...]'")
		timeout         = flag.Duration("timeout", 10*time.Second, "per-backend request timeout")
		shutdownTimeout = flag.Duration("shutdown-timeout", 15*time.Second, "drain deadline on SIGINT/SIGTERM")
		healthEvery     = flag.Duration("health-interval", 500*time.Millisecond, "active-backend health-check period (0 disables the failover loop)")
		healthFails     = flag.Int("health-fails", 3, "consecutive health-check failures before promoting the next backend")
	)
	flag.Parse()

	var groups []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			groups = append(groups, b)
		}
	}
	rt, err := knative.NewShardRouter(groups, &http.Client{Timeout: *timeout})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("routing %d shards: %s", rt.Shards(), strings.Join(groups, ", "))

	var stopHealth func()
	if *healthEvery > 0 {
		stopHealth = rt.StartHealthLoop(*healthEvery, *healthFails)
		log.Printf("failover loop: checking active backends every %s, promoting after %d failures",
			*healthEvery, *healthFails)
	}

	server := &http.Server{
		Addr:        *addr,
		Handler:     serving.LogRequests(log.Default(), rt.Handler()),
		ReadTimeout: 10 * time.Second,
	}
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("received %s", sig)
		close(stop)
	}()

	log.Printf("serving shard router on %s", *addr)
	err = serving.Run(server, stop, *shutdownTimeout, log.Printf)
	if stopHealth != nil {
		stopHealth()
	}
	if err != nil {
		log.Fatal(err)
	}
}
