// Command tracegen synthesizes serverless trace datasets in the shape of
// the paper's IBM production trace (millisecond invocation events plus full
// §3.4 configurations) or the Azure 2019 dataset (per-minute counts), and
// writes them as CSV.
//
// Usage:
//
//	tracegen -dataset ibm -apps 200 -days 7 -seed 1 -out ./data
//	tracegen -dataset azure -apps 150 -days 12 -seed 2 -out ./data
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"github.com/ubc-cirrus-lab/femux-go/internal/memo"
	"github.com/ubc-cirrus-lab/femux-go/internal/trace"
)

// genCache, when -cache-dir is set, memoizes generated datasets by a hash
// of the generation config: regenerating the same (dataset, apps, days,
// seed) loads the synthesized fleet from disk instead of re-running the
// per-app synthesis. Workers is excluded from the keys — output is
// seed-determined, not worker-determined.
var genCache *memo.Cache

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		dataset  = flag.String("dataset", "ibm", "dataset shape: ibm or azure")
		apps     = flag.Int("apps", 120, "number of applications")
		days     = flag.Float64("days", 2, "trace length in days")
		seed     = flag.Int64("seed", 1, "generation seed")
		workers  = flag.Int("workers", 0, "worker goroutines for per-app synthesis (0 = one per CPU; output is seed-determined, not worker-determined)")
		out      = flag.String("out", ".", "output directory")
		cacheDir = flag.String("cache-dir", "", "cache generated datasets in this directory, keyed by generation config")
	)
	flag.Parse()

	if *cacheDir != "" {
		c, err := memo.NewDisk(*cacheDir)
		if err != nil {
			log.Fatalf("cache-dir: %v", err)
		}
		genCache = c
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	switch *dataset {
	case "ibm":
		if err := writeIBM(*out, *apps, *days, *seed, *workers); err != nil {
			log.Fatal(err)
		}
	case "azure":
		if err := writeAzure(*out, *apps, int(*days), *seed, *workers); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown dataset %q (want ibm or azure)", *dataset)
	}
	if st := genCache.Stats(); st.Hits+st.Misses > 0 {
		fmt.Printf("generation cache: %d hits / %d misses (%d from disk)\n",
			st.Hits, st.Misses, st.DiskHits)
	}
}

func writeIBM(dir string, apps int, days float64, seed int64, workers int) error {
	cfg := trace.IBMGenConfig{Seed: seed, Apps: apps, Days: days, TrafficScale: 1, Workers: workers}
	h := memo.NewHasher("tracegen/ibm/v1")
	h.Int(cfg.Seed)
	h.Int(int64(cfg.Apps))
	h.Float(cfg.Days)
	h.Float(cfg.TrafficScale)
	d := memo.Do(genCache, h.Sum(), func() *trace.Dataset {
		return trace.GenerateIBM(cfg)
	})
	appsF, err := os.Create(filepath.Join(dir, "ibm_apps.csv"))
	if err != nil {
		return err
	}
	defer appsF.Close()
	if err := trace.WriteApps(appsF, d); err != nil {
		return err
	}
	invF, err := os.Create(filepath.Join(dir, "ibm_invocations.csv"))
	if err != nil {
		return err
	}
	defer invF.Close()
	if err := trace.WriteInvocations(invF, d); err != nil {
		return err
	}
	fmt.Printf("ibm dataset: %d apps, %.1f days, %d invocations -> %s\n",
		len(d.Apps), days, d.TotalInvocations(), dir)
	return nil
}

func writeAzure(dir string, apps, days int, seed int64, workers int) error {
	cfg := trace.AzureGenConfig{Seed: seed, Apps: apps, Days: days, Workers: workers}
	h := memo.NewHasher("tracegen/azure/v1")
	h.Int(cfg.Seed)
	h.Int(int64(cfg.Apps))
	h.Int(int64(cfg.Days))
	h.Floats(cfg.ClassShares[:])
	d := memo.Do(genCache, h.Sum(), func() *trace.AzureDataset {
		return trace.GenerateAzure(cfg)
	})
	f, err := os.Create(filepath.Join(dir, "azure_counts.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := []string{"app", "avg_exec_sec", "memory_gb", "class"}
	for m := 0; m < d.Minutes(); m++ {
		header = append(header, "m"+strconv.Itoa(m))
	}
	if err := w.Write(header); err != nil {
		return err
	}
	var total float64
	for _, a := range d.Apps {
		rec := []string{
			a.Name,
			strconv.FormatFloat(a.AvgExecSec, 'g', -1, 64),
			strconv.FormatFloat(a.MemoryGB, 'g', -1, 64),
			a.Class.String(),
		}
		for _, c := range a.CountsPerMinute {
			rec = append(rec, strconv.FormatFloat(c, 'g', -1, 64))
		}
		if err := w.Write(rec); err != nil {
			return err
		}
		total += a.TotalInvocations()
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	fmt.Printf("azure dataset: %d apps, %d days, %.0f invocations -> %s\n",
		len(d.Apps), days, total, dir)
	return nil
}
