// Command femux-load replays serverless traffic against a running femuxd
// and reports serving-path latency, closing the loop the paper measures in
// Fig 13 (7 ms mean / 25 ms p99 forecasting latency). It converts a
// tracegen CSV pair (or a synthetic fleet) into the per-app per-minute
// average-concurrency observations the metrics collector would POST, then
// streams them at a configurable speedup and concurrency.
//
// Usage:
//
//	femux-load -url http://localhost:8080 -apps apps.csv -invocations inv.csv -speedup 60
//	femux-load -url http://localhost:8080 -fleet 8 -minutes 120 -speedup 0 -concurrency 16
//
// With -speedup 0 the replay runs as fast as the server allows. The exit
// code is non-zero if any request fails, and -check-metrics additionally
// scrapes /metrics afterwards and verifies the server-side observe
// counters match the number of replayed requests exactly.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/timeseries"
	"github.com/ubc-cirrus-lab/femux-go/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("femux-load: ")
	var (
		url     = flag.String("url", "http://localhost:8080", "femuxd base URL")
		appsCSV = flag.String("apps", "", "apps CSV from tracegen")
		invCSV  = flag.String("invocations", "", "invocations CSV from tracegen")
		fleet   = flag.Int("fleet", 8, "synthetic fleet size when no CSV is given")
		minutes = flag.Int("minutes", 120, "trace minutes to replay (caps CSV traces too)")
		seed    = flag.Int64("seed", 1, "synthetic workload seed")

		speedup     = flag.Float64("speedup", 0, "replay speedup: 1 = real time, 60 = minute/second, 0 = as fast as possible")
		concurrency = flag.Int("concurrency", 8, "in-flight request limit")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		checkMetric = flag.Bool("check-metrics", false, "scrape /metrics after the replay and verify observe counters match")
	)
	flag.Parse()

	var wl workload
	var err error
	if *appsCSV != "" && *invCSV != "" {
		wl, err = csvWorkload(*appsCSV, *invCSV, *minutes)
	} else {
		wl = syntheticWorkload(*fleet, *minutes, *seed)
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("replaying %d observations (%d apps x %d minutes) against %s",
		len(wl.events), wl.apps, wl.minutes, *url)

	if err := waitHealthy(*url, 60*time.Second); err != nil {
		log.Fatal(err)
	}
	rep := replay(wl, replayConfig{
		BaseURL:     *url,
		Speedup:     *speedup,
		Concurrency: *concurrency,
		Timeout:     *timeout,
	})
	fmt.Print(rep.String())

	exit := 0
	if rep.Errors > 0 {
		log.Printf("FAIL: %d/%d requests errored", rep.Errors, rep.Requests)
		exit = 1
	}
	if *checkMetric {
		if err := checkMetrics(*url, rep.Requests-rep.Errors); err != nil {
			log.Printf("FAIL: %v", err)
			exit = 1
		} else {
			log.Printf("metrics check passed: observe counters match %d replayed requests", rep.Requests-rep.Errors)
		}
	}
	os.Exit(exit)
}

// obsEvent is one minute's observation for one app.
type obsEvent struct {
	app    string
	minute int
	conc   float64
}

type workload struct {
	events  []obsEvent // sorted by minute
	apps    int
	minutes int
}

// csvWorkload derives per-app per-minute average concurrency from a
// tracegen CSV pair, exactly as femuxd does for training.
func csvWorkload(appsPath, invPath string, maxMinutes int) (workload, error) {
	af, err := os.Open(appsPath)
	if err != nil {
		return workload{}, err
	}
	defer af.Close()
	inf, err := os.Open(invPath)
	if err != nil {
		return workload{}, err
	}
	defer inf.Close()
	ds, err := trace.ReadDataset(af, inf, 62*24*time.Hour)
	if err != nil {
		return workload{}, err
	}

	var maxEnd time.Duration
	for _, a := range ds.Apps {
		for _, inv := range a.Invocations {
			if end := inv.Arrival + inv.Duration; end > maxEnd {
				maxEnd = end
			}
		}
	}
	minutes := int(maxEnd/time.Minute) + 1
	if maxMinutes > 0 && minutes > maxMinutes {
		minutes = maxMinutes
	}
	var wl workload
	wl.minutes = minutes
	for _, a := range ds.Apps {
		spans := make([]timeseries.Interval, len(a.Invocations))
		for i, inv := range a.Invocations {
			spans[i] = timeseries.Interval{Start: inv.Arrival, End: inv.Arrival + inv.Duration}
		}
		series := timeseries.AverageConcurrency(spans, time.Minute, minutes)
		for m := 0; m < minutes; m++ {
			wl.events = append(wl.events, obsEvent{app: a.Name, minute: m, conc: series.Values[m]})
		}
		wl.apps++
	}
	sortEvents(wl.events)
	return wl, nil
}

// syntheticWorkload builds a seeded fleet of diurnal-ish apps without
// needing CSV files: app i oscillates with its own period and amplitude.
func syntheticWorkload(apps, minutes int, seed int64) workload {
	rng := rand.New(rand.NewSource(seed))
	var wl workload
	wl.apps, wl.minutes = apps, minutes
	for a := 0; a < apps; a++ {
		base := 0.5 + 4*rng.Float64()
		period := float64(20 + rng.Intn(120))
		phase := rng.Float64() * 2 * math.Pi
		for m := 0; m < minutes; m++ {
			c := base * (1 + math.Sin(2*math.Pi*float64(m)/period+phase))
			c += 0.2 * rng.NormFloat64()
			if c < 0 {
				c = 0
			}
			wl.events = append(wl.events, obsEvent{
				app:    fmt.Sprintf("load-%d", a),
				minute: m,
				conc:   math.Round(c*1000) / 1000,
			})
		}
	}
	sortEvents(wl.events)
	return wl
}

func sortEvents(evs []obsEvent) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].minute < evs[j].minute })
}

type replayConfig struct {
	BaseURL     string
	Speedup     float64 // 0 = as fast as possible
	Concurrency int
	Timeout     time.Duration
}

// Report aggregates the replay outcome.
type Report struct {
	Requests   int
	Errors     int
	Wall       time.Duration
	Throughput float64 // requests per wall-clock second
	Mean       time.Duration
	P50        time.Duration
	P95        time.Duration
	P99        time.Duration
	Max        time.Duration
}

func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests:    %d\n", r.Requests)
	fmt.Fprintf(&b, "errors:      %d (%.2f%%)\n", r.Errors, 100*float64(r.Errors)/math.Max(1, float64(r.Requests)))
	fmt.Fprintf(&b, "wall time:   %s\n", r.Wall.Round(time.Millisecond))
	fmt.Fprintf(&b, "throughput:  %.1f req/s\n", r.Throughput)
	fmt.Fprintf(&b, "latency:     mean %s  p50 %s  p95 %s  p99 %s  max %s\n",
		r.Mean.Round(time.Microsecond), r.P50.Round(time.Microsecond),
		r.P95.Round(time.Microsecond), r.P99.Round(time.Microsecond),
		r.Max.Round(time.Microsecond))
	return b.String()
}

// replay streams the workload minute by minute. Within a minute, events
// fan out across the worker pool; between minutes the sender sleeps to
// hold the requested speedup (a real collector posts once per app-minute).
func replay(wl workload, cfg replayConfig) Report {
	if cfg.Concurrency < 1 {
		cfg.Concurrency = 1
	}
	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Concurrency,
			MaxIdleConnsPerHost: cfg.Concurrency,
		},
	}

	jobs := make(chan obsEvent, cfg.Concurrency)
	var wg sync.WaitGroup
	var errs atomic.Int64
	durs := make([][]time.Duration, cfg.Concurrency)
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ev := range jobs {
				body := fmt.Sprintf(`{"concurrency": %g}`, ev.conc)
				start := time.Now()
				resp, err := client.Post(cfg.BaseURL+"/v1/apps/"+ev.app+"/observe",
					"application/json", strings.NewReader(body))
				elapsed := time.Since(start)
				if err != nil || resp.StatusCode != http.StatusOK {
					errs.Add(1)
				}
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				durs[w] = append(durs[w], elapsed)
			}
		}(w)
	}

	start := time.Now()
	minuteBudget := time.Duration(0)
	if cfg.Speedup > 0 {
		minuteBudget = time.Duration(float64(time.Minute) / cfg.Speedup)
	}
	i := 0
	for i < len(wl.events) {
		minuteStart := time.Now()
		m := wl.events[i].minute
		for i < len(wl.events) && wl.events[i].minute == m {
			jobs <- wl.events[i]
			i++
		}
		if minuteBudget > 0 {
			if sleep := minuteBudget - time.Since(minuteStart); sleep > 0 {
				time.Sleep(sleep)
			}
		}
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	for _, d := range durs {
		all = append(all, d...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep := Report{
		Requests:   len(all),
		Errors:     int(errs.Load()),
		Wall:       wall,
		Throughput: float64(len(all)) / math.Max(wall.Seconds(), 1e-9),
	}
	if len(all) > 0 {
		var sum time.Duration
		for _, d := range all {
			sum += d
		}
		rep.Mean = sum / time.Duration(len(all))
		rep.P50 = percentile(all, 0.50)
		rep.P95 = percentile(all, 0.95)
		rep.P99 = percentile(all, 0.99)
		rep.Max = all[len(all)-1]
	}
	return rep
}

// percentile reads the nearest-rank percentile from a sorted slice.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// waitHealthy polls /healthz until the server answers or the deadline
// passes (femuxd trains its model before it starts listening).
func waitHealthy(baseURL string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	client := &http.Client{Timeout: 2 * time.Second}
	for {
		resp, err := client.Get(baseURL + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %s", baseURL, wait)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

// checkMetrics scrapes /metrics and verifies the server counted exactly
// the observations this process sent (both the HTTP-layer counter and the
// per-app FeMux counter). Requires an otherwise idle server.
func checkMetrics(baseURL string, sent int) error {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return fmt.Errorf("scraping metrics: %w", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	scrape := string(b)
	httpObserves := sumMetricFiltered(scrape, "femux_http_requests_total", `endpoint="observe"`, `code="200"`)
	appObserves := sumMetricPrefix(scrape, "femux_observations_total")
	if int(httpObserves) != sent {
		return fmt.Errorf("femux_http_requests_total{endpoint=observe,code=200} = %g, want %d", httpObserves, sent)
	}
	if int(appObserves) != sent {
		return fmt.Errorf("femux_observations_total sum = %g, want %d", appObserves, sent)
	}
	return nil
}

// sumMetricPrefix sums every sample line of one metric family.
func sumMetricPrefix(scrape, name string) float64 {
	var sum float64
	for _, line := range strings.Split(scrape, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if len(rest) == 0 || (rest[0] != '{' && rest[0] != ' ') {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(fields[1], "%g", &v); err == nil {
			sum += v
		}
	}
	return sum
}

// sumMetricFiltered sums samples whose label block contains every filter.
func sumMetricFiltered(scrape, name string, filters ...string) float64 {
	var sum float64
outer:
	for _, line := range strings.Split(scrape, "\n") {
		if !strings.HasPrefix(line, name+"{") {
			continue
		}
		for _, f := range filters {
			if !strings.Contains(line, f) {
				continue outer
			}
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(fields[1], "%g", &v); err == nil {
			sum += v
		}
	}
	return sum
}
