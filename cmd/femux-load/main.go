// Command femux-load replays serverless traffic against a running femuxd
// (or a femux-shard router fronting a fleet) and reports serving-path
// latency, closing the loop the paper measures in Fig 13 (7 ms mean /
// 25 ms p99 forecasting latency). It converts a tracegen CSV pair (or a
// synthetic fleet) into the per-app per-minute average-concurrency
// observations the metrics collector would POST, then streams them at a
// configurable speedup and concurrency.
//
// Usage:
//
//	femux-load -url http://localhost:8080 -apps-csv apps.csv -invocations inv.csv -speedup 60
//	femux-load -url http://localhost:8080 -fleet 8 -minutes 120 -speedup 0 -concurrency 16
//	femux-load -url http://localhost:8080 -fleet 8 -minutes 120 -batch 64
//	femux-load -url http://localhost:8080 -sparse -apps 1000000 -minutes 60 -batch 4096
//
// With -sparse -apps N the workload is an Azure-like sparse fleet: N
// mostly-idle apps with heavy-tailed invocation rates, so observations
// per minute are far fewer than apps — the shape that exercises femuxd's
// tiered app state at fleet sizes RAM could never hold hot. The replay
// only POSTs minutes in which an app actually fired; -expect-replayed
// then cross-checks that the durable store holds exactly the acked
// observations.
//
// With -batch N each minute's observations are grouped into batches of
// at most N and POSTed to /v1/observe/batch (one WAL fsync per batch on
// the server); the exit code is non-zero if any batch item is rejected,
// not just on whole-request failures. With -start-minute M the replay
// covers minutes [M, M+minutes) of the same deterministic workload, so a
// second invocation can resume exactly where an interrupted one stopped
// (the synthetic fleet draws per-app random streams, making every prefix
// independent of -minutes).
//
// With -retry N each transiently-failed request or batch item — a
// transport error, a 502/503/504 (dead or unpromoted backend mid
// failover), or a 421 shard redirect (app mid-migration) — is retried up
// to N times after -retry-wait, so a replay rides across a shard
// failover or a live reshard without losing observations. Permanent
// rejections (validation errors) are never retried.
//
// With -speedup 0 the replay runs as fast as the server allows.
// -check-metrics scrapes /metrics afterwards and verifies the server-side
// observe counters match the number of replayed observations exactly
// (direct femuxd only — a router does not expose its shards' counters).
// -expect-store N with -store-urls u1,u2 sums femux_store_observations
// across the listed instances and fails unless the durable total equals
// N; because that gauge is recomputed from the WAL on boot, the check
// holds across SIGKILL and restart.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/knative"
	"github.com/ubc-cirrus-lab/femux-go/internal/timeseries"
	"github.com/ubc-cirrus-lab/femux-go/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("femux-load: ")
	var (
		url      = flag.String("url", "http://localhost:8080", "femuxd or femux-shard base URL")
		appsCSV  = flag.String("apps-csv", "", "apps CSV from tracegen")
		invCSV   = flag.String("invocations", "", "invocations CSV from tracegen")
		fleet    = flag.Int("fleet", 8, "synthetic dense fleet size when no CSV is given")
		minutes  = flag.Int("minutes", 120, "trace minutes to replay (caps CSV traces too)")
		startMin = flag.Int("start-minute", 0, "first minute to replay (resume an interrupted run)")
		seed     = flag.Int64("seed", 1, "synthetic workload seed")
		shiftAt  = flag.Int("shift-at", 0,
			"synthetic fleet: minute at which every app's regime changes from smooth to bursty (0 = stationary)")

		sparse = flag.Bool("sparse", false,
			"sparse synthetic mode: -apps mostly-idle apps with heavy-tailed invocation rates")
		apps         = flag.Int("apps", 0, "sparse fleet size (requires -sparse)")
		sparsePeriod = flag.Int("sparse-period", 1440,
			"longest mean inter-arrival gap in minutes; every app's first arrival lands within it")

		speedup        = flag.Float64("speedup", 0, "replay speedup: 1 = real time, 60 = minute/second, 0 = as fast as possible")
		concurrency    = flag.Int("concurrency", 8, "in-flight request limit")
		batch          = flag.Int("batch", 0, "observations per POST /v1/observe/batch request (0 = per-app observes)")
		timeout        = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		retries        = flag.Int("retry", 0, "retries per transiently-failed request or batch item (503/502/504/421/transport)")
		retryWait      = flag.Duration("retry-wait", 200*time.Millisecond, "pause before each retry")
		checkMetric    = flag.Bool("check-metrics", false, "scrape /metrics after the replay and verify observe counters match")
		storeURLs      = flag.String("store-urls", "", "comma-separated instance URLs for -expect-store")
		expectStore    = flag.Int("expect-store", -1, "expected femux_store_observations sum across -store-urls (-1 = skip)")
		expectReplayed = flag.Bool("expect-replayed", false,
			"verify femux_store_observations across -store-urls (default: -url) equals this replay's accepted observations (fresh store, idle server)")
	)
	flag.Parse()
	if *startMin < 0 {
		log.Fatal("-start-minute must be >= 0")
	}
	if *sparse && *apps <= 0 {
		log.Fatal("-sparse requires -apps > 0")
	}

	var wl workload
	var err error
	switch {
	case *appsCSV != "" && *invCSV != "":
		wl, err = csvWorkload(*appsCSV, *invCSV, *startMin, *minutes)
	case *sparse:
		wl = sparseWorkload(*apps, *startMin, *minutes, *seed, *sparsePeriod)
	default:
		wl = syntheticWorkload(*fleet, *startMin, *minutes, *seed, *shiftAt)
	}
	if err != nil {
		log.Fatal(err)
	}
	mode := "per-app observes"
	if *batch > 0 {
		mode = fmt.Sprintf("batches of %d", *batch)
	}
	log.Printf("replaying %d observations (%d apps, minutes %d..%d, %s) against %s",
		len(wl.events), wl.apps, *startMin, *startMin+wl.minutes, mode, *url)

	if err := waitHealthy(*url, 60*time.Second); err != nil {
		log.Fatal(err)
	}
	rep := replay(wl, replayConfig{
		BaseURL:     *url,
		Speedup:     *speedup,
		Concurrency: *concurrency,
		Batch:       *batch,
		Timeout:     *timeout,
		Retries:     *retries,
		RetryWait:   *retryWait,
	})
	fmt.Print(rep.String())

	exit := 0
	if rep.Errors > 0 {
		log.Printf("FAIL: %d/%d requests errored", rep.Errors, rep.Requests)
		exit = 1
	}
	if rep.ItemErrors > 0 {
		log.Printf("FAIL: %d/%d batch observations rejected (first: %s)",
			rep.ItemErrors, rep.Items, rep.FirstItemError)
		exit = 1
	}
	if *checkMetric {
		if err := checkMetrics(*url, *batch > 0, rep); err != nil {
			log.Printf("FAIL: %v", err)
			exit = 1
		} else {
			log.Printf("metrics check passed: observe counters match the replay")
		}
	}
	if *expectStore >= 0 {
		if err := checkStoreTotal(*storeURLs, *expectStore); err != nil {
			log.Printf("FAIL: %v", err)
			exit = 1
		} else {
			log.Printf("store check passed: durable observations = %d", *expectStore)
		}
	}
	if *expectReplayed {
		targets := *storeURLs
		if targets == "" {
			targets = *url
		}
		accepted := rep.Items - rep.ItemErrors
		if err := checkStoreTotal(targets, accepted); err != nil {
			log.Printf("FAIL: %v", err)
			exit = 1
		} else {
			log.Printf("store check passed: all %d acked observations are durable", accepted)
		}
	}
	os.Exit(exit)
}

// obsEvent is one minute's observation for one app.
type obsEvent struct {
	app    string
	minute int
	conc   float64
}

type workload struct {
	events  []obsEvent // sorted by minute
	apps    int
	minutes int // minutes actually replayed (after -start-minute)
}

// csvWorkload derives per-app per-minute average concurrency from a
// tracegen CSV pair, exactly as femuxd does for training, keeping only
// minutes [startMin, startMin+maxMinutes).
func csvWorkload(appsPath, invPath string, startMin, maxMinutes int) (workload, error) {
	af, err := os.Open(appsPath)
	if err != nil {
		return workload{}, err
	}
	defer af.Close()
	inf, err := os.Open(invPath)
	if err != nil {
		return workload{}, err
	}
	defer inf.Close()
	ds, err := trace.ReadDataset(af, inf, 62*24*time.Hour)
	if err != nil {
		return workload{}, err
	}

	var maxEnd time.Duration
	for _, a := range ds.Apps {
		for _, inv := range a.Invocations {
			if end := inv.Arrival + inv.Duration; end > maxEnd {
				maxEnd = end
			}
		}
	}
	minutes := int(maxEnd/time.Minute) + 1
	if maxMinutes > 0 && minutes > startMin+maxMinutes {
		minutes = startMin + maxMinutes
	}
	var wl workload
	wl.minutes = minutes - startMin
	if wl.minutes < 0 {
		wl.minutes = 0
	}
	for _, a := range ds.Apps {
		spans := make([]timeseries.Interval, len(a.Invocations))
		for i, inv := range a.Invocations {
			spans[i] = timeseries.Interval{Start: inv.Arrival, End: inv.Arrival + inv.Duration}
		}
		series := timeseries.AverageConcurrency(spans, time.Minute, minutes)
		for m := startMin; m < minutes; m++ {
			wl.events = append(wl.events, obsEvent{app: a.Name, minute: m, conc: series.Values[m]})
		}
		wl.apps++
	}
	sortEvents(wl.events)
	return wl, nil
}

// syntheticWorkload builds a seeded fleet of diurnal-ish apps without
// needing CSV files: app i oscillates with its own period and amplitude.
// Each app draws from its own random stream, so the trace for minute m
// does not depend on how many minutes are generated — replaying
// [0, 120) and then [120, 250) in a second process yields exactly the
// trace a single [0, 250) replay would have sent. That prefix stability
// is what lets the crash-recovery smoke kill a replay mid-flight and
// resume it against a restarted server.
//
// shiftAt > 0 switches every app to a bursty high-level regime from that
// minute on (the retrain-lifecycle smoke's drift trigger). The shift
// preserves prefix stability: every minute consumes exactly one noise
// draw whichever regime it is in, and the burst parameters derive from
// the app's existing draws, so minutes before shiftAt are identical to
// an unshifted run's.
func syntheticWorkload(apps, startMin, minutes int, seed int64, shiftAt int) workload {
	var wl workload
	wl.apps, wl.minutes = apps, minutes
	end := startMin + minutes
	for a := 0; a < apps; a++ {
		rng := rand.New(rand.NewSource(seed*1000003 + int64(a)))
		base := 0.5 + 4*rng.Float64()
		period := float64(20 + rng.Intn(120))
		phase := rng.Float64() * 2 * math.Pi
		burstGap := 10 + int(period)%16 // regime-B spacing, from existing draws
		for m := 0; m < end; m++ {
			noise := rng.NormFloat64()
			var c float64
			if shiftAt > 0 && m >= shiftAt {
				// Regime B: mostly idle with 10x-level bursts.
				if (m+burstGap*a)%burstGap < 2 {
					c = 10 * base * (1 + 0.05*noise)
				}
			} else {
				c = base*(1+math.Sin(2*math.Pi*float64(m)/period+phase)) + 0.2*noise
			}
			if c < 0 {
				c = 0
			}
			if m < startMin {
				continue // drawn to keep the stream aligned, not replayed
			}
			wl.events = append(wl.events, obsEvent{
				app:    fmt.Sprintf("load-%d", a),
				minute: m,
				conc:   math.Round(c*1000) / 1000,
			})
		}
	}
	sortEvents(wl.events)
	return wl
}

// sparseWorkload builds an Azure-like sparse fleet: -apps applications
// whose invocation rates are heavy-tailed (log-uniform mean inter-arrival
// gaps between 2 minutes and -sparse-period), so a small fraction of the
// fleet is hot while most apps fire rarely — the population shape the
// tiering benchmarks need, where observations per minute ≪ fleet size.
// Arrivals are Poisson per app; minutes with no arrival emit nothing.
//
// Prefix stability matches syntheticWorkload: each app draws from its own
// seeded stream and the first arrival lands uniformly within
// min(gap, period) — independent of -minutes — so replaying [0,120) then
// [120,250) in a second process sends exactly the single-run trace, and
// with -minutes >= -sparse-period every app appears at least once.
func sparseWorkload(apps, startMin, minutes int, seed int64, period int) workload {
	if period < 2 {
		period = 2
	}
	var wl workload
	wl.apps, wl.minutes = apps, minutes
	end := startMin + minutes
	for a := 0; a < apps; a++ {
		rng := rand.New(rand.NewSource(seed*1000003 + int64(a)))
		// Log-uniform mean gap in [2, period]: the heavy tail in linear
		// space that mimics "most apps are mostly idle".
		gap := 2 * math.Pow(float64(period)/2, rng.Float64())
		first := gap
		if first > float64(period) {
			first = float64(period)
		}
		t := rng.Float64() * first
		conc := math.Round((0.2+2*rng.Float64())*1000) / 1000
		app := fmt.Sprintf("sparse-%d", a)
		lastMinute := -1
		for t < float64(end) {
			m := int(t)
			if m >= startMin && m != lastMinute {
				wl.events = append(wl.events, obsEvent{app: app, minute: m, conc: conc})
				lastMinute = m
			}
			t -= gap * math.Log(1-rng.Float64())
		}
	}
	sortEvents(wl.events)
	return wl
}

func sortEvents(evs []obsEvent) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].minute < evs[j].minute })
}

type replayConfig struct {
	BaseURL     string
	Speedup     float64 // 0 = as fast as possible
	Concurrency int
	Batch       int // observations per batch request; 0 = per-app observes
	Timeout     time.Duration
	Retries     int           // retries per transiently-failed request/item
	RetryWait   time.Duration // pause before each retry
}

// retryableStatus reports whether an HTTP status is worth retrying:
// gateway failures and 503 (backend dead or replica awaiting promotion)
// clear when the router promotes a replica; 421 (app owned elsewhere —
// mid-migration) clears when the retry is re-routed to the new owner.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusServiceUnavailable, http.StatusBadGateway,
		http.StatusGatewayTimeout, http.StatusMisdirectedRequest:
		return true
	}
	return false
}

// Report aggregates the replay outcome.
type Report struct {
	Requests       int // HTTP requests issued
	Errors         int // whole-request failures (transport error or non-200)
	Items          int // observations carried by those requests
	ItemErrors     int // observations rejected (per-item batch errors + items on failed requests)
	FirstItemError string
	Wall           time.Duration
	Throughput     float64 // observations per wall-clock second
	Mean           time.Duration
	P50            time.Duration
	P95            time.Duration
	P99            time.Duration
	Max            time.Duration
}

func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests:    %d\n", r.Requests)
	fmt.Fprintf(&b, "errors:      %d (%.2f%%)\n", r.Errors, 100*float64(r.Errors)/math.Max(1, float64(r.Requests)))
	fmt.Fprintf(&b, "items:       %d\n", r.Items)
	fmt.Fprintf(&b, "item errors: %d (%.2f%%)\n", r.ItemErrors, 100*float64(r.ItemErrors)/math.Max(1, float64(r.Items)))
	fmt.Fprintf(&b, "wall time:   %s\n", r.Wall.Round(time.Millisecond))
	fmt.Fprintf(&b, "throughput:  %.1f obs/s\n", r.Throughput)
	fmt.Fprintf(&b, "latency:     mean %s  p50 %s  p95 %s  p99 %s  max %s\n",
		r.Mean.Round(time.Microsecond), r.P50.Round(time.Microsecond),
		r.P95.Round(time.Microsecond), r.P99.Round(time.Microsecond),
		r.Max.Round(time.Microsecond))
	return b.String()
}

// workerStats is one worker's private tally, merged after the pool drains.
type workerStats struct {
	durs       []time.Duration
	errors     int
	items      int
	itemErrors int
	firstErr   string
}

// replay streams the workload minute by minute. Within a minute, events
// fan out across the worker pool — one POST per app-minute, or one
// batch POST per cfg.Batch observations; between minutes the sender
// sleeps to hold the requested speedup (a real collector posts once per
// interval).
func replay(wl workload, cfg replayConfig) Report {
	if cfg.Concurrency < 1 {
		cfg.Concurrency = 1
	}
	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Concurrency,
			MaxIdleConnsPerHost: cfg.Concurrency,
		},
	}

	jobs := make(chan []obsEvent, cfg.Concurrency)
	var wg sync.WaitGroup
	stats := make([]workerStats, cfg.Concurrency)
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			for chunk := range jobs {
				if cfg.Batch > 0 {
					postBatch(client, cfg, chunk, st)
				} else {
					postSingle(client, cfg, chunk[0], st)
				}
			}
		}(w)
	}

	start := time.Now()
	minuteBudget := time.Duration(0)
	if cfg.Speedup > 0 {
		minuteBudget = time.Duration(float64(time.Minute) / cfg.Speedup)
	}
	i := 0
	for i < len(wl.events) {
		minuteStart := time.Now()
		m := wl.events[i].minute
		j := i
		for j < len(wl.events) && wl.events[j].minute == m {
			j++
		}
		if cfg.Batch > 0 {
			for k := i; k < j; k += cfg.Batch {
				end := k + cfg.Batch
				if end > j {
					end = j
				}
				jobs <- wl.events[k:end]
			}
		} else {
			for k := i; k < j; k++ {
				jobs <- wl.events[k : k+1]
			}
		}
		i = j
		if minuteBudget > 0 {
			if sleep := minuteBudget - time.Since(minuteStart); sleep > 0 {
				time.Sleep(sleep)
			}
		}
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	rep := Report{Wall: wall}
	for _, st := range stats {
		all = append(all, st.durs...)
		rep.Errors += st.errors
		rep.Items += st.items
		rep.ItemErrors += st.itemErrors
		if rep.FirstItemError == "" {
			rep.FirstItemError = st.firstErr
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.Requests = len(all)
	rep.Throughput = float64(rep.Items) / math.Max(wall.Seconds(), 1e-9)
	if len(all) > 0 {
		var sum time.Duration
		for _, d := range all {
			sum += d
		}
		rep.Mean = sum / time.Duration(len(all))
		rep.P50 = percentile(all, 0.50)
		rep.P95 = percentile(all, 0.95)
		rep.P99 = percentile(all, 0.99)
		rep.Max = all[len(all)-1]
	}
	return rep
}

// postSingle replays one observation through POST /v1/apps/{app}/observe,
// retrying transient failures up to cfg.Retries times. Each attempt
// contributes a latency sample; the event fails only when its final
// attempt does.
func postSingle(client *http.Client, cfg replayConfig, ev obsEvent, st *workerStats) {
	body := fmt.Sprintf(`{"concurrency": %g}`, ev.conc)
	st.items++
	var lastMsg string
	for attempt := 0; ; attempt++ {
		start := time.Now()
		resp, err := client.Post(cfg.BaseURL+"/v1/apps/"+ev.app+"/observe",
			"application/json", strings.NewReader(body))
		st.durs = append(st.durs, time.Since(start))
		if err != nil {
			lastMsg = ev.app + ": " + err.Error()
		} else {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
			lastMsg = fmt.Sprintf("%s: HTTP %d", ev.app, resp.StatusCode)
			if !retryableStatus(resp.StatusCode) {
				break
			}
		}
		if attempt >= cfg.Retries {
			break
		}
		time.Sleep(cfg.RetryWait)
	}
	st.errors++
	st.itemErrors++
	st.noteErr(lastMsg)
}

// postBatch replays a chunk of observations through POST
// /v1/observe/batch and folds the per-item outcomes into st: the server
// answers 200 even when individual items were rejected, so partial
// failures only surface here — exactly the case the exit code must not
// swallow. Transient failures — a failed request, or items answered 503
// (shard dead / replica unpromoted) or 421 (app mid-migration) — are
// retried up to cfg.Retries times with only the still-failing items
// re-sent; permanent validation errors fail immediately.
func postBatch(client *http.Client, cfg replayConfig, chunk []obsEvent, st *workerStats) {
	st.items += len(chunk)
	pending := chunk
	for attempt := 0; ; attempt++ {
		req := knative.BatchObserveRequest{
			Observations: make([]knative.BatchObservation, len(pending)),
		}
		for i, ev := range pending {
			req.Observations[i] = knative.BatchObservation{App: ev.app, Concurrency: ev.conc}
		}
		body, _ := json.Marshal(req)
		start := time.Now()
		resp, err := client.Post(cfg.BaseURL+"/v1/observe/batch", "application/json",
			strings.NewReader(string(body)))
		st.durs = append(st.durs, time.Since(start))

		var out *knative.BatchObserveResponse
		var reqMsg string
		switch {
		case err != nil:
			reqMsg = "batch: " + err.Error()
		case resp.StatusCode != http.StatusOK:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			reqMsg = fmt.Sprintf("batch: HTTP %d", resp.StatusCode)
			if !retryableStatus(resp.StatusCode) {
				st.errors++
				st.itemErrors += len(pending)
				st.noteErr(reqMsg)
				return
			}
		default:
			var decoded knative.BatchObserveResponse
			derr := json.NewDecoder(resp.Body).Decode(&decoded)
			resp.Body.Close()
			if derr != nil {
				reqMsg = "batch: bad response: " + derr.Error()
			} else {
				out = &decoded
			}
		}

		if out == nil {
			// Whole-request transient failure: retry the full chunk.
			if attempt >= cfg.Retries {
				st.errors++
				st.itemErrors += len(pending)
				st.noteErr(reqMsg)
				return
			}
			time.Sleep(cfg.RetryWait)
			continue
		}

		var retry []obsEvent
		for i, res := range out.Results {
			if res.Error == "" {
				continue
			}
			if retryableStatus(res.Status) && attempt < cfg.Retries {
				retry = append(retry, pending[i])
				continue
			}
			st.itemErrors++
			st.noteErr(res.App + ": " + res.Error)
		}
		if len(retry) == 0 {
			return
		}
		pending = retry
		time.Sleep(cfg.RetryWait)
	}
}

func (st *workerStats) noteErr(msg string) {
	if st.firstErr == "" {
		st.firstErr = msg
	}
}

// percentile reads the nearest-rank percentile from a sorted slice.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// waitHealthy polls /healthz until the server answers or the deadline
// passes (femuxd trains its model before it starts listening).
func waitHealthy(baseURL string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	client := &http.Client{Timeout: 2 * time.Second}
	for {
		resp, err := client.Get(baseURL + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %s", baseURL, wait)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

// checkMetrics scrapes /metrics and verifies the server counted exactly
// the observations this process sent (both the HTTP-layer counter and
// the per-app FeMux counter). Requires an otherwise idle femuxd — a
// femux-shard router does not re-export its backends' counters.
func checkMetrics(baseURL string, batchMode bool, rep Report) error {
	scrape, err := scrapeMetrics(baseURL)
	if err != nil {
		return err
	}
	endpoint, httpWant := "observe", rep.Requests-rep.Errors
	if batchMode {
		endpoint, httpWant = "observe_batch", rep.Requests-rep.Errors
	}
	accepted := rep.Items - rep.ItemErrors
	httpOK := sumMetricFiltered(scrape, "femux_http_requests_total",
		fmt.Sprintf(`endpoint=%q`, endpoint), `code="200"`)
	appObserves := sumMetricPrefix(scrape, "femux_observations_total")
	if int(httpOK) != httpWant {
		return fmt.Errorf("femux_http_requests_total{endpoint=%s,code=200} = %g, want %d",
			endpoint, httpOK, httpWant)
	}
	if int(appObserves) != accepted {
		return fmt.Errorf("femux_observations_total sum = %g, want %d", appObserves, accepted)
	}
	return nil
}

// checkStoreTotal sums femux_store_observations across the given
// instance URLs and fails unless the durable total matches. The gauge is
// recomputed from snapshot+WAL on boot, so the check is meaningful even
// after a SIGKILL and restart — nothing survives except what the store
// made durable.
func checkStoreTotal(urls string, want int) error {
	var targets []string
	for _, u := range strings.Split(urls, ",") {
		if u = strings.TrimSpace(u); u != "" {
			targets = append(targets, u)
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("-expect-store needs -store-urls")
	}
	total := 0.0
	for _, u := range targets {
		scrape, err := scrapeMetrics(u)
		if err != nil {
			return err
		}
		total += sumMetricPrefix(scrape, "femux_store_observations")
	}
	if int(total) != want {
		return fmt.Errorf("femux_store_observations sum across %d instances = %g, want %d",
			len(targets), total, want)
	}
	return nil
}

func scrapeMetrics(baseURL string) (string, error) {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return "", fmt.Errorf("scraping metrics: %w", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// sampleValue extracts the numeric value of one exposition line. Label
// values may contain spaces, so the value is whatever follows the
// closing brace (or the whole remainder for label-less samples) — the
// sample value itself is a bare number and cannot contain '}'.
func sampleValue(line string) (float64, bool) {
	val := line
	if i := strings.LastIndexByte(line, '}'); i >= 0 {
		val = line[i+1:]
	} else if i := strings.IndexByte(line, ' '); i >= 0 {
		val = line[i+1:]
	}
	var v float64
	if _, err := fmt.Sscanf(strings.TrimSpace(val), "%g", &v); err != nil {
		return 0, false
	}
	return v, true
}

// sumMetricPrefix sums every sample line of one metric family.
func sumMetricPrefix(scrape, name string) float64 {
	var sum float64
	for _, line := range strings.Split(scrape, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if len(rest) == 0 || (rest[0] != '{' && rest[0] != ' ') {
			continue
		}
		if v, ok := sampleValue(line); ok {
			sum += v
		}
	}
	return sum
}

// sumMetricFiltered sums samples whose label block contains every filter.
func sumMetricFiltered(scrape, name string, filters ...string) float64 {
	var sum float64
outer:
	for _, line := range strings.Split(scrape, "\n") {
		if !strings.HasPrefix(line, name+"{") {
			continue
		}
		for _, f := range filters {
			if !strings.Contains(line, f) {
				continue outer
			}
		}
		if v, ok := sampleValue(line); ok {
			sum += v
		}
	}
	return sum
}
