package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/femux"
	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
	"github.com/ubc-cirrus-lab/femux-go/internal/knative"
	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
	"github.com/ubc-cirrus-lab/femux-go/internal/serving"
	"github.com/ubc-cirrus-lab/femux-go/internal/store"
	"github.com/ubc-cirrus-lab/femux-go/internal/timeseries"
	"github.com/ubc-cirrus-lab/femux-go/internal/trace"
)

func tinyTestModel(t testing.TB) *femux.Model {
	t.Helper()
	cfg := femux.DefaultConfig(rum.Default())
	cfg.BlockSize = 30
	cfg.Window = 30
	cfg.K = 3
	cfg.Forecasters = []forecast.Forecaster{
		forecast.NewExpSmoothing(),
		forecast.NewCeilPeak(10),
	}
	rng := rand.New(rand.NewSource(5))
	apps := make([]femux.TrainApp, 4)
	for i := range apps {
		vals := make([]float64, 90)
		for tt := range vals {
			if (tt+i)%7 < 3 {
				vals[tt] = 1 + rng.Float64()
			}
		}
		apps[i] = femux.TrainApp{Demand: timeseries.New(time.Minute, vals), ExecSec: 0.1, MemoryGB: 0.2}
	}
	m, err := femux.Train(apps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func tinyService(t testing.TB) (*knative.Service, *httptest.Server) {
	t.Helper()
	svc := knative.NewService(tinyTestModel(t))
	reg := serving.NewRegistry()
	svc.InstrumentWith(reg)
	hm := serving.NewHTTPMetrics(reg)
	// Mirror femuxd's route layout: API at /, /metrics alongside.
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mux.Handle("/metrics", reg.Handler())
	srv := httptest.NewServer(hm.Instrument(mux))
	t.Cleanup(srv.Close)
	return svc, srv
}

func TestSyntheticWorkloadShape(t *testing.T) {
	wl := syntheticWorkload(3, 0, 50, 7, 0)
	if wl.apps != 3 || wl.minutes != 50 {
		t.Fatalf("shape = %d apps x %d minutes", wl.apps, wl.minutes)
	}
	if len(wl.events) != 150 {
		t.Fatalf("events = %d, want 150", len(wl.events))
	}
	lastMinute := -1
	for _, ev := range wl.events {
		if ev.minute < lastMinute {
			t.Fatal("events not sorted by minute")
		}
		lastMinute = ev.minute
		if ev.conc < 0 {
			t.Fatalf("negative concurrency %v", ev.conc)
		}
	}
	// Deterministic for a fixed seed.
	again := syntheticWorkload(3, 0, 50, 7, 0)
	for i := range wl.events {
		if wl.events[i] != again.events[i] {
			t.Fatal("synthetic workload not deterministic")
		}
	}
}

func TestSyntheticWorkloadShift(t *testing.T) {
	const shift = 25
	flat := syntheticWorkload(3, 0, 50, 7, 0)
	shifted := syntheticWorkload(3, 0, 50, 7, shift)

	// Prefix stability across the regime change: minutes before the shift
	// are identical to the unshifted run's, minutes after diverge.
	byApp := func(wl workload) map[string][]obsEvent {
		m := map[string][]obsEvent{}
		for _, ev := range wl.events {
			m[ev.app] = append(m[ev.app], ev)
		}
		return m
	}
	fa, sa := byApp(flat), byApp(shifted)
	diverged := false
	for app, fevs := range fa {
		sevs := sa[app]
		if len(sevs) != len(fevs) {
			t.Fatalf("%s: event counts differ: %d vs %d", app, len(fevs), len(sevs))
		}
		for i := range fevs {
			if fevs[i].minute < shift && fevs[i] != sevs[i] {
				t.Fatalf("%s minute %d: pre-shift event changed: %+v vs %+v",
					app, fevs[i].minute, fevs[i], sevs[i])
			}
			if fevs[i].minute >= shift && fevs[i] != sevs[i] {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("regime never changed after the shift minute")
	}

	// Resume still works through the shift: head + tail == one full run.
	head := syntheticWorkload(3, 0, 30, 7, shift)
	tail := syntheticWorkload(3, 30, 20, 7, shift)
	joined := append(append([]obsEvent{}, head.events...), tail.events...)
	sortEvents(joined)
	if len(joined) != len(shifted.events) {
		t.Fatalf("resumed events = %d, want %d", len(joined), len(shifted.events))
	}
	for i := range joined {
		if joined[i] != shifted.events[i] {
			t.Fatalf("event %d: resumed %+v != full %+v", i, joined[i], shifted.events[i])
		}
	}
}

func TestReplayAgainstService(t *testing.T) {
	_, srv := tinyService(t)
	wl := syntheticWorkload(4, 0, 40, 3, 0) // 160 observations
	rep := replay(wl, replayConfig{
		BaseURL:     srv.URL,
		Speedup:     0,
		Concurrency: 8,
		Timeout:     10 * time.Second,
	})
	if rep.Requests != 160 {
		t.Errorf("requests = %d, want 160", rep.Requests)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d, want 0", rep.Errors)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 || rep.Max < rep.P99 {
		t.Errorf("percentiles inconsistent: %+v", rep)
	}
	if err := checkMetrics(srv.URL, false, rep); err != nil {
		t.Errorf("metrics check: %v", err)
	}
	// The check must actually bite: a wrong expected count fails.
	wrong := rep
	wrong.Requests++
	wrong.Items++
	if err := checkMetrics(srv.URL, false, wrong); err == nil {
		t.Error("checkMetrics accepted a wrong count")
	}
	out := rep.String()
	for _, want := range []string{"requests:", "errors:", "throughput:", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReplaySpeedupPacing(t *testing.T) {
	_, srv := tinyService(t)
	wl := syntheticWorkload(2, 0, 5, 1, 0) // 5 minutes of trace
	start := time.Now()
	rep := replay(wl, replayConfig{
		BaseURL:     srv.URL,
		Speedup:     1200, // one trace-minute per 50 ms -> >= 200 ms floor
		Concurrency: 4,
		Timeout:     5 * time.Second,
	})
	if rep.Errors != 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
	// 5 minutes at 1200x is 250 ms of pacing; the last minute's sleep also
	// counts, so the wall clock must be at least 4 full budgets.
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Errorf("replay finished in %s; pacing not applied", elapsed)
	}
}

func TestCSVWorkloadRoundTrip(t *testing.T) {
	// Generate a small dataset, write it with the trace package, and make
	// sure the load generator derives a consistent workload from it.
	ds := trace.GenerateIBM(trace.IBMGenConfig{Seed: 9, Apps: 3, Days: 45.0 / (24 * 60)})
	dir := t.TempDir()
	appsPath := filepath.Join(dir, "apps.csv")
	invPath := filepath.Join(dir, "inv.csv")
	var apps, invs bytes.Buffer
	if err := trace.WriteApps(&apps, ds); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteInvocations(&invs, ds); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(appsPath, apps.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(invPath, invs.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	wl, err := csvWorkload(appsPath, invPath, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if wl.apps != 3 {
		t.Errorf("apps = %d", wl.apps)
	}
	if wl.minutes != 30 {
		t.Errorf("minutes = %d (cap not applied)", wl.minutes)
	}
	if len(wl.events) != wl.apps*wl.minutes {
		t.Errorf("events = %d, want %d", len(wl.events), wl.apps*wl.minutes)
	}

	// And the CSV-derived workload replays cleanly end to end.
	_, srv := tinyService(t)
	rep := replay(wl, replayConfig{BaseURL: srv.URL, Concurrency: 4, Timeout: 5 * time.Second})
	if rep.Errors != 0 {
		t.Errorf("replay errors = %d", rep.Errors)
	}
	if rep.Requests != len(wl.events) {
		t.Errorf("requests = %d, want %d", rep.Requests, len(wl.events))
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(ds, 0.5); got != 5 {
		t.Errorf("p50 = %d", got)
	}
	if got := percentile(ds, 0.99); got != 10 {
		t.Errorf("p99 = %d", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %d", got)
	}
}

// TestSyntheticWorkloadPrefixStable: because every app draws from its
// own random stream, the trace for a minute range must not depend on
// where the replay starts or ends — the property the crash-recovery
// smoke relies on when it resumes an interrupted replay with
// -start-minute.
func TestSyntheticWorkloadPrefixStable(t *testing.T) {
	full := syntheticWorkload(3, 0, 50, 7, 0)
	head := syntheticWorkload(3, 0, 30, 7, 0)
	tail := syntheticWorkload(3, 30, 20, 7, 0)

	if len(head.events)+len(tail.events) != len(full.events) {
		t.Fatalf("split sizes: %d + %d != %d", len(head.events), len(tail.events), len(full.events))
	}
	index := func(evs []obsEvent) map[string]float64 {
		m := make(map[string]float64, len(evs))
		for _, ev := range evs {
			m[fmt.Sprintf("%s@%d", ev.app, ev.minute)] = ev.conc
		}
		return m
	}
	want := index(full.events)
	for key, conc := range index(head.events) {
		if want[key] != conc {
			t.Errorf("head %s: %v != %v", key, conc, want[key])
		}
	}
	for key, conc := range index(tail.events) {
		if want[key] != conc {
			t.Errorf("tail %s: %v != %v (resume would diverge)", key, conc, want[key])
		}
	}
	for _, ev := range tail.events {
		if ev.minute < 30 {
			t.Fatalf("tail contains minute %d < 30", ev.minute)
		}
	}
}

// TestBatchReplay: batch mode carries the same observations in far
// fewer requests, and the batch-aware metrics check agrees with the
// server's counters.
func TestBatchReplay(t *testing.T) {
	_, srv := tinyService(t)
	wl := syntheticWorkload(5, 0, 30, 3, 0) // 150 observations
	rep := replay(wl, replayConfig{
		BaseURL:     srv.URL,
		Concurrency: 4,
		Batch:       8,
		Timeout:     10 * time.Second,
	})
	if rep.Items != 150 {
		t.Errorf("items = %d, want 150", rep.Items)
	}
	if rep.ItemErrors != 0 || rep.Errors != 0 {
		t.Errorf("errors = %d, item errors = %d (first: %s)", rep.Errors, rep.ItemErrors, rep.FirstItemError)
	}
	// 5 apps per minute in batches of 8 -> one request per minute.
	if rep.Requests >= rep.Items {
		t.Errorf("requests = %d, not batched (items %d)", rep.Requests, rep.Items)
	}
	if err := checkMetrics(srv.URL, true, rep); err != nil {
		t.Errorf("batch metrics check: %v", err)
	}
	wrong := rep
	wrong.Items += 3
	if err := checkMetrics(srv.URL, true, wrong); err == nil {
		t.Error("batch checkMetrics accepted a wrong count")
	}
}

// TestReplayReportsPartialBatchFailure is the regression test for the
// partial-failure contract: a batch server answers 200 while rejecting
// individual items, and the replay report must surface those rejections
// (main exits non-zero on ItemErrors > 0) instead of reading the 200 as
// success.
func TestReplayReportsPartialBatchFailure(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/observe/batch" {
			http.NotFound(w, r)
			return
		}
		var req knative.BatchObserveRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		out := knative.BatchObserveResponse{Results: make([]knative.BatchItemResult, len(req.Observations))}
		for i, obs := range req.Observations {
			out.Results[i].App = obs.App
			if obs.App == "load-1" { // reject exactly one app's items
				out.Results[i].Error = "synthetic rejection"
				out.Rejected++
				continue
			}
			out.Results[i].Target = 1
			out.Accepted++
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	}))
	defer srv.Close()

	wl := syntheticWorkload(3, 0, 10, 2, 0) // load-0..load-2, 10 minutes
	rep := replay(wl, replayConfig{
		BaseURL:     srv.URL,
		Concurrency: 2,
		Batch:       3,
		Timeout:     5 * time.Second,
	})
	if rep.Errors != 0 {
		t.Errorf("whole-request errors = %d, want 0 (server answered 200)", rep.Errors)
	}
	if rep.ItemErrors != 10 {
		t.Errorf("item errors = %d, want 10 (one per minute for load-1)", rep.ItemErrors)
	}
	if !strings.Contains(rep.FirstItemError, "synthetic rejection") {
		t.Errorf("first item error = %q", rep.FirstItemError)
	}
	out := rep.String()
	if !strings.Contains(out, "item errors: 10") {
		t.Errorf("report does not surface item errors:\n%s", out)
	}
}

// TestReplayResumeBitIdentical is the femux-load-level zero-state-loss
// oracle: replay half a trace into a durable service, tear the whole
// serving process state down, restore from the same data directory, and
// resume with -start-minute. Every target and forecast afterwards must
// be bit-identical to a service that replayed the whole trace without
// interruption.
func TestReplayResumeBitIdentical(t *testing.T) {
	model := tinyTestModel(t)
	const apps, half, total = 4, 25, 50

	run := func(srvURL string, startMin, minutes int) {
		wl := syntheticWorkload(apps, startMin, minutes, 11, 0)
		// Concurrency 1: with parallel workers the per-app append order
		// varies run to run, so the two replays wouldn't be comparable.
		rep := replay(wl, replayConfig{BaseURL: srvURL, Concurrency: 1, Batch: 4, Timeout: 10 * time.Second})
		if rep.Errors != 0 || rep.ItemErrors != 0 {
			t.Fatalf("replay [%d,%d): errors=%d itemErrors=%d (%s)",
				startMin, startMin+minutes, rep.Errors, rep.ItemErrors, rep.FirstItemError)
		}
	}

	// Control: one uninterrupted in-memory service.
	ctlSrv := httptest.NewServer(knative.NewService(model).Handler())
	defer ctlSrv.Close()
	run(ctlSrv.URL, 0, total)

	// Durable service, destroyed mid-trace and restored.
	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(knative.NewServiceWith(model, knative.ServiceOptions{Store: st1}).Handler())
	run(srv1.URL, 0, half)
	srv1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	svc2 := knative.NewServiceWith(model, knative.ServiceOptions{Store: st2})
	if svc2.Restored() != apps {
		t.Fatalf("restored %d apps, want %d", svc2.Restored(), apps)
	}
	srv2 := httptest.NewServer(svc2.Handler())
	defer srv2.Close()
	run(srv2.URL, half, total-half)

	for a := 0; a < apps; a++ {
		app := fmt.Sprintf("load-%d", a)
		var want, got knative.TargetResponse
		getJSON(t, ctlSrv.URL+"/v1/apps/"+app+"/target?concurrency=1", &want)
		getJSON(t, srv2.URL+"/v1/apps/"+app+"/target?concurrency=1", &got)
		if want != got {
			t.Errorf("%s: target %+v (uninterrupted) != %+v (resumed)", app, want, got)
		}
		var wantF, gotF knative.ForecastResponse
		getJSON(t, ctlSrv.URL+"/v1/apps/"+app+"/forecast?horizon=5", &wantF)
		getJSON(t, srv2.URL+"/v1/apps/"+app+"/forecast?horizon=5", &gotF)
		if len(wantF.Values) != len(gotF.Values) {
			t.Fatalf("%s: forecast lengths differ", app)
		}
		for i := range wantF.Values {
			if math.Float64bits(wantF.Values[i]) != math.Float64bits(gotF.Values[i]) {
				t.Errorf("%s: forecast[%d] %v != %v (not bit-identical)",
					app, i, wantF.Values[i], gotF.Values[i])
			}
		}
	}
}

func getJSON(t testing.TB, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

// TestSparseWorkloadPrefixStable: the sparse generator must have the
// same resume property as the dense one — per-app streams are seeded
// independently of the window, so head+tail at any split point is the
// full trace. It also sanity-checks the sparse shape: far fewer events
// than app-minutes, and a heavy tail (some apps near-silent, some busy).
func TestSparseWorkloadPrefixStable(t *testing.T) {
	full := sparseWorkload(40, 0, 200, 11, 1440)
	head := sparseWorkload(40, 0, 120, 11, 1440)
	tail := sparseWorkload(40, 120, 80, 11, 1440)

	if len(head.events)+len(tail.events) != len(full.events) {
		t.Fatalf("split sizes: %d + %d != %d", len(head.events), len(tail.events), len(full.events))
	}
	index := func(evs []obsEvent) map[string]float64 {
		m := make(map[string]float64, len(evs))
		for _, ev := range evs {
			m[fmt.Sprintf("%s@%d", ev.app, ev.minute)] = ev.conc
		}
		return m
	}
	want := index(full.events)
	for key, conc := range index(head.events) {
		if want[key] != conc {
			t.Errorf("head %s: %v != %v", key, conc, want[key])
		}
	}
	for key, conc := range index(tail.events) {
		if want[key] != conc {
			t.Errorf("tail %s: %v != %v (resume would diverge)", key, conc, want[key])
		}
	}
	for _, ev := range tail.events {
		if ev.minute < 120 {
			t.Fatalf("tail contains minute %d < 120", ev.minute)
		}
	}

	// Sparsity: the fleet must not observe every app every minute.
	if len(full.events) >= 40*200/2 {
		t.Fatalf("sparse trace has %d events over %d app-minutes — not sparse", len(full.events), 40*200)
	}
	// Heavy tail: per-app activity spreads widely between the busiest
	// and the median app (5x here over a 200-minute window; the spread
	// grows with the window as slow apps' gaps exceed it entirely).
	perApp := map[string]int{}
	for _, ev := range full.events {
		perApp[ev.app]++
	}
	counts := make([]int, 0, len(perApp))
	for _, c := range perApp {
		counts = append(counts, c)
	}
	sort.Ints(counts)
	if len(counts) < 10 {
		t.Fatalf("only %d apps ever fired", len(counts))
	}
	busiest, median := counts[len(counts)-1], counts[len(counts)/2]
	if median == 0 || busiest < 5*median {
		t.Errorf("rate spread busiest=%d median=%d — want heavy tail (>=5x)", busiest, median)
	}
}

// TestSparseWorkloadSeedStable: same seed, same trace; different seed,
// different trace.
func TestSparseWorkloadSeedStable(t *testing.T) {
	a := sparseWorkload(10, 0, 100, 3, 1440)
	b := sparseWorkload(10, 0, 100, 3, 1440)
	if len(a.events) != len(b.events) {
		t.Fatalf("same seed: %d vs %d events", len(a.events), len(b.events))
	}
	for i := range a.events {
		if a.events[i] != b.events[i] {
			t.Fatalf("same seed diverges at event %d", i)
		}
	}
	c := sparseWorkload(10, 0, 100, 4, 1440)
	if len(c.events) == len(a.events) {
		same := true
		for i := range c.events {
			if c.events[i] != a.events[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}
