package main

import (
	"bytes"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/femux"
	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
	"github.com/ubc-cirrus-lab/femux-go/internal/knative"
	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
	"github.com/ubc-cirrus-lab/femux-go/internal/serving"
	"github.com/ubc-cirrus-lab/femux-go/internal/timeseries"
	"github.com/ubc-cirrus-lab/femux-go/internal/trace"
)

func tinyService(t testing.TB) (*knative.Service, *httptest.Server) {
	t.Helper()
	cfg := femux.DefaultConfig(rum.Default())
	cfg.BlockSize = 30
	cfg.Window = 30
	cfg.K = 3
	cfg.Forecasters = []forecast.Forecaster{
		forecast.NewExpSmoothing(),
		forecast.NewCeilPeak(10),
	}
	rng := rand.New(rand.NewSource(5))
	apps := make([]femux.TrainApp, 4)
	for i := range apps {
		vals := make([]float64, 90)
		for tt := range vals {
			if (tt+i)%7 < 3 {
				vals[tt] = 1 + rng.Float64()
			}
		}
		apps[i] = femux.TrainApp{Demand: timeseries.New(time.Minute, vals), ExecSec: 0.1, MemoryGB: 0.2}
	}
	m, err := femux.Train(apps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc := knative.NewService(m)
	reg := serving.NewRegistry()
	svc.InstrumentWith(reg)
	hm := serving.NewHTTPMetrics(reg)
	// Mirror femuxd's route layout: API at /, /metrics alongside.
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mux.Handle("/metrics", reg.Handler())
	srv := httptest.NewServer(hm.Instrument(mux))
	t.Cleanup(srv.Close)
	return svc, srv
}

func TestSyntheticWorkloadShape(t *testing.T) {
	wl := syntheticWorkload(3, 50, 7)
	if wl.apps != 3 || wl.minutes != 50 {
		t.Fatalf("shape = %d apps x %d minutes", wl.apps, wl.minutes)
	}
	if len(wl.events) != 150 {
		t.Fatalf("events = %d, want 150", len(wl.events))
	}
	lastMinute := -1
	for _, ev := range wl.events {
		if ev.minute < lastMinute {
			t.Fatal("events not sorted by minute")
		}
		lastMinute = ev.minute
		if ev.conc < 0 {
			t.Fatalf("negative concurrency %v", ev.conc)
		}
	}
	// Deterministic for a fixed seed.
	again := syntheticWorkload(3, 50, 7)
	for i := range wl.events {
		if wl.events[i] != again.events[i] {
			t.Fatal("synthetic workload not deterministic")
		}
	}
}

func TestReplayAgainstService(t *testing.T) {
	_, srv := tinyService(t)
	wl := syntheticWorkload(4, 40, 3) // 160 observations
	rep := replay(wl, replayConfig{
		BaseURL:     srv.URL,
		Speedup:     0,
		Concurrency: 8,
		Timeout:     10 * time.Second,
	})
	if rep.Requests != 160 {
		t.Errorf("requests = %d, want 160", rep.Requests)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d, want 0", rep.Errors)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 || rep.Max < rep.P99 {
		t.Errorf("percentiles inconsistent: %+v", rep)
	}
	if err := checkMetrics(srv.URL, rep.Requests); err != nil {
		t.Errorf("metrics check: %v", err)
	}
	// The check must actually bite: a wrong expected count fails.
	if err := checkMetrics(srv.URL, rep.Requests+1); err == nil {
		t.Error("checkMetrics accepted a wrong count")
	}
	out := rep.String()
	for _, want := range []string{"requests:", "errors:", "throughput:", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReplaySpeedupPacing(t *testing.T) {
	_, srv := tinyService(t)
	wl := syntheticWorkload(2, 5, 1) // 5 minutes of trace
	start := time.Now()
	rep := replay(wl, replayConfig{
		BaseURL:     srv.URL,
		Speedup:     1200, // one trace-minute per 50 ms -> >= 200 ms floor
		Concurrency: 4,
		Timeout:     5 * time.Second,
	})
	if rep.Errors != 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
	// 5 minutes at 1200x is 250 ms of pacing; the last minute's sleep also
	// counts, so the wall clock must be at least 4 full budgets.
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Errorf("replay finished in %s; pacing not applied", elapsed)
	}
}

func TestCSVWorkloadRoundTrip(t *testing.T) {
	// Generate a small dataset, write it with the trace package, and make
	// sure the load generator derives a consistent workload from it.
	ds := trace.GenerateIBM(trace.IBMGenConfig{Seed: 9, Apps: 3, Days: 45.0 / (24 * 60)})
	dir := t.TempDir()
	appsPath := filepath.Join(dir, "apps.csv")
	invPath := filepath.Join(dir, "inv.csv")
	var apps, invs bytes.Buffer
	if err := trace.WriteApps(&apps, ds); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteInvocations(&invs, ds); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(appsPath, apps.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(invPath, invs.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	wl, err := csvWorkload(appsPath, invPath, 30)
	if err != nil {
		t.Fatal(err)
	}
	if wl.apps != 3 {
		t.Errorf("apps = %d", wl.apps)
	}
	if wl.minutes != 30 {
		t.Errorf("minutes = %d (cap not applied)", wl.minutes)
	}
	if len(wl.events) != wl.apps*wl.minutes {
		t.Errorf("events = %d, want %d", len(wl.events), wl.apps*wl.minutes)
	}

	// And the CSV-derived workload replays cleanly end to end.
	_, srv := tinyService(t)
	rep := replay(wl, replayConfig{BaseURL: srv.URL, Concurrency: 4, Timeout: 5 * time.Second})
	if rep.Errors != 0 {
		t.Errorf("replay errors = %d", rep.Errors)
	}
	if rep.Requests != len(wl.events) {
		t.Errorf("requests = %d, want %d", rep.Requests, len(wl.events))
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(ds, 0.5); got != 5 {
		t.Errorf("p50 = %d", got)
	}
	if got := percentile(ds, 0.99); got != 10 {
		t.Errorf("p99 = %d", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %d", got)
	}
}
