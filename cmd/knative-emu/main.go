// Command knative-emu reproduces the Knative prototype evaluation (Fig 14):
// it trains FeMux on a synthetic Azure-shape fleet, replays a sampled
// subtrace against the emulated Knative Serving control loop under the
// default autoscaler and under FeMux override, and load-tests the FeMux
// forecasting service over real HTTP for the scalability study.
//
// Usage:
//
//	knative-emu -apps 48 -replay 12 -hours 4
//	knative-emu -scalability-only -svc-apps 50,200,800
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/experiments"
	"github.com/ubc-cirrus-lab/femux-go/internal/femux"
	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("knative-emu: ")
	var (
		apps      = flag.Int("apps", 48, "fleet size for training")
		replay    = flag.Int("replay", 12, "apps replayed through the emulation")
		hours     = flag.Float64("hours", 3, "replay horizon in hours")
		seed      = flag.Int64("seed", 1, "generation seed")
		workers   = flag.Int("workers", 0, "worker goroutines for training and sweeps (0 = one per CPU)")
		scaleOnly = flag.Bool("scalability-only", false, "skip the prototype replay")
		svcApps   = flag.String("svc-apps", "10,50,200", "comma-separated app counts for the HTTP scalability study")
		batchSize = flag.Int("batch", 0, "also run the scalability study through /v1/observe/batch with this batch size")
		qlevel    = flag.Float64("quantile-level", 0, "provision for this forecast quantile of demand (e.g. 0.95) instead of the point forecast; 0 = off")
	)
	flag.Parse()

	experiments.SetWorkers(*workers)
	scale := experiments.Scale{Seed: *seed, Apps: *apps, Days: 2}
	all := experiments.AzureFleet(scale)
	train, test := experiments.SplitTrainTest(all, *seed+100)

	cfg := femux.DefaultConfig(rum.Default())
	cfg.BlockSize = 144
	cfg.Window = 120
	cfg.K = 6
	cfg.Workers = *workers
	model, err := femux.Train(train, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained FeMux on %d apps in %v (%d blocks, %d clusters)\n\n",
		len(train), model.Diag.TrainTime, model.Diag.Blocks, model.Diag.Clusters)

	if !*scaleOnly {
		fmt.Println("== Fig 14-Left: subtrace representativity ==")
		left := experiments.Fig14Left(all, 2)
		fmt.Printf("KS distance between sample and full distribution: %.3f\n\n", left.KSDistance)

		sel := test
		if len(sel) > *replay {
			sel = sel[:*replay]
		}
		minutes := int(*hours * 60)
		for i := range sel {
			if sel[i].Demand.Len() > minutes {
				sel[i].Demand = sel[i].Demand.Slice(0, minutes)
				sel[i].Invocations = sel[i].Invocations[:minutes]
			}
		}
		specs := experiments.SpecsFromTrainApps(sel)
		if *qlevel > 0 {
			fmt.Printf("== Fig 14-Mid: FeMux (p%g provisioning) vs default Knative on the emulated cluster ==\n", *qlevel*100)
		} else {
			fmt.Println("== Fig 14-Mid: FeMux vs default Knative on the emulated cluster ==")
		}
		res := experiments.Fig14PrototypeQuantile(model, specs, time.Duration(*hours*float64(time.Hour)), *qlevel)
		fmt.Println(res)
		fmt.Println()
	}

	fmt.Println("== Fig 14-Right: forecasting-service scalability (real HTTP) ==")
	var counts []int
	for _, s := range strings.Split(*svcApps, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			log.Fatalf("bad -svc-apps entry %q", s)
		}
		counts = append(counts, n)
	}
	for _, pt := range experiments.Fig14Scalability(model, counts, 5) {
		fmt.Printf("  %5d apps: mean %8v  p99 %8v  -> ~%d apps/pod at 1 forecast/app-min (paper: 1200)\n",
			pt.Apps, pt.MeanLatency.Round(time.Microsecond), pt.P99Latency.Round(time.Microsecond), pt.AppsPerPod)
	}
	if *batchSize > 0 {
		fmt.Printf("\n== Batched observes (/v1/observe/batch, batch=%d) ==\n", *batchSize)
		for _, pt := range experiments.Fig14ScalabilityBatch(model, counts, 5, *batchSize) {
			fmt.Printf("  %5d apps: batch mean %8v  p99 %8v  per-obs %8v  -> ~%d apps/pod\n",
				pt.Apps, pt.MeanLatency.Round(time.Microsecond), pt.P99Latency.Round(time.Microsecond),
				pt.PerObs.Round(time.Microsecond), pt.AppsPerPod)
		}
	}
}
