// Command characterize reproduces the paper's characterization section
// (§3): it synthesizes an IBM-shape dataset and prints the data behind
// Table 1 and Figures 1-7, plus the appendix Figures 15-16.
//
// Usage:
//
//	characterize -apps 120 -days 2 -seed 1
//	characterize -apps 60 -days 1 -only fig5
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/ubc-cirrus-lab/femux-go/internal/experiments"
	"github.com/ubc-cirrus-lab/femux-go/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("characterize: ")
	var (
		apps   = flag.Int("apps", 80, "number of applications")
		days   = flag.Float64("days", 1.5, "trace length in days")
		seed   = flag.Int64("seed", 1, "generation seed")
		only   = flag.String("only", "", "run a single section: table1, fig1..fig7, fig15, fig16")
		csvDir = flag.String("csv", "", "also write per-figure plot data (CDFs, series) as CSV into this directory")
	)
	flag.Parse()

	scale := experiments.Scale{Seed: *seed, Apps: *apps, Days: *days}
	d := experiments.IBMDataset(scale)
	want := func(name string) bool {
		return *only == "" || strings.EqualFold(*only, name)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	if want("table1") {
		fmt.Println("== Table 1: dataset summary ==")
		fmt.Println(experiments.Table1(d))
	}
	if want("fig1") {
		r := experiments.Fig1(d)
		fmt.Println("== Fig 1: traffic seasonality ==")
		fmt.Println(r)
		writeSeriesCSV(*csvDir, "fig1_hourly_traffic.csv", "hour", "invocations", r.Hourly)
	}
	if want("fig2") {
		r := experiments.Fig2(d)
		writeCDFCSV(*csvDir, "fig2_median_iat_cdf.csv", r.MedianIATs)
		writeCDFCSV(*csvDir, "fig2_p99_iat_cdf.csv", r.P99IATs)
		fmt.Println("== Fig 2: inter-arrival times ==")
		fmt.Printf("sub-second IATs: %.1f%% of invocations (paper 94.5%%)\n", r.SubSecondInvFrac*100)
		fmt.Printf("sub-minute IATs: %.1f%% of invocations (paper 99.8%%)\n", r.SubMinuteInvFrac*100)
		fmt.Printf("workloads with sub-second median IAT: %.0f%% (paper 46%%)\n", r.SubSecondMedianFrac*100)
		fmt.Printf("workloads with sub-minute median IAT: %.0f%% (paper 86%%)\n", r.SubMinuteMedianFrac*100)
		fmt.Printf("workloads with IAT CV > 1: %.0f%% (paper 96%%)\n", r.CVAbove1Frac*100)
	}
	if want("fig3") || want("fig4") {
		r := experiments.Fig3And4(d)
		writeCDFCSV(*csvDir, "fig3_app_mean_exec_cdf.csv", r.AppMeans)
		writeCDFCSV(*csvDir, "fig4_app_p99_exec_cdf.csv", r.AppP99s)
		fmt.Println("== Figs 3-4: execution times ==")
		fmt.Printf("apps with sub-second mean exec: %.0f%% (paper 82%%)\n", r.SubSecondAppFrac*100)
		fmt.Printf("invocations with sub-second exec: %.0f%% (paper 96%%)\n", r.SubSecondInvFrac*100)
		fmt.Printf("median of per-app means: %.3fs (paper ~0.010s)\n", r.MedianOfMeans)
		fmt.Printf("median of per-app p99s:  %.3fs (paper ~0.800s)\n", r.MedianOfP99s)
	}
	if want("fig5") {
		fmt.Println("== Fig 5: sub-minute predictive scaling ==")
		fmt.Println(experiments.Fig5(d))
	}
	if want("fig6") {
		r := experiments.Fig6(d)
		writeCDFCSV(*csvDir, "fig6_workload_p99_delay_cdf.csv", r.WorkloadP99Delays)
		fmt.Println("== Fig 6: platform delay ==")
		fmt.Println(experiments.DelaySummary(r))
	}
	if want("fig7") {
		r := experiments.Fig7(d)
		fmt.Println("== Fig 7: resource configurations ==")
		fmt.Printf("CPU: default %.1f%% / below %.1f%% / above %.1f%% (paper 50.8/44.8/4.4)\n",
			r.CPUDefaultFrac*100, r.CPUBelowFrac*100, r.CPUAboveFrac*100)
		fmt.Printf("memory: default %.1f%% / below %.1f%% / above %.1f%% (paper 41.9/53.6/4.5)\n",
			r.MemDefaultFrac*100, r.MemBelowFrac*100, r.MemAboveFrac*100)
		fmt.Printf("min scale: zero %.1f%% / one %.1f%% / more %.1f%% (paper 41.2/53.8/4.9)\n",
			r.MinScale0Frac*100, r.MinScale1Frac*100, r.MinScaleMoreFrac*100)
		fmt.Printf("concurrency: default %.1f%% / below %.1f%% / above %.1f%% (paper 93.3/3.5/3.2)\n",
			r.ConcDefaultFrac*100, r.ConcBelowFrac*100, r.ConcAboveFrac*100)
	}
	if want("fig15") {
		r := experiments.Fig15(scale)
		fmt.Println("== Fig 15: cross-workload traffic shares ==")
		fmt.Printf("IBM workloads with >=10%% of the busiest one's traffic: %d (paper: >30)\n", r.IBMBigWorkloads)
		if len(r.IBMShares) > 0 && len(r.AzureShares) > 0 {
			fmt.Printf("top IBM share %.1f%%, top Azure share %.1f%%\n",
				r.IBMShares[0]*100, r.AzureShares[0]*100)
		}
	}
	if want("fig16") {
		r := experiments.Fig16(d)
		fmt.Println("== Fig 16: long-trace examples ==")
		fmt.Printf("seasonal workload hours captured: %d; trending workload slope: %.3f invocations/hour^2\n",
			len(r.Seasonal), experiments.TrendSlope(r.Trending))
		writeSeriesCSV(*csvDir, "fig16_seasonal_workload.csv", "hour", "invocations", r.Seasonal)
		writeSeriesCSV(*csvDir, "fig16_trending_workload.csv", "hour", "invocations", r.Trending)
	}
}

// writeSeriesCSV writes an indexed series as (index, value) rows.
func writeSeriesCSV(dir, name, xCol, yCol string, values []float64) {
	if dir == "" || values == nil {
		return
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{xCol, yCol}); err != nil {
		log.Fatal(err)
	}
	for i, v := range values {
		if err := w.Write([]string{strconv.Itoa(i), strconv.FormatFloat(v, 'g', -1, 64)}); err != nil {
			log.Fatal(err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		log.Fatal(err)
	}
}

// writeCDFCSV writes a sample's empirical CDF as (value, fraction) rows.
func writeCDFCSV(dir, name string, sample []float64) {
	if dir == "" || len(sample) == 0 {
		return
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"value", "cdf"}); err != nil {
		log.Fatal(err)
	}
	for _, p := range stats.CDF(sample) {
		if err := w.Write([]string{
			strconv.FormatFloat(p.Value, 'g', -1, 64),
			strconv.FormatFloat(p.Fraction, 'g', -1, 64),
		}); err != nil {
			log.Fatal(err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		log.Fatal(err)
	}
}
