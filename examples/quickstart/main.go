// Quickstart: train FeMux on a small synthetic fleet, evaluate it against
// Knative's default policy on held-out apps, and print the RUM comparison.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/ubc-cirrus-lab/femux-go/internal/experiments"
	"github.com/ubc-cirrus-lab/femux-go/internal/femux"
	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
)

func main() {
	log.SetFlags(0)

	// 1. Build a fleet of synthetic applications in the Azure 2019 shape:
	//    per-minute average concurrency plus execution time and memory.
	apps := experiments.AzureFleet(experiments.Scale{Seed: 7, Apps: 30, Days: 2})
	train, test := experiments.SplitTrainTest(apps, 7)
	fmt.Printf("fleet: %d train / %d test apps\n", len(train), len(test))

	// 2. Train FeMux: per-block forecaster simulation scored under the
	//    default RUM (Eq. 1), feature extraction, K-means clustering.
	cfg := femux.DefaultConfig(rum.Default())
	cfg.BlockSize = 144 // minutes per block at this trace length
	cfg.Window = 120    // two hours of history per forecast
	model, err := femux.Train(train, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %v: %d blocks -> %d clusters, default forecaster %s\n",
		model.Diag.TrainTime, model.Diag.Blocks, model.Diag.Clusters,
		model.DefaultForecaster().Name())
	for name, wins := range model.Diag.ForecasterWins {
		fmt.Printf("  per-block best: %-12s %d blocks\n", name, wins)
	}

	// 3. Evaluate on held-out apps against fixed keep-alive baselines
	//    (expressed as peak-hold forecasters: a 10-minute keep-alive keeps
	//    the last 10 minutes' peak capacity warm).
	fm := femux.Evaluate(model, test)
	ka10 := femux.EvaluateSingle(forecast.NewRecentPeak(10), test, cfg)
	fft := femux.EvaluateSingle(forecast.NewFFT(10), test, cfg)

	fmt.Printf("\n%-22s %12s %14s %12s\n", "policy", "cold starts", "wasted GB-s", "RUM")
	print := func(name string, samples []rum.Sample) {
		agg := rum.Sum(samples)
		fmt.Printf("%-22s %12d %14.1f %12.2f\n",
			name, agg.ColdStarts, agg.WastedGBSec, rum.EvalPerApp(cfg.Metric, samples))
	}
	print("femux", fm.Samples)
	print("keepalive-10min", ka10.Samples)
	print("single-fft", fft.Samples)
	if ka10.RUM > 0 && fm.RUM < ka10.RUM {
		fmt.Printf("\nFeMux reduces RUM by %.0f%% over the 10-minute keep-alive.\n", (1-fm.RUM/ka10.RUM)*100)
	}
}
