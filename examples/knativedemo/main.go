// Knativedemo: the full Fig 13 integration in one process. It starts the
// FeMux forecasting service on a real HTTP port, replays a bursty workload
// through the emulated Knative Serving control loop twice — once with the
// stock reactive autoscaler, once with FeMux overriding it via REST — and
// prints the cold-start and waste comparison.
//
//	go run ./examples/knativedemo
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/experiments"
	"github.com/ubc-cirrus-lab/femux-go/internal/femux"
	"github.com/ubc-cirrus-lab/femux-go/internal/knative"
	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
	"github.com/ubc-cirrus-lab/femux-go/internal/trace"
)

func main() {
	log.SetFlags(0)

	// Train FeMux offline on a synthetic fleet.
	train := experiments.AzureFleet(experiments.Scale{Seed: 21, Apps: 24, Days: 2})
	cfg := femux.DefaultConfig(rum.Default())
	cfg.BlockSize = 144
	cfg.Window = 60
	model, err := femux.Train(train, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FeMux trained: %d clusters, default forecaster %s\n",
		model.Diag.Clusters, model.DefaultForecaster().Name())

	// Start the forecasting microservice on a real ephemeral port.
	svc := knative.NewService(model)
	server := httptest.NewServer(svc.Handler())
	defer server.Close()
	fmt.Printf("FeMux service listening at %s\n\n", server.URL)

	// A periodic bursty application: 30 requests every 5 minutes.
	horizon := 90 * time.Minute
	appCfg := trace.DefaultConfig()
	appCfg.Concurrency = 10
	appCfg.MemoryGB = 0.5
	var invs []trace.Invocation
	for burst := time.Duration(0); burst < horizon; burst += 5 * time.Minute {
		for i := 0; i < 30; i++ {
			invs = append(invs, trace.Invocation{
				Arrival:  burst + time.Duration(i)*400*time.Millisecond,
				Duration: 2 * time.Second,
			})
		}
	}
	spec := knative.AppSpec{Name: "burst-api", Config: appCfg, Invocations: invs}

	run := func(name string, provider knative.ScaleProvider) rum.Sample {
		out := knative.Run([]knative.AppSpec{spec}, knative.EmulatorConfig{
			Autoscaler: knative.DefaultAutoscalerConfig(),
			Provider:   provider,
		}, horizon)
		s := out[0].Sample
		fmt.Printf("%-18s cold starts %4d  cold-start sec %7.1f  wasted %8.1f GB-s  RUM %7.2f\n",
			name, s.ColdStarts, s.ColdStartSec, s.WastedGBSec, rum.Default().Eval(s))
		return s
	}

	base := run("knative default", nil)
	fm := run("femux via REST", &knative.HTTPProvider{BaseURL: server.URL})

	baseRUM := rum.Default().Eval(base)
	fmRUM := rum.Default().Eval(fm)
	if baseRUM > 0 && fmRUM < baseRUM {
		fmt.Printf("\nFeMux cut RUM by %.0f%% through the real REST integration path.\n",
			(1-fmRUM/baseRUM)*100)
	}
	fmt.Printf("service tracked %d app(s) through the run.\n", svc.Apps())
}
