// Forecasters: compare every forecaster in FeMux's set on three canonical
// traffic patterns — periodic, trending, and bursty — showing why no single
// forecaster wins everywhere (§4.2.2), which is the premise of multiplexing.
//
//	go run ./examples/forecasters
package main

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	n := 240 // four hours of minutes
	patterns := map[string][]float64{
		"periodic": func() []float64 {
			v := make([]float64, n)
			for i := range v {
				if i%20 < 4 {
					v[i] = 8
				}
			}
			return v
		}(),
		"trending": func() []float64 {
			v := make([]float64, n)
			for i := range v {
				v[i] = 0.05*float64(i) + 0.3*math.Abs(rng.NormFloat64())
			}
			return v
		}(),
		"bursty": func() []float64 {
			v := make([]float64, n)
			on := false
			for i := range v {
				if rng.Float64() < 0.08 {
					on = !on
				}
				if on {
					v[i] = 4 + 2*rng.Float64()
				}
			}
			return v
		}(),
	}

	set := forecast.DefaultSet()
	fmt.Printf("%-12s", "forecaster")
	order := []string{"periodic", "trending", "bursty"}
	for _, p := range order {
		fmt.Printf("%12s", p)
	}
	fmt.Println("   (one-step-ahead MAE over the last 2 hours; lower is better)")

	type score struct {
		name string
		mae  map[string]float64
	}
	best := map[string]string{}
	bestVal := map[string]float64{}
	var rows []score
	for _, fc := range set {
		row := score{name: fc.Name(), mae: map[string]float64{}}
		for _, p := range order {
			series := patterns[p]
			var sum float64
			var cnt int
			for t := 120; t < len(series); t++ {
				pred := fc.Forecast(series[t-120:t], 1)[0]
				sum += math.Abs(pred - series[t])
				cnt++
			}
			m := sum / float64(cnt)
			row.mae[p] = m
			if v, ok := bestVal[p]; !ok || m < v {
				bestVal[p] = m
				best[p] = fc.Name()
			}
		}
		rows = append(rows, row)
	}
	for _, row := range rows {
		fmt.Printf("%-12s", row.name)
		for _, p := range order {
			fmt.Printf("%12.3f", row.mae[p])
		}
		fmt.Println()
	}
	fmt.Println()
	for _, p := range order {
		fmt.Printf("best on %-9s %s\n", p+":", best[p])
	}
	fmt.Println("\nDifferent patterns have different winners — the case for multiplexing.")
}
