// Multitier: serve premium and regular applications under different RUMs on
// the same platform (the Fig 12 scenario). Premium apps are optimized with
// a 4x cold-start weight (FeMux-CS); regular apps use the default RUM.
//
//	go run ./examples/multitier
package main

import (
	"fmt"
	"log"

	"github.com/ubc-cirrus-lab/femux-go/internal/experiments"
	"github.com/ubc-cirrus-lab/femux-go/internal/femux"
	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
)

func main() {
	log.SetFlags(0)

	apps := experiments.AzureFleet(experiments.Scale{Seed: 11, Apps: 40, Days: 2})
	train, test := experiments.SplitTrainTest(apps, 11)

	base := femux.DefaultConfig(rum.Default())
	base.BlockSize = 144
	base.Window = 120

	// Train one model per tier. The underlying system is identical; only
	// the RUM weights differ — that is the whole point of decoupling
	// optimization from the metric.
	csCfg := base
	csCfg.Metric = rum.ColdStartHeavy()
	premiumModel, err := femux.Train(train, csCfg)
	if err != nil {
		log.Fatal(err)
	}
	regularModel, err := femux.Train(train, base)
	if err != nil {
		log.Fatal(err)
	}

	// 10% of apps buy the premium tier.
	nPrem := len(test) / 10
	if nPrem < 1 {
		nPrem = 1
	}
	premium, regular := test[:nPrem], test[nPrem:]

	premTiered := femux.Evaluate(premiumModel, premium)
	premFlat := femux.Evaluate(regularModel, premium)
	regTiered := femux.Evaluate(regularModel, regular)
	regAllCS := femux.Evaluate(premiumModel, regular)

	pt, pf := rum.Sum(premTiered.Samples), rum.Sum(premFlat.Samples)
	fmt.Printf("premium tier (%d apps):\n", len(premium))
	fmt.Printf("  cold-start seconds: %.2f under FeMux-CS vs %.2f under default", pt.ColdStartSec, pf.ColdStartSec)
	if pf.ColdStartSec > 0 {
		fmt.Printf("  (%.0f%% reduction; paper: 45%%)", (1-pt.ColdStartSec/pf.ColdStartSec)*100)
	}
	fmt.Println()

	tieredWaste := pt.WastedGBSec + rum.Sum(regTiered.Samples).WastedGBSec
	allCSWaste := pt.WastedGBSec + rum.Sum(regAllCS.Samples).WastedGBSec
	fmt.Printf("platform memory waste:\n")
	fmt.Printf("  tiered (premium=CS, regular=default): %.1f GB-s\n", tieredWaste)
	fmt.Printf("  single-objective (everyone=CS):       %.1f GB-s\n", allCSWaste)
	if allCSWaste > 0 {
		fmt.Printf("  tiering saves %.0f%% memory (paper: 35.4%%)\n", (1-tieredWaste/allCSWaste)*100)
	}
}
