package femuxbench

// One benchmark per table/figure of the paper. Each runs the corresponding
// experiment from internal/experiments at laptop scale and reports the
// reproduced headline quantities via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates the full evaluation. The
// DESIGN.md experiment index maps each benchmark to its paper counterpart.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/experiments"
	"github.com/ubc-cirrus-lab/femux-go/internal/femux"
	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
	"github.com/ubc-cirrus-lab/femux-go/internal/trace"
)

// Shared fixtures, built once: benchmarks share datasets so the suite
// completes quickly on a single core.
var (
	fixtureOnce sync.Once
	ibmSmall    *trace.Dataset
	azureTrain  []femux.TrainApp
	azureTest   []femux.TrainApp
	azureAll    []femux.TrainApp
	femuxModel  *femux.Model
)

func fixtures(b *testing.B) {
	b.Helper()
	fixtureOnce.Do(func() {
		ibmSmall = experiments.IBMDataset(experiments.Scale{Seed: 5, Apps: 50, Days: 1})
		azureAll = experiments.AzureFleet(experiments.Scale{Seed: 3, Apps: 48, Days: 2})
		azureTrain, azureTest = experiments.SplitTrainTest(azureAll, 7)
		cfg := femux.DefaultConfig(rum.Default())
		cfg.BlockSize = 144
		cfg.Window = 120
		cfg.K = 6
		m, err := femux.Train(azureTrain, cfg)
		if err != nil {
			panic(err)
		}
		femuxModel = m
	})
}

func BenchmarkTable1_DatasetStats(b *testing.B) {
	fixtures(b)
	var r experiments.Table1Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table1(ibmSmall)
	}
	b.ReportMetric(float64(r.TotalInvocations), "invocations")
	b.ReportMetric(float64(r.Apps), "workloads")
}

func BenchmarkFig1_TrafficSeasonality(b *testing.B) {
	fixtures(b)
	var r experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig1(ibmSmall)
	}
	b.ReportMetric(r.Seasonality.WeekdaySpan*100, "weekday-span-%")
	b.ReportMetric(r.Seasonality.SeasonalGain, "seasonal-gain-x")
}

func BenchmarkFig2_IATDistribution(b *testing.B) {
	fixtures(b)
	var r = experiments.Fig2(ibmSmall)
	for i := 0; i < b.N; i++ {
		r = experiments.Fig2(ibmSmall)
	}
	b.ReportMetric(r.SubSecondInvFrac*100, "subsec-IAT-%")
	b.ReportMetric(r.SubMinuteMedianFrac*100, "submin-median-%")
	b.ReportMetric(r.CVAbove1Frac*100, "cv>1-%")
}

func BenchmarkFig3_ExecTimes(b *testing.B) {
	fixtures(b)
	var r = experiments.Fig3And4(ibmSmall)
	for i := 0; i < b.N; i++ {
		r = experiments.Fig3And4(ibmSmall)
	}
	b.ReportMetric(r.SubSecondAppFrac*100, "subsec-apps-%")
	b.ReportMetric(r.SubSecondInvFrac*100, "subsec-invs-%")
}

func BenchmarkFig4_ExecVariability(b *testing.B) {
	fixtures(b)
	var r = experiments.Fig3And4(ibmSmall)
	for i := 0; i < b.N; i++ {
		r = experiments.Fig3And4(ibmSmall)
	}
	b.ReportMetric(r.MedianOfMeans*1000, "median-mean-ms")
	b.ReportMetric(r.MedianOfP99s*1000, "median-p99-ms")
}

func BenchmarkFig5_SubMinuteScaling(b *testing.B) {
	d := experiments.IBMDataset(experiments.Scale{Seed: 6, Apps: 20, Days: 0.4})
	var r experiments.Fig5Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = experiments.Fig5(d)
	}
	b.ReportMetric(r.FFT10VsMA*100, "fft10-vs-ma-%")
	b.ReportMetric(r.FFT10VsKA5*100, "fft10-vs-ka5-%")
	b.ReportMetric(r.FFT10VsFFT60*100, "fft10-vs-fft60-%")
}

func BenchmarkFig6_PlatformDelay(b *testing.B) {
	d := experiments.IBMDataset(experiments.Scale{Seed: 8, Apps: 30, Days: 0.4})
	var sub, tail, max float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds := experiments.Fig6(d)
		sub, tail, max = ds.SubMsInvFrac, ds.P99Above1sFrac, ds.MaxDelay
	}
	b.ReportMetric(sub*100, "sub-ms-%")
	b.ReportMetric(tail*100, "p99>1s-%")
	b.ReportMetric(max, "max-delay-s")
}

func BenchmarkFig7_Configurations(b *testing.B) {
	fixtures(b)
	var r = experiments.Fig7(ibmSmall)
	for i := 0; i < b.N; i++ {
		r = experiments.Fig7(ibmSmall)
	}
	b.ReportMetric((r.MinScale1Frac+r.MinScaleMoreFrac)*100, "minscale>=1-%")
	b.ReportMetric(r.ConcDefaultFrac*100, "conc-default-%")
}

func BenchmarkTable2_MetricMatrix(b *testing.B) {
	// Table 2 is the metric inventory; verify every listed metric is
	// computable from one Sample (the decoupling RUM provides).
	s := rum.Sample{ColdStarts: 3, ColdStartSec: 2.4, WastedGBSec: 120,
		AllocatedGBSec: 500, ExecSec: 90, Invocations: 1000}
	metrics := []rum.Metric{rum.Default(), rum.ColdStartHeavy(), rum.MemoryHeavy(), rum.DefaultExecAware()}
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, m := range metrics {
			sink += m.Eval(s)
		}
		sink += s.ColdStartFraction()
	}
	b.ReportMetric(float64(len(metrics)), "metrics")
	_ = sink
}

func BenchmarkC1_MAEvsRUM(b *testing.B) {
	fixtures(b)
	var r experiments.C1Result
	for i := 0; i < b.N; i++ {
		r = experiments.C1(azureAll)
	}
	b.ReportMetric(r.ARWinsMAE*100, "ar-wins-mae-%")
	b.ReportMetric(r.FFTWinsRUM*100, "fft-wins-rum-%")
}

func BenchmarkFig8_ClassifiedForecasting(b *testing.B) {
	fixtures(b)
	var r experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig8(azureAll)
	}
	b.ReportMetric(r.AllAR, "all-ar-rum")
	b.ReportMetric(r.AllFFT, "all-fft-rum")
	b.ReportMetric(r.PerClassBest, "per-class-rum")
}

func BenchmarkFig9_TemporalSwitching(b *testing.B) {
	var r experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig9(11)
	}
	b.ReportMetric(r.KAPhase2, "ka-phase2-rum")
	b.ReportMetric(r.MCPhase2, "mc-phase2-rum")
}

func BenchmarkFig11_FaasCache(b *testing.B) {
	fixtures(b)
	var r experiments.Fig11FaasCacheResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig11FaasCache(azureTrain, azureTest, []float64{0.5, 2, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.CSReduction*100, "cs-reduction-%")
	b.ReportMetric(r.RUMReduction*100, "rum-reduction-%")
}

func BenchmarkFig11_IceBreaker(b *testing.B) {
	fixtures(b)
	var r experiments.Fig11IceBreakerResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig11IceBreaker(azureTrain, azureTest)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.IceBreaker.KeepAliveCostRatio*100, "ice-ka-cost-%")
	b.ReportMetric(r.FeMuxMem.KeepAliveCostRatio*100, "femux-ka-cost-%")
	b.ReportMetric(r.RUMReduction*100, "rum-reduction-%")
}

func BenchmarkFig11_Aquatope(b *testing.B) {
	fixtures(b)
	sub := azureTest
	if len(sub) > 6 {
		sub = sub[:6]
	}
	var r experiments.Fig11AquatopeResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig11Aquatope(azureTrain, sub, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.RUMReduction*100, "rum-reduction-%")
	b.ReportMetric(float64(r.AquatopeInference)/float64(r.FeMuxInference+1), "infer-slowdown-x")
}

func BenchmarkFig12_MultiTier(b *testing.B) {
	fixtures(b)
	var r experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig12(azureTrain, azureTest)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.PremiumCSReduction*100, "premium-cs-cut-%")
	b.ReportMetric(r.MemorySaving*100, "memory-saving-%")
}

func BenchmarkS513_ExecRUM(b *testing.B) {
	fixtures(b)
	var r experiments.S513Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.S513(azureTrain, azureTest)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.DefaultRUMDefault, "default-model-rum")
	b.ReportMetric(r.ExecRUMExec, "exec-model-exec-rum")
}

func BenchmarkFig14_SubtraceRepresentativity(b *testing.B) {
	fixtures(b)
	var r experiments.Fig14LeftResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig14Left(azureAll, 2)
	}
	b.ReportMetric(r.KSDistance, "ks-distance")
}

func BenchmarkFig14_KnativePrototype(b *testing.B) {
	fixtures(b)
	classes := experiments.VolumeClasses(azureTest)
	sel := classes["low"]
	if len(sel) > 5 {
		sel = sel[:5]
	}
	for i := range sel {
		n := 120
		if sel[i].Demand.Len() < n {
			n = sel[i].Demand.Len()
		}
		sel[i].Demand = sel[i].Demand.Slice(0, n)
		if len(sel[i].Invocations) > n {
			sel[i].Invocations = sel[i].Invocations[:n]
		}
	}
	specs := experiments.SpecsFromTrainApps(sel)
	var r experiments.Fig14Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = experiments.Fig14Prototype(femuxModel, specs, 2*time.Hour)
	}
	b.ReportMetric(r.RUMReduction*100, "rum-reduction-%")
	b.ReportMetric(r.AppsMaintained*100, "apps-maintained-%")
}

func BenchmarkFig14_ForecastServiceScaling(b *testing.B) {
	fixtures(b)
	var pts []experiments.ScalabilityPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.Fig14Scalability(femuxModel, []int{20}, 3)
	}
	if len(pts) > 0 {
		b.ReportMetric(float64(pts[0].MeanLatency)/1e6, "mean-latency-ms")
		b.ReportMetric(float64(pts[0].P99Latency)/1e6, "p99-latency-ms")
		b.ReportMetric(float64(pts[0].AppsPerPod), "apps-per-pod")
	}
}

func BenchmarkFig15_TrafficShares(b *testing.B) {
	var r experiments.Fig15Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig15(experiments.Scale{Seed: 4, Apps: 40, Days: 1})
	}
	b.ReportMetric(float64(r.IBMBigWorkloads), "big-workloads")
}

func BenchmarkFig16_LongTraces(b *testing.B) {
	fixtures(b)
	var slope float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig16(ibmSmall)
		slope = experiments.TrendSlope(r.Trending)
	}
	b.ReportMetric(slope, "trend-slope")
}

func BenchmarkFig17_VsIndividualForecasters(b *testing.B) {
	fixtures(b)
	var r experiments.Fig17Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig17(azureTrain, azureTest)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.FeMux.RUM, "femux-rum")
	b.ReportMetric(r.BestIndividualRUM(), "best-single-rum")
	b.ReportMetric(r.SwitchedFrac*100, "apps-switched-%")
}

func BenchmarkFig18_FeatureAblation(b *testing.B) {
	fixtures(b)
	var r experiments.Fig18Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig18(azureTrain, azureTest)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.RUM["stationarity+linearity+harmonics+density"], "all-features-rum")
	b.ReportMetric(r.RUM["harmonics"], "harmonics-only-rum")
}

func BenchmarkAppC_BlockSize(b *testing.B) {
	fixtures(b)
	var r experiments.BlockSizeResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.BlockSize(azureTrain, azureTest, []int{96, 144, 288})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.RUM[144], "block144-rum")
	b.ReportMetric(r.RUM[288], "block288-rum")
}

func BenchmarkPolicyZoo(b *testing.B) {
	fixtures(b)
	var r experiments.PolicyZooResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.PolicyZoo(azureTrain, azureTest)
		if err != nil {
			b.Fatal(err)
		}
	}
	if fm, ok := r.RowByName("femux"); ok {
		b.ReportMetric(fm.RUM, "femux-rum")
	}
	b.ReportMetric(r.Best().RUM, "best-rum")
}

// BenchmarkTrainWorkers measures the offline-training speedup from the
// parallel sweep engine (internal/parallel) at several worker counts.
// Run on a multi-core host to regenerate the EXPERIMENTS.md speedup
// table; on a single core all sub-benchmarks collapse to serial time.
// Output is bit-identical across worker counts (asserted by
// TestTrainWorkerEquivalence in internal/femux), so this measures pure
// wall-clock, not a quality trade-off.
func BenchmarkTrainWorkers(b *testing.B) {
	fixtures(b)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := femux.DefaultConfig(rum.Default())
			cfg.BlockSize = 144
			cfg.Window = 120
			cfg.K = 6
			cfg.Workers = w
			for i := 0; i < b.N; i++ {
				if _, err := femux.Train(azureTrain, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
