package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func twoBlobs(rng *rand.Rand, nPer int) ([][]float64, []int) {
	rows := make([][]float64, 0, 2*nPer)
	labels := make([]int, 0, 2*nPer)
	for i := 0; i < nPer; i++ {
		rows = append(rows, []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3})
		labels = append(labels, 0)
		rows = append(rows, []float64{5 + rng.NormFloat64()*0.3, 5 + rng.NormFloat64()*0.3})
		labels = append(labels, 1)
	}
	return rows, labels
}

func TestScalerStandardizes(t *testing.T) {
	rows := [][]float64{{1, 100}, {2, 200}, {3, 300}, {4, 400}}
	s, err := FitScaler(rows)
	if err != nil {
		t.Fatal(err)
	}
	out := s.TransformAll(rows)
	// Each column must have mean ~0 and sd ~1.
	for d := 0; d < 2; d++ {
		var mean float64
		for _, r := range out {
			mean += r[d]
		}
		mean /= float64(len(out))
		if math.Abs(mean) > 1e-9 {
			t.Errorf("dim %d mean = %v", d, mean)
		}
		var sd float64
		for _, r := range out {
			sd += r[d] * r[d]
		}
		sd = math.Sqrt(sd / float64(len(out)))
		if math.Abs(sd-1) > 1e-9 {
			t.Errorf("dim %d sd = %v", d, sd)
		}
	}
}

func TestScalerConstantFeature(t *testing.T) {
	rows := [][]float64{{7, 1}, {7, 2}, {7, 3}}
	s, err := FitScaler(rows)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Transform([]float64{7, 2})
	if out[0] != 0 {
		t.Errorf("constant feature should center to 0, got %v", out[0])
	}
	if math.IsNaN(out[1]) || math.IsInf(out[1], 0) {
		t.Errorf("varying feature broken: %v", out[1])
	}
}

func TestScalerErrors(t *testing.T) {
	if _, err := FitScaler(nil); err == nil {
		t.Error("empty fit should error")
	}
	if _, err := FitScaler([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows should error")
	}
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows, labels := twoBlobs(rng, 50)
	m, err := FitKMeans(rows, 2, 7, 100)
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 2 {
		t.Fatalf("K = %d, want 2", m.K())
	}
	// All points of each blob must share a cluster.
	c0 := m.Predict(rows[0])
	for i, r := range rows {
		got := m.Predict(r)
		if labels[i] == 0 && got != c0 {
			t.Fatalf("blob 0 split across clusters at %d", i)
		}
		if labels[i] == 1 && got == c0 {
			t.Fatalf("blobs merged at %d", i)
		}
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows, _ := twoBlobs(rng, 30)
	a, _ := FitKMeans(rows, 3, 11, 100)
	b, _ := FitKMeans(rows, 3, 11, 100)
	if a.K() != b.K() {
		t.Fatal("non-deterministic cluster count")
	}
	for i := range a.Centroids {
		for d := range a.Centroids[i] {
			if a.Centroids[i][d] != b.Centroids[i][d] {
				t.Fatal("non-deterministic centroids")
			}
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if _, err := FitKMeans(nil, 2, 1, 10); err == nil {
		t.Error("empty rows should error")
	}
	if _, err := FitKMeans([][]float64{{1}}, 0, 1, 10); err == nil {
		t.Error("k=0 should error")
	}
	// k > n clamps.
	m, err := FitKMeans([][]float64{{1}, {2}}, 10, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.K() > 2 {
		t.Errorf("K = %d, want <= 2", m.K())
	}
	// Identical points: one effective cluster.
	same := [][]float64{{3, 3}, {3, 3}, {3, 3}}
	m, err = FitKMeans(same, 2, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict([]float64{3, 3}) >= m.K() {
		t.Error("predict out of range")
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, 200)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
	}
	m1, _ := FitKMeans(rows, 1, 5, 100)
	m4, _ := FitKMeans(rows, 4, 5, 100)
	if m4.Inertia(rows) >= m1.Inertia(rows) {
		t.Errorf("inertia should drop with more clusters: k1=%v k4=%v",
			m1.Inertia(rows), m4.Inertia(rows))
	}
}

func TestKMeansPredictConsistencyProperty(t *testing.T) {
	// Property: Predict maps every centroid to itself.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := make([][]float64, 30)
		for i := range rows {
			rows[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
		}
		m, err := FitKMeans(rows, 4, seed, 50)
		if err != nil {
			return false
		}
		for c, cent := range m.Centroids {
			if m.Predict(cent) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDecisionTreeLearnsBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows, labels := twoBlobs(rng, 60)
	tree, err := FitTree(rows, labels, DefaultTreeConfig())
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, r := range rows {
		if tree.Predict(r) == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(rows)); acc < 0.98 {
		t.Errorf("tree training accuracy = %v", acc)
	}
}

func TestDecisionTreeXOR(t *testing.T) {
	// XOR needs depth >= 2: single-split models fail, CART succeeds.
	var rows [][]float64
	var labels []int
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		x, y := rng.Float64(), rng.Float64()
		rows = append(rows, []float64{x, y})
		if (x > 0.5) != (y > 0.5) {
			labels = append(labels, 1)
		} else {
			labels = append(labels, 0)
		}
	}
	tree, err := FitTree(rows, labels, TreeConfig{MaxDepth: 6, MinLeafSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, r := range rows {
		if tree.Predict(r) == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(rows)); acc < 0.9 {
		t.Errorf("XOR accuracy = %v", acc)
	}
}

func TestDecisionTreeErrors(t *testing.T) {
	if _, err := FitTree(nil, nil, DefaultTreeConfig()); err == nil {
		t.Error("empty training should error")
	}
	if _, err := FitTree([][]float64{{1}}, []int{0, 1}, DefaultTreeConfig()); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestDecisionTreeSingleClass(t *testing.T) {
	rows := [][]float64{{1}, {2}, {3}}
	labels := []int{7, 7, 7}
	tree, err := FitTree(rows, labels, DefaultTreeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tree.Predict([]float64{99}) != 7 {
		t.Error("single-class tree should always predict that class")
	}
}

func TestRandomForestBeatsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rows, labels := twoBlobs(rng, 60)
	f, err := FitForest(rows, labels, 7, 9)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, r := range rows {
		if f.Predict(r) == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(rows)); acc < 0.95 {
		t.Errorf("forest accuracy = %v", acc)
	}
}

func TestRandomForestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows, labels := twoBlobs(rng, 20)
	f1, _ := FitForest(rows, labels, 5, 3)
	f2, _ := FitForest(rows, labels, 5, 3)
	for i := 0; i < 20; i++ {
		p := []float64{rng.Float64() * 6, rng.Float64() * 6}
		if f1.Predict(p) != f2.Predict(p) {
			t.Fatal("forest non-deterministic")
		}
	}
}

func BenchmarkKMeansFit(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	rows := make([][]float64, 500)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitKMeans(rows, 8, 1, 50); err != nil {
			b.Fatal(err)
		}
	}
}
