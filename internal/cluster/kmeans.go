package cluster

import (
	"errors"
	"math"
	"math/rand"
)

// KMeans is a fitted K-means model.
type KMeans struct {
	Centroids [][]float64
}

// FitKMeans clusters rows into k groups using k-means++ initialization and
// Lloyd's iterations. It is deterministic for a given seed. When k exceeds
// the number of distinct rows the effective cluster count shrinks (empty
// clusters are re-seeded from the farthest point; persistent empties are
// dropped at the end).
func FitKMeans(rows [][]float64, k int, seed int64, maxIter int) (*KMeans, error) {
	if len(rows) == 0 {
		return nil, errors.New("cluster: no rows to cluster")
	}
	if k < 1 {
		return nil, errors.New("cluster: k must be positive")
	}
	if k > len(rows) {
		k = len(rows)
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	dims := len(rows[0])
	for _, r := range rows {
		if len(r) != dims {
			return nil, errors.New("cluster: ragged rows")
		}
	}
	rng := rand.New(rand.NewSource(seed))
	cents := kmeansPlusPlus(rows, k, rng)

	assign := make([]int, len(rows))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, r := range rows {
			best := nearest(cents, r)
			if best != assign[i] {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		counts := make([]int, len(cents))
		sums := make([][]float64, len(cents))
		for c := range sums {
			sums[c] = make([]float64, dims)
		}
		for i, r := range rows {
			c := assign[i]
			counts[c]++
			for d, v := range r {
				sums[c][d] += v
			}
		}
		for c := range cents {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid assignment.
				far, dist := 0, -1.0
				for i, r := range rows {
					d := sqDist(r, cents[assign[i]])
					if d > dist {
						far, dist = i, d
					}
				}
				cents[c] = append([]float64(nil), rows[far]...)
				changed = true
				continue
			}
			for d := range cents[c] {
				cents[c][d] = sums[c][d] / float64(counts[c])
			}
		}
		if !changed && iter > 0 {
			break
		}
	}
	// Drop clusters that ended empty.
	used := make([]bool, len(cents))
	for i, r := range rows {
		assign[i] = nearest(cents, r)
		used[assign[i]] = true
	}
	final := make([][]float64, 0, len(cents))
	for c, u := range used {
		if u {
			final = append(final, cents[c])
		}
	}
	return &KMeans{Centroids: final}, nil
}

// kmeansPlusPlus seeds k centroids with D^2 weighting.
func kmeansPlusPlus(rows [][]float64, k int, rng *rand.Rand) [][]float64 {
	cents := make([][]float64, 0, k)
	first := rows[rng.Intn(len(rows))]
	cents = append(cents, append([]float64(nil), first...))
	d2 := make([]float64, len(rows))
	for len(cents) < k {
		var total float64
		for i, r := range rows {
			best := math.Inf(1)
			for _, c := range cents {
				if d := sqDist(r, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with centroids; duplicate one.
			cents = append(cents, append([]float64(nil), rows[0]...))
			continue
		}
		u := rng.Float64() * total
		for i, w := range d2 {
			u -= w
			if u <= 0 {
				cents = append(cents, append([]float64(nil), rows[i]...))
				break
			}
		}
		if u > 0 { // numerical tail
			cents = append(cents, append([]float64(nil), rows[len(rows)-1]...))
		}
	}
	return cents
}

// Predict returns the index of the nearest centroid.
func (m *KMeans) Predict(row []float64) int {
	return nearest(m.Centroids, row)
}

// K returns the number of (non-empty) clusters.
func (m *KMeans) K() int { return len(m.Centroids) }

// Inertia returns the total within-cluster squared distance of rows.
func (m *KMeans) Inertia(rows [][]float64) float64 {
	var total float64
	for _, r := range rows {
		total += sqDist(r, m.Centroids[m.Predict(r)])
	}
	return total
}

func nearest(cents [][]float64, row []float64) int {
	best, bestD := 0, math.Inf(1)
	for c, cent := range cents {
		if d := sqDist(row, cent); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
