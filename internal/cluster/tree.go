package cluster

import (
	"errors"
	"math"
	"math/rand"
)

// DecisionTree is a CART classifier over dense feature rows with integer
// class labels. It is the supervised baseline of §4.3.4: trees optimize
// per-block labels, so a mislabelled block gets a forecaster that may
// perform poorly — the failure mode clustering tolerates.
type DecisionTree struct {
	root *treeNode
}

type treeNode struct {
	leaf    bool
	class   int
	feature int
	thresh  float64
	lo, hi  *treeNode
}

// TreeConfig bounds tree growth.
type TreeConfig struct {
	MaxDepth    int
	MinLeafSize int
	// FeatureSubset, when positive, samples this many candidate features
	// per split (used by the random forest). Zero means all features.
	FeatureSubset int
	rng           *rand.Rand
}

// DefaultTreeConfig returns conventional CART settings.
func DefaultTreeConfig() TreeConfig {
	return TreeConfig{MaxDepth: 8, MinLeafSize: 5}
}

// FitTree builds a CART classifier minimizing Gini impurity.
func FitTree(rows [][]float64, labels []int, cfg TreeConfig) (*DecisionTree, error) {
	if len(rows) == 0 || len(rows) != len(labels) {
		return nil, errors.New("cluster: bad training data")
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 8
	}
	if cfg.MinLeafSize <= 0 {
		cfg.MinLeafSize = 1
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	return &DecisionTree{root: growTree(rows, labels, idx, cfg, 0)}, nil
}

func growTree(rows [][]float64, labels, idx []int, cfg TreeConfig, depth int) *treeNode {
	maj, pure := majority(labels, idx)
	if pure || depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeafSize {
		return &treeNode{leaf: true, class: maj}
	}
	feat, thresh, ok := bestSplit(rows, labels, idx, cfg)
	if !ok {
		return &treeNode{leaf: true, class: maj}
	}
	var loIdx, hiIdx []int
	for _, i := range idx {
		if rows[i][feat] <= thresh {
			loIdx = append(loIdx, i)
		} else {
			hiIdx = append(hiIdx, i)
		}
	}
	if len(loIdx) < cfg.MinLeafSize || len(hiIdx) < cfg.MinLeafSize {
		return &treeNode{leaf: true, class: maj}
	}
	return &treeNode{
		feature: feat,
		thresh:  thresh,
		lo:      growTree(rows, labels, loIdx, cfg, depth+1),
		hi:      growTree(rows, labels, hiIdx, cfg, depth+1),
	}
}

func majority(labels, idx []int) (int, bool) {
	counts := map[int]int{}
	for _, i := range idx {
		counts[labels[i]]++
	}
	best, bestN := 0, -1
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best, len(counts) <= 1
}

// bestSplit scans candidate (feature, threshold) pairs for the lowest
// weighted Gini impurity. Thresholds are midpoints between distinct sorted
// values, subsampled for speed on large nodes.
func bestSplit(rows [][]float64, labels, idx []int, cfg TreeConfig) (int, float64, bool) {
	dims := len(rows[idx[0]])
	feats := make([]int, 0, dims)
	if cfg.FeatureSubset > 0 && cfg.FeatureSubset < dims && cfg.rng != nil {
		perm := cfg.rng.Perm(dims)
		feats = append(feats, perm[:cfg.FeatureSubset]...)
	} else {
		for d := 0; d < dims; d++ {
			feats = append(feats, d)
		}
	}
	bestGini := math.Inf(1)
	bestFeat, bestThresh := -1, 0.0
	for _, f := range feats {
		vals := make([]float64, len(idx))
		for j, i := range idx {
			vals[j] = rows[i][f]
		}
		candidates := splitCandidates(vals)
		for _, t := range candidates {
			g := splitGini(rows, labels, idx, f, t)
			if g < bestGini {
				bestGini, bestFeat, bestThresh = g, f, t
			}
		}
	}
	if bestFeat < 0 {
		return 0, 0, false
	}
	return bestFeat, bestThresh, true
}

func splitCandidates(vals []float64) []float64 {
	sorted := append([]float64(nil), vals...)
	insertionSort(sorted)
	var out []float64
	const maxCand = 32
	stride := 1
	if len(sorted) > maxCand {
		stride = len(sorted) / maxCand
	}
	for i := stride; i < len(sorted); i += stride {
		if sorted[i] != sorted[i-1] {
			out = append(out, (sorted[i]+sorted[i-1])/2)
		}
	}
	// Always include the midpoint of the largest gap: subsampled strides
	// can step over a clean class boundary, and the largest gap is the
	// most likely place for one.
	gapAt, gap := -1, 0.0
	for i := 1; i < len(sorted); i++ {
		if d := sorted[i] - sorted[i-1]; d > gap {
			gap, gapAt = d, i
		}
	}
	if gapAt > 0 {
		out = append(out, (sorted[gapAt]+sorted[gapAt-1])/2)
	}
	return out
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func splitGini(rows [][]float64, labels, idx []int, feat int, thresh float64) float64 {
	loCounts := map[int]int{}
	hiCounts := map[int]int{}
	var nLo, nHi int
	for _, i := range idx {
		if rows[i][feat] <= thresh {
			loCounts[labels[i]]++
			nLo++
		} else {
			hiCounts[labels[i]]++
			nHi++
		}
	}
	if nLo == 0 || nHi == 0 {
		return math.Inf(1)
	}
	return (float64(nLo)*gini(loCounts, nLo) + float64(nHi)*gini(hiCounts, nHi)) / float64(nLo+nHi)
}

func gini(counts map[int]int, n int) float64 {
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		g -= p * p
	}
	return g
}

// Predict returns the predicted class of row.
func (t *DecisionTree) Predict(row []float64) int {
	n := t.root
	for !n.leaf {
		if row[n.feature] <= n.thresh {
			n = n.lo
		} else {
			n = n.hi
		}
	}
	return n.class
}

// RandomForest is a bagged ensemble of CART trees with per-split feature
// subsampling — the second supervised baseline from §4.3.4.
type RandomForest struct {
	trees []*DecisionTree
}

// FitForest trains nTrees trees on bootstrap samples of the data.
func FitForest(rows [][]float64, labels []int, nTrees int, seed int64) (*RandomForest, error) {
	if len(rows) == 0 || len(rows) != len(labels) {
		return nil, errors.New("cluster: bad training data")
	}
	if nTrees <= 0 {
		nTrees = 10
	}
	dims := len(rows[0])
	subset := int(math.Ceil(math.Sqrt(float64(dims))))
	rng := rand.New(rand.NewSource(seed))
	f := &RandomForest{}
	for t := 0; t < nTrees; t++ {
		bootRows := make([][]float64, len(rows))
		bootLabels := make([]int, len(rows))
		for i := range bootRows {
			j := rng.Intn(len(rows))
			bootRows[i] = rows[j]
			bootLabels[i] = labels[j]
		}
		cfg := TreeConfig{
			MaxDepth:      10,
			MinLeafSize:   3,
			FeatureSubset: subset,
			rng:           rand.New(rand.NewSource(seed + int64(t)*31)),
		}
		tree, err := FitTree(bootRows, bootLabels, cfg)
		if err != nil {
			return nil, err
		}
		f.trees = append(f.trees, tree)
	}
	return f, nil
}

// Predict returns the majority vote across trees.
func (f *RandomForest) Predict(row []float64) int {
	votes := map[int]int{}
	for _, t := range f.trees {
		votes[t.Predict(row)]++
	}
	best, bestN := 0, -1
	for c, n := range votes {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best
}
