// Package cluster implements the classification stage of FeMux (§4.3.4):
// feature standardization (StandardScaler), K-means clustering with
// k-means++ seeding, and the supervised baselines (CART decision tree and a
// small random forest) the paper compares against — K-means reduces RUM by
// ~15% over them because clustering groups similar blocks and assigns the
// best forecaster *on average*, tolerating misclassification.
package cluster

import (
	"errors"
	"math"
)

// Scaler standardizes features to zero mean and unit variance, mirroring
// scikit-learn's StandardScaler used in the paper.
type Scaler struct {
	Mean  []float64
	Scale []float64 // standard deviations; zero-variance dims use 1
}

// FitScaler learns per-dimension mean and deviation from rows.
func FitScaler(rows [][]float64) (*Scaler, error) {
	if len(rows) == 0 {
		return nil, errors.New("cluster: no rows to fit scaler")
	}
	dims := len(rows[0])
	s := &Scaler{Mean: make([]float64, dims), Scale: make([]float64, dims)}
	for _, r := range rows {
		if len(r) != dims {
			return nil, errors.New("cluster: ragged feature rows")
		}
		for d, v := range r {
			s.Mean[d] += v
		}
	}
	for d := range s.Mean {
		s.Mean[d] /= float64(len(rows))
	}
	for _, r := range rows {
		for d, v := range r {
			diff := v - s.Mean[d]
			s.Scale[d] += diff * diff
		}
	}
	for d := range s.Scale {
		s.Scale[d] = math.Sqrt(s.Scale[d] / float64(len(rows)))
		if s.Scale[d] == 0 {
			s.Scale[d] = 1 // constant feature: pass through centred
		}
	}
	return s, nil
}

// Transform standardizes one row (allocating a new slice).
func (s *Scaler) Transform(row []float64) []float64 {
	out := make([]float64, len(row))
	for d, v := range row {
		out[d] = (v - s.Mean[d]) / s.Scale[d]
	}
	return out
}

// TransformAll standardizes many rows.
func (s *Scaler) TransformAll(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = s.Transform(r)
	}
	return out
}
