package rum

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultWeights(t *testing.T) {
	d := Default()
	if d.W1 != 1 {
		t.Errorf("W1 = %v, want 1", d.W1)
	}
	if math.Abs(d.W2-1/99.7) > 1e-12 {
		t.Errorf("W2 = %v, want 1/99.7", d.W2)
	}
	// One cold start of the average duration costs the same as ~80.5
	// wasted GB-seconds (the §4.1 exchange-rate derivation).
	csCost := d.Eval(Sample{ColdStartSec: DefaultColdStartSec})
	memCost := d.Eval(Sample{WastedGBSec: 80.5})
	if math.Abs(csCost-memCost) > 0.01 {
		t.Errorf("exchange rate broken: cs %v vs mem %v", csCost, memCost)
	}
}

func TestWeightedEval(t *testing.T) {
	m := Weighted{W1: 2, W2: 0.5}
	s := Sample{ColdStartSec: 3, WastedGBSec: 10}
	if got := m.Eval(s); got != 11 {
		t.Errorf("Eval = %v, want 11", got)
	}
	if m.Eval(Sample{}) != 0 {
		t.Error("empty sample should score 0")
	}
}

func TestVariantWeights(t *testing.T) {
	cs, mem, def := ColdStartHeavy(), MemoryHeavy(), Default()
	if cs.W1 != 4*def.W1 || cs.W2 != def.W2 {
		t.Errorf("ColdStartHeavy = %+v", cs)
	}
	if mem.W2 != 4*def.W2 || mem.W1 != def.W1 {
		t.Errorf("MemoryHeavy = %+v", mem)
	}
	// A cold-start-heavy metric must penalize cold starts more than the
	// memory-heavy one on the same sample.
	s := Sample{ColdStartSec: 5, WastedGBSec: 5}
	if cs.Eval(s) <= mem.Eval(s) {
		t.Error("CS variant should score cold-start-heavy samples higher")
	}
}

func TestNames(t *testing.T) {
	if Default().Name() != "rum-default" {
		t.Errorf("name = %q", Default().Name())
	}
	if ColdStartHeavy().Name() != "rum-cs" || MemoryHeavy().Name() != "rum-mem" {
		t.Error("variant names wrong")
	}
	if (Weighted{}).Name() != "weighted" {
		t.Error("anonymous weighted name wrong")
	}
	if DefaultExecAware().Name() != "rum-exec" {
		t.Error("exec-aware name wrong")
	}
}

func TestExecAwareDiscountsLongExecutions(t *testing.T) {
	m := DefaultExecAware()
	short := Sample{ColdStartSec: 1, ExecSec: 0.1}
	long := Sample{ColdStartSec: 1, ExecSec: 100}
	if m.Eval(short) <= m.Eval(long) {
		t.Errorf("short-exec cold starts should cost more: %v vs %v",
			m.Eval(short), m.Eval(long))
	}
}

func TestExecAwareEdgeCases(t *testing.T) {
	m := DefaultExecAware()
	// No cold starts: only the memory term.
	s := Sample{WastedGBSec: 99.7, ExecSec: 0}
	if math.Abs(m.Eval(s)-1) > 1e-9 {
		t.Errorf("memory-only eval = %v, want 1", m.Eval(s))
	}
	// Cold starts with zero recorded exec: normalized against 1 s.
	s = Sample{ColdStartSec: 4}
	if math.Abs(m.Eval(s)-2) > 1e-9 {
		t.Errorf("zero-exec eval = %v, want sqrt(4) = 2", m.Eval(s))
	}
}

func TestSampleAddAndSum(t *testing.T) {
	a := Sample{ColdStarts: 1, ColdStartSec: 2, WastedGBSec: 3, AllocatedGBSec: 4, ExecSec: 5, Invocations: 6}
	b := Sample{ColdStarts: 10, ColdStartSec: 20, WastedGBSec: 30, AllocatedGBSec: 40, ExecSec: 50, Invocations: 60}
	got := a.Add(b)
	want := Sample{ColdStarts: 11, ColdStartSec: 22, WastedGBSec: 33, AllocatedGBSec: 44, ExecSec: 55, Invocations: 66}
	if got != want {
		t.Errorf("Add = %+v, want %+v", got, want)
	}
	if Sum([]Sample{a, b}) != want {
		t.Error("Sum mismatch")
	}
	if Sum(nil) != (Sample{}) {
		t.Error("empty Sum should be zero")
	}
}

func TestColdStartFraction(t *testing.T) {
	if (Sample{}).ColdStartFraction() != 0 {
		t.Error("idle app fraction should be 0")
	}
	s := Sample{ColdStarts: 3, Invocations: 12}
	if got := s.ColdStartFraction(); got != 0.25 {
		t.Errorf("fraction = %v, want 0.25", got)
	}
}

func TestEvalPerAppLinearMetricMatchesAggregate(t *testing.T) {
	m := Default()
	samples := []Sample{
		{ColdStartSec: 1, WastedGBSec: 10},
		{ColdStartSec: 5, WastedGBSec: 2},
		{ColdStartSec: 0, WastedGBSec: 40},
	}
	perApp := EvalPerApp(m, samples)
	agg := m.Eval(Sum(samples))
	if math.Abs(perApp-agg) > 1e-9 {
		t.Errorf("linear metric: per-app %v != aggregate %v", perApp, agg)
	}
}

func TestEvalPerAppNonLinearMetricDiffers(t *testing.T) {
	// For ExecAware the per-app evaluation is not the aggregate one —
	// that asymmetry is exactly why the paper trains FeMux-Exec per-app.
	m := DefaultExecAware()
	samples := []Sample{
		{ColdStartSec: 4, ExecSec: 1},
		{ColdStartSec: 0, ExecSec: 100},
	}
	perApp := EvalPerApp(m, samples)
	agg := m.Eval(Sum(samples))
	if math.Abs(perApp-agg) < 1e-9 {
		t.Error("expected per-app and aggregate exec-aware scores to differ")
	}
}

func TestWeightedMonotonicityProperty(t *testing.T) {
	// Property: adding cold-start seconds or waste never lowers any
	// weighted RUM with non-negative weights.
	metrics := []Metric{Default(), ColdStartHeavy(), MemoryHeavy(), DefaultExecAware()}
	f := func(cs, waste, extraCS, extraWaste float64) bool {
		s := Sample{
			ColdStartSec: math.Abs(math.Mod(cs, 1e6)),
			WastedGBSec:  math.Abs(math.Mod(waste, 1e6)),
			ExecSec:      10,
		}
		bigger := s
		bigger.ColdStartSec += math.Abs(math.Mod(extraCS, 1e6))
		bigger.WastedGBSec += math.Abs(math.Mod(extraWaste, 1e6))
		for _, m := range metrics {
			if m.Eval(bigger)+1e-9 < m.Eval(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
