// Package rum implements the Representative Unified Metric framework
// (§4.1): a pluggable objective that unifies performance (cold-start
// seconds) and efficiency (wasted GB-seconds) into one tunable score,
// decoupling platform optimization from any hard-coded metric.
//
// RUM values are costs — lower is better. The same Sample feeds any Metric,
// so a provider can re-score a run under a new objective without re-running
// it, and FeMux can be trained against whichever metric a service tier
// sells.
package rum

import "math"

// Constants derived in §4.1 from public cloud data:
//
//   - a market-share-weighted keep-alive time of 537 s across AWS, Azure,
//     and Google, with a 150 MB median memory consumption, wastes up to
//     537 s x 0.150 GB ≈ 80.5 GB-seconds per cold start avoided;
//   - the popularity-and-market-share-weighted average cold start across
//     providers and languages is 0.808 s;
//   - hence providers implicitly trade 80.5 / 0.808 ≈ 99.7 GB-seconds of
//     memory per cold-start second.
const (
	// DefaultColdStartSec is the provider-weighted average cold start
	// duration used when a trace does not record real cold start times.
	DefaultColdStartSec = 0.808
	// GBSecondsPerColdStartSec is the implied exchange rate between wasted
	// memory and cold-start latency.
	GBSecondsPerColdStartSec = 99.7
)

// Sample aggregates the raw outcomes of a lifetime-management run for one
// application (or, summed, for a fleet). All fields are totals over the
// evaluated window.
type Sample struct {
	ColdStarts     int     // number of cold starts incurred
	ColdStartSec   float64 // total cold-start seconds experienced
	WastedGBSec    float64 // idle pod memory-time (allocated but unused)
	AllocatedGBSec float64 // total pod memory-time allocated
	ExecSec        float64 // total execution seconds served
	Invocations    int     // invocations served
}

// Add returns the element-wise sum of two samples.
func (s Sample) Add(o Sample) Sample {
	return Sample{
		ColdStarts:     s.ColdStarts + o.ColdStarts,
		ColdStartSec:   s.ColdStartSec + o.ColdStartSec,
		WastedGBSec:    s.WastedGBSec + o.WastedGBSec,
		AllocatedGBSec: s.AllocatedGBSec + o.AllocatedGBSec,
		ExecSec:        s.ExecSec + o.ExecSec,
		Invocations:    s.Invocations + o.Invocations,
	}
}

// Sum aggregates many samples.
func Sum(samples []Sample) Sample {
	var total Sample
	for _, s := range samples {
		total = total.Add(s)
	}
	return total
}

// ColdStartFraction returns ColdStarts / Invocations (0 when idle).
func (s Sample) ColdStartFraction() float64 {
	if s.Invocations == 0 {
		return 0
	}
	return float64(s.ColdStarts) / float64(s.Invocations)
}

// Metric scores a Sample. Lower is better. Implementations must be pure
// functions of the sample so training and evaluation agree (§4.2.1's
// objective-aware principle).
type Metric interface {
	Name() string
	Eval(s Sample) float64
}

// Weighted is the paper's first RUM formulation (Eq. 1):
//
//	w1 x (cold start seconds) + w2 x (wasted GB-seconds)
//
// The ratio w2/w1 states how much memory the provider will waste to avoid
// one cold-start second.
type Weighted struct {
	MetricName string
	W1, W2     float64
}

// Name implements Metric.
func (w Weighted) Name() string {
	if w.MetricName != "" {
		return w.MetricName
	}
	return "weighted"
}

// Eval implements Metric.
func (w Weighted) Eval(s Sample) float64 {
	return w.W1*s.ColdStartSec + w.W2*s.WastedGBSec
}

// Default returns Eq. (1) with the derived weights w1 = 1,
// w2 = 1/99.7 — the RUM used throughout the paper unless stated otherwise.
func Default() Weighted {
	return Weighted{MetricName: "rum-default", W1: 1, W2: 1 / GBSecondsPerColdStartSec}
}

// ColdStartHeavy returns the FeMux-CS variant: 4x higher cold-start weight,
// for latency-sensitive (premium) tiers.
func ColdStartHeavy() Weighted {
	return Weighted{MetricName: "rum-cs", W1: 4, W2: 1 / GBSecondsPerColdStartSec}
}

// MemoryHeavy returns the FeMux-Mem variant: 4x higher wasted-memory
// weight, for efficiency-oriented tiers.
func MemoryHeavy() Weighted {
	return Weighted{MetricName: "rum-mem", W1: 1, W2: 4 / GBSecondsPerColdStartSec}
}

// ExecAware is the paper's second RUM formulation (Eq. 2):
//
//	w1 x sqrt(cold start seconds / execution time) + w2 x (wasted GB-seconds)
//
// It discounts cold starts for long-running executions, emphasising
// mitigation where a cold start dominates the request (short executions).
type ExecAware struct {
	W1, W2 float64
}

// Name implements Metric.
func (ExecAware) Name() string { return "rum-exec" }

// Eval implements Metric.
func (e ExecAware) Eval(s Sample) float64 {
	var ratio float64
	if s.ColdStartSec > 0 {
		exec := s.ExecSec
		if exec <= 0 {
			// No recorded execution time: treat the impact as maximal by
			// normalizing against one second.
			exec = 1
		}
		ratio = math.Sqrt(s.ColdStartSec / exec)
	}
	return e.W1*ratio + e.W2*s.WastedGBSec
}

// DefaultExecAware returns Eq. (2) with weights aligned to the default
// exchange rate.
func DefaultExecAware() ExecAware {
	return ExecAware{W1: 1, W2: 1 / GBSecondsPerColdStartSec}
}

// EvalPerApp scores each app sample under m and returns the total. For
// Weighted metrics the per-app sum equals the aggregate score; for
// non-linear metrics such as ExecAware the per-app application is the
// definition (cold-start impact is relative to each app's execution time,
// §5.1.3).
func EvalPerApp(m Metric, samples []Sample) float64 {
	var total float64
	for _, s := range samples {
		total += m.Eval(s)
	}
	return total
}
