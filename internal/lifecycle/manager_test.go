package lifecycle

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/femux"
	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
	"github.com/ubc-cirrus-lab/femux-go/internal/serving"
	"github.com/ubc-cirrus-lab/femux-go/internal/timeseries"
)

const testBlock = 30

// fakeServing is the injectable serving instance: the manager's whole
// contract is the Serving interface, so tests drive retrain -> shadow ->
// promote cycles with no HTTP, no clock, and no sleeps.
type fakeServing struct {
	mu      sync.Mutex
	model   *femux.Model
	windows []AppWindow
	gated   bool
	swaps   int
}

func (f *fakeServing) LifecycleSnapshot(maxApps int, driftThreshold float64) Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	ws := f.windows
	if maxApps > 0 && len(ws) > maxApps {
		ws = ws[:maxApps]
	}
	snap := SnapshotFromWindows(f.model, ws, testBlock, driftThreshold)
	snap.Gated = f.gated
	return snap
}

func (f *fakeServing) SwapModel(m *femux.Model) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.model = m
	f.swaps++
}

func (f *fakeServing) state() (*femux.Model, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.model, f.swaps
}

// regimeA is smooth, periodic, low-level demand; regimeB is bursty
// demand an order of magnitude hotter. A fleet that switches from A to B
// mid-window is the drift scenario.
func regimeA(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	for t := range vals {
		vals[t] = 2 + math.Sin(2*math.Pi*float64(t)/60) + 0.05*rng.Float64()
	}
	return vals
}

func regimeB(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	for t := range vals {
		if t%6 < 2 {
			vals[t] = 25 + 5*rng.Float64()
		}
	}
	return vals
}

func trainModel(t testing.TB, apps []femux.TrainApp) *femux.Model {
	t.Helper()
	cfg := femux.DefaultConfig(rum.Default())
	cfg.BlockSize = testBlock
	cfg.Window = 30
	cfg.K = 3
	// Registry forecasters only: the SaveTo round trip reloads by name.
	cfg.Forecasters = []forecast.Forecaster{
		forecast.NewFFT(10), forecast.NewExpSmoothing(), forecast.NewCeilPeak(10),
	}
	m, err := femux.Train(apps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func appsFrom(windows []AppWindow) []femux.TrainApp {
	apps := make([]femux.TrainApp, len(windows))
	for i, w := range windows {
		apps[i] = femux.TrainApp{Name: w.Name, Demand: timeseries.New(time.Minute, w.Window)}
	}
	return apps
}

// steadyFleet: every app still follows the training regime (no drift).
func steadyFleet(n int) []AppWindow {
	ws := make([]AppWindow, n)
	for i := range ws {
		ws[i] = AppWindow{Name: string(rune('a' + i)), Window: regimeA(120, int64(i+1))}
	}
	return ws
}

// driftedFleet: every app ran regime A, then switched to regime B.
func driftedFleet(n int) []AppWindow {
	ws := make([]AppWindow, n)
	for i := range ws {
		w := append(regimeA(120, int64(i+1)), regimeB(120, int64(i+100))...)
		ws[i] = AppWindow{Name: string(rune('a' + i)), Window: w}
	}
	return ws
}

// TestRunCycleOutcomes walks the manager through every outcome with the
// injectable trigger — no ticker, no sleeps.
func TestRunCycleOutcomes(t *testing.T) {
	live := trainModel(t, appsFrom(steadyFleet(4)))

	// No windows at all -> no-data.
	sv := &fakeServing{model: live}
	m := New(sv, Config{Seed: 42})
	if res := m.RunCycle(); res.Outcome != OutcomeNoData {
		t.Fatalf("empty fleet: outcome %q, want %q", res.Outcome, OutcomeNoData)
	}

	// Stationary fleet under a real threshold -> idle, nothing trained.
	sv = &fakeServing{model: live, windows: steadyFleet(4)}
	m = New(sv, Config{DriftThreshold: 0.5, Seed: 42})
	res := m.RunCycle()
	if res.Outcome != OutcomeIdle {
		t.Fatalf("steady fleet: outcome %q (maxDrift %v), want %q", res.Outcome, res.MaxDrift, OutcomeIdle)
	}
	if _, swaps := sv.state(); swaps != 0 {
		t.Fatal("idle cycle must not swap the model")
	}

	// Drifted fleet -> retrain, shadow, promote (the improvement gate is
	// opened wide so the flow itself is what's under test).
	sv = &fakeServing{model: live, windows: driftedFleet(4)}
	m = New(sv, Config{DriftThreshold: 0.5, MinImprove: -100, Seed: 42})
	res = m.RunCycle()
	if res.Outcome != OutcomePromoted {
		t.Fatalf("drifted fleet: outcome %q (err %q), want %q", res.Outcome, res.Error, OutcomePromoted)
	}
	if res.MaxDrift < 0.5 {
		t.Errorf("drifted fleet reported maxDrift %v, want >= 0.5", res.MaxDrift)
	}
	cur, swaps := sv.state()
	if swaps != 1 || cur == live {
		t.Fatalf("promotion must swap in the candidate (swaps=%d)", swaps)
	}
	st := m.Status()
	if st.Cycles != 1 || st.Retrains != 1 || st.Promotions != 1 {
		t.Errorf("status after promotion: %+v", st)
	}

	// An impossible improvement bar -> candidate trained but kept out.
	sv = &fakeServing{model: live, windows: driftedFleet(4)}
	m = New(sv, Config{DriftThreshold: 0.5, MinImprove: 0.999999, Seed: 42})
	res = m.RunCycle()
	if res.Outcome != OutcomeKept {
		t.Fatalf("high bar: outcome %q, want %q", res.Outcome, OutcomeKept)
	}
	if res.LiveRUM <= 0 {
		t.Errorf("shadow evaluation reported live RUM %v, want > 0 on a bursty fleet", res.LiveRUM)
	}
	if _, swaps := sv.state(); swaps != 0 {
		t.Fatal("kept cycle must not swap the model")
	}
}

// TestPromotionBitRepeatable pins determinism: two managers over the same
// snapshot and seed produce bitwise-identical shadow RUMs and the same
// decision.
func TestPromotionBitRepeatable(t *testing.T) {
	live := trainModel(t, appsFrom(steadyFleet(4)))
	run := func() CycleResult {
		sv := &fakeServing{model: live, windows: driftedFleet(4)}
		m := New(sv, Config{DriftThreshold: 0.5, MinImprove: -100, Seed: 1234})
		return m.RunCycle()
	}
	a, b := run(), run()
	a.TrainMs, b.TrainMs = 0, 0 // wall-clock, legitimately differs
	if a != b {
		t.Fatalf("cycle results differ for a fixed seed:\n%+v\n%+v", a, b)
	}
	if math.Float64bits(a.LiveRUM) != math.Float64bits(b.LiveRUM) ||
		math.Float64bits(a.CandRUM) != math.Float64bits(b.CandRUM) {
		t.Fatalf("shadow RUMs not bit-identical: % x/% x vs % x/% x",
			a.LiveRUM, a.CandRUM, b.LiveRUM, b.CandRUM)
	}
}

// TestReplicaGateSkips is the promotion-safety regression: while the
// snapshot is gated (a replica catching up on its primary's WAL), the
// cycle must skip — no retrain, no swap — and surface the skip in both
// the status and the femux_lifecycle_skips_total metric.
func TestReplicaGateSkips(t *testing.T) {
	live := trainModel(t, appsFrom(steadyFleet(4)))
	sv := &fakeServing{model: live, windows: driftedFleet(4), gated: true}
	m := New(sv, Config{DriftThreshold: 0, MinImprove: -100, Seed: 42})
	reg := serving.NewRegistry()
	lm := m.InstrumentWith(reg)

	res := m.RunCycle()
	if res.Outcome != OutcomeSkippedReplica {
		t.Fatalf("gated cycle: outcome %q, want %q", res.Outcome, OutcomeSkippedReplica)
	}
	if _, swaps := sv.state(); swaps != 0 {
		t.Fatal("gated cycle must not swap the model")
	}
	if got := lm.Skips.Value("replica"); got != 1 {
		t.Errorf("femux_lifecycle_skips_total{reason=replica} = %v, want 1", got)
	}
	if got := lm.Cycles.Value(string(OutcomeSkippedReplica)); got != 1 {
		t.Errorf("femux_lifecycle_cycles_total{outcome=skipped-replica} = %v, want 1", got)
	}
	if st := m.Status(); st.Skips != 1 || st.Retrains != 0 || st.Promotions != 0 {
		t.Errorf("status after gated cycle: %+v", st)
	}

	// Ungate (the replica was promoted): the very next cycle proceeds.
	sv.mu.Lock()
	sv.gated = false
	sv.mu.Unlock()
	if res := m.RunCycle(); res.Outcome != OutcomePromoted {
		t.Fatalf("post-promotion cycle: outcome %q, want %q", res.Outcome, OutcomePromoted)
	}
}

// TestPromoteSaveTo checks the fleet-propagation half of promotion: the
// winning candidate is written (atomically) where -watch-model followers
// poll, and the file round-trips through the model loader.
func TestPromoteSaveTo(t *testing.T) {
	live := trainModel(t, appsFrom(steadyFleet(4)))
	path := filepath.Join(t.TempDir(), "model.json")
	sv := &fakeServing{model: live, windows: driftedFleet(4)}
	m := New(sv, Config{DriftThreshold: 0.5, MinImprove: -100, Seed: 42, SaveTo: path})
	res := m.RunCycle()
	if res.Outcome != OutcomePromoted || res.Error != "" {
		t.Fatalf("cycle: %+v", res)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("promoted model not saved: %v", err)
	}
	defer f.Close()
	loaded, err := femux.Load(f)
	if err != nil {
		t.Fatalf("saved model does not load: %v", err)
	}
	cur, _ := sv.state()
	if loaded.DefaultForecaster().Name() != cur.DefaultForecaster().Name() {
		t.Errorf("saved model default %q != promoted %q",
			loaded.DefaultForecaster().Name(), cur.DefaultForecaster().Name())
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind: %v", err)
	}
}

// TestShadowWindowTrims checks the recency bound: with ShadowWindow set,
// retraining sees only each app's trailing observations.
func TestShadowWindowTrims(t *testing.T) {
	windows := []AppWindow{
		{Name: "a", Window: make([]float64, 500)},
		{Name: "b", Window: make([]float64, 40)},
		{Name: "empty"},
	}
	apps := shadowApps(windows, 120)
	if len(apps) != 2 {
		t.Fatalf("got %d apps, want 2 (empty window dropped)", len(apps))
	}
	if n := len(apps[0].Demand.Values); n != 120 {
		t.Errorf("app a trimmed to %d observations, want 120", n)
	}
	if n := len(apps[1].Demand.Values); n != 40 {
		t.Errorf("app b trimmed to %d observations, want 40 (shorter than the window)", n)
	}
}

// TestStartStop smokes the background trigger without depending on the
// ticker firing: Start flips Running, Stop blocks until the loop exits.
func TestStartStop(t *testing.T) {
	live := trainModel(t, appsFrom(steadyFleet(2)))
	m := New(&fakeServing{model: live}, Config{RetrainEvery: time.Hour})
	m.Start()
	if !m.Status().Running {
		t.Fatal("Start did not mark the manager running")
	}
	m.Start() // second Start is a no-op, not a second goroutine
	m.Stop()
	if m.Status().Running {
		t.Fatal("Stop did not mark the manager stopped")
	}
	m.Stop() // idempotent
}

// TestTrainFailureIsContained: a fleet whose windows cannot complete one
// block fails the retrain; the cycle reports it and the model survives.
func TestTrainFailureIsContained(t *testing.T) {
	live := trainModel(t, appsFrom(steadyFleet(4)))
	short := []AppWindow{{Name: "a", Window: regimeB(10, 1)}} // < one block
	sv := &fakeServing{model: live, windows: short}
	m := New(sv, Config{DriftThreshold: 0, MinImprove: -100, Seed: 42})
	res := m.RunCycle()
	if res.Outcome != OutcomeFailed || res.Error == "" {
		t.Fatalf("short-window cycle: %+v, want failed with an error", res)
	}
	if cur, swaps := sv.state(); swaps != 0 || cur != live {
		t.Fatal("failed retrain must leave the live model untouched")
	}
}
