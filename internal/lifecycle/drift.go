// Package lifecycle closes the loop from serving-path drift signals to
// automatic, safely-evaluated model promotion: per-app feature drift is
// detected incrementally on the observe path, a background retrainer
// re-clusters on recent windows (memoized through internal/memo so
// unchanged apps are cache hits), candidates are shadow-evaluated
// against the live model on the same windows, and winners are promoted
// through the service's atomic model swap.
//
// Everything is deterministic by construction: the retrainer exposes a
// synchronous RunCycle (tests drive retrain -> shadow -> promote with no
// sleeps or clocks), training is seeded, and the drift detector is a
// pure function of the observation stream, so promotion decisions are
// bit-repeatable for a fixed seed.
package lifecycle

import "math"

// MaxDriftScore is the ceiling a drift score is clamped to. Non-finite
// intermediate values (a NaN or Inf observation poisoning the moment
// accumulators) clamp here too, so Score never returns NaN — drifting
// "infinitely" and drifting "off the scale" are the same signal to the
// retrainer.
const MaxDriftScore = 1e6

// BlockStats are streaming moments over one block of observations,
// accumulated in arrival order. They deliberately use the single-pass
// Sum/SumSq form rather than the two-pass stddev in internal/features:
// single-pass accumulators can be maintained per observe AND recomputed
// from a stored window by replaying the same additions, which is what
// makes the incremental and batch paths Float64bits-identical (the tier
// property test's invariant). They summarize the same axes the offline
// feature extractor clusters on — level, dispersion, burst peak, and
// activity density — cheaply enough for the zero-allocation observe path.
type BlockStats struct {
	Count   int     // observations in the block
	NonZero int     // observations with traffic (density)
	Sum     float64 // running sum (mean = Sum/Count)
	SumSq   float64 // running sum of squares (variance via SumSq/Count - mean^2)
	Max     float64 // largest observation (burst peak)
}

// Add folds one observation into the block, in arrival order.
func (b *BlockStats) Add(v float64) {
	b.Count++
	b.Sum += v
	b.SumSq += v * v
	if v != 0 { // NaN compares non-equal: counted as activity, deterministically
		b.NonZero++
	}
	if v > b.Max {
		b.Max = v
	}
}

// Mean returns the block's mean concurrency (0 for an empty block).
func (b BlockStats) Mean() float64 {
	if b.Count == 0 {
		return 0
	}
	return b.Sum / float64(b.Count)
}

// Std returns the block's population standard deviation. Negative
// variance from floating-point cancellation — and NaN from poisoned
// accumulators — both collapse to 0; the NaN still reaches Score through
// Mean, so a poisoned block clamps rather than hides.
func (b BlockStats) Std() float64 {
	if b.Count == 0 {
		return 0
	}
	m := b.Sum / float64(b.Count)
	v := b.SumSq/float64(b.Count) - m*m
	if !(v > 0) {
		return 0
	}
	return math.Sqrt(v)
}

// Activity returns the fraction of the block's minutes with any traffic.
func (b BlockStats) Activity() float64 {
	if b.Count == 0 {
		return 0
	}
	return float64(b.NonZero) / float64(b.Count)
}

// Detector tracks one app's feature drift as a pure function of its
// observation stream: the reference block is the first completed block
// the stream produced, the comparison block is the latest completed one,
// and cur accumulates the partial block in between. Because the state is
// derived from nothing but (window, blockSize), an evicted app's
// detector can be rebuilt from its restored window bit-identically —
// tier demotion is invisible to drift scores exactly as it is to
// forecasts. Zero value is unusable; build with NewDetector or
// DetectorOf. Methods are not goroutine-safe: the service drives the
// detector under the per-app lock, like the forecast workspace.
type Detector struct {
	blockSize int
	blocks    int // completed blocks seen
	ref       BlockStats
	last      BlockStats
	cur       BlockStats
}

// NewDetector returns an empty detector over blocks of blockSize
// observations. blockSize <= 0 disables block completion (Score stays 0).
func NewDetector(blockSize int) Detector {
	return Detector{blockSize: blockSize}
}

// Observe folds one observation into the detector. Steady state performs
// zero heap allocations (pinned by TestDetectorZeroAlloc) and never
// panics, whatever bit pattern v holds.
func (d *Detector) Observe(v float64) {
	d.cur.Add(v)
	if d.blockSize > 0 && d.cur.Count >= d.blockSize {
		if d.blocks == 0 {
			d.ref = d.cur
		}
		d.last = d.cur
		d.blocks++
		d.cur = BlockStats{}
	}
}

// Rebuild resets the detector and replays window through Observe — the
// restore path for apps whose in-memory state was tier-evicted. With the
// full stream retained (no WindowCap truncation) the rebuilt state is
// Float64bits-identical to the incrementally maintained one.
func (d *Detector) Rebuild(window []float64) {
	*d = Detector{blockSize: d.blockSize}
	for _, v := range window {
		d.Observe(v)
	}
}

// DetectorOf is the batch recomputation: it derives the same state as
// incremental Observe calls, but by slicing the window into blocks and
// summing each directly. The tier property tests assert this independent
// path is Float64bits-identical to the incremental one.
func DetectorOf(window []float64, blockSize int) Detector {
	d := Detector{blockSize: blockSize}
	if blockSize <= 0 {
		for _, v := range window {
			d.cur.Add(v)
		}
		return d
	}
	n := len(window) / blockSize
	sum := func(blk []float64) BlockStats {
		var s BlockStats
		for _, v := range blk {
			s.Add(v)
		}
		return s
	}
	if n > 0 {
		d.ref = sum(window[:blockSize])
		d.last = sum(window[(n-1)*blockSize : n*blockSize])
		d.blocks = n
	}
	d.cur = sum(window[n*blockSize:])
	return d
}

// BitEqual reports whether two detectors hold Float64bits-identical
// state — the equivalence the tier property and fuzz tests assert
// between the incremental and batch paths.
func (d Detector) BitEqual(o Detector) bool {
	return d.blockSize == o.blockSize && d.blocks == o.blocks &&
		d.ref.bitEqual(o.ref) && d.last.bitEqual(o.last) && d.cur.bitEqual(o.cur)
}

func (b BlockStats) bitEqual(o BlockStats) bool {
	return b.Count == o.Count && b.NonZero == o.NonZero &&
		math.Float64bits(b.Sum) == math.Float64bits(o.Sum) &&
		math.Float64bits(b.SumSq) == math.Float64bits(o.SumSq) &&
		math.Float64bits(b.Max) == math.Float64bits(o.Max)
}

// Blocks reports how many completed blocks the detector has seen.
func (d *Detector) Blocks() int { return d.blocks }

// BlockSize reports the detector's block geometry.
func (d *Detector) BlockSize() int { return d.blockSize }

// Score returns the app's drift score: 0 until two blocks have
// completed, then the distance between the latest completed block's
// moments and the reference block's, normalized by the reference scale.
// The score is always finite, non-negative, and at most MaxDriftScore —
// NaN/Inf observations clamp to the ceiling instead of poisoning the
// comparison (pinned by FuzzDriftDetector).
func (d *Detector) Score() float64 {
	if d.blocks < 2 {
		return 0
	}
	a, b := d.ref, d.last
	am, bm := a.Mean(), b.Mean()
	scale := a.Std() + math.Abs(am)
	if !(scale > 0) { // reference block was all zeros (or poisoned): absolute scale
		scale = 1
	}
	s := math.Abs(bm-am)/scale +
		math.Abs(b.Std()-a.Std())/scale +
		math.Abs(b.Activity()-a.Activity())
	if !(s <= MaxDriftScore) { // catches NaN and +Inf in one comparison
		return MaxDriftScore
	}
	return s
}
