package lifecycle

import (
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/femux"
	"github.com/ubc-cirrus-lab/femux-go/internal/memo"
	"github.com/ubc-cirrus-lab/femux-go/internal/serving"
	"github.com/ubc-cirrus-lab/femux-go/internal/timeseries"
)

// AppWindow is one app's recent observation window, as handed to the
// retrainer by the serving instance.
type AppWindow struct {
	Name   string
	Window []float64
}

// Snapshot is everything one retrain cycle reads from the serving
// instance, captured at cycle start so the cycle's decision is a pure
// function of it (plus the manager's seed).
type Snapshot struct {
	// Model is the currently-serving model; its config seeds the
	// candidate's (same geometry, forecasters, metric).
	Model *femux.Model
	// Apps holds the fleet's observation windows, sorted by name so
	// training input order — and with it the candidate model — is
	// deterministic.
	Apps []AppWindow
	// Gated is true while promotion must not fire: an unpromoted replica
	// is still catching up on its primary's WAL, and swapping its model
	// would act on half-replicated state (and 503-gated serving means
	// nothing is observing drift anyway).
	Gated bool
	// MaxDrift/Drifted/Tracked summarize per-app drift across the hot
	// tier: the largest score, how many apps sit at or above the caller's
	// threshold, and how many were examined.
	MaxDrift float64
	Drifted  int
	Tracked  int
}

// Serving is the slice of the serving instance the lifecycle drives.
// *knative.Service implements it; tests and the offline regime-change
// study substitute their own.
type Serving interface {
	// LifecycleSnapshot captures the retrain inputs. maxApps > 0 bounds
	// how many windows are returned (smallest names first, so the cap is
	// deterministic); driftThreshold feeds the Drifted count.
	LifecycleSnapshot(maxApps int, driftThreshold float64) Snapshot
	// SwapModel atomically replaces the serving model.
	SwapModel(*femux.Model)
}

// Config tunes the retrain lifecycle.
type Config struct {
	// RetrainEvery is the background cycle period for Start. RunCycle
	// ignores it — tests and the admin endpoint trigger cycles directly.
	RetrainEvery time.Duration
	// DriftThreshold gates retraining: a cycle proceeds only when some
	// app's drift score reaches it. 0 retrains every cycle.
	DriftThreshold float64
	// ShadowWindow bounds how many trailing observations per app feed
	// retraining and shadow evaluation. 0 uses each app's whole window.
	ShadowWindow int
	// MinImprove is the fractional shadow-RUM improvement required to
	// promote: candidate RUM must be <= live RUM * (1 - MinImprove).
	// Negative values promote even slightly-worse candidates (useful in
	// smoke tests, dangerous in production).
	MinImprove float64
	// MaxApps bounds how many apps are pulled into a retrain (0 = all).
	MaxApps int
	// Workers is the candidate training parallelism (0 = one per CPU).
	Workers int
	// Seed seeds candidate training; for a fixed seed and snapshot the
	// promotion decision is bit-repeatable. 0 means seed 1.
	Seed int64
	// Cache memoizes per-app training/evaluation work across cycles, so
	// apps whose windows did not change between cycles are cache hits.
	// nil gets a fresh in-memory cache.
	Cache *memo.Cache
	// SaveTo, when set, atomically writes every promoted model to this
	// path (tmp + rename), which is how a promotion propagates to fleet
	// members polling the file with -watch-model.
	SaveTo string
	// Logf, when set, receives one line per non-idle cycle.
	Logf func(format string, args ...interface{})
}

// Outcome classifies one retrain cycle.
type Outcome string

const (
	// OutcomeNoData: the snapshot had no app windows to train on.
	OutcomeNoData Outcome = "no-data"
	// OutcomeIdle: max drift below the threshold; nothing retrained.
	OutcomeIdle Outcome = "idle"
	// OutcomeSkippedReplica: the instance is an unpromoted replica;
	// the cycle was skipped (surfaced by femux_lifecycle_skips_total).
	OutcomeSkippedReplica Outcome = "skipped-replica"
	// OutcomeFailed: retraining or evaluation errored; the live model
	// is untouched.
	OutcomeFailed Outcome = "failed"
	// OutcomeKept: the candidate did not beat the live model by
	// MinImprove on the shadow windows; the live model is kept.
	OutcomeKept Outcome = "kept"
	// OutcomePromoted: the candidate won shadow evaluation and was
	// swapped in.
	OutcomePromoted Outcome = "promoted"
)

// CycleResult reports one retrain cycle's decision and its inputs.
type CycleResult struct {
	Outcome  Outcome `json:"outcome"`
	MaxDrift float64 `json:"maxDrift"`
	Drifted  int     `json:"driftedApps"`
	Tracked  int     `json:"trackedApps"`
	Apps     int     `json:"apps"` // windows fed to the retrainer
	LiveRUM  float64 `json:"liveRUM,omitempty"`
	CandRUM  float64 `json:"candidateRUM,omitempty"`
	TrainMs  int64   `json:"trainMs,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// Status is the /v1/admin/lifecycle view: lifetime counters plus the
// last cycle's result.
type Status struct {
	Running    bool        `json:"running"`
	Cycles     int         `json:"cycles"`
	Retrains   int         `json:"retrains"`
	Promotions int         `json:"promotions"`
	Skips      int         `json:"skips"`
	Last       CycleResult `json:"last"`
}

// Manager runs the retrain lifecycle against a serving instance. The
// trigger is injectable by construction: RunCycle is the whole cycle,
// synchronous and sleep-free, and Start merely calls it on a ticker.
type Manager struct {
	cfg Config
	sv  Serving

	// runMu serializes cycles (ticker vs admin POST): the newest snapshot
	// wins, overlapping retrains would just waste the cache.
	runMu sync.Mutex

	mu     sync.Mutex
	status Status

	metrics *Metrics

	stop chan struct{}
	done chan struct{}
}

// Metrics are the lifecycle's metric families.
type Metrics struct {
	Cycles     *serving.Counter // femux_lifecycle_cycles_total{outcome}
	Retrains   *serving.Counter // femux_lifecycle_retrains_total
	Promotions *serving.Counter // femux_lifecycle_promotions_total
	Skips      *serving.Counter // femux_lifecycle_skips_total{reason}
}

// New returns a Manager driving sv under cfg.
func New(sv Serving, cfg Config) *Manager {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Cache == nil {
		cfg.Cache = memo.New()
	}
	return &Manager{cfg: cfg, sv: sv}
}

// InstrumentWith registers the lifecycle metric families on reg. Call
// once, before Start.
func (m *Manager) InstrumentWith(reg *serving.Registry) *Metrics {
	lm := &Metrics{
		Cycles: reg.NewCounter("femux_lifecycle_cycles_total",
			"Retrain cycles run, by outcome.", "outcome"),
		Retrains: reg.NewCounter("femux_lifecycle_retrains_total",
			"Candidate models trained by the lifecycle."),
		Promotions: reg.NewCounter("femux_lifecycle_promotions_total",
			"Candidate models auto-promoted after winning shadow evaluation."),
		Skips: reg.NewCounter("femux_lifecycle_skips_total",
			"Cycles skipped without retraining, by reason.", "reason"),
	}
	m.mu.Lock()
	m.metrics = lm
	m.mu.Unlock()
	return lm
}

// Status returns the lifecycle status snapshot.
func (m *Manager) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.status
	st.Running = m.stop != nil
	return st
}

// Start runs RunCycle every cfg.RetrainEvery until Stop. No-op when the
// period is zero (lifecycle disabled) or already started.
func (m *Manager) Start() {
	if m.cfg.RetrainEvery <= 0 {
		return
	}
	m.mu.Lock()
	if m.stop != nil {
		m.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	m.stop, m.done = stop, done
	m.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(m.cfg.RetrainEvery)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				m.RunCycle()
			}
		}
	}()
}

// Stop halts the background trigger and waits for an in-flight cycle.
func (m *Manager) Stop() {
	m.mu.Lock()
	stop, done := m.stop, m.done
	m.stop, m.done = nil, nil
	m.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
	// A cycle the ticker fired just before Stop may still be running;
	// taking runMu (and releasing it immediately) waits it out.
	m.runMu.Lock()
	defer m.runMu.Unlock()
}

// RunCycle runs one full drift -> retrain -> shadow -> promote cycle,
// synchronously. It is the injectable trigger: production calls it from
// a ticker, the admin endpoint calls it on POST, and tests step it
// directly — the decision depends only on the snapshot and the seed.
func (m *Manager) RunCycle() CycleResult {
	m.runMu.Lock()
	defer m.runMu.Unlock()

	snap := m.sv.LifecycleSnapshot(m.cfg.MaxApps, m.cfg.DriftThreshold)
	res := CycleResult{
		MaxDrift: snap.MaxDrift, Drifted: snap.Drifted, Tracked: snap.Tracked,
	}
	switch {
	case snap.Gated:
		// Satellite invariant: promotion (and the retrain feeding it)
		// must not fire while a replica is catching up — its windows are
		// mid-replication and its serving path is 503-gated. Skip and
		// surface the skip as a metric instead of erroring.
		res.Outcome = OutcomeSkippedReplica
	case len(snap.Apps) == 0:
		res.Outcome = OutcomeNoData
	case snap.MaxDrift < m.cfg.DriftThreshold:
		res.Outcome = OutcomeIdle
	default:
		m.retrainShadowPromote(snap, &res)
	}
	m.record(res)
	return res
}

// retrainShadowPromote trains a candidate on the snapshot's shadow
// windows, replays the same windows through candidate and live model,
// and promotes the candidate when it wins by the configured margin.
func (m *Manager) retrainShadowPromote(snap Snapshot, res *CycleResult) {
	apps := shadowApps(snap.Apps, m.cfg.ShadowWindow)
	res.Apps = len(apps)

	// The candidate inherits the live model's geometry, forecaster set,
	// and metric; only the training data (recent windows), seed, and
	// cache differ. Reusing the cycle-persistent cache is what makes
	// apps with unchanged windows free to re-train.
	cfg := snap.Model.Config()
	cfg.Seed = m.cfg.Seed
	cfg.Cache = m.cfg.Cache
	if m.cfg.Workers != 0 {
		cfg.Workers = m.cfg.Workers
	}
	start := time.Now()
	candidate, err := femux.Train(apps, cfg)
	res.TrainMs = time.Since(start).Milliseconds()
	if err != nil {
		res.Outcome = OutcomeFailed
		res.Error = err.Error()
		return
	}

	// Shadow evaluation: both models replay the identical recent windows
	// through the concurrency simulator; nothing touches live serving.
	res.LiveRUM = femux.Evaluate(snap.Model, apps).RUM
	res.CandRUM = femux.Evaluate(candidate, apps).RUM

	if res.CandRUM > res.LiveRUM*(1-m.cfg.MinImprove) {
		res.Outcome = OutcomeKept
		return
	}
	m.sv.SwapModel(candidate)
	res.Outcome = OutcomePromoted
	if m.cfg.SaveTo != "" {
		if err := saveModelAtomic(m.cfg.SaveTo, candidate); err != nil {
			res.Error = fmt.Sprintf("promoted, but saving to %s failed: %v", m.cfg.SaveTo, err)
		}
	}
}

// record folds one cycle result into the status and metrics.
func (m *Manager) record(res CycleResult) {
	m.mu.Lock()
	m.status.Cycles++
	m.status.Last = res
	switch res.Outcome {
	case OutcomeSkippedReplica:
		m.status.Skips++
	case OutcomePromoted:
		m.status.Retrains++
		m.status.Promotions++
	case OutcomeKept, OutcomeFailed:
		m.status.Retrains++
	}
	lm := m.metrics
	logf := m.cfg.Logf
	m.mu.Unlock()
	if lm != nil {
		lm.Cycles.Inc(string(res.Outcome))
		switch res.Outcome {
		case OutcomeSkippedReplica:
			lm.Skips.Inc("replica")
		case OutcomePromoted:
			lm.Retrains.Inc()
			lm.Promotions.Inc()
		case OutcomeKept, OutcomeFailed:
			lm.Retrains.Inc()
		}
	}
	if logf != nil && res.Outcome != OutcomeIdle && res.Outcome != OutcomeNoData {
		logf("lifecycle: %s (maxDrift %.3f, %d apps, live RUM %.4f, candidate RUM %.4f)%s",
			res.Outcome, res.MaxDrift, res.Apps, res.LiveRUM, res.CandRUM,
			errSuffix(res.Error))
	}
}

func errSuffix(e string) string {
	if e == "" {
		return ""
	}
	return ": " + e
}

// shadowApps converts snapshot windows into training apps, keeping only
// the trailing shadowWindow observations of each (0 = all). Windows come
// in sorted by name, so the training input — and the candidate — is
// deterministic.
func shadowApps(windows []AppWindow, shadowWindow int) []femux.TrainApp {
	apps := make([]femux.TrainApp, 0, len(windows))
	for _, w := range windows {
		vals := w.Window
		if shadowWindow > 0 && len(vals) > shadowWindow {
			vals = vals[len(vals)-shadowWindow:]
		}
		if len(vals) == 0 {
			continue
		}
		apps = append(apps, femux.TrainApp{
			Name:   w.Name,
			Demand: timeseries.New(time.Minute, vals),
		})
	}
	return apps
}

// SnapshotFromWindows builds a Snapshot directly from windows: the drift
// summary is batch-recomputed per window with DetectorOf. It backs the
// offline regime-change study and tests, which have no serving instance.
func SnapshotFromWindows(model *femux.Model, windows []AppWindow, blockSize int, driftThreshold float64) Snapshot {
	snap := Snapshot{Model: model, Apps: windows}
	for _, w := range windows {
		d := DetectorOf(w.Window, blockSize)
		sc := d.Score()
		snap.Tracked++
		if sc > snap.MaxDrift {
			snap.MaxDrift = sc
		}
		if driftThreshold > 0 && sc >= driftThreshold {
			snap.Drifted++
		}
	}
	return snap
}

// saveModelAtomic writes the model under a temp name and renames it into
// place, so -watch-model pollers never observe a torn file.
func saveModelAtomic(path string, model *femux.Model) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := model.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
