package lifecycle

import (
	"math"
	"math/rand"
	"testing"
)

// detectorsEqual compares every accumulator field of two detectors at the
// bit level; any divergence between the incremental and batch paths shows
// up here, including ones invisible at comparison tolerances.
func detectorsEqual(a, b Detector) bool { return a.BitEqual(b) }

// TestDetectorIncrementalMatchesBatch is the core drift property: moments
// maintained one Observe at a time are Float64bits-identical to the batch
// recomputation from the same window, for every prefix length and several
// block geometries.
func TestDetectorIncrementalMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, blockSize := range []int{1, 2, 7, 30, 144} {
		window := make([]float64, 0, 400)
		d := NewDetector(blockSize)
		for i := 0; i < 400; i++ {
			v := 0.0
			switch rng.Intn(4) {
			case 0:
				v = rng.Float64() * 100
			case 1:
				v = rng.ExpFloat64()
			case 2: // leave zero (idle minute)
			case 3:
				v = float64(rng.Intn(5))
			}
			window = append(window, v)
			d.Observe(v)
			batch := DetectorOf(window, blockSize)
			if !detectorsEqual(d, batch) {
				t.Fatalf("blockSize %d: incremental and batch detectors diverge after %d observations\nincremental: %+v\nbatch: %+v",
					blockSize, len(window), d, batch)
			}
			if is, bs := d.Score(), batch.Score(); math.Float64bits(is) != math.Float64bits(bs) {
				t.Fatalf("blockSize %d: score diverges after %d observations: % x vs % x",
					blockSize, len(window), is, bs)
			}
		}
	}
}

// TestDetectorRebuildMatchesIncremental pins the tier-restore path:
// Rebuild from a retained window reproduces the incrementally maintained
// state bit for bit.
func TestDetectorRebuildMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	window := make([]float64, 333)
	for i := range window {
		window[i] = rng.Float64() * 10
	}
	inc := NewDetector(30)
	for _, v := range window {
		inc.Observe(v)
	}
	re := NewDetector(30)
	re.Observe(999) // stale state Rebuild must erase
	re.Rebuild(window)
	if !detectorsEqual(inc, re) {
		t.Fatalf("Rebuild state diverges from incremental:\nincremental: %+v\nrebuilt: %+v", inc, re)
	}
}

// TestDetectorScoreSafety drives the detector with adversarial values;
// the score must stay finite, non-negative, and bounded — never NaN.
func TestDetectorScoreSafety(t *testing.T) {
	hostile := []float64{
		math.NaN(), math.Inf(1), math.Inf(-1), -1, -math.MaxFloat64,
		math.MaxFloat64, math.SmallestNonzeroFloat64, 0, 1e308, -1e308,
	}
	for _, blockSize := range []int{0, -1, 1, 3, 8} {
		d := NewDetector(blockSize)
		for i := 0; i < 64; i++ {
			d.Observe(hostile[i%len(hostile)])
			s := d.Score()
			if math.IsNaN(s) || s < 0 || s > MaxDriftScore {
				t.Fatalf("blockSize %d obs %d: score %v out of [0, %v]", blockSize, i, s, MaxDriftScore)
			}
		}
	}
}

// TestDetectorScoreSemantics checks the signal itself: a stationary
// stream scores near zero, a regime change scores high, and fewer than
// two completed blocks score exactly zero.
func TestDetectorScoreSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	steady := NewDetector(60)
	for i := 0; i < 600; i++ {
		steady.Observe(5 + 0.1*rng.Float64())
	}
	if s := steady.Score(); s > 0.05 {
		t.Errorf("stationary stream scored %v, want near 0", s)
	}

	shifted := NewDetector(60)
	for i := 0; i < 300; i++ {
		shifted.Observe(5 + 0.1*rng.Float64())
	}
	for i := 0; i < 300; i++ { // regime change: 8x the level, bursty
		v := 0.0
		if i%3 == 0 {
			v = 40 + 10*rng.Float64()
		}
		shifted.Observe(v)
	}
	if s := shifted.Score(); s < 1 {
		t.Errorf("regime change scored %v, want >= 1", s)
	}

	fresh := NewDetector(60)
	for i := 0; i < 119; i++ { // one completed block plus a partial
		fresh.Observe(float64(i))
		if s := fresh.Score(); s != 0 {
			t.Fatalf("score %v before two completed blocks, want 0", s)
		}
	}
}

// TestDetectorZeroAlloc pins the observe-path contract: once embedded in
// serving state, feeding the detector and reading its score allocate
// nothing.
func TestDetectorZeroAlloc(t *testing.T) {
	d := NewDetector(30)
	for i := 0; i < 100; i++ {
		d.Observe(float64(i % 7))
	}
	allocs := testing.AllocsPerRun(100, func() {
		d.Observe(1.5)
		_ = d.Score()
	})
	if allocs != 0 {
		t.Fatalf("drift observe+score: %v allocs/op, want 0", allocs)
	}
}
