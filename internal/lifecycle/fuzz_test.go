package lifecycle

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzDriftDetector feeds raw float bit patterns — NaNs, infinities,
// negatives, subnormals — straight into the detector, bypassing the HTTP
// layer's validation. Whatever arrives, Observe must not panic, the
// score must never be NaN or escape [0, MaxDriftScore], and the
// incremental state must stay bit-identical to the batch recomputation
// (the invariant tier restores rely on).
func FuzzDriftDetector(f *testing.F) {
	f.Add([]byte{1}, uint8(30))
	f.Add(binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.NaN())), uint8(1))
	f.Add(binary.LittleEndian.AppendUint64(
		binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.Inf(1))),
		math.Float64bits(-1)), uint8(2))
	seed := make([]byte, 8*8)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(seed[i*8:], math.Float64bits(float64(i)*1e300))
	}
	f.Add(seed, uint8(3))

	f.Fuzz(func(t *testing.T, raw []byte, blockByte uint8) {
		blockSize := int(blockByte%64) - 1 // [-1, 62]: exercises the disabled geometries too
		d := NewDetector(blockSize)
		window := make([]float64, 0, len(raw)/8)
		for len(raw) >= 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(raw))
			raw = raw[8:]
			window = append(window, v)
			d.Observe(v)
			s := d.Score()
			if math.IsNaN(s) || s < 0 || s > MaxDriftScore {
				t.Fatalf("score %v out of [0, %v] after %d observations", s, MaxDriftScore, len(window))
			}
		}
		batch := DetectorOf(window, blockSize)
		if !detectorsEqual(d, batch) {
			t.Fatalf("incremental and batch detectors diverge on %d observations:\nincremental: %+v\nbatch: %+v",
				len(window), d, batch)
		}
		if is, bs := d.Score(), batch.Score(); math.Float64bits(is) != math.Float64bits(bs) {
			t.Fatalf("score bits diverge: % x vs % x", is, bs)
		}
	})
}
