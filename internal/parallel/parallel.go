// Package parallel provides the bounded fan-out primitive used by every
// embarrassingly-parallel sweep in this repository: offline FeMux training
// (one simulation per (app, forecaster) pair), the experiment sweeps over
// policies, cache sizes, and feature combinations, and per-app trace
// synthesis. The design constraint is determinism: callers index work by
// position and every worker writes only its own slot, so a seeded run
// produces bit-identical output whether it uses one worker or many. All
// cross-worker reductions stay with the caller, who performs them serially
// in index order after the fan-out completes.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: values <= 0 mean "one worker per
// available CPU" (GOMAXPROCS), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 means one per CPU). Indices are handed out in ascending
// order via an atomic counter, so the set of executed indices is exactly
// [0, n) regardless of worker count. fn must be safe to call concurrently;
// determinism is achieved by having fn write only to position i of
// caller-owned storage. A panic in any fn is re-raised in the caller after
// all workers have stopped.
//
// With one worker (or n <= 1) the loop runs inline on the calling
// goroutine: no goroutines, no synchronization — the exact serial
// reference path the equivalence tests compare against.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		panicVal atomic.Value
	)
	worker := func() {
		defer wg.Done()
		for {
			if panicked.Load() {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						// First panic wins; later ones are dropped. The
						// sentinel wrapper keeps nil-valued panics visible.
						if panicked.CompareAndSwap(false, true) {
							panicVal.Store(capturedPanic{val: r})
						}
					}
				}()
				fn(i)
			}()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	if p, ok := panicVal.Load().(capturedPanic); ok {
		panic(p.val)
	}
}

type capturedPanic struct{ val any }

// Map applies fn to every index in [0, n) using at most workers goroutines
// and returns the results in index order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// MapErr is Map with error propagation. If any call fails, workers stop
// picking up new work (calls already in flight run to completion) and the
// error from the lowest-indexed failure among the calls that ran is
// returned. With one worker this is exactly the first error a serial loop
// would hit. On error the result slice is nil.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	var (
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		failed   atomic.Bool
	)
	ForEach(workers, n, func(i int) {
		if failed.Load() {
			return
		}
		v, err := fn(i)
		if err != nil {
			failed.Store(true)
			mu.Lock()
			if i < firstIdx {
				firstIdx, firstErr = i, err
			}
			mu.Unlock()
			return
		}
		out[i] = v
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
