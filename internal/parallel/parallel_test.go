package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	cases := []struct {
		in   int
		want int
	}{
		{-1, runtime.GOMAXPROCS(0)},
		{0, runtime.GOMAXPROCS(0)},
		{1, 1},
		{4, 4},
		{64, 64},
	}
	for _, c := range cases {
		if got := Workers(c.in); got != c.want {
			t.Errorf("Workers(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			name := fmt.Sprintf("workers=%d/n=%d", workers, n)
			counts := make([]int32, n)
			ForEach(workers, n, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("%s: index %d executed %d times", name, i, c)
				}
			}
		}
	}
}

func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8} {
		got := Map(workers, 50, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapMatchesSerial(t *testing.T) {
	// The determinism contract: any worker count produces the serial result.
	serial := Map(1, 200, work)
	for _, workers := range []int{2, 4, 9} {
		par := Map(workers, 200, work)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d diverges from serial at %d: %v vs %v",
					workers, i, par[i], serial[i])
			}
		}
	}
}

func work(i int) float64 {
	v := float64(i)
	for k := 0; k < 100; k++ {
		v = v*1.0000001 + 0.5
	}
	return v
}

func TestForEachPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("panic did not propagate")
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("unexpected panic value %v", r)
				}
			}()
			ForEach(workers, 20, func(i int) {
				if i == 7 {
					panic("boom")
				}
			})
		})
	}
}

func TestForEachPanicStopsNewWork(t *testing.T) {
	var ran atomic.Int32
	func() {
		defer func() { recover() }()
		ForEach(2, 10000, func(i int) {
			ran.Add(1)
			panic("stop")
		})
	}()
	// Both workers may each hit one panic before observing the flag, but
	// the remaining thousands of indices must be abandoned.
	if n := ran.Load(); n > 100 {
		t.Errorf("ran %d tasks after panic, want early cancellation", n)
	}
}

func TestMapErr(t *testing.T) {
	errBad := errors.New("bad index")
	cases := []struct {
		name    string
		workers int
		n       int
		failAt  map[int]bool
		wantErr bool
	}{
		{"no error serial", 1, 30, nil, false},
		{"no error parallel", 4, 30, nil, false},
		{"fails serial", 1, 30, map[int]bool{12: true}, true},
		{"fails parallel", 4, 30, map[int]bool{12: true}, true},
		{"multiple failures", 4, 30, map[int]bool{5: true, 20: true}, true},
		{"empty", 4, 0, nil, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out, err := MapErr(c.workers, c.n, func(i int) (int, error) {
				if c.failAt[i] {
					return 0, errBad
				}
				return i + 1, nil
			})
			if c.wantErr {
				if !errors.Is(err, errBad) {
					t.Fatalf("err = %v, want %v", err, errBad)
				}
				if out != nil {
					t.Fatalf("out should be nil on error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != c.n {
				t.Fatalf("len = %d, want %d", len(out), c.n)
			}
			for i, v := range out {
				if v != i+1 {
					t.Fatalf("out[%d] = %d", i, v)
				}
			}
		})
	}
}

func TestMapErrSerialReturnsFirstError(t *testing.T) {
	e5, e9 := errors.New("e5"), errors.New("e9")
	_, err := MapErr(1, 20, func(i int) (int, error) {
		switch i {
		case 5:
			return 0, e5
		case 9:
			return 0, e9
		}
		return i, nil
	})
	if !errors.Is(err, e5) {
		t.Fatalf("err = %v, want first (lowest-index) error e5", err)
	}
}

func TestMapErrCancelsRemainingWork(t *testing.T) {
	var ran atomic.Int32
	_, err := MapErr(2, 10000, func(i int) (int, error) {
		ran.Add(1)
		return 0, errors.New("immediate")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n > 100 {
		t.Errorf("ran %d tasks after error, want early cancellation", n)
	}
}
