package features

import (
	"math"
	"math/rand"
	"testing"
)

// bdsBoolMatrix is the pre-optimization reference implementation of BDS:
// a full n×n [][]bool closeness matrix with per-pair inner loops. It is
// kept verbatim (modulo the moments helper) as the ground truth the packed
// bitset kernel is asserted against, and as the baseline BenchmarkBDS
// measures the kernel's speedup over.
func bdsBoolMatrix(series []float64, m int, eps float64) BDSResult {
	n := len(series)
	if m < 2 {
		m = 2
	}
	if n < m+10 || isConstant(series) {
		return BDSResult{Stat: 0, Linear: true}
	}
	if eps <= 0 {
		eps = 0.7 * stddev(series)
		if eps == 0 {
			return BDSResult{Stat: 0, Linear: true}
		}
	}

	nm := n - m + 1
	cl := make([][]bool, n)
	for i := range cl {
		cl[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := math.Abs(series[i]-series[j]) <= eps
			cl[i][j] = c
			cl[j][i] = c
		}
	}

	var c1Pairs, cmPairs float64
	var pairCount float64
	degree := make([]float64, nm)
	for i := 0; i < nm; i++ {
		for j := i + 1; j < nm; j++ {
			pairCount++
			if cl[i][j] {
				c1Pairs++
				degree[i]++
				degree[j]++
			}
			all := true
			for d := 0; d < m; d++ {
				if !cl[i+d][j+d] {
					all = false
					break
				}
			}
			if all {
				cmPairs++
			}
		}
	}
	if pairCount == 0 {
		return BDSResult{Stat: 0, Linear: true}
	}
	c := c1Pairs / pairCount
	cm := cmPairs / pairCount
	var kNum float64
	for i := 0; i < nm; i++ {
		kNum += degree[i] * degree[i]
	}
	kNum -= 2 * c1Pairs
	totTriples := float64(nm) * float64(nm-1) * float64(nm-2)
	if totTriples <= 0 {
		return BDSResult{Stat: 0, Linear: true}
	}
	k := kNum / totTriples
	if k < c*c {
		k = c * c
	}

	var sum float64
	for j := 1; j <= m-1; j++ {
		sum += math.Pow(k, float64(m-j)) * math.Pow(c, float64(2*j))
	}
	v := 4 * (math.Pow(k, float64(m)) + 2*sum +
		float64((m-1)*(m-1))*math.Pow(c, float64(2*m)) -
		float64(m*m)*k*math.Pow(c, float64(2*m-2)))
	if v <= 1e-15 {
		return BDSResult{Stat: 0, Linear: true}
	}
	stat := math.Sqrt(float64(nm)) * (cm - math.Pow(c, float64(m))) / math.Sqrt(v)
	return BDSResult{Stat: stat, Linear: math.Abs(stat) <= BDSCritical5}
}

// bdsTestSeries builds a mix of iid, AR-dependent, periodic, sparse, and
// near-degenerate series across the sizes the extractor actually sees.
func bdsTestSeries() map[string][]float64 {
	out := map[string][]float64{}
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{16, 65, 128, 504} {
		iid := make([]float64, n)
		ar := make([]float64, n)
		periodic := make([]float64, n)
		sparse := make([]float64, n)
		for t := 0; t < n; t++ {
			iid[t] = rng.NormFloat64()
			if t > 0 {
				ar[t] = 0.8*ar[t-1] + rng.NormFloat64()
			} else {
				ar[t] = rng.NormFloat64()
			}
			periodic[t] = math.Sin(2*math.Pi*float64(t)/24) + 0.1*rng.NormFloat64()
			if rng.Float64() < 0.1 {
				sparse[t] = math.Ceil(5 * rng.Float64())
			}
		}
		out[seriesName("iid", n)] = iid
		out[seriesName("ar", n)] = ar
		out[seriesName("periodic", n)] = periodic
		out[seriesName("sparse", n)] = sparse
	}
	out["constant"] = make([]float64, 64)
	out["tiny"] = []float64{1, 2, 3}
	out["empty"] = nil
	return out
}

func seriesName(kind string, n int) string {
	return kind + "-" + string(rune('0'+n/100)) + string(rune('0'+n/10%10)) + string(rune('0'+n%10))
}

// TestBDSBitsetMatchesBoolMatrix is the kernel's correctness anchor: the
// packed-bitset BDS must be bit-for-bit identical to the boolean-matrix
// reference on every series shape and embedding dimension — identical
// representation of the same counts, not an approximation.
func TestBDSBitsetMatchesBoolMatrix(t *testing.T) {
	for name, series := range bdsTestSeries() {
		for _, m := range []int{2, 3, 5} {
			got := BDS(series, m, 0)
			want := bdsBoolMatrix(series, m, 0)
			if got.Stat != want.Stat || got.Linear != want.Linear {
				t.Errorf("%s m=%d: bitset {%v %v} != reference {%v %v}",
					name, m, got.Stat, got.Linear, want.Stat, want.Linear)
			}
			// Explicit eps exercises the non-σ path.
			got = BDS(series, m, 0.5)
			want = bdsBoolMatrix(series, m, 0.5)
			if got.Stat != want.Stat || got.Linear != want.Linear {
				t.Errorf("%s m=%d eps=0.5: bitset {%v %v} != reference {%v %v}",
					name, m, got.Stat, got.Linear, want.Stat, want.Linear)
			}
		}
	}
}

// TestBDSScratchReuse runs interleaved sizes back-to-back so pooled
// scratch from a large series is reused for a small one and vice versa —
// stale bits or degrees would corrupt the counts.
func TestBDSScratchReuse(t *testing.T) {
	series := bdsTestSeries()
	order := []string{
		seriesName("iid", 504), seriesName("ar", 16), seriesName("periodic", 504),
		seriesName("sparse", 65), seriesName("iid", 504), seriesName("ar", 128),
	}
	for round := 0; round < 3; round++ {
		for _, name := range order {
			got := BDS(series[name], 2, 0)
			want := bdsBoolMatrix(series[name], 2, 0)
			if got.Stat != want.Stat {
				t.Fatalf("round %d %s: stat %v != %v (scratch reuse corrupted state)",
					round, name, got.Stat, want.Stat)
			}
		}
	}
}

func TestComputeMomentsMatchesOpenCoded(t *testing.T) {
	for name, series := range bdsTestSeries() {
		mom := computeMoments(series)
		var sum float64
		for _, v := range series {
			sum += v
		}
		if mom.sum != sum {
			t.Errorf("%s: sum %v != %v", name, mom.sum, sum)
		}
		if mom.constant != isConstant(series) {
			t.Errorf("%s: constant %v != %v", name, mom.constant, isConstant(series))
		}
		// Reference two-pass stddev, accumulation order preserved.
		var want float64
		if len(series) >= 2 {
			mean := sum / float64(len(series))
			var s float64
			for _, v := range series {
				d := v - mean
				s += d * d
			}
			want = math.Sqrt(s / float64(len(series)))
		}
		if mom.stddev != want {
			t.Errorf("%s: stddev %v != %v (must be bit-identical)", name, mom.stddev, want)
		}
	}
}

func benchSeries(n int) []float64 {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, n)
	for t := range xs {
		xs[t] = 0.6*math.Sin(2*math.Pi*float64(t)/144) + rng.NormFloat64()
	}
	return xs
}

// BenchmarkBDS compares the packed-bitset kernel against the
// boolean-matrix baseline on the paper's 504-point block at the default
// embedding dimension. The acceptance bar for this PR: bitset ≥ 3× faster
// with ≥ 8× lower bytes/op.
func BenchmarkBDS(b *testing.B) {
	series := benchSeries(504)
	b.Run("bitset", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			BDS(series, 2, 0)
		}
	})
	b.Run("boolmatrix", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bdsBoolMatrix(series, 2, 0)
		}
	})
}

// BenchmarkADF measures the stationarity test on one 504-point block
// (Schwert-rule lags), the second-hottest extractor kernel.
func BenchmarkADF(b *testing.B) {
	series := benchSeries(504)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ADF(series, -1)
	}
}

// BenchmarkExtract measures the full per-block feature extraction the
// training sweep runs once per (block).
func BenchmarkExtract(b *testing.B) {
	series := benchSeries(504)
	ext := NewExtractor()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ext.Extract(series, 0)
	}
}
