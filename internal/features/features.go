package features

import (
	"fmt"

	"github.com/ubc-cirrus-lab/femux-go/internal/mathx"
)

// Names of the standard features, used for ablation selection (Fig 18).
const (
	FeatStationarity = "stationarity"
	FeatLinearity    = "linearity"
	FeatHarmonics    = "harmonics"
	FeatDensity      = "density"
	FeatExecTime     = "exectime" // only present for exec-aware RUM training
)

// AllFeatureNames lists the default extraction order.
var AllFeatureNames = []string{FeatStationarity, FeatLinearity, FeatHarmonics, FeatDensity}

// Vector is one block's extracted feature values, keyed by feature name.
type Vector map[string]float64

// Select projects the vector onto the named features, in order. Missing
// features are zero — the classifier's scaler neutralizes them.
func (v Vector) Select(names []string) []float64 {
	out := make([]float64, len(names))
	for i, n := range names {
		out[i] = v[n]
	}
	return out
}

// Extractor computes block feature vectors. The zero value is not usable;
// call NewExtractor.
type Extractor struct {
	arLags    int
	bdsDim    int
	harmonics int
}

// NewExtractor returns an extractor with the paper's settings: AR(10)
// prewhitening for the linearity test, BDS dimension 2, and the top 10
// harmonics for periodicity.
func NewExtractor() *Extractor {
	return &Extractor{arLags: 10, bdsDim: 2, harmonics: 10}
}

// Params returns the extractor's kernel settings (AR prewhitening lags, BDS
// embedding dimension, harmonic count). Callers that memoize extraction
// results hash these so a future parameterized extractor cannot alias a
// cached vector computed under different settings.
func (e *Extractor) Params() (arLags, bdsDim, harmonics int) {
	return e.arLags, e.bdsDim, e.harmonics
}

// Extract computes the feature vector of one block of average-concurrency
// values. execSec, when positive, adds the execution-time feature used by
// FeMux-Exec (§5.1.3).
//
// Feature encodings (all continuous so the scaler and K-means can use
// distances rather than hard test verdicts):
//
//   - stationarity: the ADF t-statistic, clamped to [-10, 10]; more
//     negative is more stationary.
//   - linearity: |BDS statistic| of AR residuals, clamped to [0, 20];
//     larger is more nonlinear.
//   - harmonics: fraction of non-DC spectral energy captured by the top-k
//     harmonics, in [0, 1]; near 1 indicates a (quasi-)periodic block.
//   - density: total traffic volume in the block (sum of average
//     concurrency), a popularity proxy (§4.2.2).
func (e *Extractor) Extract(block []float64, execSec float64) Vector {
	v := Vector{}

	// One moments pass serves every kernel: ADF and the linearity test
	// need the constancy check, density is the running sum. Previously
	// each kernel rescanned the block for its own copy of these.
	mom := computeMoments(block)

	adf := adfTest(block, -1, mom.constant)
	v[FeatStationarity] = mathx.Clamp(adf.Stat, -10, 10)

	bds := linearityTest(block, e.arLags, e.bdsDim, mom.constant)
	abs := bds.Stat
	if abs < 0 {
		abs = -abs
	}
	v[FeatLinearity] = mathx.Clamp(abs, 0, 20)

	v[FeatHarmonics] = harmonicConcentration(block, e.harmonics, mom.constant)

	v[FeatDensity] = mom.sum

	if execSec > 0 {
		v[FeatExecTime] = execSec
	}
	return v
}

// HarmonicConcentration returns the share of non-DC spectral energy in the
// top-k harmonics. A finite number of prominent harmonics — high
// concentration — indicates a periodic or quasi-periodic block (§4.3.2).
func HarmonicConcentration(block []float64, k int) float64 {
	return harmonicConcentration(block, k, isConstant(block))
}

// harmonicConcentration is HarmonicConcentration with the block's
// constancy precomputed.
func harmonicConcentration(block []float64, k int, constant bool) float64 {
	n := len(block)
	if n < 4 || constant {
		return 0
	}
	hs := mathx.TopHarmonics(block, n/2)
	var total, top float64
	for i, h := range hs {
		e := h.Amplitude * h.Amplitude
		total += e
		if i < k {
			top += e
		}
	}
	if total == 0 {
		return 0
	}
	return top / total
}

// BlockFeature couples a block's feature vector with its provenance, the
// unit the trainer and classifier pass around.
type BlockFeature struct {
	App   string
	Block int
	Vec   Vector
}

// String implements fmt.Stringer for diagnostics.
func (b BlockFeature) String() string {
	return fmt.Sprintf("%s/block%d %v", b.App, b.Block, map[string]float64(b.Vec))
}
