// Package features extracts the latent statistical features FeMux's
// classifier consumes (§4.3.2): stationarity (Augmented Dickey-Fuller
// test), linearity (Broock-Dechert-Scheinkman test), periodicity (FFT
// harmonic concentration), and density (traffic volume). Features are
// computed once per completed block — 504 minutes by default, the smallest
// multiple of the BDS test's ~400-point minimum that divides the 14-day
// Azure trace evenly.
package features

import (
	"math"

	"github.com/ubc-cirrus-lab/femux-go/internal/mathx"
)

// ADFCritical5 is the 5% critical value of the Dickey-Fuller t-distribution
// for a regression with a constant (large-sample). More negative statistics
// reject the unit-root null, i.e. indicate stationarity.
const ADFCritical5 = -2.86

// ADFResult reports an Augmented Dickey-Fuller test.
type ADFResult struct {
	Stat       float64 // t-statistic of the lagged-level coefficient
	Lags       int     // augmentation lags used
	Stationary bool    // Stat < ADFCritical5
}

// ADF runs the Augmented Dickey-Fuller stationarity test with a constant
// term, regressing
//
//	Δy_t = α + β·y_{t−1} + Σ γ_i·Δy_{t−i} + ε
//
// and testing β = 0 (unit root) against β < 0 (stationary). lags < 0
// selects the Schwert rule ⌊12·(n/100)^{1/4}⌋ capped to keep enough
// observations. A constant series is reported as stationary with a strongly
// negative sentinel statistic.
func ADF(series []float64, lags int) ADFResult {
	n := len(series)
	if n < 8 {
		return ADFResult{Stat: 0, Stationary: false}
	}
	if isConstant(series) {
		return ADFResult{Stat: -100, Stationary: true}
	}
	if lags < 0 {
		lags = int(12 * math.Pow(float64(n)/100, 0.25))
	}
	maxLags := (n - 4) / 2
	if lags > maxLags {
		lags = maxLags
	}
	if lags < 0 {
		lags = 0
	}

	diffs := make([]float64, n-1)
	for i := 1; i < n; i++ {
		diffs[i-1] = series[i] - series[i-1]
	}
	// Rows: t runs over diffs indices [lags, len(diffs)).
	rows := len(diffs) - lags
	cols := 2 + lags // intercept, y_{t-1}, lagged diffs
	if rows <= cols {
		return ADFResult{Stat: 0, Stationary: false}
	}
	x := make([][]float64, rows)
	y := make([]float64, rows)
	for r := 0; r < rows; r++ {
		t := r + lags // index into diffs
		row := make([]float64, cols)
		row[0] = 1
		row[1] = series[t] // y_{t-1} in original indexing: diffs[t] = y[t+1]-y[t]
		for l := 1; l <= lags; l++ {
			row[1+l] = diffs[t-l]
		}
		x[r] = row
		y[r] = diffs[t]
	}
	beta, se, ok := olsWithSE(x, y, 1)
	if !ok || se == 0 {
		return ADFResult{Stat: 0, Lags: lags, Stationary: false}
	}
	stat := beta / se
	return ADFResult{Stat: stat, Lags: lags, Stationary: stat < ADFCritical5}
}

// olsWithSE fits y ~ X by OLS and returns coefficient j and its standard
// error. It solves the normal equations and extracts the needed diagonal of
// (X'X)^{-1} by solving against a unit vector.
func olsWithSE(x [][]float64, y []float64, j int) (coef, se float64, ok bool) {
	rows, cols := len(x), len(x[0])
	xtx := make([][]float64, cols)
	for i := range xtx {
		xtx[i] = make([]float64, cols)
	}
	xty := make([]float64, cols)
	for r := 0; r < rows; r++ {
		for a := 0; a < cols; a++ {
			va := x[r][a]
			if va == 0 {
				continue
			}
			for b := a; b < cols; b++ {
				xtx[a][b] += va * x[r][b]
			}
			xty[a] += va * y[r]
		}
	}
	for a := 0; a < cols; a++ {
		xtx[a][a] += 1e-9
		for b := a + 1; b < cols; b++ {
			xtx[b][a] = xtx[a][b]
		}
	}
	beta, err := mathx.SolveLinear(xtx, xty)
	if err != nil {
		return 0, 0, false
	}
	// Residual variance.
	var rss float64
	for r := 0; r < rows; r++ {
		pred := mathx.Dot(x[r], beta)
		d := y[r] - pred
		rss += d * d
	}
	dof := rows - cols
	if dof <= 0 {
		return 0, 0, false
	}
	sigma2 := rss / float64(dof)
	// (X'X)^{-1}_{jj} via solving X'X z = e_j.
	e := make([]float64, cols)
	e[j] = 1
	z, err := mathx.SolveLinear(xtx, e)
	if err != nil || z[j] < 0 {
		return 0, 0, false
	}
	return beta[j], math.Sqrt(sigma2 * z[j]), true
}

func isConstant(series []float64) bool {
	for _, v := range series[1:] {
		if v != series[0] {
			return false
		}
	}
	return true
}
