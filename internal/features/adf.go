// Package features extracts the latent statistical features FeMux's
// classifier consumes (§4.3.2): stationarity (Augmented Dickey-Fuller
// test), linearity (Broock-Dechert-Scheinkman test), periodicity (FFT
// harmonic concentration), and density (traffic volume). Features are
// computed once per completed block — 504 minutes by default, the smallest
// multiple of the BDS test's ~400-point minimum that divides the 14-day
// Azure trace evenly.
package features

import (
	"math"
	"sync"

	"github.com/ubc-cirrus-lab/femux-go/internal/mathx"
)

// ADFCritical5 is the 5% critical value of the Dickey-Fuller t-distribution
// for a regression with a constant (large-sample). More negative statistics
// reject the unit-root null, i.e. indicate stationarity.
const ADFCritical5 = -2.86

// ADFResult reports an Augmented Dickey-Fuller test.
type ADFResult struct {
	Stat       float64 // t-statistic of the lagged-level coefficient
	Lags       int     // augmentation lags used
	Stationary bool    // Stat < ADFCritical5
}

// ADF runs the Augmented Dickey-Fuller stationarity test with a constant
// term, regressing
//
//	Δy_t = α + β·y_{t−1} + Σ γ_i·Δy_{t−i} + ε
//
// and testing β = 0 (unit root) against β < 0 (stationary). lags < 0
// selects the Schwert rule ⌊12·(n/100)^{1/4}⌋ capped to keep enough
// observations. A constant series is reported as stationary with a strongly
// negative sentinel statistic.
func ADF(series []float64, lags int) ADFResult {
	return adfTest(series, lags, isConstant(series))
}

// adfTest is ADF with the series' constancy precomputed. The regression
// buffers (differences, design matrix, normal equations) come from a
// shared pool: feature extraction runs ADF once per block across thousands
// of blocks, and these were the extractor's largest per-call allocations.
func adfTest(series []float64, lags int, constant bool) ADFResult {
	n := len(series)
	if n < 8 {
		return ADFResult{Stat: 0, Stationary: false}
	}
	if constant {
		return ADFResult{Stat: -100, Stationary: true}
	}
	if lags < 0 {
		lags = int(12 * math.Pow(float64(n)/100, 0.25))
	}
	maxLags := (n - 4) / 2
	if lags > maxLags {
		lags = maxLags
	}
	if lags < 0 {
		lags = 0
	}

	sc := adfScratchPool.Get().(*adfScratch)
	defer adfScratchPool.Put(sc)

	diffs := sc.floats(&sc.diffs, n-1)
	for i := 1; i < n; i++ {
		diffs[i-1] = series[i] - series[i-1]
	}
	// Rows: t runs over diffs indices [lags, len(diffs)).
	rows := len(diffs) - lags
	cols := 2 + lags // intercept, y_{t-1}, lagged diffs
	if rows <= cols {
		return ADFResult{Stat: 0, Stationary: false}
	}
	x := sc.matrix(rows, cols)
	y := sc.floats(&sc.y, rows)
	for r := 0; r < rows; r++ {
		t := r + lags // index into diffs
		row := x[r]
		row[0] = 1
		row[1] = series[t] // y_{t-1} in original indexing: diffs[t] = y[t+1]-y[t]
		for l := 1; l <= lags; l++ {
			row[1+l] = diffs[t-l]
		}
		y[r] = diffs[t]
	}
	beta, se, ok := olsWithSE(x, y, 1, sc)
	if !ok || se == 0 {
		return ADFResult{Stat: 0, Lags: lags, Stationary: false}
	}
	stat := beta / se
	return ADFResult{Stat: stat, Lags: lags, Stationary: stat < ADFCritical5}
}

// olsWithSE fits y ~ X by OLS and returns coefficient j and its standard
// error. It solves the normal equations and extracts the needed diagonal of
// (X'X)^{-1} by solving against a unit vector. sc supplies the X'X and
// unit-vector buffers; SolveLinear copies its inputs, so reuse is safe.
func olsWithSE(x [][]float64, y []float64, j int, sc *adfScratch) (coef, se float64, ok bool) {
	rows, cols := len(x), len(x[0])
	xtx := sc.xtxMatrix(cols)
	xty := sc.floats(&sc.xty, cols)
	for i := range xty {
		xty[i] = 0
	}
	for r := 0; r < rows; r++ {
		for a := 0; a < cols; a++ {
			va := x[r][a]
			if va == 0 {
				continue
			}
			for b := a; b < cols; b++ {
				xtx[a][b] += va * x[r][b]
			}
			xty[a] += va * y[r]
		}
	}
	for a := 0; a < cols; a++ {
		xtx[a][a] += 1e-9
		for b := a + 1; b < cols; b++ {
			xtx[b][a] = xtx[a][b]
		}
	}
	beta, err := mathx.SolveLinear(xtx, xty)
	if err != nil {
		return 0, 0, false
	}
	// Residual variance.
	var rss float64
	for r := 0; r < rows; r++ {
		pred := mathx.Dot(x[r], beta)
		d := y[r] - pred
		rss += d * d
	}
	dof := rows - cols
	if dof <= 0 {
		return 0, 0, false
	}
	sigma2 := rss / float64(dof)
	// (X'X)^{-1}_{jj} via solving X'X z = e_j.
	e := sc.floats(&sc.unit, cols)
	for i := range e {
		e[i] = 0
	}
	e[j] = 1
	z, err := mathx.SolveLinear(xtx, e)
	if err != nil || z[j] < 0 {
		return 0, 0, false
	}
	return beta[j], math.Sqrt(sigma2 * z[j]), true
}

// adfScratch holds the reusable regression buffers of one ADF evaluation.
type adfScratch struct {
	diffs   []float64
	y       []float64
	xty     []float64
	unit    []float64
	flat    []float64
	rows    [][]float64
	xtxFlat []float64
	xtxRows [][]float64
}

var adfScratchPool = sync.Pool{New: func() any { return &adfScratch{} }}

// floats resizes *buf to n (contents unspecified) and returns it.
func (s *adfScratch) floats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// matrix returns an r×c row-view matrix over flat pooled storage; element
// contents are unspecified (callers overwrite every cell).
func (s *adfScratch) matrix(r, c int) [][]float64 {
	flat := s.floats(&s.flat, r*c)
	if cap(s.rows) < r {
		s.rows = make([][]float64, r)
	}
	s.rows = s.rows[:r]
	for i := 0; i < r; i++ {
		s.rows[i] = flat[i*c : (i+1)*c]
	}
	return s.rows
}

// xtxMatrix returns a zeroed c×c matrix over flat pooled storage.
func (s *adfScratch) xtxMatrix(c int) [][]float64 {
	flat := s.floats(&s.xtxFlat, c*c)
	clear(flat)
	if cap(s.xtxRows) < c {
		s.xtxRows = make([][]float64, c)
	}
	s.xtxRows = s.xtxRows[:c]
	for i := 0; i < c; i++ {
		s.xtxRows[i] = flat[i*c : (i+1)*c]
	}
	return s.xtxRows
}

func isConstant(series []float64) bool {
	if len(series) == 0 {
		return true
	}
	for _, v := range series[1:] {
		if v != series[0] {
			return false
		}
	}
	return true
}
