package features

import (
	"math"

	"github.com/ubc-cirrus-lab/femux-go/internal/mathx"
)

// BDSResult reports a Broock-Dechert-Scheinkman independence test.
type BDSResult struct {
	Stat   float64 // asymptotically N(0,1) under the iid null
	Linear bool    // |Stat| <= 1.96: no evidence of nonlinear structure
}

// BDSCritical5 is the two-sided 5% critical value of the standard normal.
const BDSCritical5 = 1.96

// BDS runs the Broock-Dechert-Scheinkman test at embedding dimension m with
// proximity radius eps (pass eps <= 0 for the conventional 0.7·σ). The test
// compares the m-dimensional correlation integral C_m(ε) against C_1(ε)^m;
// under an iid series they coincide, so a large |statistic| flags remaining
// (nonlinear) dependence.
//
// FeMux applies BDS to the residuals of a linear AR prewhitening (see
// LinearityTest) so that rejecting the null indicates *nonlinearity* rather
// than any serial dependence: linear structure has already been removed.
// The test needs ≥ ~400 points for its asymptotics, which is what sets the
// 504-minute block size (§4.3.2).
func BDS(series []float64, m int, eps float64) BDSResult {
	n := len(series)
	if m < 2 {
		m = 2
	}
	if n < m+10 || isConstant(series) {
		return BDSResult{Stat: 0, Linear: true}
	}
	if eps <= 0 {
		eps = 0.7 * stddev(series)
		if eps == 0 {
			return BDSResult{Stat: 0, Linear: true}
		}
	}

	// Pairwise closeness over the points usable at dimension m.
	nm := n - m + 1
	// close[i][j] for base series; computed on demand via bitsets would be
	// heavy — store one triangular boolean matrix (n ≈ 504 → ~127k entries).
	cl := make([][]bool, n)
	for i := range cl {
		cl[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := math.Abs(series[i]-series[j]) <= eps
			cl[i][j] = c
			cl[j][i] = c
		}
	}

	// C_1 over the same index range as C_m, and k (triple closeness).
	var c1Pairs, cmPairs float64
	var pairCount float64
	degree := make([]float64, nm)
	for i := 0; i < nm; i++ {
		for j := i + 1; j < nm; j++ {
			pairCount++
			if cl[i][j] {
				c1Pairs++
				degree[i]++
				degree[j]++
			}
			// m-dimensional closeness: all m coordinates close.
			all := true
			for d := 0; d < m; d++ {
				if !cl[i+d][j+d] {
					all = false
					break
				}
			}
			if all {
				cmPairs++
			}
		}
	}
	if pairCount == 0 {
		return BDSResult{Stat: 0, Linear: true}
	}
	c := c1Pairs / pairCount
	cm := cmPairs / pairCount
	// k: probability two random points are both close to a common third.
	// Using degrees: sum_i deg_i^2 counts ordered triples (j,i,l), j≠i≠l
	// plus the diagonal j==l, which we remove.
	var kNum float64
	for i := 0; i < nm; i++ {
		kNum += degree[i] * degree[i]
	}
	kNum -= 2 * c1Pairs // remove j==l ordered duplicates
	totTriples := float64(nm) * float64(nm-1) * float64(nm-2)
	if totTriples <= 0 {
		return BDSResult{Stat: 0, Linear: true}
	}
	k := kNum / totTriples
	if k < c*c {
		k = c * c // numerical floor: k >= c^2 by Cauchy-Schwarz
	}

	// Asymptotic variance (Brock et al. 1996).
	var sum float64
	for j := 1; j <= m-1; j++ {
		sum += math.Pow(k, float64(m-j)) * math.Pow(c, float64(2*j))
	}
	v := 4 * (math.Pow(k, float64(m)) + 2*sum +
		float64((m-1)*(m-1))*math.Pow(c, float64(2*m)) -
		float64(m*m)*k*math.Pow(c, float64(2*m-2)))
	if v <= 1e-15 {
		return BDSResult{Stat: 0, Linear: true}
	}
	stat := math.Sqrt(float64(nm)) * (cm - math.Pow(c, float64(m))) / math.Sqrt(v)
	return BDSResult{Stat: stat, Linear: math.Abs(stat) <= BDSCritical5}
}

// LinearityTest prewhitens the series with an AR fit and applies BDS to the
// residuals: a significant statistic then indicates nonlinear structure
// that no linear model can capture, steering the classifier toward SETAR or
// the Markov chain.
func LinearityTest(series []float64, arLags, bdsDim int) BDSResult {
	res := arResiduals(series, arLags)
	if res == nil {
		return BDSResult{Stat: 0, Linear: true}
	}
	return BDS(res, bdsDim, 0)
}

// arResiduals fits AR(lags) by least squares and returns the residuals, or
// nil when the series is too short or degenerate.
func arResiduals(series []float64, lags int) []float64 {
	n := len(series)
	if lags < 1 {
		lags = 1
	}
	rows := n - lags
	if rows < lags+2 || isConstant(series) {
		return nil
	}
	x := make([][]float64, rows)
	y := make([]float64, rows)
	for r := 0; r < rows; r++ {
		row := make([]float64, lags+1)
		row[0] = 1
		for l := 1; l <= lags; l++ {
			row[l] = series[r+lags-l]
		}
		x[r] = row
		y[r] = series[r+lags]
	}
	coef, err := mathx.LeastSquares(x, y)
	if err != nil {
		return nil
	}
	res := make([]float64, rows)
	for r := 0; r < rows; r++ {
		res[r] = y[r] - mathx.Dot(x[r], coef)
	}
	return res
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var mean float64
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	var s float64
	for _, v := range xs {
		d := v - mean
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
