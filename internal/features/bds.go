package features

import (
	"math"
	"math/bits"
	"slices"
	"sync"

	"github.com/ubc-cirrus-lab/femux-go/internal/mathx"
)

// BDSResult reports a Broock-Dechert-Scheinkman independence test.
type BDSResult struct {
	Stat   float64 // asymptotically N(0,1) under the iid null
	Linear bool    // |Stat| <= 1.96: no evidence of nonlinear structure
}

// BDSCritical5 is the two-sided 5% critical value of the standard normal.
const BDSCritical5 = 1.96

// BDS runs the Broock-Dechert-Scheinkman test at embedding dimension m with
// proximity radius eps (pass eps <= 0 for the conventional 0.7·σ). The test
// compares the m-dimensional correlation integral C_m(ε) against C_1(ε)^m;
// under an iid series they coincide, so a large |statistic| flags remaining
// (nonlinear) dependence.
//
// FeMux applies BDS to the residuals of a linear AR prewhitening (see
// LinearityTest) so that rejecting the null indicates *nonlinearity* rather
// than any serial dependence: linear structure has already been removed.
// The test needs ≥ ~400 points for its asymptotics, which is what sets the
// 504-minute block size (§4.3.2).
//
// The pairwise-closeness relation is held as packed bitset rows (one
// []uint64 per base point) rather than an n×n [][]bool: a 504-point block
// needs ~64 KB of words instead of ~254 KB of bools, and the
// m-dimensional correlation integral reduces to word-wide
// shift-AND-popcount operations instead of a per-pair inner loop. The
// rows themselves are built without any pairwise comparison: closeness
// |x_i − x_j| ≤ ε is an interval in value order (IEEE subtraction is
// monotone, so the exact float predicate still delimits a contiguous
// range), located by a two-pointer sweep over the sorted values, and each
// row materializes as the difference of two prefix bitsets. Total work is
// O(n log n + n²/64) versus the boolean formulation's O(n²·m). The counts
// produced are identical — only the representation changed — so the
// statistic is bit-for-bit unchanged (asserted against a reference
// implementation in the tests).
func BDS(series []float64, m int, eps float64) BDSResult {
	return bdsWithMoments(series, m, eps, computeMoments(series))
}

// bdsWithMoments is BDS with the series moments precomputed (the extractor
// shares one moments pass across kernels; see moments.go).
func bdsWithMoments(series []float64, m int, eps float64, mom moments) BDSResult {
	n := len(series)
	if m < 2 {
		m = 2
	}
	if n < m+10 || mom.constant {
		return BDSResult{Stat: 0, Linear: true}
	}
	if eps <= 0 {
		eps = 0.7 * mom.stddev
		if eps == 0 {
			return BDSResult{Stat: 0, Linear: true}
		}
	}

	if math.IsNaN(eps) || math.IsNaN(mom.sum) {
		// Degenerate input (the boolean formulation degenerates to an
		// all-false matrix and a zero statistic here).
		return BDSResult{Stat: 0, Linear: true}
	}

	nm := n - m + 1 // points usable at dimension m
	sc := bdsScratchPool.Get().(*bdsScratch)
	defer bdsScratchPool.Put(sc)
	stride := (n + 63) / 64
	rows := sc.rows(n, stride)
	deg := sc.degrees(nm)

	// Sort the points by value (ties in any order: closeness depends only
	// on the value). idx maps sorted position -> original index.
	idx, vals := sc.sorted(series)

	// Prefix bitsets over sorted order: P_k holds the original indices of
	// the k smallest values, so any sorted interval [a, b) converts to an
	// original-index bitset as P_b &^ P_a in stride word ops.
	prefixes := sc.prefixBits(n, stride)
	for k := 0; k < n; k++ {
		src := prefixes[k*stride : (k+1)*stride]
		dst := prefixes[(k+1)*stride : (k+2)*stride]
		copy(dst, src)
		j := idx[k]
		dst[j>>6] |= 1 << uint(j&63)
	}

	// Two-pointer sweep: for each point (in ascending value order) the
	// close set {j : |x_i − x_j| ≤ ε} is the sorted interval [a, b) — the
	// exact float predicate delimits a contiguous range because IEEE
	// subtraction is monotone — and both endpoints only move rightward as
	// the value grows. Degrees over the C_1 index range [0, nm) fall out
	// as popcounts (minus the self bit, which is always set).
	a, b := 0, 0
	for p := 0; p < n; p++ {
		si := vals[p]
		for math.Abs(si-vals[a]) > eps {
			a++
		}
		for b < n && math.Abs(si-vals[b]) <= eps {
			b++
		}
		i := idx[p]
		row := rows[i*stride : (i+1)*stride]
		pa := prefixes[a*stride : (a+1)*stride]
		pb := prefixes[b*stride : (b+1)*stride]
		for w := range row {
			row[w] = pb[w] &^ pa[w]
		}
		if i < nm {
			deg[i] = popcountRange(row, 0, nm) - 1
		}
	}

	// C_1 pair count: each close pair within [0, nm) appears in both
	// endpoints' degrees.
	sumDeg := 0
	for _, d := range deg {
		sumDeg += d
	}
	c1Count := sumDeg / 2
	pairCount := nm * (nm - 1) / 2
	if pairCount == 0 {
		return BDSResult{Stat: 0, Linear: true}
	}

	// C_m pair count: pair (i,j) is m-close iff all m coordinate pairs
	// (i+d, j+d) are close. Bit j of (row[i+d] >> d) is exactly
	// close(i+d, j+d), so AND-ing the shifted rows and popcounting bits
	// (i, nm) counts a whole row of pairs per word op.
	acc := sc.accumulator(stride)
	cmCount := 0
	for i := 0; i < nm; i++ {
		copy(acc, rows[i*stride:(i+1)*stride])
		for d := 1; d < m; d++ {
			andShiftRight(acc, rows[(i+d)*stride:(i+d+1)*stride], d)
		}
		cmCount += popcountRange(acc, i+1, nm)
	}

	// From here on the arithmetic matches the boolean-matrix formulation
	// term for term; all counts are exact integers well under 2^53, so
	// the float conversions introduce no rounding.
	c1Pairs := float64(c1Count)
	c := c1Pairs / float64(pairCount)
	cm := float64(cmCount) / float64(pairCount)
	// k: probability two random points are both close to a common third.
	// Using degrees: sum_i deg_i^2 counts ordered triples (j,i,l), j≠i≠l
	// plus the diagonal j==l, which we remove.
	var kNum float64
	for _, d := range deg {
		kNum += float64(d) * float64(d)
	}
	kNum -= 2 * c1Pairs // remove j==l ordered duplicates
	totTriples := float64(nm) * float64(nm-1) * float64(nm-2)
	if totTriples <= 0 {
		return BDSResult{Stat: 0, Linear: true}
	}
	k := kNum / totTriples
	if k < c*c {
		k = c * c // numerical floor: k >= c^2 by Cauchy-Schwarz
	}

	// Asymptotic variance (Brock et al. 1996).
	var sum float64
	for j := 1; j <= m-1; j++ {
		sum += math.Pow(k, float64(m-j)) * math.Pow(c, float64(2*j))
	}
	v := 4 * (math.Pow(k, float64(m)) + 2*sum +
		float64((m-1)*(m-1))*math.Pow(c, float64(2*m)) -
		float64(m*m)*k*math.Pow(c, float64(2*m-2)))
	if v <= 1e-15 {
		return BDSResult{Stat: 0, Linear: true}
	}
	stat := math.Sqrt(float64(nm)) * (cm - math.Pow(c, float64(m))) / math.Sqrt(v)
	return BDSResult{Stat: stat, Linear: math.Abs(stat) <= BDSCritical5}
}

// andShiftRight computes acc &= (src >> shift) over packed bit rows, where
// shift is in bits. Bits shifted in from beyond src are zero.
func andShiftRight(acc, src []uint64, shift int) {
	q, r := shift>>6, uint(shift&63)
	n := len(acc)
	if r == 0 {
		for w := 0; w < n; w++ {
			var v uint64
			if w+q < n {
				v = src[w+q]
			}
			acc[w] &= v
		}
		return
	}
	for w := 0; w < n; w++ {
		var v uint64
		if w+q < n {
			v = src[w+q] >> r
			if w+q+1 < n {
				v |= src[w+q+1] << (64 - r)
			}
		}
		acc[w] &= v
	}
}

// popcountRange counts the set bits with positions in [lo, hi).
func popcountRange(words []uint64, lo, hi int) int {
	if lo >= hi {
		return 0
	}
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << uint(lo&63)
	hiMask := ^uint64(0) >> uint(63-(hi-1)&63)
	if loW == hiW {
		return bits.OnesCount64(words[loW] & loMask & hiMask)
	}
	count := bits.OnesCount64(words[loW] & loMask)
	for w := loW + 1; w < hiW; w++ {
		count += bits.OnesCount64(words[w])
	}
	count += bits.OnesCount64(words[hiW] & hiMask)
	return count
}

// bdsScratch holds the reusable buffers of one BDS evaluation. Training
// extracts features for thousands of blocks; pooling the ~64 KB of bitset
// storage removes the dominant per-block allocation.
type bdsScratch struct {
	words    []uint64
	prefixes []uint64
	acc      []uint64
	deg      []int
	idx      []int
	vals     []float64
}

var bdsScratchPool = sync.Pool{New: func() any { return &bdsScratch{} }}

// rows returns storage for n rows of the given word stride. Contents are
// unspecified: the fill writes every word of every row exactly once.
func (s *bdsScratch) rows(n, stride int) []uint64 {
	need := n * stride
	if cap(s.words) < need {
		s.words = make([]uint64, need)
	}
	s.words = s.words[:need]
	return s.words
}

// prefixBits returns storage for the n+1 prefix bitsets. Only the empty
// prefix P_0 needs zeroing; each later row is copy-then-set in full.
func (s *bdsScratch) prefixBits(n, stride int) []uint64 {
	need := (n + 1) * stride
	if cap(s.prefixes) < need {
		s.prefixes = make([]uint64, need)
	}
	s.prefixes = s.prefixes[:need]
	clear(s.prefixes[:stride])
	return s.prefixes
}

// sorted returns the series' indices in ascending value order alongside the
// values in that order. Tie order is irrelevant: closeness depends only on
// the value, never the index, so any permutation of equal values yields the
// same close sets.
func (s *bdsScratch) sorted(series []float64) (idx []int, vals []float64) {
	n := len(series)
	if cap(s.idx) < n {
		s.idx = make([]int, n)
	}
	s.idx = s.idx[:n]
	for i := range s.idx {
		s.idx[i] = i
	}
	slices.SortFunc(s.idx, func(a, b int) int {
		switch {
		case series[a] < series[b]:
			return -1
		case series[a] > series[b]:
			return 1
		}
		return 0
	})
	if cap(s.vals) < n {
		s.vals = make([]float64, n)
	}
	s.vals = s.vals[:n]
	for k, id := range s.idx {
		s.vals[k] = series[id]
	}
	return s.idx, s.vals
}

// accumulator returns zeroed storage for one shifted-AND row.
func (s *bdsScratch) accumulator(stride int) []uint64 {
	if cap(s.acc) < stride {
		s.acc = make([]uint64, stride)
	}
	return s.acc[:stride]
}

// degrees returns zeroed degree counters for the C_1 index range.
func (s *bdsScratch) degrees(nm int) []int {
	if cap(s.deg) < nm {
		s.deg = make([]int, nm)
	}
	s.deg = s.deg[:nm]
	clear(s.deg)
	return s.deg
}

// LinearityTest prewhitens the series with an AR fit and applies BDS to the
// residuals: a significant statistic then indicates nonlinear structure
// that no linear model can capture, steering the classifier toward SETAR or
// the Markov chain.
func LinearityTest(series []float64, arLags, bdsDim int) BDSResult {
	return linearityTest(series, arLags, bdsDim, isConstant(series))
}

// linearityTest is LinearityTest with the series' constancy precomputed.
func linearityTest(series []float64, arLags, bdsDim int, constant bool) BDSResult {
	res := arResiduals(series, arLags, constant)
	if res == nil {
		return BDSResult{Stat: 0, Linear: true}
	}
	return BDS(res, bdsDim, 0)
}

// arResiduals fits AR(lags) by least squares and returns the residuals, or
// nil when the series is too short or degenerate.
func arResiduals(series []float64, lags int, constant bool) []float64 {
	n := len(series)
	if lags < 1 {
		lags = 1
	}
	rows := n - lags
	if rows < lags+2 || constant {
		return nil
	}
	x := make([][]float64, rows)
	flat := make([]float64, rows*(lags+1))
	y := make([]float64, rows)
	for r := 0; r < rows; r++ {
		row := flat[r*(lags+1) : (r+1)*(lags+1)]
		row[0] = 1
		for l := 1; l <= lags; l++ {
			row[l] = series[r+lags-l]
		}
		x[r] = row
		y[r] = series[r+lags]
	}
	coef, err := mathx.LeastSquares(x, y)
	if err != nil {
		return nil
	}
	res := make([]float64, rows)
	for r := 0; r < rows; r++ {
		res[r] = y[r] - mathx.Dot(x[r], coef)
	}
	return res
}

// stddev returns the population standard deviation (kept for tests and
// callers outside the extractor's moments-threading path).
func stddev(xs []float64) float64 {
	return computeMoments(xs).stddev
}
