package features

import (
	"math"
	"math/rand"
	"testing"
)

func arStationary(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := 1; i < n; i++ {
		x[i] = 0.5*x[i-1] + rng.NormFloat64()
	}
	return x
}

func randomWalk(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := 1; i < n; i++ {
		x[i] = x[i-1] + rng.NormFloat64()
	}
	return x
}

func TestADFStationaryVsUnitRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Stationary AR(1) should be detected as stationary in most trials;
	// random walks should rarely be.
	var statHits, walkHits int
	trials := 20
	for i := 0; i < trials; i++ {
		if ADF(arStationary(rng, 500), -1).Stationary {
			statHits++
		}
		if ADF(randomWalk(rng, 500), -1).Stationary {
			walkHits++
		}
	}
	if statHits < trials*3/4 {
		t.Errorf("stationary series detected %d/%d times", statHits, trials)
	}
	if walkHits > trials/4 {
		t.Errorf("random walks marked stationary %d/%d times", walkHits, trials)
	}
}

func TestADFConstantSeries(t *testing.T) {
	x := make([]float64, 500)
	for i := range x {
		x[i] = 5
	}
	r := ADF(x, -1)
	if !r.Stationary {
		t.Error("constant series should be stationary")
	}
}

func TestADFShortSeries(t *testing.T) {
	r := ADF([]float64{1, 2, 3}, -1)
	if r.Stationary {
		t.Error("too-short series should not claim stationarity")
	}
}

func TestADFStatSignConvention(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// A strongly mean-reverting series must have a very negative statistic.
	x := make([]float64, 500)
	for i := 1; i < len(x); i++ {
		x[i] = 0.1*x[i-1] + rng.NormFloat64()
	}
	r := ADF(x, -1)
	if r.Stat >= ADFCritical5 {
		t.Errorf("strong mean reversion stat = %v, want < %v", r.Stat, ADFCritical5)
	}
}

func TestBDSIIDIsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// iid Gaussian noise: the BDS statistic should usually be
	// insignificant.
	hits := 0
	trials := 20
	for i := 0; i < trials; i++ {
		x := make([]float64, 504)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		if BDS(x, 2, 0).Linear {
			hits++
		}
	}
	if hits < trials*3/5 {
		t.Errorf("iid noise flagged nonlinear too often: linear %d/%d", hits, trials)
	}
}

func TestBDSDetectsNonlinearStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// A tent-map-like deterministic nonlinear series must be flagged.
	x := make([]float64, 504)
	x[0] = 0.37
	for i := 1; i < len(x); i++ {
		v := x[i-1]
		if v < 0.5 {
			x[i] = 1.99 * v
		} else {
			x[i] = 1.99 * (1 - v)
		}
		x[i] += 0.001 * rng.NormFloat64()
	}
	r := BDS(x, 2, 0)
	if r.Linear {
		t.Errorf("tent map should be nonlinear; stat = %v", r.Stat)
	}
}

func TestLinearityTestOnLinearProcess(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// AR(1) with Gaussian noise is linear: residuals after prewhitening
	// should pass the BDS test most of the time.
	hits := 0
	trials := 15
	for i := 0; i < trials; i++ {
		r := LinearityTest(arStationary(rng, 504), 10, 2)
		if r.Linear {
			hits++
		}
	}
	if hits < trials*3/5 {
		t.Errorf("linear AR flagged nonlinear too often: %d/%d linear", hits, trials)
	}
}

func TestLinearityTestOnThresholdProcess(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// A strongly nonlinear SETAR-style process should usually be flagged.
	hits := 0
	trials := 15
	for trial := 0; trial < trials; trial++ {
		x := make([]float64, 504)
		for i := 1; i < len(x); i++ {
			if x[i-1] < 0 {
				x[i] = 0.9*x[i-1] + 1 + 0.1*rng.NormFloat64()
			} else {
				x[i] = -0.9*x[i-1] - 1 + 0.1*rng.NormFloat64()
			}
		}
		if !LinearityTest(x, 10, 2).Linear {
			hits++
		}
	}
	if hits < trials/2 {
		t.Errorf("threshold process flagged nonlinear only %d/%d times", hits, trials)
	}
}

func TestBDSConstantAndShort(t *testing.T) {
	if r := BDS([]float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, 2, 0); !r.Linear {
		t.Error("constant series should be linear")
	}
	if r := BDS([]float64{1, 2}, 2, 0); !r.Linear {
		t.Error("short series should default to linear")
	}
}

func TestHarmonicConcentration(t *testing.T) {
	n := 504
	// Pure sinusoid: energy concentrated, near 1.
	pure := make([]float64, n)
	for i := range pure {
		pure[i] = 5 + 3*math.Sin(2*math.Pi*7*float64(i)/float64(n))
	}
	if c := HarmonicConcentration(pure, 10); c < 0.95 {
		t.Errorf("pure sinusoid concentration = %v, want ~1", c)
	}
	// White noise: energy spread, far below 1.
	rng := rand.New(rand.NewSource(7))
	noise := make([]float64, n)
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	if c := HarmonicConcentration(noise, 10); c > 0.5 {
		t.Errorf("noise concentration = %v, want well below periodic", c)
	}
	// Constant: zero.
	flat := make([]float64, n)
	if c := HarmonicConcentration(flat, 10); c != 0 {
		t.Errorf("constant concentration = %v, want 0", c)
	}
}

func TestExtractorVector(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	e := NewExtractor()
	block := make([]float64, 504)
	for i := range block {
		block[i] = math.Abs(2 + math.Sin(2*math.Pi*float64(i)/60) + 0.2*rng.NormFloat64())
	}
	v := e.Extract(block, 0)
	for _, name := range AllFeatureNames {
		if _, ok := v[name]; !ok {
			t.Errorf("missing feature %q", name)
		}
	}
	if _, ok := v[FeatExecTime]; ok {
		t.Error("exec feature should be absent when execSec <= 0")
	}
	// Density equals the block sum.
	var sum float64
	for _, x := range block {
		sum += x
	}
	if math.Abs(v[FeatDensity]-sum) > 1e-9 {
		t.Errorf("density = %v, want %v", v[FeatDensity], sum)
	}
	// With exec time.
	v2 := e.Extract(block, 1.5)
	if v2[FeatExecTime] != 1.5 {
		t.Errorf("exec feature = %v, want 1.5", v2[FeatExecTime])
	}
}

func TestVectorSelect(t *testing.T) {
	v := Vector{FeatDensity: 3, FeatHarmonics: 0.8}
	got := v.Select([]string{FeatHarmonics, FeatStationarity, FeatDensity})
	want := []float64{0.8, 0, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Select[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestExtractFeatureSeparation(t *testing.T) {
	// The whole point of the features: different pattern classes must land
	// in different regions of feature space.
	e := NewExtractor()
	rng := rand.New(rand.NewSource(9))
	n := 504

	periodic := make([]float64, n)
	for i := range periodic {
		periodic[i] = 5 + 4*math.Sin(2*math.Pi*float64(i)/36)
	}
	noise := make([]float64, n)
	for i := range noise {
		noise[i] = math.Abs(rng.NormFloat64() * 3)
	}
	vp := e.Extract(periodic, 0)
	vn := e.Extract(noise, 0)
	if vp[FeatHarmonics] <= vn[FeatHarmonics] {
		t.Errorf("periodic harmonic feature %v should exceed noise %v",
			vp[FeatHarmonics], vn[FeatHarmonics])
	}

	sparse := make([]float64, n)
	sparse[100] = 1
	vs := e.Extract(sparse, 0)
	if vs[FeatDensity] >= vn[FeatDensity] {
		t.Errorf("sparse density %v should be below noisy density %v",
			vs[FeatDensity], vn[FeatDensity])
	}
}

func BenchmarkExtract504(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	e := NewExtractor()
	block := make([]float64, 504)
	for i := range block {
		block[i] = math.Abs(2 + math.Sin(2*math.Pi*float64(i)/60) + 0.2*rng.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Extract(block, 0)
	}
}
