package features

import "math"

// moments carries the per-block summary statistics that several feature
// kernels need. The extractor computes them once per block and threads
// them through ADF, the linearity test, and the density feature, instead
// of each kernel rescanning the series for its own mean/stddev/constant
// check (the pre-optimization hot path rescanned each block up to five
// times).
//
// The accumulation orders below intentionally mirror the original
// open-coded loops (sum in index order; two-pass population stddev), so
// every downstream float is bit-identical to the unoptimized code.
type moments struct {
	sum      float64
	stddev   float64 // population stddev; 0 for n < 2
	constant bool    // all values exactly equal
}

// computeMoments summarizes xs in two passes.
func computeMoments(xs []float64) moments {
	m := moments{constant: true}
	if len(xs) == 0 {
		return m
	}
	first := xs[0]
	for _, v := range xs {
		m.sum += v
		if v != first {
			m.constant = false
		}
	}
	if len(xs) < 2 {
		return m
	}
	mean := m.sum / float64(len(xs))
	var s float64
	for _, v := range xs {
		d := v - mean
		s += d * d
	}
	m.stddev = math.Sqrt(s / float64(len(xs)))
	return m
}
