package knative

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"

	"github.com/ubc-cirrus-lab/femux-go/internal/lifecycle"
	"github.com/ubc-cirrus-lab/femux-go/internal/store"
)

// TestTieredForecastsBitIdentical is the tentpole's invisibility
// property: a service squeezed through every demotion path — hot LRU
// eviction under a tiny -max-hot-apps, workspace reclamation, store
// warm->cold paging, compaction embedding page stubs in snapshots,
// restore-ahead prefetch promotions — must serve Float64bits-identical
// targets and forecasts to an untiered, store-less control that saw the
// same observation stream. Random interleavings of single observes,
// batches, explicit page-outs, compactions, prefetch cycles, and
// read-only queries are compared mid-stream and at the end, at every
// tier stripe count.
func TestTieredForecastsBitIdentical(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			testTieredForecastsBitIdentical(t, shards)
		})
	}
}

func testTieredForecastsBitIdentical(t *testing.T, tierShards int) {
	model := trainTinyModel(t)
	apps := make([]string, 8)
	for i := range apps {
		apps[i] = fmt.Sprintf("eq-%d", i)
	}

	ctl := NewService(model)
	ctlSrv := httptest.NewServer(ctl.Handler())
	defer ctlSrv.Close()

	st, err := store.Open(t.TempDir(), store.Options{
		Sync: store.SyncNever, CompactEvery: -1,
		InlineBudget: 3, // most of the fleet is forced cold
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tiered := NewServiceWith(model, ServiceOptions{
		Store: st, MaxHotApps: 2, MaxWorkspaces: 1, TierShards: tierShards,
	})
	tieredSrv := httptest.NewServer(tiered.Handler())
	defer tieredSrv.Close()

	conc := func(rng *rand.Rand) float64 {
		if rng.Intn(3) > 0 {
			return 0 // idle minutes dominate sparse fleets
		}
		return math.Round(rng.Float64()*50*1000) / 1000
	}
	// driftState reads an app's drift detector and history through the
	// same acquire path serving uses (restoring it if demoted).
	driftState := func(s *Service, app string) (d lifecycle.Detector, history []float64) {
		a := s.acquire(app)
		d = a.drift
		history = append(history, a.history...)
		s.releaseApp(a)
		return d, history
	}
	compare := func(when string) {
		t.Helper()
		for _, app := range apps {
			// Drift satellite: the control's incrementally maintained
			// moments, the tiered service's (rebuilt across every
			// evict/page/compact/restore), and a from-scratch batch
			// recomputation of the same window must all be
			// Float64bits-identical.
			dc, hist := driftState(ctl, app)
			dt, _ := driftState(tiered, app)
			if !dc.BitEqual(dt) {
				t.Fatalf("%s: %s: tiered drift state diverged from control", when, app)
			}
			if batch := lifecycle.DetectorOf(hist, model.Config().BlockSize); !dc.BitEqual(batch) {
				t.Fatalf("%s: %s: incremental drift state diverged from batch recomputation", when, app)
			}
			if a, b := dc.Score(), dt.Score(); math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("%s: %s: drift score %v != %v (not bit-identical)", when, app, a, b)
			}
		}
		for _, app := range apps {
			a, b := fetchDecision(t, ctlSrv.URL, app), fetchDecision(t, tieredSrv.URL, app)
			if a.target != b.target {
				t.Fatalf("%s: %s: target %+v != %+v", when, app, a.target, b.target)
			}
			if len(a.forecast.Values) != len(b.forecast.Values) {
				t.Fatalf("%s: %s: forecast lengths %d != %d",
					when, app, len(a.forecast.Values), len(b.forecast.Values))
			}
			for i := range a.forecast.Values {
				if math.Float64bits(a.forecast.Values[i]) != math.Float64bits(b.forecast.Values[i]) {
					t.Fatalf("%s: %s: forecast[%d] %v != %v (not bit-identical)",
						when, app, i, a.forecast.Values[i], b.forecast.Values[i])
				}
			}
			// The quantile curves ride the same invisibility contract.
			qa := fetchQuantileBands(t, ctlSrv.URL, app)
			qb := fetchQuantileBands(t, tieredSrv.URL, app)
			if len(qa) != len(qb) {
				t.Fatalf("%s: %s: quantile band counts %d != %d", when, app, len(qa), len(qb))
			}
			for q := range qa {
				if qa[q].Level != qb[q].Level || len(qa[q].Values) != len(qb[q].Values) {
					t.Fatalf("%s: %s: band %d shape mismatch", when, app, q)
				}
				for i := range qa[q].Values {
					if math.Float64bits(qa[q].Values[i]) != math.Float64bits(qb[q].Values[i]) {
						t.Fatalf("%s: %s: quantile p%g[%d] %v != %v (not bit-identical)",
							when, app, qa[q].Level*100, i, qa[q].Values[i], qb[q].Values[i])
					}
				}
			}
		}
	}

	rng := rand.New(rand.NewSource(42))
	for op := 0; op < 600; op++ {
		switch r := rng.Intn(100); {
		case r < 55: // single observe
			app := apps[rng.Intn(len(apps))]
			v := conc(rng)
			if code := postObserve(t, ctlSrv.URL, app, v); code != 200 {
				t.Fatalf("op %d: control observe: %d", op, code)
			}
			if code := postObserve(t, tieredSrv.URL, app, v); code != 200 {
				t.Fatalf("op %d: tiered observe: %d", op, code)
			}
		case r < 80: // batch observe (may repeat an app within the batch)
			n := 1 + rng.Intn(12)
			obs := make([]BatchObservation, n)
			for i := range obs {
				obs[i] = BatchObservation{App: apps[rng.Intn(len(apps))], Concurrency: conc(rng)}
			}
			body := marshalBatch(t, obs...)
			if resp, out := postBatchJSON(t, ctlSrv.URL, body); resp.StatusCode != 200 || out.Rejected != 0 {
				t.Fatalf("op %d: control batch: %d/%d", op, resp.StatusCode, out.Rejected)
			}
			if resp, out := postBatchJSON(t, tieredSrv.URL, body); resp.StatusCode != 200 || out.Rejected != 0 {
				t.Fatalf("op %d: tiered batch: %d/%d", op, resp.StatusCode, out.Rejected)
			}
		case r < 90: // force a warm->cold demotion in the store
			if err := st.PageOut(apps[rng.Intn(len(apps))]); err != nil {
				t.Fatalf("op %d: page out: %v", op, err)
			}
		case r < 93: // snapshot (fsyncs pages, embeds stubs, GCs page files)
			if err := st.Compact(); err != nil {
				t.Fatalf("op %d: compact: %v", op, err)
			}
		case r < 96: // restore-ahead: promotions must be forecast-invisible
			// Demote one materialized app first so the cycle exercises both
			// promotion shapes: into freed capacity here, and by displacing
			// the LRU tail of a still-full stripe. The dropped app's state
			// survives in the store, so the cycle may promote it (or a
			// sibling) back and the next compare proves the round trip —
			// including any displacement eviction — changed nothing.
			if hot := tiered.HotApps(); hot > 0 {
				tiered.dropCached(apps[rng.Intn(len(apps))])
			}
			tiered.RestoreAheadCycle(0.95, 2)
		default:
			compare(fmt.Sprintf("op %d", op))
		}
	}
	compare("final")

	// The budgets actually did something: demotions happened and the hot
	// tier stayed within bounds — including every prefetch promotion.
	if hot := tiered.HotApps(); hot > 2 {
		t.Errorf("hot apps = %d, want <= 2", hot)
	}
	if st.Stats().PageOuts == 0 {
		t.Error("inline budget never paged an app out")
	}
	if scans, _, _, _ := tiered.RestoreAheadStats(); scans == 0 {
		t.Error("restore-ahead cycles never evaluated a candidate")
	}
}

// TestTierShardCountEquivalence pins the shard split itself: one
// deterministic replay served at -tier-shards 1, 2, and 8 must end with
// Float64bits-identical forecasts, drift state, and conserved durable
// totals — striping changes contention, never results.
func TestTierShardCountEquivalence(t *testing.T) {
	model := trainTinyModel(t)
	apps := make([]string, 12)
	for i := range apps {
		apps[i] = fmt.Sprintf("sc-%d", i)
	}
	type run struct {
		shards int
		svc    *Service
		st     *store.Store
		srv    *httptest.Server
	}
	runs := make([]*run, 0, 3)
	for _, n := range []int{1, 2, 8} {
		st, err := store.Open(t.TempDir(), store.Options{
			Sync: store.SyncNever, CompactEvery: -1, InlineBudget: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		svc := NewServiceWith(model, ServiceOptions{
			Store: st, MaxHotApps: 3, MaxWorkspaces: 2, TierShards: n,
		})
		if got := svc.Stripes(); got != n {
			t.Fatalf("Stripes = %d, want %d", got, n)
		}
		r := &run{shards: n, svc: svc, st: st, srv: httptest.NewServer(svc.Handler())}
		defer r.srv.Close()
		runs = append(runs, r)
	}

	// One op stream, replayed identically against every shard count.
	rng := rand.New(rand.NewSource(99))
	total := 0
	for op := 0; op < 300; op++ {
		switch r := rng.Intn(100); {
		case r < 60:
			app := apps[rng.Intn(len(apps))]
			v := math.Round(rng.Float64()*20*1000) / 1000
			total++
			for _, ru := range runs {
				if code := postObserve(t, ru.srv.URL, app, v); code != 200 {
					t.Fatalf("op %d shards=%d: observe: %d", op, ru.shards, code)
				}
			}
		case r < 85:
			n := 1 + rng.Intn(8)
			obs := make([]BatchObservation, n)
			for i := range obs {
				obs[i] = BatchObservation{
					App:         apps[rng.Intn(len(apps))],
					Concurrency: math.Round(rng.Float64()*20*1000) / 1000,
				}
			}
			total += n
			body := marshalBatch(t, obs...)
			for _, ru := range runs {
				if resp, out := postBatchJSON(t, ru.srv.URL, body); resp.StatusCode != 200 || out.Rejected != 0 {
					t.Fatalf("op %d shards=%d: batch: %d/%d", op, ru.shards, resp.StatusCode, out.Rejected)
				}
			}
		case r < 92:
			app := apps[rng.Intn(len(apps))]
			for _, ru := range runs {
				if err := ru.st.PageOut(app); err != nil {
					t.Fatalf("op %d shards=%d: page out: %v", op, ru.shards, err)
				}
			}
		default:
			for _, ru := range runs {
				ru.svc.RestoreAheadCycle(0.9, 1)
			}
		}
	}

	// Conservation: every run holds the identical durable fleet.
	base := runs[0]
	for _, ru := range runs[1:] {
		if a, b := base.st.TotalObservations(), ru.st.TotalObservations(); a != b {
			t.Errorf("shards=%d: durable total %d, want %d", ru.shards, b, a)
		}
		if a, b := base.svc.Apps(), ru.svc.Apps(); a != b {
			t.Errorf("shards=%d: Apps %d, want %d", ru.shards, b, a)
		}
	}
	if got := base.st.TotalObservations(); got != int64(total) {
		t.Errorf("durable total = %d, want %d (replayed)", got, total)
	}
	// Bit-identical serving state across shard counts.
	for _, app := range apps {
		want := fetchDecision(t, base.srv.URL, app)
		wantQ := fetchQuantileBands(t, base.srv.URL, app)
		for _, ru := range runs[1:] {
			got := fetchDecision(t, ru.srv.URL, app)
			if got.target != want.target {
				t.Fatalf("%s: shards=%d target %+v != shards=1 %+v", app, ru.shards, got.target, want.target)
			}
			for i := range want.forecast.Values {
				if math.Float64bits(want.forecast.Values[i]) != math.Float64bits(got.forecast.Values[i]) {
					t.Fatalf("%s: shards=%d forecast[%d] %v != %v", app, ru.shards, i,
						got.forecast.Values[i], want.forecast.Values[i])
				}
			}
			gotQ := fetchQuantileBands(t, ru.srv.URL, app)
			for q := range wantQ {
				for i := range wantQ[q].Values {
					if math.Float64bits(wantQ[q].Values[i]) != math.Float64bits(gotQ[q].Values[i]) {
						t.Fatalf("%s: shards=%d p%g[%d] %v != %v", app, ru.shards,
							wantQ[q].Level*100, i, gotQ[q].Values[i], wantQ[q].Values[i])
					}
				}
			}
		}
	}
	// The 3-hot budget held globally on every split, including the
	// 8-stripe case where five stripes run at budget 0.
	for _, ru := range runs {
		if hot := ru.svc.HotApps(); hot > 3 {
			t.Errorf("shards=%d: hot apps = %d, want <= 3", ru.shards, hot)
		}
	}
}

// TestLazyBootKeepsAppsWarm pins the boot-path half of the tentpole: a
// restart must NOT materialize the fleet. Apps restored from the store
// stay in the warm tier (Restored counts them, the hot tier is empty)
// until first touch, which promotes exactly one.
func TestLazyBootKeepsAppsWarm(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	var obs []store.Observation
	for i := 0; i < 40; i++ {
		for m := 0; m < 7; m++ {
			obs = append(obs, store.Observation{App: fmt.Sprintf("boot-%d", i), Concurrency: float64(m)})
		}
	}
	if err := st.AppendBatch(obs); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	svc := NewServiceWith(trainTinyModel(t), ServiceOptions{Store: st2})
	if svc.Restored() != 40 {
		t.Fatalf("Restored = %d, want 40", svc.Restored())
	}
	if svc.Apps() != 40 {
		t.Fatalf("Apps = %d, want 40", svc.Apps())
	}
	if hot := svc.HotApps(); hot != 0 {
		t.Fatalf("boot materialized %d apps, want 0 (lazy)", hot)
	}

	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	d := fetchDecision(t, srv.URL, "boot-3")
	if d.target.History != 7 {
		t.Fatalf("restored history = %d, want 7", d.target.History)
	}
	if hot := svc.HotApps(); hot != 1 {
		t.Fatalf("hot apps after one touch = %d, want 1", hot)
	}
}

// TestTierBudgetsStoreless exercises eviction without a store: demoted
// apps live as in-memory compact windows and restore losslessly.
func TestTierBudgetsStoreless(t *testing.T) {
	svc := NewServiceWith(trainTinyModel(t), ServiceOptions{MaxHotApps: 4, MaxWorkspaces: 2})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	rng := rand.New(rand.NewSource(7))
	hist := map[string][]float64{}
	for round := 0; round < 6; round++ {
		for i := 0; i < 20; i++ {
			app := fmt.Sprintf("sl-%d", i)
			v := math.Round(rng.Float64()*10*1000) / 1000
			if code := postObserve(t, srv.URL, app, v); code != 200 {
				t.Fatalf("observe: %d", code)
			}
			hist[app] = append(hist[app], v)
		}
	}
	if hot := svc.HotApps(); hot > 4 {
		t.Errorf("hot apps = %d, want <= 4", hot)
	}
	if got := svc.Apps(); got != 20 {
		t.Errorf("Apps = %d, want 20 (hot + warm)", got)
	}
	hot, warm, cold := svc.TierCounts()
	if hot+warm != 20 || cold != 0 {
		t.Errorf("TierCounts = (%d, %d, %d), want hot+warm = 20, cold = 0", hot, warm, cold)
	}
	// Touching an evicted app restores its full history.
	for i := 0; i < 20; i++ {
		app := fmt.Sprintf("sl-%d", i)
		if d := fetchDecision(t, srv.URL, app); d.target.History != len(hist[app]) {
			t.Fatalf("%s: history %d, want %d", app, d.target.History, len(hist[app]))
		}
	}
}

// BenchmarkTieredObserve measures the observe path while the fleet is
// 16x over the hot budget, so every request cycles the LRU and a
// fraction restore from the warm tier — the steady state of a large
// sparse fleet under -max-hot-apps.
func BenchmarkTieredObserve(b *testing.B) {
	st, err := store.Open(b.TempDir(), store.Options{Sync: store.SyncNever, CompactEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	svc := NewServiceWith(trainTinyModel(b), ServiceOptions{
		Store: st, MaxHotApps: 64, MaxWorkspaces: 64,
	})
	apps := make([]string, 1024)
	for i := range apps {
		apps[i] = fmt.Sprintf("bench-%d", i)
		a := svc.acquire(apps[i])
		a.history = append(a.history, 1, 2, 1, 0, 3)
		svc.releaseApp(a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := svc.acquire(apps[i%len(apps)])
		a.history = append(a.history, float64(i%5))
		_ = a.policy.TargetWS(a.history, 1, a.ws)
		svc.releaseApp(a)
	}
}

// benchShardCounts picks the stripe counts the contended benchmark
// compares: the single-stripe baseline, intermediate splits, and the
// per-core default. On a 1-core box this collapses to {1}; the >=3x
// acceptance number comes from the multi-core CI runner.
func benchShardCounts() []int {
	counts := []int{1}
	for _, n := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		if n > counts[len(counts)-1] {
			counts = append(counts, n)
		}
	}
	return counts
}

// BenchmarkTieredObserveContended is the churn benchmark behind the
// shard split: parallel observes across a working set 16x over the hot
// budget, so nearly every request evicts on one app and restores
// another. Single-striped, every goroutine serializes on one tier
// mutex; striped, only same-stripe touches contend. Reported per stripe
// count — compare ns/op at shards=1 vs shards=GOMAXPROCS.
func BenchmarkTieredObserveContended(b *testing.B) {
	for _, shards := range benchShardCounts() {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			st, err := store.Open(b.TempDir(), store.Options{Sync: store.SyncNever, CompactEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			svc := NewServiceWith(trainTinyModel(b), ServiceOptions{
				Store: st, MaxHotApps: 64, MaxWorkspaces: 64, TierShards: shards,
			})
			apps := make([]string, 1024)
			var seed []store.Observation
			for i := range apps {
				apps[i] = fmt.Sprintf("churn-%d", i)
				for _, v := range []float64{1, 2, 1, 0, 3} {
					seed = append(seed, store.Observation{App: apps[i], Concurrency: v})
				}
			}
			if err := st.AppendBatch(seed); err != nil {
				b.Fatal(err)
			}
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Distinct stride per goroutine: different goroutines hammer
				// different apps, the contention the stripe split removes.
				i := int(next.Add(1)) * 131
				for pb.Next() {
					a := svc.acquire(apps[i%len(apps)])
					a.history = append(a.history, float64(i%5))
					_ = a.policy.TargetWS(a.history, 1, a.ws)
					svc.releaseApp(a)
					i++
				}
			})
		})
	}
}

// fetchQuantileBands reads the app's quantile curves through the REST
// path at the sweep's canonical levels.
func fetchQuantileBands(t testing.TB, srvURL, app string) []QuantileBand {
	t.Helper()
	resp, err := http.Get(srvURL + "/v1/apps/" + app + "/forecast?horizon=6&quantiles=0.5,0.9,0.99")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forecast?quantiles: HTTP %d", resp.StatusCode)
	}
	var out ForecastResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Quantiles) != 3 {
		t.Fatalf("got %d quantile bands, want 3", len(out.Quantiles))
	}
	return out.Quantiles
}
