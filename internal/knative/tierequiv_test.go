package knative

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/ubc-cirrus-lab/femux-go/internal/lifecycle"
	"github.com/ubc-cirrus-lab/femux-go/internal/store"
)

// TestTieredForecastsBitIdentical is the tentpole's invisibility
// property: a service squeezed through every demotion path — hot LRU
// eviction under a tiny -max-hot-apps, workspace reclamation, store
// warm->cold paging, compaction embedding page stubs in snapshots —
// must serve Float64bits-identical targets and forecasts to an
// untiered, store-less control that saw the same observation stream.
// Random interleavings of single observes, batches, explicit page-outs,
// compactions, and read-only queries are compared mid-stream and at the
// end.
func TestTieredForecastsBitIdentical(t *testing.T) {
	model := trainTinyModel(t)
	apps := make([]string, 8)
	for i := range apps {
		apps[i] = fmt.Sprintf("eq-%d", i)
	}

	ctl := NewService(model)
	ctlSrv := httptest.NewServer(ctl.Handler())
	defer ctlSrv.Close()

	st, err := store.Open(t.TempDir(), store.Options{
		Sync: store.SyncNever, CompactEvery: -1,
		InlineBudget: 3, // most of the fleet is forced cold
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tiered := NewServiceWith(model, ServiceOptions{
		Store: st, MaxHotApps: 2, MaxWorkspaces: 1,
	})
	tieredSrv := httptest.NewServer(tiered.Handler())
	defer tieredSrv.Close()

	conc := func(rng *rand.Rand) float64 {
		if rng.Intn(3) > 0 {
			return 0 // idle minutes dominate sparse fleets
		}
		return math.Round(rng.Float64()*50*1000) / 1000
	}
	// driftState reads an app's drift detector and history through the
	// same acquire path serving uses (restoring it if demoted).
	driftState := func(s *Service, app string) (d lifecycle.Detector, history []float64) {
		a := s.acquire(app)
		d = a.drift
		history = append(history, a.history...)
		s.releaseApp(a)
		return d, history
	}
	compare := func(when string) {
		t.Helper()
		for _, app := range apps {
			// Drift satellite: the control's incrementally maintained
			// moments, the tiered service's (rebuilt across every
			// evict/page/compact/restore), and a from-scratch batch
			// recomputation of the same window must all be
			// Float64bits-identical.
			dc, hist := driftState(ctl, app)
			dt, _ := driftState(tiered, app)
			if !dc.BitEqual(dt) {
				t.Fatalf("%s: %s: tiered drift state diverged from control", when, app)
			}
			if batch := lifecycle.DetectorOf(hist, model.Config().BlockSize); !dc.BitEqual(batch) {
				t.Fatalf("%s: %s: incremental drift state diverged from batch recomputation", when, app)
			}
			if a, b := dc.Score(), dt.Score(); math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("%s: %s: drift score %v != %v (not bit-identical)", when, app, a, b)
			}
		}
		for _, app := range apps {
			a, b := fetchDecision(t, ctlSrv.URL, app), fetchDecision(t, tieredSrv.URL, app)
			if a.target != b.target {
				t.Fatalf("%s: %s: target %+v != %+v", when, app, a.target, b.target)
			}
			if len(a.forecast.Values) != len(b.forecast.Values) {
				t.Fatalf("%s: %s: forecast lengths %d != %d",
					when, app, len(a.forecast.Values), len(b.forecast.Values))
			}
			for i := range a.forecast.Values {
				if math.Float64bits(a.forecast.Values[i]) != math.Float64bits(b.forecast.Values[i]) {
					t.Fatalf("%s: %s: forecast[%d] %v != %v (not bit-identical)",
						when, app, i, a.forecast.Values[i], b.forecast.Values[i])
				}
			}
			// The quantile curves ride the same invisibility contract.
			qa := fetchQuantileBands(t, ctlSrv.URL, app)
			qb := fetchQuantileBands(t, tieredSrv.URL, app)
			if len(qa) != len(qb) {
				t.Fatalf("%s: %s: quantile band counts %d != %d", when, app, len(qa), len(qb))
			}
			for q := range qa {
				if qa[q].Level != qb[q].Level || len(qa[q].Values) != len(qb[q].Values) {
					t.Fatalf("%s: %s: band %d shape mismatch", when, app, q)
				}
				for i := range qa[q].Values {
					if math.Float64bits(qa[q].Values[i]) != math.Float64bits(qb[q].Values[i]) {
						t.Fatalf("%s: %s: quantile p%g[%d] %v != %v (not bit-identical)",
							when, app, qa[q].Level*100, i, qa[q].Values[i], qb[q].Values[i])
					}
				}
			}
		}
	}

	rng := rand.New(rand.NewSource(42))
	for op := 0; op < 600; op++ {
		switch r := rng.Intn(100); {
		case r < 55: // single observe
			app := apps[rng.Intn(len(apps))]
			v := conc(rng)
			if code := postObserve(t, ctlSrv.URL, app, v); code != 200 {
				t.Fatalf("op %d: control observe: %d", op, code)
			}
			if code := postObserve(t, tieredSrv.URL, app, v); code != 200 {
				t.Fatalf("op %d: tiered observe: %d", op, code)
			}
		case r < 80: // batch observe (may repeat an app within the batch)
			n := 1 + rng.Intn(12)
			obs := make([]BatchObservation, n)
			for i := range obs {
				obs[i] = BatchObservation{App: apps[rng.Intn(len(apps))], Concurrency: conc(rng)}
			}
			body := marshalBatch(t, obs...)
			if resp, out := postBatchJSON(t, ctlSrv.URL, body); resp.StatusCode != 200 || out.Rejected != 0 {
				t.Fatalf("op %d: control batch: %d/%d", op, resp.StatusCode, out.Rejected)
			}
			if resp, out := postBatchJSON(t, tieredSrv.URL, body); resp.StatusCode != 200 || out.Rejected != 0 {
				t.Fatalf("op %d: tiered batch: %d/%d", op, resp.StatusCode, out.Rejected)
			}
		case r < 90: // force a warm->cold demotion in the store
			if err := st.PageOut(apps[rng.Intn(len(apps))]); err != nil {
				t.Fatalf("op %d: page out: %v", op, err)
			}
		case r < 95: // snapshot (fsyncs pages, embeds stubs, GCs page files)
			if err := st.Compact(); err != nil {
				t.Fatalf("op %d: compact: %v", op, err)
			}
		default:
			compare(fmt.Sprintf("op %d", op))
		}
	}
	compare("final")

	// The budgets actually did something: demotions happened and the hot
	// tier stayed within bounds.
	if hot := tiered.HotApps(); hot > 2 {
		t.Errorf("hot apps = %d, want <= 2", hot)
	}
	if st.Stats().PageOuts == 0 {
		t.Error("inline budget never paged an app out")
	}
}

// TestLazyBootKeepsAppsWarm pins the boot-path half of the tentpole: a
// restart must NOT materialize the fleet. Apps restored from the store
// stay in the warm tier (Restored counts them, the hot tier is empty)
// until first touch, which promotes exactly one.
func TestLazyBootKeepsAppsWarm(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	var obs []store.Observation
	for i := 0; i < 40; i++ {
		for m := 0; m < 7; m++ {
			obs = append(obs, store.Observation{App: fmt.Sprintf("boot-%d", i), Concurrency: float64(m)})
		}
	}
	if err := st.AppendBatch(obs); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	svc := NewServiceWith(trainTinyModel(t), ServiceOptions{Store: st2})
	if svc.Restored() != 40 {
		t.Fatalf("Restored = %d, want 40", svc.Restored())
	}
	if svc.Apps() != 40 {
		t.Fatalf("Apps = %d, want 40", svc.Apps())
	}
	if hot := svc.HotApps(); hot != 0 {
		t.Fatalf("boot materialized %d apps, want 0 (lazy)", hot)
	}

	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	d := fetchDecision(t, srv.URL, "boot-3")
	if d.target.History != 7 {
		t.Fatalf("restored history = %d, want 7", d.target.History)
	}
	if hot := svc.HotApps(); hot != 1 {
		t.Fatalf("hot apps after one touch = %d, want 1", hot)
	}
}

// TestTierBudgetsStoreless exercises eviction without a store: demoted
// apps live as in-memory compact windows and restore losslessly.
func TestTierBudgetsStoreless(t *testing.T) {
	svc := NewServiceWith(trainTinyModel(t), ServiceOptions{MaxHotApps: 4, MaxWorkspaces: 2})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	rng := rand.New(rand.NewSource(7))
	hist := map[string][]float64{}
	for round := 0; round < 6; round++ {
		for i := 0; i < 20; i++ {
			app := fmt.Sprintf("sl-%d", i)
			v := math.Round(rng.Float64()*10*1000) / 1000
			if code := postObserve(t, srv.URL, app, v); code != 200 {
				t.Fatalf("observe: %d", code)
			}
			hist[app] = append(hist[app], v)
		}
	}
	if hot := svc.HotApps(); hot > 4 {
		t.Errorf("hot apps = %d, want <= 4", hot)
	}
	if got := svc.Apps(); got != 20 {
		t.Errorf("Apps = %d, want 20 (hot + warm)", got)
	}
	hot, warm, cold := svc.TierCounts()
	if hot+warm != 20 || cold != 0 {
		t.Errorf("TierCounts = (%d, %d, %d), want hot+warm = 20, cold = 0", hot, warm, cold)
	}
	// Touching an evicted app restores its full history.
	for i := 0; i < 20; i++ {
		app := fmt.Sprintf("sl-%d", i)
		if d := fetchDecision(t, srv.URL, app); d.target.History != len(hist[app]) {
			t.Fatalf("%s: history %d, want %d", app, d.target.History, len(hist[app]))
		}
	}
}

// BenchmarkTieredObserve measures the observe path while the fleet is
// 16x over the hot budget, so every request cycles the LRU and a
// fraction restore from the warm tier — the steady state of a large
// sparse fleet under -max-hot-apps.
func BenchmarkTieredObserve(b *testing.B) {
	st, err := store.Open(b.TempDir(), store.Options{Sync: store.SyncNever, CompactEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	svc := NewServiceWith(trainTinyModel(b), ServiceOptions{
		Store: st, MaxHotApps: 64, MaxWorkspaces: 64,
	})
	apps := make([]string, 1024)
	for i := range apps {
		apps[i] = fmt.Sprintf("bench-%d", i)
		a := svc.acquire(apps[i])
		a.history = append(a.history, 1, 2, 1, 0, 3)
		svc.releaseApp(a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := svc.acquire(apps[i%len(apps)])
		a.history = append(a.history, float64(i%5))
		_ = a.policy.TargetWS(a.history, 1, a.ws)
		svc.releaseApp(a)
	}
}

// fetchQuantileBands reads the app's quantile curves through the REST
// path at the sweep's canonical levels.
func fetchQuantileBands(t testing.TB, srvURL, app string) []QuantileBand {
	t.Helper()
	resp, err := http.Get(srvURL + "/v1/apps/" + app + "/forecast?horizon=6&quantiles=0.5,0.9,0.99")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forecast?quantiles: HTTP %d", resp.StatusCode)
	}
	var out ForecastResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Quantiles) != 3 {
		t.Fatalf("got %d quantile bands, want 3", len(out.Quantiles))
	}
	return out.Quantiles
}
