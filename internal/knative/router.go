package knative

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/serving"
	"github.com/ubc-cirrus-lab/femux-go/internal/store"
)

// ShardRouter fans FeMux API traffic out to a fleet of femuxd instances
// that each own a hash partition of the apps (store.ShardOf — the same
// function the instances use to enforce ownership, so router and fleet
// can never disagree). Per-app requests are proxied to the owning shard;
// batch observes are split into per-shard sub-batches, forwarded
// concurrently, and merged back into input order; admin reloads fan out
// to every instance so one retrain propagates fleet-wide.
//
// Each shard is a backend GROUP — "primary|replica[|replica...]" — and
// the router is the failover controller: a health loop watches every
// shard's active backend and, after enough consecutive failures,
// promotes the next backend in the group (POST /v1/admin/promote) and
// fails traffic over to it. The router is also the resharding
// coordinator: POST /v1/admin/reshard drains, transfers, and hands off
// every moving app, then bumps the fleet-wide ownership epoch, growing
// the fleet N -> N+1 under live traffic.
type ShardRouter struct {
	mu      sync.RWMutex
	shards  []*shardBackend
	pending *shardBackend // joining shard during a reshard; owner-retries may target it
	client  *http.Client

	reshardMu sync.Mutex // serializes reshard runs

	reg        *serving.Registry
	routed     *serving.Counter // femux_route_requests_total{shard}
	errs       *serving.Counter // femux_route_errors_total{shard}
	retries    *serving.Counter // femux_route_owner_retries_total
	promotions *serving.Counter // femux_route_promotions_total{shard}
	moved      *serving.Counter // femux_reshard_moved_apps_total
	resharding *serving.Gauge   // femux_resharding (1 while a reshard runs)
}

// shardBackend is one shard's ordered backend group. urls[active] serves
// traffic; the rest are replicas tailing it with -replica-of.
type shardBackend struct {
	urls []string

	mu     sync.Mutex
	active int
	fails  int // consecutive health-check failures of urls[active]
}

func (b *shardBackend) url() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.urls[b.active]
}

// parseBackendGroup splits a "primary|replica|..." spec.
func parseBackendGroup(spec string) (*shardBackend, error) {
	var urls []string
	for _, u := range strings.Split(spec, "|") {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		urls = append(urls, u)
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("knative: empty backend group %q", spec)
	}
	return &shardBackend{urls: urls}, nil
}

// NewShardRouter returns a router over the given backend specs, one per
// shard in shard order; each spec is "primary[|replica...]". client may
// be nil for a default with a 10 s timeout.
func NewShardRouter(backends []string, client *http.Client) (*ShardRouter, error) {
	if len(backends) == 0 {
		return nil, errors.New("knative: router needs at least one backend")
	}
	shards := make([]*shardBackend, len(backends))
	for i, spec := range backends {
		b, err := parseBackendGroup(spec)
		if err != nil {
			return nil, err
		}
		shards[i] = b
	}
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	rt := &ShardRouter{shards: shards, client: client, reg: serving.NewRegistry()}
	rt.reg.RegisterGoMetrics()
	rt.routed = rt.reg.NewCounter("femux_route_requests_total",
		"Requests routed, per owning shard.", "shard")
	rt.errs = rt.reg.NewCounter("femux_route_errors_total",
		"Requests that failed at the backend, per shard.", "shard")
	rt.retries = rt.reg.NewCounter("femux_route_owner_retries_total",
		"Requests re-sent to the owner named by a 421 redirect.")
	rt.promotions = rt.reg.NewCounter("femux_route_promotions_total",
		"Replica promotions triggered by the health loop, per shard.", "shard")
	rt.moved = rt.reg.NewCounter("femux_reshard_moved_apps_total",
		"Apps migrated between shards by reshard runs.")
	rt.resharding = rt.reg.NewGauge("femux_resharding",
		"1 while a reshard run is in progress.")
	rt.reg.NewGaugeFunc("femux_route_shards",
		"Number of backend shards behind this router.",
		func() float64 { return float64(rt.Shards()) })
	return rt, nil
}

// Shards reports the fleet size.
func (rt *ShardRouter) Shards() int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return len(rt.shards)
}

// snapshot returns the current shard list; the slice is never mutated in
// place (reshard appends to a copy), so it is safe to iterate unlocked.
func (rt *ShardRouter) snapshot() []*shardBackend {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.shards
}

// backendForOwner resolves a 421 redirect's owner to a backend group.
// During a reshard the joining shard is addressable as owner == N even
// though routing still uses the old N-shard map — that is exactly how
// per-app cutover stays hitless before the epoch bump.
func (rt *ShardRouter) backendForOwner(owner int) *shardBackend {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if owner >= 0 && owner < len(rt.shards) {
		return rt.shards[owner]
	}
	if rt.pending != nil && owner == len(rt.shards) {
		return rt.pending
	}
	return nil
}

// Handler returns the router's HTTP handler.
func (rt *ShardRouter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", rt.healthz)
	mux.HandleFunc("/v1/apps/", rt.proxyApp)
	mux.HandleFunc("/v1/observe/batch", rt.splitBatch)
	mux.HandleFunc("/v1/admin/reload", rt.fanoutReload)
	mux.HandleFunc("/v1/admin/reshard", rt.reshardHandler)
	mux.HandleFunc("/v1/admin/failover", rt.failoverHandler)
	mux.Handle("/metrics", rt.reg.Handler())
	return mux
}

// healthz reports healthy only when every shard's active backend is.
func (rt *ShardRouter) healthz(w http.ResponseWriter, _ *http.Request) {
	var bad []string
	for i, b := range rt.snapshot() {
		resp, err := rt.client.Get(b.url() + "/healthz")
		if err != nil {
			bad = append(bad, fmt.Sprintf("shard %d: %v", i, err))
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			bad = append(bad, fmt.Sprintf("shard %d: HTTP %d", i, resp.StatusCode))
		}
	}
	if len(bad) > 0 {
		http.Error(w, strings.Join(bad, "\n"), http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// StartHealthLoop launches the failover controller: every interval it
// health-checks each shard's active backend; after threshold consecutive
// failures it promotes the next backend in the group and fails traffic
// over. Returns a stop function.
func (rt *ShardRouter) StartHealthLoop(interval time.Duration, threshold int) (stop func()) {
	if threshold < 1 {
		threshold = 1
	}
	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stopCh:
				return
			case <-time.After(interval):
			}
			for i, b := range rt.snapshot() {
				rt.checkShard(i, b, threshold)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(stopCh) })
		<-done
	}
}

func (rt *ShardRouter) checkShard(i int, b *shardBackend, threshold int) {
	healthy := false
	resp, err := rt.client.Get(b.url() + "/healthz")
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		healthy = resp.StatusCode == http.StatusOK
	}
	b.mu.Lock()
	if healthy {
		b.fails = 0
		b.mu.Unlock()
		return
	}
	b.fails++
	fails, nURLs := b.fails, len(b.urls)
	b.mu.Unlock()
	if fails < threshold || nURLs < 2 {
		return
	}
	if err := rt.failover(i, b); err == nil {
		b.mu.Lock()
		b.fails = 0
		b.mu.Unlock()
	}
	// On error: fails stays >= threshold, so the next tick retries the
	// promotion (Promote is idempotent on the target).
}

// failover promotes the next backend in shard i's group and moves
// traffic to it.
func (rt *ShardRouter) failover(i int, b *shardBackend) error {
	b.mu.Lock()
	candidate := (b.active + 1) % len(b.urls)
	url := b.urls[candidate]
	b.mu.Unlock()
	resp, err := rt.client.Post(url+"/v1/admin/promote", "application/json", nil)
	if err != nil {
		rt.errs.Inc(strconv.Itoa(i))
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		rt.errs.Inc(strconv.Itoa(i))
		return fmt.Errorf("promote %s: HTTP %d", url, resp.StatusCode)
	}
	b.mu.Lock()
	b.active = candidate
	b.mu.Unlock()
	rt.promotions.Inc(strconv.Itoa(i))
	return nil
}

// failoverHandler manually promotes shard {shard}'s next backend —
// POST /v1/admin/failover {"shard": 1} — for operators and tests.
func (rt *ShardRouter) failoverHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "failover requires POST", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Shard int `json:"shard"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, maxObserveBody)).Decode(&req); err != nil {
		http.Error(w, "need {shard}", http.StatusBadRequest)
		return
	}
	shards := rt.snapshot()
	if req.Shard < 0 || req.Shard >= len(shards) {
		http.Error(w, fmt.Sprintf("no shard %d in a fleet of %d", req.Shard, len(shards)),
			http.StatusBadRequest)
		return
	}
	b := shards[req.Shard]
	b.mu.Lock()
	nURLs := len(b.urls)
	b.mu.Unlock()
	if nURLs < 2 {
		http.Error(w, fmt.Sprintf("shard %d has no replica to fail over to", req.Shard),
			http.StatusConflict)
		return
	}
	if err := rt.failover(req.Shard, b); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, struct {
		Shard  int    `json:"shard"`
		Active string `json:"active"`
	}{req.Shard, b.url()})
}

// proxyApp forwards a per-app request to the shard owning the app. A 421
// naming a different owner (an app mid-migration) is retried once at the
// owner, so per-app cutover is invisible to clients.
func (rt *ShardRouter) proxyApp(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/apps/")
	app, _, _ := strings.Cut(rest, "/")
	if app == "" {
		http.Error(w, "expected /v1/apps/{app}/...", http.StatusNotFound)
		return
	}
	shards := rt.snapshot()
	shard := store.ShardOf(app, len(shards))
	label := strconv.Itoa(shard)
	rt.routed.Inc(label)

	// Per-app request bodies are tiny (maxObserveBody); buffer so the
	// request can be replayed against the owner on a 421 redirect.
	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, maxObserveBody))
		if err != nil {
			http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	uri := r.URL.Path
	if r.URL.RawQuery != "" {
		uri += "?" + r.URL.RawQuery
	}
	resp, err := rt.forward(r, shards[shard].url()+uri, body)
	if err != nil {
		rt.errs.Inc(label)
		http.Error(w, fmt.Sprintf("shard %d unavailable: %v", shard, err), http.StatusBadGateway)
		return
	}
	if resp.StatusCode == http.StatusMisdirectedRequest {
		if owner, err := strconv.Atoi(resp.Header.Get("X-Femux-Owner")); err == nil && owner != shard {
			if b := rt.backendForOwner(owner); b != nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				rt.retries.Inc()
				resp2, err := rt.forward(r, b.url()+uri, body)
				if err != nil {
					rt.errs.Inc(strconv.Itoa(owner))
					http.Error(w, fmt.Sprintf("owner shard %d unavailable: %v", owner, err),
						http.StatusBadGateway)
					return
				}
				resp = resp2
			}
		}
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func (rt *ShardRouter) forward(r *http.Request, target string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, target, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	return rt.client.Do(req)
}

// splitBatch partitions a batch body by owning shard, posts the
// sub-batches concurrently, and stitches the per-item results back into
// the caller's input order. A whole-shard failure surfaces as per-item
// 503s for that shard's slice of the batch (the rest of the fleet still
// commits), so partial outages degrade instead of failing the
// collector's entire interval. Items answered 421 with an owner are
// re-sent to the owner in a second round, so apps mid-migration commit
// on their new shard within the same client request.
func (rt *ShardRouter) splitBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "batch observe requires POST", http.StatusMethodNotAllowed)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBody)
	var req BatchObserveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("body exceeds %d bytes", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "bad body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Observations) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}

	shards := rt.snapshot()
	n := len(shards)
	subIdx := make([][]int, n)              // original index of each sub-batch item
	subObs := make([][]BatchObservation, n) // per-shard sub-batches
	for i, obs := range req.Observations {
		s := store.ShardOf(obs.App, n)
		subIdx[s] = append(subIdx[s], i)
		subObs[s] = append(subObs[s], obs)
	}

	out := BatchObserveResponse{Results: make([]BatchItemResult, len(req.Observations))}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		if len(subObs[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			label := strconv.Itoa(s)
			rt.routed.Inc(label)
			sub, err := rt.postBatch(shards[s].url(), subObs[s])
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				rt.errs.Inc(label)
				for _, orig := range subIdx[s] {
					out.Results[orig] = BatchItemResult{
						App:    req.Observations[orig].App,
						Error:  fmt.Sprintf("shard %d: %v", s, err),
						Status: http.StatusServiceUnavailable,
					}
				}
				out.Rejected += len(subIdx[s])
				return
			}
			for j, orig := range subIdx[s] {
				out.Results[orig] = sub.Results[j]
			}
			out.Accepted += sub.Accepted
			out.Rejected += sub.Rejected
		}(s)
	}
	wg.Wait()

	rt.retryRedirected(&out, req.Observations)
	writeJSON(w, out)
}

// retryRedirected re-sends every item the first round answered 421-with-
// owner to the named owner, merging second-round results in place.
func (rt *ShardRouter) retryRedirected(out *BatchObserveResponse, obs []BatchObservation) {
	byOwner := map[int][]int{} // owner shard -> original indices
	for i := range out.Results {
		res := &out.Results[i]
		if res.Status == http.StatusMisdirectedRequest && res.Owner != nil {
			byOwner[*res.Owner] = append(byOwner[*res.Owner], i)
		}
	}
	if len(byOwner) == 0 {
		return
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for owner, idxs := range byOwner {
		b := rt.backendForOwner(owner)
		if b == nil {
			continue
		}
		wg.Add(1)
		go func(owner int, idxs []int, b *shardBackend) {
			defer wg.Done()
			sub := make([]BatchObservation, len(idxs))
			for j, i := range idxs {
				sub[j] = obs[i]
			}
			rt.retries.Inc()
			res, err := rt.postBatch(b.url(), sub)
			if err != nil {
				return // first-round 421s stand
			}
			mu.Lock()
			defer mu.Unlock()
			for j, i := range idxs {
				out.Results[i] = res.Results[j]
				out.Rejected--
				if res.Results[j].Error == "" {
					out.Accepted++
				} else {
					out.Rejected++
				}
			}
		}(owner, idxs, b)
	}
	wg.Wait()
}

// postBatch forwards one sub-batch to a backend and decodes the reply.
func (rt *ShardRouter) postBatch(baseURL string, obs []BatchObservation) (*BatchObserveResponse, error) {
	body, err := json.Marshal(BatchObserveRequest{Observations: obs})
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Post(baseURL+"/v1/observe/batch",
		"application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}
	var out BatchObserveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(obs) {
		return nil, fmt.Errorf("shard returned %d results for %d observations", len(out.Results), len(obs))
	}
	return &out, nil
}

// fanoutReload POSTs /v1/admin/reload to every shard, so one retrained
// model in the shared store directory goes live fleet-wide.
func (rt *ShardRouter) fanoutReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "reload requires POST", http.StatusMethodNotAllowed)
		return
	}
	shards := rt.snapshot()
	type shardReload struct {
		Shard  int    `json:"shard"`
		Status int    `json:"status"`
		Error  string `json:"error,omitempty"`
	}
	results := make([]shardReload, len(shards))
	var wg sync.WaitGroup
	failed := false
	var mu sync.Mutex
	for i, b := range shards {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			resp, err := rt.client.Post(url+"/v1/admin/reload", "", nil)
			res := shardReload{Shard: i}
			if err != nil {
				res.Error = err.Error()
			} else {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				res.Status = resp.StatusCode
				if resp.StatusCode != http.StatusOK {
					res.Error = fmt.Sprintf("HTTP %d", resp.StatusCode)
				}
			}
			mu.Lock()
			results[i] = res
			if res.Error != "" {
				failed = true
			}
			mu.Unlock()
		}(i, b.url())
	}
	wg.Wait()
	if failed {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		json.NewEncoder(w).Encode(results)
		return
	}
	writeJSON(w, results)
}

// ReshardReport summarizes one completed reshard run.
type ReshardReport struct {
	Shards int `json:"shards"` // fleet size after the run
	Epoch  int `json:"epoch"`  // ownership epoch installed fleet-wide
	Moved  int `json:"moved"`  // apps migrated to the joining shard
}

// Reshard grows the fleet by one shard under live traffic. addSpec is
// the joining shard's backend group ("primary[|replica...]"); the
// instance must already be running with -shards N+1 -shard-id N. The
// protocol, per moving app: drain on the old owner (writes fence, 421
// redirect on), export its history, import on the new owner (replace
// semantics — idempotent), hand off (old owner drops state). Rendezvous
// hashing guarantees the only apps that move are those the joining shard
// now owns (~1/(N+1) of the fleet); everything else never migrates.
// After every mover lands, one epoch bump installs the N+1-shard map
// fleet-wide and the router starts routing to the new shard directly.
// Interrupted runs are safe to re-POST: completed movers are gone from
// the old owner's app list, half-moved ones re-drain and re-import.
func (rt *ShardRouter) Reshard(addSpec string) (*ReshardReport, error) {
	if !rt.reshardMu.TryLock() {
		return nil, errors.New("knative: a reshard is already in progress")
	}
	defer rt.reshardMu.Unlock()
	rt.resharding.Set(1)
	defer rt.resharding.Set(0)

	joining, err := parseBackendGroup(addSpec)
	if err != nil {
		return nil, err
	}
	old := rt.snapshot()
	newN := len(old) + 1

	// The joining shard must already believe in the N+1-shard world and
	// identify as the new shard — otherwise it would reject its movers.
	var jst ReplStatus
	if err := rt.getJSON(joining.url()+"/v1/replication/status", &jst); err != nil {
		return nil, fmt.Errorf("joining shard unreachable: %w", err)
	}
	if jst.Shards != newN || jst.ShardID != newN-1 {
		return nil, fmt.Errorf("joining shard is configured shard %d of %d, want %d of %d",
			jst.ShardID, jst.Shards, newN-1, newN)
	}
	if jst.Replica {
		return nil, errors.New("joining shard is an unpromoted replica")
	}
	if !jst.Joining {
		return nil, errors.New("joining shard is not in -joining mode " +
			"(already cut over, or started without the flag — a joining shard must " +
			"reject un-migrated apps or their first writes would be lost to the import)")
	}

	// The new epoch must beat every instance's current epoch.
	maxEpoch := jst.Epoch
	for i, b := range old {
		var st ReplStatus
		if err := rt.getJSON(b.url()+"/v1/replication/status", &st); err != nil {
			return nil, fmt.Errorf("shard %d status: %w", i, err)
		}
		if st.Epoch > maxEpoch {
			maxEpoch = st.Epoch
		}
	}
	newEpoch := maxEpoch + 1

	// Expose the joining shard to 421-owner retries before any app is
	// drained: from the first cutover, redirected traffic must reach it.
	rt.mu.Lock()
	rt.pending = joining
	rt.mu.Unlock()
	defer func() {
		rt.mu.Lock()
		rt.pending = nil
		rt.mu.Unlock()
	}()

	report := &ReshardReport{Shards: newN, Epoch: newEpoch}
	for i, b := range old {
		var apps struct {
			Apps []string `json:"apps"`
		}
		if err := rt.getJSON(b.url()+"/v1/replication/apps", &apps); err != nil {
			return report, fmt.Errorf("shard %d app list: %w", i, err)
		}
		for _, app := range apps.Apps {
			target := store.ShardOf(app, newN)
			if target == i {
				continue
			}
			dst := joining
			if target < len(old) {
				dst = old[target] // general case; never hit with rendezvous growth
			}
			if err := rt.migrateApp(b, dst, app, target); err != nil {
				return report, fmt.Errorf("migrate %q from shard %d to %d: %w", app, i, target, err)
			}
			rt.moved.Inc()
			report.Moved++
		}
	}

	// Cutover complete: install the new shard map everywhere, then route
	// to the joining shard directly.
	epochBody := struct {
		Shards int `json:"shards"`
		Epoch  int `json:"epoch"`
	}{newN, newEpoch}
	for i, b := range append(append([]*shardBackend{}, old...), joining) {
		if err := rt.postJSON(b.url()+"/v1/admin/epoch", epochBody, nil); err != nil {
			return report, fmt.Errorf("epoch bump on shard %d: %w", i, err)
		}
	}
	rt.mu.Lock()
	rt.shards = append(append([]*shardBackend{}, rt.shards...), joining)
	rt.pending = nil
	rt.mu.Unlock()
	return report, nil
}

// migrateApp runs the drain -> export -> import -> handoff protocol for
// one app.
func (rt *ShardRouter) migrateApp(src, dst *shardBackend, app string, owner int) error {
	drain := struct {
		App   string `json:"app"`
		Owner int    `json:"owner"`
	}{app, owner}
	if err := rt.postJSON(src.url()+"/v1/admin/drain", drain, nil); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	var transfer AppTransfer
	if err := rt.getJSON(src.url()+"/v1/replication/app?name="+url.QueryEscape(app), &transfer); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	if err := rt.postJSON(dst.url()+"/v1/replication/import", transfer, nil); err != nil {
		return fmt.Errorf("import: %w", err)
	}
	handoff := struct {
		App string `json:"app"`
	}{app}
	if err := rt.postJSON(src.url()+"/v1/admin/handoff", handoff, nil); err != nil {
		return fmt.Errorf("handoff: %w", err)
	}
	return nil
}

// reshardHandler is POST /v1/admin/reshard {"add": "url[|url...]"}.
func (rt *ShardRouter) reshardHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "reshard requires POST", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Add string `json:"add"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, maxObserveBody)).Decode(&req); err != nil || req.Add == "" {
		http.Error(w, `need {"add": "backend[|backend...]"}`, http.StatusBadRequest)
		return
	}
	report, err := rt.Reshard(req.Add)
	if err != nil {
		status := http.StatusBadGateway
		if strings.Contains(err.Error(), "already in progress") {
			status = http.StatusConflict
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, report)
}

func (rt *ShardRouter) getJSON(url string, v interface{}) error {
	resp, err := rt.client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("GET %s: HTTP %d: %s", url, resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func (rt *ShardRouter) postJSON(url string, body, v interface{}) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := rt.client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		eb, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("POST %s: HTTP %d: %s", url, resp.StatusCode, strings.TrimSpace(string(eb)))
	}
	if v == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
