package knative

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/serving"
	"github.com/ubc-cirrus-lab/femux-go/internal/store"
)

// ShardRouter fans FeMux API traffic out to a fleet of femuxd instances
// that each own a hash partition of the apps (store.ShardOf — the same
// function the instances use to enforce ownership, so router and fleet
// can never disagree). Per-app requests are proxied to the owning shard;
// batch observes are split into per-shard sub-batches, forwarded
// concurrently, and merged back into input order; admin reloads fan out
// to every instance so one retrain propagates fleet-wide.
type ShardRouter struct {
	backends []string
	client   *http.Client

	reg    *serving.Registry
	routed *serving.Counter // femux_route_requests_total{shard}
	errs   *serving.Counter // femux_route_errors_total{shard}
}

// NewShardRouter returns a router over the given backend base URLs, one
// per shard, in shard order. client may be nil for http.DefaultClient
// semantics with a 10 s timeout.
func NewShardRouter(backends []string, client *http.Client) (*ShardRouter, error) {
	if len(backends) == 0 {
		return nil, errors.New("knative: router needs at least one backend")
	}
	for i, b := range backends {
		backends[i] = strings.TrimRight(b, "/")
	}
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	rt := &ShardRouter{backends: backends, client: client, reg: serving.NewRegistry()}
	rt.reg.RegisterGoMetrics()
	rt.routed = rt.reg.NewCounter("femux_route_requests_total",
		"Requests routed, per owning shard.", "shard")
	rt.errs = rt.reg.NewCounter("femux_route_errors_total",
		"Requests that failed at the backend, per shard.", "shard")
	rt.reg.NewGaugeFunc("femux_route_shards",
		"Number of backend shards behind this router.",
		func() float64 { return float64(len(rt.backends)) })
	return rt, nil
}

// Shards reports the fleet size.
func (rt *ShardRouter) Shards() int { return len(rt.backends) }

// Handler returns the router's HTTP handler.
func (rt *ShardRouter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", rt.healthz)
	mux.HandleFunc("/v1/apps/", rt.proxyApp)
	mux.HandleFunc("/v1/observe/batch", rt.splitBatch)
	mux.HandleFunc("/v1/admin/reload", rt.fanoutReload)
	mux.Handle("/metrics", rt.reg.Handler())
	return mux
}

// healthz reports healthy only when every shard is.
func (rt *ShardRouter) healthz(w http.ResponseWriter, _ *http.Request) {
	var bad []string
	for i, b := range rt.backends {
		resp, err := rt.client.Get(b + "/healthz")
		if err != nil {
			bad = append(bad, fmt.Sprintf("shard %d: %v", i, err))
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			bad = append(bad, fmt.Sprintf("shard %d: HTTP %d", i, resp.StatusCode))
		}
	}
	if len(bad) > 0 {
		http.Error(w, strings.Join(bad, "\n"), http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// proxyApp forwards a per-app request to the shard owning the app.
func (rt *ShardRouter) proxyApp(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/apps/")
	app, _, _ := strings.Cut(rest, "/")
	if app == "" {
		http.Error(w, "expected /v1/apps/{app}/...", http.StatusNotFound)
		return
	}
	shard := store.ShardOf(app, len(rt.backends))
	label := strconv.Itoa(shard)
	rt.routed.Inc(label)

	target := rt.backends[shard] + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, target, r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.errs.Inc(label)
		http.Error(w, fmt.Sprintf("shard %d unavailable: %v", shard, err), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// splitBatch partitions a batch body by owning shard, posts the
// sub-batches concurrently, and stitches the per-item results back into
// the caller's input order. A whole-shard failure surfaces as per-item
// errors for that shard's slice of the batch (the rest of the fleet
// still commits), so partial outages degrade instead of failing the
// collector's entire interval.
func (rt *ShardRouter) splitBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "batch observe requires POST", http.StatusMethodNotAllowed)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBody)
	var req BatchObserveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("body exceeds %d bytes", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "bad body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Observations) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}

	n := len(rt.backends)
	subIdx := make([][]int, n)              // original index of each sub-batch item
	subObs := make([][]BatchObservation, n) // per-shard sub-batches
	for i, obs := range req.Observations {
		s := store.ShardOf(obs.App, n)
		subIdx[s] = append(subIdx[s], i)
		subObs[s] = append(subObs[s], obs)
	}

	out := BatchObserveResponse{Results: make([]BatchItemResult, len(req.Observations))}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		if len(subObs[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			label := strconv.Itoa(s)
			rt.routed.Inc(label)
			sub, err := rt.postBatch(s, subObs[s])
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				rt.errs.Inc(label)
				for _, orig := range subIdx[s] {
					out.Results[orig] = BatchItemResult{
						App:   req.Observations[orig].App,
						Error: fmt.Sprintf("shard %d: %v", s, err),
					}
				}
				out.Rejected += len(subIdx[s])
				return
			}
			for j, orig := range subIdx[s] {
				out.Results[orig] = sub.Results[j]
			}
			out.Accepted += sub.Accepted
			out.Rejected += sub.Rejected
		}(s)
	}
	wg.Wait()
	writeJSON(w, out)
}

// postBatch forwards one sub-batch to a shard and decodes the reply.
func (rt *ShardRouter) postBatch(shard int, obs []BatchObservation) (*BatchObserveResponse, error) {
	body, err := json.Marshal(BatchObserveRequest{Observations: obs})
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Post(rt.backends[shard]+"/v1/observe/batch",
		"application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}
	var out BatchObserveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(obs) {
		return nil, fmt.Errorf("shard returned %d results for %d observations", len(out.Results), len(obs))
	}
	return &out, nil
}

// fanoutReload POSTs /v1/admin/reload to every shard, so one retrained
// model in the shared store directory goes live fleet-wide.
func (rt *ShardRouter) fanoutReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "reload requires POST", http.StatusMethodNotAllowed)
		return
	}
	type shardReload struct {
		Shard  int    `json:"shard"`
		Status int    `json:"status"`
		Error  string `json:"error,omitempty"`
	}
	results := make([]shardReload, len(rt.backends))
	var wg sync.WaitGroup
	failed := false
	var mu sync.Mutex
	for i, b := range rt.backends {
		wg.Add(1)
		go func(i int, b string) {
			defer wg.Done()
			resp, err := rt.client.Post(b+"/v1/admin/reload", "", nil)
			res := shardReload{Shard: i}
			if err != nil {
				res.Error = err.Error()
			} else {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				res.Status = resp.StatusCode
				if resp.StatusCode != http.StatusOK {
					res.Error = fmt.Sprintf("HTTP %d", resp.StatusCode)
				}
			}
			mu.Lock()
			results[i] = res
			if res.Error != "" {
				failed = true
			}
			mu.Unlock()
		}(i, b)
	}
	wg.Wait()
	if failed {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		json.NewEncoder(w).Encode(results)
		return
	}
	writeJSON(w, results)
}
