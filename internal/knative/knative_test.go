package knative

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/femux"
	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
	"github.com/ubc-cirrus-lab/femux-go/internal/timeseries"
	"github.com/ubc-cirrus-lab/femux-go/internal/trace"
)

// --- Autoscaler ---

func TestAutoscalerScalesUpOnLoad(t *testing.T) {
	a := NewAutoscaler(DefaultAutoscalerConfig(), 10)
	now := time.Duration(0)
	for i := 0; i < 30; i++ {
		now += 2 * time.Second
		a.Observe(now, 35) // sustained concurrency 35, CC=10 -> 4 pods
	}
	if got := a.Desired(now, 1, 0); got != 4 {
		t.Errorf("desired = %d, want 4", got)
	}
}

func TestAutoscalerStableWindowSmoothsSpikes(t *testing.T) {
	a := NewAutoscaler(DefaultAutoscalerConfig(), 1)
	now := time.Duration(0)
	// 60s of zeros, then one observation of 1.
	for i := 0; i < 30; i++ {
		now += 2 * time.Second
		a.Observe(now, 0)
	}
	now += 2 * time.Second
	a.Observe(now, 1)
	// Stable average is 1/31 -> still 1 pod wanted (ceil), demonstrating
	// the sliding-window persistence of the 1-minute view.
	if got := a.Desired(now, 1, 0); got != 1 {
		t.Errorf("desired = %d, want 1", got)
	}
}

func TestAutoscalerPanicMode(t *testing.T) {
	a := NewAutoscaler(DefaultAutoscalerConfig(), 1)
	now := time.Duration(0)
	// Quiet for 54s.
	for i := 0; i < 27; i++ {
		now += 2 * time.Second
		a.Observe(now, 0)
	}
	// Burst of concurrency 10 for 6s with 1 pod: panic threshold 2.0 is
	// exceeded (10/1 >= 2), so the autoscaler jumps to the panic-window
	// demand instead of the diluted stable average.
	for i := 0; i < 3; i++ {
		now += 2 * time.Second
		a.Observe(now, 10)
	}
	got := a.Desired(now, 1, 0)
	if got < 10 {
		t.Errorf("panic desired = %d, want >= 10", got)
	}
	// During panic, no scale-down even after the burst fades briefly.
	now += 2 * time.Second
	a.Observe(now, 0)
	if got := a.Desired(now, 10, 0); got < 10 {
		t.Errorf("panic hold desired = %d, want >= 10", got)
	}
}

func TestAutoscalerScaleToZeroGrace(t *testing.T) {
	cfg := DefaultAutoscalerConfig()
	a := NewAutoscaler(cfg, 1)
	now := 2 * time.Second
	a.Observe(now, 1)
	if got := a.Desired(now, 1, 0); got != 1 {
		t.Fatalf("active desired = %d", got)
	}
	// Traffic stops; within the grace period the last pod stays.
	for i := 0; i < 40; i++ {
		now += 2 * time.Second
		a.Observe(now, 0)
	}
	// Stable window is now all zeros; want 0 but grace keeps 1 briefly.
	first := a.Desired(now, 1, 0)
	if first != 1 {
		t.Fatalf("first zero decision = %d, want 1 (grace)", first)
	}
	now += cfg.ScaleToZeroWait + 2*time.Second
	a.Observe(now, 0)
	if got := a.Desired(now, 1, 0); got != 0 {
		t.Errorf("post-grace desired = %d, want 0", got)
	}
}

func TestAutoscalerMinScale(t *testing.T) {
	a := NewAutoscaler(DefaultAutoscalerConfig(), 1)
	if got := a.Desired(time.Minute, 3, 2); got != 2 {
		t.Errorf("desired = %d, want min scale 2", got)
	}
}

// --- Emulator ---

func steadyApp(name string, rate float64, execMS int, horizon time.Duration, conc int, minScale int) AppSpec {
	cfg := trace.DefaultConfig()
	cfg.Concurrency = conc
	cfg.MinScale = minScale
	cfg.MemoryGB = 0.5
	cfg.ColdStart = 800 * time.Millisecond
	var invs []trace.Invocation
	gap := time.Duration(float64(time.Second) / rate)
	for at := gap; at < horizon; at += gap {
		invs = append(invs, trace.Invocation{Arrival: at, Duration: time.Duration(execMS) * time.Millisecond})
	}
	return AppSpec{Name: name, Config: cfg, Invocations: invs}
}

func TestEmulatorServesAllRequests(t *testing.T) {
	horizon := 10 * time.Minute
	app := steadyApp("a", 2, 100, horizon, 100, 0)
	out := Run([]AppSpec{app}, EmulatorConfig{Autoscaler: DefaultAutoscalerConfig()}, horizon)
	if len(out) != 1 {
		t.Fatalf("results = %d", len(out))
	}
	if out[0].Sample.Invocations != len(app.Invocations) {
		t.Errorf("served %d of %d invocations", out[0].Sample.Invocations, len(app.Invocations))
	}
	if out[0].Sample.AllocatedGBSec <= 0 {
		t.Error("no allocation recorded")
	}
}

func TestEmulatorMinScaleEliminatesFirstColdStart(t *testing.T) {
	horizon := 5 * time.Minute
	cold := steadyApp("cold", 0.2, 100, horizon, 100, 0)
	warm := steadyApp("warm", 0.2, 100, horizon, 100, 1)
	out := Run([]AppSpec{cold, warm}, EmulatorConfig{Autoscaler: DefaultAutoscalerConfig(), CaptureDelays: true}, horizon)
	if out[0].Sample.ColdStarts == 0 {
		t.Error("zero-min-scale app should cold start")
	}
	if out[1].Sample.ColdStarts != 0 {
		t.Errorf("min-scale-1 app cold starts = %d, want 0", out[1].Sample.ColdStarts)
	}
}

func TestEmulatorColdStartDelayMatchesProvisioning(t *testing.T) {
	horizon := 3 * time.Minute
	app := steadyApp("a", 0.5, 50, horizon, 100, 0)
	out := Run([]AppSpec{app}, EmulatorConfig{Autoscaler: DefaultAutoscalerConfig(), CaptureDelays: true}, horizon)
	if len(out[0].PlatformDelays) == 0 {
		t.Fatal("no delays captured")
	}
	// First request arrives with no pods: its delay spans the scale-up
	// decision (next 2 s tick) plus the 0.8 s cold start.
	first := out[0].PlatformDelays[0]
	if first < 0.8 || first > 5 {
		t.Errorf("first delay = %v s, want ~0.8-3 s", first)
	}
	// Most subsequent requests are warm.
	warm := 0
	for _, d := range out[0].PlatformDelays[1:] {
		if d == 0 {
			warm++
		}
	}
	if frac := float64(warm) / float64(len(out[0].PlatformDelays)-1); frac < 0.8 {
		t.Errorf("warm fraction = %v, want most requests warm", frac)
	}
}

func TestEmulatorScalesToZeroWhenIdle(t *testing.T) {
	horizon := 30 * time.Minute
	// Traffic only in the first minute.
	cfg := trace.DefaultConfig()
	cfg.Concurrency = 100
	cfg.MemoryGB = 1
	app := AppSpec{Name: "burst", Config: cfg, Invocations: []trace.Invocation{
		{Arrival: 5 * time.Second, Duration: 100 * time.Millisecond},
		{Arrival: 10 * time.Second, Duration: 100 * time.Millisecond},
	}}
	out := Run([]AppSpec{app}, EmulatorConfig{Autoscaler: DefaultAutoscalerConfig()}, horizon)
	// Pod must be reaped after the stable window + grace, so allocation is
	// far below 30 minutes.
	if out[0].Sample.AllocatedGBSec > 5*60 {
		t.Errorf("allocated %v GB-s: pod never scaled to zero", out[0].Sample.AllocatedGBSec)
	}
}

func TestEmulatorCapacityCap(t *testing.T) {
	horizon := 4 * time.Minute
	// Demand needing ~4 pods with a 2-pod cluster cap.
	app := steadyApp("a", 8, 500, horizon, 1, 0)
	capped := Run([]AppSpec{app}, EmulatorConfig{Autoscaler: DefaultAutoscalerConfig(), MaxPods: 2}, horizon)
	free := Run([]AppSpec{app}, EmulatorConfig{Autoscaler: DefaultAutoscalerConfig()}, horizon)
	if capped[0].Sample.AllocatedGBSec >= free[0].Sample.AllocatedGBSec {
		t.Errorf("cap should reduce allocation: %v vs %v",
			capped[0].Sample.AllocatedGBSec, free[0].Sample.AllocatedGBSec)
	}
}

// --- FeMux integration ---

func trainTinyModel(t testing.TB) *femux.Model {
	t.Helper()
	cfg := femux.DefaultConfig(rum.Default())
	cfg.BlockSize = 30
	cfg.Window = 30
	cfg.K = 3
	cfg.Forecasters = []forecast.Forecaster{
		forecast.NewFFT(10),
		forecast.NewExpSmoothing(),
		forecast.NewMovingAverage(1),
	}
	rng := rand.New(rand.NewSource(8))
	apps := make([]femux.TrainApp, 6)
	for i := range apps {
		vals := make([]float64, 120)
		for t := range vals {
			if (t+i)%10 < 2 {
				vals[t] = 2 + rng.Float64()
			}
		}
		apps[i] = femux.TrainApp{
			Demand:   timeseries.New(time.Minute, vals),
			ExecSec:  0.1,
			MemoryGB: 0.2,
		}
	}
	m, err := femux.Train(apps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDirectProviderTargets(t *testing.T) {
	p := NewDirectProvider(trainTinyModel(t))
	var target int
	var ok bool
	for i := 0; i < 10; i++ {
		target, ok = p.Target("app-x", 3, 1)
	}
	if !ok {
		t.Fatal("provider declined")
	}
	if target < 0 {
		t.Errorf("target = %d", target)
	}
	if used := p.ForecastersUsed()["app-x"]; used < 1 {
		t.Errorf("forecasters used = %d", used)
	}
}

func TestEmulatorWithFeMuxProvider(t *testing.T) {
	horizon := 12 * time.Minute
	app := steadyApp("a", 1, 200, horizon, 100, 0)
	model := trainTinyModel(t)
	out := Run([]AppSpec{app}, EmulatorConfig{
		Autoscaler: DefaultAutoscalerConfig(),
		Provider:   NewDirectProvider(model),
	}, horizon)
	if out[0].Sample.Invocations != len(app.Invocations) {
		t.Errorf("served %d of %d", out[0].Sample.Invocations, len(app.Invocations))
	}
}

// --- HTTP service ---

func TestServiceObserveAndTarget(t *testing.T) {
	svc := NewService(trainTinyModel(t))
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Observe a few minutes of concurrency 2.
	var tr TargetResponse
	for i := 0; i < 5; i++ {
		resp, err := http.Post(srv.URL+"/v1/apps/demo/observe", "application/json",
			strings.NewReader(`{"concurrency": 2, "unitConcurrency": 1}`))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if tr.History != 5 {
		t.Errorf("history = %d, want 5", tr.History)
	}
	if tr.Target < 1 {
		t.Errorf("target = %d, want >= 1 for steady concurrency 2", tr.Target)
	}
	if tr.Forecaster == "" {
		t.Error("forecaster missing")
	}

	// GET target does not grow history.
	resp, err := http.Get(srv.URL + "/v1/apps/demo/target?concurrency=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tr.History != 5 {
		t.Errorf("GET target grew history to %d", tr.History)
	}

	// Forecast endpoint.
	resp, err = http.Get(srv.URL + "/v1/apps/demo/forecast?horizon=3")
	if err != nil {
		t.Fatal(err)
	}
	var fr ForecastResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(fr.Values) != 3 {
		t.Errorf("forecast len = %d", len(fr.Values))
	}
	if svc.Apps() != 1 {
		t.Errorf("apps = %d", svc.Apps())
	}
}

func TestServiceErrors(t *testing.T) {
	svc := NewService(trainTinyModel(t))
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	cases := []struct {
		method, path, body string
		wantStatus         int
	}{
		{"GET", "/v1/apps/x/observe", "", http.StatusMethodNotAllowed},
		{"POST", "/v1/apps/x/observe", "{bad json", http.StatusBadRequest},
		{"POST", "/v1/apps/x/observe", `{"concurrency": -1}`, http.StatusBadRequest},
		{"GET", "/v1/apps/x/unknown", "", http.StatusNotFound},
		{"GET", "/v1/apps//target", "", http.StatusNotFound},
		{"GET", "/v1/apps/x/target?concurrency=zero", "", http.StatusBadRequest},
		{"GET", "/v1/apps/x/forecast?horizon=100000", "", http.StatusBadRequest},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, srv.URL+c.path, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.wantStatus {
			t.Errorf("%s %s: status = %d, want %d", c.method, c.path, resp.StatusCode, c.wantStatus)
		}
	}
	// Health endpoint.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
}

func TestHTTPProviderEndToEnd(t *testing.T) {
	svc := NewService(trainTinyModel(t))
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	p := &HTTPProvider{BaseURL: srv.URL}
	tgt, ok := p.Target("web", 2.5, 1)
	if !ok {
		t.Fatal("provider declined")
	}
	if tgt < 0 {
		t.Errorf("target = %d", tgt)
	}
	// Unreachable server degrades gracefully.
	bad := &HTTPProvider{BaseURL: "http://127.0.0.1:1"}
	if _, ok := bad.Target("web", 1, 1); ok {
		t.Error("unreachable provider should decline")
	}
}

func TestEmulatorWithHTTPProvider(t *testing.T) {
	// Full Fig 13 path: emulation -> REST -> FeMux service -> target.
	svc := NewService(trainTinyModel(t))
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	horizon := 8 * time.Minute
	app := steadyApp("a", 1, 150, horizon, 100, 0)
	out := Run([]AppSpec{app}, EmulatorConfig{
		Autoscaler: DefaultAutoscalerConfig(),
		Provider:   &HTTPProvider{BaseURL: srv.URL},
	}, horizon)
	if out[0].Sample.Invocations != len(app.Invocations) {
		t.Errorf("served %d of %d", out[0].Sample.Invocations, len(app.Invocations))
	}
	if svc.Apps() != 1 {
		t.Errorf("service tracked %d apps", svc.Apps())
	}
}

func BenchmarkServiceObserveLatency(b *testing.B) {
	svc := NewService(trainTinyModel(b))
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	body := `{"concurrency": 2, "unitConcurrency": 1}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(srv.URL+"/v1/apps/bench/observe", "application/json",
			strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}

func TestEmulatorScaleEvents(t *testing.T) {
	horizon := 6 * time.Minute
	app := steadyApp("a", 1, 200, horizon, 1, 0)
	out := Run([]AppSpec{app}, EmulatorConfig{
		Autoscaler:         DefaultAutoscalerConfig(),
		CaptureScaleEvents: true,
	}, horizon)
	evs := out[0].ScaleEvents
	if len(evs) == 0 {
		t.Fatal("no scale events captured")
	}
	// First event must be a scale-up from zero; pod counts must be
	// consistent with the deltas.
	if evs[0].Delta <= 0 || evs[0].Pods != evs[0].Delta {
		t.Errorf("first event = %+v, want scale-up from zero", evs[0])
	}
	var sawDown bool
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("scale events out of order")
		}
		if evs[i].Delta < 0 {
			sawDown = true
		}
	}
	_ = sawDown // traffic is steady; scale-down may only occur at horizon
}
