package knative

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/ubc-cirrus-lab/femux-go/internal/store"
)

// newFleet stands up n Services sharing one model, each owning its hash
// partition, plus a ShardRouter in front. Returns the per-shard services
// and the router's test server.
func newFleet(t testing.TB, n int) ([]*Service, *httptest.Server) {
	t.Helper()
	model := trainTinyModel(t)
	svcs := make([]*Service, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		svcs[i] = NewServiceWith(model, ServiceOptions{ShardID: i, Shards: n})
		srv := httptest.NewServer(svcs[i].Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	rt, err := NewShardRouter(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return svcs, front
}

// TestShardFleetEquivalence is the routing property test: a sharded
// fleet behind the router must be observationally identical to a single
// unsharded instance — same per-app histories, same targets, and
// bit-identical forecasts — for fleets of 2 and 3 shards, under a mixed
// single/batch workload.
func TestShardFleetEquivalence(t *testing.T) {
	for _, shards := range []int{2, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			model := trainTinyModel(t)
			single := NewService(model)
			ctl := httptest.NewServer(single.Handler())
			defer ctl.Close()

			svcs, front := newFleet(t, shards)

			apps := make([]string, 12)
			for i := range apps {
				apps[i] = fmt.Sprintf("svc-%c", 'a'+i)
			}
			rng := rand.New(rand.NewSource(42))
			const minutes = 45
			for m := 0; m < minutes; m++ {
				if m%3 == 0 { // whole fleet in one batch through the router
					obs := make([]BatchObservation, len(apps))
					for i, app := range apps {
						obs[i] = BatchObservation{App: app, Concurrency: math.Round(rng.Float64()*500) / 100}
					}
					for _, url := range []string{ctl.URL, front.URL} {
						resp, out := postBatchJSON(t, url, marshalBatch(t, obs...))
						if resp.StatusCode != http.StatusOK || out.Rejected != 0 {
							t.Fatalf("minute %d via %s: status=%d rejected=%d", m, url, resp.StatusCode, out.Rejected)
						}
					}
					continue
				}
				for i, app := range apps {
					body := fmt.Sprintf(`{"concurrency": %g}`, float64((m*7+i*3)%9)+0.5)
					for _, url := range []string{ctl.URL, front.URL} {
						resp, err := http.Post(url+"/v1/apps/"+app+"/observe",
							"application/json", strings.NewReader(body))
						if err != nil {
							t.Fatal(err)
						}
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							t.Fatalf("minute %d app %s via %s: %d", m, app, url, resp.StatusCode)
						}
					}
				}
			}

			// Every app lives on exactly the shard ShardOf says, and the
			// union of shard-local app sets is the whole fleet.
			total := 0
			for _, svc := range svcs {
				total += svc.Apps()
			}
			if total != len(apps) {
				t.Errorf("fleet tracks %d apps total, want %d (no app may be split or duplicated)", total, len(apps))
			}

			for _, app := range apps {
				want, got := fetchDecision(t, ctl.URL, app), fetchDecision(t, front.URL, app)
				if want.target != got.target {
					t.Errorf("%s: target %+v (single) != %+v (routed fleet)", app, want.target, got.target)
				}
				if len(want.forecast.Values) != len(got.forecast.Values) {
					t.Fatalf("%s: forecast lengths differ", app)
				}
				for i := range want.forecast.Values {
					if math.Float64bits(want.forecast.Values[i]) != math.Float64bits(got.forecast.Values[i]) {
						t.Errorf("%s: forecast[%d] not bit-identical: %v != %v",
							app, i, want.forecast.Values[i], got.forecast.Values[i])
					}
				}
			}
		})
	}
}

// TestShardMisrouteRejected: an instance must refuse to build history
// for an app it does not own — a misconfigured client talking straight
// to the wrong shard gets 421, on both the single and the batch path.
func TestShardMisrouteRejected(t *testing.T) {
	svcs, _ := newFleet(t, 2)
	// Find an app owned by shard 1 and post it to shard 0 directly.
	foreign := ""
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("probe-%d", i)
		if store.ShardOf(name, 2) == 1 {
			foreign = name
			break
		}
	}
	if foreign == "" {
		t.Fatal("no shard-1 app found in 100 probes")
	}
	srv0 := httptest.NewServer(svcs[0].Handler())
	defer srv0.Close()

	resp, err := http.Post(srv0.URL+"/v1/apps/"+foreign+"/observe",
		"application/json", strings.NewReader(`{"concurrency": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Errorf("foreign observe = %d, want 421", resp.StatusCode)
	}

	respB, out := postBatchJSON(t, srv0.URL, marshalBatch(t,
		BatchObservation{App: foreign, Concurrency: 1}))
	if respB.StatusCode != http.StatusOK || out.Rejected != 1 {
		t.Errorf("foreign batch item: status=%d rejected=%d, want 200 with 1 rejection",
			respB.StatusCode, out.Rejected)
	}
	if out.Results[0].Error == "" || !strings.Contains(out.Results[0].Error, "shard") {
		t.Errorf("foreign batch item error = %q", out.Results[0].Error)
	}
	if svcs[0].Apps() != 0 {
		t.Errorf("misrouted traffic created app state: %d apps", svcs[0].Apps())
	}
}

// TestShardRouterBatchOrderPreserved: the router splits one batch across
// shards and must stitch the per-item results back into input order.
func TestShardRouterBatchOrderPreserved(t *testing.T) {
	_, front := newFleet(t, 3)
	obs := make([]BatchObservation, 30)
	for i := range obs {
		obs[i] = BatchObservation{App: fmt.Sprintf("ord-%d", i), Concurrency: float64(i)}
	}
	resp, out := postBatchJSON(t, front.URL, marshalBatch(t, obs...))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Accepted != len(obs) || out.Rejected != 0 {
		t.Fatalf("accepted=%d rejected=%d", out.Accepted, out.Rejected)
	}
	for i, res := range out.Results {
		if res.App != obs[i].App {
			t.Errorf("result %d: app %q, want %q", i, res.App, obs[i].App)
		}
		if res.Error != "" {
			t.Errorf("result %d: %s", i, res.Error)
		}
	}
}

// TestShardRouterBackendDown: a dead shard degrades, not destroys — its
// slice of a batch comes back as per-item errors while the live shard
// commits, per-app requests to it return 502, and /healthz goes red.
func TestShardRouterBackendDown(t *testing.T) {
	model := trainTinyModel(t)
	live := NewServiceWith(model, ServiceOptions{ShardID: 0, Shards: 2})
	liveSrv := httptest.NewServer(live.Handler())
	defer liveSrv.Close()
	deadSrv := httptest.NewServer(http.NotFoundHandler())
	deadURL := deadSrv.URL
	deadSrv.Close() // connection refused from here on

	rt, err := NewShardRouter([]string{liveSrv.URL, deadURL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz with dead shard = %d, want 503", resp.StatusCode)
	}

	// Assemble a batch with items for both shards.
	var obs []BatchObservation
	var liveApps, deadApps int
	for i := 0; liveApps == 0 || deadApps == 0 || len(obs) < 8; i++ {
		app := fmt.Sprintf("deg-%d", i)
		if store.ShardOf(app, 2) == 0 {
			liveApps++
		} else {
			deadApps++
		}
		obs = append(obs, BatchObservation{App: app, Concurrency: 1})
	}
	respB, out := postBatchJSON(t, front.URL, marshalBatch(t, obs...))
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("degraded batch status = %d", respB.StatusCode)
	}
	if out.Accepted != liveApps || out.Rejected != deadApps {
		t.Errorf("accepted=%d rejected=%d, want %d/%d", out.Accepted, out.Rejected, liveApps, deadApps)
	}
	for i, res := range out.Results {
		dead := store.ShardOf(obs[i].App, 2) == 1
		if dead && res.Error == "" {
			t.Errorf("item %d on dead shard has no error", i)
		}
		if !dead && res.Error != "" {
			t.Errorf("item %d on live shard failed: %s", i, res.Error)
		}
	}

	// Per-app request to an app owned by the dead shard: 502.
	var deadApp string
	for _, o := range obs {
		if store.ShardOf(o.App, 2) == 1 {
			deadApp = o.App
			break
		}
	}
	resp, err = http.Get(front.URL + "/v1/apps/" + deadApp + "/target")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("target via dead shard = %d, want 502", resp.StatusCode)
	}
}

// TestShardRouterReloadFanout: one reload at the router must hit every
// backend; any backend failing turns the fan-out into a 502 so the
// operator knows part of the fleet serves a stale model.
func TestShardRouterReloadFanout(t *testing.T) {
	var hits [2]atomic.Int64
	var fail atomic.Bool
	mk := func(i int) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/v1/admin/reload" || r.Method != http.MethodPost {
				http.NotFound(w, r)
				return
			}
			hits[i].Add(1)
			if i == 1 && fail.Load() {
				http.Error(w, "retrain failed", http.StatusInternalServerError)
				return
			}
			fmt.Fprintln(w, `{"reloads": 1}`)
		}))
	}
	b0, b1 := mk(0), mk(1)
	defer b0.Close()
	defer b1.Close()
	rt, err := NewShardRouter([]string{b0.URL, b1.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp, err := http.Post(front.URL+"/v1/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var results []struct {
		Shard  int    `json:"shard"`
		Status int    `json:"status"`
		Error  string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&results); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("fan-out reload = %d, want 200", resp.StatusCode)
	}
	if hits[0].Load() != 1 || hits[1].Load() != 1 {
		t.Errorf("reload hits = %d/%d, want 1/1", hits[0].Load(), hits[1].Load())
	}
	if len(results) != 2 {
		t.Errorf("results = %+v", results)
	}

	fail.Store(true)
	resp, err = http.Post(front.URL+"/v1/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("partial reload failure = %d, want 502", resp.StatusCode)
	}

	// GET is not a reload.
	resp, err = http.Get(front.URL + "/v1/admin/reload")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET reload = %d, want 405", resp.StatusCode)
	}
}
