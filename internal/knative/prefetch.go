package knative

import (
	"sync"

	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
)

// Restore-ahead: the forecast-driven analogue of pod pre-warming. A
// demoted app's first request after reactivation pays the restore
// (decode, policy rebuild, for cold apps a disk read) on the request
// path. But the service already holds a model whose whole job is to
// predict which apps fire next minute — so a background loop asks it,
// and promotes the predicted-to-fire demoted apps before their traffic
// arrives. Promotion is strictly best-effort and budgeted:
//
//   - at most budget apps promote per cycle. A promotion into a stripe
//     with free capacity evicts nothing; at steady state under churn the
//     stripes are always full, and there a promotion displaces only the
//     stripe's LRU-tail resident — and never one the current cycle
//     itself promoted, which (because guesses park at the tail) caps
//     displacement at one resident per stripe per cycle. The loop
//     cannot thrash the LRUs it feeds: consecutive cycles reclaim the
//     previous cycle's untouched guesses before any requested app;
//   - the scan reads windows through the store's non-promoting
//     RestoreWindows peek, so merely *considering* an app moves nothing
//     between tiers;
//   - promoted state is bit-identical to what a request-path restore
//     would build (same materializeAs path), so restore-ahead is
//     invisible to forecasts — it only moves latency off the request.
//
// Hits (a prefetched app touched by a real request before eviction) and
// wastes (evicted untouched) are counted so the hit rate is observable:
// femux_restore_ahead_{scans,promotions,hits,wastes}_total.

// DefaultRestoreAheadLevel is the forecast quantile a candidate must
// fire at for promotion: p95 catches bursty reactivators without
// promoting on speculative tail mass.
const DefaultRestoreAheadLevel = 0.95

// restoreAheadScanFactor bounds how many candidates one cycle evaluates
// per promotion slot; restoreAheadChunk bounds how many windows each
// store peek decodes under one lock hold.
const (
	restoreAheadScanFactor = 8
	restoreAheadChunk      = 64
)

// prefetchState is the restore-ahead loop's cursor: cycles rotate
// through the fleet roster instead of re-scanning the same (sorted)
// prefix, so every demoted app is eventually considered. One mutex also
// serializes cycles — overlapping scans would double-promote.
type prefetchState struct {
	mu     sync.Mutex
	cursor int
}

// restoreAheadBudget resolves the per-cycle promotion budget: an
// explicit positive budget wins; otherwise an eighth of the global hot
// budget (clamped to [1, 256]) keeps a full prefetch cycle from
// displacing more than a sliver of the hot tier, and unlimited hot
// budgets get a nominal 32 (promotion is pure win when nothing evicts).
func (s *Service) restoreAheadBudget(budget int) int {
	if budget > 0 {
		return budget
	}
	total := 0
	for _, t := range s.tier.stripes {
		if t.maxHot < 0 {
			return 32
		}
		total += t.maxHot
	}
	b := total / 8
	if b < 1 {
		b = 1
	}
	if b > 256 {
		b = 256
	}
	return b
}

// RestoreAheadCycle runs one prefetch pass: scan up to scanFactor×budget
// demoted apps (rotating through the roster across cycles), ask the
// live model for each one's next-interval forecast at the given quantile
// level, and promote the predicted-to-fire ones until the budget is
// spent. level <= 0 uses DefaultRestoreAheadLevel; budget <= 0 sizes
// itself from the hot budget. Returns how many candidates were
// evaluated and how many promoted. Safe to call at any time; a replica
// never prefetches (promoting would build serving state ahead of the
// gate, and the roster is still catching up).
func (s *Service) RestoreAheadCycle(level float64, budget int) (scanned, promoted int) {
	if s.IsReplica() {
		return 0, 0
	}
	if level <= 0 || level >= 1 {
		level = DefaultRestoreAheadLevel
	}
	budget = s.restoreAheadBudget(budget)

	s.prefetch.mu.Lock()
	defer s.prefetch.mu.Unlock()
	s.tier.prefetchEpoch.Add(1) // this cycle's guesses are displacement-immune

	names, cursor := s.prefetchCandidates(budget * restoreAheadScanFactor)
	if len(names) == 0 {
		return 0, 0
	}

	model, _ := s.modelAt()
	ws := forecast.GetWorkspace()
	defer forecast.PutWorkspace(ws)
	levels := [1]float64{level}
	var dst []float64

	evaluate := func(win []float64) bool {
		if len(win) == 0 {
			return false
		}
		// A fresh policy per candidate: forecaster multiplexing is stateful
		// per app, and the promoted app derives its own policy anyway —
		// this one only answers "does the p-level forecast fire".
		policy := model.NewAppPolicy(0)
		dst = policy.ForecastQuantilesWS(win, 1, levels[:], dst[:0], ws)
		return len(dst) > 0 && dst[0] > 0
	}

	if s.st != nil {
		for start := 0; start < len(names) && promoted < budget; start += restoreAheadChunk {
			chunk := names[start:min(start+restoreAheadChunk, len(names))]
			for _, rw := range s.st.RestoreWindows(chunk) {
				if promoted >= budget {
					break
				}
				scanned++
				s.tier.prefetchScans.Add(1)
				if !evaluate(rw.Window) {
					continue
				}
				if s.promoteAhead(rw.App) {
					promoted++
				}
			}
		}
	} else {
		for _, name := range names {
			if promoted >= budget {
				break
			}
			t := s.tier.stripe(name)
			t.mu.Lock()
			var win []float64
			if cw := t.warm[name]; cw != nil {
				win = cw.Values(nil)
			}
			t.mu.Unlock()
			if win == nil {
				continue // restored (or dropped) since the candidate scan
			}
			scanned++
			s.tier.prefetchScans.Add(1)
			if !evaluate(win) {
				continue
			}
			if s.promoteAhead(name) {
				promoted++
			}
		}
	}
	s.prefetch.cursor = cursor
	return scanned, promoted
}

// promoteAhead materializes one predicted-to-fire app and lists it in
// its stripe's LRUs as the *least* recently used hot entry: a guess must
// be first in line for eviction, behind every app a real request
// touched.
func (s *Service) promoteAhead(name string) bool {
	a := s.materializeAs(name, true)
	if a == nil {
		return false
	}
	a.mu.Lock()
	if !a.gone {
		s.touch(a)
		t := a.stripe
		t.mu.Lock()
		if a.hotEl != nil {
			t.hot.MoveToBack(a.hotEl)
		}
		if a.wsEl != nil {
			t.ws.MoveToBack(a.wsEl)
		}
		t.mu.Unlock()
	}
	a.mu.Unlock()
	s.tier.prefetchPromotions.Add(1)
	return true
}

// prefetchCandidates collects up to max demoted candidate names this
// instance owns, resuming from the rotation cursor, and returns the next
// cursor position. Store-backed instances rotate through the durable
// roster; store-less ones through the stripes' warm maps (which only
// hold demoted apps, so no ownership of materialized state is checked
// beyond the shard filter).
func (s *Service) prefetchCandidates(max int) ([]string, int) {
	var roster []string
	if s.st != nil {
		roster = s.st.AppNames() // sorted: a stable rotation order
	} else {
		for _, t := range s.tier.stripes {
			t.mu.Lock()
			for name := range t.warm {
				roster = append(roster, name)
			}
			t.mu.Unlock()
		}
	}
	if len(roster) == 0 {
		return nil, 0
	}
	cursor := s.prefetch.cursor % len(roster)
	names := make([]string, 0, min(max, len(roster)))
	examined := 0
	for ; examined < len(roster) && len(names) < max; examined++ {
		name := roster[(cursor+examined)%len(roster)]
		if msg, _, _ := s.rejectApp(name); msg != "" {
			continue // not ours (moved, foreign shard, or awaiting adoption)
		}
		if s.st != nil {
			// Skip apps that are already materialized, and stripes whose hot
			// budget is 0 — those can never hold a promotion. A merely *full*
			// stripe stays eligible: promotion displaces its LRU tail. (The
			// store-less roster is the warm maps, which exclude hot apps.)
			t := s.tier.stripe(name)
			t.mu.Lock()
			hot := t.apps[name] != nil
			dead := t.maxHot == 0
			t.mu.Unlock()
			if hot || dead {
				continue
			}
		}
		names = append(names, name)
	}
	return names, (cursor + examined) % len(roster)
}

// RestoreAheadStats reports lifetime prefetch counters: candidates
// evaluated, apps promoted, promoted apps later touched by a real
// request (hits), and promoted apps evicted untouched (wastes).
func (s *Service) RestoreAheadStats() (scans, promotions, hits, wastes int64) {
	return s.tier.prefetchScans.Load(),
		s.tier.prefetchPromotions.Load(),
		s.tier.prefetchHits.Load(),
		s.tier.prefetchWastes.Load()
}
