package knative

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/lifecycle"
)

// TestStressObserveDuringRetrainAndReload extends the reload stress to
// the full lifecycle: workers hammer observes on overlapping apps while
// one goroutine drives retrain cycles (each ending in a model promotion)
// and another hot-swaps models directly, with a watcher asserting that
// the observation and cycle counters never move backwards. At the end
// every successful observe must be accounted for exactly — retrains and
// promotions may never drop or double-count an observation — and the
// lifecycle counters must agree with the manager's own status.
func TestStressObserveDuringRetrainAndReload(t *testing.T) {
	svc, reg, srv := newInstrumentedServer(t)
	modelA, modelB := svc.Model(), trainTinyModel(t)

	mgr := lifecycle.New(svc, lifecycle.Config{
		DriftThreshold: 0,    // retrain every cycle
		MinImprove:     -100, // promote essentially always: maximizes swap pressure
		Seed:           11,
		Workers:        2,
	})
	lm := mgr.InstrumentWith(reg)

	const (
		workers = 8
		perW    = 60
		apps    = 4 // overlapping: every worker touches every app
	)
	client := &http.Client{Timeout: 10 * time.Second}
	observe := func(app string, v float64) bool {
		resp, err := client.Post(srv.URL+"/v1/apps/"+app+"/observe",
			"application/json", strings.NewReader(fmt.Sprintf(`{"concurrency": %g}`, v)))
		if err != nil {
			return false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	}

	// Seed enough history that every retrain cycle trains successfully.
	var observeOK atomic.Int64
	for a := 0; a < apps; a++ {
		for i := 0; i < 120; i++ {
			v := 0.0
			if (i+a)%8 < 2 {
				v = 3.5
			}
			if !observe(fmt.Sprintf("app-%d", a), v) {
				t.Fatal("seeding observe failed")
			}
			observeOK.Add(1)
		}
	}

	// Retrainer: back-to-back synchronous cycles for the whole storm.
	stopCycle := make(chan struct{})
	var cycleWG sync.WaitGroup
	cycleWG.Add(1)
	go func() {
		defer cycleWG.Done()
		for {
			select {
			case <-stopCycle:
				return
			default:
				if res := mgr.RunCycle(); res.Outcome == lifecycle.OutcomeFailed {
					t.Errorf("cycle failed under stress: %s", res.Error)
					return
				}
			}
		}
	}()

	// Reloader: direct swaps race with the retrainer's promotions.
	stopReload := make(chan struct{})
	var reloadWG sync.WaitGroup
	reloadWG.Add(1)
	go func() {
		defer reloadWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopReload:
				return
			case <-time.After(2 * time.Millisecond):
				if i%2 == 0 {
					svc.SwapModel(modelB)
				} else {
					svc.SwapModel(modelA)
				}
			}
		}
	}()

	// Monotonicity watcher: mid-flight scrapes of the observation and
	// lifecycle counters must never move backwards.
	stopWatch := make(chan struct{})
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	var monotonicViolations atomic.Int64
	go func() {
		defer watchWG.Done()
		var lastObs, lastCycles float64
		for {
			select {
			case <-stopWatch:
				return
			case <-time.After(time.Millisecond):
				resp, err := client.Get(srv.URL + "/metrics")
				if err != nil {
					continue
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				scrape := string(b)
				obs := sumMetric(scrape, "femux_observations_total")
				cycles := sumMetric(scrape, "femux_lifecycle_cycles_total")
				if obs < lastObs || cycles < lastCycles {
					monotonicViolations.Add(1)
				}
				lastObs, lastCycles = obs, cycles
			}
		}
	}()

	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				app := fmt.Sprintf("app-%d", (w+i)%apps)
				if observe(app, float64((w+i)%9)) {
					observeOK.Add(1)
				} else {
					failures.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopCycle)
	cycleWG.Wait()
	close(stopReload)
	reloadWG.Wait()
	close(stopWatch)
	watchWG.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d observes failed during lifecycle stress", n)
	}
	if n := monotonicViolations.Load(); n != 0 {
		t.Fatalf("counters moved backwards %d times", n)
	}
	status := mgr.Status()
	if status.Cycles == 0 || status.Promotions == 0 {
		t.Fatalf("stress window ran %d cycles, %d promotions; want both > 0",
			status.Cycles, status.Promotions)
	}
	if svc.Reloads() < status.Promotions {
		t.Fatalf("reloads %d < promotions %d", svc.Reloads(), status.Promotions)
	}

	// Final scrape: exact accounting — no observation dropped or torn
	// across retrains and reloads, and the lifecycle counters agree with
	// the manager's status.
	resp, err := client.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	scrape := string(b)
	if got := sumMetric(scrape, "femux_observations_total"); got != float64(observeOK.Load()) {
		t.Errorf("femux_observations_total = %v, want %d", got, observeOK.Load())
	}
	if got := sumMetric(scrape, "femux_lifecycle_cycles_total"); got != float64(status.Cycles) {
		t.Errorf("cycles counter = %v, status says %d", got, status.Cycles)
	}
	if got := lm.Promotions.Sum(); got != float64(status.Promotions) {
		t.Errorf("promotions counter = %v, status says %d", got, status.Promotions)
	}
	if got := sumMetricFiltered(scrape, "femux_lifecycle_skips_total", `reason="replica"`); got != 0 {
		t.Errorf("replica skips = %v on a non-replica service", got)
	}
	if svc.Apps() != apps {
		t.Errorf("apps tracked = %d, want %d", svc.Apps(), apps)
	}
}
