package knative

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/ubc-cirrus-lab/femux-go/internal/serving"
)

// newInstrumentedServer stands up the same stack femuxd serves in
// production: service handler behind instrument + body-limit middleware,
// with /metrics mounted on the same mux.
func newInstrumentedServer(t testing.TB) (*Service, *serving.Registry, *httptest.Server) {
	t.Helper()
	svc := NewService(trainTinyModel(t))
	reg := serving.NewRegistry()
	reg.RegisterGoMetrics()
	svc.InstrumentWith(reg)
	hm := serving.NewHTTPMetrics(reg)
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/", svc.Handler())
	srv := httptest.NewServer(hm.Instrument(mux))
	t.Cleanup(srv.Close)
	return svc, reg, srv
}

func doReq(t *testing.T, method, url, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp, readAll(t, resp)
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return b.String()
}

func TestE2EHappyPaths(t *testing.T) {
	svc, _, srv := newInstrumentedServer(t)

	// /healthz
	resp, body := doReq(t, "GET", srv.URL+"/healthz", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}

	// observe grows history and returns a decision.
	var tr TargetResponse
	for i := 1; i <= 4; i++ {
		resp, body = doReq(t, "POST", srv.URL+"/v1/apps/web/observe",
			`{"concurrency": 3, "unitConcurrency": 2}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("observe %d = %d %q", i, resp.StatusCode, body)
		}
		if err := json.Unmarshal([]byte(body), &tr); err != nil {
			t.Fatal(err)
		}
		if tr.History != i {
			t.Errorf("observe %d: history = %d", i, tr.History)
		}
	}
	if tr.App != "web" || tr.Forecaster == "" || tr.Target < 0 {
		t.Errorf("bad target response: %+v", tr)
	}

	// target is read-only.
	resp, body = doReq(t, "GET", srv.URL+"/v1/apps/web/target?concurrency=2", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("target = %d", resp.StatusCode)
	}
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.History != 4 {
		t.Errorf("target grew history to %d", tr.History)
	}

	// forecast returns exactly horizon values.
	resp, body = doReq(t, "GET", srv.URL+"/v1/apps/web/forecast?horizon=7", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forecast = %d", resp.StatusCode)
	}
	var fr ForecastResponse
	if err := json.Unmarshal([]byte(body), &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Values) != 7 || fr.Forecaster == "" {
		t.Errorf("forecast response: %+v", fr)
	}

	if svc.Apps() != 1 {
		t.Errorf("apps tracked = %d", svc.Apps())
	}
}

func TestE2EErrorPaths(t *testing.T) {
	_, _, srv := newInstrumentedServer(t)
	oversized := `{"concurrency": 1, "pad": "` + strings.Repeat("x", maxObserveBody+1) + `"}`
	cases := []struct {
		name, method, path, body string
		wantStatus               int
	}{
		{"wrong method observe", "GET", "/v1/apps/x/observe", "", http.StatusMethodNotAllowed},
		{"wrong method target", "POST", "/v1/apps/x/target", "{}", http.StatusMethodNotAllowed},
		{"wrong method forecast", "DELETE", "/v1/apps/x/forecast", "", http.StatusMethodNotAllowed},
		{"malformed json", "POST", "/v1/apps/x/observe", "{nope", http.StatusBadRequest},
		{"wrong body type", "POST", "/v1/apps/x/observe", `{"concurrency": "high"}`, http.StatusBadRequest},
		{"negative concurrency", "POST", "/v1/apps/x/observe", `{"concurrency": -4}`, http.StatusBadRequest},
		{"oversized payload", "POST", "/v1/apps/x/observe", oversized, http.StatusRequestEntityTooLarge},
		{"unknown action", "GET", "/v1/apps/x/selfdestruct", "", http.StatusNotFound},
		{"empty app name", "GET", "/v1/apps//target", "", http.StatusNotFound},
		{"missing action", "GET", "/v1/apps/x", "", http.StatusNotFound},
		{"bare prefix", "GET", "/v1/apps/", "", http.StatusNotFound},
		{"bad target concurrency", "GET", "/v1/apps/x/target?concurrency=-2", "", http.StatusBadRequest},
		{"non-numeric concurrency", "GET", "/v1/apps/x/target?concurrency=lots", "", http.StatusBadRequest},
		{"zero horizon", "GET", "/v1/apps/x/forecast?horizon=0", "", http.StatusBadRequest},
		{"huge horizon", "GET", "/v1/apps/x/forecast?horizon=99999", "", http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, _ := doReq(t, c.method, srv.URL+c.path, c.body)
		if resp.StatusCode != c.wantStatus {
			t.Errorf("%s: %s %s = %d, want %d", c.name, c.method, c.path, resp.StatusCode, c.wantStatus)
		}
	}
}

func TestE2EMetricsMatchTraffic(t *testing.T) {
	svc, _, srv := newInstrumentedServer(t)
	const observes, targets, forecasts = 7, 3, 2
	for i := 0; i < observes; i++ {
		resp, _ := doReq(t, "POST", srv.URL+"/v1/apps/m/observe", `{"concurrency": 1}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("observe = %d", resp.StatusCode)
		}
	}
	for i := 0; i < targets; i++ {
		doReq(t, "GET", srv.URL+"/v1/apps/m/target", "")
	}
	for i := 0; i < forecasts; i++ {
		doReq(t, "GET", srv.URL+"/v1/apps/m/forecast", "")
	}
	doReq(t, "POST", srv.URL+"/v1/apps/m/observe", "{bad") // 400: counted by HTTP, not by app metrics

	resp, body := doReq(t, "GET", srv.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	wants := []string{
		fmt.Sprintf(`femux_http_requests_total{endpoint="observe",method="POST",code="200"} %d`, observes),
		`femux_http_requests_total{endpoint="observe",method="POST",code="400"} 1`,
		fmt.Sprintf(`femux_http_requests_total{endpoint="target",method="GET",code="200"} %d`, targets),
		fmt.Sprintf(`femux_http_requests_total{endpoint="forecast",method="GET",code="200"} %d`, forecasts),
		fmt.Sprintf(`femux_observations_total{app="m"} %d`, observes),
		fmt.Sprintf(`femux_targets_total{app="m"} %d`, targets),
		fmt.Sprintf(`femux_forecasts_total{app="m"} %d`, forecasts),
		`femux_apps 1`,
		`femux_model_reloads_total 0`,
		fmt.Sprintf(`femux_model_info{default_forecaster="%s",clusters="%d"} 1`,
			svc.Model().DefaultForecaster().Name(), svc.Model().Diag.Clusters),
		fmt.Sprintf(`femux_http_request_duration_seconds_count{endpoint="observe"} %d`, observes+1),
		"go_goroutines",
	}
	for _, w := range wants {
		if !strings.Contains(body, w) {
			t.Errorf("metrics missing %q", w)
		}
	}
	if t.Failed() {
		t.Logf("scrape:\n%s", body)
	}
}

func TestE2EHotReloadKeepsHistory(t *testing.T) {
	svc, _, srv := newInstrumentedServer(t)
	for i := 0; i < 5; i++ {
		doReq(t, "POST", srv.URL+"/v1/apps/keep/observe", `{"concurrency": 2}`)
	}
	next := trainTinyModel(t)
	svc.SwapModel(next)
	if svc.Model() != next {
		t.Fatal("model not swapped")
	}
	if svc.Reloads() != 1 {
		t.Errorf("reloads = %d", svc.Reloads())
	}
	resp, body := doReq(t, "GET", srv.URL+"/v1/apps/keep/target", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("target after reload = %d", resp.StatusCode)
	}
	var tr TargetResponse
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.History != 5 {
		t.Errorf("history after reload = %d, want 5 (preserved)", tr.History)
	}
	_, body = doReq(t, "GET", srv.URL+"/metrics", "")
	if !strings.Contains(body, "femux_model_reloads_total 1") {
		t.Errorf("reload counter missing:\n%s", body)
	}
	if strings.Count(body, "femux_model_info{") != 1 {
		t.Errorf("stale model_info child left behind:\n%s", body)
	}
}
