// Package knative emulates the Knative Serving control loop FeMux
// integrates with (§5.2, Fig 13): a per-application Autoscaler with stable
// and panic windows ticking every two seconds, an Activator that buffers
// requests for under-scaled applications, queue-proxy concurrency metrics,
// pod lifecycles with cold starts, and a FeMux forecasting microservice
// reachable over a real net/http REST API. The emulation runs on a virtual
// clock, so a 24-hour experiment completes in seconds while the REST path
// still measures real request latencies.
package knative

import (
	"math"
	"time"
)

// AutoscalerConfig mirrors the Knative KPA defaults relevant to the paper.
type AutoscalerConfig struct {
	TickInterval    time.Duration // scaling decision period (2 s)
	StableWindow    time.Duration // averaging window (60 s -> the "1-min KA" behaviour)
	PanicWindow     time.Duration // short window for burst detection (6 s)
	PanicThreshold  float64       // panic when panic-window demand / capacity exceeds this (2.0)
	ScaleToZeroWait time.Duration // grace period before removing the last pod (30 s)
}

// DefaultAutoscalerConfig returns Knative's stock settings.
func DefaultAutoscalerConfig() AutoscalerConfig {
	return AutoscalerConfig{
		TickInterval:    2 * time.Second,
		StableWindow:    time.Minute,
		PanicWindow:     6 * time.Second,
		PanicThreshold:  2.0,
		ScaleToZeroWait: 30 * time.Second,
	}
}

// Autoscaler is one application's reactive scaler: it ingests concurrency
// observations (one per tick, as the queue-proxy reports every 2 s) and
// produces a desired pod count.
type Autoscaler struct {
	cfg   AutoscalerConfig
	unitC int

	obs        []obsPoint // ring of recent observations
	panicUntil time.Duration
	panicPods  int
	zeroSince  time.Duration // when desired first hit zero; -1 when active
}

type obsPoint struct {
	at   time.Duration
	conc float64
}

// NewAutoscaler returns an autoscaler for an app with the given container
// concurrency limit.
func NewAutoscaler(cfg AutoscalerConfig, unitConcurrency int) *Autoscaler {
	if unitConcurrency < 1 {
		unitConcurrency = 1
	}
	return &Autoscaler{cfg: cfg, unitC: unitConcurrency, zeroSince: -1}
}

// Observe records the average concurrency measured over the last tick
// (including requests queued at the activator, which is what drives
// Knative's scale-from-zero).
func (a *Autoscaler) Observe(now time.Duration, concurrency float64) {
	a.obs = append(a.obs, obsPoint{at: now, conc: concurrency})
	// Trim beyond the stable window.
	cut := now - a.cfg.StableWindow
	i := 0
	for i < len(a.obs) && a.obs[i].at <= cut {
		i++
	}
	if i > 0 {
		a.obs = append(a.obs[:0], a.obs[i:]...)
	}
}

func (a *Autoscaler) windowAvg(now, window time.Duration) float64 {
	cut := now - window
	var sum float64
	var n int
	for _, o := range a.obs {
		if o.at > cut {
			sum += o.conc
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Desired computes the pod count for the next tick, given the current pod
// count, applying Knative's stable/panic logic and scale-to-zero grace.
func (a *Autoscaler) Desired(now time.Duration, current, minScale int) int {
	stable := a.windowAvg(now, a.cfg.StableWindow)
	panicAvg := a.windowAvg(now, a.cfg.PanicWindow)

	want := podsFor(stable, a.unitC)

	// Panic mode: the short window sees demand at or beyond the threshold
	// times current capacity.
	capacity := float64(current * a.unitC)
	if capacity > 0 && panicAvg/capacity >= a.cfg.PanicThreshold {
		a.panicUntil = now + a.cfg.StableWindow
		if p := podsFor(panicAvg, a.unitC); p > a.panicPods {
			a.panicPods = p
		}
	} else if current == 0 && panicAvg > 0 {
		// Scale from zero reacts on the panic window too.
		if p := podsFor(panicAvg, a.unitC); p > want {
			want = p
		}
	}
	if now < a.panicUntil {
		// During panic Knative never scales down.
		if a.panicPods > want {
			want = a.panicPods
		}
	} else {
		a.panicPods = 0
	}

	if want < minScale {
		want = minScale
	}
	// Scale-to-zero grace: hold the last pod for ScaleToZeroWait.
	if want == 0 && current > 0 {
		if a.zeroSince < 0 {
			a.zeroSince = now
		}
		if now-a.zeroSince < a.cfg.ScaleToZeroWait {
			return 1
		}
		return 0
	}
	a.zeroSince = -1
	return want
}

func podsFor(concurrency float64, unitC int) int {
	if concurrency <= 0 {
		return 0
	}
	return int(math.Ceil(concurrency / float64(unitC)))
}
