package knative

import (
	"sync"

	"github.com/ubc-cirrus-lab/femux-go/internal/femux"
	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
)

// ScaleProvider is the hook through which FeMux overrides the default
// reactive autoscaler (Fig 13): once per minute the emulation reports the
// completed minute's average concurrency and receives the pod target to
// hold until the next report. ok=false falls back to the reactive logic.
type ScaleProvider interface {
	Target(app string, minuteAvg float64, unitConcurrency int) (target int, ok bool)
}

// DirectProvider hosts FeMux AppPolicy instances in-process — the
// configuration used for fast emulation runs. It is safe for concurrent
// use.
type DirectProvider struct {
	model *femux.Model

	// QuantileLevel, when positive, provisions every decision for that
	// forecast quantile of demand instead of the point forecast (the
	// emulator's -quantile-level knob). Set before first use.
	QuantileLevel float64

	mu   sync.Mutex
	apps map[string]*directApp
}

type directApp struct {
	mu      sync.Mutex
	policy  *femux.AppPolicy
	history []float64
	ws      *forecast.Workspace
}

// NewDirectProvider returns a provider backed by a trained model.
func NewDirectProvider(model *femux.Model) *DirectProvider {
	return &DirectProvider{model: model, apps: map[string]*directApp{}}
}

// Target implements ScaleProvider. Per-app state (history append and the
// workspace-backed forecast) is guarded by the app's own lock, so apps
// proceed concurrently while each app's decisions stay serialized.
func (p *DirectProvider) Target(app string, minuteAvg float64, unitConcurrency int) (int, bool) {
	p.mu.Lock()
	st, ok := p.apps[app]
	if !ok {
		st = &directApp{policy: p.model.NewAppPolicy(0), ws: forecast.NewWorkspace()}
		p.apps[app] = st
	}
	p.mu.Unlock()

	st.mu.Lock()
	st.history = append(st.history, minuteAvg)
	target := st.policy.TargetQuantilesWS(st.history, unitConcurrency, p.QuantileLevel, st.ws)
	st.mu.Unlock()
	return target, true
}

// ForecastersUsed reports the distinct forecaster count per app, for
// diagnostics.
func (p *DirectProvider) ForecastersUsed() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int, len(p.apps))
	for name, st := range p.apps {
		out[name] = st.policy.ForecastersUsed()
	}
	return out
}
