package knative

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/femux"
	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
	"github.com/ubc-cirrus-lab/femux-go/internal/lifecycle"
	"github.com/ubc-cirrus-lab/femux-go/internal/serving"
	"github.com/ubc-cirrus-lab/femux-go/internal/store"
)

// Service is the FeMux forecasting microservice (Fig 13): a REST API that
// receives per-interval average concurrency from the metrics collector and
// returns predictive scaling targets that override the default Autoscaler.
// Each application is served by a dedicated AppPolicy (the "thread in the
// FeMux pod"); the paper measures 7 ms mean / 25 ms p99 forecasting latency
// and ~1,200 applications per 1-vCPU pod at one forecast per app-minute.
//
// Endpoints:
//
//	POST /v1/apps/{app}/observe   {"concurrency": 1.5}
//	    append one completed interval's average concurrency; responds with
//	    the scale target for the next interval.
//	GET  /v1/apps/{app}/target?concurrency=100
//	    recompute the target without recording a new observation.
//	GET  /v1/apps/{app}/forecast?horizon=5&quantiles=0.5,0.9,0.95
//	    raw concurrency forecast from the app's current forecaster,
//	    optionally with one curve per requested quantile level.
//	GET  /healthz
type Service struct {
	mu    sync.RWMutex
	model *femux.Model
	// qlevel, when positive, makes every scale decision provision for
	// that forecast quantile of demand instead of the point forecast
	// (the -quantile-level knob; immutable after construction).
	qlevel  float64
	reloads int
	// swapMu serializes whole model swaps (pointer flip + per-app policy
	// refresh); without it two racing swaps could interleave their
	// refresh sweeps and leave apps on the losing model.
	swapMu sync.Mutex

	// st, when set, persists every acknowledged observation through the
	// WAL-backed store before it is applied in memory, and seeds per-app
	// history on construction (zero-state-loss restart).
	st *store.Store
	// shardID/shards make this instance own only its hash partition of
	// apps; requests for foreign apps are rejected with 421 so a
	// misconfigured client cannot split one app's history across
	// instances.
	shardID, shards int
	restored        int

	// replica gates the serving path: a follower replicating a primary's
	// WAL answers 503 (retryable) until it is promoted, so clients can
	// never split writes between a live primary and its standby.
	replica bool
	// epoch versions the fleet's ownership configuration; SetShards
	// rejects stale epochs so a lagging resharding coordinator cannot
	// roll ownership backwards.
	epoch int
	// moved marks apps handed off to another shard this epoch: requests
	// are answered 421 with an X-Femux-Owner redirect. adopted marks apps
	// imported from another shard this epoch, accepted even though the
	// old shard map says they are foreign. Both reset on an epoch bump.
	moved   map[string]int
	adopted map[string]bool
	// joining marks a shard added by an in-progress reshard: it owns its
	// hash partition under the NEW map but must not accept an app until
	// that app's history has been imported (adopted) — a write landing
	// before the import would be silently replaced by it. Un-adopted own
	// apps are redirected to their old-map owner; cleared by the epoch
	// bump that completes the reshard.
	joining bool
	// promotions counts replica->primary transitions (metrics).
	promotions int

	// drainMu fences migration against in-flight writes: every observe
	// path holds the read lock across its ownership check and store
	// append, and DrainApp takes the write lock to flip the moved marker
	// — after DrainApp returns, no further write can land on the app, so
	// the export that follows sees its final history.
	drainMu sync.RWMutex

	// tier bounds how much of the fleet is materialized and owns the app
	// map, striped across -tier-shards shared-nothing stripes (see
	// tier.go): each stripe's slice of the map is a cache of the hot
	// tier, not the fleet roster.
	tier tiers

	// prefetch is the restore-ahead loop's rotation cursor (see
	// prefetch.go).
	prefetch prefetchState

	// driftBlock is the drift detector's block geometry, fixed at boot
	// from the initial model's BlockSize so detector state stays
	// comparable across model hot-swaps (the lifecycle retrains with the
	// live geometry, so promotions never change it).
	driftBlock int

	metrics *ServiceMetrics // nil when metrics are not wired
}

// ServiceOptions configure the durable, shard-aware deployment mode.
type ServiceOptions struct {
	// Store persists observations and restores per-app windows on boot.
	Store *store.Store
	// ShardID/Shards enable hash-partition ownership (Shards <= 1 means
	// unsharded). The partition function is store.ShardOf.
	ShardID, Shards int
	// Replica starts the service gated: the API answers 503 until
	// Promote. Used with -replica-of, where a Replicator tails the
	// primary's WAL into Store.
	Replica bool
	// Epoch is the initial ownership epoch (normally 0).
	Epoch int
	// Joining starts the instance as a reshard-joining shard: it serves
	// only adopted (migrated-in) apps and redirects the rest of its
	// partition to the old Shards-1-sized map's owner until the reshard's
	// epoch bump completes the cutover.
	Joining bool
	// MaxHotApps bounds how many apps keep materialized serving state
	// (history + policy); the LRU excess is demoted to the warm tier.
	// 0 means unlimited (every touched app stays hot).
	MaxHotApps int
	// MaxWorkspaces bounds how many hot apps hold a forecast workspace
	// (FFT plans and solver scratch — the largest per-app allocation);
	// the LRU excess returns workspaces to the shared pool. 0 means
	// unlimited.
	MaxWorkspaces int
	// TierShards splits the tier layer (app map, LRUs, warm map,
	// budgets) into this many shared-nothing stripes so touches and
	// evictions on different apps stop contending on one mutex. 0 means
	// one stripe per logical CPU; 1 reproduces the unstriped layer.
	TierShards int
	// QuantileLevel, when positive (e.g. 0.95), converts forecasts to
	// pod targets at that demand quantile instead of the point forecast
	// — SLO-aware provisioning. 0 keeps the point × headroom default.
	QuantileLevel float64
}

type svcApp struct {
	mu      sync.Mutex
	name    string
	policy  *femux.AppPolicy
	history []float64
	// ws holds the app's forecast scratch state; targets and forecasts are
	// computed under mu so the workspace is never used concurrently. After
	// the first request warms it, the observe->target computation performs
	// zero heap allocations (see zeroalloc_test.go). May be nil when the
	// workspace LRU reclaimed it; touch re-acquires from the pool.
	ws *forecast.Workspace

	// drift tracks the app's feature drift, fed under mu on every observe
	// (allocation-free) and rebuilt from the restored window after a tier
	// round trip — bit-identical to the incrementally maintained state
	// (see tierequiv_test.go).
	drift lifecycle.Detector

	// Tier state (see tier.go). stripe is the tier stripe that owns this
	// app, fixed at materialization. hotEl/wsEl are this app's positions
	// in the stripe's LRU lists (nil when not listed), guarded by
	// stripe.mu; gone marks an evicted entry that acquire must not use,
	// pins holds off eviction while a batch that already committed
	// observations for this app has yet to apply them in memory, and
	// prefetched marks an app the restore-ahead loop promoted that no
	// real request has touched yet (gone/pins/prefetched guarded by mu).
	stripe      *tierStripe
	hotEl, wsEl *lruElem
	gone        bool
	pins        int
	prefetched  bool
	// prefetchEpoch is the restore-ahead cycle that promoted this app
	// (0 for request-path installs), written before the app is published
	// and read under stripe.mu: displacement skips victims carrying the
	// current cycle's epoch so a cycle never evicts its own guesses.
	prefetchEpoch int64
}

// maxObserveBody bounds the observe POST body; real observations are a
// few dozen bytes, so anything near the cap is a client bug or abuse.
const maxObserveBody = 1 << 20

// maxAppLabels caps per-app metric cardinality (see InstrumentWith);
// 10k distinct apps is already past what a dashboard can render, and
// past it the per-child memory would scale with fleet size.
const maxAppLabels = 10000

// NewService returns a Service backed by a trained model.
func NewService(model *femux.Model) *Service {
	return NewServiceWith(model, ServiceOptions{})
}

// NewServiceWith returns a Service with durability and sharding wired
// in. When opts.Store holds restored state, apps stay in the warm tier
// (compact windows inside the store) until first touched — boot cost and
// RSS scale with the store's compacted state, not with a materialized
// window+policy+workspace per app — and the first request for an app
// restores it lazily, forecasting from the same history an uninterrupted
// process would hold.
func NewServiceWith(model *femux.Model, opts ServiceOptions) *Service {
	s := &Service{
		model: model,
		st:    opts.Store, shardID: opts.ShardID, shards: opts.Shards,
		replica: opts.Replica, epoch: opts.Epoch, joining: opts.Joining,
		qlevel: opts.QuantileLevel,
		moved:  map[string]int{}, adopted: map[string]bool{},
		driftBlock: model.Config().BlockSize,
	}
	s.tier.stripes = newStripes(opts.MaxHotApps, opts.MaxWorkspaces, opts.TierShards)
	if s.st != nil {
		s.restored = s.st.Apps()
	}
	return s
}

// Restored reports how many apps were seeded from the durable store.
func (s *Service) Restored() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.restored
}

// Model returns the model currently serving requests.
func (s *Service) Model() *femux.Model {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.model
}

// Reloads reports how many times the model has been hot-swapped.
func (s *Service) Reloads() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.reloads
}

// modelAt returns the serving model together with its reload version,
// so a caller that derived state from the model can detect a concurrent
// swap afterwards (see materializeAs).
func (s *Service) modelAt() (*femux.Model, int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.model, s.reloads
}

// SwapModel atomically replaces the serving model (the paper retrains
// monthly offline and ships the classifier into the forecasting pods).
// Each tracked application gets a fresh policy from the new model while
// keeping its observation history, so forecasting continuity survives the
// swap. Requests already holding the old policy finish against the old
// model — nothing in flight is dropped or torn. The refresh sweep walks
// the stripes without a global lock; an app materializing concurrently
// either is seen by the sweep or detects the version bump itself and
// re-derives (materializeAs), so no app can keep the old model.
func (s *Service) SwapModel(m *femux.Model) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	s.mu.Lock()
	s.model = m
	s.reloads++
	sm := s.metrics
	s.mu.Unlock()
	for _, t := range s.tier.stripes {
		t.mu.Lock()
		apps := make([]*svcApp, 0, len(t.apps))
		for _, a := range t.apps {
			apps = append(apps, a)
		}
		t.mu.Unlock()
		// Policies are refreshed under each app's lock, never under the
		// stripe lock — eviction locks app.mu before stripe.mu, so the
		// reverse order here would deadlock.
		for _, a := range apps {
			a.mu.Lock()
			if !a.gone {
				a.policy = m.NewAppPolicy(0)
			}
			a.mu.Unlock()
		}
	}
	if sm != nil {
		sm.Reloads.Inc()
		sm.setModelInfo(m)
	}
}

// ServiceMetrics are the FeMux-semantic metric families exported next to
// the generic HTTP metrics: per-app observation/decision counters and
// model metadata.
type ServiceMetrics struct {
	Observes    *serving.Counter // femux_observations_total{app}
	Targets     *serving.Counter // femux_targets_total{app}
	Forecasts   *serving.Counter // femux_forecasts_total{app}
	Reloads     *serving.Counter // femux_model_reloads_total
	ModelInfo   *serving.Gauge   // femux_model_info{default_forecaster,clusters}
	BatchReqs   *serving.Counter // femux_batch_requests_total
	Misrouted   *serving.Counter // femux_shard_misrouted_total
	StoreErrors *serving.Counter // femux_store_errors_total
	Adoptions   *serving.Counter // femux_shard_adoptions_total
	Handoffs    *serving.Counter // femux_shard_handoffs_total

	Evictions      *serving.Counter   // femux_tier_evictions_total
	Restores       *serving.Counter   // femux_tier_restores_total{from}
	RestoreSeconds *serving.Histogram // femux_tier_restore_seconds{from}
}

func (sm *ServiceMetrics) setModelInfo(m *femux.Model) {
	sm.ModelInfo.Reset()
	sm.ModelInfo.Set(1, m.DefaultForecaster().Name(), strconv.Itoa(m.Diag.Clusters))
}

// InstrumentWith registers the service's metric families on reg and
// starts recording. Call once, before serving traffic.
func (s *Service) InstrumentWith(reg *serving.Registry) *ServiceMetrics {
	sm := &ServiceMetrics{
		// Per-app counter families are capped: beyond maxAppLabels apps
		// the excess folds into one {app="_other"} child. Sums — which is
		// what the conservation checks scrape — stay exact; only per-app
		// attribution beyond the cap is lost. Without the cap a
		// million-app fleet holds metric state per app ever seen, undoing
		// the tiered bound on serving memory.
		Observes: reg.NewCounter("femux_observations_total",
			"Concurrency observations ingested, per application.", "app").
			LimitCardinality(maxAppLabels),
		Targets: reg.NewCounter("femux_targets_total",
			"Scale-target decisions served, per application.", "app").
			LimitCardinality(maxAppLabels),
		Forecasts: reg.NewCounter("femux_forecasts_total",
			"Raw forecasts served, per application.", "app").
			LimitCardinality(maxAppLabels),
		Reloads: reg.NewCounter("femux_model_reloads_total",
			"Model hot-swaps since process start."),
		ModelInfo: reg.NewGauge("femux_model_info",
			"Constant 1, labeled with the serving model's metadata.",
			"default_forecaster", "clusters"),
		BatchReqs: reg.NewCounter("femux_batch_requests_total",
			"Batched observe requests accepted (each covers many observations)."),
		Misrouted: reg.NewCounter("femux_shard_misrouted_total",
			"Requests rejected because the app belongs to another shard."),
		StoreErrors: reg.NewCounter("femux_store_errors_total",
			"Observations rejected because the durable store failed to append."),
		Adoptions: reg.NewCounter("femux_shard_adoptions_total",
			"Apps imported from another shard during resharding."),
		Handoffs: reg.NewCounter("femux_shard_handoffs_total",
			"Apps dropped after migrating to another shard."),
		Evictions: reg.NewCounter("femux_tier_evictions_total",
			"Hot apps demoted to the warm tier by the LRU budget."),
		Restores: reg.NewCounter("femux_tier_restores_total",
			"Apps rematerialized on first touch, by source tier.", "from"),
		RestoreSeconds: reg.NewHistogram("femux_tier_restore_seconds",
			"Latency of rematerializing a warm or cold app.",
			serving.DefaultLatencyBuckets, "from"),
	}
	reg.NewGaugeFunc("femux_replica",
		"1 while this instance is an unpromoted replica, else 0.",
		func() float64 {
			if s.IsReplica() {
				return 1
			}
			return 0
		})
	reg.NewGaugeFunc("femux_shard_epoch",
		"Current ownership epoch of this instance.",
		func() float64 { return float64(s.Epoch()) })
	reg.NewGaugeFunc("femux_promotions",
		"Replica-to-primary promotions since process start.",
		func() float64 { return float64(s.Promotions()) })
	reg.NewGaugeFunc("femux_apps",
		"Applications currently tracked by the service.",
		func() float64 { return float64(s.Apps()) })
	reg.NewGaugeFunc("femux_apps_hot",
		"Apps with materialized serving state (hot tier).",
		func() float64 { h, _, _ := s.TierCounts(); return float64(h) })
	reg.NewGaugeFunc("femux_apps_warm",
		"Apps held only as compact windows in memory (warm tier).",
		func() float64 { _, wm, _ := s.TierCounts(); return float64(wm) })
	reg.NewGaugeFunc("femux_apps_cold",
		"Apps paged to disk with an in-memory stub (cold tier).",
		func() float64 { _, _, c := s.TierCounts(); return float64(c) })
	reg.NewGaugeFunc("femux_tier_shards",
		"Shared-nothing stripes the tier layer is split into (-tier-shards).",
		func() float64 { return float64(s.Stripes()) })
	reg.NewCounterFunc("femux_tier_count_anomalies_total",
		"Tier gauge samples whose store-backed warm count was internally inconsistent.",
		func() float64 { return float64(s.TierCountAnomalies()) })
	reg.NewCounterFunc("femux_restore_ahead_scans_total",
		"Demoted apps whose next-interval forecast the restore-ahead loop evaluated.",
		func() float64 { return float64(s.tier.prefetchScans.Load()) })
	reg.NewCounterFunc("femux_restore_ahead_promotions_total",
		"Apps the restore-ahead loop promoted to the hot tier off the request path.",
		func() float64 { return float64(s.tier.prefetchPromotions.Load()) })
	reg.NewCounterFunc("femux_restore_ahead_hits_total",
		"Prefetched apps a real request touched before eviction (restore latency hidden).",
		func() float64 { return float64(s.tier.prefetchHits.Load()) })
	reg.NewCounterFunc("femux_restore_ahead_wastes_total",
		"Prefetched apps evicted before any real request arrived.",
		func() float64 { return float64(s.tier.prefetchWastes.Load()) })
	reg.NewGaugeFunc("femux_drift_score",
		"Largest per-app feature-drift score across hot apps.",
		s.MaxDriftScore)
	sm.setModelInfo(s.Model())
	s.mu.Lock()
	s.metrics = sm
	s.mu.Unlock()
	return sm
}

// ObserveRequest is the POST body for observations.
type ObserveRequest struct {
	Concurrency float64 `json:"concurrency"`
	// UnitConcurrency is the app's container concurrency limit (default 1).
	UnitConcurrency int `json:"unitConcurrency,omitempty"`
}

// TargetResponse reports a scaling decision.
type TargetResponse struct {
	App        string `json:"app"`
	Target     int    `json:"target"`
	Forecaster string `json:"forecaster"`
	History    int    `json:"historyLen"`
}

// ForecastResponse reports a raw forecast, plus one curve per requested
// quantile level when the request carried ?quantiles=.
type ForecastResponse struct {
	App        string         `json:"app"`
	Forecaster string         `json:"forecaster"`
	Values     []float64      `json:"values"`
	Quantiles  []QuantileBand `json:"quantiles,omitempty"`
}

// QuantileBand is one quantile curve of a forecast: at each step, demand
// is predicted to stay at or below Values[t] with probability Level.
type QuantileBand struct {
	Level  float64   `json:"level"`
	Values []float64 `json:"values"`
}

func (s *Service) svcMetrics() *ServiceMetrics {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.metrics
}

func (s *Service) app(name string) *svcApp {
	t := s.tier.stripe(name)
	t.mu.Lock()
	a := t.apps[name]
	t.mu.Unlock()
	if a != nil {
		return a
	}
	return s.materializeAs(name, false)
}

// materializeAs builds hot serving state for an app missing from its
// stripe's map: a genuinely new app starts empty, a demoted one is
// restored from the warm/cold tier. Store-backed restore runs before
// taking the stripe lock (it may page in from disk); if another
// goroutine installs the app first, its copy wins and ours — identical,
// since store restores promote — is discarded.
//
// prefetched marks a restore-ahead promotion, which is best-effort where
// a request-path materialize is mandatory: it returns nil (installs
// nothing) when the app has no demoted state to restore. Promotion into
// a stripe that is at its hot budget displaces the LRU-tail resident —
// at steady state under churn every stripe is always full, so a
// promotion that required free capacity would never fire — but the
// displacement is tightly bounded: a victim promoted by the *current*
// prefetch cycle is never displaced (guesses park at the tail, so this
// caps displacement at one resident per stripe per cycle), and a
// pinned or just-touched victim wins its race exactly as in normal
// eviction.
func (s *Service) materializeAs(name string, prefetched bool) *svcApp {
	start := time.Now()
	t := s.tier.stripe(name)
	var epoch int64
	if prefetched {
		epoch = s.tier.prefetchEpoch.Load()
		t.mu.Lock()
		exists := t.apps[name] != nil
		blocked := false
		if t.maxHot >= 0 && t.hot.Len() >= t.maxHot {
			back := t.hot.Back()
			// A budget-0 stripe (no tail to displace) or a tail this cycle
			// itself promoted: nothing legitimate to displace.
			blocked = back == nil || back.Value.prefetchEpoch == epoch
		}
		t.mu.Unlock()
		if exists || blocked {
			return nil
		}
	}
	model, version := s.modelAt()
	var history []float64
	var from string
	if s.st != nil {
		history, from = s.restoreHistory(name)
		if prefetched && from == "" {
			return nil
		}
	}
	a := &svcApp{
		name: name, stripe: t, policy: model.NewAppPolicy(0),
		prefetched: prefetched, prefetchEpoch: epoch,
	}
	if s.st != nil {
		a.history = history
		a.drift = lifecycle.DetectorOf(history, s.driftBlock)
	}
	t.mu.Lock()
	for {
		if cur := t.apps[name]; cur != nil {
			t.mu.Unlock()
			return cur
		}
		if !prefetched || t.maxHot < 0 || t.hot.Len() < t.maxHot {
			break // capacity available (or a mandatory request-path install)
		}
		// Displace the LRU tail to make room — unless only this cycle's
		// own guesses are left there. All of this happens before any state
		// moves (before consuming a warm entry), so aborting is free.
		back := t.hot.Back()
		if back == nil || back.Value.prefetchEpoch == epoch {
			t.mu.Unlock()
			return nil
		}
		v := back.Value
		t.mu.Unlock()
		if !s.evict(v, false, true) {
			// The tail was pinned or re-touched mid-displacement: real
			// traffic wins, the guess is dropped.
			return nil
		}
		t.mu.Lock()
	}
	if s.st == nil {
		// The store-less warm lookup consumes its entry, so it must be
		// atomic with the install: two racing misses must not leave one
		// holding the window and the other installing an empty app.
		if cw := t.warm[name]; cw != nil {
			a.history, from = cw.Values(nil), "warm"
			delete(t.warm, name)
		}
		if prefetched && from == "" {
			t.mu.Unlock()
			return nil
		}
		a.drift = lifecycle.DetectorOf(a.history, s.driftBlock)
	}
	a.ws = forecast.GetWorkspace()
	t.apps[name] = a
	t.mu.Unlock()
	if m2, v2 := s.modelAt(); v2 != version {
		// A model swap raced this install: its refresh sweep may have
		// walked the stripe before a appeared, which would leave a on the
		// old model forever. Re-derive from the current model — the same
		// policy the sweep would have installed.
		a.mu.Lock()
		a.policy = m2.NewAppPolicy(0)
		a.mu.Unlock()
	}
	s.noteRestore(from, time.Since(start))
	return a
}

// rejectApp decides whether a request for name may be served here. A
// non-empty msg means reject with the given status; owner is the shard
// the client should retry against (meaningful for 421).
func (s *Service) rejectApp(name string) (msg string, status, owner int) {
	s.mu.RLock()
	movedTo, isMoved := s.moved[name]
	adopted := s.adopted[name]
	shards, shardID, epoch := s.shards, s.shardID, s.epoch
	joining := s.joining
	s.mu.RUnlock()
	if isMoved {
		return fmt.Sprintf("app %q migrated to shard %d (epoch %d)", name, movedTo, epoch),
			http.StatusMisdirectedRequest, movedTo
	}
	if shards <= 1 || adopted {
		return "", 0, 0
	}
	own := store.ShardOf(name, shards)
	if own != shardID {
		return fmt.Sprintf("app %q belongs to shard %d, this instance is shard %d of %d",
			name, own, shardID, shards), http.StatusMisdirectedRequest, own
	}
	if joining {
		// Ours under the new map, but its history has not been migrated
		// here yet: accepting the write now would be overwritten by the
		// import. Send the client back to the old-map owner.
		oldOwner := 0
		if shards-1 > 1 {
			oldOwner = store.ShardOf(name, shards-1)
		}
		return fmt.Sprintf("app %q awaits migration to this joining shard (old owner %d)", name, oldOwner),
			http.StatusMisdirectedRequest, oldOwner
	}
	return "", 0, 0
}

// misrouted enforces shard ownership: when sharding is on and the app
// hashes to a different instance — or the app was migrated away this
// epoch — the request is answered with 421 (Misdirected Request) and an
// X-Femux-Owner header naming the owning shard, so clients and routers
// learn the correct owner instead of silently splitting one app's
// history across the fleet.
func (s *Service) misrouted(w http.ResponseWriter, name string) bool {
	msg, status, owner := s.rejectApp(name)
	if msg == "" {
		return false
	}
	if sm := s.svcMetrics(); sm != nil {
		sm.Misrouted.Inc()
	}
	w.Header().Set("X-Femux-Owner", strconv.Itoa(owner))
	w.Header().Set("X-Femux-Epoch", strconv.Itoa(s.Epoch()))
	http.Error(w, msg, status)
	return true
}

// replicaGated answers 503 (retryable, unlike a 421 misroute) while the
// service is an unpromoted replica: a standby must never serve or accept
// state the primary does not have.
func (s *Service) replicaGated(w http.ResponseWriter) bool {
	s.mu.RLock()
	replica := s.replica
	s.mu.RUnlock()
	if !replica {
		return false
	}
	w.Header().Set("Retry-After", "1")
	http.Error(w, "replica: awaiting promotion", http.StatusServiceUnavailable)
	return true
}

// Handler returns the service's HTTP handler.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/apps/", s.appsHandler)
	mux.HandleFunc("/v1/observe/batch", s.batchHandler)
	s.mountReplication(mux)
	return mux
}

func (s *Service) appsHandler(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/apps/")
	parts := strings.Split(rest, "/")
	if len(parts) != 2 || parts[0] == "" {
		http.Error(w, "expected /v1/apps/{app}/{observe|target|forecast}", http.StatusNotFound)
		return
	}
	name, action := parts[0], parts[1]
	if s.replicaGated(w) {
		return
	}
	// The drain fence: ownership is checked and the observation made
	// durable under the same read lock, so a concurrent DrainApp either
	// happens before the check (this request 421s) or after the append
	// (the export sees the observation).
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.misrouted(w, name) {
		return
	}
	switch action {
	case "observe":
		if r.Method != http.MethodPost {
			http.Error(w, "observe requires POST", http.StatusMethodNotAllowed)
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, maxObserveBody)
		var req ObserveRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				http.Error(w, fmt.Sprintf("body exceeds %d bytes", tooBig.Limit),
					http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, "bad body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if req.Concurrency < 0 {
			http.Error(w, "concurrency must be non-negative", http.StatusBadRequest)
			return
		}
		unitC := req.UnitConcurrency
		if unitC < 1 {
			unitC = 1
		}
		a := s.acquire(name)
		// Write-ahead: the observation is durable before it is applied in
		// memory or acknowledged, so an ACKed observation survives
		// SIGKILL. The app lock is held across both steps to keep WAL
		// order and in-memory order identical per app.
		if s.st != nil {
			if err := s.st.Append(name, req.Concurrency); err != nil {
				s.releaseApp(a)
				if sm := s.svcMetrics(); sm != nil {
					sm.StoreErrors.Inc()
				}
				http.Error(w, "durable store append failed: "+err.Error(),
					http.StatusInternalServerError)
				return
			}
		}
		a.history = append(a.history, req.Concurrency)
		a.drift.Observe(req.Concurrency)
		// The scale decision happens under the app lock: the per-app
		// workspace is single-threaded by construction, and concurrent
		// observes for one app serialize exactly as the WAL order does.
		target := a.policy.TargetQuantilesWS(a.history, unitC, s.qlevel, a.ws)
		fcName := a.policy.CurrentForecaster()
		histLen := len(a.history)
		s.releaseApp(a)
		if sm := s.svcMetrics(); sm != nil {
			sm.Observes.Inc(name)
		}
		writeJSON(w, TargetResponse{
			App: name, Target: target,
			Forecaster: fcName, History: histLen,
		})
	case "target":
		if r.Method != http.MethodGet {
			http.Error(w, "target requires GET", http.StatusMethodNotAllowed)
			return
		}
		unitC := 1
		if v := r.URL.Query().Get("concurrency"); v != "" {
			if _, err := fmt.Sscanf(v, "%d", &unitC); err != nil || unitC < 1 {
				http.Error(w, "bad concurrency", http.StatusBadRequest)
				return
			}
		}
		a := s.acquire(name)
		target := a.policy.TargetQuantilesWS(a.history, unitC, s.qlevel, a.ws)
		fcName := a.policy.CurrentForecaster()
		histLen := len(a.history)
		s.releaseApp(a)
		if sm := s.svcMetrics(); sm != nil {
			sm.Targets.Inc(name)
		}
		writeJSON(w, TargetResponse{
			App: name, Target: target,
			Forecaster: fcName, History: histLen,
		})
	case "forecast":
		if r.Method != http.MethodGet {
			http.Error(w, "forecast requires GET", http.StatusMethodNotAllowed)
			return
		}
		horizon := 1
		if v := r.URL.Query().Get("horizon"); v != "" {
			if _, err := fmt.Sscanf(v, "%d", &horizon); err != nil || horizon < 1 || horizon > 1440 {
				http.Error(w, "bad horizon", http.StatusBadRequest)
				return
			}
		}
		levels, ok := parseQuantileLevels(r.URL.Query().Get("quantiles"))
		if !ok {
			http.Error(w, "bad quantiles", http.StatusBadRequest)
			return
		}
		a := s.acquire(name)
		// dst is nil: the response slices escape into the JSON encoder
		// after the lock is released, so they must not alias the
		// workspace.
		values := a.policy.ForecastWS(a.history, horizon, nil, a.ws)
		var bands []QuantileBand
		if len(levels) > 0 {
			flat := a.policy.ForecastQuantilesWS(a.history, horizon, levels, nil, a.ws)
			bands = make([]QuantileBand, len(levels))
			for q, lv := range levels {
				bands[q] = QuantileBand{
					Level:  lv,
					Values: flat[q*horizon : (q+1)*horizon : (q+1)*horizon],
				}
			}
		}
		fcName := a.policy.CurrentForecaster()
		s.releaseApp(a)
		if sm := s.svcMetrics(); sm != nil {
			sm.Forecasts.Inc(name)
		}
		writeJSON(w, ForecastResponse{
			App: name, Forecaster: fcName,
			Values: values, Quantiles: bands,
		})
	default:
		http.Error(w, "unknown action "+action, http.StatusNotFound)
	}
}

// parseQuantileLevels parses the ?quantiles= query parameter: a
// comma-separated list of probability levels, each strictly inside
// (0, 1). Returns ok=false on malformed input; an absent parameter is
// simply no levels. The count is capped so a request cannot inflate the
// response arbitrarily.
func parseQuantileLevels(raw string) ([]float64, bool) {
	if raw == "" {
		return nil, true
	}
	parts := strings.Split(raw, ",")
	if len(parts) > 16 {
		return nil, false
	}
	levels := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || !(v > 0 && v < 1) {
			return nil, false
		}
		levels = append(levels, v)
	}
	return levels, true
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already sent; nothing more to do.
		return
	}
}

// Apps returns the number of applications the service currently tracks
// across every tier: the durable fleet size when store-backed, otherwise
// materialized entries plus evicted warm windows, summed over stripes.
func (s *Service) Apps() int {
	if s.st != nil {
		return s.st.Apps()
	}
	n := 0
	for _, t := range s.tier.stripes {
		t.mu.Lock()
		n += len(t.apps) + len(t.warm)
		t.mu.Unlock()
	}
	return n
}

// appCount reports how many apps are materialized across stripes.
func (s *Service) appCount() int {
	n := 0
	for _, t := range s.tier.stripes {
		t.mu.Lock()
		n += len(t.apps)
		t.mu.Unlock()
	}
	return n
}

// HTTPProvider adapts a running FeMux service to the emulator's
// ScaleProvider interface, exercising the real REST path end-to-end.
type HTTPProvider struct {
	BaseURL string
	Client  *http.Client
}

// Target implements ScaleProvider.
func (p *HTTPProvider) Target(app string, minuteAvg float64, unitConcurrency int) (int, bool) {
	body, err := json.Marshal(ObserveRequest{Concurrency: minuteAvg, UnitConcurrency: unitConcurrency})
	if err != nil {
		return 0, false
	}
	client := p.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Post(p.BaseURL+"/v1/apps/"+app+"/observe", "application/json",
		strings.NewReader(string(body)))
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, false
	}
	var tr TargetResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return 0, false
	}
	return tr.Target, true
}
