package knative

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/store"
)

// The knative-layer failover and resharding suite: the store-level
// fault-injection tests (internal/store) prove the replication protocol
// byte by byte; these tests prove the HTTP plumbing on top of it — a
// Replicator tailing a live primary over the wire, router-driven
// promotion, and a 2 -> 3 reshard under live traffic — all against the
// same bit-identical-forecast yardstick.

func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{Sync: store.SyncNever, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func postObserve(t *testing.T, baseURL, app string, conc float64) int {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/apps/"+app+"/observe", "application/json",
		strings.NewReader(fmt.Sprintf(`{"concurrency": %g}`, conc)))
	if err != nil {
		t.Fatalf("observe %s: %v", app, err)
	}
	defer resp.Body.Close()
	return resp.StatusCode
}

func mustObserve(t *testing.T, baseURL, app string, conc float64) {
	t.Helper()
	if code := postObserve(t, baseURL, app, conc); code != http.StatusOK {
		t.Fatalf("observe %s via %s: HTTP %d", app, baseURL, code)
	}
}

// observeWithRetry keeps retrying one observation until the fleet
// accepts it — the client-side behavior femux-load -retry implements —
// and fails the test if it never lands within the deadline.
func observeWithRetry(t *testing.T, baseURL, app string, conc float64, deadline time.Duration) {
	t.Helper()
	limit := time.Now().Add(deadline)
	for {
		if code := postObserve(t, baseURL, app, conc); code == http.StatusOK {
			return
		}
		if time.Now().After(limit) {
			t.Fatalf("observe %s: not accepted within %s", app, deadline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func getStatus(t *testing.T, baseURL string) ReplStatus {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/replication/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ReplStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitCaughtUp(t *testing.T, r *Replicator, primary, follower *store.Store, deadline time.Duration) {
	t.Helper()
	limit := time.Now().Add(deadline)
	for {
		up, _ := r.CaughtUp()
		if up && follower.TotalObservations() == primary.TotalObservations() {
			return
		}
		if time.Now().After(limit) {
			up, lastErr := r.CaughtUp()
			t.Fatalf("follower not caught up within %s: caughtUp=%v lastErr=%v follower=%d primary=%d",
				deadline, up, lastErr, follower.TotalObservations(), primary.TotalObservations())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// assertDecisionsIdentical compares every app's target and forecast
// between two serving endpoints, bit for bit.
func assertDecisionsIdentical(t *testing.T, apps []string, wantURL, gotURL string) {
	t.Helper()
	for _, app := range apps {
		want, got := fetchDecision(t, wantURL, app), fetchDecision(t, gotURL, app)
		if want.target.Target != got.target.Target || want.target.History != got.target.History {
			t.Errorf("%s: target %+v != %+v", app, want.target, got.target)
		}
		if want.forecast.Forecaster != got.forecast.Forecaster {
			t.Errorf("%s: forecaster %s != %s", app, want.forecast.Forecaster, got.forecast.Forecaster)
		}
		if len(want.forecast.Values) != len(got.forecast.Values) {
			t.Fatalf("%s: forecast lengths %d != %d", app, len(want.forecast.Values), len(got.forecast.Values))
		}
		for i := range want.forecast.Values {
			if math.Float64bits(want.forecast.Values[i]) != math.Float64bits(got.forecast.Values[i]) {
				t.Errorf("%s: forecast[%d] %v != %v (not bit-identical)",
					app, i, want.forecast.Values[i], got.forecast.Values[i])
			}
		}
	}
}

// TestReplicaFailoverE2E is the wire-level failover test: a follower
// femuxd tails a live primary over HTTP (including a snapshot bootstrap
// across a compaction gap), stays 503-gated the whole time, and after
// the primary dies and the follower is promoted it serves bit-identical
// forecasts to an unkilled control — then accepts new writes as the
// primary.
func TestReplicaFailoverE2E(t *testing.T) {
	model := trainTinyModel(t)
	apps := []string{"alpha", "beta", "gamma", "delta"}

	pst := openTestStore(t, t.TempDir())
	psvc := NewServiceWith(model, ServiceOptions{Store: pst})
	psrv := httptest.NewServer(psvc.Handler())
	defer psrv.Close()

	ctl := httptest.NewServer(NewService(model).Handler())
	defer ctl.Close()

	feed := func(url string, round int) {
		for i, app := range apps {
			mustObserve(t, url, app, float64(round*len(apps)+i)*0.375+0.25)
		}
	}

	// Phase 1: history the replicator will have to bootstrap — appended
	// and then compacted away before the follower ever connects.
	for r := 0; r < 10; r++ {
		feed(psrv.URL, r)
		feed(ctl.URL, r)
	}
	if err := pst.Compact(); err != nil {
		t.Fatal(err)
	}
	for r := 10; r < 13; r++ {
		feed(psrv.URL, r)
		feed(ctl.URL, r)
	}

	fst := openTestStore(t, t.TempDir())
	fsvc := NewServiceWith(model, ServiceOptions{Store: fst, Replica: true})
	fsrv := httptest.NewServer(fsvc.Handler())
	defer fsrv.Close()

	repl := NewReplicator(fst, psrv.URL, nil)
	repl.Interval = 2 * time.Millisecond
	replStopped := false
	defer func() {
		if !replStopped {
			repl.Stop()
		}
	}()
	repl.Start()
	waitCaughtUp(t, repl, pst, fst, 10*time.Second)

	// The gate: an unpromoted replica serves nothing and accepts nothing.
	if code := postObserve(t, fsrv.URL, "alpha", 1.0); code != http.StatusServiceUnavailable {
		t.Fatalf("replica accepted an observe with HTTP %d, want 503", code)
	}
	resp, out := postBatchJSON(t, fsrv.URL, marshalBatch(t, BatchObservation{App: "alpha", Concurrency: 1}))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("replica accepted a batch with HTTP %d (%+v), want 503", resp.StatusCode, out)
	}

	// More live traffic while the follower tails.
	for r := 13; r < 18; r++ {
		feed(psrv.URL, r)
		feed(ctl.URL, r)
	}
	waitCaughtUp(t, repl, pst, fst, 10*time.Second)

	pstat, fstat := getStatus(t, psrv.URL), getStatus(t, fsrv.URL)
	if pstat.Replica || !fstat.Replica {
		t.Fatalf("status roles wrong: primary.Replica=%v follower.Replica=%v", pstat.Replica, fstat.Replica)
	}
	if fstat.Cursor == nil {
		t.Fatal("follower status has no replication cursor")
	}
	if pstat.Total != fstat.Total {
		t.Fatalf("status totals diverge: primary=%d follower=%d", pstat.Total, fstat.Total)
	}

	// Kill the primary; promote the follower (the femuxd glue stops the
	// replicator first — mirrored here).
	psrv.Close()
	repl.Stop()
	replStopped = true
	for i := 0; i < 2; i++ { // promote is idempotent
		resp, err := http.Post(fsrv.URL+"/v1/admin/promote", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("promote attempt %d: HTTP %d", i, resp.StatusCode)
		}
	}
	if fsvc.Promotions() != 1 {
		t.Fatalf("promotions = %d, want 1 (second promote must be a no-op)", fsvc.Promotions())
	}

	// The promoted follower must forecast exactly as the never-killed
	// control does, and accept new writes.
	assertDecisionsIdentical(t, apps, ctl.URL, fsrv.URL)
	for r := 18; r < 21; r++ {
		feed(fsrv.URL, r)
		feed(ctl.URL, r)
	}
	mustObserve(t, fsrv.URL, "epsilon", 2.5)
	mustObserve(t, ctl.URL, "epsilon", 2.5)
	assertDecisionsIdentical(t, append(apps, "epsilon"), ctl.URL, fsrv.URL)
}

// TestRouterFailoverPromotesReplica drives the full HA loop: traffic
// flows through the router to a primary|replica shard group, the primary
// dies mid-run, the health loop detects it and promotes the replica, and
// traffic resumes against it — with every acknowledged observation
// intact and forecasts bit-identical to an unkilled control.
func TestRouterFailoverPromotesReplica(t *testing.T) {
	model := trainTinyModel(t)
	apps := []string{"svc-a", "svc-b", "svc-c"}

	pst := openTestStore(t, t.TempDir())
	psvc := NewServiceWith(model, ServiceOptions{Store: pst})
	psrv := httptest.NewServer(psvc.Handler())
	defer psrv.Close()

	rst := openTestStore(t, t.TempDir())
	rsvc := NewServiceWith(model, ServiceOptions{Store: rst, Replica: true})
	rsrv := httptest.NewServer(rsvc.Handler())
	defer rsrv.Close()

	ctl := httptest.NewServer(NewService(model).Handler())
	defer ctl.Close()

	repl := NewReplicator(rst, psrv.URL, nil)
	repl.Interval = 2 * time.Millisecond
	repl.Start()
	defer repl.Stop()

	rt, err := NewShardRouter([]string{psrv.URL + "|" + rsrv.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	stopHealth := rt.StartHealthLoop(5*time.Millisecond, 2)
	defer stopHealth()

	acked := 0
	for r := 0; r < 10; r++ {
		for i, app := range apps {
			v := float64(r*len(apps)+i)*0.5 + 0.125
			mustObserve(t, front.URL, app, v)
			mustObserve(t, ctl.URL, app, v)
			acked++
		}
	}
	waitCaughtUp(t, repl, pst, rst, 10*time.Second)

	// Primary dies. The health loop must notice and promote the replica;
	// the client just retries until the fleet answers again.
	psrv.Close()
	for r := 10; r < 16; r++ {
		for i, app := range apps {
			v := float64(r*len(apps)+i)*0.5 + 0.125
			observeWithRetry(t, front.URL, app, v, 10*time.Second)
			mustObserve(t, ctl.URL, app, v)
			acked++
		}
	}
	if rsvc.Promotions() != 1 {
		t.Fatalf("replica promotions = %d, want 1", rsvc.Promotions())
	}
	if got := rst.TotalObservations(); got != int64(acked) {
		t.Fatalf("promoted replica holds %d durable observations, want every acked = %d", got, acked)
	}
	assertDecisionsIdentical(t, apps, ctl.URL, front.URL)
}

// reshardFleet stands up a 2-shard fleet with durable stores plus a
// joining shard configured as shard 2 of 3, and a router in front.
func reshardFleet(t *testing.T) (svcs []*Service, stores []*store.Store, rt *ShardRouter, front *httptest.Server, joinURL string) {
	t.Helper()
	model := trainTinyModel(t)
	urls := make([]string, 2)
	for i := 0; i < 2; i++ {
		st := openTestStore(t, t.TempDir())
		svc := NewServiceWith(model, ServiceOptions{Store: st, ShardID: i, Shards: 2})
		srv := httptest.NewServer(svc.Handler())
		t.Cleanup(srv.Close)
		svcs, stores, urls[i] = append(svcs, svc), append(stores, st), srv.URL
	}
	jst := openTestStore(t, t.TempDir())
	jsvc := NewServiceWith(model, ServiceOptions{Store: jst, ShardID: 2, Shards: 3, Joining: true})
	jsrv := httptest.NewServer(jsvc.Handler())
	t.Cleanup(jsrv.Close)
	svcs, stores = append(svcs, jsvc), append(stores, jst)

	var err error
	rt, err = NewShardRouter(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	front = httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return svcs, stores, rt, front, jsrv.URL
}

func reshardApps(t *testing.T, n int) (apps []string, movers map[string]bool) {
	t.Helper()
	movers = map[string]bool{}
	for i := 0; i < n; i++ {
		app := fmt.Sprintf("rs-app-%d", i)
		apps = append(apps, app)
		if store.ShardOf(app, 3) == 2 {
			movers[app] = true
		}
	}
	if len(movers) == 0 || len(movers) == len(apps) {
		t.Fatalf("degenerate reshard fixture: %d/%d apps move — pick different names", len(movers), len(apps))
	}
	return apps, movers
}

// TestReshardGrowsFleetUnderLoad grows a 2-shard fleet to 3 while a
// client keeps writing through the router: the reshard migrates exactly
// the rendezvous movers to the joining shard, bumps the epoch
// fleet-wide, and not one acknowledged observation is lost — the durable
// fleet total matches the acked count and forecasts stay bit-identical
// to an unresharded control.
func TestReshardGrowsFleetUnderLoad(t *testing.T) {
	svcs, stores, rt, front, joinURL := reshardFleet(t)
	model := trainTinyModel(t)
	ctl := httptest.NewServer(NewService(model).Handler())
	defer ctl.Close()
	apps, movers := reshardApps(t, 16)

	acked := 0
	feedRound := func(r int, retry bool) {
		for i, app := range apps {
			v := float64(r*len(apps)+i)*0.25 + 0.5
			if retry {
				observeWithRetry(t, front.URL, app, v, 10*time.Second)
			} else {
				mustObserve(t, front.URL, app, v)
			}
			mustObserve(t, ctl.URL, app, v)
			acked++
		}
	}
	for r := 0; r < 8; r++ {
		feedRound(r, false)
	}

	// Reshard concurrently with live writes.
	done := make(chan struct{})
	var report *ReshardReport
	var reshardErr error
	go func() {
		defer close(done)
		report, reshardErr = rt.Reshard(joinURL)
	}()
	for r := 8; r < 16; r++ {
		feedRound(r, true)
	}
	<-done
	if reshardErr != nil {
		t.Fatalf("reshard: %v", reshardErr)
	}
	for r := 16; r < 20; r++ {
		feedRound(r, true)
	}

	if report.Shards != 3 || rt.Shards() != 3 {
		t.Fatalf("fleet size after reshard: report=%d router=%d, want 3", report.Shards, rt.Shards())
	}
	if report.Moved != len(movers) {
		t.Errorf("reshard moved %d apps, want exactly the %d rendezvous movers", report.Moved, len(movers))
	}
	for i, svc := range svcs {
		if got := svc.Epoch(); got != report.Epoch {
			t.Errorf("shard %d epoch = %d, want %d", i, got, report.Epoch)
		}
	}

	// Zero lost observations: the durable fleet total equals the acked
	// count, with every mover exactly once on the joining shard.
	var fleetTotal int64
	for _, st := range stores {
		fleetTotal += st.TotalObservations()
	}
	if fleetTotal != int64(acked) {
		t.Fatalf("durable fleet total %d != acked %d", fleetTotal, acked)
	}
	for _, app := range apps {
		onJoin := stores[2].Window(app) != nil
		onOld := stores[0].Window(app) != nil || stores[1].Window(app) != nil
		if movers[app] && (!onJoin || onOld) {
			t.Errorf("mover %q: on joining shard=%v, still on old shard=%v", app, onJoin, onOld)
		}
		if !movers[app] && onJoin {
			t.Errorf("non-mover %q has state on the joining shard", app)
		}
	}
	assertDecisionsIdentical(t, apps, ctl.URL, front.URL)
}

// TestReshardInterruptedResumes crashes the coordinator mid-migration —
// one mover imported but not handed off, another drained but never
// exported — and proves a re-run completes the reshard exactly-once:
// totals conserved, each mover on precisely its new owner, forecasts
// bit-identical to a control that never resharded.
func TestReshardInterruptedResumes(t *testing.T) {
	svcs, stores, rt, front, joinURL := reshardFleet(t)
	model := trainTinyModel(t)
	ctl := httptest.NewServer(NewService(model).Handler())
	defer ctl.Close()
	apps, movers := reshardApps(t, 16)

	acked := 0
	for r := 0; r < 8; r++ {
		for i, app := range apps {
			v := float64(r*len(apps)+i)*0.25 + 0.5
			mustObserve(t, front.URL, app, v)
			mustObserve(t, ctl.URL, app, v)
			acked++
		}
	}

	// Simulate a coordinator crash: manually run the migration protocol
	// partway on two movers, then abandon.
	var moverList []string
	for _, app := range apps {
		if movers[app] {
			moverList = append(moverList, app)
		}
	}
	if len(moverList) < 2 {
		t.Fatalf("fixture needs >= 2 movers, got %d", len(moverList))
	}
	halfMoved, drainedOnly := moverList[0], moverList[1]
	for _, app := range []string{halfMoved, drainedOnly} {
		oldOwner := store.ShardOf(app, 2)
		svcs[oldOwner].DrainApp(app, 2)
	}
	oldOwner := store.ShardOf(halfMoved, 2)
	win, total, ok := stores[oldOwner].ExportApp(halfMoved)
	if !ok {
		t.Fatalf("mover %q has no state on its old owner", halfMoved)
	}
	if err := svcs[2].AdoptApp(halfMoved, win, total); err != nil {
		t.Fatal(err)
	}
	// Crash here: halfMoved exists on BOTH shards, drainedOnly is fenced
	// on its old owner. Writes to both now bounce with 421 until the
	// re-run finishes — observeWithRetry rides across it.

	report, err := rt.Reshard(joinURL)
	if err != nil {
		t.Fatalf("reshard re-run after interruption: %v", err)
	}
	if report.Moved != len(movers) {
		t.Errorf("re-run migrated %d apps, want all %d movers (idempotent replace)", report.Moved, len(movers))
	}

	for r := 8; r < 12; r++ {
		for i, app := range apps {
			v := float64(r*len(apps)+i)*0.25 + 0.5
			observeWithRetry(t, front.URL, app, v, 10*time.Second)
			mustObserve(t, ctl.URL, app, v)
			acked++
		}
	}

	var fleetTotal int64
	for _, st := range stores {
		fleetTotal += st.TotalObservations()
	}
	if fleetTotal != int64(acked) {
		t.Fatalf("durable fleet total %d != acked %d (interruption lost or duplicated history)", fleetTotal, acked)
	}
	for _, app := range moverList {
		if stores[2].Window(app) == nil {
			t.Errorf("mover %q missing from joining shard after re-run", app)
		}
		if stores[0].Window(app) != nil || stores[1].Window(app) != nil {
			t.Errorf("mover %q still has state on an old shard after re-run", app)
		}
	}
	assertDecisionsIdentical(t, apps, ctl.URL, front.URL)
}

// TestBatchItemDegradation pins satellite behavior: a dead shard
// degrades that slice of a routed batch to per-item 503s (retryable,
// the healthy shard still commits), while a misrouted app posted
// directly to the wrong instance gets a per-item 421 naming its owner.
func TestBatchItemDegradation(t *testing.T) {
	model := trainTinyModel(t)
	svcs := make([]*Service, 2)
	urls := make([]string, 2)
	srvs := make([]*httptest.Server, 2)
	for i := range svcs {
		svcs[i] = NewServiceWith(model, ServiceOptions{ShardID: i, Shards: 2})
		srvs[i] = httptest.NewServer(svcs[i].Handler())
		defer srvs[i].Close()
		urls[i] = srvs[i].URL
	}
	rt, err := NewShardRouter(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// One app per shard.
	var app0, app1 string
	for i := 0; app0 == "" || app1 == ""; i++ {
		name := fmt.Sprintf("deg-%d", i)
		if store.ShardOf(name, 2) == 0 && app0 == "" {
			app0 = name
		} else if store.ShardOf(name, 2) == 1 && app1 == "" {
			app1 = name
		}
	}

	// Direct misroute: per-item 421 with the owner identified.
	resp, out := postBatchJSON(t, urls[0], marshalBatch(t,
		BatchObservation{App: app0, Concurrency: 1},
		BatchObservation{App: app1, Concurrency: 1}))
	if resp.StatusCode != http.StatusOK || out.Accepted != 1 || out.Rejected != 1 {
		t.Fatalf("direct misroute: status=%d accepted=%d rejected=%d", resp.StatusCode, out.Accepted, out.Rejected)
	}
	mis := out.Results[1]
	if mis.Status != http.StatusMisdirectedRequest || mis.Owner == nil || *mis.Owner != 1 {
		t.Fatalf("misrouted item = %+v, want Status 421 Owner 1", mis)
	}

	// Dead shard behind the router: that slice degrades to per-item 503,
	// the live shard's slice still commits.
	srvs[1].Close()
	resp, out = postBatchJSON(t, front.URL, marshalBatch(t,
		BatchObservation{App: app0, Concurrency: 2},
		BatchObservation{App: app1, Concurrency: 2}))
	if resp.StatusCode != http.StatusOK || out.Accepted != 1 || out.Rejected != 1 {
		t.Fatalf("dead shard: status=%d accepted=%d rejected=%d", resp.StatusCode, out.Accepted, out.Rejected)
	}
	dead := out.Results[1]
	if dead.Status != http.StatusServiceUnavailable || dead.Error == "" {
		t.Fatalf("dead-shard item = %+v, want Status 503 with error", dead)
	}
	if live := out.Results[0]; live.Error != "" {
		t.Fatalf("live-shard item rejected alongside the dead shard: %+v", live)
	}
}
