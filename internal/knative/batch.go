package knative

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"github.com/ubc-cirrus-lab/femux-go/internal/store"
)

// The batched observe path: the metrics collector completes a whole
// interval for many apps at once, so POSTing them one by one pays one
// HTTP round trip and (with durability on) one fsync per app. The batch
// endpoint takes N observations in a single body and group-commits them
// under a single fsync, which is what keeps the observe path cheap while
// it becomes durable.

// maxBatchBody bounds the batch POST body; maxBatchItems bounds the
// per-request observation count so a single request cannot monopolize
// the WAL lock.
const (
	maxBatchBody  = 8 << 20
	maxBatchItems = 10000
)

// BatchObservation is one app-interval sample inside a batch.
type BatchObservation struct {
	App         string  `json:"app"`
	Concurrency float64 `json:"concurrency"`
	// UnitConcurrency is the app's container concurrency limit (default 1).
	UnitConcurrency int `json:"unitConcurrency,omitempty"`
}

// BatchObserveRequest is the POST /v1/observe/batch body.
type BatchObserveRequest struct {
	Observations []BatchObservation `json:"observations"`
}

// BatchItemResult reports one observation's outcome, in input order.
// Error is set (and the decision fields zero) for items that were
// rejected — invalid values or apps owned by another shard; the rest of
// the batch still lands. Status distinguishes why: 503 means the shard
// is temporarily unavailable (replica awaiting promotion, dead backend —
// retry the same item), 421 means the app lives on another shard
// (Owner, when set, names it — resend there). Zero Status with a
// non-empty Error is a permanent validation failure.
type BatchItemResult struct {
	App        string `json:"app"`
	Target     int    `json:"target"`
	Forecaster string `json:"forecaster,omitempty"`
	History    int    `json:"historyLen,omitempty"`
	Error      string `json:"error,omitempty"`
	Status     int    `json:"status,omitempty"`
	// Owner is the shard that owns the app, for Status 421 redirects.
	// A pointer because shard 0 is a valid owner.
	Owner *int `json:"owner,omitempty"`
}

// BatchObserveResponse is the batch reply. The request succeeds as a
// whole (HTTP 200) even when individual items were rejected; clients
// must check Rejected / per-item Error — femux-load exits non-zero on
// any partial failure.
type BatchObserveResponse struct {
	Results  []BatchItemResult `json:"results"`
	Accepted int               `json:"accepted"`
	Rejected int               `json:"rejected"`
}

// batchHandler implements POST /v1/observe/batch. Item validation happens
// first; all valid observations are group-committed to the durable store
// with one fsync, then applied in memory and answered with per-item scale
// targets. A malformed body changes no counters and no state.
func (s *Service) batchHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "batch observe requires POST", http.StatusMethodNotAllowed)
		return
	}
	if s.replicaGated(w) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBody)
	var req BatchObserveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("body exceeds %d bytes", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "bad body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Observations) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	if len(req.Observations) > maxBatchItems {
		http.Error(w, fmt.Sprintf("batch exceeds %d observations", maxBatchItems),
			http.StatusBadRequest)
		return
	}

	// The drain fence covers validation (the moved-app check) and the
	// group commit together, exactly like the single-observe path: a
	// concurrent DrainApp either lands before an item's ownership check
	// (the item 421s) or after the batch append (the export sees it).
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()

	resp := BatchObserveResponse{Results: make([]BatchItemResult, len(req.Observations))}
	valid := make([]int, 0, len(req.Observations))
	durable := make([]store.Observation, 0, len(req.Observations))
	for i, obs := range req.Observations {
		res := &resp.Results[i]
		res.App = obs.App
		switch {
		case obs.App == "":
			res.Error = "missing app"
		case obs.Concurrency < 0:
			res.Error = "concurrency must be non-negative"
		default:
			if msg, status, owner := s.rejectApp(obs.App); msg != "" {
				res.Error = msg
				res.Status = status
				if status == http.StatusMisdirectedRequest {
					o := owner
					res.Owner = &o
				}
				if sm := s.svcMetrics(); sm != nil {
					sm.Misrouted.Inc()
				}
				break
			}
			valid = append(valid, i)
			durable = append(durable, store.Observation{App: obs.App, Concurrency: obs.Concurrency})
			continue
		}
		resp.Rejected++
	}

	// Materialize and pin every app BEFORE the group commit. Ordering
	// matters under tiering: a lazily-restored window is read from the
	// store, so restoring after the commit would hand back a window that
	// already contains this batch's observations and the in-memory apply
	// below would double-count them. The pin holds off LRU eviction in
	// the window between commit and apply, where hot state is ahead of
	// nothing but could otherwise be demoted and re-restored post-commit.
	pinned := make(map[string]*svcApp, len(valid))
	for _, i := range valid {
		app := req.Observations[i].App
		if pinned[app] != nil {
			continue
		}
		a := s.acquire(app)
		a.pins++
		a.mu.Unlock()
		pinned[app] = a
	}
	unpin := func() {
		for _, a := range pinned {
			a.mu.Lock()
			a.pins--
			a.mu.Unlock()
		}
	}

	// Group commit: the whole batch becomes durable under one fsync
	// before any of it is applied or acknowledged.
	if s.st != nil && len(durable) > 0 {
		if err := s.st.AppendBatch(durable); err != nil {
			unpin()
			if sm := s.svcMetrics(); sm != nil {
				sm.StoreErrors.Add(float64(len(durable)))
			}
			http.Error(w, "durable store append failed: "+err.Error(),
				http.StatusInternalServerError)
			return
		}
	}

	sm := s.svcMetrics()
	for _, i := range valid {
		obs := req.Observations[i]
		unitC := obs.UnitConcurrency
		if unitC < 1 {
			unitC = 1
		}
		a := pinned[obs.App]
		a.mu.Lock()
		a.history = append(a.history, obs.Concurrency)
		a.drift.Observe(obs.Concurrency)
		res := &resp.Results[i]
		res.Target = a.policy.TargetQuantilesWS(a.history, unitC, s.qlevel, a.ws)
		res.Forecaster = a.policy.CurrentForecaster()
		res.History = len(a.history)
		a.mu.Unlock()
		if sm != nil {
			sm.Observes.Inc(obs.App)
		}
		resp.Accepted++
	}
	unpin()
	// One budget-enforcement pass for the whole batch: eviction work is
	// amortized the same way the fsync is.
	s.enforceTiers()
	if sm != nil {
		sm.BatchReqs.Inc()
	}
	writeJSON(w, resp)
}

// ObserveBatch posts a batch of observations through the real REST path
// (used by knative-emu's scalability study and tests).
func (p *HTTPProvider) ObserveBatch(items []BatchObservation) (*BatchObserveResponse, error) {
	body, err := json.Marshal(BatchObserveRequest{Observations: items})
	if err != nil {
		return nil, err
	}
	client := p.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Post(p.BaseURL+"/v1/observe/batch", "application/json",
		bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("batch observe: HTTP %d", resp.StatusCode)
	}
	var out BatchObserveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}
