package knative

// lruList is a doubly-linked list of *svcApp, the container/list ring
// idiom with a concrete element type: the tier hot/workspace LRUs sit on
// the serving hot path, where the interface{} boxing and type assertions
// of container/list are pure overhead (and the per-push allocation is
// avoidable noise against the zero-alloc observe contract).
type lruList struct {
	root lruElem // sentinel: root.next is front, root.prev is back
	len  int
}

// lruElem is one list node; Value is the app it tracks.
type lruElem struct {
	prev, next *lruElem
	list       *lruList
	Value      *svcApp
}

func newLRUList() *lruList {
	l := &lruList{}
	l.Init()
	return l
}

// Init resets the list to empty; existing elements become orphans.
func (l *lruList) Init() {
	l.root.prev, l.root.next = &l.root, &l.root
	l.len = 0
}

// Len reports the number of elements.
func (l *lruList) Len() int { return l.len }

// Front returns the most recently used element, nil when empty.
func (l *lruList) Front() *lruElem {
	if l.len == 0 {
		return nil
	}
	return l.root.next
}

// Back returns the least recently used element, nil when empty.
func (l *lruList) Back() *lruElem {
	if l.len == 0 {
		return nil
	}
	return l.root.prev
}

// Next returns the next element toward the back, nil at the end.
func (e *lruElem) Next() *lruElem {
	if n := e.next; e.list != nil && n != &e.list.root {
		return n
	}
	return nil
}

func (l *lruList) insertAfter(e, at *lruElem) {
	e.prev, e.next = at, at.next
	e.prev.next, e.next.prev = e, e
	e.list = l
	l.len++
}

// PushFront inserts v at the front and returns its element.
func (l *lruList) PushFront(v *svcApp) *lruElem {
	e := &lruElem{Value: v}
	l.insertAfter(e, &l.root)
	return e
}

// Remove unlinks e. Removing an element twice, or one orphaned by Init,
// is a bug the nil list pointer turns into a visible panic.
func (l *lruList) Remove(e *lruElem) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next, e.list = nil, nil, nil
	l.len--
}

// MoveToBack makes e the least recently used element — the next
// eviction victim (restore-ahead lists its guesses behind real traffic).
func (l *lruList) MoveToBack(e *lruElem) {
	if l.root.prev == e {
		return
	}
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = l.root.prev, &l.root
	e.prev.next, e.next.prev = e, e
}

// MoveToFront makes e the most recently used element.
func (l *lruList) MoveToFront(e *lruElem) {
	if l.root.next == e {
		return
	}
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = &l.root, l.root.next
	e.prev.next, e.next.prev = e, e
}
