package knative

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"github.com/ubc-cirrus-lab/femux-go/internal/store"
)

// seedStoreFleet appends busy (periodically firing) and idle (all-zero)
// app windows straight into the store, so the whole fleet starts
// demoted: durable state exists, nothing is materialized.
func seedStoreFleet(t *testing.T, st *store.Store, busy, idle int) {
	t.Helper()
	var obs []store.Observation
	for i := 0; i < busy; i++ {
		for m := 0; m < 20; m++ {
			obs = append(obs, store.Observation{App: fmt.Sprintf("busy-%d", i), Concurrency: 4})
		}
	}
	for i := 0; i < idle; i++ {
		for m := 0; m < 20; m++ {
			obs = append(obs, store.Observation{App: fmt.Sprintf("idle-%d", i), Concurrency: 0})
		}
	}
	if err := st.AppendBatch(obs); err != nil {
		t.Fatal(err)
	}
}

// materialized reports whether the app currently has hot serving state,
// without materializing it.
func materialized(s *Service, name string) bool {
	st := s.tier.stripe(name)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.apps[name] != nil
}

// TestRestoreAheadPromotesPredicted: the prefetcher promotes demoted
// apps whose forecast fires and leaves the flat-zero ones demoted, never
// exceeding its budget.
func TestRestoreAheadPromotesPredicted(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncNever, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	seedStoreFleet(t, st, 6, 6)
	svc := NewServiceWith(trainTinyModel(t), ServiceOptions{
		Store: st, MaxHotApps: 8, TierShards: 1,
	})
	if hot := svc.HotApps(); hot != 0 {
		t.Fatalf("setup: %d hot apps, want 0", hot)
	}

	scanned, promoted := svc.RestoreAheadCycle(0.9, 3)
	if scanned == 0 {
		t.Fatal("cycle scanned nothing")
	}
	if promoted < 1 || promoted > 3 {
		t.Fatalf("promoted = %d, want 1..3 (budget 3)", promoted)
	}
	if hot := svc.HotApps(); hot != promoted {
		t.Fatalf("hot apps = %d, want %d (exactly the promotions)", hot, promoted)
	}
	for i := 0; i < 6; i++ {
		if materialized(svc, fmt.Sprintf("idle-%d", i)) {
			t.Fatalf("idle-%d was promoted despite an all-zero forecast", i)
		}
	}
	// Rotation: repeated cycles eventually consider (and promote) every
	// busy app; idle apps stay demoted forever.
	for i := 0; i < 6; i++ {
		svc.RestoreAheadCycle(0.9, 3)
	}
	for i := 0; i < 6; i++ {
		if !materialized(svc, fmt.Sprintf("busy-%d", i)) {
			t.Fatalf("busy-%d never promoted across rotating cycles", i)
		}
	}
	if _, p, _, _ := svc.RestoreAheadStats(); int(p) != svc.HotApps() {
		t.Fatalf("promotions %d != hot apps %d", p, svc.HotApps())
	}
}

// TestRestoreAheadDisplacementBounded: at steady state under churn every
// stripe is permanently full, so promotion works by displacing the LRU
// tail — but a cycle never displaces its own guesses (which park at the
// tail), capping displacement at one resident per stripe per cycle, and
// the stripe's MRU request-path state always survives.
func TestRestoreAheadDisplacementBounded(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncNever, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	seedStoreFleet(t, st, 8, 0)
	svc := NewServiceWith(trainTinyModel(t), ServiceOptions{
		Store: st, MaxHotApps: 2, TierShards: 1,
	})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Fill the hot tier with real traffic: busy-0 is the LRU tail.
	fetchDecision(t, srv.URL, "busy-0")
	fetchDecision(t, srv.URL, "busy-1")
	if hot := svc.HotApps(); hot != 2 {
		t.Fatalf("setup: hot = %d, want 2", hot)
	}

	// Budget 8 against a full single stripe: exactly one displacement —
	// the first promoted guess becomes the new tail, and the cycle will
	// not displace its own guess for the next one.
	scanned, promoted := svc.RestoreAheadCycle(0.9, 8)
	if scanned == 0 {
		t.Fatal("full stripe was excluded from the scan")
	}
	if promoted != 1 {
		t.Fatalf("promoted = %d, want 1 (one displacement per stripe per cycle)", promoted)
	}
	if !materialized(svc, "busy-1") {
		t.Fatal("displacement evicted the MRU request-path app instead of the tail")
	}
	if materialized(svc, "busy-0") {
		t.Fatal("the LRU tail should have been displaced")
	}
	if hot := svc.HotApps(); hot != 2 {
		t.Fatalf("hot = %d after displacement, want 2 (budget is preserved)", hot)
	}

	// The next cycle reclaims the previous cycle's untouched guess (waste)
	// before touching any requested app.
	if _, promoted := svc.RestoreAheadCycle(0.9, 8); promoted != 1 {
		t.Fatalf("second cycle promoted %d, want 1", promoted)
	}
	if !materialized(svc, "busy-1") {
		t.Fatal("second cycle displaced request-path state instead of the stale guess")
	}
	if _, _, _, wastes := svc.RestoreAheadStats(); wastes < 1 {
		t.Fatalf("wastes = %d, want >= 1 (stale guess reclaimed)", wastes)
	}
}

// TestRestoreAheadHitsAndWastes: a prefetched app touched by a real
// request counts as a hit; one evicted untouched counts as a waste —
// the observable hit rate of the guess.
func TestRestoreAheadHitsAndWastes(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncNever, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	seedStoreFleet(t, st, 2, 0)
	svc := NewServiceWith(trainTinyModel(t), ServiceOptions{
		Store: st, MaxHotApps: 2, TierShards: 1,
	})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	if _, promoted := svc.RestoreAheadCycle(0.9, 2); promoted != 2 {
		t.Fatalf("promoted = %d, want 2", promoted)
	}

	// A real request touches one prefetched app: hit.
	fetchDecision(t, srv.URL, "busy-0")
	if _, _, hits, _ := svc.RestoreAheadStats(); hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}

	// Fresh traffic pushes the other prefetched app (parked at the LRU
	// back, first in line) out untouched: waste.
	if err := st.Append("newcomer", 3); err != nil {
		t.Fatal(err)
	}
	fetchDecision(t, srv.URL, "newcomer")
	if _, _, hits, wastes := svc.RestoreAheadStats(); hits != 1 || wastes != 1 {
		t.Fatalf("(hits, wastes) = (%d, %d), want (1, 1)", hits, wastes)
	}
	if materialized(svc, "busy-1") {
		t.Fatal("the untouched prefetched app should have been the eviction victim")
	}
	if !materialized(svc, "busy-0") {
		t.Fatal("the hit app should have survived (it outranks the untouched guess)")
	}
}

// TestRestoreAheadReplicaGated: a catching-up replica must not build
// serving state ahead of its gate.
func TestRestoreAheadReplicaGated(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncNever, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	seedStoreFleet(t, st, 4, 0)
	svc := NewServiceWith(trainTinyModel(t), ServiceOptions{
		Store: st, MaxHotApps: 8, Replica: true, TierShards: 2,
	})
	if scanned, promoted := svc.RestoreAheadCycle(0.9, 4); scanned != 0 || promoted != 0 {
		t.Fatalf("replica cycle = (%d, %d), want (0, 0)", scanned, promoted)
	}
	svc.Promote()
	if _, promoted := svc.RestoreAheadCycle(0.9, 4); promoted == 0 {
		t.Fatal("promoted primary should prefetch")
	}
}

// TestRestoreAheadStoreless: without a store, candidates come from the
// stripes' warm maps and promotion consumes the warm window losslessly.
func TestRestoreAheadStoreless(t *testing.T) {
	svc := NewServiceWith(trainTinyModel(t), ServiceOptions{MaxHotApps: 4, TierShards: 1})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Six busy apps through the REST path: the LRU keeps 4 hot, demoting
	// 2 to the warm map.
	for round := 0; round < 10; round++ {
		for i := 0; i < 6; i++ {
			if code := postObserve(t, srv.URL, fmt.Sprintf("wl-%d", i), 4); code != 200 {
				t.Fatalf("observe: %d", code)
			}
		}
	}
	if hot, warm, _ := svc.TierCounts(); hot != 4 || warm != 2 {
		t.Fatalf("setup: (hot, warm) = (%d, %d), want (4, 2)", hot, warm)
	}

	// Free two hot slots (migration-style drop), then prefetch: the two
	// warm apps are the only candidates and both forecasts fire.
	st0 := svc.tier.stripes[0]
	st0.mu.Lock()
	var hotNames []string
	for el := st0.hot.Front(); el != nil; el = el.Next() {
		hotNames = append(hotNames, el.Value.name)
	}
	st0.mu.Unlock()
	svc.dropCached(hotNames[0])
	svc.dropCached(hotNames[1])

	scanned, promoted := svc.RestoreAheadCycle(0.5, 8)
	if scanned != 2 || promoted != 2 {
		t.Fatalf("(scanned, promoted) = (%d, %d), want (2, 2)", scanned, promoted)
	}
	// The promoted apps kept their full 10-observation history.
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("wl-%d", i)
		if name == hotNames[0] || name == hotNames[1] {
			continue // dropped by the migration-style dropCached above
		}
		d := fetchDecision(t, srv.URL, name)
		if d.target.History != 10 {
			t.Fatalf("%s: history = %d, want 10", name, d.target.History)
		}
	}
}
