package knative

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStressObserveDuringReload hammers the REST surface from many
// goroutines on overlapping apps while the model is hot-swapped
// concurrently, asserting (under -race) that no request is dropped or
// torn and that the metrics counters account for every request exactly.
func TestStressObserveDuringReload(t *testing.T) {
	svc, _, srv := newInstrumentedServer(t)
	modelA, modelB := svc.Model(), trainTinyModel(t)

	const (
		workers = 8
		perW    = 60
		apps    = 4 // overlapping: every worker touches every app
	)
	client := &http.Client{Timeout: 10 * time.Second}
	var (
		wg                              sync.WaitGroup
		observeOK, targetOK, forecastOK atomic.Int64
		failures                        atomic.Int64
	)

	// Reloader: swap the model several times while traffic is in flight.
	stopReload := make(chan struct{})
	var reloadWG sync.WaitGroup
	reloadWG.Add(1)
	go func() {
		defer reloadWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopReload:
				return
			case <-time.After(2 * time.Millisecond):
				if i%2 == 0 {
					svc.SwapModel(modelB)
				} else {
					svc.SwapModel(modelA)
				}
			}
		}
	}()

	// Monotonicity watcher: counters scraped mid-flight must never move
	// backwards (a torn read or a lost update would show up here).
	stopWatch := make(chan struct{})
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	monotonicViolations := atomic.Int64{}
	go func() {
		defer watchWG.Done()
		var last float64
		for {
			select {
			case <-stopWatch:
				return
			case <-time.After(time.Millisecond):
				resp, err := client.Get(srv.URL + "/metrics")
				if err != nil {
					continue
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				cur := sumMetric(string(b), "femux_observations_total")
				if cur < last {
					monotonicViolations.Add(1)
				}
				last = cur
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				app := fmt.Sprintf("app-%d", (w+i)%apps)
				switch i % 3 {
				case 0:
					resp, err := client.Post(srv.URL+"/v1/apps/"+app+"/observe",
						"application/json", strings.NewReader(`{"concurrency": 2.5}`))
					if err != nil || resp.StatusCode != http.StatusOK {
						failures.Add(1)
					} else {
						observeOK.Add(1)
					}
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				case 1:
					resp, err := client.Get(srv.URL + "/v1/apps/" + app + "/target?concurrency=2")
					if err != nil || resp.StatusCode != http.StatusOK {
						failures.Add(1)
					} else {
						targetOK.Add(1)
					}
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				default:
					resp, err := client.Get(srv.URL + "/v1/apps/" + app + "/forecast?horizon=3")
					if err != nil || resp.StatusCode != http.StatusOK {
						failures.Add(1)
					} else {
						forecastOK.Add(1)
					}
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopReload)
	reloadWG.Wait()
	close(stopWatch)
	watchWG.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d requests failed during reload stress", n)
	}
	if n := monotonicViolations.Load(); n != 0 {
		t.Fatalf("observation counter moved backwards %d times", n)
	}
	if svc.Reloads() == 0 {
		t.Fatal("no reload happened during the stress window; tighten the timing")
	}

	// Final scrape must account for every successful request exactly.
	resp, err := client.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	scrape := string(b)
	checks := map[string]float64{
		"femux_observations_total": float64(observeOK.Load()),
		"femux_targets_total":      float64(targetOK.Load()),
		"femux_forecasts_total":    float64(forecastOK.Load()),
	}
	for name, want := range checks {
		if got := sumMetric(scrape, name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if got := sumMetricFiltered(scrape, "femux_http_requests_total", `endpoint="observe"`, `code="200"`); got != float64(observeOK.Load()) {
		t.Errorf("http observe counter = %v, want %d", got, observeOK.Load())
	}
	if svc.Apps() != apps {
		t.Errorf("apps tracked = %d, want %d", svc.Apps(), apps)
	}
}

// sumMetric adds up every sample of a metric family in a text scrape.
func sumMetric(scrape, name string) float64 {
	var sum float64
	for _, line := range strings.Split(scrape, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if len(rest) > 0 && rest[0] != '{' && rest[0] != ' ' {
			continue // longer metric name sharing the prefix
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(fields[1], "%g", &v); err == nil {
			sum += v
		}
	}
	return sum
}

// sumMetricFiltered sums samples whose label block contains every filter.
func sumMetricFiltered(scrape, name string, filters ...string) float64 {
	var sum float64
outer:
	for _, line := range strings.Split(scrape, "\n") {
		if !strings.HasPrefix(line, name+"{") {
			continue
		}
		for _, f := range filters {
			if !strings.Contains(line, f) {
				continue outer
			}
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(fields[1], "%g", &v); err == nil {
			sum += v
		}
	}
	return sum
}
