package knative

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
	"github.com/ubc-cirrus-lab/femux-go/internal/lifecycle"
	"github.com/ubc-cirrus-lab/femux-go/internal/serving"
	"github.com/ubc-cirrus-lab/femux-go/internal/store"
)

// Replication and resharding over HTTP. Every femuxd instance exposes
// the same endpoints; roles are a matter of who calls whom:
//
//	GET  /v1/replication/wal?seq=&off=&max=   stream framed WAL records
//	GET  /v1/replication/state                full-state snapshot (bootstrap)
//	GET  /v1/replication/status               position/cursor/epoch JSON
//	GET  /v1/replication/apps                 durable app list
//	GET  /v1/replication/app?name=            one app's history (migration read)
//	POST /v1/replication/import               adopt one app's history
//	POST /v1/admin/drain                      stop writes to an app (421 + owner)
//	POST /v1/admin/handoff                    drop a drained app's state
//	POST /v1/admin/promote                    replica -> serving primary
//	POST /v1/admin/epoch                      install a new shard count/epoch
//
// A follower (femuxd -replica-of) runs a Replicator that polls
// /v1/replication/wal and applies chunks through the store's
// exactly-once AppendReplicated; the femux-shard router health-checks
// primaries and POSTs /v1/admin/promote on failure. Resharding drains
// each moving app on its old owner, copies its history to the new
// owner, drops it, and finally bumps the fleet-wide epoch.

// Header names carrying WAL positions on the replication endpoints.
const (
	hdrNextSeq = "X-Femux-Next-Seq"
	hdrNextOff = "X-Femux-Next-Off"
	hdrHeadSeq = "X-Femux-Head-Seq"
	hdrHeadOff = "X-Femux-Head-Off"
)

// ReplStatus is the /v1/replication/status reply.
type ReplStatus struct {
	Position store.ReplPos  `json:"position"`         // this store's WAL head
	Cursor   *store.ReplPos `json:"cursor,omitempty"` // last applied primary position (followers)
	Total    int64          `json:"total"`
	Apps     int            `json:"apps"`
	Epoch    int            `json:"epoch"`
	Shards   int            `json:"shards"`
	ShardID  int            `json:"shardID"`
	Replica  bool           `json:"replica"`
	Joining  bool           `json:"joining"`
}

// AppTransfer is one app's full durable history — the migration payload
// and the /v1/replication/app reply.
type AppTransfer struct {
	App    string    `json:"app"`
	Window []float64 `json:"window"`
	Total  int64     `json:"total"`
}

// Epoch reports the service's current ownership epoch.
func (s *Service) Epoch() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// IsReplica reports whether the serving path is still gated.
func (s *Service) IsReplica() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.replica
}

// Promotions reports how many times this service was promoted.
func (s *Service) Promotions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.promotions
}

// Promote turns a gated replica into the serving primary: the app map
// is reset so every app rematerializes lazily from the replicated store
// on first touch (the first forecast after failover is computed from
// exactly the windows the WAL stream delivered — bit-identical to the
// dead primary's), and the 503 gate drops. The promoted fleet boots in
// the warm tier: failover cost does not scale with fleet size.
// Idempotent: promoting a primary is a no-op.
func (s *Service) Promote() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.replica {
		if s.st != nil {
			return s.st.Apps()
		}
		return s.appCount()
	}
	s.replica = false
	s.promotions++
	if s.st != nil {
		for _, t := range s.tier.stripes {
			t.mu.Lock()
			t.resetLocked()
			t.mu.Unlock()
		}
		s.restored = s.st.Apps()
		return s.restored
	}
	return s.appCount()
}

// SetShards installs a new fleet size under a strictly newer ownership
// epoch, clearing the per-epoch moved/adopted sets (the new shard map
// subsumes them). Stale epochs are rejected so a lagging resharding
// coordinator cannot roll ownership backwards.
func (s *Service) SetShards(shards, epoch int) error {
	if shards < 1 {
		return fmt.Errorf("knative: shards must be >= 1, got %d", shards)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch <= s.epoch {
		return fmt.Errorf("knative: stale epoch %d (current %d)", epoch, s.epoch)
	}
	if s.shardID >= shards {
		return fmt.Errorf("knative: shard %d does not exist in a fleet of %d", s.shardID, shards)
	}
	s.shards, s.epoch = shards, epoch
	s.moved = map[string]int{}
	s.adopted = map[string]bool{}
	s.joining = false
	return nil
}

// DrainApp freezes one app for migration: subsequent requests answer 421
// with owner in X-Femux-Owner. The write fence guarantees that once this
// returns, the app's durable history is final — no in-flight write can
// land after it.
func (s *Service) DrainApp(app string, owner int) {
	s.drainMu.Lock()
	s.mu.Lock()
	s.moved[app] = owner
	s.mu.Unlock()
	s.drainMu.Unlock()
}

// HandoffApp completes a migration away: the drained app's durable and
// in-memory state is dropped (the 421 marker stays until the epoch
// bump). Refuses apps that were not drained first — dropping live state
// would lose observations.
func (s *Service) HandoffApp(app string) error {
	s.mu.RLock()
	_, drained := s.moved[app]
	s.mu.RUnlock()
	if !drained {
		return fmt.Errorf("knative: handoff of %q without drain", app)
	}
	if s.st != nil {
		if err := s.st.DropApp(app); err != nil {
			return err
		}
	}
	s.dropCached(app)
	if sm := s.svcMetrics(); sm != nil {
		sm.Handoffs.Inc()
	}
	return nil
}

// AdoptApp installs one app's migrated history on its new owner,
// durably, and whitelists it against the (still old-epoch) shard map so
// per-app cutover happens before the fleet-wide epoch bump. Replace
// semantics make re-running an interrupted migration idempotent.
func (s *Service) AdoptApp(app string, window []float64, total int64) error {
	if app == "" {
		return fmt.Errorf("knative: adopt: empty app name")
	}
	if s.st != nil {
		if err := s.st.ImportApp(app, window, total); err != nil {
			return err
		}
	}
	// Any cached serving state predates the import (including a stale copy
	// from a misroute bounce during resharding); drop it so the next touch
	// rematerializes from the imported history.
	s.dropCached(app)
	s.mu.Lock()
	s.adopted[app] = true
	delete(s.moved, app)
	model := s.model
	s.mu.Unlock()
	if s.st == nil {
		// No store to restore from: install the imported history directly
		// into the owning stripe (dropCached above removed any stale copy).
		t := s.tier.stripe(app)
		a := &svcApp{
			name: app, stripe: t,
			policy:  model.NewAppPolicy(0),
			history: append([]float64(nil), window...),
			ws:      forecast.GetWorkspace(),
			drift:   lifecycle.DetectorOf(window, s.driftBlock),
		}
		t.mu.Lock()
		t.apps[app] = a
		t.mu.Unlock()
	}
	if sm := s.svcMetrics(); sm != nil {
		sm.Adoptions.Inc()
	}
	return nil
}

// Status returns the replication status snapshot.
func (s *Service) Status() ReplStatus {
	st := ReplStatus{}
	s.mu.RLock()
	st.Epoch, st.Shards, st.ShardID, st.Replica = s.epoch, s.shards, s.shardID, s.replica
	st.Joining = s.joining
	ds := s.st
	s.mu.RUnlock()
	st.Apps = s.Apps()
	if ds != nil {
		st.Total = ds.TotalObservations()
		if pos, err := ds.Position(); err == nil {
			st.Position = pos
		}
		if cur, ok := ds.ReplCursor(); ok {
			c := cur
			st.Cursor = &c
		}
	}
	return st
}

// mountReplication registers the replication and migration endpoints on
// the service mux.
func (s *Service) mountReplication(mux *http.ServeMux) {
	mux.HandleFunc("/v1/replication/wal", s.walHandler)
	mux.HandleFunc("/v1/replication/state", s.stateHandler)
	mux.HandleFunc("/v1/replication/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Status())
	})
	mux.HandleFunc("/v1/replication/apps", s.appListHandler)
	mux.HandleFunc("/v1/replication/app", s.appExportHandler)
	mux.HandleFunc("/v1/replication/import", s.appImportHandler)
	mux.HandleFunc("/v1/admin/drain", s.drainHandler)
	mux.HandleFunc("/v1/admin/handoff", s.handoffHandler)
	mux.HandleFunc("/v1/admin/promote", s.promoteHandler)
	mux.HandleFunc("/v1/admin/epoch", s.epochHandler)
}

// needStore answers 503 when the instance has no durable store (nothing
// to replicate or migrate).
func (s *Service) needStore(w http.ResponseWriter) *store.Store {
	if s.st == nil {
		http.Error(w, "no durable store (-data-dir) on this instance", http.StatusServiceUnavailable)
		return nil
	}
	return s.st
}

func (s *Service) walHandler(w http.ResponseWriter, r *http.Request) {
	ds := s.needStore(w)
	if ds == nil {
		return
	}
	q := r.URL.Query()
	seq, err1 := strconv.ParseUint(q.Get("seq"), 10, 64)
	off, err2 := strconv.ParseInt(q.Get("off"), 10, 64)
	if err1 != nil || err2 != nil || off < 0 {
		http.Error(w, "need seq= and off= (non-negative integers)", http.StatusBadRequest)
		return
	}
	maxBytes := 1 << 20
	if v := q.Get("max"); v != "" {
		if m, err := strconv.Atoi(v); err == nil && m > 0 {
			maxBytes = m
		}
	}
	data, next, err := ds.ReadWALFrom(store.ReplPos{Seq: seq, Off: off}, maxBytes)
	switch {
	case errors.Is(err, store.ErrCompacted):
		http.Error(w, err.Error(), http.StatusGone)
		return
	case errors.Is(err, store.ErrOutOfRange):
		http.Error(w, err.Error(), http.StatusRequestedRangeNotSatisfiable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	head, _ := ds.Position()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(hdrNextSeq, strconv.FormatUint(next.Seq, 10))
	w.Header().Set(hdrNextOff, strconv.FormatInt(next.Off, 10))
	w.Header().Set(hdrHeadSeq, strconv.FormatUint(head.Seq, 10))
	w.Header().Set(hdrHeadOff, strconv.FormatInt(head.Off, 10))
	w.Write(data)
}

func (s *Service) stateHandler(w http.ResponseWriter, r *http.Request) {
	ds := s.needStore(w)
	if ds == nil {
		return
	}
	data, pos, err := ds.ExportState()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(hdrNextSeq, strconv.FormatUint(pos.Seq, 10))
	w.Header().Set(hdrNextOff, strconv.FormatInt(pos.Off, 10))
	w.Write(data)
}

func (s *Service) appListHandler(w http.ResponseWriter, r *http.Request) {
	ds := s.needStore(w)
	if ds == nil {
		return
	}
	writeJSON(w, struct {
		Apps []string `json:"apps"`
	}{Apps: ds.AppNames()})
}

func (s *Service) appExportHandler(w http.ResponseWriter, r *http.Request) {
	ds := s.needStore(w)
	if ds == nil {
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		http.Error(w, "need name=", http.StatusBadRequest)
		return
	}
	win, total, ok := ds.ExportApp(name)
	if !ok {
		http.Error(w, fmt.Sprintf("app %q has no durable state here", name), http.StatusNotFound)
		return
	}
	writeJSON(w, AppTransfer{App: name, Window: win, Total: total})
}

func (s *Service) appImportHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "import requires POST", http.StatusMethodNotAllowed)
		return
	}
	if s.replicaGated(w) {
		return
	}
	if s.needStore(w) == nil {
		return
	}
	var req AppTransfer
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBatchBody)).Decode(&req); err != nil {
		http.Error(w, "bad body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.AdoptApp(req.App, req.Window, req.Total); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, struct {
		App     string `json:"app"`
		History int    `json:"historyLen"`
	}{App: req.App, History: len(req.Window)})
}

func (s *Service) drainHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "drain requires POST", http.StatusMethodNotAllowed)
		return
	}
	if s.replicaGated(w) {
		return
	}
	var req struct {
		App   string `json:"app"`
		Owner int    `json:"owner"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, maxObserveBody)).Decode(&req); err != nil || req.App == "" {
		http.Error(w, "need {app, owner}", http.StatusBadRequest)
		return
	}
	s.DrainApp(req.App, req.Owner)
	writeJSON(w, struct {
		App   string `json:"app"`
		Owner int    `json:"owner"`
	}{req.App, req.Owner})
}

func (s *Service) handoffHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "handoff requires POST", http.StatusMethodNotAllowed)
		return
	}
	if s.replicaGated(w) {
		return
	}
	var req struct {
		App string `json:"app"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, maxObserveBody)).Decode(&req); err != nil || req.App == "" {
		http.Error(w, "need {app}", http.StatusBadRequest)
		return
	}
	if err := s.HandoffApp(req.App); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, struct {
		App string `json:"app"`
	}{req.App})
}

func (s *Service) promoteHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "promote requires POST", http.StatusMethodNotAllowed)
		return
	}
	apps := s.Promote()
	writeJSON(w, struct {
		Apps       int `json:"apps"`
		Promotions int `json:"promotions"`
	}{apps, s.Promotions()})
}

func (s *Service) epochHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "epoch requires POST", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Shards int `json:"shards"`
		Epoch  int `json:"epoch"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, maxObserveBody)).Decode(&req); err != nil {
		http.Error(w, "need {shards, epoch}", http.StatusBadRequest)
		return
	}
	if err := s.SetShards(req.Shards, req.Epoch); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, struct {
		Shards int `json:"shards"`
		Epoch  int `json:"epoch"`
	}{req.Shards, req.Epoch})
}

// Replicator tails a primary femuxd's WAL into a local store: the
// follower half of -replica-of. Chunks are applied through the store's
// exactly-once AppendReplicated; a position that compaction deleted
// falls back to the /state snapshot bootstrap. Safe to Stop at any time;
// after Stop returns no further writes reach the store.
type Replicator struct {
	st       *store.Store
	primary  string
	client   *http.Client
	Interval time.Duration // poll period when caught up (default 100ms)
	MaxBytes int           // per-fetch budget (default 1 MiB)

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	mu       sync.Mutex
	lastErr  error
	caughtUp bool

	fetches    *serving.Counter
	bootstraps *serving.Counter
	errsC      *serving.Counter
	bytesC     *serving.Counter
	lagBytes   *serving.Gauge
	up         *serving.Gauge
}

// NewReplicator returns a stopped Replicator; call Start.
func NewReplicator(st *store.Store, primaryURL string, client *http.Client) *Replicator {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Replicator{
		st: st, primary: primaryURL, client: client,
		Interval: 100 * time.Millisecond, MaxBytes: 1 << 20,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
}

// InstrumentWith registers replication metrics on reg. Call before Start.
func (r *Replicator) InstrumentWith(reg *serving.Registry) {
	r.fetches = reg.NewCounter("femux_replication_fetches_total",
		"WAL chunks fetched from the primary.")
	r.bootstraps = reg.NewCounter("femux_replication_bootstraps_total",
		"Snapshot bootstraps after falling behind compaction.")
	r.errsC = reg.NewCounter("femux_replication_errors_total",
		"Failed replication fetch/apply attempts.")
	r.bytesC = reg.NewCounter("femux_replication_bytes_total",
		"WAL bytes replicated from the primary.")
	r.lagBytes = reg.NewGauge("femux_replication_lag_bytes",
		"Bytes between the follower's cursor and the primary's WAL head (same segment; 0 when caught up).")
	r.up = reg.NewGauge("femux_replication_caught_up",
		"1 when the follower's cursor is at the primary's WAL head.")
}

// Start launches the pull loop.
func (r *Replicator) Start() {
	go func() {
		defer close(r.done)
		for {
			select {
			case <-r.stop:
				return
			default:
			}
			progress, err := r.step()
			r.mu.Lock()
			r.lastErr = err
			r.mu.Unlock()
			if err != nil && r.errsC != nil {
				r.errsC.Inc()
			}
			if progress && err == nil {
				continue // drain the backlog without sleeping
			}
			select {
			case <-r.stop:
				return
			case <-time.After(r.Interval):
			}
		}
	}()
}

// Stop halts the loop and waits for it to exit. Idempotent.
func (r *Replicator) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

// CaughtUp reports whether the last fetch found the follower at the
// primary's WAL head, plus the last error if any.
func (r *Replicator) CaughtUp() (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.caughtUp, r.lastErr
}

func (r *Replicator) setCaughtUp(v bool, lag int64) {
	r.mu.Lock()
	r.caughtUp = v
	r.mu.Unlock()
	if r.up != nil {
		if v {
			r.up.Set(1)
		} else {
			r.up.Set(0)
		}
	}
	if r.lagBytes != nil && lag >= 0 {
		r.lagBytes.Set(float64(lag))
	}
}

func parsePosHeaders(h http.Header, seqKey, offKey string) (store.ReplPos, error) {
	seq, err1 := strconv.ParseUint(h.Get(seqKey), 10, 64)
	off, err2 := strconv.ParseInt(h.Get(offKey), 10, 64)
	if err1 != nil || err2 != nil {
		return store.ReplPos{}, fmt.Errorf("knative: bad position headers %q/%q", h.Get(seqKey), h.Get(offKey))
	}
	return store.ReplPos{Seq: seq, Off: off}, nil
}

// step performs one fetch+apply. progress means a chunk or snapshot was
// applied and the loop should immediately fetch again.
func (r *Replicator) step() (progress bool, err error) {
	pos, ok := r.st.ReplCursor()
	if !ok {
		pos = store.ReplPos{Seq: 1}
	}
	url := fmt.Sprintf("%s/v1/replication/wal?seq=%d&off=%d&max=%d",
		r.primary, pos.Seq, pos.Off, r.MaxBytes)
	resp, err := r.client.Get(url)
	if err != nil {
		r.setCaughtUp(false, -1)
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		if r.fetches != nil {
			r.fetches.Inc()
		}
		next, err := parsePosHeaders(resp.Header, hdrNextSeq, hdrNextOff)
		if err != nil {
			return false, err
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, int64(r.MaxBytes)+(2<<20)))
		if err != nil {
			return false, err
		}
		head, herr := parsePosHeaders(resp.Header, hdrHeadSeq, hdrHeadOff)
		lag := int64(-1)
		if herr == nil && head.Seq == next.Seq {
			lag = head.Off - next.Off
		}
		if len(body) == 0 && next == pos {
			r.setCaughtUp(true, 0)
			return false, nil
		}
		if _, err := r.st.AppendReplicated(body, next); err != nil {
			r.setCaughtUp(false, lag)
			return false, err
		}
		if r.bytesC != nil {
			r.bytesC.Add(float64(len(body)))
		}
		r.setCaughtUp(herr == nil && next == head, lag)
		return true, nil
	case http.StatusGone:
		// The primary compacted past our cursor: full snapshot bootstrap.
		io.Copy(io.Discard, resp.Body)
		if r.bootstraps != nil {
			r.bootstraps.Inc()
		}
		sresp, err := r.client.Get(r.primary + "/v1/replication/state")
		if err != nil {
			return false, err
		}
		defer sresp.Body.Close()
		if sresp.StatusCode != http.StatusOK {
			return false, fmt.Errorf("knative: state fetch: HTTP %d", sresp.StatusCode)
		}
		spos, err := parsePosHeaders(sresp.Header, hdrNextSeq, hdrNextOff)
		if err != nil {
			return false, err
		}
		data, err := io.ReadAll(io.LimitReader(sresp.Body, 1<<30))
		if err != nil {
			return false, err
		}
		if err := r.st.ImportState(data, spos); err != nil {
			return false, err
		}
		return true, nil
	default:
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		r.setCaughtUp(false, -1)
		return false, fmt.Errorf("knative: replication fetch: HTTP %d: %s",
			resp.StatusCode, bytes.TrimSpace(b))
	}
}
