package knative

import (
	"container/heap"
	"sort"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
	"github.com/ubc-cirrus-lab/femux-go/internal/trace"
)

// EmulatorConfig parameterizes a cluster emulation run.
type EmulatorConfig struct {
	Autoscaler         AutoscalerConfig
	Provider           ScaleProvider // nil -> pure default Knative behaviour
	MaxPods            int           // cluster capacity in pods (0 = unbounded)
	CaptureDelays      bool          // record per-request platform delays
	CaptureScaleEvents bool          // record pod scale up/down events per app
}

// ScaleEvent records one pod-count change, the scale up/down event stream
// the production dataset exposes (Table 1).
type ScaleEvent struct {
	At    time.Duration
	Delta int // positive: pods added; negative: pods removed
	Pods  int // pod count after the change
}

// AppSpec describes one application deployed on the emulated cluster.
type AppSpec struct {
	Name        string
	Config      trace.Config
	Invocations []trace.Invocation // sorted by arrival
}

// AppResult is one application's outcome.
type AppResult struct {
	Name           string
	Sample         rum.Sample
	PlatformDelays []float64    // seconds (when captured)
	ScaleEvents    []ScaleEvent // pod count changes (when captured)
}

// emuPod is one pod of one app.
type emuPod struct {
	app        int
	readyAt    time.Duration
	busy       int
	idleSince  time.Duration
	aliveFrom  time.Duration
	busySlotNS float64
	lastChange time.Duration
	dead       bool
}

func (p *emuPod) accrue(now time.Duration) {
	if now > p.lastChange {
		p.busySlotNS += float64(p.busy) * float64(now-p.lastChange)
		p.lastChange = now
	}
}

// queuedReq is a request buffered at the activator.
type queuedReq struct {
	arrival  time.Duration
	duration time.Duration
}

// appRuntime is the emulator's per-app state.
type appRuntime struct {
	idx     int
	spec    AppSpec
	pods    []*emuPod
	queue   []queuedReq
	scaler  *Autoscaler
	unitC   int
	nextInv int

	// Concurrency integral for the current tick (in-flight + queued).
	loadNS  float64
	lastObs time.Duration
	inUse   int // executing requests

	// Per-minute accumulation for the FeMux provider.
	minuteNS   float64
	lastMinObs time.Duration
	// Provider override, held until the next minute boundary. -1 = none.
	override int

	result AppResult
}

func (a *appRuntime) observe(now time.Duration) {
	load := float64(a.inUse + len(a.queue))
	if now > a.lastObs {
		a.loadNS += load * float64(now-a.lastObs)
		a.lastObs = now
	}
	if now > a.lastMinObs {
		a.minuteNS += load * float64(now-a.lastMinObs)
		a.lastMinObs = now
	}
}

type emuCompletion struct {
	at  time.Duration
	pod *emuPod
}

type emuHeap []emuCompletion

func (h emuHeap) Len() int            { return len(h) }
func (h emuHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h emuHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *emuHeap) Push(x interface{}) { *h = append(*h, x.(emuCompletion)) }
func (h *emuHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Run emulates the cluster over [0, horizon) and returns per-app results in
// input order.
func Run(apps []AppSpec, cfg EmulatorConfig, horizon time.Duration) []AppResult {
	tick := cfg.Autoscaler.TickInterval
	if tick <= 0 {
		tick = 2 * time.Second
	}
	runtimes := make([]*appRuntime, len(apps))
	totalPods := 0
	for i, spec := range apps {
		unitC := spec.Config.Concurrency
		if unitC < 1 {
			unitC = 1
		}
		rt := &appRuntime{
			idx:      i,
			spec:     spec,
			scaler:   NewAutoscaler(cfg.Autoscaler, unitC),
			unitC:    unitC,
			override: -1,
		}
		rt.result.Name = spec.Name
		for j := 0; j < spec.Config.MinScale; j++ {
			rt.pods = append(rt.pods, &emuPod{app: i})
			totalPods++
		}
		if cfg.CaptureDelays {
			rt.result.PlatformDelays = make([]float64, 0, len(spec.Invocations))
		}
		runtimes[i] = rt
	}

	comps := &emuHeap{}

	reap := func(rt *appRuntime, pd *emuPod, now time.Duration) {
		pd.accrue(now)
		pd.dead = true
		totalPods--
		aliveSec := (now - pd.aliveFrom).Seconds()
		usedSec := pd.busySlotNS / float64(time.Second) / float64(rt.unitC)
		rt.result.Sample.AllocatedGBSec += aliveSec * rt.spec.Config.MemoryGB
		if w := (aliveSec - usedSec) * rt.spec.Config.MemoryGB; w > 0 {
			rt.result.Sample.WastedGBSec += w
		}
	}

	// drain assigns queued requests to free slots on ready pods.
	drain := func(rt *appRuntime, now time.Duration) {
		for len(rt.queue) > 0 {
			var slot *emuPod
			for _, pd := range rt.pods {
				if pd.dead || pd.readyAt > now || pd.busy >= rt.unitC {
					continue
				}
				if slot == nil || pd.idleSince < slot.idleSince {
					slot = pd
				}
			}
			if slot == nil {
				return
			}
			req := rt.queue[0]
			rt.queue = rt.queue[1:]
			rt.observe(now)
			slot.accrue(now)
			slot.busy++
			rt.inUse++
			heap.Push(comps, emuCompletion{at: now + req.duration, pod: slot})

			delay := now - req.arrival
			rt.result.Sample.Invocations++
			rt.result.Sample.ExecSec += req.duration.Seconds()
			if delay > 0 {
				rt.result.Sample.ColdStarts++
				rt.result.Sample.ColdStartSec += delay.Seconds()
			}
			if rt.result.PlatformDelays != nil {
				rt.result.PlatformDelays = append(rt.result.PlatformDelays, delay.Seconds())
			}
		}
	}

	finish := func(now time.Duration) {
		for comps.Len() > 0 && (*comps)[0].at <= now {
			c := heap.Pop(comps).(emuCompletion)
			rt := runtimes[c.pod.app]
			rt.observe(c.at)
			c.pod.accrue(c.at)
			c.pod.busy--
			rt.inUse--
			if c.pod.busy == 0 {
				c.pod.idleSince = c.at
			}
			drain(rt, c.at)
		}
	}

	// Pods becoming ready unblock queued requests, so a pending ready time
	// is an event: for every app with a non-empty queue, the earliest pod
	// ready time after the last processed instant must be visited.
	nextReady := func(after time.Duration) (time.Duration, *appRuntime) {
		best := time.Duration(-1)
		var bestRT *appRuntime
		for _, rt := range runtimes {
			if len(rt.queue) == 0 {
				continue
			}
			for _, pd := range rt.pods {
				if pd.dead || pd.busy >= rt.unitC || pd.readyAt <= after {
					continue
				}
				if best < 0 || pd.readyAt < best {
					best = pd.readyAt
					bestRT = rt
				}
			}
		}
		return best, bestRT
	}

	scaleApp := func(rt *appRuntime, now time.Duration) {
		// Tick observation: average load over the elapsed tick.
		rt.observe(now)
		avg := rt.loadNS / float64(tick)
		rt.loadNS = 0
		rt.scaler.Observe(now, avg)

		// Minute boundary: consult the FeMux provider.
		if cfg.Provider != nil && now%time.Minute == 0 && now > 0 {
			minuteAvg := rt.minuteNS / float64(time.Minute)
			rt.minuteNS = 0
			if tgt, ok := cfg.Provider.Target(rt.spec.Name, minuteAvg, rt.unitC); ok {
				rt.override = tgt
			}
		}

		alive := 0
		for _, pd := range rt.pods {
			if !pd.dead {
				alive++
			}
		}
		var desired int
		if rt.override >= 0 {
			desired = rt.override
			if desired < rt.spec.Config.MinScale {
				desired = rt.spec.Config.MinScale
			}
			// The reactive path still covers emergencies: never scale
			// below what the panic window demands right now.
			if reactive := rt.scaler.Desired(now, alive, rt.spec.Config.MinScale); reactive > desired {
				desired = reactive
			}
		} else {
			desired = rt.scaler.Desired(now, alive, rt.spec.Config.MinScale)
		}

		scaled := 0
		if desired > alive {
			for i := alive; i < desired; i++ {
				if cfg.MaxPods > 0 && totalPods >= cfg.MaxPods {
					break
				}
				rt.pods = append(rt.pods, &emuPod{
					app:        rt.idx,
					readyAt:    now + rt.spec.Config.ColdStart,
					idleSince:  now + rt.spec.Config.ColdStart,
					aliveFrom:  now,
					lastChange: now,
				})
				totalPods++
				scaled++
			}
		} else if desired < alive {
			excess := alive - desired
			idle := make([]*emuPod, 0, excess)
			for _, pd := range rt.pods {
				if !pd.dead && pd.busy == 0 && pd.readyAt <= now {
					idle = append(idle, pd)
				}
			}
			sort.Slice(idle, func(i, j int) bool { return idle[i].idleSince < idle[j].idleSince })
			for i := 0; i < excess && i < len(idle); i++ {
				reap(rt, idle[i], now)
				scaled--
			}
		}
		if cfg.CaptureScaleEvents && scaled != 0 {
			rt.result.ScaleEvents = append(rt.result.ScaleEvents, ScaleEvent{
				At: now, Delta: scaled, Pods: alive + scaled,
			})
		}
		// Compact dead pods.
		live := rt.pods[:0]
		for _, pd := range rt.pods {
			if !pd.dead {
				live = append(live, pd)
			}
		}
		rt.pods = live
	}

	// Merge arrivals across apps.
	type arrival struct {
		at  time.Duration
		app int
	}
	order := make([]arrival, 0)
	for i, spec := range apps {
		for _, inv := range spec.Invocations {
			order = append(order, arrival{at: inv.Arrival, app: i})
		}
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].at < order[j].at })

	nextTick := tick
	ai := 0
	prevNow := time.Duration(0)
	for {
		now := horizon
		kind := 2 // 0 arrival, 1 tick, 2 done, 3 pod-ready
		if ai < len(order) && order[ai].at < now {
			now = order[ai].at
			kind = 0
		}
		if nextTick < now && nextTick < horizon {
			now = nextTick
			kind = 1
		}
		var readyRT *appRuntime
		if rAt, rRT := nextReady(prevNow); rAt >= 0 && rAt < now {
			now = rAt
			kind = 3
			readyRT = rRT
		}
		if kind == 2 {
			break
		}
		finish(now)
		switch kind {
		case 0:
			a := order[ai]
			ai++
			rt := runtimes[a.app]
			inv := rt.spec.Invocations[rt.nextInv]
			rt.nextInv++
			rt.observe(now)
			rt.queue = append(rt.queue, queuedReq{arrival: now, duration: inv.Duration})
			drain(rt, now)
		case 1:
			for _, rt := range runtimes {
				scaleApp(rt, now)
				drain(rt, now)
			}
			nextTick += tick
		case 3:
			drain(readyRT, now)
		}
		prevNow = now
	}
	finish(horizon)
	for _, rt := range runtimes {
		for _, pd := range rt.pods {
			if !pd.dead {
				reap(rt, pd, horizon)
			}
		}
	}

	out := make([]AppResult, len(runtimes))
	for i, rt := range runtimes {
		out[i] = rt.result
	}
	return out
}
