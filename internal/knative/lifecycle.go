package knative

import (
	"sort"

	"github.com/ubc-cirrus-lab/femux-go/internal/lifecycle"
	"github.com/ubc-cirrus-lab/femux-go/internal/store"
)

// The service side of the retrain lifecycle: drift summaries for the
// femux_drift_score gauge and the snapshot a lifecycle.Manager retrains
// from. Service implements lifecycle.Serving (LifecycleSnapshot here,
// SwapModel in service.go).

// DriftSummary scans the hot tier's drift detectors and reports the
// largest score, how many hot apps sit at or above threshold (0 counts
// none), and how many were examined. Only hot apps carry live detector
// state — a demoted app's drift is recomputed from its window when it
// rematerializes, so an idle app cannot hold the fleet's max score
// forever.
func (s *Service) DriftSummary(threshold float64) (maxScore float64, drifted, tracked int) {
	var hot []*svcApp
	for _, t := range s.tier.stripes {
		t.mu.Lock()
		for el := t.hot.Front(); el != nil; el = el.Next() {
			hot = append(hot, el.Value)
		}
		t.mu.Unlock()
	}
	// Scores are read under each app's lock, never under a stripe lock —
	// the eviction path locks app.mu before stripe.mu, so the reverse
	// order here would deadlock.
	for _, a := range hot {
		a.mu.Lock()
		gone := a.gone
		sc := 0.0
		if !gone {
			sc = a.drift.Score()
		}
		a.mu.Unlock()
		if gone {
			continue
		}
		tracked++
		if sc > maxScore {
			maxScore = sc
		}
		if threshold > 0 && sc >= threshold {
			drifted++
		}
	}
	return maxScore, drifted, tracked
}

// MaxDriftScore reports the largest drift score across hot apps (the
// femux_drift_score gauge).
func (s *Service) MaxDriftScore() float64 {
	m, _, _ := s.DriftSummary(0)
	return m
}

// LifecycleSnapshot implements lifecycle.Serving: it captures the
// serving model, the per-app drift summary, the replica gate, and the
// fleet's observation windows (sorted by app name; maxApps > 0 keeps the
// first maxApps names) for retraining and shadow evaluation.
//
// Store-backed services read windows straight from the durable store —
// the write-ahead observe path keeps hot histories and store windows
// identical, and reading the store does not promote cold apps out of
// their tier. Store-less services copy hot histories and decode warm
// compact windows.
func (s *Service) LifecycleSnapshot(maxApps int, driftThreshold float64) lifecycle.Snapshot {
	snap := lifecycle.Snapshot{Model: s.Model(), Gated: s.IsReplica()}
	snap.MaxDrift, snap.Drifted, snap.Tracked = s.DriftSummary(driftThreshold)
	if snap.Gated {
		// A catching-up replica never retrains; skip the window copies.
		return snap
	}
	if st := s.store(); st != nil {
		names := st.AppNames() // sorted
		if maxApps > 0 && len(names) > maxApps {
			names = names[:maxApps]
		}
		for _, name := range names {
			if w := st.Window(name); len(w) > 0 {
				snap.Apps = append(snap.Apps, lifecycle.AppWindow{Name: name, Window: w})
			}
		}
		return snap
	}

	// Store-less: warm windows first (under each stripe lock), then hot
	// histories. An app evicted between the two scans is picked up by the
	// re-check of its stripe's warm map; one that rematerialized in that
	// window is simply read hot. Either way each app contributes exactly
	// one window.
	windows := map[string][]float64{}
	var hot []*svcApp
	for _, t := range s.tier.stripes {
		t.mu.Lock()
		for name, cw := range t.warm {
			windows[name] = cw.Values(nil)
		}
		for el := t.hot.Front(); el != nil; el = el.Next() {
			hot = append(hot, el.Value)
		}
		t.mu.Unlock()
	}
	for _, a := range hot {
		a.mu.Lock()
		if a.gone {
			a.mu.Unlock()
			t := a.stripe
			t.mu.Lock()
			if cw := t.warm[a.name]; cw != nil {
				windows[a.name] = cw.Values(nil)
			}
			t.mu.Unlock()
			continue
		}
		windows[a.name] = append([]float64(nil), a.history...)
		a.mu.Unlock()
	}
	names := make([]string, 0, len(windows))
	for name := range windows {
		names = append(names, name)
	}
	sort.Strings(names)
	if maxApps > 0 && len(names) > maxApps {
		names = names[:maxApps]
	}
	for _, name := range names {
		if w := windows[name]; len(w) > 0 {
			snap.Apps = append(snap.Apps, lifecycle.AppWindow{Name: name, Window: w})
		}
	}
	return snap
}

// store returns the durable store under the service lock.
func (s *Service) store() *store.Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st
}
