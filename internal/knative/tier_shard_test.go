package knative

import (
	"fmt"
	"sync"
	"testing"

	"github.com/ubc-cirrus-lab/femux-go/internal/store"
)

// TestSplitBudget pins the per-stripe budget arithmetic: bounded budgets
// split exactly (floor + remainder to the first stripes, summing to the
// global bound), and 0 maps to the -1 unlimited sentinel everywhere —
// budget 0 on a stripe legitimately means "evict on release", so the
// two must never be conflated.
func TestSplitBudget(t *testing.T) {
	cases := []struct {
		total, n int
		want     []int
	}{
		{10, 4, []int{3, 3, 2, 2}},
		{2, 8, []int{1, 1, 0, 0, 0, 0, 0, 0}},
		{5, 1, []int{5}},
		{7, 7, []int{1, 1, 1, 1, 1, 1, 1}},
		{0, 3, []int{-1, -1, -1}},
		{-4, 2, []int{-1, -1}},
	}
	for _, c := range cases {
		got := splitBudget(c.total, c.n)
		if len(got) != len(c.want) {
			t.Fatalf("splitBudget(%d, %d) = %v, want %v", c.total, c.n, got, c.want)
		}
		sum := 0
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("splitBudget(%d, %d) = %v, want %v", c.total, c.n, got, c.want)
			}
			sum += got[i]
		}
		if c.total > 0 && sum != c.total {
			t.Errorf("splitBudget(%d, %d) sums to %d", c.total, c.n, sum)
		}
	}
}

// TestStripeAssignment pins stripe routing: deterministic per name,
// single-stripe fleets always route to stripe 0, and the FNV-1a hash
// spreads a realistic fleet across every stripe.
func TestStripeAssignment(t *testing.T) {
	svc := NewServiceWith(trainTinyModel(t), ServiceOptions{TierShards: 8})
	seen := map[*tierStripe]int{}
	for i := 0; i < 400; i++ {
		name := fmt.Sprintf("app-%d", i)
		a, b := svc.tier.stripe(name), svc.tier.stripe(name)
		if a != b {
			t.Fatalf("stripe(%q) not deterministic", name)
		}
		seen[a]++
	}
	if len(seen) != 8 {
		t.Errorf("400 apps landed on %d of 8 stripes", len(seen))
	}
	single := NewServiceWith(trainTinyModel(t), ServiceOptions{TierShards: 1})
	if single.Stripes() != 1 {
		t.Fatalf("Stripes = %d, want 1", single.Stripes())
	}
	if single.tier.stripe("anything") != single.tier.stripes[0] {
		t.Error("single-stripe routing must hit stripe 0")
	}
}

// TestAcquireEvictHammer is the lost-race regression test for the
// bounded-backoff acquire loop: one app on a zero-budget stripe is
// hammered by concurrent acquire/observe/release cycles, so every
// release evicts and every next acquire races the eviction (the gone
// retry path) and restores from the warm tier. Run under -race in CI.
// Conservation proves no round trip lost state: the final history holds
// every append.
func TestAcquireEvictHammer(t *testing.T) {
	svc := NewServiceWith(trainTinyModel(t), ServiceOptions{
		MaxHotApps: 1, TierShards: 4, // stripes 1..3 run at hot budget 0
	})
	app := ""
	for i := 0; ; i++ {
		name := fmt.Sprintf("hammer-%d", i)
		if svc.tier.stripe(name).maxHot == 0 {
			app = name
			break
		}
	}

	const goroutines = 8
	iters := 300
	if testing.Short() {
		iters = 120
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				a := svc.acquire(app)
				a.history = append(a.history, 1)
				svc.releaseApp(a) // budget 0: evicts immediately
			}
		}()
	}
	wg.Wait()

	a := svc.acquire(app)
	got := len(a.history)
	svc.releaseApp(a)
	if want := goroutines * iters; got != want {
		t.Fatalf("history length = %d, want %d (acquire/evict race lost observations)", got, want)
	}
	if ev := svc.Evictions(); ev == 0 {
		t.Fatal("zero evictions: the hammer never exercised the race")
	}
}

// TestTierCountsAnomaly pins the un-clamped warm count: a hot app with
// no durable state (its first observation still in flight) makes the
// store-backed warm derivation go negative; the sample must be counted
// as an anomaly — not silently clamped — while the gauge still reports
// a sane 0.
func TestTierCountsAnomaly(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncNever, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	svc := NewServiceWith(trainTinyModel(t), ServiceOptions{Store: st})

	// Materialize an app without appending to the store: hot = 1 while
	// the store knows 0 apps.
	a := svc.acquire("phantom")
	svc.releaseApp(a)

	hot, warm, cold := svc.TierCounts()
	if hot != 1 || warm != 0 || cold != 0 {
		t.Fatalf("TierCounts = (%d, %d, %d), want (1, 0, 0)", hot, warm, cold)
	}
	if n := svc.TierCountAnomalies(); n != 1 {
		t.Fatalf("TierCountAnomalies = %d, want 1", n)
	}

	// Once the store catches up, samples are consistent again and the
	// counter stays put.
	if err := st.Append("phantom", 2); err != nil {
		t.Fatal(err)
	}
	if _, warm, _ := svc.TierCounts(); warm != 0 {
		t.Fatalf("consistent warm = %d, want 0", warm)
	}
	if n := svc.TierCountAnomalies(); n != 1 {
		t.Fatalf("TierCountAnomalies after consistent sample = %d, want 1", n)
	}
}

// TestDropCachedPurgesWarm pins the migration hole the stripe split
// could have widened: dropCached on a store-less app must purge its
// stripe's warm map too, or a handed-off app's pre-migration history
// resurrects on the next touch.
func TestDropCachedPurgesWarm(t *testing.T) {
	svc := NewServiceWith(trainTinyModel(t), ServiceOptions{MaxHotApps: 1, TierShards: 1})

	a := svc.acquire("mover")
	a.history = append(a.history, 1, 2, 3)
	svc.releaseApp(a)
	// Evict it to the warm tier by touching another app.
	b := svc.acquire("other")
	svc.releaseApp(b)

	st0 := svc.tier.stripes[0]
	st0.mu.Lock()
	_, warm := st0.warm["mover"]
	st0.mu.Unlock()
	if !warm {
		t.Fatal("setup: mover should be in the warm map")
	}

	svc.dropCached("mover")

	st0.mu.Lock()
	_, warm = st0.warm["mover"]
	st0.mu.Unlock()
	if warm {
		t.Fatal("dropCached left the app in the stripe warm map")
	}
	c := svc.acquire("mover")
	got := len(c.history)
	svc.releaseApp(c)
	if got != 0 {
		t.Fatalf("dropped app rematerialized %d observations, want 0", got)
	}
}

// TestLRUList covers the typed intrusive list against the container/list
// behavior it replaced.
func TestLRUList(t *testing.T) {
	l := newLRUList()
	mk := func(name string) *svcApp { return &svcApp{name: name} }
	ea := l.PushFront(mk("a"))
	eb := l.PushFront(mk("b"))
	ec := l.PushFront(mk("c"))
	if l.Len() != 3 || l.Front() != ec || l.Back() != ea {
		t.Fatalf("push: len=%d front=%v back=%v", l.Len(), l.Front().Value.name, l.Back().Value.name)
	}
	l.MoveToFront(ea)
	if l.Front() != ea || l.Back() != eb {
		t.Fatal("MoveToFront(back) broke order")
	}
	l.MoveToFront(ea) // already front: no-op
	l.MoveToBack(ec)
	if l.Back() != ec {
		t.Fatal("MoveToBack broke order")
	}
	l.MoveToBack(ec) // already back: no-op
	var order []string
	for e := l.Front(); e != nil; e = e.Next() {
		order = append(order, e.Value.name)
	}
	if fmt.Sprint(order) != "[a b c]" {
		t.Fatalf("iteration order %v, want [a b c]", order)
	}
	l.Remove(eb)
	if l.Len() != 2 || l.Front() != ea || l.Back() != ec {
		t.Fatal("Remove broke order")
	}
	l.Init()
	if l.Len() != 0 || l.Front() != nil || l.Back() != nil {
		t.Fatal("Init did not empty the list")
	}
}
