package knative

import (
	"container/list"
	"runtime"
	"sync"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
	"github.com/ubc-cirrus-lab/femux-go/internal/store"
)

// Tiered per-app serving state. Real fleets ("Serverless in the Wild",
// and the paper's own production traces) are dominated by enormous
// numbers of mostly-idle apps; keeping a materialized float64 window, an
// AppPolicy, and a forecast workspace (FFT plans, normal-equation
// buffers) resident for every app ever seen makes RSS scale with
// apps-ever-seen instead of apps-currently-hot. The service therefore
// keeps three tiers:
//
//	hot   materialized history + policy + (usually) a workspace: today's
//	      layout, zero-allocation observe path. Bounded by MaxHotApps,
//	      LRU-evicted. Workspaces are additionally bounded by
//	      MaxWorkspaces and returned to the shared forecast pool.
//	warm  the delta/varint-compressed window only — in the store for
//	      store-backed services (every store app is warm at rest; the
//	      boot path never materializes them), or in tier.warm for
//	      store-less ones. Bounded by the store's InlineBudget
//	      (-max-warm-apps), beyond which apps go cold.
//	cold  paged to disk by the store, a ~few-dozen-byte stub in memory.
//
// Demotion is invisible to callers: hot state for a store-backed app is
// a pure cache of the store (eviction writes nothing), and a restored
// app re-derives its forecaster from the same history an uninterrupted
// process would hold, so forecasts are Float64bits-identical across any
// evict/page/restore cycle (pinned by tierequiv_test.go). The one
// caveat matches restarts: with a WindowCap set, history beyond the cap
// is dropped on demotion, exactly as it would be across a restart.
type tiers struct {
	maxHot int // hot apps; 0 = unlimited
	maxWS  int // apps holding workspaces; 0 = unlimited

	mu  sync.Mutex
	hot *list.List // *svcApp, most recently touched first
	ws  *list.List // *svcApp holding a workspace, most recently touched first

	// warm holds evicted apps' compact windows for store-less services;
	// with a store, warm state lives in the store itself. Entries are
	// consumed (deleted) on restore.
	warm map[string]*store.CompactWindow

	evictions  int64 // hot -> warm demotions
	wsReleases int64 // workspaces returned to the pool by the ws LRU
}

func newTiers(maxHot, maxWS int) tiers {
	return tiers{
		maxHot: maxHot, maxWS: maxWS,
		hot: list.New(), ws: list.New(),
		warm: map[string]*store.CompactWindow{},
	}
}

// resetLocked drops all tier tracking (promotion installs a fresh app
// map). Caller holds t.mu or has exclusive access.
func (t *tiers) resetLocked() {
	t.hot.Init()
	t.ws.Init()
	t.warm = map[string]*store.CompactWindow{}
}

// touch bumps a to the front of the hot and workspace LRUs, acquiring a
// pooled workspace if the ws LRU stripped it. Called with a.mu held; on
// the steady-state hot path both bumps are MoveToFront — no allocation.
func (s *Service) touch(a *svcApp) {
	t := &s.tier
	t.mu.Lock()
	if a.hotEl == nil {
		a.hotEl = t.hot.PushFront(a)
	} else {
		t.hot.MoveToFront(a.hotEl)
	}
	if a.ws == nil {
		a.ws = forecast.GetWorkspace()
	}
	if a.wsEl == nil {
		a.wsEl = t.ws.PushFront(a)
	} else {
		t.ws.MoveToFront(a.wsEl)
	}
	t.mu.Unlock()
}

// acquire returns the named app with its lock held, lazily restoring
// warm/cold state and bumping the tier LRUs. Callers must a.mu.Unlock()
// (via releaseApp on serving paths, so budgets are re-enforced).
func (s *Service) acquire(name string) *svcApp {
	for {
		a := s.app(name)
		a.mu.Lock()
		if !a.gone {
			s.touch(a)
			return a
		}
		// Lost a race with eviction: the map entry is about to be (or has
		// been) removed; retry until the fresh entry is observable.
		a.mu.Unlock()
		runtime.Gosched()
	}
}

// releaseApp unlocks a serving request's app and then enforces tier
// budgets — eviction happens after the response work is done, never
// while a request holds the app.
func (s *Service) releaseApp(a *svcApp) {
	a.mu.Unlock()
	s.enforceTiers()
}

// enforceTiers demotes LRU victims until the hot-app and workspace
// budgets hold. Safe to call from any goroutine at any time.
func (s *Service) enforceTiers() {
	for {
		t := &s.tier
		t.mu.Lock()
		var victim *svcApp
		wsOnly := false
		if t.maxHot > 0 && t.hot.Len() > t.maxHot {
			victim = t.hot.Back().Value.(*svcApp)
		} else if t.maxWS > 0 && t.ws.Len() > t.maxWS {
			victim = t.ws.Back().Value.(*svcApp)
			wsOnly = true
		}
		t.mu.Unlock()
		if victim == nil {
			return
		}
		if !s.evict(victim, wsOnly) {
			// The victim was pinned or re-touched; budgets are best-effort
			// within a pass and the next release re-enforces.
			return
		}
	}
}

// evict demotes one app (or just releases its workspace), reporting
// whether it made progress. The victim was chosen without its lock;
// everything is re-checked under victim.mu -> tier.mu (the same order
// touch uses), so a concurrent touch or pin simply wins and the
// eviction pass stops.
func (s *Service) evict(v *svcApp, wsOnly bool) bool {
	v.mu.Lock()
	t := &s.tier
	t.mu.Lock()
	if v.pins > 0 {
		t.mu.Unlock()
		v.mu.Unlock()
		return false
	}
	if wsOnly {
		if v.wsEl == nil || t.maxWS <= 0 || t.ws.Len() <= t.maxWS || t.ws.Back() != v.wsEl {
			t.mu.Unlock()
			v.mu.Unlock()
			return false
		}
		t.ws.Remove(v.wsEl)
		v.wsEl = nil
		ws := v.ws
		v.ws = nil
		t.wsReleases++
		t.mu.Unlock()
		v.mu.Unlock()
		forecast.PutWorkspace(ws)
		return true
	}
	if v.hotEl == nil || t.maxHot <= 0 || t.hot.Len() <= t.maxHot || t.hot.Back() != v.hotEl {
		t.mu.Unlock()
		v.mu.Unlock()
		return false
	}
	t.hot.Remove(v.hotEl)
	v.hotEl = nil
	if v.wsEl != nil {
		t.ws.Remove(v.wsEl)
		v.wsEl = nil
	}
	t.evictions++
	if s.st == nil {
		// Store-less warm tier: keep the history, compressed. With a
		// store this write is unnecessary — the store already holds the
		// app's window; hot state is a pure cache.
		var cw store.CompactWindow
		for _, x := range v.history {
			cw.Append(x)
		}
		t.warm[v.name] = &cw
	}
	t.mu.Unlock()
	ws := v.ws
	v.ws = nil
	v.history = nil
	v.policy = nil
	v.gone = true
	v.mu.Unlock()
	forecast.PutWorkspace(ws)
	// Map removal last, and only if the entry is still ours: an adopt or
	// promote may have replaced it while we held no locks.
	s.mu.Lock()
	if s.apps[v.name] == v {
		delete(s.apps, v.name)
	}
	s.mu.Unlock()
	if sm := s.svcMetrics(); sm != nil {
		sm.Evictions.Inc()
	}
	return true
}

// restoreHistory fetches an evicted/paged app's window during an app-map
// miss. from is "" when the app has no demoted state (genuinely new),
// "warm" for an in-memory compact window, "cold" for a disk page-in.
// Store-backed restore runs outside s.mu — it may touch disk — which is
// safe because RestoreWindow promotes in the store: a racing loser
// discards an identical copy. The store-less path is called under s.mu
// because deleting the warm entry is destructive.
func (s *Service) restoreHistory(name string) (history []float64, from string) {
	if s.st == nil {
		t := &s.tier
		t.mu.Lock()
		if cw := t.warm[name]; cw != nil {
			history = cw.Values(nil)
			delete(t.warm, name)
			from = "warm"
		}
		t.mu.Unlock()
		return history, from
	}
	win, paged, ok := s.st.RestoreWindow(name)
	if !ok {
		return nil, ""
	}
	if paged {
		return win, "cold"
	}
	return win, "warm"
}

// noteRestore records restore metrics (counter + latency histogram).
func (s *Service) noteRestore(from string, elapsed time.Duration) {
	if from == "" {
		return
	}
	if sm := s.svcMetrics(); sm != nil {
		sm.Restores.Inc(from)
		sm.RestoreSeconds.Observe(elapsed.Seconds(), from)
	}
}

// dropCached removes an app's materialized serving state and tier
// tracking (migration handoff/adopt replaced or dropped it); the next
// touch lazily restores from the store.
func (s *Service) dropCached(name string) {
	s.mu.Lock()
	a := s.apps[name]
	delete(s.apps, name)
	s.mu.Unlock()
	t := &s.tier
	if a == nil {
		t.mu.Lock()
		delete(t.warm, name)
		t.mu.Unlock()
		return
	}
	a.mu.Lock()
	t.mu.Lock()
	if a.hotEl != nil {
		t.hot.Remove(a.hotEl)
		a.hotEl = nil
	}
	if a.wsEl != nil {
		t.ws.Remove(a.wsEl)
		a.wsEl = nil
	}
	delete(t.warm, name)
	t.mu.Unlock()
	ws := a.ws
	a.ws = nil
	a.history = nil
	a.gone = true
	a.mu.Unlock()
	forecast.PutWorkspace(ws)
}

// HotApps reports how many apps are materialized (hot tier).
func (s *Service) HotApps() int {
	s.tier.mu.Lock()
	defer s.tier.mu.Unlock()
	return s.tier.hot.Len()
}

// TierCounts reports (hot, warm, cold) app counts for the gauges. Warm
// is everything tracked but not materialized and not paged.
func (s *Service) TierCounts() (hot, warm, cold int) {
	s.tier.mu.Lock()
	hot = s.tier.hot.Len()
	warmless := len(s.tier.warm)
	s.tier.mu.Unlock()
	if s.st == nil {
		return hot, warmless, 0
	}
	cold = s.st.PagedApps()
	warm = s.st.Apps() - cold - hot
	if warm < 0 {
		warm = 0
	}
	return hot, warm, cold
}
