package knative

import (
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
	"github.com/ubc-cirrus-lab/femux-go/internal/store"
)

// Tiered per-app serving state. Real fleets ("Serverless in the Wild",
// and the paper's own production traces) are dominated by enormous
// numbers of mostly-idle apps; keeping a materialized float64 window, an
// AppPolicy, and a forecast workspace (FFT plans, normal-equation
// buffers) resident for every app ever seen makes RSS scale with
// apps-ever-seen instead of apps-currently-hot. The service therefore
// keeps three tiers:
//
//	hot   materialized history + policy + (usually) a workspace: today's
//	      layout, zero-allocation observe path. Bounded by MaxHotApps,
//	      LRU-evicted. Workspaces are additionally bounded by
//	      MaxWorkspaces and returned to the shared forecast pool.
//	warm  the delta/varint-compressed window only — in the store for
//	      store-backed services (every store app is warm at rest; the
//	      boot path never materializes them), or in the stripe's warm map
//	      for store-less ones. Bounded by the store's InlineBudget
//	      (-max-warm-apps), beyond which apps go cold.
//	cold  paged to disk by the store, a ~few-dozen-byte stub in memory.
//
// The layer is split into shared-nothing stripes (-tier-shards, default
// one per logical CPU): each stripe owns its slice of the app map, its
// own hot and workspace LRUs, its own store-less warm map, and its own
// eviction counters, keyed by FNV-1a of the app name. Touches, evicts,
// and restores on different stripes never contend — under full-speed
// sparse-churn replay the single global tier mutex used to serialize
// every restore, costing 6-12x throughput once the working set exceeded
// the hot budget. The global budgets are split across stripes
// (maxHot/N, remainder to the first stripes) so the fleet-wide bound
// still holds exactly; -tier-shards=1 reproduces the unstriped layer.
//
// Demotion is invisible to callers: hot state for a store-backed app is
// a pure cache of the store (eviction writes nothing), and a restored
// app re-derives its forecaster from the same history an uninterrupted
// process would hold, so forecasts are Float64bits-identical across any
// evict/page/restore cycle at every stripe count (pinned by
// tierequiv_test.go). The one caveat matches restarts: with a WindowCap
// set, history beyond the cap is dropped on demotion, exactly as it
// would be across a restart.
type tierStripe struct {
	maxHot int // hot apps this stripe may hold; -1 = unlimited
	maxWS  int // apps holding workspaces; -1 = unlimited

	mu   sync.Mutex
	apps map[string]*svcApp // this stripe's slice of the app map
	hot  *lruList           // most recently touched first
	ws   *lruList           // apps holding a workspace, most recent first

	// warm holds evicted apps' compact windows for store-less services;
	// with a store, warm state lives in the store itself. Entries are
	// consumed (deleted) on restore.
	warm map[string]*store.CompactWindow

	evictions  int64 // hot -> warm demotions
	wsReleases int64 // workspaces returned to the pool by the ws LRU
}

// tiers is the striped tier layer plus the cross-stripe counters that
// are sampled without locks.
type tiers struct {
	stripes []*tierStripe

	// countAnomalies counts TierCounts samples where the store-backed
	// warm count came out negative — a hot app with no durable state yet,
	// or a racy cross-structure sample. Counted (and logged once) instead
	// of silently clamped.
	countAnomalies atomic.Int64
	anomalyLog     sync.Once

	// Restore-ahead prefetch accounting (see prefetch.go).
	prefetchScans      atomic.Int64 // demoted apps whose forecast was evaluated
	prefetchPromotions atomic.Int64 // apps promoted off the request path
	prefetchHits       atomic.Int64 // prefetched apps touched by a real request
	prefetchWastes     atomic.Int64 // prefetched apps evicted untouched

	// prefetchEpoch is bumped once per restore-ahead cycle; apps promoted
	// by the current cycle carry it, and displacement refuses victims with
	// the current epoch so a cycle can never cannibalize its own guesses
	// (which park at the LRU tail, exactly where victims are drawn from).
	prefetchEpoch atomic.Int64
}

// stripeCount resolves the TierShards knob: 0 means one stripe per
// logical CPU (the shared-nothing default).
func stripeCount(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// splitBudget distributes a global budget over n stripes: floor(total/n)
// each, remainder to the first stripes, so the per-stripe budgets sum to
// exactly the global one. total <= 0 (unlimited) maps to -1 everywhere;
// note a bounded global budget smaller than n legitimately gives some
// stripes budget 0 — apps on those stripes are served and then demoted
// at release, which keeps the fleet-wide bound exact.
func splitBudget(total, n int) []int {
	out := make([]int, n)
	if total <= 0 {
		for i := range out {
			out[i] = -1
		}
		return out
	}
	base, rem := total/n, total%n
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

func newStripes(maxHot, maxWS, shards int) []*tierStripe {
	n := stripeCount(shards)
	hotB, wsB := splitBudget(maxHot, n), splitBudget(maxWS, n)
	stripes := make([]*tierStripe, n)
	for i := range stripes {
		stripes[i] = &tierStripe{
			maxHot: hotB[i], maxWS: wsB[i],
			apps: map[string]*svcApp{},
			hot:  newLRUList(), ws: newLRUList(),
			warm: map[string]*store.CompactWindow{},
		}
	}
	return stripes
}

// stripe maps an app name onto its owning stripe with the same FNV-1a
// hash the shard partition uses (mixed differently, so stripe and shard
// assignment stay independent).
func (t *tiers) stripe(name string) *tierStripe {
	if len(t.stripes) == 1 {
		return t.stripes[0]
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return t.stripes[h%uint64(len(t.stripes))]
}

// Stripes reports the stripe count (the -tier-shards gauge).
func (s *Service) Stripes() int { return len(s.tier.stripes) }

// resetLocked drops one stripe's tier tracking (promotion installs a
// fresh app map). Caller holds t.mu or has exclusive access.
func (t *tierStripe) resetLocked() {
	t.apps = map[string]*svcApp{}
	t.hot.Init()
	t.ws.Init()
	t.warm = map[string]*store.CompactWindow{}
}

// touch bumps a to the front of its stripe's hot and workspace LRUs,
// acquiring a pooled workspace if the ws LRU stripped it. Called with
// a.mu held; on the steady-state hot path both bumps are MoveToFront —
// no allocation, and no contention with touches on other stripes.
func (s *Service) touch(a *svcApp) {
	t := a.stripe
	t.mu.Lock()
	if a.hotEl == nil {
		a.hotEl = t.hot.PushFront(a)
	} else {
		t.hot.MoveToFront(a.hotEl)
	}
	if a.ws == nil {
		a.ws = forecast.GetWorkspace()
	}
	if a.wsEl == nil {
		a.wsEl = t.ws.PushFront(a)
	} else {
		t.ws.MoveToFront(a.wsEl)
	}
	t.mu.Unlock()
}

// lostRaceBackoff paces the acquire retry loop after losing a race with
// eviction. The first few retries just yield — the common case is the
// evictor finishing its map removal within a scheduler quantum — but
// under sustained acquire-vs-evict churn (a stripe whose budget is 0, a
// stress test hammering one app) a pure runtime.Gosched spin can burn a
// core for milliseconds without the fresh map entry becoming observable.
// Beyond the yield phase the loop sleeps with capped exponential
// backoff: 1µs doubling to 1ms.
func lostRaceBackoff(attempt int) {
	const yields = 4
	if attempt < yields {
		runtime.Gosched()
		return
	}
	time.Sleep(time.Microsecond << min(attempt-yields, 10))
}

// acquire returns the named app with its lock held, lazily restoring
// warm/cold state and bumping the tier LRUs. Callers must a.mu.Unlock()
// (via releaseApp on serving paths, so budgets are re-enforced).
func (s *Service) acquire(name string) *svcApp {
	for attempt := 0; ; attempt++ {
		a := s.app(name)
		a.mu.Lock()
		if !a.gone {
			s.touch(a)
			if a.prefetched {
				// A real request reached state the prefetcher staged:
				// the cold-restore latency was genuinely hidden.
				a.prefetched = false
				s.tier.prefetchHits.Add(1)
			}
			return a
		}
		// Lost a race with eviction: the map entry is about to be (or has
		// been) removed; retry until the fresh entry is observable.
		a.mu.Unlock()
		lostRaceBackoff(attempt)
	}
}

// releaseApp unlocks a serving request's app and then enforces its
// stripe's budgets — eviction happens after the response work is done,
// never while a request holds the app, and never touches other stripes.
func (s *Service) releaseApp(a *svcApp) {
	t := a.stripe
	a.mu.Unlock()
	s.enforceStripe(t)
}

// enforceTiers demotes LRU victims on every stripe until the hot-app
// and workspace budgets hold. Safe to call from any goroutine at any
// time; serving paths use the per-stripe enforceStripe instead.
func (s *Service) enforceTiers() {
	for _, t := range s.tier.stripes {
		s.enforceStripe(t)
	}
}

// enforceStripe demotes one stripe's LRU victims until its share of the
// hot-app and workspace budgets holds.
func (s *Service) enforceStripe(t *tierStripe) {
	for {
		t.mu.Lock()
		var victim *svcApp
		wsOnly := false
		if t.maxHot >= 0 && t.hot.Len() > t.maxHot {
			victim = t.hot.Back().Value
		} else if t.maxWS >= 0 && t.ws.Len() > t.maxWS {
			victim = t.ws.Back().Value
			wsOnly = true
		}
		t.mu.Unlock()
		if victim == nil {
			return
		}
		if !s.evict(victim, wsOnly, false) {
			// The victim was pinned or re-touched; budgets are best-effort
			// within a pass and the next release re-enforces.
			return
		}
	}
}

// evict demotes one app (or just releases its workspace), reporting
// whether it made progress. The victim was chosen without its lock;
// everything is re-checked under victim.mu -> stripe.mu (the same order
// touch uses), so a concurrent touch or pin simply wins and the
// eviction pass stops. Because the stripe owns both the LRUs and its
// slice of the app map, the map removal is atomic with the LRU removal:
// no window exists where a gone app is still reachable through the map.
//
// displace relaxes the over-budget requirement to at-budget: restore-
// ahead promotion into a full stripe trades the LRU-tail resident for a
// predicted-to-fire app (see materializeAs), which is an eviction at
// exactly the budget, not above it.
func (s *Service) evict(v *svcApp, wsOnly, displace bool) bool {
	v.mu.Lock()
	t := v.stripe
	t.mu.Lock()
	if v.pins > 0 {
		t.mu.Unlock()
		v.mu.Unlock()
		return false
	}
	if wsOnly {
		if v.wsEl == nil || t.maxWS < 0 || t.ws.Len() <= t.maxWS || t.ws.Back() != v.wsEl {
			t.mu.Unlock()
			v.mu.Unlock()
			return false
		}
		t.ws.Remove(v.wsEl)
		v.wsEl = nil
		ws := v.ws
		v.ws = nil
		t.wsReleases++
		t.mu.Unlock()
		v.mu.Unlock()
		forecast.PutWorkspace(ws)
		return true
	}
	over := t.hot.Len() > t.maxHot
	if displace {
		over = t.hot.Len() >= t.maxHot
	}
	if v.hotEl == nil || t.maxHot < 0 || !over || t.hot.Back() != v.hotEl {
		t.mu.Unlock()
		v.mu.Unlock()
		return false
	}
	t.hot.Remove(v.hotEl)
	v.hotEl = nil
	if v.wsEl != nil {
		t.ws.Remove(v.wsEl)
		v.wsEl = nil
	}
	t.evictions++
	if v.prefetched {
		// Evicted before any real request arrived: the prefetch was wasted
		// work (and the budget that allowed it was too optimistic).
		v.prefetched = false
		s.tier.prefetchWastes.Add(1)
	}
	if s.st == nil {
		// Store-less warm tier: keep the history, compressed. With a
		// store this write is unnecessary — the store already holds the
		// app's window; hot state is a pure cache.
		var cw store.CompactWindow
		for _, x := range v.history {
			cw.Append(x)
		}
		t.warm[v.name] = &cw
	}
	if t.apps[v.name] == v {
		delete(t.apps, v.name)
	}
	ws := v.ws
	v.ws = nil
	v.history = nil
	v.policy = nil
	v.gone = true
	t.mu.Unlock()
	v.mu.Unlock()
	forecast.PutWorkspace(ws)
	if sm := s.svcMetrics(); sm != nil {
		sm.Evictions.Inc()
	}
	return true
}

// restoreHistory fetches an evicted/paged app's window from the durable
// store during an app-map miss. from is "" when the app has no demoted
// state (genuinely new), "warm" for an in-memory compact window, "cold"
// for a disk page-in. It runs outside the stripe lock — it may touch
// disk — which is safe because RestoreWindow promotes in the store: a
// racing loser discards an identical copy. Store-less restores go
// through the stripe's warm map under its lock instead (see
// materialize), because deleting the warm entry is destructive.
func (s *Service) restoreHistory(name string) (history []float64, from string) {
	win, paged, ok := s.st.RestoreWindow(name)
	if !ok {
		return nil, ""
	}
	if paged {
		return win, "cold"
	}
	return win, "warm"
}

// noteRestore records restore metrics (counter + latency histogram).
func (s *Service) noteRestore(from string, elapsed time.Duration) {
	if from == "" {
		return
	}
	if sm := s.svcMetrics(); sm != nil {
		sm.Restores.Inc(from)
		sm.RestoreSeconds.Observe(elapsed.Seconds(), from)
	}
}

// dropCached removes an app's materialized serving state and tier
// tracking (migration handoff/adopt replaced or dropped it); the next
// touch lazily restores from the store. The stripe's warm map is purged
// whether or not the app was materialized — a store-less warm window
// left behind would resurrect pre-migration history on the next touch.
func (s *Service) dropCached(name string) {
	t := s.tier.stripe(name)
	t.mu.Lock()
	a := t.apps[name]
	delete(t.apps, name)
	delete(t.warm, name)
	t.mu.Unlock()
	if a == nil {
		return
	}
	a.mu.Lock()
	t.mu.Lock()
	if a.hotEl != nil {
		t.hot.Remove(a.hotEl)
		a.hotEl = nil
	}
	if a.wsEl != nil {
		t.ws.Remove(a.wsEl)
		a.wsEl = nil
	}
	t.mu.Unlock()
	ws := a.ws
	a.ws = nil
	a.history = nil
	a.gone = true
	a.mu.Unlock()
	forecast.PutWorkspace(ws)
}

// HotApps reports how many apps are materialized (hot tier), aggregated
// across stripes.
func (s *Service) HotApps() int {
	n := 0
	for _, t := range s.tier.stripes {
		t.mu.Lock()
		n += t.hot.Len()
		t.mu.Unlock()
	}
	return n
}

// Evictions reports lifetime hot->warm demotions across stripes.
func (s *Service) Evictions() int64 {
	var n int64
	for _, t := range s.tier.stripes {
		t.mu.Lock()
		n += t.evictions
		t.mu.Unlock()
	}
	return n
}

// TierCounts reports (hot, warm, cold) app counts for the gauges,
// aggregated across stripes. Warm is everything tracked but not
// materialized and not paged. The counts are sampled without a
// cross-structure lock, so a store-backed sample can transiently
// undershoot — a hot app that has no durable state yet (its first
// observation is in flight), or stripes scraped while an app moves.
// Such samples are counted in femux_tier_count_anomalies_total (and
// logged once) instead of being silently clamped away.
func (s *Service) TierCounts() (hot, warm, cold int) {
	warmless := 0
	for _, t := range s.tier.stripes {
		t.mu.Lock()
		hot += t.hot.Len()
		warmless += len(t.warm)
		t.mu.Unlock()
	}
	if s.st == nil {
		return hot, warmless, 0
	}
	cold = s.st.PagedApps()
	warm = s.st.Apps() - cold - hot
	if warm < 0 {
		s.tier.countAnomalies.Add(1)
		s.tier.anomalyLog.Do(func() {
			log.Printf("knative: tier gauge sample inconsistent: store apps %d < cold %d + hot %d (counted in femux_tier_count_anomalies_total; further anomalies not logged)",
				cold+hot+warm, cold, hot)
		})
		warm = 0
	}
	return hot, warm, cold
}

// TierCountAnomalies reports how many TierCounts samples were internally
// inconsistent (negative store-backed warm count).
func (s *Service) TierCountAnomalies() int64 {
	return s.tier.countAnomalies.Load()
}
