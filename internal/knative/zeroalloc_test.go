package knative

import (
	"math/rand"
	"testing"
)

// TestServiceTargetZeroAlloc asserts the serving-path satellite guarantee:
// once an app's workspace is warm and its block classification has
// happened, the observe->target computation — the work femuxd does once
// per app-minute — performs zero heap allocations. Only the computation is
// measured; HTTP decode/encode and the history append are outside the
// kernel contract.
func TestServiceTargetZeroAlloc(t *testing.T) {
	s := NewService(trainTinyModel(t))
	rng := rand.New(rand.NewSource(4))

	a := s.app("alloc-probe")
	a.mu.Lock()
	defer a.mu.Unlock()
	// 45 observations: one completed block (size 30), mid-block afterwards,
	// so the measured calls never cross a block boundary and re-classify.
	for i := 0; i < 45; i++ {
		a.history = append(a.history, 2+rng.Float64())
	}
	a.policy.TargetWS(a.history, 1, a.ws)
	a.policy.TargetWS(a.history, 1, a.ws)
	allocs := testing.AllocsPerRun(50, func() {
		a.policy.TargetWS(a.history, 1, a.ws)
	})
	if allocs != 0 {
		t.Fatalf("steady-state target computation: %v allocs/op, want 0", allocs)
	}
}

// TestDirectProviderMatchesPlainTarget pins the refactor's invariant: the
// workspace-backed serving path returns exactly the targets the allocating
// Target path returns, observation for observation.
func TestDirectProviderMatchesPlainTarget(t *testing.T) {
	m := trainTinyModel(t)
	p := NewDirectProvider(m)
	ref := m.NewAppPolicy(0)
	var hist []float64
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 70; i++ {
		v := 0.0
		if i%10 < 2 {
			v = 2 + rng.Float64()
		}
		hist = append(hist, v)
		got, ok := p.Target("equiv-app", v, 1)
		if !ok {
			t.Fatal("provider refused target")
		}
		if want := ref.Target(hist, 1); got != want {
			t.Fatalf("obs %d: provider target %d, plain Target %d", i, got, want)
		}
	}
}

// TestServiceQuantileTargetZeroAlloc extends the serving-path pin to the
// quantile decision: with -quantile-level set, the per-app-minute
// observe->target computation must stay allocation-free too (the level
// slice comes from the workspace, not the stack, so it cannot escape
// through the forecaster interface).
func TestServiceQuantileTargetZeroAlloc(t *testing.T) {
	s := NewServiceWith(trainTinyModel(t), ServiceOptions{QuantileLevel: 0.95})
	rng := rand.New(rand.NewSource(4))

	a := s.app("alloc-probe-q")
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := 0; i < 45; i++ {
		a.history = append(a.history, 2+rng.Float64())
	}
	a.policy.TargetQuantilesWS(a.history, 1, s.qlevel, a.ws)
	a.policy.TargetQuantilesWS(a.history, 1, s.qlevel, a.ws)
	allocs := testing.AllocsPerRun(50, func() {
		a.policy.TargetQuantilesWS(a.history, 1, s.qlevel, a.ws)
	})
	if allocs != 0 {
		t.Fatalf("steady-state quantile target computation: %v allocs/op, want 0", allocs)
	}
}

// TestQuantileLevelZeroMatchesPointPath pins the knob's default: a
// provider with QuantileLevel 0 must return exactly the targets the
// point path returns — flag-off is bit-for-bit the old behaviour.
func TestQuantileLevelZeroMatchesPointPath(t *testing.T) {
	m := trainTinyModel(t)
	p := NewDirectProvider(m)
	ref := m.NewAppPolicy(0)
	var hist []float64
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 70; i++ {
		v := 0.0
		if i%10 < 2 {
			v = 2 + rng.Float64()
		}
		hist = append(hist, v)
		got, ok := p.Target("equiv-app-q", v, 1)
		if !ok {
			t.Fatal("provider refused target")
		}
		if want := ref.Target(hist, 1); got != want {
			t.Fatalf("obs %d: zero-level target %d, plain Target %d", i, got, want)
		}
	}
}
