package knative

import (
	"math"
	"net/http/httptest"
	"sort"
	"testing"

	"github.com/ubc-cirrus-lab/femux-go/internal/lifecycle"
	"github.com/ubc-cirrus-lab/femux-go/internal/serving"
	"github.com/ubc-cirrus-lab/femux-go/internal/store"
)

// hotApps counts apps resident in the hot tier right now.
func hotApps(s *Service) int {
	return s.HotApps()
}

// TestLifecycleReplicaGateOnService is the regression test for the
// promote-during-catchup hazard on a real Service: while the instance is
// an unpromoted replica, a lifecycle cycle must skip without retraining
// or touching the model — surfaced as a skip metric, not an error — and
// after Promote the very next cycle proceeds normally.
func TestLifecycleReplicaGateOnService(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncNever, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	svc := NewServiceWith(trainTinyModel(t), ServiceOptions{Store: st, Replica: true})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	mgr := lifecycle.New(svc, lifecycle.Config{
		DriftThreshold: 0, // retrain every cycle
		MinImprove:     -100,
		Seed:           7,
	})
	lm := mgr.InstrumentWith(serving.NewRegistry())

	// Replica: serving is 503-gated, and the cycle must skip before any
	// retrain work happens.
	if code := postObserve(t, srv.URL, "gated", 3); code != 503 {
		t.Fatalf("replica observe code = %d, want 503", code)
	}
	res := mgr.RunCycle()
	if res.Outcome != lifecycle.OutcomeSkippedReplica {
		t.Fatalf("replica cycle outcome = %q, want %q", res.Outcome, lifecycle.OutcomeSkippedReplica)
	}
	if res.Error != "" {
		t.Fatalf("replica skip must not error, got %q", res.Error)
	}
	if svc.Reloads() != 0 {
		t.Fatal("replica cycle swapped the model")
	}
	if got := lm.Skips.Value("replica"); got != 1 {
		t.Fatalf("femux_lifecycle_skips_total{reason=replica} = %v, want 1", got)
	}
	if got := lm.Cycles.Value(string(lifecycle.OutcomeSkippedReplica)); got != 1 {
		t.Fatalf("cycles{skipped-replica} = %v, want 1", got)
	}
	if got := lm.Retrains.Sum(); got != 0 {
		t.Fatalf("retrains after skipped cycle = %v, want 0", got)
	}

	// Promote, feed real windows, and the gate lifts: the same manager's
	// next cycle retrains and (with the permissive margin) promotes.
	svc.Promote()
	for _, app := range []string{"a", "b", "c"} {
		for i := 0; i < 120; i++ {
			v := 0.0
			if i%6 < 2 {
				v = 4.0
			}
			if code := postObserve(t, srv.URL, app, v); code != 200 {
				t.Fatalf("post-promote observe code = %d", code)
			}
		}
	}
	res = mgr.RunCycle()
	if res.Outcome != lifecycle.OutcomePromoted {
		t.Fatalf("post-promote cycle outcome = %q (err %q), want %q",
			res.Outcome, res.Error, lifecycle.OutcomePromoted)
	}
	if svc.Reloads() != 1 {
		t.Fatalf("reloads = %d, want 1", svc.Reloads())
	}
	if got := lm.Skips.Sum(); got != 1 {
		t.Fatalf("skips after ungated cycle = %v, want still 1", got)
	}
}

// TestLifecycleSnapshotParity feeds the same observation streams to a
// store-backed and a store-less service and requires both snapshot paths
// to produce identical, name-sorted windows.
func TestLifecycleSnapshotParity(t *testing.T) {
	model := trainTinyModel(t)
	st, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncNever, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	backed := NewServiceWith(model, ServiceOptions{Store: st})
	plain := NewService(model)
	backedSrv := httptest.NewServer(backed.Handler())
	defer backedSrv.Close()
	plainSrv := httptest.NewServer(plain.Handler())
	defer plainSrv.Close()

	// Deliberately unsorted arrival order and unequal window lengths.
	streams := map[string]int{"zeta": 70, "alpha": 45, "mid": 61}
	for app, n := range streams {
		for i := 0; i < n; i++ {
			v := float64(i%7) * 1.25
			if postObserve(t, backedSrv.URL, app, v) != 200 || postObserve(t, plainSrv.URL, app, v) != 200 {
				t.Fatalf("observe failed for %s", app)
			}
		}
	}

	a := backed.LifecycleSnapshot(0, 0.5)
	b := plain.LifecycleSnapshot(0, 0.5)
	if a.Gated || b.Gated {
		t.Fatal("non-replica snapshots must not be gated")
	}
	if len(a.Apps) != len(streams) || len(b.Apps) != len(streams) {
		t.Fatalf("app counts %d/%d, want %d", len(a.Apps), len(b.Apps), len(streams))
	}
	for i := range a.Apps {
		if a.Apps[i].Name != b.Apps[i].Name {
			t.Fatalf("app %d: name %q vs %q", i, a.Apps[i].Name, b.Apps[i].Name)
		}
		if len(a.Apps[i].Window) != len(b.Apps[i].Window) {
			t.Fatalf("%s: window lengths %d vs %d",
				a.Apps[i].Name, len(a.Apps[i].Window), len(b.Apps[i].Window))
		}
		for j := range a.Apps[i].Window {
			if math.Float64bits(a.Apps[i].Window[j]) != math.Float64bits(b.Apps[i].Window[j]) {
				t.Fatalf("%s[%d]: %v vs %v", a.Apps[i].Name, j, a.Apps[i].Window[j], b.Apps[i].Window[j])
			}
		}
	}
	names := make([]string, len(a.Apps))
	for i, w := range a.Apps {
		names[i] = w.Name
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("snapshot apps not sorted: %v", names)
	}

	// maxApps keeps the first names of the sorted order, deterministically.
	capped := backed.LifecycleSnapshot(2, 0)
	if len(capped.Apps) != 2 || capped.Apps[0].Name != "alpha" || capped.Apps[1].Name != "mid" {
		t.Fatalf("capped snapshot = %v", capped.Apps)
	}
}

// TestLifecycleSnapshotLeavesTiersAlone pins the "reading is not
// serving" contract: snapshotting a tiered fleet must return every app's
// window without promoting cold apps into the hot tier.
func TestLifecycleSnapshotLeavesTiersAlone(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{
		Sync: store.SyncNever, CompactEvery: -1,
		InlineBudget: 3, // force most of the fleet out of warm
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	svc := NewServiceWith(trainTinyModel(t), ServiceOptions{
		Store: st, MaxHotApps: 2, MaxWorkspaces: 1,
	})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	apps := []string{"t0", "t1", "t2", "t3", "t4", "t5"}
	for _, app := range apps {
		for i := 0; i < 40; i++ {
			if postObserve(t, srv.URL, app, float64(i%5)) != 200 {
				t.Fatalf("observe failed for %s", app)
			}
		}
	}
	before := hotApps(svc)
	if before > 2 {
		t.Fatalf("hot tier holds %d apps despite MaxHotApps 2", before)
	}
	snap := svc.LifecycleSnapshot(0, 0)
	if len(snap.Apps) != len(apps) {
		t.Fatalf("snapshot returned %d apps, want %d", len(snap.Apps), len(apps))
	}
	for _, w := range snap.Apps {
		if len(w.Window) != 40 {
			t.Fatalf("%s: window length %d, want 40", w.Name, len(w.Window))
		}
	}
	if after := hotApps(svc); after != before {
		t.Fatalf("snapshot changed hot tier residency: %d -> %d", before, after)
	}
}

// TestDriftScoreGauge checks the serving-path wiring end to end: a
// regime change on one app must surface as a positive femux_drift_score
// in the /metrics scrape, equal to the service's own summary.
func TestDriftScoreGauge(t *testing.T) {
	svc, _, srv := newInstrumentedServer(t)

	// tinyModel's BlockSize is 30: one reference block near 2, then a
	// block at 20x the level completes and the score jumps.
	for i := 0; i < 30; i++ {
		if postObserve(t, srv.URL, "shifty", 2) != 200 {
			t.Fatal("observe failed")
		}
	}
	resp, body := doReq(t, "GET", srv.URL+"/metrics", "")
	if resp.StatusCode != 200 {
		t.Fatalf("metrics scrape: %d", resp.StatusCode)
	}
	if got := sumMetric(body, "femux_drift_score"); got != 0 {
		t.Fatalf("drift score %v before two completed blocks, want 0", got)
	}

	for i := 0; i < 30; i++ {
		if postObserve(t, srv.URL, "shifty", 40) != 200 {
			t.Fatal("observe failed")
		}
	}
	_, body = doReq(t, "GET", srv.URL+"/metrics", "")
	got := sumMetric(body, "femux_drift_score")
	if got <= 1 {
		t.Fatalf("drift score after regime change = %v, want > 1", got)
	}
	if want := svc.MaxDriftScore(); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("gauge %v != MaxDriftScore %v", got, want)
	}
}
