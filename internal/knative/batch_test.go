package knative

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/ubc-cirrus-lab/femux-go/internal/serving"
	"github.com/ubc-cirrus-lab/femux-go/internal/store"
)

// postBatchJSON posts raw bytes to the batch endpoint and decodes a 200
// reply (the caller checks the status for error paths).
func postBatchJSON(t testing.TB, url string, body []byte) (*http.Response, BatchObserveResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/observe/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out BatchObserveResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding batch response: %v", err)
		}
	}
	return resp, out
}

func marshalBatch(t testing.TB, obs ...BatchObservation) []byte {
	t.Helper()
	b, err := json.Marshal(BatchObserveRequest{Observations: obs})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// scrapeSum renders the registry and sums one metric family, so tests can
// assert counters from the same surface operators scrape.
func scrapeSum(t testing.TB, reg *serving.Registry, name string) float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var sum float64
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if len(rest) == 0 || (rest[0] != '{' && rest[0] != ' ') {
			continue
		}
		// Label values may contain spaces, so split at the closing brace
		// (the sample value is a bare number, so the last '}' is
		// structural), not on whitespace.
		val := rest
		if i := strings.LastIndexByte(rest, '}'); i >= 0 {
			val = rest[i+1:]
		}
		var v float64
		if _, err := fmt.Sscanf(strings.TrimSpace(val), "%g", &v); err == nil {
			sum += v
		}
	}
	return sum
}

func TestBatchObserveHappyPath(t *testing.T) {
	svc, reg, srv := newInstrumentedServer(t)
	const rounds = 3
	apps := []string{"alpha", "beta", "gamma"}
	for round := 1; round <= rounds; round++ {
		obs := make([]BatchObservation, len(apps))
		for i, app := range apps {
			obs[i] = BatchObservation{App: app, Concurrency: float64(i + round)}
		}
		resp, out := postBatchJSON(t, srv.URL, marshalBatch(t, obs...))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status = %d", round, resp.StatusCode)
		}
		if out.Accepted != len(apps) || out.Rejected != 0 {
			t.Fatalf("round %d: accepted=%d rejected=%d", round, out.Accepted, out.Rejected)
		}
		if len(out.Results) != len(apps) {
			t.Fatalf("round %d: %d results", round, len(out.Results))
		}
		for i, res := range out.Results {
			if res.App != apps[i] {
				t.Errorf("round %d item %d: app %q, want %q (order lost)", round, i, res.App, apps[i])
			}
			if res.Error != "" || res.History != round || res.Forecaster == "" || res.Target < 0 {
				t.Errorf("round %d item %d: %+v", round, i, res)
			}
		}
	}
	if got := svc.Apps(); got != len(apps) {
		t.Errorf("apps tracked = %d, want %d", got, len(apps))
	}
	if got := scrapeSum(t, reg, "femux_observations_total"); got != float64(rounds*len(apps)) {
		t.Errorf("femux_observations_total = %g, want %d", got, rounds*len(apps))
	}
	if got := scrapeSum(t, reg, "femux_batch_requests_total"); got != rounds {
		t.Errorf("femux_batch_requests_total = %g, want %d", got, rounds)
	}
}

func TestBatchObservePartialFailure(t *testing.T) {
	_, reg, srv := newInstrumentedServer(t)
	resp, out := postBatchJSON(t, srv.URL, marshalBatch(t,
		BatchObservation{App: "good-1", Concurrency: 2},
		BatchObservation{App: "", Concurrency: 1},
		BatchObservation{App: "bad", Concurrency: -3},
		BatchObservation{App: "good-2", Concurrency: 0.5},
	))
	// Partial failure is HTTP 200 with per-item errors — the contract
	// femux-load's exit code depends on.
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 with per-item errors", resp.StatusCode)
	}
	if out.Accepted != 2 || out.Rejected != 2 {
		t.Fatalf("accepted=%d rejected=%d, want 2/2", out.Accepted, out.Rejected)
	}
	for _, i := range []int{1, 2} {
		if out.Results[i].Error == "" {
			t.Errorf("item %d: rejected item has no error: %+v", i, out.Results[i])
		}
	}
	for _, i := range []int{0, 3} {
		if out.Results[i].Error != "" || out.Results[i].History != 1 {
			t.Errorf("item %d: valid item not applied: %+v", i, out.Results[i])
		}
	}
	if got := scrapeSum(t, reg, "femux_observations_total"); got != 2 {
		t.Errorf("femux_observations_total = %g, want 2", got)
	}
}

func TestBatchObserveErrorPaths(t *testing.T) {
	_, reg, srv := newInstrumentedServer(t)

	tooMany := make([]BatchObservation, maxBatchItems+1)
	for i := range tooMany {
		tooMany[i] = BatchObservation{App: "a", Concurrency: 1}
	}
	cases := []struct {
		name   string
		method string
		body   []byte
		want   int
	}{
		{"wrong method", "GET", nil, http.StatusMethodNotAllowed},
		{"malformed json", "POST", []byte(`{"observations": [nope`), http.StatusBadRequest},
		{"wrong type", "POST", []byte(`{"observations": "lots"}`), http.StatusBadRequest},
		{"empty batch", "POST", []byte(`{"observations": []}`), http.StatusBadRequest},
		{"missing field", "POST", []byte(`{}`), http.StatusBadRequest},
		{"too many items", "POST", marshalBatch(t, tooMany...), http.StatusBadRequest},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, srv.URL+"/v1/observe/batch", bytes.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status = %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	// None of the failed requests may move the observation counters.
	if got := scrapeSum(t, reg, "femux_observations_total"); got != 0 {
		t.Errorf("femux_observations_total = %g after only failed batches", got)
	}
	if got := scrapeSum(t, reg, "femux_batch_requests_total"); got != 0 {
		t.Errorf("femux_batch_requests_total = %g after only failed batches", got)
	}
}

// TestBatchObserveGroupCommit proves the WAL group-commit property the
// batch path exists for: one fsync per batch request, not per
// observation.
func TestBatchObserveGroupCommit(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	svc := NewServiceWith(trainTinyModel(t), ServiceOptions{Store: st})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	const batches, perBatch = 4, 25
	for b := 0; b < batches; b++ {
		obs := make([]BatchObservation, perBatch)
		for i := range obs {
			obs[i] = BatchObservation{App: fmt.Sprintf("gc-%d", i), Concurrency: float64(b)}
		}
		resp, out := postBatchJSON(t, srv.URL, marshalBatch(t, obs...))
		if resp.StatusCode != http.StatusOK || out.Accepted != perBatch {
			t.Fatalf("batch %d: status=%d accepted=%d", b, resp.StatusCode, out.Accepted)
		}
	}
	stats := st.Stats()
	if stats.Observations != batches*perBatch {
		t.Errorf("durable observations = %d, want %d", stats.Observations, batches*perBatch)
	}
	if stats.Fsyncs != batches {
		t.Errorf("fsyncs = %d, want %d (one per batch, not %d per observation)",
			stats.Fsyncs, batches, batches*perBatch)
	}
}

// TestServiceRestartBitIdenticalForecasts is the in-process zero-state-
// loss oracle: a durable service is fed a mixed single/batch workload,
// torn down, and rebuilt from the same data directory; every target and
// forecast it serves afterwards must be bit-identical to an
// uninterrupted service that saw the same stream.
func TestServiceRestartBitIdenticalForecasts(t *testing.T) {
	model := trainTinyModel(t)
	dir := t.TempDir()
	apps := []string{"pay", "auth", "feed", "img", "cron"}

	feed := func(srvURL string, from, to int) {
		for m := from; m < to; m++ {
			// Odd minutes arrive as singles, even minutes as one batch.
			if m%2 == 1 {
				for i, app := range apps {
					body := fmt.Sprintf(`{"concurrency": %g}`, float64((m+i)%6)+0.25)
					resp, err := http.Post(srvURL+"/v1/apps/"+app+"/observe",
						"application/json", strings.NewReader(body))
					if err != nil {
						t.Fatal(err)
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Fatalf("observe minute %d: %d", m, resp.StatusCode)
					}
				}
				continue
			}
			obs := make([]BatchObservation, len(apps))
			for i, app := range apps {
				obs[i] = BatchObservation{App: app, Concurrency: float64((m+i)%6) + 0.25}
			}
			resp, out := postBatchJSON(t, srvURL, marshalBatch(t, obs...))
			if resp.StatusCode != http.StatusOK || out.Rejected != 0 {
				t.Fatalf("batch minute %d: status=%d rejected=%d", m, resp.StatusCode, out.Rejected)
			}
		}
	}

	// Uninterrupted control: in-memory service over the full stream.
	ctl := NewService(model)
	ctlSrv := httptest.NewServer(ctl.Handler())
	defer ctlSrv.Close()
	feed(ctlSrv.URL, 0, 80)

	// Durable service, killed (store closed, process state dropped) at
	// minute 40 and restarted from the same directory.
	st1, err := store.Open(dir, store.Options{Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	svc1 := NewServiceWith(model, ServiceOptions{Store: st1})
	srv1 := httptest.NewServer(svc1.Handler())
	feed(srv1.URL, 0, 40)
	srv1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	svc2 := NewServiceWith(model, ServiceOptions{Store: st2})
	if svc2.Restored() != len(apps) {
		t.Fatalf("restored %d apps, want %d", svc2.Restored(), len(apps))
	}
	srv2 := httptest.NewServer(svc2.Handler())
	defer srv2.Close()
	feed(srv2.URL, 40, 80)

	for _, app := range apps {
		a, b := fetchDecision(t, ctlSrv.URL, app), fetchDecision(t, srv2.URL, app)
		if a.target.History != b.target.History {
			t.Errorf("%s: history %d (control) != %d (restarted)", app, a.target.History, b.target.History)
		}
		if a.target.Target != b.target.Target || a.target.Forecaster != b.target.Forecaster {
			t.Errorf("%s: target %+v != %+v", app, a.target, b.target)
		}
		if len(a.forecast.Values) != len(b.forecast.Values) {
			t.Fatalf("%s: forecast lengths %d != %d", app, len(a.forecast.Values), len(b.forecast.Values))
		}
		for i := range a.forecast.Values {
			if math.Float64bits(a.forecast.Values[i]) != math.Float64bits(b.forecast.Values[i]) {
				t.Errorf("%s: forecast[%d] %v != %v (not bit-identical)",
					app, i, a.forecast.Values[i], b.forecast.Values[i])
			}
		}
	}
}

type decision struct {
	target   TargetResponse
	forecast ForecastResponse
}

func fetchDecision(t testing.TB, srvURL, app string) decision {
	t.Helper()
	var d decision
	resp, err := http.Get(srvURL + "/v1/apps/" + app + "/target?concurrency=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&d.target); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(srvURL + "/v1/apps/" + app + "/forecast?horizon=6")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&d.forecast); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return d
}

// FuzzBatchObserve hammers the batch endpoint with arbitrary bodies. The
// invariants: the server never panics, answers only 200/400/413, and the
// observation counter moves in lockstep with the Accepted counts it
// acknowledged — a malformed body changes nothing.
func FuzzBatchObserve(f *testing.F) {
	f.Add([]byte(`{"observations":[{"app":"a","concurrency":1.5}]}`))
	f.Add([]byte(`{"observations":[]}`))
	f.Add([]byte(`{"observations":[{"app":"","concurrency":1}]}`))
	f.Add([]byte(`{"observations":[{"app":"x","concurrency":-2}]}`))
	f.Add([]byte(`{"observations": [nope`))
	f.Add([]byte(`{}`))
	f.Add([]byte{0x00, 0xff, 0x13, 0x37})
	f.Add([]byte(`{"observations":[{"app":"a","concurrency":1e308},{"app":"b","concurrency":0}]}`))

	svc := NewService(trainTinyModel(f))
	reg := serving.NewRegistry()
	svc.InstrumentWith(reg)
	handler := svc.Handler()

	// The handler is driven in-process (no real sockets): panics surface
	// in the test instead of being swallowed by the HTTP server goroutine,
	// and no transport flake can desync the accepted-count oracle.
	accepted := 0
	f.Fuzz(func(t *testing.T, body []byte) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/observe/batch", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		handler.ServeHTTP(rec, req)
		resp := rec.Result()
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			var out BatchObserveResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatalf("200 with undecodable body: %v", err)
			}
			if out.Accepted+out.Rejected != len(out.Results) {
				t.Fatalf("accounting broken: accepted=%d rejected=%d results=%d",
					out.Accepted, out.Rejected, len(out.Results))
			}
			accepted += out.Accepted
		case http.StatusBadRequest, http.StatusRequestEntityTooLarge:
			// rejected wholesale; counters must not move (checked below)
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
		if got := scrapeSum(t, reg, "femux_observations_total"); got != float64(accepted) {
			t.Fatalf("femux_observations_total = %g, want %d (exactly the acknowledged items)",
				got, accepted)
		}
	})
}

// TestBatchObserveStoreFailure: when the WAL cannot commit, the batch
// must fail as a whole with 500 and apply nothing in memory — an
// unacknowledged observation must not influence forecasts.
func TestBatchObserveStoreFailure(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	svc := NewServiceWith(trainTinyModel(t), ServiceOptions{Store: st})
	reg := serving.NewRegistry()
	svc.InstrumentWith(reg)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	if err := st.Close(); err != nil { // closed store: every append fails
		t.Fatal(err)
	}
	resp, _ := postBatchJSON(t, srv.URL, marshalBatch(t,
		BatchObservation{App: "doomed", Concurrency: 1}))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("batch against closed store = %d, want 500", resp.StatusCode)
	}
	if got := scrapeSum(t, reg, "femux_observations_total"); got != 0 {
		t.Errorf("observations counted despite failed commit: %g", got)
	}
	if got := scrapeSum(t, reg, "femux_store_errors_total"); got == 0 {
		t.Error("femux_store_errors_total not incremented")
	}
	if svc.Apps() != 0 {
		t.Errorf("app state created despite failed commit: %d apps", svc.Apps())
	}
}
