package femux

import (
	"sync"

	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
	"github.com/ubc-cirrus-lab/femux-go/internal/parallel"
	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
)

// AppPolicy is the online, per-application FeMux instance: it tracks block
// completion, re-classifies on each completed block, and forecasts with the
// currently assigned forecaster. One AppPolicy serves exactly one
// application (matching the paper's one-thread-per-app deployment, §5.2);
// it implements sim.Policy for simulator integration and is safe for
// concurrent use.
type AppPolicy struct {
	model   *Model
	execSec float64

	mu         sync.Mutex
	current    forecast.Forecaster
	blocksSeen int
	switches   int
	used       map[string]bool
}

// NewAppPolicy returns a FeMux policy for one application. execSec supplies
// the execution-time feature when the model was trained with it.
func (m *Model) NewAppPolicy(execSec float64) *AppPolicy {
	return &AppPolicy{
		model:   m,
		execSec: execSec,
		current: m.DefaultForecaster(),
		used:    map[string]bool{m.DefaultForecaster().Name(): true},
	}
}

// Name implements sim.Policy.
func (p *AppPolicy) Name() string { return "femux-" + p.model.cfg.Metric.Name() }

// Target implements sim.Policy: it re-classifies when a new block has
// completed, then forecasts the next horizon with the assigned forecaster.
func (p *AppPolicy) Target(history []float64, unitConcurrency int) int {
	return p.TargetWS(history, unitConcurrency, nil)
}

// TargetWS implements sim.WorkspaceTargeter. The workspace (not the policy)
// carries all forecast scratch state, so concurrent TargetWS calls remain
// safe as long as each caller supplies its own workspace — femuxd keeps one
// per served app under the app lock.
func (p *AppPolicy) TargetWS(history []float64, unitConcurrency int, ws *forecast.Workspace) int {
	fc := p.currentFor(history)
	return windowedPolicy{fc: fc, window: p.model.cfg.Window, horizon: p.model.cfg.Horizon}.
		TargetWS(history, unitConcurrency, ws)
}

// TargetQuantilesWS implements sim.QuantileTargeter: the same block
// bookkeeping and forecaster routing as TargetWS, but provisioning for
// the level-quantile of the forecast instead of its point peak. Level
// <= 0 reproduces TargetWS exactly, so a zero ServiceOptions/flag value
// is always safe.
func (p *AppPolicy) TargetQuantilesWS(history []float64, unitConcurrency int, level float64, ws *forecast.Workspace) int {
	fc := p.currentFor(history)
	return windowedPolicy{fc: fc, window: p.model.cfg.Window, horizon: p.model.cfg.Horizon}.
		TargetQuantilesWS(history, unitConcurrency, level, ws)
}

// currentFor re-classifies when a new block has completed and returns
// the forecaster assigned to this app right now — the shared front half
// of every Target variant.
func (p *AppPolicy) currentFor(history []float64) forecast.Forecaster {
	p.mu.Lock()
	bs := p.model.cfg.BlockSize
	completed := len(history) / bs
	if completed > p.blocksSeen {
		execFeat := 0.0
		if hasExecFeature(p.model.cfg.Features) {
			execFeat = p.execSec
		}
		block := history[(completed-1)*bs : completed*bs]
		vec := p.model.extractor.Extract(block, execFeat)
		group := p.model.Classify(vec)
		next := p.model.ForecasterFor(group)
		if next.Name() != p.current.Name() {
			p.switches++
		}
		p.current = next
		p.used[next.Name()] = true
		p.blocksSeen = completed
	}
	fc := p.current
	p.mu.Unlock()
	return fc
}

// Forecast predicts the next horizon intervals with the currently assigned
// forecaster (used by the Knative integration's REST path).
func (p *AppPolicy) Forecast(history []float64, horizon int) []float64 {
	return p.ForecastWS(history, horizon, nil, nil)
}

// ForecastWS is Forecast with caller-owned destination and workspace, the
// allocation-free form used by the serving path. dst and ws may be nil.
func (p *AppPolicy) ForecastWS(history []float64, horizon int, dst []float64, ws *forecast.Workspace) []float64 {
	p.mu.Lock()
	fc := p.current
	w := p.model.cfg.Window
	p.mu.Unlock()
	if w > len(history) {
		w = len(history)
	}
	return forecast.Into(fc, history[len(history)-w:], horizon, dst, ws)
}

// ForecastQuantilesWS emits level-major quantile curves
// (len(levels)*horizon values, dst[q*horizon+t]) from the currently
// assigned forecaster over the windowed history — the serving path
// behind /v1/forecast?quantiles=. dst and ws may be nil.
func (p *AppPolicy) ForecastQuantilesWS(history []float64, horizon int, levels, dst []float64, ws *forecast.Workspace) []float64 {
	p.mu.Lock()
	fc := p.current
	w := p.model.cfg.Window
	p.mu.Unlock()
	if w > len(history) {
		w = len(history)
	}
	return forecast.QuantilesInto(fc, history[len(history)-w:], horizon, levels, dst, ws)
}

// CurrentForecaster returns the name of the forecaster in use.
func (p *AppPolicy) CurrentForecaster() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.current.Name()
}

// Switches returns how many times the policy changed forecasters.
func (p *AppPolicy) Switches() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.switches
}

// ForecastersUsed returns the distinct forecasters this app has used.
func (p *AppPolicy) ForecastersUsed() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.used)
}

// EvalResult aggregates a fleet evaluation.
type EvalResult struct {
	Samples []rum.Sample // per app, input order
	RUM     float64      // per-app sum under the model's metric
	// Switching diagnostics (Fig 17).
	AppsSwitched     int // apps that used more than one forecaster
	AppsManySwitched int // apps that used four or more forecasters
}

// Evaluate runs the trained model over test apps through the concurrency
// simulator and scores the result under the model's metric. Apps are
// simulated concurrently (bounded by the model's Workers setting); each
// app's simulation is independent, so results match the serial order. When
// the model's config carries a cache, per-app simulations are memoized
// under a fingerprint of the trained model (see cache.go).
func Evaluate(m *Model, apps []TrainApp) EvalResult {
	return EvaluateQuantile(m, apps, 0)
}

// EvaluateQuantile is Evaluate with the pod-conversion policy
// provisioning for the given forecast quantile level instead of the
// point forecast (the RUM sweep behind the cold-start-vs-waste
// frontier). A level <= 0 reproduces Evaluate exactly, including its
// cache keys.
func EvaluateQuantile(m *Model, apps []TrainApp, level float64) EvalResult {
	res := EvalResult{Samples: make([]rum.Sample, len(apps))}
	used := make([]int, len(apps))
	fp, fpOK := m.evalFingerprint()
	parallel.ForEach(parallel.Workers(m.cfg.Workers), len(apps), func(i int) {
		out := cachedEvalApp(m.cfg.Cache, fp, fpOK, m, apps[i], level)
		res.Samples[i] = out.Sample
		used[i] = out.Used
	})
	for _, u := range used {
		if u > 1 {
			res.AppsSwitched++
		}
		if u >= 4 {
			res.AppsManySwitched++
		}
	}
	res.RUM = rum.EvalPerApp(m.cfg.Metric, res.Samples)
	return res
}

// EvaluateSingle runs one fixed forecaster over the same apps, for the
// FeMux-vs-individual-forecasters study (Fig 17). Like Evaluate, apps are
// simulated concurrently under cfg.Workers and per-app results are
// memoized through cfg.Cache.
func EvaluateSingle(fc forecast.Forecaster, apps []TrainApp, cfg Config) EvalResult {
	res := EvalResult{Samples: make([]rum.Sample, len(apps))}
	parallel.ForEach(parallel.Workers(cfg.Workers), len(apps), func(i int) {
		res.Samples[i] = cachedEvalSingle(cfg.Cache, fc, apps[i], cfg)
	})
	res.RUM = rum.EvalPerApp(cfg.Metric, res.Samples)
	return res
}

// OneStepMAE computes the mean absolute error of one-step-ahead forecasts
// over a series, the statistical accuracy metric contrasted with RUM in
// §4.2.1. window bounds the forecaster's input.
func OneStepMAE(series []float64, fc forecast.Forecaster, window, warmup int) float64 {
	if warmup < 1 {
		warmup = 1
	}
	if warmup >= len(series) {
		return 0
	}
	var sum float64
	var n int
	ws := forecast.NewWorkspace()
	for t := warmup; t < len(series); t++ {
		lo := t - window
		if lo < 0 {
			lo = 0
		}
		pred := forecast.Into(fc, series[lo:t], 1, ws.Out(1), ws)[0]
		d := pred - series[t]
		if d < 0 {
			d = -d
		}
		sum += d
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
