package femux

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
	"github.com/ubc-cirrus-lab/femux-go/internal/timeseries"
)

// testConfig returns a laptop-scale configuration: 72-minute blocks over
// minute-interval series.
func testConfig() Config {
	cfg := DefaultConfig(rum.Default())
	cfg.BlockSize = 72
	cfg.Window = 60
	cfg.K = 4
	cfg.Forecasters = []forecast.Forecaster{
		forecast.NewAR(10),
		forecast.NewFFT(10),
		forecast.NewExpSmoothing(),
		forecast.NewMarkovChain(4),
	}
	return cfg
}

// mixedFleet builds apps with distinct patterns: periodic (FFT's home
// turf), smooth AR-style, and bursty on/off traffic.
func mixedFleet(seed int64, n, minutes int) []TrainApp {
	apps := make([]TrainApp, 0, n)
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		vals := make([]float64, minutes)
		switch i % 3 {
		case 0: // periodic bursts
			period := 12 + (i%4)*6
			for t := range vals {
				if t%period < 3 {
					vals[t] = 4 + rng.Float64()
				}
			}
		case 1: // smooth autoregressive
			v := 2.0
			for t := range vals {
				v = 0.8*v + 0.4 + 0.3*rng.NormFloat64()
				if v < 0 {
					v = 0
				}
				vals[t] = v
			}
		default: // bursty on/off
			on := false
			for t := range vals {
				if rng.Float64() < 0.1 {
					on = !on
				}
				if on {
					vals[t] = 3 + 2*rng.Float64()
				}
			}
		}
		invs := make([]float64, minutes)
		for t := range invs {
			invs[t] = vals[t] * 6 // ~rate given 10s execs
		}
		apps = append(apps, TrainApp{
			Name:        "app",
			Demand:      timeseries.New(time.Minute, vals),
			Invocations: invs,
			ExecSec:     0.2,
			MemoryGB:    0.15,
		})
	}
	return apps
}

func TestTrainErrors(t *testing.T) {
	cfg := testConfig()
	if _, err := Train(nil, cfg); err == nil {
		t.Error("no apps should error")
	}
	bad := cfg
	bad.BlockSize = 2
	if _, err := Train(mixedFleet(1, 3, 144), bad); err == nil {
		t.Error("tiny block size should error")
	}
	bad = cfg
	bad.Forecasters = nil
	if _, err := Train(mixedFleet(1, 3, 144), bad); err == nil {
		t.Error("empty forecaster set should error")
	}
	bad = cfg
	bad.Classifier = "svm"
	if _, err := Train(mixedFleet(1, 3, 144), bad); err == nil {
		t.Error("unknown classifier should error")
	}
	// Apps shorter than a block -> no blocks.
	short := []TrainApp{{Demand: timeseries.New(time.Minute, make([]float64, 10))}}
	if _, err := Train(short, cfg); err == nil {
		t.Error("no completed blocks should error")
	}
}

func TestTrainProducesModel(t *testing.T) {
	apps := mixedFleet(2, 9, 288) // 4 blocks each
	m, err := Train(apps, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Diag.Blocks != 9*4 {
		t.Errorf("blocks = %d, want 36", m.Diag.Blocks)
	}
	if m.Diag.Clusters < 1 {
		t.Error("no clusters")
	}
	if m.Diag.TrainTime <= 0 {
		t.Error("train time missing")
	}
	if m.DefaultForecaster() == nil {
		t.Fatal("no default forecaster")
	}
	// All assigned forecasters come from the candidate set.
	names := map[string]bool{}
	for _, fc := range m.cfg.Forecasters {
		names[fc.Name()] = true
	}
	for g, n := range m.Diag.GroupForecaster {
		if !names[n] {
			t.Errorf("group %d assigned unknown forecaster %q", g, n)
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	apps := mixedFleet(3, 6, 216)
	a, err := Train(apps, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(apps, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.defaultFC != b.defaultFC {
		t.Error("default forecaster differs across runs")
	}
	for i := range a.perGroup {
		if a.perGroup[i] != b.perGroup[i] {
			t.Error("group assignment differs across runs")
			break
		}
	}
}

func TestFeMuxCompetitiveWithBestSingleForecaster(t *testing.T) {
	// The multiplexing claim (Fig 17) at miniature scale: on a mixed fleet
	// FeMux must at least be competitive with the best single forecaster,
	// and strictly beat the worst.
	cfg := testConfig()
	train := mixedFleet(5, 12, 288)
	test := mixedFleet(97, 12, 288)
	m, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fmRes := Evaluate(m, test)

	best, worst := math.Inf(1), 0.0
	for _, fc := range cfg.Forecasters {
		r := EvaluateSingle(fc, test, cfg)
		if r.RUM < best {
			best = r.RUM
		}
		if r.RUM > worst {
			worst = r.RUM
		}
	}
	if fmRes.RUM > best*1.15 {
		t.Errorf("FeMux RUM %v should be within 15%% of best single %v", fmRes.RUM, best)
	}
	if fmRes.RUM >= worst {
		t.Errorf("FeMux RUM %v should beat worst single %v", fmRes.RUM, worst)
	}
}

func TestFeMuxSwitchesForecasters(t *testing.T) {
	cfg := testConfig()
	train := mixedFleet(7, 12, 288)
	m, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// An app whose pattern changes mid-trace: periodic then bursty noise.
	rng := rand.New(rand.NewSource(42))
	vals := make([]float64, 288)
	for t := 0; t < 144; t++ {
		if t%12 < 3 {
			vals[t] = 5
		}
	}
	for t := 144; t < 288; t++ {
		if rng.Float64() < 0.3 {
			vals[t] = 4 * rng.Float64()
		}
	}
	p := m.NewAppPolicy(0.2)
	for t := 1; t <= len(vals); t++ {
		p.Target(vals[:t], 1)
	}
	if p.ForecastersUsed() < 1 {
		t.Error("no forecaster recorded")
	}
	// Blocks completed: 4; classification must have run.
	if got := pBlocksSeen(p); got != 4 {
		t.Errorf("blocks seen = %d, want 4", got)
	}
}

func pBlocksSeen(p *AppPolicy) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blocksSeen
}

func TestAppPolicyForecastAndName(t *testing.T) {
	m, err := Train(mixedFleet(9, 6, 144), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := m.NewAppPolicy(0)
	out := p.Forecast([]float64{1, 2, 3, 2, 1, 2, 3}, 3)
	if len(out) != 3 {
		t.Fatalf("forecast len = %d", len(out))
	}
	for _, v := range out {
		if v < 0 || math.IsNaN(v) {
			t.Errorf("bad forecast %v", v)
		}
	}
	if p.Name() != "femux-rum-default" {
		t.Errorf("name = %q", p.Name())
	}
	if p.CurrentForecaster() == "" {
		t.Error("no current forecaster")
	}
}

func TestSupervisedClassifiers(t *testing.T) {
	train := mixedFleet(11, 9, 216)
	test := mixedFleet(13, 6, 216)
	for _, clf := range []string{"tree", "forest"} {
		cfg := testConfig()
		cfg.Classifier = clf
		m, err := Train(train, cfg)
		if err != nil {
			t.Fatalf("%s: %v", clf, err)
		}
		res := Evaluate(m, test)
		if len(res.Samples) != len(test) {
			t.Fatalf("%s: samples = %d", clf, len(res.Samples))
		}
		if math.IsNaN(res.RUM) || res.RUM < 0 {
			t.Errorf("%s: RUM = %v", clf, res.RUM)
		}
	}
}

func TestKMeansBeatsOrMatchesSupervised(t *testing.T) {
	// §4.3.4's claim, directionally: clustering should not lose badly to
	// the supervised baselines on a held-out fleet.
	train := mixedFleet(15, 12, 288)
	test := mixedFleet(17, 12, 288)

	kcfg := testConfig()
	km, err := Train(train, kcfg)
	if err != nil {
		t.Fatal(err)
	}
	kRUM := Evaluate(km, test).RUM

	tcfg := testConfig()
	tcfg.Classifier = "tree"
	tm, err := Train(train, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	tRUM := Evaluate(tm, test).RUM

	if kRUM > tRUM*1.3 {
		t.Errorf("kmeans RUM %v should not lose badly to tree %v", kRUM, tRUM)
	}
}

func TestEvaluateHonorsPerAppOverrides(t *testing.T) {
	cfg := testConfig()
	m, err := Train(mixedFleet(19, 6, 144), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// High concurrency: the same demand needs fewer units, so allocation
	// must shrink.
	apps := mixedFleet(21, 3, 144)
	low := Evaluate(m, apps)
	for i := range apps {
		apps[i].UnitConcurrency = 100
	}
	high := Evaluate(m, apps)
	if alloc(high.Samples) >= alloc(low.Samples) {
		t.Errorf("high concurrency should allocate less: %v vs %v",
			alloc(high.Samples), alloc(low.Samples))
	}
}

func alloc(ss []rum.Sample) float64 {
	var s float64
	for _, x := range ss {
		s += x.AllocatedGBSec
	}
	return s
}

func TestOneStepMAE(t *testing.T) {
	// Naive forecaster on a known series: MAE = mean |x_t - x_{t-1}|.
	series := []float64{1, 3, 2, 5}
	got := OneStepMAE(series, forecast.Naive{}, 10, 1)
	want := (math.Abs(3.0-1) + math.Abs(2.0-3) + math.Abs(5.0-2)) / 3
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MAE = %v, want %v", got, want)
	}
	if OneStepMAE([]float64{1}, forecast.Naive{}, 10, 1) != 0 {
		t.Error("degenerate MAE should be 0")
	}
}

func TestExecAwareTrainingUsesExecFeature(t *testing.T) {
	cfg := testConfig()
	cfg.Metric = rum.DefaultExecAware()
	cfg.Features = append(append([]string(nil), cfg.Features...), "exectime")
	apps := mixedFleet(23, 9, 216)
	// Give the classes very different exec times.
	for i := range apps {
		apps[i].ExecSec = []float64{0.05, 1, 10}[i%3]
	}
	m, err := Train(apps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := Evaluate(m, apps)
	if math.IsNaN(res.RUM) {
		t.Error("exec-aware RUM is NaN")
	}
}

func BenchmarkTrainSmallFleet(b *testing.B) {
	apps := mixedFleet(1, 6, 144)
	cfg := testConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(apps, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppPolicyTarget(b *testing.B) {
	m, err := Train(mixedFleet(1, 6, 144), testConfig())
	if err != nil {
		b.Fatal(err)
	}
	p := m.NewAppPolicy(0.2)
	hist := make([]float64, 120)
	for i := range hist {
		hist[i] = float64(i % 7)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Target(hist, 1)
	}
}
