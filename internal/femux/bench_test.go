package femux

import (
	"testing"

	"github.com/ubc-cirrus-lab/femux-go/internal/memo"
)

// BenchmarkTrainCached measures what the training cache buys: "uncached"
// is the plain pipeline, "cold" adds cache bookkeeping on an empty cache
// (the overhead case), and "warm" retrains against a fully populated cache
// (the steady state of a sweep, where every simulation and extraction is a
// hit and only clustering and assignment still run).
func BenchmarkTrainCached(b *testing.B) {
	apps := mixedFleet(71, 8, 288)
	train := func(b *testing.B, c *memo.Cache) {
		cfg := testConfig()
		cfg.Cache = c
		if _, err := Train(apps, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			train(b, nil)
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			train(b, memo.New())
		}
	})
	b.Run("warm", func(b *testing.B) {
		cache := memo.New()
		train(b, cache) // prime
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			train(b, cache)
		}
	})
}

// BenchmarkEvaluate measures a fleet evaluation with and without a warm
// cache.
func BenchmarkEvaluate(b *testing.B) {
	apps := mixedFleet(71, 8, 288)
	test := mixedFleet(73, 6, 288)
	cfg := testConfig()
	m, err := Train(apps, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Evaluate(m, test)
		}
	})
	b.Run("warm", func(b *testing.B) {
		cachedCfg := testConfig()
		cachedCfg.Cache = memo.New()
		mc, err := Train(apps, cachedCfg)
		if err != nil {
			b.Fatal(err)
		}
		Evaluate(mc, test) // prime
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Evaluate(mc, test)
		}
	})
}
