package femux

import (
	"github.com/ubc-cirrus-lab/femux-go/internal/features"
	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
	"github.com/ubc-cirrus-lab/femux-go/internal/memo"
	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
	"github.com/ubc-cirrus-lab/femux-go/internal/sim"
)

// Content-addressed memoization of the offline pipeline's pure stages.
//
// Four computations are cached, each under its own key domain:
//
//   - per-(app, forecaster) block RUM samples (training sweep 1). The RUM
//     metric is deliberately NOT part of the key: sweep 1 produces raw
//     accounting samples and the metric is applied in sweep 2, so trainings
//     that differ only in metric (the RUM-variant study), feature set
//     (Fig 18), or classifier (§4.3.4) all share one simulation per pair.
//   - per-block feature vectors (training sweep 2). Extract computes every
//     feature; the Features subset is selected from the cached vector, so
//     ablations share extraction too.
//   - per-app fleet evaluation under a trained K-means model, keyed by a
//     fingerprint of everything the online policy consults (scaler,
//     centroids, assignment table, config). Supervised-classifier models
//     are not fingerprinted and bypass the cache.
//   - per-app evaluation under one fixed forecaster (the Fig 17 baselines).
//
// Every key hashes full value contents — the demand series itself, not the
// app name — so identical traces share entries and changed inputs cannot
// alias stale results. Each cached function is a deterministic pure
// function of its hashed inputs, which is what makes cached runs
// bit-identical to uncached ones (asserted in cache_equiv_test.go).

const (
	domApp          = "femux/app/v1"
	domBlockSamples = "femux/blockSamples/v1"
	domExtract      = "femux/extract/v1"
	domModel        = "femux/model/v1"
	domEvalApp      = "femux/evalApp/v1"
	domEvalSingle   = "femux/evalSingle/v1"
)

// appSimConfig resolves the per-app overrides (memory, container
// concurrency) onto the fleet simulation defaults.
func appSimConfig(app TrainApp, base sim.ConcConfig) sim.ConcConfig {
	if app.MemoryGB > 0 {
		base.MemoryGB = app.MemoryGB
	}
	if app.UnitConcurrency > 0 {
		base.UnitConcurrency = app.UnitConcurrency
	} else if base.UnitConcurrency < 1 {
		base.UnitConcurrency = 1
	}
	return base
}

// hashSimConfig hashes every ConcConfig field (all of them affect
// simulation output).
func hashSimConfig(h *memo.Hasher, c sim.ConcConfig) {
	h.Int(int64(c.Step))
	h.Int(int64(c.UnitConcurrency))
	h.Float(c.MemoryGB)
	h.Float(c.ColdStartSec)
	h.Int(int64(c.MinScale))
	h.Int(int64(c.ScaleLimitThreshold))
	h.Int(int64(c.ScaleLimitPerMinute))
}

// appTraceKey hashes the trace content that determines an app's simulation:
// the demand series, invocation counts, and execution time. The app name is
// deliberately excluded so identical traces share cache entries. The
// memory/concurrency overrides enter separately via the resolved sim
// config.
func appTraceKey(app TrainApp) memo.Key {
	h := memo.NewHasher(domApp)
	h.Int(int64(app.Demand.Step))
	h.Floats(app.Demand.Values)
	h.Bool(app.Invocations != nil)
	h.Floats(app.Invocations)
	h.Float(app.ExecSec)
	return h.Sum()
}

// cachedBlockSamples memoizes sweep 1: one full-series simulation per
// (app, forecaster) pair. appKey is the precomputed appTraceKey (zero when
// the cache is nil — Do then calls straight through).
func cachedBlockSamples(c *memo.Cache, appKey memo.Key, app TrainApp, fc forecast.Forecaster, cfg Config) []rum.Sample {
	if c == nil {
		return blockSamples(app, fc, cfg)
	}
	h := memo.NewHasher(domBlockSamples)
	h.Key(appKey)
	h.String(fc.Name())
	h.Int(int64(cfg.BlockSize))
	h.Int(int64(cfg.Window))
	h.Int(int64(cfg.Horizon))
	hashSimConfig(h, appSimConfig(app, cfg.Sim))
	return memo.Do(c, h.Sum(), func() []rum.Sample {
		return blockSamples(app, fc, cfg)
	})
}

// cachedExtract memoizes sweep 2's per-block feature extraction. The full
// vector is cached and callers Select their subset from it, so trainings
// with different Features share entries. Cached vectors are shared —
// callers must treat them as read-only.
func cachedExtract(c *memo.Cache, ext *features.Extractor, block []float64, execFeat float64) features.Vector {
	if c == nil {
		return ext.Extract(block, execFeat)
	}
	h := memo.NewHasher(domExtract)
	ar, bd, hk := ext.Params()
	h.Int(int64(ar))
	h.Int(int64(bd))
	h.Int(int64(hk))
	h.Floats(block)
	h.Float(execFeat)
	return memo.Do(c, h.Sum(), func() features.Vector {
		return ext.Extract(block, execFeat)
	})
}

// evalFingerprint hashes everything a trained model consults while
// evaluating an app: block/window geometry, feature selection, extractor
// settings, scaler, centroids, and the group->forecaster assignment.
// Forecasters are hashed by name (a name fully determines a forecaster's
// behavior). The RUM metric is excluded: it scores results after
// simulation and never influences the per-app sample. Only K-means models
// are fingerprintable; supervised classifiers report ok=false and their
// evaluations bypass the cache.
func (m *Model) evalFingerprint() (memo.Key, bool) {
	if m.kmeans == nil {
		return memo.Key{}, false
	}
	h := memo.NewHasher(domModel)
	h.Int(int64(m.cfg.BlockSize))
	h.Int(int64(m.cfg.Window))
	h.Int(int64(m.cfg.Horizon))
	h.Strings(m.cfg.Features)
	names := make([]string, len(m.cfg.Forecasters))
	for i, fc := range m.cfg.Forecasters {
		names[i] = fc.Name()
	}
	h.Strings(names)
	ar, bd, hk := m.extractor.Params()
	h.Int(int64(ar))
	h.Int(int64(bd))
	h.Int(int64(hk))
	h.Floats(m.scaler.Mean)
	h.Floats(m.scaler.Scale)
	h.Int(int64(len(m.kmeans.Centroids)))
	for _, c := range m.kmeans.Centroids {
		h.Floats(c)
	}
	h.Strings(m.perGroup)
	h.String(m.defaultFC)
	return h.Sum(), true
}

// evalAppResult is the cached unit of a fleet evaluation: one app's
// aggregate sample plus the switching diagnostic.
type evalAppResult struct {
	Sample rum.Sample
	Used   int // distinct forecasters the app's policy used
}

// cachedEvalApp memoizes one app's simulation under a trained model. fp is
// the model fingerprint from evalFingerprint; fpOK=false (supervised
// classifier) or a nil cache runs the simulation directly. level > 0
// provisions for that forecast quantile; it enters the key only when
// positive, so the quantile axis cannot alias the existing
// point-forecast entries (and vice versa).
func cachedEvalApp(c *memo.Cache, fp memo.Key, fpOK bool, m *Model, app TrainApp, level float64) evalAppResult {
	run := func() evalAppResult {
		p := m.NewAppPolicy(app.ExecSec)
		var policy sim.Policy = p
		if level > 0 {
			policy = sim.QuantilePolicy{Base: p, Level: level}
		}
		out := sim.SimulateApp(sim.AppTrace{
			Demand:      app.Demand,
			Invocations: app.Invocations,
			ExecSec:     app.ExecSec,
		}, policy, appSimConfig(app, m.cfg.Sim), false)
		return evalAppResult{Sample: out.Sample, Used: p.ForecastersUsed()}
	}
	if c == nil || !fpOK {
		return run()
	}
	h := memo.NewHasher(domEvalApp)
	h.Key(fp)
	h.Key(appTraceKey(app))
	hashSimConfig(h, appSimConfig(app, m.cfg.Sim))
	if level > 0 {
		h.String("quantile")
		h.Float(level)
	}
	return memo.Do(c, h.Sum(), run)
}

// cachedEvalSingle memoizes one app's simulation under one fixed
// forecaster (the individual-forecaster baselines).
func cachedEvalSingle(c *memo.Cache, fc forecast.Forecaster, app TrainApp, cfg Config) rum.Sample {
	run := func() rum.Sample {
		p := windowedPolicy{fc: fc, window: cfg.Window, horizon: cfg.Horizon}
		out := sim.SimulateApp(sim.AppTrace{
			Demand:      app.Demand,
			Invocations: app.Invocations,
			ExecSec:     app.ExecSec,
		}, p, appSimConfig(app, cfg.Sim), false)
		return out.Sample
	}
	if c == nil {
		return run()
	}
	h := memo.NewHasher(domEvalSingle)
	h.Key(appTraceKey(app))
	h.String(fc.Name())
	h.Int(int64(cfg.Window))
	h.Int(int64(cfg.Horizon))
	hashSimConfig(h, appSimConfig(app, cfg.Sim))
	return memo.Do(c, h.Sum(), run)
}
