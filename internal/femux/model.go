// Package femux implements the paper's primary contribution: a serverless
// lifetime-management system that multiplexes lightweight forecasters per
// application (§4.3). Offline, FeMux simulates every candidate forecaster
// over every block of the training traces, scores each (block, forecaster)
// pair under a RUM objective, clusters blocks by statistical features, and
// assigns each cluster the forecaster with the lowest summed RUM. Online,
// each application accumulates average-concurrency observations; when a
// block completes, its features are extracted and the pre-trained
// classifier selects the forecaster for the next block.
package femux

import (
	"errors"
	"fmt"

	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/cluster"
	"github.com/ubc-cirrus-lab/femux-go/internal/features"
	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
	"github.com/ubc-cirrus-lab/femux-go/internal/memo"
	"github.com/ubc-cirrus-lab/femux-go/internal/parallel"
	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
	"github.com/ubc-cirrus-lab/femux-go/internal/sim"
	"github.com/ubc-cirrus-lab/femux-go/internal/timeseries"
)

// TrainApp is one application's training trace.
type TrainApp struct {
	Name            string
	Demand          timeseries.Series // per-interval average concurrency
	Invocations     []float64         // per-interval invocation counts (optional)
	ExecSec         float64           // mean execution seconds per invocation
	MemoryGB        float64           // per-unit memory (0 -> config default)
	UnitConcurrency int               // container concurrency limit (0 -> 1)
}

// Config parameterizes training and online operation.
type Config struct {
	BlockSize   int                   // intervals per block (paper: 504 minutes)
	Window      int                   // forecast input window (paper: 120 minutes)
	Horizon     int                   // forecast horizon in intervals (paper: 1 minute)
	K           int                   // K-means cluster count
	Seed        int64                 // clustering seed
	Metric      rum.Metric            // the RUM to optimize
	Forecasters []forecast.Forecaster // candidate set
	Features    []string              // feature names (default: all four)
	Sim         sim.ConcConfig        // simulation defaults (memory, cold start, limits)
	// Classifier selects the block->forecaster mapper: "kmeans" (default),
	// "tree", or "forest" — the supervised baselines of §4.3.4.
	Classifier string
	// Workers bounds the goroutines used for the training sweeps and fleet
	// evaluation (0 = one per CPU). Output is bit-identical for any worker
	// count: the per-(app, forecaster) simulations and per-block feature
	// extractions are independent, and all reductions run serially in
	// block-index order.
	Workers int
	// Cache, when non-nil, memoizes the pipeline's pure stages (per-pair
	// block simulations, per-block feature extraction, per-app
	// evaluations) by content hash. Sharing one cache across trainings and
	// evaluations deduplicates the bulk of a sweep's work; results are
	// bit-identical to an uncached run (see cache.go). nil disables
	// caching.
	Cache *memo.Cache
}

// DefaultConfig returns the paper's settings, with a block size suited to
// minute-interval traces.
func DefaultConfig(metric rum.Metric) Config {
	return Config{
		BlockSize:   504,
		Window:      120,
		Horizon:     1,
		K:           8,
		Seed:        1,
		Metric:      metric,
		Forecasters: forecast.DefaultSet(),
		Features:    features.AllFeatureNames,
		Sim:         sim.DefaultConcConfig(),
		Classifier:  "kmeans",
	}
}

// Model is a trained FeMux classifier: it maps a completed block's features
// to the forecaster to use for the following block.
type Model struct {
	cfg       Config
	scaler    *cluster.Scaler
	kmeans    *cluster.KMeans
	tree      *cluster.DecisionTree
	forest    *cluster.RandomForest
	perGroup  []string // group -> forecaster name
	defaultFC string   // forecaster for apps without a completed block
	extractor *features.Extractor

	// Diagnostics from training.
	Diag Diagnostics
}

// Diagnostics captures training statistics used by the sensitivity studies
// and by the serial-vs-parallel equivalence tests.
type Diagnostics struct {
	Blocks          int
	Clusters        int
	TrainTime       time.Duration
	ForecasterWins  map[string]int // blocks where each forecaster was per-block best
	GroupForecaster []string
	// BlockRUM[i][f] is the RUM of forecaster f on global block i, in
	// training input order; GroupOf[i] is block i's assigned group. Both
	// are deterministic for a fixed seed and independent of Workers.
	BlockRUM [][]float64
	GroupOf  []int
}

// Train builds a FeMux model from training apps. It follows §4.3.3-4.3.4:
// per-block RUM simulation for every forecaster, feature extraction and
// standardization, clustering (or a supervised classifier), and per-group
// forecaster assignment by lowest summed RUM.
func Train(apps []TrainApp, cfg Config) (*Model, error) {
	start := time.Now()
	if len(apps) == 0 {
		return nil, errors.New("femux: no training apps")
	}
	if cfg.BlockSize < 8 {
		return nil, fmt.Errorf("femux: block size %d too small", cfg.BlockSize)
	}
	if len(cfg.Forecasters) == 0 {
		return nil, errors.New("femux: empty forecaster set")
	}
	if cfg.Horizon < 1 {
		cfg.Horizon = 1
	}
	if cfg.Window < cfg.Horizon {
		cfg.Window = 120
	}
	if len(cfg.Features) == 0 {
		cfg.Features = features.AllFeatureNames
	}
	if cfg.K < 1 {
		cfg.K = 8
	}

	ext := features.NewExtractor()
	nf := len(cfg.Forecasters)
	workers := parallel.Workers(cfg.Workers)

	// Lay out the global block index space in input order: only apps with
	// at least one completed block contribute training units.
	type trainUnit struct {
		app    TrainApp
		blocks []timeseries.Series
		row0   int // global index of the unit's first block
	}
	var units []trainUnit
	nBlocks := 0
	for _, app := range apps {
		blocks := app.Demand.Blocks(cfg.BlockSize)
		if len(blocks) == 0 {
			continue
		}
		units = append(units, trainUnit{app: app, blocks: blocks, row0: nBlocks})
		nBlocks += len(blocks)
	}
	if nBlocks == 0 {
		return nil, errors.New("femux: no completed blocks in training data")
	}

	// Sweep 1 — the hot path (§4.3.3): one full-series simulation per
	// (app, forecaster) pair. Every pair is independent, so the flat job
	// space fans out across workers; each job writes only its own slot.
	// With a cache, each app's trace is hashed once up front and the pairs
	// derive cheap sub-keys from it.
	appKeys := make([]memo.Key, len(units))
	if cfg.Cache != nil {
		for ui := range units {
			appKeys[ui] = appTraceKey(units[ui].app)
		}
	}
	perForecaster := make([][][]rum.Sample, len(units)) // [unit][forecaster] -> per-block samples
	for ui := range perForecaster {
		perForecaster[ui] = make([][]rum.Sample, nf)
	}
	parallel.ForEach(workers, len(units)*nf, func(j int) {
		ui, fi := j/nf, j%nf
		perForecaster[ui][fi] = cachedBlockSamples(cfg.Cache, appKeys[ui], units[ui].app, cfg.Forecasters[fi], cfg)
	})

	// Sweep 2: per-block feature extraction and RUM scoring, fanned out
	// over global block indices. unitOf[i] locates block i's unit.
	unitOf := make([]int, nBlocks)
	for ui, u := range units {
		for bi := range u.blocks {
			unitOf[u.row0+bi] = ui
		}
	}
	rows := make([][]float64, nBlocks)
	rumByBlock := make([][]float64, nBlocks) // rumByBlock[i][f]: RUM of forecaster f on block i
	execFeature := hasExecFeature(cfg.Features)
	parallel.ForEach(workers, nBlocks, func(i int) {
		u := units[unitOf[i]]
		bi := i - u.row0
		execFeat := 0.0
		if execFeature {
			execFeat = u.app.ExecSec
		}
		vec := cachedExtract(cfg.Cache, ext, u.blocks[bi].Values, execFeat)
		rows[i] = vec.Select(cfg.Features)
		scores := make([]float64, nf)
		for fi := 0; fi < nf; fi++ {
			scores[fi] = cfg.Metric.Eval(perForecaster[unitOf[i]][fi][bi])
		}
		rumByBlock[i] = scores
	})

	// Serial reduction in block-index order: float summation order is
	// fixed, so totals are bit-identical for any worker count.
	totalRUM := make([]float64, nf)
	for _, scores := range rumByBlock {
		for fi, s := range scores {
			totalRUM[fi] += s
		}
	}

	scaler, err := cluster.FitScaler(rows)
	if err != nil {
		return nil, fmt.Errorf("femux: %w", err)
	}
	scaled := scaler.TransformAll(rows)

	m := &Model{cfg: cfg, scaler: scaler, extractor: ext}
	m.Diag.Blocks = len(rows)
	m.Diag.ForecasterWins = map[string]int{}
	for _, scores := range rumByBlock {
		best := argmin(scores)
		m.Diag.ForecasterWins[cfg.Forecasters[best].Name()]++
	}

	// Group blocks.
	var groupOf []int
	var nGroups int
	switch cfg.Classifier {
	case "", "kmeans":
		km, err := cluster.FitKMeans(scaled, cfg.K, cfg.Seed, 100)
		if err != nil {
			return nil, fmt.Errorf("femux: %w", err)
		}
		m.kmeans = km
		nGroups = km.K()
		groupOf = make([]int, len(scaled))
		for i, r := range scaled {
			groupOf[i] = km.Predict(r)
		}
	case "tree", "forest":
		// Supervised: label each block with its per-block best forecaster,
		// then train the classifier on those labels.
		labels := make([]int, len(scaled))
		for i, scores := range rumByBlock {
			labels[i] = argmin(scores)
		}
		nGroups = nf
		if cfg.Classifier == "tree" {
			tr, err := cluster.FitTree(scaled, labels, cluster.DefaultTreeConfig())
			if err != nil {
				return nil, fmt.Errorf("femux: %w", err)
			}
			m.tree = tr
			groupOf = make([]int, len(scaled))
			for i, r := range scaled {
				groupOf[i] = tr.Predict(r)
			}
		} else {
			fo, err := cluster.FitForest(scaled, labels, 15, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("femux: %w", err)
			}
			m.forest = fo
			groupOf = make([]int, len(scaled))
			for i, r := range scaled {
				groupOf[i] = fo.Predict(r)
			}
		}
	default:
		return nil, fmt.Errorf("femux: unknown classifier %q", cfg.Classifier)
	}

	// Assign each group the forecaster with the lowest RUM sum across its
	// blocks; empty groups inherit the global best.
	groupRUM := make([][]float64, nGroups)
	for g := range groupRUM {
		groupRUM[g] = make([]float64, nf)
	}
	for i, scores := range rumByBlock {
		g := groupOf[i]
		for fi, s := range scores {
			groupRUM[g][fi] += s
		}
	}
	globalBest := argmin(totalRUM)
	m.defaultFC = cfg.Forecasters[globalBest].Name()
	m.perGroup = make([]string, nGroups)
	for g := range m.perGroup {
		empty := true
		for _, s := range groupRUM[g] {
			if s != 0 {
				empty = false
				break
			}
		}
		if empty {
			m.perGroup[g] = m.defaultFC
			continue
		}
		// Shrink toward the global default: a cluster-specific forecaster
		// must beat the default's in-cluster RUM by a clear margin, or the
		// apparent win is likely training noise on a thin cluster — the
		// misclassification tolerance K-means is chosen for (§4.3.4).
		const overrideMargin = 0.92
		winner := argmin(groupRUM[g])
		if groupRUM[g][winner] <= overrideMargin*groupRUM[g][globalBest] {
			m.perGroup[g] = cfg.Forecasters[winner].Name()
		} else {
			m.perGroup[g] = m.defaultFC
		}
	}
	if cfg.Classifier == "tree" || cfg.Classifier == "forest" {
		// Supervised groups are forecaster indices directly; keep the
		// per-group RUM assignment anyway (it coincides when the label
		// dominated its group, and repairs mislabel-dominated groups).
		for g := range m.perGroup {
			if groupRUM[g] == nil {
				m.perGroup[g] = cfg.Forecasters[g].Name()
			}
		}
	}
	m.Diag.Clusters = nGroups
	m.Diag.GroupForecaster = append([]string(nil), m.perGroup...)
	m.Diag.BlockRUM = rumByBlock
	m.Diag.GroupOf = groupOf
	m.Diag.TrainTime = time.Since(start)
	return m, nil
}

// blockSamples simulates one forecaster over the app's whole series and
// returns per-block accounting samples.
func blockSamples(app TrainApp, fc forecast.Forecaster, cfg Config) []rum.Sample {
	simCfg := appSimConfig(app, cfg.Sim)
	policy := windowedPolicy{fc: fc, window: cfg.Window, horizon: cfg.Horizon}
	res := sim.SimulateApp(sim.AppTrace{
		Demand:      app.Demand,
		Invocations: app.Invocations,
		ExecSec:     app.ExecSec,
	}, policy, simCfg, true)

	nBlocks := app.Demand.Len() / cfg.BlockSize
	out := make([]rum.Sample, nBlocks)
	for b := 0; b < nBlocks; b++ {
		var s rum.Sample
		for t := b * cfg.BlockSize; t < (b+1)*cfg.BlockSize; t++ {
			iv := res.Intervals[t]
			s.ColdStarts += iv.ColdStarts
			s.ColdStartSec += float64(iv.ColdStarts) * simCfg.ColdStartSec
			s.WastedGBSec += iv.WastedGBs
			if app.Invocations != nil && t < len(app.Invocations) {
				s.Invocations += int(app.Invocations[t])
				s.ExecSec += app.Invocations[t] * app.ExecSec
			}
		}
		out[b] = s
	}
	return out
}

// windowedPolicy adapts a forecaster to sim.Policy with a bounded input
// window (FeMux feeds two hours of history, §4.3.3).
type windowedPolicy struct {
	fc      forecast.Forecaster
	window  int
	horizon int
}

func (p windowedPolicy) Name() string { return p.fc.Name() }

func (p windowedPolicy) Target(history []float64, unitC int) int {
	return p.TargetWS(history, unitC, nil)
}

// TargetWS implements sim.WorkspaceTargeter: the training sweeps run one
// full-series simulation per (app, forecaster) pair, so routing the
// per-interval forecasts through the simulator's workspace removes the
// dominant allocation source of Train.
func (p windowedPolicy) TargetWS(history []float64, unitC int, ws *forecast.Workspace) int {
	w := p.window
	if w > len(history) {
		w = len(history)
	}
	window := history[len(history)-w:]
	pred := forecast.Into(p.fc, window, p.horizon, ws.Out(p.horizon), ws)
	peak := 0.0
	for _, v := range pred {
		if v > peak {
			peak = v
		}
	}
	return sim.ForecastUnits(peak, window, unitC)
}

// TargetQuantilesWS implements sim.QuantileTargeter: provision for the
// level-quantile of the windowed forecast instead of its point peak.
// Level <= 0 reproduces TargetWS exactly.
func (p windowedPolicy) TargetQuantilesWS(history []float64, unitC int, level float64, ws *forecast.Workspace) int {
	if level <= 0 {
		return p.TargetWS(history, unitC, ws)
	}
	w := p.window
	if w > len(history) {
		w = len(history)
	}
	window := history[len(history)-w:]
	lv := ws.Levels(1)
	lv[0] = level
	pred := forecast.QuantilesInto(p.fc, window, p.horizon, lv, ws.Out(p.horizon), ws)
	peak := 0.0
	for _, v := range pred {
		if v > peak {
			peak = v
		}
	}
	return sim.ForecastUnits(peak, window, unitC)
}

// Classify returns the group index for a feature vector.
func (m *Model) Classify(vec features.Vector) int {
	row := m.scaler.Transform(vec.Select(m.cfg.Features))
	switch {
	case m.kmeans != nil:
		return m.kmeans.Predict(row)
	case m.tree != nil:
		return m.tree.Predict(row)
	default:
		return m.forest.Predict(row)
	}
}

// ForecasterFor returns the forecaster assigned to a group.
func (m *Model) ForecasterFor(group int) forecast.Forecaster {
	name := m.defaultFC
	if group >= 0 && group < len(m.perGroup) {
		name = m.perGroup[group]
	}
	fc, err := forecast.ByName(m.cfg.Forecasters, name)
	if err != nil {
		// The assignment table only holds names from the set; fall back
		// to the first forecaster defensively.
		return m.cfg.Forecasters[0]
	}
	return fc
}

// DefaultForecaster returns the globally best forecaster, used before an
// app completes its first block.
func (m *Model) DefaultForecaster() forecast.Forecaster {
	fc, err := forecast.ByName(m.cfg.Forecasters, m.defaultFC)
	if err != nil {
		return m.cfg.Forecasters[0]
	}
	return fc
}

// Config returns the model's training configuration.
func (m *Model) Config() Config { return m.cfg }

func argmin(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v < xs[best] {
			best = i
		}
	}
	return best
}

func hasExecFeature(names []string) bool {
	for _, n := range names {
		if n == features.FeatExecTime {
			return true
		}
	}
	return false
}
