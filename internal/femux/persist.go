package femux

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/ubc-cirrus-lab/femux-go/internal/cluster"
	"github.com/ubc-cirrus-lab/femux-go/internal/features"
	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
	"github.com/ubc-cirrus-lab/femux-go/internal/sim"
)

// Trained models are serializable so the forecasting service can load a
// model trained elsewhere (the paper retrains monthly offline and ships the
// classifier into the forecasting pods). Only the K-means classifier is
// persisted — it is the production configuration; the supervised baselines
// exist for the §4.3.4 comparison.

// modelJSON is the on-disk representation.
type modelJSON struct {
	Version     int            `json:"version"`
	BlockSize   int            `json:"blockSize"`
	Window      int            `json:"window"`
	Horizon     int            `json:"horizon"`
	Features    []string       `json:"features"`
	Metric      metricJSON     `json:"metric"`
	Forecasters []string       `json:"forecasters"`
	ScalerMean  []float64      `json:"scalerMean"`
	ScalerScale []float64      `json:"scalerScale"`
	Centroids   [][]float64    `json:"centroids"`
	PerGroup    []string       `json:"perGroup"`
	DefaultFC   string         `json:"defaultForecaster"`
	Sim         sim.ConcConfig `json:"sim"`
}

type metricJSON struct {
	Kind string  `json:"kind"` // "weighted" or "exec"
	Name string  `json:"name"`
	W1   float64 `json:"w1"`
	W2   float64 `json:"w2"`
}

// Save serializes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	if m.kmeans == nil {
		return fmt.Errorf("femux: only kmeans-classified models are serializable")
	}
	mj := modelJSON{
		Version:     1,
		BlockSize:   m.cfg.BlockSize,
		Window:      m.cfg.Window,
		Horizon:     m.cfg.Horizon,
		Features:    m.cfg.Features,
		ScalerMean:  m.scaler.Mean,
		ScalerScale: m.scaler.Scale,
		Centroids:   m.kmeans.Centroids,
		PerGroup:    m.perGroup,
		DefaultFC:   m.defaultFC,
		Sim:         m.cfg.Sim,
	}
	for _, fc := range m.cfg.Forecasters {
		mj.Forecasters = append(mj.Forecasters, fc.Name())
	}
	switch metric := m.cfg.Metric.(type) {
	case rum.Weighted:
		mj.Metric = metricJSON{Kind: "weighted", Name: metric.MetricName, W1: metric.W1, W2: metric.W2}
	case rum.ExecAware:
		mj.Metric = metricJSON{Kind: "exec", W1: metric.W1, W2: metric.W2}
	default:
		return fmt.Errorf("femux: metric %T is not serializable", m.cfg.Metric)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(mj)
}

// Load reconstructs a model saved with Save. Forecasters are resolved by
// name from the default registry plus any extra forecasters supplied.
func Load(r io.Reader, extra ...forecast.Forecaster) (*Model, error) {
	var mj modelJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("femux: decoding model: %w", err)
	}
	if mj.Version != 1 {
		return nil, fmt.Errorf("femux: unsupported model version %d", mj.Version)
	}
	registry := append(forecast.DefaultSet(), extra...)
	var set []forecast.Forecaster
	for _, name := range mj.Forecasters {
		fc, err := forecast.ByName(registry, name)
		if err != nil {
			return nil, fmt.Errorf("femux: model references %q: %w", name, err)
		}
		set = append(set, fc)
	}
	if len(set) == 0 {
		return nil, fmt.Errorf("femux: model has no forecasters")
	}
	var metric rum.Metric
	switch mj.Metric.Kind {
	case "weighted":
		metric = rum.Weighted{MetricName: mj.Metric.Name, W1: mj.Metric.W1, W2: mj.Metric.W2}
	case "exec":
		metric = rum.ExecAware{W1: mj.Metric.W1, W2: mj.Metric.W2}
	default:
		return nil, fmt.Errorf("femux: unknown metric kind %q", mj.Metric.Kind)
	}
	if len(mj.ScalerMean) != len(mj.ScalerScale) || len(mj.ScalerMean) != len(mj.Features) {
		return nil, fmt.Errorf("femux: scaler dimensions inconsistent with features")
	}
	for _, c := range mj.Centroids {
		if len(c) != len(mj.Features) {
			return nil, fmt.Errorf("femux: centroid dimension mismatch")
		}
	}
	if len(mj.PerGroup) != len(mj.Centroids) {
		return nil, fmt.Errorf("femux: group table size mismatch")
	}
	valid := map[string]bool{}
	for _, fc := range set {
		valid[fc.Name()] = true
	}
	for _, name := range append(append([]string{}, mj.PerGroup...), mj.DefaultFC) {
		if !valid[name] {
			return nil, fmt.Errorf("femux: assignment references unknown forecaster %q", name)
		}
	}
	m := &Model{
		cfg: Config{
			BlockSize:   mj.BlockSize,
			Window:      mj.Window,
			Horizon:     mj.Horizon,
			Features:    mj.Features,
			Metric:      metric,
			Forecasters: set,
			Sim:         mj.Sim,
			Classifier:  "kmeans",
		},
		scaler:    &cluster.Scaler{Mean: mj.ScalerMean, Scale: mj.ScalerScale},
		kmeans:    &cluster.KMeans{Centroids: mj.Centroids},
		perGroup:  mj.PerGroup,
		defaultFC: mj.DefaultFC,
		extractor: features.NewExtractor(),
	}
	m.Diag.Clusters = len(mj.PerGroup)
	m.Diag.GroupForecaster = append([]string(nil), mj.PerGroup...)
	return m, nil
}
