package femux

import (
	"reflect"
	"testing"
)

// TestTrainWorkerEquivalence is the regression test that keeps the parallel
// trainer honest: a seeded Train must produce a bit-identical model for
// Workers=1 (the inline serial path) and Workers=4 (the concurrent path).
// Everything downstream of the two parallel sweeps — scaler, K-means,
// group assignment — is deterministic given identical sweep output, so
// exact float equality is the correct assertion, not a tolerance.
func TestTrainWorkerEquivalence(t *testing.T) {
	apps := mixedFleet(29, 9, 288)

	serialCfg := testConfig()
	serialCfg.Workers = 1
	serial, err := Train(apps, serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	parCfg := testConfig()
	parCfg.Workers = 4
	par, err := Train(apps, parCfg)
	if err != nil {
		t.Fatal(err)
	}

	if serial.Diag.Blocks != par.Diag.Blocks {
		t.Errorf("blocks: %d vs %d", serial.Diag.Blocks, par.Diag.Blocks)
	}
	if serial.Diag.Clusters != par.Diag.Clusters {
		t.Errorf("clusters: %d vs %d", serial.Diag.Clusters, par.Diag.Clusters)
	}
	if !reflect.DeepEqual(serial.Diag.ForecasterWins, par.Diag.ForecasterWins) {
		t.Errorf("forecaster wins differ:\n serial %v\n par    %v",
			serial.Diag.ForecasterWins, par.Diag.ForecasterWins)
	}
	if !reflect.DeepEqual(serial.Diag.GroupForecaster, par.Diag.GroupForecaster) {
		t.Errorf("group forecasters differ:\n serial %v\n par    %v",
			serial.Diag.GroupForecaster, par.Diag.GroupForecaster)
	}
	if !reflect.DeepEqual(serial.Diag.GroupOf, par.Diag.GroupOf) {
		t.Error("per-block cluster assignments differ")
	}
	if len(serial.Diag.BlockRUM) != len(par.Diag.BlockRUM) {
		t.Fatalf("block RUM rows: %d vs %d", len(serial.Diag.BlockRUM), len(par.Diag.BlockRUM))
	}
	for i := range serial.Diag.BlockRUM {
		for fi := range serial.Diag.BlockRUM[i] {
			if serial.Diag.BlockRUM[i][fi] != par.Diag.BlockRUM[i][fi] {
				t.Fatalf("block %d forecaster %d RUM: %v vs %v (must be bit-identical)",
					i, fi, serial.Diag.BlockRUM[i][fi], par.Diag.BlockRUM[i][fi])
			}
		}
	}
	if serial.defaultFC != par.defaultFC {
		t.Errorf("default forecaster: %q vs %q", serial.defaultFC, par.defaultFC)
	}
	if !reflect.DeepEqual(serial.perGroup, par.perGroup) {
		t.Errorf("per-group assignment: %v vs %v", serial.perGroup, par.perGroup)
	}
	if !reflect.DeepEqual(serial.scaler, par.scaler) {
		t.Error("scalers differ")
	}
	if !reflect.DeepEqual(serial.kmeans.Centroids, par.kmeans.Centroids) {
		t.Error("centroids differ")
	}

	// Evaluation must agree sample for sample, whichever model evaluates
	// under whichever worker count.
	test := mixedFleet(31, 6, 288)
	se := Evaluate(serial, test)
	pe := Evaluate(par, test)
	if se.RUM != pe.RUM {
		t.Errorf("eval RUM: %v vs %v", se.RUM, pe.RUM)
	}
	if !reflect.DeepEqual(se.Samples, pe.Samples) {
		t.Error("eval samples differ")
	}
	if se.AppsSwitched != pe.AppsSwitched || se.AppsManySwitched != pe.AppsManySwitched {
		t.Errorf("switching diagnostics differ: %d/%d vs %d/%d",
			se.AppsSwitched, se.AppsManySwitched, pe.AppsSwitched, pe.AppsManySwitched)
	}
}

// TestTrainWorkersDefaultMatchesExplicit pins the knob semantics: Workers=0
// (one per CPU) must also reproduce the serial result.
func TestTrainWorkersDefaultMatchesExplicit(t *testing.T) {
	apps := mixedFleet(37, 6, 216)
	cfg0 := testConfig() // Workers: 0
	a, err := Train(apps, cfg0)
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := testConfig()
	cfg1.Workers = 1
	b, err := Train(apps, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Diag.BlockRUM, b.Diag.BlockRUM) {
		t.Error("Workers=0 and Workers=1 disagree on block RUM")
	}
	if !reflect.DeepEqual(a.perGroup, b.perGroup) || a.defaultFC != b.defaultFC {
		t.Error("Workers=0 and Workers=1 disagree on assignment")
	}
}

// TestEvaluateQuantileWorkerEquivalence extends the worker-equivalence
// pin to the quantile sweep path: EvaluateQuantile must produce
// bit-identical samples for Workers=1 and Workers=3, and its level=0
// form must reproduce Evaluate exactly (cache keys included — level
// only enters the key when positive).
func TestEvaluateQuantileWorkerEquivalence(t *testing.T) {
	apps := mixedFleet(29, 9, 288)
	cfg := testConfig()
	cfg.Workers = 2
	m, err := Train(apps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	test := mixedFleet(31, 6, 288)

	for _, level := range []float64{0, 0.5, 0.95} {
		m.cfg.Workers = 1
		serial := EvaluateQuantile(m, test, level)
		m.cfg.Workers = 3
		par := EvaluateQuantile(m, test, level)
		if serial.RUM != par.RUM {
			t.Errorf("level %g: RUM %v vs %v", level, serial.RUM, par.RUM)
		}
		if !reflect.DeepEqual(serial.Samples, par.Samples) {
			t.Errorf("level %g: samples differ across worker counts", level)
		}
	}

	point := Evaluate(m, test)
	zero := EvaluateQuantile(m, test, 0)
	if !reflect.DeepEqual(point.Samples, zero.Samples) || point.RUM != zero.RUM {
		t.Error("EvaluateQuantile(level=0) diverged from Evaluate")
	}
	p95 := EvaluateQuantile(m, test, 0.95)
	if reflect.DeepEqual(point.Samples, p95.Samples) {
		t.Error("EvaluateQuantile(0.95) identical to point evaluation: level not applied")
	}
}
