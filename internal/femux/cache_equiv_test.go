package femux

import (
	"reflect"
	"testing"

	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
	"github.com/ubc-cirrus-lab/femux-go/internal/memo"
	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
)

// assertModelsIdentical is the bit-identity check shared by the cache
// equivalence tests: every training output — diagnostics, per-block RUM,
// cluster assignments, scaler, centroids, forecaster table — must be
// exactly equal, not approximately (same discipline as the worker
// equivalence tests).
func assertModelsIdentical(t *testing.T, want, got *Model, label string) {
	t.Helper()
	if want.Diag.Blocks != got.Diag.Blocks || want.Diag.Clusters != got.Diag.Clusters {
		t.Errorf("%s: blocks/clusters %d/%d vs %d/%d", label,
			want.Diag.Blocks, want.Diag.Clusters, got.Diag.Blocks, got.Diag.Clusters)
	}
	if !reflect.DeepEqual(want.Diag.ForecasterWins, got.Diag.ForecasterWins) {
		t.Errorf("%s: forecaster wins differ:\n want %v\n got  %v", label,
			want.Diag.ForecasterWins, got.Diag.ForecasterWins)
	}
	if !reflect.DeepEqual(want.Diag.GroupOf, got.Diag.GroupOf) {
		t.Errorf("%s: per-block cluster assignments differ", label)
	}
	if len(want.Diag.BlockRUM) != len(got.Diag.BlockRUM) {
		t.Fatalf("%s: block RUM rows %d vs %d", label, len(want.Diag.BlockRUM), len(got.Diag.BlockRUM))
	}
	for i := range want.Diag.BlockRUM {
		for fi := range want.Diag.BlockRUM[i] {
			if want.Diag.BlockRUM[i][fi] != got.Diag.BlockRUM[i][fi] {
				t.Fatalf("%s: block %d forecaster %d RUM %v vs %v (must be bit-identical)",
					label, i, fi, want.Diag.BlockRUM[i][fi], got.Diag.BlockRUM[i][fi])
			}
		}
	}
	if want.defaultFC != got.defaultFC || !reflect.DeepEqual(want.perGroup, got.perGroup) {
		t.Errorf("%s: assignment differs: %q %v vs %q %v", label,
			want.defaultFC, want.perGroup, got.defaultFC, got.perGroup)
	}
	if !reflect.DeepEqual(want.scaler, got.scaler) {
		t.Errorf("%s: scalers differ", label)
	}
	if !reflect.DeepEqual(want.kmeans.Centroids, got.kmeans.Centroids) {
		t.Errorf("%s: centroids differ", label)
	}
}

func assertEvalsIdentical(t *testing.T, want, got EvalResult, label string) {
	t.Helper()
	if want.RUM != got.RUM {
		t.Errorf("%s: RUM %v vs %v (must be bit-identical)", label, want.RUM, got.RUM)
	}
	if !reflect.DeepEqual(want.Samples, got.Samples) {
		t.Errorf("%s: per-app samples differ", label)
	}
	if want.AppsSwitched != got.AppsSwitched || want.AppsManySwitched != got.AppsManySwitched {
		t.Errorf("%s: switching diagnostics %d/%d vs %d/%d", label,
			want.AppsSwitched, want.AppsManySwitched, got.AppsSwitched, got.AppsManySwitched)
	}
}

// TestTrainCacheEquivalence is the cache's correctness anchor: training and
// evaluating with a cold cache, and again with that cache warm, must both
// be bit-identical to the uncached run — identical diagnostics, block RUM,
// cluster assignments, and evaluation samples.
func TestTrainCacheEquivalence(t *testing.T) {
	apps := mixedFleet(29, 9, 288)
	test := mixedFleet(31, 6, 288)

	plain, err := Train(apps, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	plainEval := Evaluate(plain, test)

	cache := memo.New()
	cachedCfg := testConfig()
	cachedCfg.Cache = cache
	cold, err := Train(apps, cachedCfg)
	if err != nil {
		t.Fatal(err)
	}
	assertModelsIdentical(t, plain, cold, "cold cache")
	coldEval := Evaluate(cold, test)
	assertEvalsIdentical(t, plainEval, coldEval, "cold cache eval")

	st := cache.Stats()
	if st.Misses == 0 {
		t.Fatal("cold run recorded no cache misses — cache not consulted")
	}

	warm, err := Train(apps, cachedCfg)
	if err != nil {
		t.Fatal(err)
	}
	assertModelsIdentical(t, plain, warm, "warm cache")
	warmEval := Evaluate(warm, test)
	assertEvalsIdentical(t, plainEval, warmEval, "warm cache eval")

	st2 := cache.Stats()
	if st2.Misses != st.Misses {
		t.Errorf("warm rerun recomputed %d entries (misses %d -> %d); identical inputs must hit",
			st2.Misses-st.Misses, st.Misses, st2.Misses)
	}
	if st2.Hits <= st.Hits {
		t.Error("warm rerun recorded no cache hits")
	}
}

// TestCacheSharesAcrossMetricsAndFeatures pins the key design decision that
// makes the cache pay off across a sweep: the RUM metric and the Features
// subset are applied downstream of the cached stages, so trainings that
// differ only in metric or feature selection must share every simulation
// and extraction — zero new misses — while still matching their own
// uncached runs exactly.
func TestCacheSharesAcrossMetricsAndFeatures(t *testing.T) {
	apps := mixedFleet(41, 8, 288)
	cache := memo.New()

	base := testConfig()
	base.Cache = cache
	if _, err := Train(apps, base); err != nil {
		t.Fatal(err)
	}
	after := cache.Stats()

	variant := testConfig()
	variant.Cache = cache
	variant.Metric = rum.ColdStartHeavy()
	variant.Features = []string{"harmonics", "density"}
	cached, err := Train(apps, variant)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Misses != after.Misses {
		t.Errorf("metric/feature variant caused %d new misses; sweeps must be shared",
			st.Misses-after.Misses)
	}

	plainVariant := testConfig()
	plainVariant.Metric = rum.ColdStartHeavy()
	plainVariant.Features = []string{"harmonics", "density"}
	plain, err := Train(apps, plainVariant)
	if err != nil {
		t.Fatal(err)
	}
	assertModelsIdentical(t, plain, cached, "shared-sweep variant")
}

// TestEvaluateSingleCacheEquivalence covers the fixed-forecaster path used
// by the baseline comparisons.
func TestEvaluateSingleCacheEquivalence(t *testing.T) {
	apps := mixedFleet(53, 7, 288)
	fc := forecast.NewFFT(10)

	plain := EvaluateSingle(fc, apps, testConfig())

	cfg := testConfig()
	cfg.Cache = memo.New()
	cold := EvaluateSingle(fc, apps, cfg)
	assertEvalsIdentical(t, plain, cold, "single cold")
	warm := EvaluateSingle(fc, apps, cfg)
	assertEvalsIdentical(t, plain, warm, "single warm")

	st := cfg.Cache.Stats()
	if st.Hits < uint64(len(apps)) {
		t.Errorf("warm EvaluateSingle hit %d of %d apps", st.Hits, len(apps))
	}
}

// TestTrainCacheDiskRoundTrip simulates the cross-process warm start: a
// second disk-backed cache on the same directory (a "new process") must
// reproduce the first training bit-for-bit from disk hits alone, proving
// every cached type survives the gob round-trip unchanged.
func TestTrainCacheDiskRoundTrip(t *testing.T) {
	apps := mixedFleet(61, 6, 216)
	dir := t.TempDir()

	c1, err := memo.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := testConfig()
	cfg1.Cache = c1
	first, err := Train(apps, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	firstEval := Evaluate(first, apps)

	c2, err := memo.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := testConfig()
	cfg2.Cache = c2
	second, err := Train(apps, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	assertModelsIdentical(t, first, second, "disk round-trip")
	secondEval := Evaluate(second, apps)
	assertEvalsIdentical(t, firstEval, secondEval, "disk round-trip eval")

	st := c2.Stats()
	if st.DiskHits == 0 {
		t.Error("second process recorded no disk hits")
	}
	if st.Misses != 0 {
		t.Errorf("second process recomputed %d entries despite warm disk cache", st.Misses)
	}
}
