package femux

import (
	"bytes"
	"strings"
	"testing"

	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	apps := mixedFleet(31, 9, 216)
	m, err := Train(apps, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Loaded model must classify and evaluate identically.
	test := mixedFleet(33, 6, 216)
	orig := Evaluate(m, test)
	back := Evaluate(loaded, test)
	if orig.RUM != back.RUM {
		t.Errorf("loaded model RUM %v != original %v", back.RUM, orig.RUM)
	}
	if loaded.DefaultForecaster().Name() != m.DefaultForecaster().Name() {
		t.Error("default forecaster changed across round trip")
	}
}

func TestModelSaveExecAwareMetric(t *testing.T) {
	cfg := testConfig()
	cfg.Metric = rum.DefaultExecAware()
	m, err := Train(mixedFleet(35, 6, 144), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Config().Metric.Name() != "rum-exec" {
		t.Errorf("metric = %q", loaded.Config().Metric.Name())
	}
}

func TestModelSaveRejectsSupervised(t *testing.T) {
	cfg := testConfig()
	cfg.Classifier = "tree"
	m, err := Train(mixedFleet(37, 6, 144), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err == nil {
		t.Error("tree-classified models should not serialize")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"garbage", "{not json"},
		{"bad version", `{"version": 9}`},
		{"unknown forecaster", `{"version":1,"features":["density"],"metric":{"kind":"weighted","w1":1,"w2":1},
			"forecasters":["mystery"],"scalerMean":[0],"scalerScale":[1],"centroids":[[0]],"perGroup":["mystery"],"defaultForecaster":"mystery"}`},
		{"bad metric", `{"version":1,"features":["density"],"metric":{"kind":"quantum"},
			"forecasters":["fft10"],"scalerMean":[0],"scalerScale":[1],"centroids":[[0]],"perGroup":["fft10"],"defaultForecaster":"fft10"}`},
		{"dim mismatch", `{"version":1,"features":["density","harmonics"],"metric":{"kind":"weighted","w1":1,"w2":1},
			"forecasters":["fft10"],"scalerMean":[0],"scalerScale":[1],"centroids":[[0,0]],"perGroup":["fft10"],"defaultForecaster":"fft10"}`},
		{"centroid mismatch", `{"version":1,"features":["density"],"metric":{"kind":"weighted","w1":1,"w2":1},
			"forecasters":["fft10"],"scalerMean":[0],"scalerScale":[1],"centroids":[[0,1]],"perGroup":["fft10"],"defaultForecaster":"fft10"}`},
		{"bad assignment", `{"version":1,"features":["density"],"metric":{"kind":"weighted","w1":1,"w2":1},
			"forecasters":["fft10"],"scalerMean":[0],"scalerScale":[1],"centroids":[[0]],"perGroup":["ar10"],"defaultForecaster":"fft10"}`},
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c.body)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// A valid minimal model loads.
	ok := `{"version":1,"blockSize":144,"window":120,"horizon":1,
		"features":["density"],"metric":{"kind":"weighted","name":"rum-default","w1":1,"w2":0.01},
		"forecasters":["fft10","warm10"],"scalerMean":[0],"scalerScale":[1],
		"centroids":[[0],[1]],"perGroup":["fft10","warm10"],"defaultForecaster":"warm10"}`
	m, err := Load(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("valid model failed to load: %v", err)
	}
	p := m.NewAppPolicy(0)
	if got := p.Target([]float64{1, 2, 3}, 1); got < 0 {
		t.Errorf("loaded model target = %d", got)
	}
}
