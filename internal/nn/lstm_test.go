package nn

import (
	"math"
	"testing"
)

// windows builds sequence-to-one training pairs from a scalar series.
func windows(series []float64, w int) (seqs [][][]float64, targets []float64) {
	for i := 0; i+w < len(series); i++ {
		seq := make([][]float64, w)
		for j := 0; j < w; j++ {
			seq[j] = []float64{series[i+j]}
		}
		seqs = append(seqs, seq)
		targets = append(targets, series[i+w])
	}
	return seqs, targets
}

func TestLSTMDeterministicInit(t *testing.T) {
	a := NewLSTM(1, 8, 42)
	b := NewLSTM(1, 8, 42)
	seq := [][]float64{{1}, {2}, {3}}
	if a.Predict(seq) != b.Predict(seq) {
		t.Error("same seed should give identical predictions")
	}
	c := NewLSTM(1, 8, 43)
	if a.Predict(seq) == c.Predict(seq) {
		t.Error("different seeds should differ")
	}
}

func TestLSTMPredictEmptySequence(t *testing.T) {
	n := NewLSTM(1, 4, 1)
	if got := n.Predict(nil); got != n.by {
		t.Errorf("empty sequence should return bias, got %v", got)
	}
}

func TestLSTMFitReducesLoss(t *testing.T) {
	// Learn to continue a sine wave.
	series := make([]float64, 200)
	for i := range series {
		series[i] = math.Sin(2*math.Pi*float64(i)/20)*0.5 + 0.5
	}
	seqs, targets := windows(series, 10)
	n := NewLSTM(1, 8, 7)
	// Loss before training.
	var before float64
	for i := range seqs {
		d := n.Predict(seqs[i]) - targets[i]
		before += d * d
	}
	before /= float64(len(seqs))
	cfg := DefaultTrainConfig()
	cfg.Epochs = 25
	after, err := n.Fit(seqs, targets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("training did not reduce loss: before %v after %v", before, after)
	}
	if after > before*0.5 {
		t.Errorf("loss only dropped from %v to %v", before, after)
	}
}

func TestLSTMLearnsConstant(t *testing.T) {
	// Constant target: the network must converge to predicting it.
	seqs := make([][][]float64, 40)
	targets := make([]float64, 40)
	for i := range seqs {
		seqs[i] = [][]float64{{0.3}, {0.3}, {0.3}}
		targets[i] = 0.7
	}
	n := NewLSTM(1, 4, 3)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 100
	cfg.LearnRate = 0.05
	if _, err := n.Fit(seqs, targets, cfg); err != nil {
		t.Fatal(err)
	}
	got := n.Predict(seqs[0])
	if math.Abs(got-0.7) > 0.1 {
		t.Errorf("prediction = %v, want ~0.7", got)
	}
}

func TestLSTMFitErrors(t *testing.T) {
	n := NewLSTM(1, 4, 1)
	if _, err := n.Fit(nil, nil, DefaultTrainConfig()); err == nil {
		t.Error("empty training should error")
	}
	if _, err := n.Fit([][][]float64{{{1}}}, []float64{1, 2}, DefaultTrainConfig()); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestLSTMGradientCheck(t *testing.T) {
	// Numerical gradient check on a single weight: the analytic BPTT
	// gradient must match finite differences.
	n := NewLSTM(1, 3, 5)
	seq := [][]float64{{0.5}, {0.2}, {0.9}, {0.1}}
	target := 0.4

	g := newGrads(n)
	n.backward(seq, target, g)

	check := func(name string, w *float64, analytic float64) {
		const eps = 1e-6
		orig := *w
		*w = orig + eps
		predP := n.forward(seq)
		lossP := (predP - target) * (predP - target)
		*w = orig - eps
		predM := n.forward(seq)
		lossM := (predM - target) * (predM - target)
		*w = orig
		numeric := (lossP - lossM) / (2 * eps)
		if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
			t.Errorf("%s: analytic %v vs numeric %v", name, analytic, numeric)
		}
	}
	check("wy[0]", &n.wy[0], g.wy[0])
	check("by", &n.by, g.by)
	check("wf[0][0]", &n.w[n.wIdx(gateF, 0, 0)], g.w[n.wIdx(gateF, 0, 0)])
	check("wi[1][0]", &n.w[n.wIdx(gateI, 1, 0)], g.w[n.wIdx(gateI, 1, 0)])
	check("wo[2][1]", &n.w[n.wIdx(gateO, 2, 1)], g.w[n.wIdx(gateO, 2, 1)])
	check("wc[0][2]", &n.w[n.wIdx(gateC, 0, 2)], g.w[n.wIdx(gateC, 0, 2)])
	check("bf[1]", &n.b[n.bIdx(gateF, 1)], g.b[n.bIdx(gateF, 1)])
	check("bc[2]", &n.b[n.bIdx(gateC, 2)], g.b[n.bIdx(gateC, 2)])
}

func TestGradientClipping(t *testing.T) {
	n := NewLSTM(1, 3, 9)
	g := newGrads(n)
	// Inflate gradients artificially.
	for i := range g.wy {
		g.wy[i] = 1000
	}
	norm := g.norm()
	if norm <= 5 {
		t.Fatal("test setup: norm should exceed clip")
	}
	g.scale(5 / norm)
	if math.Abs(g.norm()-5) > 1e-9 {
		t.Errorf("clipped norm = %v, want 5", g.norm())
	}
}

func TestLSTMStability(t *testing.T) {
	// Training on noisy data must not produce NaN/Inf weights.
	series := make([]float64, 150)
	for i := range series {
		series[i] = math.Mod(float64(i)*0.37, 1)
	}
	seqs, targets := windows(series, 8)
	n := NewLSTM(1, 6, 11)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 20
	cfg.LearnRate = 0.05
	if _, err := n.Fit(seqs, targets, cfg); err != nil {
		t.Fatal(err)
	}
	pred := n.Predict(seqs[0])
	if math.IsNaN(pred) || math.IsInf(pred, 0) {
		t.Errorf("prediction diverged: %v", pred)
	}
}

func BenchmarkLSTMPredict48(b *testing.B) {
	n := NewLSTM(1, 16, 1)
	seq := make([][]float64, 48)
	for i := range seq {
		seq[i] = []float64{float64(i % 5)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Predict(seq)
	}
}

func BenchmarkLSTMTrainEpoch(b *testing.B) {
	series := make([]float64, 100)
	for i := range series {
		series[i] = math.Sin(float64(i) / 5)
	}
	seqs, targets := windows(series, 10)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := NewLSTM(1, 8, 1)
		if _, err := n.Fit(seqs, targets, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
