package nn

// The pre-fusion LSTM implementation, retained verbatim (ref-prefixed) as
// the correctness oracle and benchmark baseline for the fused rewrite in
// lstm.go — the same pattern as bds_ref_test.go. The equivalence tests
// assert Float64bits-identical weights after initialization, predictions,
// and full training runs.

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

type refLSTM struct {
	inputDim int
	hidden   int

	wf, wi, wo, wc [][]float64
	bf, bi, bo, bc []float64
	wy             []float64
	by             float64
}

func refNewLSTM(inputDim, hidden int, seed int64) *refLSTM {
	if inputDim < 1 {
		inputDim = 1
	}
	if hidden < 1 {
		hidden = 1
	}
	rng := rand.New(rand.NewSource(seed))
	scale := 1 / math.Sqrt(float64(inputDim+hidden))
	mk := func() [][]float64 {
		w := make([][]float64, hidden)
		for i := range w {
			w[i] = make([]float64, inputDim+hidden)
			for j := range w[i] {
				w[i][j] = rng.NormFloat64() * scale
			}
		}
		return w
	}
	vec := func(fill float64) []float64 {
		v := make([]float64, hidden)
		for i := range v {
			v[i] = fill
		}
		return v
	}
	n := &refLSTM{
		inputDim: inputDim, hidden: hidden,
		wf: mk(), wi: mk(), wo: mk(), wc: mk(),
		bf: vec(1),
		bi: vec(0), bo: vec(0), bc: vec(0),
		wy: make([]float64, hidden),
	}
	for i := range n.wy {
		n.wy[i] = rng.NormFloat64() * scale
	}
	return n
}

type refStepCache struct {
	x          []float64
	f, i, o, g []float64
	c, h       []float64
	cPrev      []float64
}

func (n *refLSTM) forward(seq [][]float64) (float64, []refStepCache) {
	h := make([]float64, n.hidden)
	c := make([]float64, n.hidden)
	caches := make([]refStepCache, len(seq))
	for t, in := range seq {
		x := make([]float64, n.inputDim+n.hidden)
		copy(x, in)
		copy(x[n.inputDim:], h)
		sc := refStepCache{
			x: x,
			f: make([]float64, n.hidden), i: make([]float64, n.hidden),
			o: make([]float64, n.hidden), g: make([]float64, n.hidden),
			c: make([]float64, n.hidden), h: make([]float64, n.hidden),
			cPrev: append([]float64(nil), c...),
		}
		for j := 0; j < n.hidden; j++ {
			sc.f[j] = sigmoid(refDot(n.wf[j], x) + n.bf[j])
			sc.i[j] = sigmoid(refDot(n.wi[j], x) + n.bi[j])
			sc.o[j] = sigmoid(refDot(n.wo[j], x) + n.bo[j])
			sc.g[j] = math.Tanh(refDot(n.wc[j], x) + n.bc[j])
			sc.c[j] = sc.f[j]*c[j] + sc.i[j]*sc.g[j]
			sc.h[j] = sc.o[j] * math.Tanh(sc.c[j])
		}
		copy(c, sc.c)
		copy(h, sc.h)
		caches[t] = sc
	}
	pred := n.by
	for j := 0; j < n.hidden; j++ {
		pred += n.wy[j] * h[j]
	}
	return pred, caches
}

func (n *refLSTM) Predict(seq [][]float64) float64 {
	if len(seq) == 0 {
		return n.by
	}
	pred, _ := n.forward(seq)
	return pred
}

type refGrads struct {
	wf, wi, wo, wc [][]float64
	bf, bi, bo, bc []float64
	wy             []float64
	by             float64
}

func refNewGrads(n *refLSTM) *refGrads {
	mk := func() [][]float64 {
		w := make([][]float64, n.hidden)
		for i := range w {
			w[i] = make([]float64, n.inputDim+n.hidden)
		}
		return w
	}
	return &refGrads{
		wf: mk(), wi: mk(), wo: mk(), wc: mk(),
		bf: make([]float64, n.hidden), bi: make([]float64, n.hidden),
		bo: make([]float64, n.hidden), bc: make([]float64, n.hidden),
		wy: make([]float64, n.hidden),
	}
}

func (n *refLSTM) backward(seq [][]float64, target float64, g *refGrads) float64 {
	pred, caches := n.forward(seq)
	diff := pred - target
	loss := diff * diff

	last := caches[len(caches)-1]
	dh := make([]float64, n.hidden)
	for j := 0; j < n.hidden; j++ {
		g.wy[j] += 2 * diff * last.h[j]
		dh[j] = 2 * diff * n.wy[j]
	}
	g.by += 2 * diff

	dc := make([]float64, n.hidden)
	for t := len(caches) - 1; t >= 0; t-- {
		sc := caches[t]
		dhNext := make([]float64, n.hidden)
		dcNext := make([]float64, n.hidden)
		for j := 0; j < n.hidden; j++ {
			tanhC := math.Tanh(sc.c[j])
			do := dh[j] * tanhC
			dcj := dc[j] + dh[j]*sc.o[j]*(1-tanhC*tanhC)
			df := dcj * sc.cPrev[j]
			di := dcj * sc.g[j]
			dg := dcj * sc.i[j]
			dcNext[j] = dcj * sc.f[j]

			dfPre := df * sc.f[j] * (1 - sc.f[j])
			diPre := di * sc.i[j] * (1 - sc.i[j])
			doPre := do * sc.o[j] * (1 - sc.o[j])
			dgPre := dg * (1 - sc.g[j]*sc.g[j])

			g.bf[j] += dfPre
			g.bi[j] += diPre
			g.bo[j] += doPre
			g.bc[j] += dgPre
			for k, xv := range sc.x {
				g.wf[j][k] += dfPre * xv
				g.wi[j][k] += diPre * xv
				g.wo[j][k] += doPre * xv
				g.wc[j][k] += dgPre * xv
				if k >= n.inputDim {
					hIdx := k - n.inputDim
					dhNext[hIdx] += dfPre*n.wf[j][k] + diPre*n.wi[j][k] +
						doPre*n.wo[j][k] + dgPre*n.wc[j][k]
				}
			}
		}
		dh = dhNext
		dc = dcNext
	}
	return loss
}

func (n *refLSTM) Fit(seqs [][][]float64, targets []float64, cfg TrainConfig) (float64, error) {
	if len(seqs) == 0 || len(seqs) != len(targets) {
		return 0, errors.New("nn: bad training data")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.LearnRate <= 0 {
		cfg.LearnRate = 0.01
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var epochLoss float64
		for start := 0; start < len(seqs); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(seqs) {
				end = len(seqs)
			}
			g := refNewGrads(n)
			for i := start; i < end; i++ {
				epochLoss += n.backward(seqs[i], targets[i], g)
			}
			n.apply(g, cfg.LearnRate/float64(end-start), cfg.ClipNorm)
		}
		lastLoss = epochLoss / float64(len(seqs))
	}
	return lastLoss, nil
}

func (n *refLSTM) apply(g *refGrads, lr, clip float64) {
	if clip > 0 {
		norm := g.norm()
		if norm > clip {
			scale := clip / norm
			g.scale(scale)
		}
	}
	upd := func(w, gw [][]float64) {
		for i := range w {
			for j := range w[i] {
				w[i][j] -= lr * gw[i][j]
			}
		}
	}
	updv := func(v, gv []float64) {
		for i := range v {
			v[i] -= lr * gv[i]
		}
	}
	upd(n.wf, g.wf)
	upd(n.wi, g.wi)
	upd(n.wo, g.wo)
	upd(n.wc, g.wc)
	updv(n.bf, g.bf)
	updv(n.bi, g.bi)
	updv(n.bo, g.bo)
	updv(n.bc, g.bc)
	updv(n.wy, g.wy)
	n.by -= lr * g.by
}

func (g *refGrads) norm() float64 {
	var s float64
	add := func(w [][]float64) {
		for i := range w {
			for _, v := range w[i] {
				s += v * v
			}
		}
	}
	addv := func(v []float64) {
		for _, x := range v {
			s += x * x
		}
	}
	add(g.wf)
	add(g.wi)
	add(g.wo)
	add(g.wc)
	addv(g.bf)
	addv(g.bi)
	addv(g.bo)
	addv(g.bc)
	addv(g.wy)
	s += g.by * g.by
	return math.Sqrt(s)
}

func (g *refGrads) scale(f float64) {
	sc := func(w [][]float64) {
		for i := range w {
			for j := range w[i] {
				w[i][j] *= f
			}
		}
	}
	scv := func(v []float64) {
		for i := range v {
			v[i] *= f
		}
	}
	sc(g.wf)
	sc(g.wi)
	sc(g.wo)
	sc(g.wc)
	scv(g.bf)
	scv(g.bi)
	scv(g.bo)
	scv(g.bc)
	scv(g.wy)
	g.by *= f
}

func refDot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// --- equivalence harness ---

// assertWeightsMatchRef compares every parameter of the fused model against
// the reference bit-for-bit.
func assertWeightsMatchRef(t *testing.T, n *LSTM, r *refLSTM) {
	t.Helper()
	gates := []struct {
		name string
		gate int
		w    [][]float64
		b    []float64
	}{
		{"f", gateF, r.wf, r.bf},
		{"i", gateI, r.wi, r.bi},
		{"o", gateO, r.wo, r.bo},
		{"c", gateC, r.wc, r.bc},
	}
	for _, gt := range gates {
		for row := 0; row < r.hidden; row++ {
			for col := range gt.w[row] {
				got := n.w[n.wIdx(gt.gate, row, col)]
				want := gt.w[row][col]
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("w%s[%d][%d] = %v, ref %v", gt.name, row, col, got, want)
				}
			}
			got := n.b[n.bIdx(gt.gate, row)]
			if math.Float64bits(got) != math.Float64bits(gt.b[row]) {
				t.Fatalf("b%s[%d] = %v, ref %v", gt.name, row, got, gt.b[row])
			}
		}
	}
	for j := range r.wy {
		if math.Float64bits(n.wy[j]) != math.Float64bits(r.wy[j]) {
			t.Fatalf("wy[%d] = %v, ref %v", j, n.wy[j], r.wy[j])
		}
	}
	if math.Float64bits(n.by) != math.Float64bits(r.by) {
		t.Fatalf("by = %v, ref %v", n.by, r.by)
	}
}

// lstmDataset builds a deterministic (sequences, targets) regression set.
func lstmDataset(rng *rand.Rand, count, seqLen, inputDim int) ([][][]float64, []float64) {
	seqs := make([][][]float64, count)
	targets := make([]float64, count)
	for i := range seqs {
		seq := make([][]float64, seqLen)
		var sum float64
		for t := range seq {
			in := make([]float64, inputDim)
			for d := range in {
				in[d] = rng.NormFloat64()
			}
			seq[t] = in
			sum += in[0]
		}
		seqs[i] = seq
		targets[i] = math.Sin(sum) + 0.1*rng.NormFloat64()
	}
	return seqs, targets
}

// TestLSTMInitMatchesReference: same seed, bit-identical parameters (the
// fused layout consumes the RNG in the reference wf,wi,wo,wc,wy order).
func TestLSTMInitMatchesReference(t *testing.T) {
	for _, cfg := range []struct {
		in, hid int
		seed    int64
	}{
		{1, 1, 1}, {1, 8, 7}, {3, 16, 42}, {2, 5, -9},
	} {
		n := NewLSTM(cfg.in, cfg.hid, cfg.seed)
		r := refNewLSTM(cfg.in, cfg.hid, cfg.seed)
		assertWeightsMatchRef(t, n, r)
	}
}

// TestLSTMPredictMatchesReference: fused forward is bit-identical on random
// sequences of varying length, including repeated calls on shared scratch.
func TestLSTMPredictMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, inputDim := range []int{1, 3} {
		n := NewLSTM(inputDim, 12, 99)
		r := refNewLSTM(inputDim, 12, 99)
		// Interleave lengths so scratch reuse across different T is covered.
		for _, seqLen := range []int{1, 48, 5, 48, 2, 17} {
			seq := make([][]float64, seqLen)
			for t := range seq {
				in := make([]float64, inputDim)
				for d := range in {
					in[d] = rng.NormFloat64() * 3
				}
				seq[t] = in
			}
			got := n.Predict(seq)
			want := r.Predict(seq)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("inputDim=%d seqLen=%d: Predict = %v, ref %v", inputDim, seqLen, got, want)
			}
		}
	}
}

// TestLSTMFitMatchesReference: a full training run — losses, final weights,
// and post-training predictions — is bit-identical to the reference,
// including the gradient-clipping path.
func TestLSTMFitMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	seqs, targets := lstmDataset(rng, 30, 10, 1)
	cfg := TrainConfig{Epochs: 5, LearnRate: 0.05, ClipNorm: 1, BatchSize: 7}

	n := NewLSTM(1, 8, 5)
	r := refNewLSTM(1, 8, 5)
	gotLoss, err := n.Fit(seqs, targets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantLoss, err := r.Fit(seqs, targets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(gotLoss) != math.Float64bits(wantLoss) {
		t.Fatalf("final loss = %v, ref %v", gotLoss, wantLoss)
	}
	assertWeightsMatchRef(t, n, r)

	probe, _ := lstmDataset(rng, 5, 10, 1)
	for i, seq := range probe {
		got := n.Predict(seq)
		want := r.Predict(seq)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("post-fit Predict[%d] = %v, ref %v", i, got, want)
		}
	}
}

// Benchmark baselines: the pre-fusion implementation at the same shapes as
// BenchmarkLSTMPredict48 / BenchmarkLSTMTrainEpoch in lstm_test.go.

func BenchmarkLSTMRefPredict48(b *testing.B) {
	n := refNewLSTM(1, 16, 1)
	seq := make([][]float64, 48)
	for i := range seq {
		seq[i] = []float64{float64(i % 5)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Predict(seq)
	}
}

func BenchmarkLSTMRefTrainEpoch(b *testing.B) {
	series := make([]float64, 100)
	for i := range series {
		series[i] = math.Sin(float64(i) / 5)
	}
	seqs, targets := windows(series, 10)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := refNewLSTM(1, 8, 1)
		if _, err := n.Fit(seqs, targets, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
