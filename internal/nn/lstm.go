// Package nn implements a small LSTM regressor with backpropagation through
// time, the substrate for the Aquatope baseline (§5.1.1): Aquatope trains a
// per-application LSTM over 48-minute input windows to forecast invocations.
// The implementation is stdlib-only and deterministic for a given seed.
//
// The forward and backward passes run fused over a single contiguous
// gate-major weight matrix with preallocated sequence caches, replacing the
// per-step slice allocations of the original implementation. The original
// is retained verbatim in lstm_ref_test.go (the bds_ref_test.go pattern)
// and every pass is bit-identical to it: the four gate dot products
// accumulate in the same element order, the BPTT recursion performs the
// same operations per step, and initialization consumes the seeded RNG in
// the same sequence.
package nn

import (
	"errors"
	"math"
	"math/rand"
	"sync"
)

// Gate block indices into the fused weight and bias layout, in the
// reference's wf/wi/wo/wc order.
const (
	gateF = iota
	gateI
	gateO
	gateC
	numGates
)

// LSTM is a single-layer LSTM followed by a scalar dense head. It predicts
// one value from an input sequence (sequence-to-one regression).
//
// An LSTM carries internal scratch state; Predict and Fit serialize on an
// internal mutex, so a model is safe for concurrent use but calls do not
// run in parallel. Use one model per goroutine for parallel inference (the
// Aquatope sweep trains per-app models, which already has this shape).
type LSTM struct {
	inputDim int
	hidden   int

	// Gate weights fused into one contiguous gate-major matrix: four
	// blocks [forget | input | output | cell], each hidden rows of
	// inputDim+hidden columns, row-major. Biases share the gate-major
	// order. Row r of gate G is w[(G*hidden+r)*D : ...+D], D = inputDim+hidden.
	w []float64
	b []float64
	// Output head.
	wy []float64
	by float64

	mu  sync.Mutex
	scr scratch
	g   *grads
}

// wIdx returns the flat index of gate weight [gate][row][col] in the
// reference layout.
func (n *LSTM) wIdx(gate, row, col int) int {
	return (gate*n.hidden+row)*(n.inputDim+n.hidden) + col
}

// bIdx returns the flat index of gate bias [gate][row].
func (n *LSTM) bIdx(gate, row int) int { return gate*n.hidden + row }

// NewLSTM constructs an LSTM with Xavier-style initialization. The seeded
// RNG is consumed in the reference order — wf, wi, wo, wc rows, then the
// output head — so weights are bit-identical to the reference for the
// same seed.
func NewLSTM(inputDim, hidden int, seed int64) *LSTM {
	if inputDim < 1 {
		inputDim = 1
	}
	if hidden < 1 {
		hidden = 1
	}
	rng := rand.New(rand.NewSource(seed))
	scale := 1 / math.Sqrt(float64(inputDim+hidden))
	d := inputDim + hidden
	n := &LSTM{
		inputDim: inputDim, hidden: hidden,
		w:  make([]float64, numGates*hidden*d),
		b:  make([]float64, numGates*hidden),
		wy: make([]float64, hidden),
	}
	for i := range n.w {
		n.w[i] = rng.NormFloat64() * scale
	}
	for j := 0; j < hidden; j++ {
		n.b[n.bIdx(gateF, j)] = 1 // forget-gate bias 1: standard trick for gradient flow
	}
	for i := range n.wy {
		n.wy[i] = rng.NormFloat64() * scale
	}
	return n
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// scratch holds the preallocated forward/backward state: the concatenated
// inputs, gate activations, and cell/hidden trajectories for a whole
// sequence, plus the BPTT deltas. Buffers grow to the longest sequence
// seen and are reused across calls.
type scratch struct {
	xs    []float64 // T×D concatenated [input, prevHidden]
	gates []float64 // T×4H activations per step: [f | i | o | g]
	cs    []float64 // T×H cell states
	hs    []float64 // T×H hidden states
	h, c  []float64 // current hidden/cell, length H

	dh, dc, dhn, dcn []float64 // BPTT deltas, length H
	zero             []float64 // all-zero H slice: cPrev at t=0
}

func growSlice(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func growZeroSlice(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// forward runs the fused forward pass, recording the per-step state needed
// by BPTT into the scratch caches. Each gate's dot product accumulates
// x[k] terms in ascending k, the reference order, so all activations are
// bit-identical; fusing only interleaves the four independent sums.
func (n *LSTM) forward(seq [][]float64) float64 {
	d := n.inputDim + n.hidden
	hh := n.hidden
	s := &n.scr
	s.xs = growSlice(s.xs, len(seq)*d)
	s.gates = growSlice(s.gates, len(seq)*numGates*hh)
	s.cs = growSlice(s.cs, len(seq)*hh)
	s.hs = growSlice(s.hs, len(seq)*hh)
	s.h = growZeroSlice(s.h, hh)
	s.c = growZeroSlice(s.c, hh)
	h, c := s.h, s.c
	for t, in := range seq {
		x := s.xs[t*d : (t+1)*d]
		copy(x, in)
		copy(x[n.inputDim:], h)
		gr := s.gates[t*numGates*hh : (t+1)*numGates*hh]
		f, iv, o, gg := gr[:hh], gr[hh:2*hh], gr[2*hh:3*hh], gr[3*hh:4*hh]
		ct := s.cs[t*hh : (t+1)*hh]
		ht := s.hs[t*hh : (t+1)*hh]
		for j := 0; j < hh; j++ {
			wf := n.w[(gateF*hh+j)*d : (gateF*hh+j)*d+d]
			wi := n.w[(gateI*hh+j)*d : (gateI*hh+j)*d+d]
			wo := n.w[(gateO*hh+j)*d : (gateO*hh+j)*d+d]
			wc := n.w[(gateC*hh+j)*d : (gateC*hh+j)*d+d]
			var sf, si, so, sg float64
			for k, xk := range x {
				sf += wf[k] * xk
				si += wi[k] * xk
				so += wo[k] * xk
				sg += wc[k] * xk
			}
			f[j] = sigmoid(sf + n.b[gateF*hh+j])
			iv[j] = sigmoid(si + n.b[gateI*hh+j])
			o[j] = sigmoid(so + n.b[gateO*hh+j])
			gg[j] = math.Tanh(sg + n.b[gateC*hh+j])
			ct[j] = f[j]*c[j] + iv[j]*gg[j]
			ht[j] = o[j] * math.Tanh(ct[j])
		}
		copy(c, ct)
		copy(h, ht)
	}
	pred := n.by
	for j := 0; j < hh; j++ {
		pred += n.wy[j] * h[j]
	}
	return pred
}

// Predict returns the model output for one input sequence. Each element of
// seq must have length inputDim.
func (n *LSTM) Predict(seq [][]float64) float64 {
	if len(seq) == 0 {
		return n.by
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.predictLocked(seq)
}

// predictLocked is the inference-only forward pass: same fused arithmetic
// as forward, but only the running hidden/cell vectors are kept — no
// per-step caches, so inference touches a fixed small footprint regardless
// of sequence length.
func (n *LSTM) predictLocked(seq [][]float64) float64 {
	d := n.inputDim + n.hidden
	hh := n.hidden
	s := &n.scr
	s.xs = growSlice(s.xs, d)
	s.cs = growSlice(s.cs, hh)
	s.hs = growSlice(s.hs, hh)
	s.h = growZeroSlice(s.h, hh)
	s.c = growZeroSlice(s.c, hh)
	x := s.xs[:d]
	ct := s.cs[:hh]
	ht := s.hs[:hh]
	h, c := s.h, s.c
	for _, in := range seq {
		copy(x, in)
		copy(x[n.inputDim:], h)
		for j := 0; j < hh; j++ {
			wf := n.w[(gateF*hh+j)*d : (gateF*hh+j)*d+d]
			wi := n.w[(gateI*hh+j)*d : (gateI*hh+j)*d+d]
			wo := n.w[(gateO*hh+j)*d : (gateO*hh+j)*d+d]
			wc := n.w[(gateC*hh+j)*d : (gateC*hh+j)*d+d]
			var sf, si, so, sg float64
			for k, xk := range x {
				sf += wf[k] * xk
				si += wi[k] * xk
				so += wo[k] * xk
				sg += wc[k] * xk
			}
			fj := sigmoid(sf + n.b[gateF*hh+j])
			ij := sigmoid(si + n.b[gateI*hh+j])
			oj := sigmoid(so + n.b[gateO*hh+j])
			gj := math.Tanh(sg + n.b[gateC*hh+j])
			ct[j] = fj*c[j] + ij*gj
			ht[j] = oj * math.Tanh(ct[j])
		}
		copy(c, ct)
		copy(h, ht)
	}
	pred := n.by
	for j := 0; j < hh; j++ {
		pred += n.wy[j] * h[j]
	}
	return pred
}

// grads accumulates parameter gradients in the same fused layout as the
// model, so norm/scale/apply iterate in the reference wf,wi,wo,wc order.
type grads struct {
	w, b []float64
	wy   []float64
	by   float64
}

func newGrads(n *LSTM) *grads {
	d := n.inputDim + n.hidden
	return &grads{
		w:  make([]float64, numGates*n.hidden*d),
		b:  make([]float64, numGates*n.hidden),
		wy: make([]float64, n.hidden),
	}
}

// reset zeroes the accumulator for the next mini-batch.
func (g *grads) reset() {
	for i := range g.w {
		g.w[i] = 0
	}
	for i := range g.b {
		g.b[i] = 0
	}
	for i := range g.wy {
		g.wy[i] = 0
	}
	g.by = 0
}

// backward accumulates gradients for one (sequence, target) example and
// returns the squared error. The per-step recursion is the reference BPTT
// with the four per-gate weight rows walked in one fused k loop; every
// accumulation (including the four-term dhNext sum) keeps its reference
// evaluation order.
func (n *LSTM) backward(seq [][]float64, target float64, g *grads) float64 {
	pred := n.forward(seq)
	diff := pred - target
	loss := diff * diff

	d := n.inputDim + n.hidden
	hh := n.hidden
	s := &n.scr
	s.dh = growSlice(s.dh, hh)
	s.dc = growZeroSlice(s.dc, hh)
	s.dhn = growSlice(s.dhn, hh)
	s.dcn = growSlice(s.dcn, hh)
	s.zero = growZeroSlice(s.zero, hh)
	dh, dc, dhn, dcn := s.dh, s.dc, s.dhn, s.dcn

	// Output head gradients.
	lastH := s.hs[(len(seq)-1)*hh : len(seq)*hh]
	for j := 0; j < hh; j++ {
		g.wy[j] += 2 * diff * lastH[j]
		dh[j] = 2 * diff * n.wy[j]
	}
	g.by += 2 * diff

	for t := len(seq) - 1; t >= 0; t-- {
		x := s.xs[t*d : (t+1)*d]
		gr := s.gates[t*numGates*hh : (t+1)*numGates*hh]
		f, iv, o, gg := gr[:hh], gr[hh:2*hh], gr[2*hh:3*hh], gr[3*hh:4*hh]
		ct := s.cs[t*hh : (t+1)*hh]
		cPrev := s.zero
		if t > 0 {
			cPrev = s.cs[(t-1)*hh : t*hh]
		}
		for j := 0; j < hh; j++ {
			dhn[j] = 0
		}
		for j := 0; j < hh; j++ {
			tanhC := math.Tanh(ct[j])
			do := dh[j] * tanhC
			dcj := dc[j] + dh[j]*o[j]*(1-tanhC*tanhC)
			df := dcj * cPrev[j]
			di := dcj * gg[j]
			dg := dcj * iv[j]
			dcn[j] = dcj * f[j]

			// Pre-activation gradients.
			dfPre := df * f[j] * (1 - f[j])
			diPre := di * iv[j] * (1 - iv[j])
			doPre := do * o[j] * (1 - o[j])
			dgPre := dg * (1 - gg[j]*gg[j])

			g.b[gateF*hh+j] += dfPre
			g.b[gateI*hh+j] += diPre
			g.b[gateO*hh+j] += doPre
			g.b[gateC*hh+j] += dgPre
			gwf := g.w[(gateF*hh+j)*d : (gateF*hh+j)*d+d]
			gwi := g.w[(gateI*hh+j)*d : (gateI*hh+j)*d+d]
			gwo := g.w[(gateO*hh+j)*d : (gateO*hh+j)*d+d]
			gwc := g.w[(gateC*hh+j)*d : (gateC*hh+j)*d+d]
			wf := n.w[(gateF*hh+j)*d : (gateF*hh+j)*d+d]
			wi := n.w[(gateI*hh+j)*d : (gateI*hh+j)*d+d]
			wo := n.w[(gateO*hh+j)*d : (gateO*hh+j)*d+d]
			wc := n.w[(gateC*hh+j)*d : (gateC*hh+j)*d+d]
			for k, xv := range x {
				gwf[k] += dfPre * xv
				gwi[k] += diPre * xv
				gwo[k] += doPre * xv
				gwc[k] += dgPre * xv
				if k >= n.inputDim {
					hIdx := k - n.inputDim
					dhn[hIdx] += dfPre*wf[k] + diPre*wi[k] +
						doPre*wo[k] + dgPre*wc[k]
				}
			}
		}
		dh, dhn = dhn, dh
		dc, dcn = dcn, dc
	}
	s.dh, s.dc, s.dhn, s.dcn = dh, dc, dhn, dcn
	return loss
}

// TrainConfig controls Fit.
type TrainConfig struct {
	Epochs    int
	LearnRate float64
	ClipNorm  float64 // gradient clipping threshold (0 disables)
	BatchSize int
}

// DefaultTrainConfig returns conservative settings that converge on the
// small per-app datasets Aquatope uses.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 30, LearnRate: 0.01, ClipNorm: 5, BatchSize: 16}
}

// Fit trains the network on (sequence, target) pairs with mini-batch SGD
// and returns the mean squared error of the final epoch. The gradient
// accumulator is allocated once and zeroed per batch.
func (n *LSTM) Fit(seqs [][][]float64, targets []float64, cfg TrainConfig) (float64, error) {
	if len(seqs) == 0 || len(seqs) != len(targets) {
		return 0, errors.New("nn: bad training data")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.LearnRate <= 0 {
		cfg.LearnRate = 0.01
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.g == nil {
		n.g = newGrads(n)
	}
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var epochLoss float64
		for start := 0; start < len(seqs); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(seqs) {
				end = len(seqs)
			}
			n.g.reset()
			for i := start; i < end; i++ {
				epochLoss += n.backward(seqs[i], targets[i], n.g)
			}
			n.apply(n.g, cfg.LearnRate/float64(end-start), cfg.ClipNorm)
		}
		lastLoss = epochLoss / float64(len(seqs))
	}
	return lastLoss, nil
}

// apply performs one clipped SGD update.
func (n *LSTM) apply(g *grads, lr, clip float64) {
	if clip > 0 {
		norm := g.norm()
		if norm > clip {
			scale := clip / norm
			g.scale(scale)
		}
	}
	for i := range n.w {
		n.w[i] -= lr * g.w[i]
	}
	for i := range n.b {
		n.b[i] -= lr * g.b[i]
	}
	for i := range n.wy {
		n.wy[i] -= lr * g.wy[i]
	}
	n.by -= lr * g.by
}

// norm accumulates over w (gate-major: the reference wf,wi,wo,wc order),
// then b (bf,bi,bo,bc), then the head — the reference summation order.
func (g *grads) norm() float64 {
	var s float64
	for _, v := range g.w {
		s += v * v
	}
	for _, v := range g.b {
		s += v * v
	}
	for _, v := range g.wy {
		s += v * v
	}
	s += g.by * g.by
	return math.Sqrt(s)
}

func (g *grads) scale(f float64) {
	for i := range g.w {
		g.w[i] *= f
	}
	for i := range g.b {
		g.b[i] *= f
	}
	for i := range g.wy {
		g.wy[i] *= f
	}
	g.by *= f
}
