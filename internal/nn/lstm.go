// Package nn implements a small LSTM regressor with backpropagation through
// time, the substrate for the Aquatope baseline (§5.1.1): Aquatope trains a
// per-application LSTM over 48-minute input windows to forecast invocations.
// The implementation is stdlib-only and deterministic for a given seed.
package nn

import (
	"errors"
	"math"
	"math/rand"
)

// LSTM is a single-layer LSTM followed by a scalar dense head. It predicts
// one value from an input sequence (sequence-to-one regression).
type LSTM struct {
	inputDim int
	hidden   int

	// Gate weights, laid out [hidden][inputDim+hidden], plus biases.
	wf, wi, wo, wc [][]float64
	bf, bi, bo, bc []float64
	// Output head.
	wy []float64
	by float64
}

// NewLSTM constructs an LSTM with Xavier-style initialization.
func NewLSTM(inputDim, hidden int, seed int64) *LSTM {
	if inputDim < 1 {
		inputDim = 1
	}
	if hidden < 1 {
		hidden = 1
	}
	rng := rand.New(rand.NewSource(seed))
	scale := 1 / math.Sqrt(float64(inputDim+hidden))
	mk := func() [][]float64 {
		w := make([][]float64, hidden)
		for i := range w {
			w[i] = make([]float64, inputDim+hidden)
			for j := range w[i] {
				w[i][j] = rng.NormFloat64() * scale
			}
		}
		return w
	}
	vec := func(fill float64) []float64 {
		v := make([]float64, hidden)
		for i := range v {
			v[i] = fill
		}
		return v
	}
	n := &LSTM{
		inputDim: inputDim, hidden: hidden,
		wf: mk(), wi: mk(), wo: mk(), wc: mk(),
		bf: vec(1), // forget-gate bias 1: standard trick for gradient flow
		bi: vec(0), bo: vec(0), bc: vec(0),
		wy: make([]float64, hidden),
	}
	for i := range n.wy {
		n.wy[i] = rng.NormFloat64() * scale
	}
	return n
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// step state captured for BPTT.
type stepCache struct {
	x          []float64 // concatenated [input, prevHidden]
	f, i, o, g []float64
	c, h       []float64
	cPrev      []float64
}

// forward runs the sequence and returns the prediction plus per-step caches.
func (n *LSTM) forward(seq [][]float64) (float64, []stepCache) {
	h := make([]float64, n.hidden)
	c := make([]float64, n.hidden)
	caches := make([]stepCache, len(seq))
	for t, in := range seq {
		x := make([]float64, n.inputDim+n.hidden)
		copy(x, in)
		copy(x[n.inputDim:], h)
		sc := stepCache{
			x: x,
			f: make([]float64, n.hidden), i: make([]float64, n.hidden),
			o: make([]float64, n.hidden), g: make([]float64, n.hidden),
			c: make([]float64, n.hidden), h: make([]float64, n.hidden),
			cPrev: append([]float64(nil), c...),
		}
		for j := 0; j < n.hidden; j++ {
			sc.f[j] = sigmoid(dot(n.wf[j], x) + n.bf[j])
			sc.i[j] = sigmoid(dot(n.wi[j], x) + n.bi[j])
			sc.o[j] = sigmoid(dot(n.wo[j], x) + n.bo[j])
			sc.g[j] = math.Tanh(dot(n.wc[j], x) + n.bc[j])
			sc.c[j] = sc.f[j]*c[j] + sc.i[j]*sc.g[j]
			sc.h[j] = sc.o[j] * math.Tanh(sc.c[j])
		}
		copy(c, sc.c)
		copy(h, sc.h)
		caches[t] = sc
	}
	pred := n.by
	for j := 0; j < n.hidden; j++ {
		pred += n.wy[j] * h[j]
	}
	return pred, caches
}

// Predict returns the model output for one input sequence. Each element of
// seq must have length inputDim.
func (n *LSTM) Predict(seq [][]float64) float64 {
	if len(seq) == 0 {
		return n.by
	}
	pred, _ := n.forward(seq)
	return pred
}

// grads accumulates parameter gradients.
type grads struct {
	wf, wi, wo, wc [][]float64
	bf, bi, bo, bc []float64
	wy             []float64
	by             float64
}

func newGrads(n *LSTM) *grads {
	mk := func() [][]float64 {
		w := make([][]float64, n.hidden)
		for i := range w {
			w[i] = make([]float64, n.inputDim+n.hidden)
		}
		return w
	}
	return &grads{
		wf: mk(), wi: mk(), wo: mk(), wc: mk(),
		bf: make([]float64, n.hidden), bi: make([]float64, n.hidden),
		bo: make([]float64, n.hidden), bc: make([]float64, n.hidden),
		wy: make([]float64, n.hidden),
	}
}

// backward accumulates gradients for one (sequence, target) example and
// returns the squared error.
func (n *LSTM) backward(seq [][]float64, target float64, g *grads) float64 {
	pred, caches := n.forward(seq)
	diff := pred - target
	loss := diff * diff

	// Output head gradients.
	last := caches[len(caches)-1]
	dh := make([]float64, n.hidden)
	for j := 0; j < n.hidden; j++ {
		g.wy[j] += 2 * diff * last.h[j]
		dh[j] = 2 * diff * n.wy[j]
	}
	g.by += 2 * diff

	dc := make([]float64, n.hidden)
	for t := len(caches) - 1; t >= 0; t-- {
		sc := caches[t]
		dhNext := make([]float64, n.hidden)
		dcNext := make([]float64, n.hidden)
		for j := 0; j < n.hidden; j++ {
			tanhC := math.Tanh(sc.c[j])
			do := dh[j] * tanhC
			dcj := dc[j] + dh[j]*sc.o[j]*(1-tanhC*tanhC)
			df := dcj * sc.cPrev[j]
			di := dcj * sc.g[j]
			dg := dcj * sc.i[j]
			dcNext[j] = dcj * sc.f[j]

			// Pre-activation gradients.
			dfPre := df * sc.f[j] * (1 - sc.f[j])
			diPre := di * sc.i[j] * (1 - sc.i[j])
			doPre := do * sc.o[j] * (1 - sc.o[j])
			dgPre := dg * (1 - sc.g[j]*sc.g[j])

			g.bf[j] += dfPre
			g.bi[j] += diPre
			g.bo[j] += doPre
			g.bc[j] += dgPre
			for k, xv := range sc.x {
				g.wf[j][k] += dfPre * xv
				g.wi[j][k] += diPre * xv
				g.wo[j][k] += doPre * xv
				g.wc[j][k] += dgPre * xv
				if k >= n.inputDim {
					hIdx := k - n.inputDim
					dhNext[hIdx] += dfPre*n.wf[j][k] + diPre*n.wi[j][k] +
						doPre*n.wo[j][k] + dgPre*n.wc[j][k]
				}
			}
		}
		dh = dhNext
		dc = dcNext
	}
	return loss
}

// TrainConfig controls Fit.
type TrainConfig struct {
	Epochs    int
	LearnRate float64
	ClipNorm  float64 // gradient clipping threshold (0 disables)
	BatchSize int
}

// DefaultTrainConfig returns conservative settings that converge on the
// small per-app datasets Aquatope uses.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 30, LearnRate: 0.01, ClipNorm: 5, BatchSize: 16}
}

// Fit trains the network on (sequence, target) pairs with mini-batch SGD
// and returns the mean squared error of the final epoch.
func (n *LSTM) Fit(seqs [][][]float64, targets []float64, cfg TrainConfig) (float64, error) {
	if len(seqs) == 0 || len(seqs) != len(targets) {
		return 0, errors.New("nn: bad training data")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.LearnRate <= 0 {
		cfg.LearnRate = 0.01
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var epochLoss float64
		for start := 0; start < len(seqs); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(seqs) {
				end = len(seqs)
			}
			g := newGrads(n)
			for i := start; i < end; i++ {
				epochLoss += n.backward(seqs[i], targets[i], g)
			}
			n.apply(g, cfg.LearnRate/float64(end-start), cfg.ClipNorm)
		}
		lastLoss = epochLoss / float64(len(seqs))
	}
	return lastLoss, nil
}

// apply performs one clipped SGD update.
func (n *LSTM) apply(g *grads, lr, clip float64) {
	if clip > 0 {
		norm := g.norm()
		if norm > clip {
			scale := clip / norm
			g.scale(scale)
		}
	}
	upd := func(w, gw [][]float64) {
		for i := range w {
			for j := range w[i] {
				w[i][j] -= lr * gw[i][j]
			}
		}
	}
	updv := func(v, gv []float64) {
		for i := range v {
			v[i] -= lr * gv[i]
		}
	}
	upd(n.wf, g.wf)
	upd(n.wi, g.wi)
	upd(n.wo, g.wo)
	upd(n.wc, g.wc)
	updv(n.bf, g.bf)
	updv(n.bi, g.bi)
	updv(n.bo, g.bo)
	updv(n.bc, g.bc)
	updv(n.wy, g.wy)
	n.by -= lr * g.by
}

func (g *grads) norm() float64 {
	var s float64
	add := func(w [][]float64) {
		for i := range w {
			for _, v := range w[i] {
				s += v * v
			}
		}
	}
	addv := func(v []float64) {
		for _, x := range v {
			s += x * x
		}
	}
	add(g.wf)
	add(g.wi)
	add(g.wo)
	add(g.wc)
	addv(g.bf)
	addv(g.bi)
	addv(g.bo)
	addv(g.bc)
	addv(g.wy)
	s += g.by * g.by
	return math.Sqrt(s)
}

func (g *grads) scale(f float64) {
	sc := func(w [][]float64) {
		for i := range w {
			for j := range w[i] {
				w[i][j] *= f
			}
		}
	}
	scv := func(v []float64) {
		for i := range v {
			v[i] *= f
		}
	}
	sc(g.wf)
	sc(g.wi)
	sc(g.wo)
	sc(g.wc)
	scv(g.bf)
	scv(g.bi)
	scv(g.bo)
	scv(g.bc)
	scv(g.wy)
	g.by *= f
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
