// Package timeseries defines the fixed-interval series representation used
// across FeMux, plus the transforms between raw invocation events and the
// average-concurrency representation Knative (and hence FeMux, §4.3.1)
// operates on, and the block slicing used for feature extraction (§4.3.2).
package timeseries

import (
	"fmt"
	"time"
)

// Series is a fixed-interval time series: Values[i] covers
// [Start + i*Step, Start + (i+1)*Step). Start is an offset in the same unit
// space as Step and is usually zero (trace-relative time).
type Series struct {
	Step   time.Duration
	Values []float64
}

// New returns a Series with the given step and values.
func New(step time.Duration, values []float64) Series {
	return Series{Step: step, Values: values}
}

// Len returns the number of intervals.
func (s Series) Len() int { return len(s.Values) }

// Duration returns the total time the series covers.
func (s Series) Duration() time.Duration {
	return time.Duration(len(s.Values)) * s.Step
}

// Clone returns a deep copy of the series.
func (s Series) Clone() Series {
	return Series{Step: s.Step, Values: append([]float64(nil), s.Values...)}
}

// Window returns the last n values, or all values when fewer exist. The
// returned slice aliases the series.
func (s Series) Window(n int) []float64 {
	if n >= len(s.Values) {
		return s.Values
	}
	return s.Values[len(s.Values)-n:]
}

// Slice returns the sub-series covering intervals [from, to). It panics on
// out-of-range indices, mirroring Go slice semantics.
func (s Series) Slice(from, to int) Series {
	return Series{Step: s.Step, Values: s.Values[from:to]}
}

// Resample aggregates the series to a coarser step, which must be an integer
// multiple of the current step. Each output value is the mean of the inputs
// it covers (mean preserves the average-concurrency semantics). A trailing
// partial bucket is averaged over the intervals present.
func (s Series) Resample(step time.Duration) (Series, error) {
	if step == s.Step {
		return s.Clone(), nil
	}
	if step <= 0 || s.Step <= 0 || step%s.Step != 0 {
		return Series{}, fmt.Errorf("timeseries: cannot resample step %v to %v", s.Step, step)
	}
	factor := int(step / s.Step)
	n := (len(s.Values) + factor - 1) / factor
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := i * factor
		hi := lo + factor
		if hi > len(s.Values) {
			hi = len(s.Values)
		}
		var sum float64
		for _, v := range s.Values[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return Series{Step: step, Values: out}, nil
}

// Interval is a half-open time range [Start, End) used for request spans.
type Interval struct {
	Start time.Duration // offset from trace start
	End   time.Duration
}

// AverageConcurrency converts request spans into the Knative
// average-concurrency representation: for each step-sized bucket, the
// integral of in-flight requests over the bucket divided by the bucket
// length. Spans outside [0, n*step) are clipped. This is the exact quantity
// Knative's autoscaler aggregates from queue-proxy metrics.
func AverageConcurrency(spans []Interval, step time.Duration, n int) Series {
	vals := make([]float64, n)
	if step <= 0 || n == 0 {
		return Series{Step: step, Values: vals}
	}
	total := time.Duration(n) * step
	for _, sp := range spans {
		start, end := sp.Start, sp.End
		if end <= start || end <= 0 || start >= total {
			continue
		}
		if start < 0 {
			start = 0
		}
		if end > total {
			end = total
		}
		first := int(start / step)
		last := int((end - 1) / step)
		for b := first; b <= last && b < n; b++ {
			bStart := time.Duration(b) * step
			bEnd := bStart + step
			lo, hi := start, end
			if lo < bStart {
				lo = bStart
			}
			if hi > bEnd {
				hi = bEnd
			}
			if hi > lo {
				vals[b] += float64(hi-lo) / float64(step)
			}
		}
	}
	return Series{Step: step, Values: vals}
}

// CountsToConcurrency converts per-interval invocation counts plus a mean
// execution duration into approximate average concurrency, assuming
// invocations are uniformly distributed within each interval — the same
// assumption the paper uses when transforming the Azure dataset
// ("uniformly distribute invocations within each minute", §5.1).
// Average concurrency over an interval is arrivalRate × execDuration
// (Little's law) when executions fit in the interval; longer executions
// spill into following intervals, which this transform also accounts for.
func CountsToConcurrency(counts []float64, step, execDuration time.Duration) Series {
	n := len(counts)
	vals := make([]float64, n)
	if step <= 0 {
		return Series{Step: step, Values: vals}
	}
	d := float64(execDuration)
	st := float64(step)
	if d <= 0 {
		return Series{Step: step, Values: vals}
	}
	for i, c := range counts {
		if c <= 0 {
			continue
		}
		// Work contributed by interval i's arrivals is c*d request-time,
		// spread from interval i onward. With uniform arrivals in [0, st),
		// the request-time landing in interval i+k is c times the overlap
		// of [x, x+d) with [k*st, (k+1)*st) averaged over x~U[0,st).
		// We integrate exactly via the trapezoid geometry.
		for k := 0; ; k++ {
			overlap := uniformOverlap(d, st, k)
			if overlap <= 0 {
				break
			}
			if i+k < n {
				vals[i+k] += c * overlap / st
			}
			if float64(k)*st > d+st {
				break
			}
		}
	}
	return Series{Step: step, Values: vals}
}

// uniformOverlap returns E[len([x, x+d) ∩ [k*st, (k+1)*st))] for x uniform
// on [0, st): the expected time a duration-d request started uniformly in
// interval 0 spends inside interval k.
func uniformOverlap(d, st float64, k int) float64 {
	// For a start offset x in [0, st), overlap with [k*st,(k+1)*st) is
	// max(0, min(x+d,(k+1)st) - max(x, k*st)). Integrate numerically-free:
	// the integrand is piecewise linear in x, so sample endpoints of the
	// breakpoint partition and use exact trapezoids.
	a := float64(k) * st
	b := a + st
	f := func(x float64) float64 {
		lo := x
		if lo < a {
			lo = a
		}
		hi := x + d
		if hi > b {
			hi = b
		}
		if hi <= lo {
			return 0
		}
		return hi - lo
	}
	// Breakpoints where min/max switch: x = a, x = b, x = a-d, x = b-d,
	// clipped to [0, st).
	pts := []float64{0, st}
	for _, p := range []float64{a, b, a - d, b - d} {
		if p > 0 && p < st {
			pts = append(pts, p)
		}
	}
	// Sort the small point set.
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && pts[j] < pts[j-1]; j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
	var integral float64
	for i := 1; i < len(pts); i++ {
		w := pts[i] - pts[i-1]
		if w <= 0 {
			continue
		}
		integral += w * (f(pts[i-1]) + f(pts[i])) / 2
	}
	return integral / st
}

// Blocks splits the series into consecutive blocks of blockLen intervals,
// discarding a trailing partial block — FeMux only classifies completed
// blocks (§4.3.2). The returned sub-series alias the original values.
func (s Series) Blocks(blockLen int) []Series {
	if blockLen <= 0 {
		return nil
	}
	n := len(s.Values) / blockLen
	out := make([]Series, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, s.Slice(i*blockLen, (i+1)*blockLen))
	}
	return out
}
