package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesBasics(t *testing.T) {
	s := New(time.Minute, []float64{1, 2, 3, 4})
	if s.Len() != 4 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Duration() != 4*time.Minute {
		t.Errorf("Duration = %v", s.Duration())
	}
	c := s.Clone()
	c.Values[0] = 99
	if s.Values[0] != 1 {
		t.Error("Clone did not copy values")
	}
	w := s.Window(2)
	if len(w) != 2 || w[0] != 3 || w[1] != 4 {
		t.Errorf("Window(2) = %v", w)
	}
	if len(s.Window(10)) != 4 {
		t.Error("Window larger than series should return everything")
	}
	sub := s.Slice(1, 3)
	if sub.Len() != 2 || sub.Values[0] != 2 {
		t.Errorf("Slice = %v", sub.Values)
	}
}

func TestResample(t *testing.T) {
	s := New(time.Second, []float64{1, 3, 5, 7, 9, 11})
	r, err := s.Resample(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 6, 10}
	for i := range want {
		if r.Values[i] != want[i] {
			t.Errorf("Resample[%d] = %v, want %v", i, r.Values[i], want[i])
		}
	}
	if r.Step != 2*time.Second {
		t.Errorf("Step = %v", r.Step)
	}
}

func TestResamplePartialTail(t *testing.T) {
	s := New(time.Second, []float64{2, 4, 6, 8, 10})
	r, err := s.Resample(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Last bucket has a single value; mean over present intervals.
	want := []float64{3, 7, 10}
	if len(r.Values) != 3 {
		t.Fatalf("len = %d", len(r.Values))
	}
	for i := range want {
		if r.Values[i] != want[i] {
			t.Errorf("Resample[%d] = %v, want %v", i, r.Values[i], want[i])
		}
	}
}

func TestResampleErrors(t *testing.T) {
	s := New(2*time.Second, []float64{1, 2})
	if _, err := s.Resample(3 * time.Second); err == nil {
		t.Error("expected error for non-multiple step")
	}
	if _, err := s.Resample(0); err == nil {
		t.Error("expected error for zero step")
	}
	same, err := s.Resample(2 * time.Second)
	if err != nil || same.Len() != 2 {
		t.Error("identity resample should clone")
	}
}

func TestAverageConcurrencySingleRequest(t *testing.T) {
	// One request occupying exactly one interval: concurrency 1 there.
	spans := []Interval{{Start: time.Minute, End: 2 * time.Minute}}
	s := AverageConcurrency(spans, time.Minute, 3)
	want := []float64{0, 1, 0}
	for i := range want {
		if math.Abs(s.Values[i]-want[i]) > 1e-12 {
			t.Errorf("bucket %d = %v, want %v", i, s.Values[i], want[i])
		}
	}
}

func TestAverageConcurrencyPartialOverlap(t *testing.T) {
	// Request spans half of bucket 0 and half of bucket 1.
	spans := []Interval{{Start: 30 * time.Second, End: 90 * time.Second}}
	s := AverageConcurrency(spans, time.Minute, 2)
	if math.Abs(s.Values[0]-0.5) > 1e-12 || math.Abs(s.Values[1]-0.5) > 1e-12 {
		t.Errorf("values = %v, want [0.5 0.5]", s.Values)
	}
}

func TestAverageConcurrencyOverlappingRequests(t *testing.T) {
	spans := []Interval{
		{Start: 0, End: time.Minute},
		{Start: 0, End: time.Minute},
		{Start: 0, End: 30 * time.Second},
	}
	s := AverageConcurrency(spans, time.Minute, 1)
	if math.Abs(s.Values[0]-2.5) > 1e-12 {
		t.Errorf("concurrency = %v, want 2.5", s.Values[0])
	}
}

func TestAverageConcurrencyClipping(t *testing.T) {
	spans := []Interval{
		{Start: -time.Minute, End: 30 * time.Second},   // starts before trace
		{Start: 90 * time.Second, End: time.Hour},      // runs past the horizon
		{Start: 5 * time.Minute, End: 6 * time.Minute}, // fully outside
		{Start: time.Minute, End: time.Minute},         // empty span
	}
	s := AverageConcurrency(spans, time.Minute, 2)
	if math.Abs(s.Values[0]-0.5) > 1e-12 {
		t.Errorf("bucket0 = %v, want 0.5", s.Values[0])
	}
	if math.Abs(s.Values[1]-0.5) > 1e-12 {
		t.Errorf("bucket1 = %v, want 0.5", s.Values[1])
	}
}

func TestAverageConcurrencyMassConservation(t *testing.T) {
	// Property: total request-time inside the horizon equals
	// sum(concurrency) * step.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 10
		step := time.Minute
		horizon := time.Duration(n) * step
		spans := make([]Interval, 50)
		var wantTotal time.Duration
		for i := range spans {
			st := time.Duration(rng.Int63n(int64(horizon)))
			d := time.Duration(rng.Int63n(int64(3 * step)))
			spans[i] = Interval{Start: st, End: st + d}
			end := st + d
			if end > horizon {
				end = horizon
			}
			wantTotal += end - st
		}
		s := AverageConcurrency(spans, step, n)
		var got float64
		for _, v := range s.Values {
			got += v * float64(step)
		}
		if math.Abs(got-float64(wantTotal)) > 1e-3*float64(wantTotal)+1 {
			t.Fatalf("trial %d: mass %v != %v", trial, got, float64(wantTotal))
		}
	}
}

func TestCountsToConcurrencyLittlesLaw(t *testing.T) {
	// Steady arrivals of c per minute with d=30s exec: steady-state
	// concurrency is rate*duration = (c/60s)*30s = c/2.
	counts := []float64{10, 10, 10, 10, 10}
	s := CountsToConcurrency(counts, time.Minute, 30*time.Second)
	// Middle buckets should be at steady state.
	if math.Abs(s.Values[2]-5) > 1e-9 {
		t.Errorf("steady concurrency = %v, want 5", s.Values[2])
	}
}

func TestCountsToConcurrencySpillover(t *testing.T) {
	// d = 90s: each request contributes to multiple buckets; total mass
	// must be count*duration (ignoring the tail that falls off the end).
	counts := []float64{4, 0, 0, 0, 0, 0}
	s := CountsToConcurrency(counts, time.Minute, 90*time.Second)
	var mass float64
	for _, v := range s.Values {
		mass += v * 60
	}
	want := 4 * 90.0
	if math.Abs(mass-want) > 1e-6 {
		t.Errorf("mass = %v, want %v", mass, want)
	}
	// Nothing before bucket 0, something in buckets 0..2, nothing after.
	if s.Values[0] <= 0 || s.Values[1] <= 0 || s.Values[2] <= 0 {
		t.Errorf("expected spillover into 3 buckets: %v", s.Values)
	}
	if s.Values[3] != 0 {
		t.Errorf("bucket 3 should be empty: %v", s.Values)
	}
}

func TestCountsToConcurrencyZeroCases(t *testing.T) {
	s := CountsToConcurrency([]float64{5}, time.Minute, 0)
	if s.Values[0] != 0 {
		t.Error("zero duration should produce zero concurrency")
	}
	s = CountsToConcurrency([]float64{0, 0}, time.Minute, time.Second)
	for _, v := range s.Values {
		if v != 0 {
			t.Error("zero counts should produce zero concurrency")
		}
	}
}

func TestCountsToConcurrencyMassProperty(t *testing.T) {
	// Property: with a horizon long enough to absorb all spillover, total
	// concurrency-mass equals sum(counts)*duration.
	f := func(rawCounts []uint8, durSec uint8) bool {
		if len(rawCounts) == 0 || len(rawCounts) > 30 || durSec == 0 {
			return true
		}
		counts := make([]float64, len(rawCounts)+10)
		var total float64
		for i, c := range rawCounts {
			counts[i] = float64(c % 50)
			total += counts[i]
		}
		d := time.Duration(durSec%120+1) * time.Second
		s := CountsToConcurrency(counts, time.Minute, d)
		var mass float64
		for _, v := range s.Values {
			mass += v * 60
		}
		want := total * d.Seconds()
		return math.Abs(mass-want) <= 1e-6*want+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBlocks(t *testing.T) {
	s := New(time.Minute, make([]float64, 10))
	for i := range s.Values {
		s.Values[i] = float64(i)
	}
	bs := s.Blocks(3)
	if len(bs) != 3 {
		t.Fatalf("got %d blocks, want 3 (trailing partial discarded)", len(bs))
	}
	if bs[1].Values[0] != 3 || bs[2].Values[2] != 8 {
		t.Errorf("block contents wrong: %v %v", bs[1].Values, bs[2].Values)
	}
	if s.Blocks(0) != nil {
		t.Error("blockLen 0 should return nil")
	}
	if got := s.Blocks(20); len(got) != 0 {
		t.Errorf("oversized block should return empty, got %d", len(got))
	}
}

func BenchmarkAverageConcurrency(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	spans := make([]Interval, 10000)
	for i := range spans {
		st := time.Duration(rng.Int63n(int64(time.Hour)))
		spans[i] = Interval{Start: st, End: st + time.Duration(rng.Int63n(int64(5*time.Second)))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AverageConcurrency(spans, time.Minute, 60)
	}
}
