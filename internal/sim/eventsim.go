package sim

import (
	"container/heap"
	"sort"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
	"github.com/ubc-cirrus-lab/femux-go/internal/trace"
)

// EventConfig parameterizes the event-driven simulator, which replays
// millisecond-resolution invocation traces against a pod fleet and a
// scaling policy. It is the engine behind the sub-minute scaling study
// (Fig 5) and the platform-delay characterization (Fig 6).
type EventConfig struct {
	ScaleInterval   time.Duration // policy tick (Knative default reacts every 2 s)
	UnitConcurrency int           // per-pod concurrency limit
	MemoryGB        float64       // per-pod memory
	ColdStart       time.Duration // pod provisioning time
	MinScale        int           // user minimum pods
	CaptureDelays   bool          // record per-request platform delays
}

// EventResult is the outcome of an event-driven run for one app.
type EventResult struct {
	Sample         rum.Sample
	PlatformDelays []float64 // seconds, one per invocation (when captured)
}

// pod models one compute unit.
type pod struct {
	readyAt    time.Duration // when the pod can first serve
	busy       int           // in-flight requests
	idleSince  time.Duration // valid when busy == 0
	coldUntil  time.Duration // cold-provisioned pods are pinned until here
	aliveFrom  time.Duration
	busySlotNS float64 // integral of busy slots over time, in ns-slots
	lastChange time.Duration
	dead       bool
}

func (p *pod) accrue(now time.Duration) {
	if now > p.lastChange {
		p.busySlotNS += float64(p.busy) * float64(now-p.lastChange)
		p.lastChange = now
	}
}

// completion is a scheduled request finish on a pod.
type completion struct {
	at  time.Duration
	pod *pod
}

type completionHeap []completion

func (h completionHeap) Len() int            { return len(h) }
func (h completionHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x interface{}) { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// SimulateEvents replays one app's invocations under a scaling policy.
// horizon bounds the simulated time; invocations must be sorted by arrival.
//
// Semantics:
//
//   - A request is served by the ready pod with free capacity that has been
//     idle longest; failing that it queues on a provisioning pod with free
//     capacity; failing that it triggers a cold start (a new pod) and waits
//     the full provisioning time. The request's platform delay is its wait.
//   - Every ScaleInterval the observed average concurrency of the elapsed
//     interval is appended to the policy's history and the policy re-
//     targets. Scale-up provisions pods proactively (they become ready
//     after ColdStart without charging any request). Scale-down removes
//     idle pods only — busy pods finish their work (no preemption), and
//     cold-provisioned pods survive until their interval ends.
//   - Waste accounting: each pod's allocated memory-time minus its used
//     share (busy slots / concurrency limit).
func SimulateEvents(invs []trace.Invocation, p Policy, cfg EventConfig, horizon time.Duration) EventResult {
	unitC := cfg.UnitConcurrency
	if unitC < 1 {
		unitC = 1
	}
	tick := cfg.ScaleInterval
	if tick <= 0 {
		tick = time.Minute
	}

	var res EventResult
	if cfg.CaptureDelays {
		res.PlatformDelays = make([]float64, 0, len(invs))
	}

	var pods []*pod
	spawn := func(now, readyAt, coldUntil time.Duration) *pod {
		pd := &pod{
			readyAt:    readyAt,
			idleSince:  readyAt,
			coldUntil:  coldUntil,
			aliveFrom:  now,
			lastChange: now,
		}
		pods = append(pods, pd)
		return pd
	}
	for i := 0; i < cfg.MinScale; i++ {
		spawn(0, 0, 0)
	}

	comps := &completionHeap{}
	ws := forecast.NewWorkspace()
	history := make([]float64, 0, int(horizon/tick)+1)
	// Concurrency integral for the current interval.
	var intervalBusyNS float64
	var lastObs time.Duration
	var inFlight int
	observe := func(now time.Duration) {
		if now > lastObs {
			intervalBusyNS += float64(inFlight) * float64(now-lastObs)
			lastObs = now
		}
	}

	finish := func(now time.Duration) {
		for comps.Len() > 0 && (*comps)[0].at <= now {
			c := heap.Pop(comps).(completion)
			observe(c.at)
			c.pod.accrue(c.at)
			c.pod.busy--
			inFlight--
			if c.pod.busy == 0 {
				c.pod.idleSince = c.at
			}
		}
	}

	reap := func(pd *pod, now time.Duration) {
		pd.accrue(now)
		pd.dead = true
		aliveSec := (now - pd.aliveFrom).Seconds()
		usedSec := pd.busySlotNS / float64(time.Second) / float64(unitC)
		res.Sample.AllocatedGBSec += aliveSec * cfg.MemoryGB
		w := (aliveSec - usedSec) * cfg.MemoryGB
		if w > 0 {
			res.Sample.WastedGBSec += w
		}
	}

	scaleTick := func(now time.Duration) {
		// Record the interval's observed average concurrency.
		observe(now)
		history = append(history, intervalBusyNS/float64(tick))
		intervalBusyNS = 0

		// Compact dead pods so the per-arrival scan stays proportional to
		// the live fleet.
		live := pods[:0]
		for _, pd := range pods {
			if !pd.dead {
				live = append(live, pd)
			}
		}
		pods = live

		target := TargetWith(p, history, unitC, ws)
		if target < cfg.MinScale {
			target = cfg.MinScale
		}
		alive := 0
		for _, pd := range pods {
			if !pd.dead {
				alive++
			}
		}
		if target > alive {
			for i := alive; i < target; i++ {
				spawn(now, now+cfg.ColdStart, 0) // proactive pre-warm
			}
			return
		}
		// Scale down: remove idle, unpinned pods, longest-idle first.
		excess := alive - target
		if excess <= 0 {
			return
		}
		idle := make([]*pod, 0, excess)
		for _, pd := range pods {
			if !pd.dead && pd.busy == 0 && pd.readyAt <= now && pd.coldUntil <= now {
				idle = append(idle, pd)
			}
		}
		sort.Slice(idle, func(i, j int) bool { return idle[i].idleSince < idle[j].idleSince })
		for i := 0; i < excess && i < len(idle); i++ {
			// MinScale floor is preserved by the target clamp above.
			reap(idle[i], now)
		}
	}

	nextTick := tick
	idx := 0
	for idx < len(invs) || nextTick < horizon {
		// Next event: arrival or scale tick.
		var now time.Duration
		arrival := idx < len(invs) && (nextTick >= horizon || invs[idx].Arrival <= nextTick)
		if arrival {
			now = invs[idx].Arrival
		} else {
			now = nextTick
		}
		if now > horizon {
			break
		}
		finish(now)
		if !arrival {
			scaleTick(now)
			nextTick += tick
			continue
		}

		inv := invs[idx]
		idx++
		observe(now)

		// Pick a pod: ready with capacity (longest idle first), else
		// provisioning with capacity (earliest ready), else cold start.
		var bestReady, bestProv *pod
		for _, pd := range pods {
			if pd.dead || pd.busy >= unitC {
				continue
			}
			if pd.readyAt <= now {
				if bestReady == nil || pd.idleSince < bestReady.idleSince {
					bestReady = pd
				}
			} else if bestProv == nil || pd.readyAt < bestProv.readyAt {
				bestProv = pd
			}
		}
		best := bestReady
		if best == nil {
			best = bestProv
		}
		var startAt time.Duration
		switch {
		case best != nil && best.readyAt <= now:
			startAt = now
		case best != nil:
			startAt = best.readyAt // queued on a provisioning pod
		default:
			best = spawn(now, now+cfg.ColdStart, 0)
			startAt = best.readyAt
		}
		delay := startAt - now
		if delay > 0 {
			res.Sample.ColdStarts++
			res.Sample.ColdStartSec += delay.Seconds()
			// Overriding rule: the pod serving a cold request is pinned
			// until the end of the current scaling interval.
			intervalEnd := nextTick
			if best.coldUntil < intervalEnd {
				best.coldUntil = intervalEnd
			}
		}
		best.accrue(startAt)
		if startAt > now {
			// The pod was not busy before ready; accrual starts at ready.
			best.lastChange = startAt
		}
		best.busy++
		inFlight++
		// In-flight accounting begins when the request starts executing.
		observe(startAt)
		heap.Push(comps, completion{at: startAt + inv.Duration, pod: best})

		res.Sample.Invocations++
		res.Sample.ExecSec += inv.Duration.Seconds()
		if cfg.CaptureDelays {
			res.PlatformDelays = append(res.PlatformDelays, delay.Seconds())
		}
	}
	// Drain completions and close out pods at the horizon.
	finish(horizon)
	for _, pd := range pods {
		if !pd.dead {
			reap(pd, horizon)
		}
	}
	return res
}

// ColdStartFractionPerApp returns per-app cold-start fractions for a set of
// results, preserving order.
func ColdStartFractionPerApp(results []EventResult) []float64 {
	out := make([]float64, len(results))
	for i, r := range results {
		out[i] = r.Sample.ColdStartFraction()
	}
	return out
}

// PercentOver returns the share of values strictly greater than threshold.
func PercentOver(values []float64, threshold float64) float64 {
	if len(values) == 0 {
		return 0
	}
	n := 0
	for _, v := range values {
		if v > threshold {
			n++
		}
	}
	return float64(n) / float64(len(values))
}
