// Package sim contains the serverless-platform simulators used for every
// offline experiment, mirroring the paper's methodology (§5): an
// interval-level concurrency simulator for training and fleet-scale policy
// comparison, and an event-driven simulator for millisecond-level studies
// (sub-minute scaling, platform delay).
//
// Both simulators apply the paper's overriding rules (§4.3.5): compute
// units are never preempted mid-execution, and units provisioned due to a
// cold start stay alive until the end of the scaling interval. Scaling-rate
// limits follow AWS Lambda's published behaviour: at most 500 new instances
// per minute once an app exceeds 3,000 instances (§5.1).
package sim

import (
	"fmt"
	"math"

	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
)

// Policy decides how many compute units to keep warm for the next scaling
// interval, given the history of observed average concurrency per interval.
// Implementations must be stateless with respect to the sweep (all state is
// the supplied history) so the same policy value can be reused across apps.
type Policy interface {
	Name() string
	// Target returns the desired warm unit count for the upcoming interval.
	// unitConcurrency is the app's container concurrency limit.
	Target(history []float64, unitConcurrency int) int
}

// WorkspaceTargeter is the zero-allocation fast path for policies whose
// targets come from forecast kernels: Target with an explicit
// forecast.Workspace holding all scratch state. ws may be nil (the call
// then allocates like Target). Implementations must produce exactly the
// same target as Target — the workspace only changes where intermediate
// state lives.
type WorkspaceTargeter interface {
	Policy
	TargetWS(history []float64, unitConcurrency int, ws *forecast.Workspace) int
}

// TargetWith invokes p's workspace fast path when it has one, falling back
// to the allocating Target otherwise. The simulators call this per interval
// with a per-simulation workspace.
func TargetWith(p Policy, history []float64, unitConcurrency int, ws *forecast.Workspace) int {
	if wt, ok := p.(WorkspaceTargeter); ok {
		return wt.TargetWS(history, unitConcurrency, ws)
	}
	return p.Target(history, unitConcurrency)
}

// QuantileTargeter is the SLO-aware variant of WorkspaceTargeter:
// provision for the given forecast quantile level (e.g. 0.95 = "enough
// capacity for the p95 demand") instead of point forecast × fixed
// headroom. A level <= 0 must reproduce TargetWS exactly — point ×
// headroom remains the default — so a zero level is always safe to
// thread through config.
type QuantileTargeter interface {
	Policy
	TargetQuantilesWS(history []float64, unitConcurrency int, level float64, ws *forecast.Workspace) int
}

// TargetQuantilesWith invokes p's quantile path when it has one and the
// level is positive, degrading to the point-forecast TargetWith
// otherwise. This is the single call-site helper for quantile-aware
// policy evaluation: policies without a quantile path (keep-alive,
// Knative default, fixed) are unaffected by the level.
func TargetQuantilesWith(p Policy, history []float64, unitConcurrency int, level float64, ws *forecast.Workspace) int {
	if level > 0 {
		if qt, ok := p.(QuantileTargeter); ok {
			return qt.TargetQuantilesWS(history, unitConcurrency, level, ws)
		}
	}
	return TargetWith(p, history, unitConcurrency, ws)
}

// QuantilePolicy wraps a base policy with a fixed quantile level, so the
// simulators and sweeps can treat "provision for p95" as just another
// Policy value. The zero level reproduces the base policy exactly.
type QuantilePolicy struct {
	Base  Policy
	Level float64
}

// Name implements Policy.
func (p QuantilePolicy) Name() string {
	return fmt.Sprintf("%s-p%g", p.Base.Name(), p.Level*100)
}

// Target implements Policy.
func (p QuantilePolicy) Target(history []float64, unitConcurrency int) int {
	return p.TargetWS(history, unitConcurrency, nil)
}

// TargetWS implements WorkspaceTargeter.
func (p QuantilePolicy) TargetWS(history []float64, unitConcurrency int, ws *forecast.Workspace) int {
	return TargetQuantilesWith(p.Base, history, unitConcurrency, p.Level, ws)
}

// unitsFor converts a concurrency level to compute units at the given
// per-unit concurrency limit, rounding up: demand that exists must be
// served.
func unitsFor(concurrency float64, unitConcurrency int) int {
	if concurrency <= 0 {
		return 0
	}
	if unitConcurrency < 1 {
		unitConcurrency = 1
	}
	return int(math.Ceil(concurrency / float64(unitConcurrency)))
}

// ForecastUnits converts a predicted peak concurrency into compute units
// using Knative's conversion: any positive predicted concurrency needs at
// least one unit (ceil). Forecasters signal "scale to zero" by predicting
// zero or negative values (negative forecasts are clamped by the forecast
// package) — exactly how a single FFT ends up forecasting zero for
// low-traffic apps, the weakness §5.1.1 attributes to IceBreaker. history
// is accepted for signature stability with policies that condition the
// conversion on observed traffic.
func ForecastUnits(predictedPeak float64, history []float64, unitConcurrency int) int {
	_ = history
	if predictedPeak <= 1e-9 {
		return 0
	}
	if unitConcurrency < 1 {
		unitConcurrency = 1
	}
	return int(math.Ceil(predictedPeak / float64(unitConcurrency)))
}

// ForecastPolicy scales to the peak of a forecaster's prediction over the
// next horizon intervals — the predictive scaling FeMux and the single-
// forecaster baselines perform.
type ForecastPolicy struct {
	Forecaster forecast.Forecaster
	Horizon    int     // intervals to look ahead (>= 1)
	Headroom   float64 // multiplicative safety margin on the forecast (>= 0)
	Window     int     // history window fed to the forecaster (0 = all)
	// FloorWindow, when positive, keeps at least the capacity that served
	// the last FloorWindow intervals, regardless of the forecast — the
	// Knative semantics that a pod which served within the stable window
	// is not reaped on a momentary forecast dip. Sub-minute policies set
	// this to one stable window (e.g. 6 at 10-second ticks).
	FloorWindow int
}

// Name implements Policy.
func (p ForecastPolicy) Name() string { return "forecast-" + p.Forecaster.Name() }

// Target implements Policy.
func (p ForecastPolicy) Target(history []float64, unitConcurrency int) int {
	return p.TargetWS(history, unitConcurrency, nil)
}

// TargetWS implements WorkspaceTargeter: the same target computation with
// all forecaster scratch state in ws, so a warmed workspace makes the
// per-interval policy evaluation allocation-free.
func (p ForecastPolicy) TargetWS(history []float64, unitConcurrency int, ws *forecast.Workspace) int {
	h := p.Horizon
	if h < 1 {
		h = 1
	}
	full := history
	if p.Window > 0 && p.Window < len(history) {
		history = history[len(history)-p.Window:]
	}
	pred := forecast.Into(p.Forecaster, history, h, ws.Out(h), ws)
	peak := 0.0
	for _, v := range pred {
		if v > peak {
			peak = v
		}
	}
	peak *= 1 + p.Headroom
	target := ForecastUnits(peak, history, unitConcurrency)
	if p.FloorWindow > 0 {
		if floor := (KeepAlivePolicy{IdleIntervals: p.FloorWindow}).Target(full, unitConcurrency); floor > target {
			target = floor
		}
	}
	return target
}

// TargetQuantilesWS implements QuantileTargeter: scale to the peak of
// the level-quantile forecast over the horizon. The fixed Headroom
// multiplier is intentionally NOT applied — the quantile level IS the
// safety margin, calibrated per app from the forecaster's own
// uncertainty, which is the point of SLO-aware provisioning. The
// keep-alive floor still applies: capacity that served the stable
// window is not reaped on a dip in the quantile forecast either.
func (p ForecastPolicy) TargetQuantilesWS(history []float64, unitConcurrency int, level float64, ws *forecast.Workspace) int {
	if level <= 0 {
		return p.TargetWS(history, unitConcurrency, ws)
	}
	h := p.Horizon
	if h < 1 {
		h = 1
	}
	full := history
	if p.Window > 0 && p.Window < len(history) {
		history = history[len(history)-p.Window:]
	}
	lv := ws.Levels(1)
	lv[0] = level
	pred := forecast.QuantilesInto(p.Forecaster, history, h, lv, ws.Out(h), ws)
	peak := 0.0
	for _, v := range pred {
		if v > peak {
			peak = v
		}
	}
	target := ForecastUnits(peak, history, unitConcurrency)
	if p.FloorWindow > 0 {
		if floor := (KeepAlivePolicy{IdleIntervals: p.FloorWindow}).Target(full, unitConcurrency); floor > target {
			target = floor
		}
	}
	return target
}

// KeepAlivePolicy keeps capacity warm for IdleIntervals after it was last
// needed: the fixed keep-alive used by AWS Lambda (~5-6 min), Huawei
// (1 min), and Knative's scale-down default. Its target is the peak demand
// over the trailing window.
type KeepAlivePolicy struct {
	IdleIntervals int
}

// Name implements Policy.
func (p KeepAlivePolicy) Name() string { return "keepalive" }

// Target implements Policy.
func (p KeepAlivePolicy) Target(history []float64, unitConcurrency int) int {
	w := p.IdleIntervals
	if w < 1 {
		w = 1
	}
	if w > len(history) {
		w = len(history)
	}
	peak := 0.0
	for _, v := range history[len(history)-w:] {
		if v > peak {
			peak = v
		}
	}
	return unitsFor(peak, unitConcurrency)
}

// KnativeDefaultPolicy models Knative's default autoscaler at interval
// granularity: the target is the average concurrency over a trailing
// 1-minute window divided by the per-pod target concurrency (§3.2 "1-min
// moving average"). WindowIntervals is the number of simulator intervals
// covering one minute.
type KnativeDefaultPolicy struct {
	WindowIntervals int
}

// Name implements Policy.
func (p KnativeDefaultPolicy) Name() string { return "knative-default" }

// Target implements Policy.
func (p KnativeDefaultPolicy) Target(history []float64, unitConcurrency int) int {
	w := p.WindowIntervals
	if w < 1 {
		w = 1
	}
	if w > len(history) {
		w = len(history)
	}
	if w == 0 {
		return 0
	}
	var sum float64
	for _, v := range history[len(history)-w:] {
		sum += v
	}
	return unitsFor(sum/float64(w), unitConcurrency)
}

// FixedPolicy always targets the same unit count (provisioned capacity).
type FixedPolicy struct {
	Units int
}

// Name implements Policy.
func (p FixedPolicy) Name() string { return "fixed" }

// Target implements Policy.
func (p FixedPolicy) Target([]float64, int) int { return p.Units }
