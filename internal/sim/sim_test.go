package sim

import (
	"math"
	"testing"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
	"github.com/ubc-cirrus-lab/femux-go/internal/timeseries"
	"github.com/ubc-cirrus-lab/femux-go/internal/trace"
)

func demandSeries(vals []float64) timeseries.Series {
	return timeseries.New(time.Minute, vals)
}

func TestPolicyTargets(t *testing.T) {
	hist := []float64{0, 2, 4, 0, 1}
	cases := []struct {
		name  string
		p     Policy
		unitC int
		want  int
	}{
		{"keepalive window 2 peaks last two", KeepAlivePolicy{IdleIntervals: 2}, 1, 1},
		{"keepalive window 3 catches the 4", KeepAlivePolicy{IdleIntervals: 3}, 1, 4},
		{"keepalive divides by concurrency", KeepAlivePolicy{IdleIntervals: 3}, 2, 2},
		{"knative default averages", KnativeDefaultPolicy{WindowIntervals: 5}, 1, 2}, // mean 1.4 -> ceil 2
		{"fixed", FixedPolicy{Units: 7}, 1, 7},
	}
	for _, c := range cases {
		if got := c.p.Target(hist, c.unitC); got != c.want {
			t.Errorf("%s: Target = %d, want %d", c.name, got, c.want)
		}
	}
	// Empty history never panics.
	for _, p := range []Policy{KeepAlivePolicy{IdleIntervals: 5}, KnativeDefaultPolicy{WindowIntervals: 5},
		ForecastPolicy{Forecaster: forecast.Naive{}, Horizon: 1}} {
		if got := p.Target(nil, 1); got != 0 {
			t.Errorf("%s: empty history Target = %d, want 0", p.Name(), got)
		}
	}
}

func TestForecastPolicyUsesPeak(t *testing.T) {
	// Naive forecaster predicts last value; headroom raises target.
	p := ForecastPolicy{Forecaster: forecast.Naive{}, Horizon: 3}
	if got := p.Target([]float64{1, 5}, 1); got != 5 {
		t.Errorf("Target = %d, want 5", got)
	}
	p.Headroom = 0.5
	if got := p.Target([]float64{1, 5}, 1); got != 8 {
		t.Errorf("headroom Target = %d, want 8", got)
	}
}

func TestUnitsFor(t *testing.T) {
	cases := []struct {
		conc  float64
		unitC int
		want  int
	}{
		{0, 1, 0}, {-1, 1, 0}, {0.3, 1, 1}, {1, 1, 1}, {1.2, 1, 2},
		{100, 100, 1}, {101, 100, 2}, {5, 0, 5},
	}
	for _, c := range cases {
		if got := unitsFor(c.conc, c.unitC); got != c.want {
			t.Errorf("unitsFor(%v,%d) = %d, want %d", c.conc, c.unitC, got, c.want)
		}
	}
}

func TestSimulateAppPerfectForecasterNoColdStartsNoWaste(t *testing.T) {
	// Demand exactly matches an oracle: integer demand, naive forecaster
	// one step behind a constant series => no cold starts, no waste.
	vals := []float64{2, 2, 2, 2, 2}
	app := AppTrace{Demand: demandSeries(vals)}
	cfg := DefaultConcConfig()
	cfg.MinScale = 2 // covers the first interval before history exists
	res := SimulateApp(app, ForecastPolicy{Forecaster: forecast.Naive{}, Horizon: 1}, cfg, false)
	if res.Sample.ColdStarts != 0 {
		t.Errorf("cold starts = %d, want 0", res.Sample.ColdStarts)
	}
	if res.Sample.WastedGBSec > 1e-9 {
		t.Errorf("wasted = %v, want 0", res.Sample.WastedGBSec)
	}
	wantAlloc := 2 * cfg.MemoryGB * 60 * 5
	if math.Abs(res.Sample.AllocatedGBSec-wantAlloc) > 1e-9 {
		t.Errorf("allocated = %v, want %v", res.Sample.AllocatedGBSec, wantAlloc)
	}
}

func TestSimulateAppZeroPolicyAllCold(t *testing.T) {
	vals := []float64{1, 1, 1}
	app := AppTrace{Demand: demandSeries(vals)}
	cfg := DefaultConcConfig()
	res := SimulateApp(app, ForecastPolicy{Forecaster: forecast.Zero{}, Horizon: 1}, cfg, false)
	if res.Sample.ColdStarts != 3 {
		t.Errorf("cold starts = %d, want 3", res.Sample.ColdStarts)
	}
	if math.Abs(res.Sample.ColdStartSec-3*cfg.ColdStartSec) > 1e-9 {
		t.Errorf("cold start sec = %v", res.Sample.ColdStartSec)
	}
}

func TestSimulateAppOverProvisionWastes(t *testing.T) {
	vals := []float64{0, 0, 0, 0}
	app := AppTrace{Demand: demandSeries(vals)}
	cfg := DefaultConcConfig()
	res := SimulateApp(app, FixedPolicy{Units: 3}, cfg, false)
	wantWaste := 3 * cfg.MemoryGB * 60 * 4
	if math.Abs(res.Sample.WastedGBSec-wantWaste) > 1e-9 {
		t.Errorf("wasted = %v, want %v", res.Sample.WastedGBSec, wantWaste)
	}
	if res.Sample.ColdStarts != 0 {
		t.Errorf("cold starts = %d", res.Sample.ColdStarts)
	}
}

func TestSimulateAppMinScaleFloor(t *testing.T) {
	vals := []float64{0, 0, 1, 0}
	app := AppTrace{Demand: demandSeries(vals)}
	cfg := DefaultConcConfig()
	cfg.MinScale = 1
	res := SimulateApp(app, ForecastPolicy{Forecaster: forecast.Zero{}, Horizon: 1}, cfg, true)
	// MinScale keeps one unit warm: the demand spike is served warm.
	if res.Sample.ColdStarts != 0 {
		t.Errorf("cold starts = %d, want 0 (min scale)", res.Sample.ColdStarts)
	}
	for i, iv := range res.Intervals {
		if iv.WarmUnits < 1 {
			t.Errorf("interval %d warm units = %d, below min scale", i, iv.WarmUnits)
		}
	}
}

func TestSimulateAppPartialUtilizationWaste(t *testing.T) {
	// Demand 0.5 with concurrency 1: one unit allocated, half wasted.
	vals := []float64{0.5}
	app := AppTrace{Demand: demandSeries(vals)}
	cfg := DefaultConcConfig()
	res := SimulateApp(app, FixedPolicy{Units: 1}, cfg, false)
	wantWaste := 0.5 * cfg.MemoryGB * 60
	if math.Abs(res.Sample.WastedGBSec-wantWaste) > 1e-9 {
		t.Errorf("wasted = %v, want %v", res.Sample.WastedGBSec, wantWaste)
	}
}

func TestSimulateAppInvocationAccounting(t *testing.T) {
	vals := []float64{1, 1}
	app := AppTrace{
		Demand:      demandSeries(vals),
		Invocations: []float64{10, 20},
		ExecSec:     0.5,
	}
	res := SimulateApp(app, FixedPolicy{Units: 1}, DefaultConcConfig(), false)
	if res.Sample.Invocations != 30 {
		t.Errorf("invocations = %d, want 30", res.Sample.Invocations)
	}
	if math.Abs(res.Sample.ExecSec-15) > 1e-9 {
		t.Errorf("exec sec = %v, want 15", res.Sample.ExecSec)
	}
}

func TestScaleLimit(t *testing.T) {
	cfg := DefaultConcConfig()
	// Below threshold: unconstrained.
	if got := applyScaleLimit(5000, 1000, cfg, 60); got != 5000 {
		t.Errorf("below threshold: %d", got)
	}
	// Above threshold: clamp to prev + 500/min.
	if got := applyScaleLimit(5000, 4000, cfg, 60); got != 4500 {
		t.Errorf("clamped = %d, want 4500", got)
	}
	// 10-second steps scale the budget.
	if got := applyScaleLimit(5000, 4000, cfg, 10); got != 4084 {
		t.Errorf("10s clamp = %d, want 4084", got)
	}
	// Scale-down never limited.
	if got := applyScaleLimit(100, 4000, cfg, 60); got != 100 {
		t.Errorf("scale down = %d", got)
	}
	// Disabled.
	cfg.ScaleLimitThreshold = 0
	if got := applyScaleLimit(99999, 4000, cfg, 60); got != 99999 {
		t.Errorf("disabled = %d", got)
	}
}

func TestSimulateFleetOrder(t *testing.T) {
	apps := []AppTrace{
		{Demand: demandSeries([]float64{1, 1})},
		{Demand: demandSeries([]float64{0, 0})},
	}
	out := SimulateFleet(apps, ForecastPolicy{Forecaster: forecast.Zero{}, Horizon: 1}, DefaultConcConfig())
	if len(out) != 2 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0].ColdStarts == 0 || out[1].ColdStarts != 0 {
		t.Errorf("fleet order broken: %+v", out)
	}
}

// --- Event simulator ---

func evConfig() EventConfig {
	return EventConfig{
		ScaleInterval:   time.Minute,
		UnitConcurrency: 1,
		MemoryGB:        0.15,
		ColdStart:       800 * time.Millisecond,
		CaptureDelays:   true,
	}
}

func TestEventSimColdThenWarm(t *testing.T) {
	invs := []trace.Invocation{
		{Arrival: 10 * time.Second, Duration: time.Second},
		{Arrival: 70 * time.Second, Duration: time.Second}, // pod still warm (KA window)
	}
	cfg := evConfig()
	res := SimulateEvents(invs, KeepAlivePolicy{IdleIntervals: 5}, cfg, 3*time.Minute)
	if res.Sample.Invocations != 2 {
		t.Fatalf("invocations = %d", res.Sample.Invocations)
	}
	if res.Sample.ColdStarts != 1 {
		t.Errorf("cold starts = %d, want 1 (first request only)", res.Sample.ColdStarts)
	}
	if math.Abs(res.PlatformDelays[0]-0.8) > 1e-9 {
		t.Errorf("first delay = %v, want 0.8", res.PlatformDelays[0])
	}
	if res.PlatformDelays[1] != 0 {
		t.Errorf("second delay = %v, want 0 (warm)", res.PlatformDelays[1])
	}
}

func TestEventSimMinScaleAvoidsColdStart(t *testing.T) {
	invs := []trace.Invocation{{Arrival: 5 * time.Second, Duration: time.Second}}
	cfg := evConfig()
	cfg.MinScale = 1
	res := SimulateEvents(invs, KeepAlivePolicy{IdleIntervals: 1}, cfg, 2*time.Minute)
	if res.Sample.ColdStarts != 0 {
		t.Errorf("cold starts = %d, want 0 with min scale", res.Sample.ColdStarts)
	}
}

func TestEventSimConcurrencySharing(t *testing.T) {
	// Two near-simultaneous requests, pod concurrency 2: the second queues
	// on the still-provisioning pod (ready at 1.8 s) with a partial delay.
	invs := []trace.Invocation{
		{Arrival: time.Second, Duration: 10 * time.Second},
		{Arrival: 1200 * time.Millisecond, Duration: 10 * time.Second},
	}
	cfg := evConfig()
	cfg.UnitConcurrency = 2
	res := SimulateEvents(invs, KeepAlivePolicy{IdleIntervals: 1}, cfg, time.Minute)
	if res.Sample.ColdStarts != 2 {
		// First is a full cold start; second queues on the provisioning
		// pod and experiences a partial delay — both are delayed starts.
		t.Errorf("cold starts = %d, want 2 delayed starts", res.Sample.ColdStarts)
	}
	// Second request's delay is shorter than a full cold start: it shares
	// the provisioning pod.
	if res.PlatformDelays[1] >= res.PlatformDelays[0] {
		t.Errorf("queued delay %v should be below full cold start %v",
			res.PlatformDelays[1], res.PlatformDelays[0])
	}
}

func TestEventSimOverlapSingleConcurrency(t *testing.T) {
	// Two overlapping requests, concurrency 1: two pods, two cold starts.
	invs := []trace.Invocation{
		{Arrival: time.Second, Duration: 10 * time.Second},
		{Arrival: 2 * time.Second, Duration: 10 * time.Second},
	}
	res := SimulateEvents(invs, KeepAlivePolicy{IdleIntervals: 1}, evConfig(), time.Minute)
	if res.Sample.ColdStarts != 2 {
		t.Errorf("cold starts = %d, want 2", res.Sample.ColdStarts)
	}
	if res.PlatformDelays[1] != res.PlatformDelays[0] {
		t.Errorf("both delays should be full cold starts: %v", res.PlatformDelays)
	}
}

func TestEventSimKeepAliveScaleDown(t *testing.T) {
	// One request, then silence: with a 1-interval KA the pod must be
	// reaped, bounding allocated GB-s well below the horizon.
	invs := []trace.Invocation{{Arrival: time.Second, Duration: time.Second}}
	cfg := evConfig()
	horizon := 30 * time.Minute
	res := SimulateEvents(invs, KeepAlivePolicy{IdleIntervals: 1}, cfg, horizon)
	// Pod should live ~2 minutes (its interval + one KA window), not 30.
	maxAlloc := 5 * 60 * cfg.MemoryGB
	if res.Sample.AllocatedGBSec > maxAlloc {
		t.Errorf("allocated = %v GB-s, pod not scaled down (max %v)",
			res.Sample.AllocatedGBSec, maxAlloc)
	}
	if res.Sample.AllocatedGBSec <= 0 {
		t.Error("allocated should be positive")
	}
}

func TestEventSimWasteAccounting(t *testing.T) {
	// A min-scale pod with no traffic wastes exactly its allocation.
	cfg := evConfig()
	cfg.MinScale = 1
	horizon := 10 * time.Minute
	res := SimulateEvents(nil, FixedPolicy{Units: 1}, cfg, horizon)
	want := horizon.Seconds() * cfg.MemoryGB
	if math.Abs(res.Sample.AllocatedGBSec-want) > 1e-6 {
		t.Errorf("allocated = %v, want %v", res.Sample.AllocatedGBSec, want)
	}
	if math.Abs(res.Sample.WastedGBSec-want) > 1e-6 {
		t.Errorf("wasted = %v, want %v", res.Sample.WastedGBSec, want)
	}
}

func TestEventSimFasterScalingReducesColdStarts(t *testing.T) {
	// Fig 5's core claim at miniature scale: with bursty periodic traffic,
	// a forecaster at 10-second ticks beats the same forecaster at
	// 60-second ticks on cold starts.
	var invs []trace.Invocation
	for burst := 0; burst < 30; burst++ {
		base := time.Duration(burst) * 2 * time.Minute
		for i := 0; i < 5; i++ {
			invs = append(invs, trace.Invocation{
				Arrival:  base + time.Duration(i)*200*time.Millisecond,
				Duration: 30 * time.Second,
			})
		}
	}
	horizon := 61 * time.Minute
	mk := func(tick time.Duration) rum.Sample {
		cfg := evConfig()
		cfg.ScaleInterval = tick
		cfg.UnitConcurrency = 1
		p := ForecastPolicy{Forecaster: forecast.NewFFT(10), Horizon: int(time.Minute / tick)}
		return SimulateEvents(invs, p, cfg, horizon).Sample
	}
	fast := mk(10 * time.Second)
	slow := mk(60 * time.Second)
	if fast.ColdStartSec >= slow.ColdStartSec {
		t.Errorf("10s ticks cold-start sec %v should beat 60s ticks %v",
			fast.ColdStartSec, slow.ColdStartSec)
	}
}

func TestPercentOver(t *testing.T) {
	if got := PercentOver([]float64{0.1, 2, 3}, 1); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("PercentOver = %v", got)
	}
	if PercentOver(nil, 1) != 0 {
		t.Error("empty PercentOver should be 0")
	}
}

func BenchmarkEventSim(b *testing.B) {
	var invs []trace.Invocation
	for i := 0; i < 5000; i++ {
		invs = append(invs, trace.Invocation{
			Arrival:  time.Duration(i) * 200 * time.Millisecond,
			Duration: 150 * time.Millisecond,
		})
	}
	cfg := evConfig()
	cfg.CaptureDelays = false
	cfg.UnitConcurrency = 100
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimulateEvents(invs, KeepAlivePolicy{IdleIntervals: 5}, cfg, 20*time.Minute)
	}
}

func BenchmarkConcSim(b *testing.B) {
	vals := make([]float64, 1440)
	for i := range vals {
		vals[i] = math.Abs(math.Sin(float64(i)/60)) * 5
	}
	app := AppTrace{Demand: demandSeries(vals)}
	p := ForecastPolicy{Forecaster: forecast.NewMovingAverage(1), Horizon: 1}
	cfg := DefaultConcConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimulateApp(app, p, cfg, false)
	}
}
