package sim

import (
	"math"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
	"github.com/ubc-cirrus-lab/femux-go/internal/timeseries"
)

// ConcConfig parameterizes the interval-level concurrency simulator.
type ConcConfig struct {
	Step            time.Duration // scaling interval (paper: 60 s or 10 s)
	UnitConcurrency int           // container concurrency limit
	MemoryGB        float64       // memory per compute unit
	ColdStartSec    float64       // fixed cold start duration (paper default 0.808 s)
	MinScale        int           // user-configured minimum units
	// Scaling-rate limit (AWS Lambda): above ScaleLimitThreshold units, at
	// most ScaleLimitPerMinute new units may start per minute. Zero values
	// disable the limit.
	ScaleLimitThreshold int
	ScaleLimitPerMinute int
}

// DefaultConcConfig returns the paper's offline-simulation settings:
// 1-minute intervals, fixed 0.808 s cold starts, and AWS's scaling limits.
func DefaultConcConfig() ConcConfig {
	return ConcConfig{
		Step:                time.Minute,
		UnitConcurrency:     1,
		MemoryGB:            0.15, // Azure median consumption (§4.1)
		ColdStartSec:        rum.DefaultColdStartSec,
		ScaleLimitThreshold: 3000,
		ScaleLimitPerMinute: 500,
	}
}

// AppTrace is the per-app input to the concurrency simulator: the demand
// series (average concurrency per interval), plus per-interval invocation
// counts and the app's mean execution seconds for metric accounting.
// Invocations may be nil when only unit-level metrics are needed.
type AppTrace struct {
	Demand      timeseries.Series
	Invocations []float64 // per-interval invocation counts (optional)
	ExecSec     float64   // mean execution seconds per invocation
}

// IntervalStats records one interval of a simulation, for tests and the
// temporal-switching study (Fig 9).
type IntervalStats struct {
	WarmUnits  int
	ColdUnits  int
	Demand     float64
	WastedGBs  float64
	ColdStarts int
}

// ConcResult is the outcome of simulating one app under one policy.
type ConcResult struct {
	Sample    rum.Sample
	Intervals []IntervalStats // populated only when Trace is requested
}

// SimulateApp runs the policy over one app's demand series and returns the
// accounting sample. trace enables per-interval stats capture.
//
// Model, per interval t:
//
//  1. The policy targets a warm unit count from the demand history observed
//     so far (prediction happens before the interval's traffic arrives).
//  2. Warm targets are clamped below by MinScale and rate-limited by the
//     AWS scaling rule relative to the previous interval's total units.
//  3. Demand above warm capacity provisions cold units: each incurs one
//     cold start of ColdStartSec, and — per the overriding rules — stays
//     alive to the end of the interval.
//  4. Waste is the memory-time of allocated-but-unused capacity:
//     (units − demand/unitConcurrency)⁺ × MemoryGB × step.
func SimulateApp(app AppTrace, p Policy, cfg ConcConfig, trace bool) ConcResult {
	ws := forecast.GetWorkspace()
	res := simulateApp(app, p, cfg, trace, ws)
	forecast.PutWorkspace(ws)
	return res
}

// simulateApp is SimulateApp with an explicit forecaster workspace, so
// fleet sweeps reuse one workspace across apps instead of re-growing
// scratch buffers per app.
func simulateApp(app AppTrace, p Policy, cfg ConcConfig, trace bool, ws *forecast.Workspace) ConcResult {
	stepSec := cfg.Step.Seconds()
	if stepSec <= 0 {
		stepSec = 60
	}
	unitC := cfg.UnitConcurrency
	if unitC < 1 {
		unitC = 1
	}
	n := app.Demand.Len()
	var res ConcResult
	if trace {
		res.Intervals = make([]IntervalStats, 0, n)
	}
	prevUnits := cfg.MinScale
	values := app.Demand.Values
	for t := 0; t < n; t++ {
		warm := TargetWith(p, values[:t], unitC, ws)
		if warm < cfg.MinScale {
			warm = cfg.MinScale
		}
		warm = applyScaleLimit(warm, prevUnits, cfg, stepSec)

		demand := values[t]
		demandUnits := unitsFor(demand, unitC)
		cold := demandUnits - warm
		if cold < 0 {
			cold = 0
		}
		units := warm + cold

		res.Sample.ColdStarts += cold
		res.Sample.ColdStartSec += float64(cold) * cfg.ColdStartSec

		allocGBs := float64(units) * cfg.MemoryGB * stepSec
		usedUnits := demand / float64(unitC)
		if usedUnits > float64(units) {
			usedUnits = float64(units)
		}
		wasted := (float64(units) - usedUnits) * cfg.MemoryGB * stepSec
		if wasted < 0 {
			wasted = 0
		}
		res.Sample.AllocatedGBSec += allocGBs
		res.Sample.WastedGBSec += wasted

		if app.Invocations != nil && t < len(app.Invocations) {
			inv := app.Invocations[t]
			res.Sample.Invocations += int(inv)
			res.Sample.ExecSec += inv * app.ExecSec
		}

		if trace {
			res.Intervals = append(res.Intervals, IntervalStats{
				WarmUnits:  warm,
				ColdUnits:  cold,
				Demand:     demand,
				WastedGBs:  wasted,
				ColdStarts: cold,
			})
		}
		prevUnits = units
	}
	return res
}

// applyScaleLimit enforces the AWS Lambda scaling-rate rule.
func applyScaleLimit(target, prev int, cfg ConcConfig, stepSec float64) int {
	if cfg.ScaleLimitThreshold <= 0 || cfg.ScaleLimitPerMinute <= 0 {
		return target
	}
	if prev <= cfg.ScaleLimitThreshold || target <= prev {
		return target
	}
	maxNew := int(math.Ceil(float64(cfg.ScaleLimitPerMinute) * stepSec / 60))
	if target-prev > maxNew {
		return prev + maxNew
	}
	return target
}

// SimulateFleet runs a policy over many app traces and returns per-app
// samples in input order.
func SimulateFleet(apps []AppTrace, p Policy, cfg ConcConfig) []rum.Sample {
	out := make([]rum.Sample, len(apps))
	ws := forecast.GetWorkspace()
	for i, a := range apps {
		out[i] = simulateApp(a, p, cfg, false, ws).Sample
	}
	forecast.PutWorkspace(ws)
	return out
}
