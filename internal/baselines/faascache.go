// Package baselines implements the prior-work lifetime-management systems
// FeMux is evaluated against (§5.1.1): FaasCache's greedy-dual keep-alive
// caching, IceBreaker's FFT-driven pre-warming (evaluated on homogeneous
// resources, as in the paper), Aquatope's per-application LSTM prediction,
// and the fixed keep-alive policies (1/5/10-minute) used as normalization
// baselines throughout.
package baselines

import (
	"container/heap"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
	"github.com/ubc-cirrus-lab/femux-go/internal/sim"
)

// FaasCacheConfig parameterizes the greedy-dual caching simulation.
type FaasCacheConfig struct {
	CacheGB      float64       // fixed keep-alive cache size (the knob swept in Fig 11-Left)
	ColdStartSec float64       // fixed cold start duration
	Step         time.Duration // simulation interval
}

// DefaultFaasCacheConfig returns the paper's comparison settings.
func DefaultFaasCacheConfig(cacheGB float64) FaasCacheConfig {
	return FaasCacheConfig{CacheGB: cacheGB, ColdStartSec: rum.DefaultColdStartSec, Step: time.Minute}
}

// cacheEntry is one warm container in the greedy-dual cache.
type cacheEntry struct {
	app      int
	priority float64
	pinned   bool // serving traffic this interval: not evictable
	index    int  // heap index
}

type entryHeap []*cacheEntry

func (h entryHeap) Len() int           { return len(h) }
func (h entryHeap) Less(i, j int) bool { return h[i].priority < h[j].priority }
func (h entryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *entryHeap) Push(x interface{}) {
	e := x.(*cacheEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// SimulateFaasCache replays app demand series through a greedy-dual
// keep-alive cache of fixed size (Fuerst & Sharma, ASPLOS'21):
//
//   - warm containers are cache entries with priority
//     clock + freq × cost / size, where cost is the app's cold-start time,
//     size its memory, and freq its access count;
//   - a miss provisions a cold container and admits it, evicting the
//     lowest-priority idle containers when the cache exceeds its budget;
//   - the global clock advances to each eviction victim's priority (the
//     greedy-dual aging rule), so long-idle containers eventually lose to
//     fresh ones.
//
// The fixed cache size is FaasCache's defining limitation (§5.1.1): too
// large wastes memory, too small incurs avoidable cold starts.
//
// apps[i] supplies the demand series; memGB[i] the per-container memory.
// The returned samples are per-app.
func SimulateFaasCache(apps []sim.AppTrace, memGB []float64, cfg FaasCacheConfig) []rum.Sample {
	stepSec := cfg.Step.Seconds()
	if stepSec <= 0 {
		stepSec = 60
	}
	n := 0
	for _, a := range apps {
		if a.Demand.Len() > n {
			n = a.Demand.Len()
		}
	}
	samples := make([]rum.Sample, len(apps))
	freq := make([]float64, len(apps))
	// Per-app live container entries.
	containers := make([][]*cacheEntry, len(apps))
	h := &entryHeap{}
	var clock float64
	var cachedGB float64

	priority := func(app int) float64 {
		return clock + freq[app]*cfg.ColdStartSec/memGB[app]
	}

	evictUntilFits := func() {
		for cachedGB > cfg.CacheGB && h.Len() > 0 {
			// Pop the lowest-priority evictable entry; pinned entries are
			// re-pushed after the scan.
			var pinnedBack []*cacheEntry
			var victim *cacheEntry
			for h.Len() > 0 {
				e := heap.Pop(h).(*cacheEntry)
				if e.pinned {
					pinnedBack = append(pinnedBack, e)
					continue
				}
				victim = e
				break
			}
			for _, e := range pinnedBack {
				heap.Push(h, e)
			}
			if victim == nil {
				return // everything pinned; over budget until next interval
			}
			clock = victim.priority // greedy-dual aging
			cachedGB -= memGB[victim.app]
			// Remove from the app's container list.
			list := containers[victim.app]
			for i, e := range list {
				if e == victim {
					containers[victim.app] = append(list[:i], list[i+1:]...)
					break
				}
			}
		}
	}

	for t := 0; t < n; t++ {
		// Unpin everything from the previous interval, then re-enforce the
		// budget: an over-budget state can arise when every container was
		// pinned (serving) at insertion time.
		for _, list := range containers {
			for _, e := range list {
				e.pinned = false
			}
		}
		evictUntilFits()
		for a := range apps {
			if t >= apps[a].Demand.Len() {
				continue
			}
			demand := apps[a].Demand.Values[t]
			need := unitsCeil(demand)
			warm := len(containers[a])
			use := need
			if use > warm {
				use = warm
			}
			if need > 0 {
				freq[a]++
			}
			// Refresh priorities of used containers and pin them.
			for i := 0; i < use; i++ {
				e := containers[a][i]
				e.pinned = true
				e.priority = priority(a)
				heap.Fix(h, e.index)
			}
			// Misses: cold containers, admitted to the cache.
			cold := need - warm
			if cold > 0 {
				samples[a].ColdStarts += cold
				samples[a].ColdStartSec += float64(cold) * cfg.ColdStartSec
				for i := 0; i < cold; i++ {
					e := &cacheEntry{app: a, priority: priority(a), pinned: true}
					containers[a] = append(containers[a], e)
					heap.Push(h, e)
					cachedGB += memGB[a]
				}
				evictUntilFits()
			}
			// Accounting for this interval.
			total := len(containers[a])
			allocGBs := float64(total) * memGB[a] * stepSec
			used := demand
			if used > float64(total) {
				used = float64(total)
			}
			wasted := (float64(total) - used) * memGB[a] * stepSec
			if wasted < 0 {
				wasted = 0
			}
			samples[a].AllocatedGBSec += allocGBs
			samples[a].WastedGBSec += wasted
			if apps[a].Invocations != nil && t < len(apps[a].Invocations) {
				inv := apps[a].Invocations[t]
				samples[a].Invocations += int(inv)
				samples[a].ExecSec += inv * apps[a].ExecSec
			}
		}
	}
	return samples
}

func unitsCeil(v float64) int {
	if v <= 0 {
		return 0
	}
	u := int(v)
	if float64(u) < v {
		u++
	}
	return u
}
