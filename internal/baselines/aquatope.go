package baselines

import (
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/nn"
)

// Aquatope trains an LSTM *per application* over 48-minute input windows
// (Zhou et al., ASPLOS'22) and forecasts the next interval's load. The
// paper's comparison (§5.1.1) trains on the first 7 days of each test trace
// and evaluates on the remaining 5; it finds Aquatope's models adapt too
// slowly to bursty serverless traffic despite their cost — training is 4x
// and inference 28x slower than FeMux's.

// AquatopeConfig parameterizes per-app model training.
type AquatopeConfig struct {
	Window int   // input window length (paper: 48 minutes)
	Hidden int   // LSTM hidden units
	Epochs int   // training epochs
	Seed   int64 // deterministic initialization
}

// DefaultAquatopeConfig returns the artifact's defaults scaled to this
// repository's test sizes.
func DefaultAquatopeConfig() AquatopeConfig {
	return AquatopeConfig{Window: 48, Hidden: 12, Epochs: 15, Seed: 1}
}

// AquatopeForecaster is a trained per-app model implementing
// forecast.Forecaster.
type AquatopeForecaster struct {
	model  *nn.LSTM
	window int
	scale  float64 // normalization: max of training data
	// Timing capture for the training/inference overhead comparison.
	TrainTime time.Duration
}

// TrainAquatope fits one app's model on its training series (per-interval
// average concurrency) and returns the forecaster.
func TrainAquatope(history []float64, cfg AquatopeConfig) *AquatopeForecaster {
	if cfg.Window < 2 {
		cfg.Window = 48
	}
	if cfg.Hidden < 1 {
		cfg.Hidden = 12
	}
	if cfg.Epochs < 1 {
		cfg.Epochs = 15
	}
	scale := 1.0
	for _, v := range history {
		if v > scale {
			scale = v
		}
	}
	f := &AquatopeForecaster{
		model:  nn.NewLSTM(1, cfg.Hidden, cfg.Seed),
		window: cfg.Window,
		scale:  scale,
	}
	var seqs [][][]float64
	var targets []float64
	for i := 0; i+cfg.Window < len(history); i++ {
		seq := make([][]float64, cfg.Window)
		for j := 0; j < cfg.Window; j++ {
			seq[j] = []float64{history[i+j] / scale}
		}
		seqs = append(seqs, seq)
		targets = append(targets, history[i+cfg.Window]/scale)
	}
	start := time.Now()
	if len(seqs) > 0 {
		tc := nn.DefaultTrainConfig()
		tc.Epochs = cfg.Epochs
		// Fit errors only on empty data, which we guarded above.
		_, _ = f.model.Fit(seqs, targets, tc)
	}
	f.TrainTime = time.Since(start)
	return f
}

// Name implements forecast.Forecaster.
func (f *AquatopeForecaster) Name() string { return "aquatope-lstm" }

// Forecast implements forecast.Forecaster: it feeds the last window of
// history through the LSTM, iterating its own predictions for multi-step
// horizons.
func (f *AquatopeForecaster) Forecast(history []float64, horizon int) []float64 {
	if horizon <= 0 {
		return nil
	}
	out := make([]float64, horizon)
	buf := append([]float64(nil), history...)
	for t := 0; t < horizon; t++ {
		w := f.window
		if w > len(buf) {
			w = len(buf)
		}
		if w == 0 {
			out[t] = 0
			continue
		}
		seq := make([][]float64, w)
		for j := 0; j < w; j++ {
			seq[j] = []float64{buf[len(buf)-w+j] / f.scale}
		}
		v := f.model.Predict(seq) * f.scale
		if v < 0 || v != v {
			v = 0
		}
		out[t] = v
		buf = append(buf, v)
	}
	return out
}
