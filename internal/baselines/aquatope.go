package baselines

import (
	"math"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
	"github.com/ubc-cirrus-lab/femux-go/internal/nn"
)

// Aquatope trains an LSTM *per application* over 48-minute input windows
// (Zhou et al., ASPLOS'22) and forecasts the next interval's load. The
// paper's comparison (§5.1.1) trains on the first 7 days of each test trace
// and evaluates on the remaining 5; it finds Aquatope's models adapt too
// slowly to bursty serverless traffic despite their cost — training is 4x
// and inference 28x slower than FeMux's.

// AquatopeConfig parameterizes per-app model training.
type AquatopeConfig struct {
	Window int   // input window length (paper: 48 minutes)
	Hidden int   // LSTM hidden units
	Epochs int   // training epochs
	Seed   int64 // deterministic initialization
}

// DefaultAquatopeConfig returns the artifact's defaults scaled to this
// repository's test sizes.
func DefaultAquatopeConfig() AquatopeConfig {
	return AquatopeConfig{Window: 48, Hidden: 12, Epochs: 15, Seed: 1}
}

// AquatopeForecaster is a trained per-app model implementing
// forecast.Forecaster.
type AquatopeForecaster struct {
	model  *nn.LSTM
	window int
	scale  float64 // normalization: max of training data
	// residStd is the training residual scale (RMSE of the final
	// training epoch, de-normalized), the uncertainty estimate behind
	// ForecastQuantilesInto. Zero when training data was empty or the
	// loss was non-finite.
	residStd float64
	// Timing capture for the training/inference overhead comparison.
	TrainTime time.Duration
}

// TrainAquatope fits one app's model on its training series (per-interval
// average concurrency) and returns the forecaster.
func TrainAquatope(history []float64, cfg AquatopeConfig) *AquatopeForecaster {
	if cfg.Window < 2 {
		cfg.Window = 48
	}
	if cfg.Hidden < 1 {
		cfg.Hidden = 12
	}
	if cfg.Epochs < 1 {
		cfg.Epochs = 15
	}
	scale := 1.0
	for _, v := range history {
		if v > scale {
			scale = v
		}
	}
	f := &AquatopeForecaster{
		model:  nn.NewLSTM(1, cfg.Hidden, cfg.Seed),
		window: cfg.Window,
		scale:  scale,
	}
	var seqs [][][]float64
	var targets []float64
	for i := 0; i+cfg.Window < len(history); i++ {
		seq := make([][]float64, cfg.Window)
		for j := 0; j < cfg.Window; j++ {
			seq[j] = []float64{history[i+j] / scale}
		}
		seqs = append(seqs, seq)
		targets = append(targets, history[i+cfg.Window]/scale)
	}
	start := time.Now()
	if len(seqs) > 0 {
		tc := nn.DefaultTrainConfig()
		tc.Epochs = cfg.Epochs
		// Fit errors only on empty data, which we guarded above. The
		// returned final-epoch MSE is in normalized units; its root,
		// de-normalized, is the model's one-step residual scale.
		mse, _ := f.model.Fit(seqs, targets, tc)
		if mse == mse && !math.IsInf(mse, 0) && mse > 0 {
			f.residStd = math.Sqrt(mse) * scale
		}
	}
	f.TrainTime = time.Since(start)
	return f
}

// Name implements forecast.Forecaster.
func (f *AquatopeForecaster) Name() string { return "aquatope-lstm" }

// Forecast implements forecast.Forecaster: it feeds the last window of
// history through the LSTM, iterating its own predictions for multi-step
// horizons.
func (f *AquatopeForecaster) Forecast(history []float64, horizon int) []float64 {
	if horizon <= 0 {
		return nil
	}
	out := make([]float64, horizon)
	buf := append([]float64(nil), history...)
	for t := 0; t < horizon; t++ {
		w := f.window
		if w > len(buf) {
			w = len(buf)
		}
		if w == 0 {
			out[t] = 0
			continue
		}
		seq := make([][]float64, w)
		for j := 0; j < w; j++ {
			seq[j] = []float64{buf[len(buf)-w+j] / f.scale}
		}
		v := f.model.Predict(seq) * f.scale
		if v < 0 || v != v {
			v = 0
		}
		out[t] = v
		buf = append(buf, v)
	}
	return out
}

// ForecastInto implements forecast.IntoForecaster. The LSTM forward
// pass allocates internally, so this only reuses the caller's dst; it
// exists so the forecaster satisfies forecast.QuantileForecaster and
// participates in forecast.QuantilesInto dispatch.
func (f *AquatopeForecaster) ForecastInto(history []float64, horizon int, dst []float64, _ *forecast.Workspace) []float64 {
	out := f.Forecast(history, horizon)
	if out == nil {
		return nil
	}
	if cap(dst) >= horizon {
		dst = dst[:horizon]
		copy(dst, out)
		return dst
	}
	return out
}

// ForecastQuantilesInto implements forecast.QuantileForecaster: a
// Gaussian band around the iterated point forecast, scaled by the
// training residual (final-epoch RMSE) and widened by sqrt(t+1) as the
// model feeds its own predictions back in.
func (f *AquatopeForecaster) ForecastQuantilesInto(history []float64, horizon int, levels, dst []float64, ws *forecast.Workspace) []float64 {
	if horizon <= 0 || len(levels) == 0 {
		return nil
	}
	pt := f.Forecast(history, horizon)
	sig := make([]float64, horizon)
	for t := range sig {
		sig[t] = f.residStd * math.Sqrt(float64(t+1))
	}
	return forecast.GaussianQuantilesInto(pt, sig, levels, dst, ws)
}
