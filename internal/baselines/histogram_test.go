package baselines

import (
	"testing"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
	"github.com/ubc-cirrus-lab/femux-go/internal/sim"
	"github.com/ubc-cirrus-lab/femux-go/internal/timeseries"
)

// periodicHistory builds a history with bursts of the given concurrency
// every period intervals, ending right after a burst.
func periodicHistory(cycles, period int, conc float64) []float64 {
	h := make([]float64, 0, cycles*period)
	for c := 0; c < cycles; c++ {
		h = append(h, conc)
		for i := 1; i < period; i++ {
			h = append(h, 0)
		}
	}
	return append(h, conc) // end active
}

func TestHistogramKeepsCapacityWhileActive(t *testing.T) {
	p := DefaultHybridHistogram()
	h := periodicHistory(6, 10, 2)
	if got := p.Target(h, 1); got != 2 {
		t.Errorf("active target = %d, want 2", got)
	}
}

func TestHistogramReleasesAndPreWarms(t *testing.T) {
	p := DefaultHybridHistogram()
	// Bursts every 10 intervals: gaps are all 9. Pre-warm percentile of
	// constant gaps = 9, keep-alive = 9. After a burst the policy should
	// release capacity early in the gap and re-warm near interval 8-9.
	base := periodicHistory(8, 10, 1)
	// elapsed 3: mid-gap, released.
	h := append(append([]float64{}, base...), 0, 0, 0)
	if got := p.Target(h, 1); got != 0 {
		t.Errorf("mid-gap target = %d, want 0 (released)", got)
	}
	// elapsed 8: within pre-warm window (pre-1 = 8), warm.
	h = append(append([]float64{}, base...), 0, 0, 0, 0, 0, 0, 0, 0)
	if got := p.Target(h, 1); got != 1 {
		t.Errorf("pre-warm target = %d, want 1", got)
	}
	// elapsed 15: past the keep-alive percentile, released again.
	h = base
	for i := 0; i < 15; i++ {
		h = append(h, 0)
	}
	if got := p.Target(h, 1); got != 0 {
		t.Errorf("overdue target = %d, want 0", got)
	}
}

func TestHistogramFallbackKeepAlive(t *testing.T) {
	p := DefaultHybridHistogram()
	// Only two gaps observed: below MinSamples, fallback applies.
	h := []float64{1, 0, 0, 1, 0, 0, 1, 0, 0}
	if got := p.Target(h, 1); got != 1 {
		t.Errorf("fallback target = %d, want 1 (within fallback KA)", got)
	}
	// Long idle beyond the fallback window: release.
	for i := 0; i < 12; i++ {
		h = append(h, 0)
	}
	if got := p.Target(h, 1); got != 0 {
		t.Errorf("fallback overdue target = %d, want 0", got)
	}
}

func TestHistogramShortGapsDegenerateToKeepAlive(t *testing.T) {
	p := DefaultHybridHistogram()
	// Gaps of 1: pre-warm bound < 2 -> continuous keep-alive up to p99.
	h := []float64{1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0}
	if got := p.Target(h, 1); got != 1 {
		t.Errorf("short-gap target = %d, want 1", got)
	}
}

func TestHistogramEmptyAndIdle(t *testing.T) {
	p := DefaultHybridHistogram()
	if got := p.Target(nil, 1); got != 0 {
		t.Errorf("empty history target = %d", got)
	}
	if got := p.Target(make([]float64, 50), 1); got != 0 {
		t.Errorf("never-active target = %d", got)
	}
}

func TestHistogramBeatsFixedKAOnPredictableGaps(t *testing.T) {
	// Periodic app with 30-minute gaps: a 10-min KA pays a cold start per
	// cycle AND wastes 10 minutes; the histogram pre-warms just in time.
	vals := make([]float64, 600)
	for i := 0; i < len(vals); i += 30 {
		vals[i] = 1
	}
	app := sim.AppTrace{Demand: timeseries.New(time.Minute, vals)}
	cfg := sim.DefaultConcConfig()
	metric := rum.Default()

	hist := sim.SimulateApp(app, DefaultHybridHistogram(), cfg, false).Sample
	ka := sim.SimulateApp(app, sim.KeepAlivePolicy{IdleIntervals: 10}, cfg, false).Sample
	if metric.Eval(hist) >= metric.Eval(ka) {
		t.Errorf("histogram RUM %v should beat 10-min KA %v on periodic gaps",
			metric.Eval(hist), metric.Eval(ka))
	}
	// And it should incur fewer cold starts than scale-to-zero.
	if hist.ColdStarts >= len(vals)/30 {
		t.Errorf("histogram cold starts = %d, pre-warming absent", hist.ColdStarts)
	}
}
