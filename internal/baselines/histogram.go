package baselines

import (
	"sort"

	"github.com/ubc-cirrus-lab/femux-go/internal/sim"
)

// HybridHistogramPolicy implements the hybrid-histogram lifetime policy of
// Shahrad et al. (ATC'20, "Serverless in the Wild"), which the paper's
// related-work section positions against FeMux: each application tracks a
// histogram of its idle times; after traffic stops, capacity is released
// and re-provisioned just before the next invocation is expected — warm
// again from the idle-time distribution's PreWarmPercentile until its
// KeepAlivePercentile. Applications whose idle times the histogram cannot
// represent (too few samples) fall back to a fixed keep-alive window.
type HybridHistogramPolicy struct {
	PreWarmPercentile   float64 // e.g. 0.05: earliest plausible next arrival
	KeepAlivePercentile float64 // e.g. 0.99: latest plausible next arrival
	MinSamples          int     // histogram confidence threshold
	FallbackKeepAlive   int     // intervals, when the histogram is unusable
}

// DefaultHybridHistogram returns the policy with the original paper's
// percentile settings.
func DefaultHybridHistogram() HybridHistogramPolicy {
	return HybridHistogramPolicy{
		PreWarmPercentile:   0.05,
		KeepAlivePercentile: 0.99,
		MinSamples:          5,
		FallbackKeepAlive:   10,
	}
}

// Name implements sim.Policy.
func (HybridHistogramPolicy) Name() string { return "hybrid-histogram" }

// Target implements sim.Policy. The history is per-interval average
// concurrency; idle times are run lengths of zero-demand intervals between
// active intervals.
func (p HybridHistogramPolicy) Target(history []float64, unitConcurrency int) int {
	n := len(history)
	if n == 0 {
		return 0
	}
	// Current idle run length and recent active peak.
	elapsed := 0
	for i := n - 1; i >= 0 && history[i] == 0; i-- {
		elapsed++
	}
	peak := recentActivePeak(history)
	units := unitsCeilConc(peak, unitConcurrency)
	if units == 0 {
		return 0
	}
	if elapsed == 0 {
		// Actively serving: keep capacity.
		return units
	}
	gaps := idleGaps(history[:n-elapsed])
	if len(gaps) < p.MinSamples {
		// Not enough history: fixed keep-alive fallback.
		if elapsed <= p.FallbackKeepAlive {
			return units
		}
		return 0
	}
	sort.Ints(gaps)
	pre := percentileInt(gaps, p.PreWarmPercentile)
	ka := percentileInt(gaps, p.KeepAlivePercentile)
	// Warm during the window when the next invocation is plausible. A
	// pre-warm bound below 2 keeps the container alive continuously (the
	// policy's "keep-alive only" degenerate case).
	if pre < 2 {
		if elapsed <= ka {
			return units
		}
		return 0
	}
	if elapsed >= pre-1 && elapsed <= ka {
		return units
	}
	return 0
}

// recentActivePeak returns the peak concurrency over the most recent active
// episode (up to the last 30 intervals of nonzero demand).
func recentActivePeak(history []float64) float64 {
	peak := 0.0
	seen := 0
	for i := len(history) - 1; i >= 0 && seen < 30; i-- {
		if history[i] > 0 {
			if history[i] > peak {
				peak = history[i]
			}
			seen++
		}
	}
	return peak
}

// idleGaps extracts completed zero-demand run lengths between active
// intervals.
func idleGaps(history []float64) []int {
	var gaps []int
	run := 0
	active := false
	for _, v := range history {
		if v > 0 {
			if active && run > 0 {
				gaps = append(gaps, run)
			}
			active = true
			run = 0
			continue
		}
		if active {
			run++
		}
	}
	return gaps
}

func percentileInt(sorted []int, p float64) int {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func unitsCeilConc(conc float64, unitC int) int {
	if conc <= 0 {
		return 0
	}
	if unitC < 1 {
		unitC = 1
	}
	u := int(conc) / unitC
	for float64(u*unitC) < conc {
		u++
	}
	return u
}

// Interface check.
var _ sim.Policy = HybridHistogramPolicy{}
