package baselines

import (
	"github.com/ubc-cirrus-lab/femux-go/internal/forecast"
	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
	"github.com/ubc-cirrus-lab/femux-go/internal/sim"
)

// IceBreakerPolicy returns IceBreaker's adaptive lifetime policy restricted
// to homogeneous resources, exactly as the paper evaluates it (§5.1.1): a
// single FFT forecaster predicting per-interval load, with capacity scaled
// to the prediction. IceBreaker operates on OpenWhisk's representation —
// integer instance counts — so predictions are *rounded* to whole
// instances rather than ceiled (the paper simulates each baseline in its
// own data representation). The rounding is IceBreaker's documented
// weakness: FFT residue below half an instance rounds to zero, so
// low-traffic apps are forecast to zero and cold-start repeatedly.
func IceBreakerPolicy() sim.Policy {
	return iceBreakerPolicy{fft: forecast.NewFFT(10), window: 120}
}

type iceBreakerPolicy struct {
	fft    *forecast.FFT
	window int
}

// Name implements sim.Policy.
func (iceBreakerPolicy) Name() string { return "icebreaker-fft" }

// Target implements sim.Policy.
func (p iceBreakerPolicy) Target(history []float64, unitConcurrency int) int {
	if p.window > 0 && p.window < len(history) {
		history = history[len(history)-p.window:]
	}
	pred := p.fft.Forecast(history, 1)
	peak := 0.0
	for _, v := range pred {
		if v > peak {
			peak = v
		}
	}
	if unitConcurrency < 1 {
		unitConcurrency = 1
	}
	return int(peak/float64(unitConcurrency) + 0.5)
}

// KeepAlive10Min returns the 10-minute keep-alive policy IceBreaker and
// Aquatope normalize against, expressed in intervals of the given step
// count per minute (1 for minute-level simulation).
func KeepAlive10Min(intervalsPerMinute int) sim.Policy {
	if intervalsPerMinute < 1 {
		intervalsPerMinute = 1
	}
	return sim.KeepAlivePolicy{IdleIntervals: 10 * intervalsPerMinute}
}

// IceBreakerMetrics are the quantities Roy et al. report: service time
// (wait + cold start + execution) and keep-alive cost in dollars, both
// normalized to the 10-minute keep-alive policy.
type IceBreakerMetrics struct {
	ServiceTimeIncrease float64 // fractional increase vs the 10-min KA baseline
	KeepAliveCostRatio  float64 // fraction of the baseline's keep-alive cost
}

// IceBreakerEval computes IceBreaker's metrics for a run against the
// 10-minute-KA baseline run over the same workload. Keep-alive cost is
// proportional to allocated GB-seconds (homogeneous pricing); service time
// is execution plus cold-start time.
func IceBreakerEval(run, baseline rum.Sample) IceBreakerMetrics {
	var m IceBreakerMetrics
	baseService := baseline.ExecSec + baseline.ColdStartSec
	runService := run.ExecSec + run.ColdStartSec
	if baseService > 0 {
		m.ServiceTimeIncrease = (runService - baseService) / baseService
	}
	if baseline.AllocatedGBSec > 0 {
		m.KeepAliveCostRatio = run.AllocatedGBSec / baseline.AllocatedGBSec
	}
	return m
}
