package baselines

import (
	"math"
	"testing"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/rum"
	"github.com/ubc-cirrus-lab/femux-go/internal/sim"
	"github.com/ubc-cirrus-lab/femux-go/internal/timeseries"
)

func appWith(vals []float64) sim.AppTrace {
	return sim.AppTrace{Demand: timeseries.New(time.Minute, vals)}
}

func TestFaasCacheWarmHitsAfterFirstMiss(t *testing.T) {
	apps := []sim.AppTrace{appWith([]float64{1, 1, 1, 1})}
	mem := []float64{0.15}
	out := SimulateFaasCache(apps, mem, DefaultFaasCacheConfig(10))
	if out[0].ColdStarts != 1 {
		t.Errorf("cold starts = %d, want 1 (only the first access misses)", out[0].ColdStarts)
	}
}

func TestFaasCacheCacheSizeTradeoff(t *testing.T) {
	// Two alternating apps that never overlap: a cache big enough for both
	// keeps each warm (2 cold starts total); a cache holding only one
	// container forces a miss on every activation.
	a := make([]float64, 20)
	b := make([]float64, 20)
	for i := range a {
		if i%2 == 0 {
			a[i] = 1
		} else {
			b[i] = 1
		}
	}
	apps := []sim.AppTrace{appWith(a), appWith(b)}
	mem := []float64{1, 1}

	big := SimulateFaasCache(apps, mem, DefaultFaasCacheConfig(10))
	small := SimulateFaasCache(apps, mem, DefaultFaasCacheConfig(1))

	bigCold := big[0].ColdStarts + big[1].ColdStarts
	smallCold := small[0].ColdStarts + small[1].ColdStarts
	if bigCold != 2 {
		t.Errorf("big cache cold starts = %d, want 2", bigCold)
	}
	if smallCold <= bigCold {
		t.Errorf("small cache should thrash: %d vs %d", smallCold, bigCold)
	}
	// And the big cache wastes more memory.
	bigWaste := big[0].WastedGBSec + big[1].WastedGBSec
	smallWaste := small[0].WastedGBSec + small[1].WastedGBSec
	if bigWaste <= smallWaste {
		t.Errorf("big cache should waste more: %v vs %v", bigWaste, smallWaste)
	}
}

func TestFaasCacheGreedyDualPrefersHotApps(t *testing.T) {
	// App 0 is invoked every interval, app 1 once; with room for one
	// container, the hot app should keep its container and the cold app
	// should be evicted.
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		a[i] = 1
	}
	b[0] = 1
	b[15] = 1
	apps := []sim.AppTrace{appWith(a), appWith(b)}
	mem := []float64{1, 1}
	out := SimulateFaasCache(apps, mem, DefaultFaasCacheConfig(1.5))
	if out[0].ColdStarts > 2 {
		t.Errorf("hot app cold starts = %d, should stay cached", out[0].ColdStarts)
	}
	if out[1].ColdStarts != 2 {
		t.Errorf("cold app cold starts = %d, want 2 (evicted between uses)", out[1].ColdStarts)
	}
}

func TestFaasCachePinnedContainersSurviveEviction(t *testing.T) {
	// Both apps active in the same interval with a cache for one: the
	// in-use (pinned) containers must not be evicted mid-interval, so both
	// still serve, and the budget is enforced afterwards.
	apps := []sim.AppTrace{appWith([]float64{1, 1}), appWith([]float64{1, 1})}
	mem := []float64{1, 1}
	out := SimulateFaasCache(apps, mem, DefaultFaasCacheConfig(1))
	total := out[0].ColdStarts + out[1].ColdStarts
	if total < 2 {
		t.Errorf("cold starts = %d, want >= 2", total)
	}
	// No panics and allocations accounted.
	if out[0].AllocatedGBSec <= 0 || out[1].AllocatedGBSec <= 0 {
		t.Error("allocations missing")
	}
}

func TestFaasCacheInvocationAccounting(t *testing.T) {
	app := appWith([]float64{1, 1})
	app.Invocations = []float64{3, 4}
	app.ExecSec = 2
	out := SimulateFaasCache([]sim.AppTrace{app}, []float64{0.5}, DefaultFaasCacheConfig(5))
	if out[0].Invocations != 7 {
		t.Errorf("invocations = %d, want 7", out[0].Invocations)
	}
	if math.Abs(out[0].ExecSec-14) > 1e-9 {
		t.Errorf("exec = %v, want 14", out[0].ExecSec)
	}
}

func TestIceBreakerEval(t *testing.T) {
	baseline := rum.Sample{ExecSec: 100, ColdStartSec: 10, AllocatedGBSec: 1000}
	run := rum.Sample{ExecSec: 100, ColdStartSec: 80, AllocatedGBSec: 400}
	m := IceBreakerEval(run, baseline)
	wantInc := (180.0 - 110.0) / 110.0
	if math.Abs(m.ServiceTimeIncrease-wantInc) > 1e-12 {
		t.Errorf("service time increase = %v, want %v", m.ServiceTimeIncrease, wantInc)
	}
	if math.Abs(m.KeepAliveCostRatio-0.4) > 1e-12 {
		t.Errorf("cost ratio = %v, want 0.4", m.KeepAliveCostRatio)
	}
	// Degenerate baselines do not divide by zero.
	z := IceBreakerEval(run, rum.Sample{})
	if z.ServiceTimeIncrease != 0 || z.KeepAliveCostRatio != 0 {
		t.Errorf("zero baseline should produce zero metrics: %+v", z)
	}
}

func TestIceBreakerPolicyForecastsPeriodicTraffic(t *testing.T) {
	// Periodic history: the FFT-driven policy should target capacity at
	// bursts and (near) zero off-peak.
	hist := make([]float64, 120)
	for i := range hist {
		if i%10 == 0 {
			hist[i] = 4
		}
	}
	p := IceBreakerPolicy()
	if got := p.Target(hist, 1); got < 0 {
		t.Errorf("negative target %d", got)
	}
	// Low-traffic weakness: near-zero history forecasts zero.
	quiet := make([]float64, 120)
	if got := p.Target(quiet, 1); got != 0 {
		t.Errorf("quiet target = %d, want 0", got)
	}
}

func TestKeepAlive10Min(t *testing.T) {
	p := KeepAlive10Min(1)
	hist := make([]float64, 20)
	hist[12] = 3 // 8 intervals ago: inside the 10-interval window
	if got := p.Target(hist, 1); got != 3 {
		t.Errorf("target = %d, want 3", got)
	}
	hist2 := make([]float64, 20)
	hist2[5] = 3 // 15 intervals ago: outside
	if got := p.Target(hist2, 1); got != 0 {
		t.Errorf("target = %d, want 0", got)
	}
}

func TestAquatopeLearnsPeriodicPattern(t *testing.T) {
	// Strongly periodic series: after training, the forecast at a burst
	// offset should exceed the forecast at a quiet offset.
	series := make([]float64, 400)
	for i := range series {
		if i%8 < 2 {
			series[i] = 5
		}
	}
	cfg := DefaultAquatopeConfig()
	cfg.Window = 16
	cfg.Epochs = 25
	f := TrainAquatope(series[:300], cfg)
	if f.TrainTime <= 0 {
		t.Error("train time not captured")
	}
	// History ending right before a burst (i%8==7 -> next is burst).
	preBurst := series[:303] // index 303 % 8 == 7... ensure alignment below
	for len(preBurst)%8 != 0 {
		preBurst = preBurst[:len(preBurst)-1]
	}
	burstPred := f.Forecast(preBurst, 1)[0]
	// History ending mid-quiet (next also quiet).
	midQuiet := series[:300]
	for len(midQuiet)%8 != 4 {
		midQuiet = midQuiet[:len(midQuiet)-1]
	}
	quietPred := f.Forecast(midQuiet, 1)[0]
	if burstPred <= quietPred {
		t.Errorf("burst prediction %v should exceed quiet prediction %v", burstPred, quietPred)
	}
}

func TestAquatopeForecastContract(t *testing.T) {
	f := TrainAquatope([]float64{1, 2, 3}, AquatopeConfig{Window: 4, Hidden: 4, Epochs: 2, Seed: 1})
	if got := f.Forecast(nil, 3); len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for _, v := range f.Forecast([]float64{1, 2}, 5) {
		if v < 0 || math.IsNaN(v) {
			t.Errorf("invalid forecast value %v", v)
		}
	}
	if f.Forecast([]float64{1}, 0) != nil {
		t.Error("horizon 0 should be nil")
	}
	if f.Name() != "aquatope-lstm" {
		t.Errorf("name = %q", f.Name())
	}
}

func TestAquatopeInferenceSlowerThanLightweight(t *testing.T) {
	// The paper's overhead claim at miniature scale: LSTM inference is at
	// least several times slower than a moving average.
	series := make([]float64, 200)
	for i := range series {
		series[i] = float64(i % 7)
	}
	f := TrainAquatope(series, AquatopeConfig{Window: 48, Hidden: 12, Epochs: 2, Seed: 2})
	hist := series[:100]

	start := time.Now()
	for i := 0; i < 200; i++ {
		f.Forecast(hist, 1)
	}
	lstmTime := time.Since(start)

	start = time.Now()
	for i := 0; i < 200; i++ {
		quickMA(hist)
	}
	maTime := time.Since(start)
	if lstmTime < maTime {
		t.Errorf("LSTM inference %v should be slower than MA %v", lstmTime, maTime)
	}
}

func quickMA(hist []float64) float64 {
	var s float64
	for _, v := range hist {
		s += v
	}
	return s / float64(len(hist))
}

func BenchmarkFaasCache(b *testing.B) {
	apps := make([]sim.AppTrace, 20)
	mem := make([]float64, 20)
	for i := range apps {
		vals := make([]float64, 200)
		for j := range vals {
			if (j+i)%5 == 0 {
				vals[j] = float64(i%3 + 1)
			}
		}
		apps[i] = appWith(vals)
		mem[i] = 0.15
	}
	cfg := DefaultFaasCacheConfig(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimulateFaasCache(apps, mem, cfg)
	}
}
