// Package memo provides the content-addressed cache behind FeMux's offline
// pipeline. The paper's operating model (§4.3.3-4.3.4) retrains monthly
// offline and ships the classifier to the forecasting pods; between
// retrains — and between the many sweep points of the evaluation — most of
// the expensive per-(app, forecaster) block simulations and per-block
// feature extractions are byte-identical. Callers hash every input that
// determines a computation's output into a Key and route the computation
// through Do; repeated requests return the first result without recompute.
//
// The cache is concurrency-safe and deduplicates in-flight work
// (singleflight): concurrent requests for the same key run the computation
// once and share the result. An optional disk directory spills entries as
// gob files so repeated CLI runs warm-start across processes.
//
// Correctness discipline: a cached pipeline must be bit-identical to an
// uncached one. That holds trivially when (a) every computation routed
// through the cache is a deterministic pure function of its inputs and (b)
// the key covers every input. Keys are 256-bit SHA-256 digests over a
// canonical binary encoding (see Hasher), so accidental collisions are not
// a practical concern; under-keyed entries are the real hazard, which is
// why each call site names a domain and hashes full value contents rather
// than identities.
package memo

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Key is a content hash identifying one memoized computation.
type Key [sha256.Size]byte

// String returns the hex form of the key (used for disk file names).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Hasher accumulates a canonical binary encoding of a computation's inputs
// into a SHA-256 digest. Every write is prefixed with a kind tag and
// length-delimited where variable-sized, so adjacent fields cannot alias
// each other ("ab"+"c" hashes differently from "a"+"bc", an empty slice
// differently from an absent one, and Int(0) differently from Float(0) or
// Bool(false)). Hashers are cheap; build one per key. Not safe for
// concurrent use.
type Hasher struct {
	h   hash.Hash
	buf [9]byte
}

// NewHasher starts a digest for the given domain. The domain string
// namespaces key spaces: two computations with identical inputs but
// different domains get distinct keys.
func NewHasher(domain string) *Hasher {
	h := &Hasher{h: sha256.New()}
	h.String(domain)
	return h
}

// word writes a kind tag followed by one 64-bit value.
func (h *Hasher) word(tag byte, v uint64) {
	h.buf[0] = tag
	binary.LittleEndian.PutUint64(h.buf[1:], v)
	h.h.Write(h.buf[:])
}

// raw writes a bare 64-bit value (used inside already-tagged slices).
func (h *Hasher) raw(v uint64) {
	binary.LittleEndian.PutUint64(h.buf[1:], v)
	h.h.Write(h.buf[1:])
}

// String hashes a length-prefixed string.
func (h *Hasher) String(s string) {
	h.word('s', uint64(len(s)))
	h.h.Write([]byte(s))
}

// Int hashes a signed integer.
func (h *Hasher) Int(v int64) { h.word('i', uint64(v)) }

// Float hashes a float64 by its IEEE-754 bits, so +0/-0 and every NaN
// payload are distinct — bit-identity is the contract, not numeric
// equality.
func (h *Hasher) Float(v float64) { h.word('f', math.Float64bits(v)) }

// Floats hashes a length-prefixed float64 slice.
func (h *Hasher) Floats(xs []float64) {
	h.word('F', uint64(len(xs)))
	for _, v := range xs {
		h.raw(math.Float64bits(v))
	}
}

// Strings hashes a length-prefixed string slice.
func (h *Hasher) Strings(ss []string) {
	h.word('S', uint64(len(ss)))
	for _, s := range ss {
		h.String(s)
	}
}

// Bool hashes a boolean.
func (h *Hasher) Bool(v bool) {
	if v {
		h.word('b', 1)
	} else {
		h.word('b', 0)
	}
}

// Key hashes an already-computed key, letting callers build two-level keys
// (hash a large shared input once, then derive many cheap sub-keys).
func (h *Hasher) Key(k Key) {
	h.buf[0] = 'k'
	h.h.Write(h.buf[:1])
	h.h.Write(k[:])
}

// Sum finalizes the digest. The hasher may keep accumulating afterwards;
// Sum is a snapshot.
func (h *Hasher) Sum() Key {
	var k Key
	copy(k[:], h.h.Sum(nil))
	return k
}

// Stats reports cache effectiveness counters.
type Stats struct {
	Hits     uint64 // Do calls answered from memory or disk
	Misses   uint64 // Do calls that ran the computation
	DiskHits uint64 // subset of Hits satisfied from the spill directory
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookups.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// call tracks one in-flight computation so concurrent requests for the
// same key share a single execution.
type call struct {
	wg  sync.WaitGroup
	val any
}

// Cache is a concurrency-safe content-addressed store. The zero value is
// not usable; construct with New or NewDisk. A nil *Cache is a valid
// "caching disabled" handle: lookups miss and stores are dropped, so call
// sites need no nil checks beyond passing it through.
type Cache struct {
	mu      sync.RWMutex
	entries map[Key]any
	flights map[Key]*call
	dir     string // "" = memory only

	hits, misses, diskHits atomic.Uint64
}

// New returns an in-memory cache.
func New() *Cache {
	return &Cache{entries: map[Key]any{}, flights: map[Key]*call{}}
}

// NewDisk returns a cache that additionally spills every entry to dir as
// <hex-key>.gob and consults dir on memory misses, so repeated processes
// warm-start. The directory is created if missing.
func NewDisk(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("memo: cache dir: %w", err)
	}
	c := New()
	c.dir = dir
	return c, nil
}

// Stats returns a snapshot of the hit/miss counters. Safe on nil.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		DiskHits: c.diskHits.Load(),
	}
}

// Len returns the number of in-memory entries. Safe on nil.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Do returns the cached value for key, computing and storing it via fn on
// a miss. Concurrent calls with the same key run fn once; the others block
// and share the result. fn must be a deterministic pure function of the
// inputs hashed into key — the bit-identical-to-uncached guarantee rests
// on that. A nil cache calls fn directly.
//
// The disk tier (if configured) is consulted under the key's flight lock,
// so a cold process pays at most one decode per key.
func Do[T any](c *Cache, key Key, fn func() T) T {
	if c == nil {
		return fn()
	}
	c.mu.RLock()
	v, ok := c.entries[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return v.(T)
	}

	c.mu.Lock()
	// Re-check: the value may have landed while we waited for the lock.
	if v, ok := c.entries[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return v.(T)
	}
	if fl, ok := c.flights[key]; ok {
		c.mu.Unlock()
		fl.wg.Wait()
		c.hits.Add(1)
		return fl.val.(T)
	}
	fl := &call{}
	fl.wg.Add(1)
	c.flights[key] = fl
	c.mu.Unlock()

	var val T
	fromDisk := false
	if c.dir != "" {
		if dv, ok := loadDisk[T](c, key); ok {
			val, fromDisk = dv, true
		}
	}
	if fromDisk {
		c.hits.Add(1)
		c.diskHits.Add(1)
	} else {
		c.misses.Add(1)
		val = fn()
		if c.dir != "" {
			c.storeDisk(key, val)
		}
	}

	c.mu.Lock()
	c.entries[key] = val
	delete(c.flights, key)
	c.mu.Unlock()
	fl.val = val
	fl.wg.Done()
	return val
}

// Get returns the in-memory (or disk) value for key without computing.
func Get[T any](c *Cache, key Key) (T, bool) {
	var zero T
	if c == nil {
		return zero, false
	}
	c.mu.RLock()
	v, ok := c.entries[key]
	c.mu.RUnlock()
	if ok {
		tv, tok := v.(T)
		return tv, tok
	}
	if c.dir != "" {
		if dv, ok := loadDisk[T](c, key); ok {
			c.mu.Lock()
			c.entries[key] = dv
			c.mu.Unlock()
			return dv, true
		}
	}
	return zero, false
}

// Put stores a value without a computation (used by warm-start writers).
func Put[T any](c *Cache, key Key, v T) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.entries[key] = v
	c.mu.Unlock()
	if c.dir != "" {
		c.storeDisk(key, v)
	}
}

func (c *Cache) path(key Key) string {
	return filepath.Join(c.dir, key.String()+".gob")
}

// loadDisk decodes the spilled entry for key. A corrupt or unreadable file
// is treated as a miss (the computation simply re-runs and overwrites it)
// — the cache must never turn a bad file into a bad result.
func loadDisk[T any](c *Cache, key Key) (T, bool) {
	var out T
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return out, false
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&out); err != nil {
		var zero T
		return zero, false
	}
	return out, true
}

// storeDisk spills an entry atomically (temp file + rename) so concurrent
// writers and readers never observe a torn file. Spill errors are dropped:
// the disk tier is an optimization, not a source of truth.
func (c *Cache) storeDisk(key Key, v any) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, c.path(key)); err != nil {
		os.Remove(name)
	}
}
