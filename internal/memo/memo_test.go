package memo

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// TestHashStability pins the canonical encoding: the same logical inputs
// must produce the same key in every process and on every platform, or a
// disk-spilled cache would silently go cold (or worse, a future encoding
// change would reuse old spill files for different content). The expected
// digests were produced by this implementation; the test fails if the
// encoding ever drifts.
func TestHashStability(t *testing.T) {
	build := func() Key {
		h := NewHasher("test-domain")
		h.String("app-7")
		h.Int(144)
		h.Float(0.808)
		h.Floats([]float64{0, 1.5, -2.25})
		h.Strings([]string{"a", "b"})
		h.Bool(true)
		return h.Sum()
	}
	k1, k2 := build(), build()
	if k1 != k2 {
		t.Fatalf("same inputs hashed differently: %s vs %s", k1, k2)
	}
	const want = "576acfa5da5ac5c7cef3721551d9cf29e0677ee7bc908ca6b8a0fb4ca3b7206f"
	if got := k1.String(); got != want {
		t.Errorf("canonical encoding drifted: key = %s, pinned %s\n"+
			"(if the Hasher encoding changed intentionally, bump the pinned value AND invalidate disk caches)", got, want)
	}
}

// TestHashCollisionSanity checks that every distinguishing input —
// domain, field order, boundary aliasing, float signedness — yields a
// distinct key. Under-keying is the cache's only realistic corruption
// mode, so each case here is a configuration pair that must never share
// an entry.
func TestHashCollisionSanity(t *testing.T) {
	keys := map[Key]string{}
	add := func(name string, k Key) {
		t.Helper()
		if prev, ok := keys[k]; ok {
			t.Errorf("collision: %q and %q share key %s", prev, name, k)
		}
		keys[k] = name
	}

	h := NewHasher("d1")
	h.String("x")
	add("d1/x", h.Sum())

	h = NewHasher("d2")
	h.String("x")
	add("d2/x", h.Sum())

	// Field boundary aliasing: "ab"+"c" vs "a"+"bc".
	h = NewHasher("d1")
	h.String("ab")
	h.String("c")
	add("d1/ab+c", h.Sum())
	h = NewHasher("d1")
	h.String("a")
	h.String("bc")
	add("d1/a+bc", h.Sum())

	// Slice boundary aliasing: [1,2]+[3] vs [1]+[2,3] vs [1,2,3].
	h = NewHasher("d1")
	h.Floats([]float64{1, 2})
	h.Floats([]float64{3})
	add("d1/[1,2]+[3]", h.Sum())
	h = NewHasher("d1")
	h.Floats([]float64{1})
	h.Floats([]float64{2, 3})
	add("d1/[1]+[2,3]", h.Sum())
	h = NewHasher("d1")
	h.Floats([]float64{1, 2, 3})
	add("d1/[1,2,3]", h.Sum())

	// Empty vs absent slice.
	h = NewHasher("d1")
	h.Floats(nil)
	add("d1/nil-floats", h.Sum())
	h = NewHasher("d1")
	add("d1/no-floats", h.Sum())

	// Signed zero, ints vs floats of equal value.
	h = NewHasher("d1")
	h.Float(0.0)
	add("d1/+0.0", h.Sum())
	h = NewHasher("d1")
	h.Float(negZero())
	add("d1/-0.0", h.Sum())
	h = NewHasher("d1")
	h.Int(0)
	add("d1/int0", h.Sum())

	// Bools vs equivalent ints.
	h = NewHasher("d1")
	h.Bool(true)
	add("d1/true", h.Sum())
	h = NewHasher("d1")
	h.Bool(false)
	add("d1/false", h.Sum())
}

// negZero dodges Go's constant folding (the literal -0.0 is +0).
func negZero() float64 { return math.Copysign(0, -1) }

func TestDoComputesOnceAndReturnsCached(t *testing.T) {
	c := New()
	key := NewHasher("t").Sum()
	var calls int
	v := Do(c, key, func() []float64 { calls++; return []float64{1, 2} })
	if !reflect.DeepEqual(v, []float64{1, 2}) {
		t.Fatalf("first Do = %v", v)
	}
	v2 := Do(c, key, func() []float64 { calls++; return []float64{9} })
	if !reflect.DeepEqual(v2, []float64{1, 2}) {
		t.Fatalf("cached Do = %v, want first result", v2)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", got)
	}
}

func TestNilCacheIsPassthrough(t *testing.T) {
	var c *Cache
	var calls int
	for i := 0; i < 3; i++ {
		Do(c, Key{}, func() int { calls++; return calls })
	}
	if calls != 3 {
		t.Fatalf("nil cache memoized: %d calls", calls)
	}
	if c.Stats() != (Stats{}) || c.Len() != 0 {
		t.Error("nil cache reported state")
	}
	if _, ok := Get[int](c, Key{}); ok {
		t.Error("nil cache Get reported a value")
	}
	Put(c, Key{}, 1) // must not panic
}

// TestDiskRoundTrip covers the -cache-dir warm-start path: a second cache
// over the same directory must serve the first cache's entries without
// recomputing, and corrupt spill files must degrade to a recompute rather
// than an error or a wrong value.
func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	type sample struct {
		N  int
		Xs []float64
	}
	key := NewHasher("disk").Sum()
	want := []sample{{N: 3, Xs: []float64{1.5, -2}}, {N: 0}}
	got := Do(c1, key, func() []sample { return want })
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("first Do = %+v", got)
	}

	// Fresh cache, same dir: must hit disk, not recompute.
	c2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	recomputed := false
	got2 := Do(c2, key, func() []sample { recomputed = true; return nil })
	if recomputed {
		t.Error("disk entry ignored: computation re-ran")
	}
	if !reflect.DeepEqual(got2, want) {
		t.Fatalf("disk round-trip = %+v, want %+v", got2, want)
	}
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Errorf("disk hits = %d, want 1", st.DiskHits)
	}

	// And the entry is now in memory: a second lookup must not re-read.
	if v, ok := Get[[]sample](c2, key); !ok || !reflect.DeepEqual(v, want) {
		t.Errorf("Get after disk hit = %+v, %v", v, ok)
	}

	// Corrupt file: treated as a miss, recomputed, re-spilled.
	key2 := NewHasher("disk2").Sum()
	if err := os.WriteFile(filepath.Join(dir, key2.String()+".gob"), []byte("not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	got3 := Do(c2, key2, func() []sample { return want[:1] })
	if !reflect.DeepEqual(got3, want[:1]) {
		t.Fatalf("corrupt-file Do = %+v", got3)
	}
}

func TestPutGetTypedMismatch(t *testing.T) {
	c := New()
	key := NewHasher("typed").Sum()
	Put(c, key, 42)
	if v, ok := Get[int](c, key); !ok || v != 42 {
		t.Fatalf("Get[int] = %v, %v", v, ok)
	}
	// Wrong type assertion must fail closed, not panic.
	if _, ok := Get[string](c, key); ok {
		t.Error("Get[string] on an int entry reported ok")
	}
}

// TestConcurrentSingleflight hammers one key from many goroutines: the
// computation must run exactly once and everyone must observe the same
// value. Run under -race (CI does) to certify the locking.
func TestConcurrentSingleflight(t *testing.T) {
	c := New()
	key := NewHasher("flight").Sum()
	var computes atomic.Int64
	const goroutines = 32
	results := make([][]float64, goroutines)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			results[g] = Do(c, key, func() []float64 {
				computes.Add(1)
				return []float64{3.14}
			})
		}(g)
	}
	close(start)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("computation ran %d times under contention, want 1", n)
	}
	for g, r := range results {
		if !reflect.DeepEqual(r, []float64{3.14}) {
			t.Fatalf("goroutine %d got %v", g, r)
		}
	}
}

// TestConcurrentManyKeys drives disjoint and overlapping keys from many
// goroutines against a disk-backed cache — the exact access pattern of a
// parallel training sweep with -cache-dir set.
func TestConcurrentManyKeys(t *testing.T) {
	c, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const keys = 16
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				h := NewHasher("many")
				h.Int(int64(i))
				want := fmt.Sprintf("value-%d", i)
				got := Do(c, h.Sum(), func() string { return want })
				if got != want {
					t.Errorf("key %d: got %q", i, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != keys {
		t.Errorf("entries = %d, want %d", c.Len(), keys)
	}
	st := c.Stats()
	if st.Misses != keys {
		t.Errorf("misses = %d, want %d (one per distinct key)", st.Misses, keys)
	}
}
