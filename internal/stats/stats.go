// Package stats provides the descriptive statistics used throughout the
// characterization and evaluation: moments, coefficient of variation,
// percentiles, empirical CDFs, and histograms.
//
// The characterization section of the paper (§3) is expressed almost
// entirely in these terms — "94.5% of invocations have sub-second IATs",
// "96% of workloads have CV > 1", "median p99 execution time is 800 ms" —
// so these primitives are shared by internal/characterize and the
// benchmark harness.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CV returns the coefficient of variation sigma/mu. A CV above one marks a
// highly variable workload (§3.2). For a zero mean it returns +Inf if any
// variance exists, else 0.
func CV(xs []float64) float64 {
	m := Mean(xs)
	sd := StdDev(xs)
	if m == 0 {
		if sd == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return sd / math.Abs(m)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// PercentileSorted is Percentile for data already in ascending order. Use it
// when computing many percentiles of the same sample to avoid re-sorting.
func PercentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// FractionBelow reports the share of values strictly below threshold.
func FractionBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range xs {
		if v < threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Summary bundles the descriptive statistics reported per workload in the
// characterization figures.
type Summary struct {
	Count  int
	Mean   float64
	StdDev float64
	CV     float64
	Min    float64
	P50    float64
	P90    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		Count:  len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		CV:     CV(xs),
		Min:    sorted[0],
		P50:    PercentileSorted(sorted, 50),
		P90:    PercentileSorted(sorted, 90),
		P99:    PercentileSorted(sorted, 99),
		Max:    sorted[len(sorted)-1],
	}
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64 // P(X <= Value)
}

// CDF returns the empirical cumulative distribution of xs, one point per
// distinct value. It is what the characterization figures plot.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, 0, len(sorted))
	n := float64(len(sorted))
	for i := 0; i < len(sorted); i++ {
		// Collapse runs of identical values to their final (highest) rank.
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		out = append(out, CDFPoint{Value: sorted[i], Fraction: float64(i+1) / n})
	}
	return out
}

// CDFAt evaluates the empirical CDF of xs at v: P(X <= v).
func CDFAt(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x <= v {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Histogram counts values into nbins equal-width bins across [min, max].
// Values outside the range clamp to the edge bins.
type Histogram struct {
	Min, Max float64
	Counts   []int
	Total    int
}

// NewHistogram builds a histogram of xs with nbins bins.
func NewHistogram(xs []float64, nbins int, min, max float64) *Histogram {
	if nbins <= 0 {
		nbins = 1
	}
	h := &Histogram{Min: min, Max: max, Counts: make([]int, nbins)}
	for _, v := range xs {
		h.Add(v)
	}
	return h
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	n := len(h.Counts)
	var idx int
	if h.Max > h.Min {
		idx = int(float64(n) * (v - h.Min) / (h.Max - h.Min))
	}
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Counts[idx]++
	h.Total++
}

// Fraction returns the share of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// OnlineStats accumulates count/mean/variance incrementally (Welford) so the
// simulator can track metrics over millions of events without storing them.
type OnlineStats struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (o *OnlineStats) Add(v float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = v, v
	} else {
		if v < o.min {
			o.min = v
		}
		if v > o.max {
			o.max = v
		}
	}
	d := v - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (v - o.mean)
}

// Count returns the number of observations.
func (o *OnlineStats) Count() int { return o.n }

// Mean returns the running mean.
func (o *OnlineStats) Mean() float64 { return o.mean }

// Variance returns the running population variance.
func (o *OnlineStats) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// Min returns the smallest observation (0 when empty).
func (o *OnlineStats) Min() float64 { return o.min }

// Max returns the largest observation (0 when empty).
func (o *OnlineStats) Max() float64 { return o.max }
