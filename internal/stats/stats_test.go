package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %v, want 4", v)
	}
	if sd := StdDev(xs); sd != 2 {
		t.Errorf("StdDev = %v, want 2", sd)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || CV(nil) != 0 {
		t.Error("empty slice statistics should be zero")
	}
	if Variance([]float64{3}) != 0 {
		t.Error("singleton variance should be zero")
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be zero")
	}
	if Median([]float64{7}) != 7 {
		t.Error("singleton median should be the value")
	}
}

func TestCV(t *testing.T) {
	// Constant series: CV = 0.
	if cv := CV([]float64{5, 5, 5}); cv != 0 {
		t.Errorf("constant CV = %v, want 0", cv)
	}
	// Zero-mean with variance: +Inf.
	if cv := CV([]float64{-1, 1}); !math.IsInf(cv, 1) {
		t.Errorf("zero-mean CV = %v, want +Inf", cv)
	}
	// Known case: mean 5, sd 2 -> 0.4.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if cv := CV(xs); math.Abs(cv-0.4) > 1e-12 {
		t.Errorf("CV = %v, want 0.4", cv)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {110, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotModifyInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile sorted the caller's slice")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	// Property: percentiles are monotone in p and bounded by min/max.
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return Percentile(xs, 0) == sorted[0] && Percentile(xs, 100) == sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{0.1, 0.5, 1.0, 2.0}
	if got := FractionBelow(xs, 1.0); got != 0.5 {
		t.Errorf("FractionBelow = %v, want 0.5", got)
	}
	if got := FractionBelow(nil, 1); got != 0 {
		t.Errorf("empty FractionBelow = %v, want 0", got)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	s := Summarize(xs)
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("Summary count/min/max wrong: %+v", s)
	}
	if math.Abs(s.P50-50.5) > 1e-9 {
		t.Errorf("P50 = %v, want 50.5", s.P50)
	}
	if s.P99 < 98 || s.P99 > 100 {
		t.Errorf("P99 = %v, out of range", s.P99)
	}
	if (Summary{}) != Summarize(nil) {
		t.Error("empty Summarize should be zero value")
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	cdf := CDF(xs)
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {3, 1.0}}
	if len(cdf) != len(want) {
		t.Fatalf("CDF has %d points, want %d", len(cdf), len(want))
	}
	for i := range want {
		if cdf[i] != want[i] {
			t.Errorf("cdf[%d] = %+v, want %+v", i, cdf[i], want[i])
		}
	}
	if CDF(nil) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := CDFAt(xs, 2.5); got != 0.5 {
		t.Errorf("CDFAt(2.5) = %v, want 0.5", got)
	}
	if got := CDFAt(xs, 0); got != 0 {
		t.Errorf("CDFAt(0) = %v, want 0", got)
	}
	if got := CDFAt(xs, 10); got != 1 {
		t.Errorf("CDFAt(10) = %v, want 1", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 0.5, 1.5, 2.5, 9.5, 100, -7}, 10, 0, 10)
	if h.Total != 7 {
		t.Fatalf("Total = %d, want 7", h.Total)
	}
	// -7 clamps to bin 0, 100 clamps to bin 9.
	if h.Counts[0] != 3 { // 0, 0.5, -7
		t.Errorf("bin0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[9] != 2 { // 9.5, 100
		t.Errorf("bin9 = %d, want 2", h.Counts[9])
	}
	if f := h.Fraction(0); math.Abs(f-3.0/7) > 1e-12 {
		t.Errorf("Fraction(0) = %v", f)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 3}, 0, 5, 5) // nbins<=0 and min==max
	if h.Total != 3 || len(h.Counts) != 1 || h.Counts[0] != 3 {
		t.Errorf("degenerate histogram misbehaved: %+v", h)
	}
	var empty Histogram
	empty.Counts = []int{0}
	if empty.Fraction(0) != 0 {
		t.Error("empty histogram Fraction should be 0")
	}
}

func TestOnlineStatsMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 1000)
	var o OnlineStats
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		o.Add(xs[i])
	}
	if o.Count() != 1000 {
		t.Errorf("Count = %d", o.Count())
	}
	if math.Abs(o.Mean()-Mean(xs)) > 1e-9 {
		t.Errorf("online mean %v != batch %v", o.Mean(), Mean(xs))
	}
	if math.Abs(o.Variance()-Variance(xs)) > 1e-9 {
		t.Errorf("online variance %v != batch %v", o.Variance(), Variance(xs))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if o.Min() != sorted[0] || o.Max() != sorted[len(sorted)-1] {
		t.Error("online min/max mismatch")
	}
}

func TestOnlineStatsEmpty(t *testing.T) {
	var o OnlineStats
	if o.Count() != 0 || o.Mean() != 0 || o.Variance() != 0 || o.Min() != 0 || o.Max() != 0 {
		t.Error("zero-value OnlineStats should report zeros")
	}
}

func BenchmarkSummarize10k(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Summarize(xs)
	}
}
