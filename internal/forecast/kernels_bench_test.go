package forecast

import (
	"fmt"
	"testing"
)

// BenchmarkForecastKernels measures the ForecastInto fast path for every
// forecaster in the default set at three window lengths (10/60/600 — the
// floor-window, paper block-window, and long-history regimes; 600 also
// forces the FFT Bluestein path). CI's bench-smoke step runs this at
// -benchtime=1x; the EXPERIMENTS.md delta table compares it against
// BenchmarkForecasters (the allocating wrapper) on the reference box.
func BenchmarkForecastKernels(b *testing.B) {
	for _, window := range []int{10, 60, 600} {
		hist := allocHistory(window)
		for _, fc := range DefaultSet() {
			into := fc.(IntoForecaster)
			b.Run(fmt.Sprintf("%s/window=%d", fc.Name(), window), func(b *testing.B) {
				const horizon = 1
				ws := NewWorkspace()
				dst := make([]float64, horizon)
				into.ForecastInto(hist, horizon, dst, ws)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					into.ForecastInto(hist, horizon, dst, ws)
				}
			})
		}
	}
}
