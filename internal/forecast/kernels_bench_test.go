package forecast

import (
	"fmt"
	"testing"
)

// BenchmarkForecastKernels measures the ForecastInto fast path for every
// forecaster in the default set at three window lengths (10/60/600 — the
// floor-window, paper block-window, and long-history regimes; 600 also
// forces the FFT Bluestein path). CI's bench-smoke step runs this at
// -benchtime=1x; the EXPERIMENTS.md delta table compares it against
// BenchmarkForecasters (the allocating wrapper) on the reference box.
func BenchmarkForecastKernels(b *testing.B) {
	for _, window := range []int{10, 60, 600} {
		hist := allocHistory(window)
		for _, fc := range DefaultSet() {
			into := fc.(IntoForecaster)
			b.Run(fmt.Sprintf("%s/window=%d", fc.Name(), window), func(b *testing.B) {
				const horizon = 1
				ws := NewWorkspace()
				dst := make([]float64, horizon)
				into.ForecastInto(hist, horizon, dst, ws)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					into.ForecastInto(hist, horizon, dst, ws)
				}
			})
		}
	}
}

// BenchmarkForecastQuantiles measures the quantile fast path at the
// same window regimes as BenchmarkForecastKernels, with the five-level
// request the serving path issues. Runs under CI's bench-smoke at
// -benchtime=1x; the in-loop AllocsPerRun assertion turns any steady-
// state allocation regression into a hard failure there, not just a
// number drift on the reference box.
func BenchmarkForecastQuantiles(b *testing.B) {
	levels := []float64{0.25, 0.5, 0.9, 0.95, 0.99}
	for _, window := range []int{10, 60, 600} {
		hist := allocHistory(window)
		for _, fc := range DefaultSet() {
			qf := fc.(QuantileForecaster)
			b.Run(fmt.Sprintf("%s/window=%d", fc.Name(), window), func(b *testing.B) {
				const horizon = 1
				ws := NewWorkspace()
				dst := make([]float64, len(levels)*horizon)
				qf.ForecastQuantilesInto(hist, horizon, levels, dst, ws)
				qf.ForecastQuantilesInto(hist, horizon, levels, dst, ws)
				if allocs := testing.AllocsPerRun(10, func() {
					qf.ForecastQuantilesInto(hist, horizon, levels, dst, ws)
				}); allocs != 0 {
					b.Fatalf("%s window=%d: %v allocs/op at steady state, want 0",
						fc.Name(), window, allocs)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					qf.ForecastQuantilesInto(hist, horizon, levels, dst, ws)
				}
			})
		}
	}
}
