package forecast

import (
	"sync"

	"github.com/ubc-cirrus-lab/femux-go/internal/mathx"
)

// Workspace holds every scratch buffer the ForecastInto kernels need:
// cached FFT plans keyed by window length, pooled least-squares matrices
// for AR/SETAR, the smoothing grid-search state, and the Markov chain
// buffers. One workspace serves every forecaster; buffers are grown
// lazily and reused across calls, so a warmed workspace makes every
// forecast allocation-free (alloc_test.go asserts this).
//
// A Workspace is NOT safe for concurrent use. Callers that forecast from
// multiple goroutines must use one workspace per goroutine — the
// simulators create one per simulation, and femuxd keeps one per served
// app under the app lock. The zero value is ready to use.
type Workspace struct {
	fft mathx.FFTScratch

	// Rolling prediction-feedback buffer (AR/SETAR roll forecasts back in
	// as lagged inputs).
	buf []float64

	// Least-squares state: normal equations, solver working copy,
	// right-hand side, the materialized design row being accumulated, and
	// the per-regime coefficient store for SETAR.
	xtx, xm, xty, sol []float64
	drow              []float64
	coef              []float64
	fitOK             []bool

	// Quantile state shared by SETAR thresholds and Markov discretization.
	sorted []float64
	thr    []float64
	rowIdx []int
	rowOff []int

	// Markov chain state.
	trans, dist, next       []float64
	sums, counts, centroids []float64
	bounds                  []float64

	// Smoothing grid-search chains (one entry per grid point, so the
	// per-alpha recurrences run interleaved with unchanged per-chain
	// arithmetic).
	levels, trends, sses []float64
	ga, gab              []float64

	// Quantile scratch: point trajectory, per-step scale, per-level
	// z-scores, level/centroid order, and the in-sample reconstruction
	// buffer used for residual estimates (quantile.go).
	qpt, qsig, qz, qres []float64
	qord                []int

	// Caller-facing destination buffer, handed out by Out, and the
	// reusable levels list handed out by Levels.
	out     []float64
	qlevels []float64
}

// NewWorkspace returns an empty workspace; buffers are grown on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// wsPool recycles workspaces process-wide, so the derived state that
// depends only on geometry — FFT twiddle tables and Bluestein
// chirp/filter spectra per window length — amortizes across users: sim
// sweeps, and femuxd's hot-app tier, where an evicted app returns its
// workspace here and a newly-hot app picks a warmed one up instead of
// re-planning. Results are unaffected: workspaces carry no cross-call
// state, only scratch capacity and per-length plans (reuse equivalence
// is pinned by the workspace-reuse tests).
var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

// GetWorkspace takes a (possibly warmed) workspace from the shared pool.
func GetWorkspace() *Workspace { return wsPool.Get().(*Workspace) }

// PutWorkspace returns a workspace to the shared pool. The caller must
// not use it afterwards.
func PutWorkspace(ws *Workspace) {
	if ws != nil {
		wsPool.Put(ws)
	}
}

// Out returns a length-n destination slice backed by the workspace, for
// callers that would otherwise allocate a fresh forecast slice per call.
// The returned slice is overwritten by the next Out call; copy it if it
// must outlive the next forecast. A nil receiver allocates.
func (ws *Workspace) Out(n int) []float64 {
	if ws == nil {
		return make([]float64, n)
	}
	if cap(ws.out) < n {
		ws.out = make([]float64, n)
	}
	ws.out = ws.out[:n]
	return ws.out
}

// Levels returns a length-n levels slice backed by the workspace, for
// callers assembling per-call quantile-level lists without allocating
// (the single-level pod-conversion path builds []float64{level} here).
// Overwritten by the next Levels call; a nil receiver allocates.
func (ws *Workspace) Levels(n int) []float64 {
	if ws == nil {
		return make([]float64, n)
	}
	if cap(ws.qlevels) < n {
		ws.qlevels = make([]float64, n)
	}
	ws.qlevels = ws.qlevels[:n]
	return ws.qlevels
}

// IntoForecaster is the zero-allocation fast path implemented by every
// built-in forecaster: forecast into dst (reused when cap(dst) >= horizon)
// using ws for all intermediate state. dst and ws may be nil, in which
// case the call allocates like plain Forecast. The returned slice holds
// the forecast and aliases dst when it had capacity.
//
// ForecastInto is bit-identical to Forecast for the same inputs
// (ref_equiv_test.go asserts Float64bits equality), so cached results and
// trained models are unaffected by which path produced a forecast.
type IntoForecaster interface {
	Forecaster
	ForecastInto(history []float64, horizon int, dst []float64, ws *Workspace) []float64
}

// Into invokes fc's workspace fast path when it has one, falling back to
// the allocating Forecast otherwise. It is the single call site helper
// used by the simulators and the serving path.
func Into(fc Forecaster, history []float64, horizon int, dst []float64, ws *Workspace) []float64 {
	if f, ok := fc.(IntoForecaster); ok {
		return f.ForecastInto(history, horizon, dst, ws)
	}
	return fc.Forecast(history, horizon)
}

// ensureDst returns dst resized to n, reusing its backing array when it
// has capacity. Kernels overwrite every element, so stale content is fine.
func ensureDst(dst []float64, n int) []float64 {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]float64, n)
}

// growF resizes a float scratch slice without zeroing (callers overwrite).
func growF(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

// growZeroF resizes a float scratch slice and zeroes it.
func growZeroF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// growI resizes an int scratch slice without zeroing.
func growI(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

// growBool resizes a bool scratch slice without zeroing.
func growBool(s []bool, n int) []bool {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]bool, n)
}

// growBuf returns a rolling buffer primed with history and capacity for
// extra appended predictions, reusing the workspace backing array.
func growBuf(buf, history []float64, extra int) []float64 {
	need := len(history) + extra
	if cap(buf) < need {
		buf = make([]float64, 0, need)
	}
	buf = buf[:len(history)]
	copy(buf, history)
	return buf
}

// constantInto fills dst with v clamped at 0, the in-place form of the
// old constant helper (the clamp is folded into the single write pass).
func constantInto(dst []float64, v float64) {
	if v < 0 || v != v {
		v = 0
	}
	for i := range dst {
		dst[i] = v
	}
}

// zeroInto fills dst with zeros.
func zeroInto(dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
}
