package forecast

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// allocHistory builds a noisy but non-degenerate window of the given
// length so every kernel takes its full code path (thresholds exist,
// fits succeed, the FFT runs).
func allocHistory(n int) []float64 {
	rng := rand.New(rand.NewSource(int64(n)))
	h := make([]float64, n)
	for i := range h {
		h[i] = math.Max(0, 4+3*math.Sin(2*math.Pi*float64(i)/12)+rng.NormFloat64())
	}
	return h
}

// TestForecastIntoZeroAlloc asserts the satellite guarantee: after a
// warm-up call has grown the workspace (and cached the FFT plan for the
// window length), every ForecastInto implementation performs zero heap
// allocations. Window 600 is not a power of two, so the FFT forecaster's
// Bluestein path is covered too.
func TestForecastIntoZeroAlloc(t *testing.T) {
	set := append(DefaultSet(), NewMovingAverage(60), Naive{}, Zero{})
	for _, window := range []int{10, 64, 600} {
		hist := allocHistory(window)
		for _, fc := range set {
			into, ok := fc.(IntoForecaster)
			if !ok {
				t.Fatalf("%s does not implement IntoForecaster", fc.Name())
			}
			t.Run(fmt.Sprintf("%s/window=%d", fc.Name(), window), func(t *testing.T) {
				const horizon = 5
				ws := NewWorkspace()
				dst := make([]float64, horizon)
				// Warm up: grow buffers, build FFT plans.
				into.ForecastInto(hist, horizon, dst, ws)
				into.ForecastInto(hist, horizon, dst, ws)
				allocs := testing.AllocsPerRun(20, func() {
					into.ForecastInto(hist, horizon, dst, ws)
				})
				if allocs != 0 {
					t.Fatalf("%s window=%d: %v allocs/op at steady state, want 0",
						fc.Name(), window, allocs)
				}
			})
		}
	}
}

// TestForecastIntoZeroAllocDegenerate covers the fallback paths (short
// history, constant history) — they must be allocation-free too, since
// real fleets are full of idle apps that hit exactly these branches.
func TestForecastIntoZeroAllocDegenerate(t *testing.T) {
	short := []float64{1, 2}
	constant := make([]float64, 60)
	for i := range constant {
		constant[i] = 3
	}
	for _, fc := range DefaultSet() {
		into := fc.(IntoForecaster)
		for name, hist := range map[string][]float64{"short": short, "constant": constant} {
			t.Run(fc.Name()+"/"+name, func(t *testing.T) {
				const horizon = 3
				ws := NewWorkspace()
				dst := make([]float64, horizon)
				into.ForecastInto(hist, horizon, dst, ws)
				into.ForecastInto(hist, horizon, dst, ws)
				allocs := testing.AllocsPerRun(20, func() {
					into.ForecastInto(hist, horizon, dst, ws)
				})
				if allocs != 0 {
					t.Fatalf("%s/%s: %v allocs/op at steady state, want 0", fc.Name(), name, allocs)
				}
			})
		}
	}
}

// TestForecastQuantilesIntoZeroAlloc extends the zero-allocation pin to
// the quantile path: after warm-up, every ForecastQuantilesInto runs
// without touching the heap, across the same window regimes as the
// point-path test (600 covers the FFT Bluestein plan) and a five-level
// request like the /v1/forecast serving path issues.
func TestForecastQuantilesIntoZeroAlloc(t *testing.T) {
	levels := []float64{0.25, 0.5, 0.9, 0.95, 0.99}
	set := append(DefaultSet(), NewMovingAverage(60), Naive{}, Zero{})
	for _, window := range []int{10, 64, 600} {
		hist := allocHistory(window)
		for _, fc := range set {
			qf, ok := fc.(QuantileForecaster)
			if !ok {
				t.Fatalf("%s does not implement QuantileForecaster", fc.Name())
			}
			t.Run(fmt.Sprintf("%s/window=%d", fc.Name(), window), func(t *testing.T) {
				const horizon = 5
				ws := NewWorkspace()
				dst := make([]float64, len(levels)*horizon)
				qf.ForecastQuantilesInto(hist, horizon, levels, dst, ws)
				qf.ForecastQuantilesInto(hist, horizon, levels, dst, ws)
				allocs := testing.AllocsPerRun(20, func() {
					qf.ForecastQuantilesInto(hist, horizon, levels, dst, ws)
				})
				if allocs != 0 {
					t.Fatalf("%s window=%d: %v allocs/op at steady state, want 0",
						fc.Name(), window, allocs)
				}
			})
		}
	}
}

// TestForecastQuantilesIntoZeroAllocDegenerate pins the quantile
// fallback paths (short and constant histories) to zero allocations —
// sparse fleets spend most of their calls exactly there.
func TestForecastQuantilesIntoZeroAllocDegenerate(t *testing.T) {
	levels := []float64{0.5, 0.95}
	short := []float64{1, 2}
	constant := make([]float64, 60)
	for i := range constant {
		constant[i] = 3
	}
	for _, fc := range DefaultSet() {
		qf := fc.(QuantileForecaster)
		for name, hist := range map[string][]float64{"short": short, "constant": constant} {
			t.Run(fc.Name()+"/"+name, func(t *testing.T) {
				const horizon = 3
				ws := NewWorkspace()
				dst := make([]float64, len(levels)*horizon)
				qf.ForecastQuantilesInto(hist, horizon, levels, dst, ws)
				qf.ForecastQuantilesInto(hist, horizon, levels, dst, ws)
				allocs := testing.AllocsPerRun(20, func() {
					qf.ForecastQuantilesInto(hist, horizon, levels, dst, ws)
				})
				if allocs != 0 {
					t.Fatalf("%s/%s: %v allocs/op at steady state, want 0", fc.Name(), name, allocs)
				}
			})
		}
	}
}
