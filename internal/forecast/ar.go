package forecast

import (
	"fmt"
	"math"

	"github.com/ubc-cirrus-lab/femux-go/internal/mathx"
)

// AR is an autoregressive forecaster: y_t = c + sum_i phi_i * y_{t-i}.
// AR assumes a stationary, linear series (§4.3.2); the FeMux classifier
// routes such blocks here. Coefficients are refit on every call from the
// supplied history window by least squares, which doubles as a simple form
// of online adaptation.
type AR struct {
	lags int
}

// NewAR returns an AR forecaster with the given number of lags. The paper
// settles on 10 lags after an empirical sweep (§4.3.3).
func NewAR(lags int) *AR {
	if lags < 1 {
		lags = 1
	}
	return &AR{lags: lags}
}

// Name implements Forecaster.
func (a *AR) Name() string { return fmt.Sprintf("ar%d", a.lags) }

// Forecast implements Forecaster.
func (a *AR) Forecast(history []float64, horizon int) []float64 {
	return a.ForecastInto(history, horizon, nil, nil)
}

// ForecastInto implements IntoForecaster.
func (a *AR) ForecastInto(history []float64, horizon int, dst []float64, ws *Workspace) []float64 {
	return arForecastInto(history, horizon, a.lags, dst, ws)
}

// ForecastQuantilesInto implements QuantileForecaster: a Gaussian band
// around the point trajectory, scaled by the in-sample one-step residual
// standard deviation of the fitted model (a byproduct of the normal
// equations already in the workspace) and widened by sqrt(t+1) as the
// rolled-forward forecast compounds its own errors.
func (a *AR) ForecastQuantilesInto(history []float64, horizon int, levels, dst []float64, ws *Workspace) []float64 {
	return arQuantilesInto(history, horizon, a.lags, levels, dst, ws)
}

// arQuantilesInto is the AR quantile fast path, shared with SETAR's
// degenerate-history fallback.
func arQuantilesInto(history []float64, horizon, lags int, levels, dst []float64, ws *Workspace) []float64 {
	if horizon <= 0 || len(levels) == 0 {
		return nil
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	dst = ensureDst(dst, len(levels)*horizon)
	coef, ok := fitARWS(history, lags, ws)
	if !ok {
		// Same fallback as the point path (constant mean), spread by the
		// window's own standard deviation.
		fillConstQuantilesWS(dst, mean(history), histStd(history), levels, horizon, ws)
		return dst
	}
	sigma := arResidualStd(history, coef, lags, ws)
	qpt := ws.qPoint(horizon)
	predictARInto(history, coef, lags, qpt, ws)
	sig := ws.qSig(horizon)
	for t := range sig {
		sig[t] = sigma * math.Sqrt(float64(t+1))
	}
	fillQuantilesWS(dst, qpt, sig, levels, horizon, ws)
	return dst
}

// arResidualStd is the in-sample one-step residual standard deviation of
// a fitted AR model over its training rows, with a degrees-of-freedom
// correction for the fitted coefficients. coef aliases solver scratch;
// this only re-materializes design rows (ws.drow), which the solver no
// longer needs.
func arResidualStd(history, coef []float64, lags int, ws *Workspace) float64 {
	rows := len(history) - lags
	if rows <= 0 {
		return 0
	}
	cols := lags + 1
	row := growF(ws.drow, cols)
	ws.drow = row
	var sse float64
	for r := 0; r < rows; r++ {
		arDesignRow(history, r, lags, row)
		var pred float64
		for j, c := range coef {
			pred += c * row[j]
		}
		e := history[r+lags] - pred
		sse += e * e
	}
	denom := rows - cols
	if denom < 1 {
		denom = 1
	}
	return guardSigma(math.Sqrt(sse / float64(denom)))
}

// arForecastInto is the AR fast path, shared with SETAR's fallback.
func arForecastInto(history []float64, horizon, lags int, dst []float64, ws *Workspace) []float64 {
	if horizon <= 0 {
		return nil
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	dst = ensureDst(dst, horizon)
	coef, ok := fitARWS(history, lags, ws)
	if !ok {
		constantInto(dst, mean(history))
		return dst
	}
	predictARInto(history, coef, lags, dst, ws)
	return dst
}

// arDesignRow materializes training row r of the AR design matrix into
// dst: an intercept column followed by the lagged values, exactly the row
// layout fitAR uses (dst[0] = 1, dst[l] = history[r+lags-l]).
func arDesignRow(history []float64, r, lags int, dst []float64) {
	dst[0] = 1
	for l := 1; l <= lags; l++ {
		dst[l] = history[r+lags-l]
	}
}

// accumulateARRow adds one design row's contribution to the normal
// equations, visiting terms in mathx.LeastSquares' order — i ascending
// with its vi == 0 skip, then the j >= i upper triangle ascending — so
// the accumulated sums are bit-identical to the reference.
func accumulateARRow(xtx, xty, row []float64, y float64, cols int) {
	row = row[:cols]
	for i, vi := range row {
		if vi == 0 {
			continue
		}
		// Equal-length views of the remaining row and the matching xtx
		// stretch eliminate the inner-loop bounds checks; the memory
		// cells and accumulation order are unchanged.
		rr := row[i:]
		rowI := xtx[i*cols+i:]
		rowI = rowI[:len(rr)]
		for j, rv := range rr {
			rowI[j] += vi * rv
		}
		xty[i] += vi * y
	}
}

// fitARWS fits intercept + lag coefficients like fitAR, but accumulates
// the normal equations directly into workspace buffers — one materialized
// design row at a time instead of a full rows×cols matrix — and solves
// them in place. The accumulation visits the same terms in the same order
// as mathx.LeastSquares over fitAR's rows, so the coefficients are
// bit-identical. The returned slice is workspace scratch, invalidated by
// the next fit.
func fitARWS(history []float64, lags int, ws *Workspace) ([]float64, bool) {
	n := len(history)
	rows := n - lags
	// Require a modest margin of observations over parameters.
	if rows < lags+2 {
		return nil, false
	}
	cols := lags + 1
	xtx := growZeroF(ws.xtx, cols*cols)
	ws.xtx = xtx
	xty := growZeroF(ws.xty, cols)
	ws.xty = xty
	row := growF(ws.drow, cols)
	ws.drow = row
	for r := 0; r < rows; r++ {
		arDesignRow(history, r, lags, row)
		accumulateARRow(xtx, xty, row, history[r+lags], cols)
	}
	return solveNormalEquations(xtx, xty, cols, ws)
}

// solveNormalEquations applies the ridge + mirror step of
// mathx.LeastSquares to the accumulated upper triangle and solves the
// system in place in workspace scratch.
func solveNormalEquations(xtx, xty []float64, cols int, ws *Workspace) ([]float64, bool) {
	// Mirror the upper triangle and add ridge.
	const ridge = 1e-9
	for i := 0; i < cols; i++ {
		xtx[i*cols+i] += ridge
		for j := i + 1; j < cols; j++ {
			xtx[j*cols+i] = xtx[i*cols+j]
		}
	}
	m := growF(ws.xm, cols*cols)
	ws.xm = m
	copy(m, xtx)
	sol := growF(ws.sol, cols)
	ws.sol = sol
	copy(sol, xty)
	if err := mathx.SolveLinearFlat(m, sol, cols); err != nil {
		return nil, false
	}
	return sol, true
}

// predictARInto rolls the fitted model forward, feeding predictions back
// in as lagged inputs, using the workspace rolling buffer.
func predictARInto(history, coef []float64, lags int, dst []float64, ws *Workspace) {
	buf := growBuf(ws.buf, history, len(dst))
	for t := range dst {
		v := coef[0]
		for l := 1; l <= lags; l++ {
			idx := len(buf) - l
			if idx >= 0 {
				v += coef[l] * buf[idx]
			}
		}
		if v < 0 || v != v {
			v = 0
		}
		dst[t] = v
		buf = append(buf, v)
	}
	ws.buf = buf[:0]
}
