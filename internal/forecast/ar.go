package forecast

import (
	"fmt"

	"github.com/ubc-cirrus-lab/femux-go/internal/mathx"
)

// AR is an autoregressive forecaster: y_t = c + sum_i phi_i * y_{t-i}.
// AR assumes a stationary, linear series (§4.3.2); the FeMux classifier
// routes such blocks here. Coefficients are refit on every call from the
// supplied history window by least squares, which doubles as a simple form
// of online adaptation.
type AR struct {
	lags int
}

// NewAR returns an AR forecaster with the given number of lags. The paper
// settles on 10 lags after an empirical sweep (§4.3.3).
func NewAR(lags int) *AR {
	if lags < 1 {
		lags = 1
	}
	return &AR{lags: lags}
}

// Name implements Forecaster.
func (a *AR) Name() string { return fmt.Sprintf("ar%d", a.lags) }

// Forecast implements Forecaster.
func (a *AR) Forecast(history []float64, horizon int) []float64 {
	if horizon <= 0 {
		return nil
	}
	coef, ok := fitAR(history, a.lags)
	if !ok {
		return constant(mean(history), horizon)
	}
	return clampNonNegative(predictAR(history, coef, a.lags, horizon))
}

// fitAR fits intercept + lag coefficients by least squares. It returns
// ok=false when the history is too short or the fit fails, in which case
// callers fall back to a mean forecast.
func fitAR(history []float64, lags int) ([]float64, bool) {
	n := len(history)
	rows := n - lags
	// Require a modest margin of observations over parameters.
	if rows < lags+2 {
		return nil, false
	}
	x := make([][]float64, rows)
	y := make([]float64, rows)
	for r := 0; r < rows; r++ {
		row := make([]float64, lags+1)
		row[0] = 1
		for l := 1; l <= lags; l++ {
			row[l] = history[r+lags-l]
		}
		x[r] = row
		y[r] = history[r+lags]
	}
	coef, err := mathx.LeastSquares(x, y)
	if err != nil {
		return nil, false
	}
	return coef, true
}

// predictAR rolls the fitted model forward, feeding predictions back in as
// lagged inputs.
func predictAR(history, coef []float64, lags, horizon int) []float64 {
	buf := append([]float64(nil), history...)
	out := make([]float64, horizon)
	for t := 0; t < horizon; t++ {
		v := coef[0]
		for l := 1; l <= lags; l++ {
			idx := len(buf) - l
			if idx >= 0 {
				v += coef[l] * buf[idx]
			}
		}
		if v < 0 || v != v {
			v = 0
		}
		out[t] = v
		buf = append(buf, v)
	}
	return out
}
