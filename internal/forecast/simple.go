package forecast

import (
	"fmt"
	"math"
)

// MovingAverage forecasts the mean of the last Window values — the data
// path of Knative's default autoscaler, which sizes pods from a 1-minute
// sliding average of concurrency (§3.2). It is the "1-min moving average"
// baseline in Fig 5.
type MovingAverage struct {
	window int
}

// NewMovingAverage returns a moving-average forecaster over the last window
// intervals.
func NewMovingAverage(window int) *MovingAverage {
	if window < 1 {
		window = 1
	}
	return &MovingAverage{window: window}
}

// Name implements Forecaster.
func (m *MovingAverage) Name() string { return fmt.Sprintf("ma%d", m.window) }

// Forecast implements Forecaster.
func (m *MovingAverage) Forecast(history []float64, horizon int) []float64 {
	return m.ForecastInto(history, horizon, nil, nil)
}

// ForecastInto implements IntoForecaster.
func (m *MovingAverage) ForecastInto(history []float64, horizon int, dst []float64, _ *Workspace) []float64 {
	if horizon <= 0 {
		return nil
	}
	dst = ensureDst(dst, horizon)
	w := m.window
	if w > len(history) {
		w = len(history)
	}
	if w == 0 {
		zeroInto(dst)
		return dst
	}
	constantInto(dst, mean(history[len(history)-w:]))
	return dst
}

// RecentPeak forecasts the maximum over the trailing window — the
// keep-alive behaviour expressed as a forecaster. It is the conservative
// member of FeMux's set (Fig 17 lists fixed keep-alive among the
// forecasters): bursty blocks route here, trading memory for cold starts.
type RecentPeak struct {
	window int
}

// NewRecentPeak returns a peak-hold forecaster over the last window
// intervals.
func NewRecentPeak(window int) *RecentPeak {
	if window < 1 {
		window = 1
	}
	return &RecentPeak{window: window}
}

// Name implements Forecaster.
func (r *RecentPeak) Name() string { return fmt.Sprintf("peak%d", r.window) }

// Forecast implements Forecaster.
func (r *RecentPeak) Forecast(history []float64, horizon int) []float64 {
	return r.ForecastInto(history, horizon, nil, nil)
}

// ForecastInto implements IntoForecaster.
func (r *RecentPeak) ForecastInto(history []float64, horizon int, dst []float64, _ *Workspace) []float64 {
	if horizon <= 0 {
		return nil
	}
	dst = ensureDst(dst, horizon)
	w := r.window
	if w > len(history) {
		w = len(history)
	}
	peak := 0.0
	for _, v := range history[len(history)-w:] {
		if v > peak {
			peak = v
		}
	}
	constantInto(dst, peak)
	return dst
}

// CeilPeak forecasts the ceiling of the trailing-window peak: whenever the
// window saw any traffic at all, it predicts at least one full unit of
// concurrency. This is the keep-warm forecaster for trickle traffic —
// applications whose average concurrency is a small fraction (a few short
// requests per minute) but whose requests arrive every minute. Fractional
// forecasts for such apps scale to zero and incur a cold start per minute;
// CeilPeak keeps one unit warm, which the default RUM's exchange rate
// (≈99.7 GB-s per cold-start second) strongly favours. Single-forecaster
// baselines lack this option; FeMux's classifier routes trickle blocks
// here via the density feature.
type CeilPeak struct {
	window int
}

// NewCeilPeak returns a keep-warm forecaster over the last window
// intervals.
func NewCeilPeak(window int) *CeilPeak {
	if window < 1 {
		window = 1
	}
	return &CeilPeak{window: window}
}

// Name implements Forecaster.
func (c *CeilPeak) Name() string { return fmt.Sprintf("warm%d", c.window) }

// Forecast implements Forecaster.
func (c *CeilPeak) Forecast(history []float64, horizon int) []float64 {
	return c.ForecastInto(history, horizon, nil, nil)
}

// ForecastInto implements IntoForecaster.
func (c *CeilPeak) ForecastInto(history []float64, horizon int, dst []float64, _ *Workspace) []float64 {
	if horizon <= 0 {
		return nil
	}
	dst = ensureDst(dst, horizon)
	w := c.window
	if w > len(history) {
		w = len(history)
	}
	peak := 0.0
	for _, v := range history[len(history)-w:] {
		if v > peak {
			peak = v
		}
	}
	if peak > 0 {
		peak = math.Ceil(peak)
	}
	constantInto(dst, peak)
	return dst
}

// Naive forecasts the most recent observation for every future interval.
type Naive struct{}

// Name implements Forecaster.
func (Naive) Name() string { return "naive" }

// Forecast implements Forecaster.
func (Naive) Forecast(history []float64, horizon int) []float64 {
	return Naive{}.ForecastInto(history, horizon, nil, nil)
}

// ForecastInto implements IntoForecaster.
func (Naive) ForecastInto(history []float64, horizon int, dst []float64, _ *Workspace) []float64 {
	if horizon <= 0 {
		return nil
	}
	dst = ensureDst(dst, horizon)
	if len(history) == 0 {
		zeroInto(dst)
		return dst
	}
	constantInto(dst, history[len(history)-1])
	return dst
}

// Zero always forecasts zero — the scale-to-zero extreme, useful as a floor
// in comparisons (anything that loses to Zero is wasting resources for no
// cold-start benefit).
type Zero struct{}

// Name implements Forecaster.
func (Zero) Name() string { return "zero" }

// Forecast implements Forecaster.
func (Zero) Forecast(history []float64, horizon int) []float64 {
	return Zero{}.ForecastInto(history, horizon, nil, nil)
}

// ForecastInto implements IntoForecaster.
func (Zero) ForecastInto(_ []float64, horizon int, dst []float64, _ *Workspace) []float64 {
	if horizon <= 0 {
		return nil
	}
	dst = ensureDst(dst, horizon)
	zeroInto(dst)
	return dst
}

// The keep-alive family's quantile forecasts come straight from the
// demand distribution, not from a model's error band. A peak-hold is
// the limit of "provision for fraction q of recent intervals" as q->1,
// so its level-q forecast is the empirical q-quantile of the trailing
// window: p99 reproduces the conservative envelope, p50 holds only
// median demand. This is what turns the keep-alive end of FeMux's set
// into a frontier instead of a single operating point — exactly the
// knob Fig 9 sweeps by varying keep-alive minutes, but swept by
// coverage instead of by timeout. The moving average (Knative's data
// path) instead carries a Gaussian band from the window's dispersion,
// since its point forecast is a central estimate. Naive and Zero stay
// point masses: a last-value hold and the scale-to-zero floor have no
// distribution to draw from.

// ForecastQuantilesInto implements QuantileForecaster: Gaussian band
// around the window mean with the window's own standard deviation as
// sigma ("provision for the p-th percentile of demand, assuming the
// window is representative"). Level 0.5 is bitwise the point forecast.
func (m *MovingAverage) ForecastQuantilesInto(history []float64, horizon int, levels, dst []float64, ws *Workspace) []float64 {
	if horizon <= 0 || len(levels) == 0 {
		return nil
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	dst = ensureDst(dst, len(levels)*horizon)
	w := m.window
	if w > len(history) {
		w = len(history)
	}
	if w == 0 {
		fillConstQuantilesWS(dst, 0, 0, levels, horizon, ws)
		return dst
	}
	win := history[len(history)-w:]
	fillConstQuantilesWS(dst, mean(win), histStd(win), levels, horizon, ws)
	return dst
}

// ForecastQuantilesInto implements QuantileForecaster: the empirical
// level-quantile of the trailing window. Levels at or above (n-1)/n
// reproduce the point forecast (the window max).
func (r *RecentPeak) ForecastQuantilesInto(history []float64, horizon int, levels, dst []float64, ws *Workspace) []float64 {
	return windowQuantilesInto(history, horizon, r.window, levels, dst, ws, false)
}

// ForecastQuantilesInto implements QuantileForecaster: the empirical
// level-quantile of the trailing window with CeilPeak's keep-warm
// rounding applied, so any level that covers a nonzero-demand interval
// still provisions at least one full unit.
func (c *CeilPeak) ForecastQuantilesInto(history []float64, horizon int, levels, dst []float64, ws *Workspace) []float64 {
	return windowQuantilesInto(history, horizon, c.window, levels, dst, ws, true)
}

// ForecastQuantilesInto implements QuantileForecaster.
func (n Naive) ForecastQuantilesInto(history []float64, horizon int, levels, dst []float64, ws *Workspace) []float64 {
	return pointMassQuantilesInto(n, history, horizon, levels, dst, ws)
}

// ForecastQuantilesInto implements QuantileForecaster.
func (z Zero) ForecastQuantilesInto(history []float64, horizon int, levels, dst []float64, ws *Workspace) []float64 {
	return pointMassQuantilesInto(z, history, horizon, levels, dst, ws)
}
