package forecast

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Property tests for the quantile layer: every forecaster, randomized
// and adversarial histories, well-formed and degenerate level sets. The
// pinned invariants are the ones the pod-conversion policy relies on
// (quantile.go's header): monotone in level, finite, clamped
// non-negative, deterministic to the bit, and p50 == point for the
// Gaussian-band forecasters.

// quantileSet returns every built-in forecaster (all implement
// QuantileForecaster).
func quantileSet() []QuantileForecaster {
	set := append(DefaultSet(), NewMovingAverage(60), Naive{}, Zero{})
	out := make([]QuantileForecaster, len(set))
	for i, fc := range set {
		qf, ok := fc.(QuantileForecaster)
		if !ok {
			panic(fc.Name() + " does not implement QuantileForecaster")
		}
		out[i] = qf
	}
	return out
}

// gaussianBand reports whether the forecaster's 0.5 level is defined to
// be bit-identical to its point forecast. The Markov chain's point
// forecast is an expected value (not a median) and the peak/keep-warm
// envelopes' point forecast is a max, so those are exempt.
func gaussianBand(name string) bool {
	switch {
	case len(name) >= 4 && name[:4] == "peak":
		return false
	case len(name) >= 4 && name[:4] == "warm":
		return false
	case len(name) >= 6 && name[:6] == "markov":
		return false
	}
	return true
}

// propHistories builds the adversarial history menu: random noisy,
// NaN-gapped, constant, heavy-tailed, bursty-sparse, short, and empty.
func propHistories(rng *rand.Rand, n int) map[string][]float64 {
	noisy := make([]float64, n)
	for i := range noisy {
		noisy[i] = math.Max(0, 3+2*math.Sin(float64(i)/7)+rng.NormFloat64())
	}
	gapped := make([]float64, n)
	copy(gapped, noisy)
	for i := 3; i < n; i += 7 {
		gapped[i] = math.NaN()
	}
	constant := make([]float64, n)
	for i := range constant {
		constant[i] = 2.5
	}
	heavy := make([]float64, n)
	for i := range heavy {
		heavy[i] = math.Exp(2 * rng.NormFloat64()) // lognormal: occasional huge spikes
	}
	bursty := make([]float64, n)
	for i := range bursty {
		if rng.Float64() < 0.06 {
			bursty[i] = 1 + 9*rng.Float64()
		}
	}
	return map[string][]float64{
		"noisy":    noisy,
		"nan-gaps": gapped,
		"constant": constant,
		"heavy":    heavy,
		"bursty":   bursty,
		"short":    {1.5, 0.5},
		"empty":    {},
	}
}

var propLevelSets = map[string][]float64{
	"sorted":     {0.5, 0.75, 0.9, 0.95, 0.99},
	"unsorted":   {0.9, 0.5, 0.99, 0.5, 0.75},
	"degenerate": {0, 0.5, 1},
	"single":     {0.95},
}

// checkQuantileCurves asserts the structural invariants on one flat
// level-major result.
func checkQuantileCurves(t *testing.T, name string, levels, flat []float64, horizon int) {
	t.Helper()
	if len(flat) != len(levels)*horizon {
		t.Fatalf("%s: got %d values, want %d", name, len(flat), len(levels)*horizon)
	}
	for i, v := range flat {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s: value[%d] = %v, want finite", name, i, v)
		}
		if v < 0 {
			t.Fatalf("%s: value[%d] = %v, want >= 0", name, i, v)
		}
	}
	// Monotone: for every comparable (non-NaN) level pair p <= p', the
	// p-curve never exceeds the p'-curve at any step — regardless of the
	// order levels were requested in.
	for a := range levels {
		for b := range levels {
			if math.IsNaN(levels[a]) || math.IsNaN(levels[b]) || levels[a] > levels[b] {
				continue
			}
			for s := 0; s < horizon; s++ {
				lo, hi := flat[a*horizon+s], flat[b*horizon+s]
				if lo > hi {
					t.Fatalf("%s: curves cross at step %d: p%g=%v > p%g=%v",
						name, s, levels[a]*100, lo, levels[b]*100, hi)
				}
			}
		}
	}
}

// TestForecastQuantilesProperties sweeps every forecaster across the
// history menu and level sets, asserting the structural invariants plus
// bitwise determinism across repeated calls and across fresh-vs-pooled
// workspaces.
func TestForecastQuantilesProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	hists := propHistories(rng, 120)
	const horizon = 4
	for _, qf := range quantileSet() {
		for hn, hist := range hists {
			for ln, levels := range propLevelSets {
				t.Run(fmt.Sprintf("%s/%s/%s", qf.Name(), hn, ln), func(t *testing.T) {
					ws := NewWorkspace()
					first := append([]float64(nil),
						qf.ForecastQuantilesInto(hist, horizon, levels, nil, ws)...)
					checkQuantileCurves(t, qf.Name(), levels, first, horizon)

					// Same workspace again: bit-identical.
					again := qf.ForecastQuantilesInto(hist, horizon, levels, nil, ws)
					for i := range first {
						if math.Float64bits(first[i]) != math.Float64bits(again[i]) {
							t.Fatalf("repeat call diverged at %d: %v vs %v", i, first[i], again[i])
						}
					}

					// Fresh workspace and allocating wrapper: bit-identical.
					rows := ForecastQuantiles(qf, hist, horizon, levels)
					for q := range levels {
						for s := 0; s < horizon; s++ {
							a, b := first[q*horizon+s], rows[q][s]
							if math.Float64bits(a) != math.Float64bits(b) {
								t.Fatalf("fresh workspace diverged at [%d][%d]: %v vs %v", q, s, a, b)
							}
						}
					}
				})
			}
		}
	}
}

// TestQuantileP50MatchesPoint pins the Gaussian-band contract: the 0.5
// level is bit-identical to the point forecast, because z(0.5) is
// exactly zero and the quantile path builds its point curve with the
// same operations and clamps as ForecastInto.
func TestQuantileP50MatchesPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	hists := propHistories(rng, 120)
	const horizon = 4
	levels := []float64{0.5}
	for _, qf := range quantileSet() {
		if !gaussianBand(qf.Name()) {
			continue
		}
		for hn, hist := range hists {
			if hn == "nan-gaps" {
				// NaN histories can make the point forecast NaN; the
				// quantile path clamps NaN to 0 by contract, so bitwise
				// equality is only promised on finite histories.
				continue
			}
			t.Run(qf.Name()+"/"+hn, func(t *testing.T) {
				ws := NewWorkspace()
				point := append([]float64(nil), Into(qf, hist, horizon, nil, ws)...)
				q50 := qf.ForecastQuantilesInto(hist, horizon, levels, nil, ws)
				for s := 0; s < horizon; s++ {
					if math.Float64bits(point[s]) != math.Float64bits(q50[s]) {
						t.Fatalf("p50 != point at step %d: %v vs %v", s, q50[s], point[s])
					}
				}
			})
		}
	}
}

// TestQuantileDoesNotPerturbPointPath interleaves quantile and point
// calls on one shared workspace: the quantile path borrows the same
// scratch pools, so it must leave the point kernels' results untouched
// (workspace-pollution check).
func TestQuantileDoesNotPerturbPointPath(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	hists := propHistories(rng, 120)
	const horizon = 3
	levels := []float64{0.5, 0.9, 0.99}
	for _, qf := range quantileSet() {
		for hn, hist := range hists {
			t.Run(qf.Name()+"/"+hn, func(t *testing.T) {
				clean := NewWorkspace()
				want := append([]float64(nil), Into(qf, hist, horizon, nil, clean)...)

				shared := NewWorkspace()
				qf.ForecastQuantilesInto(hist, horizon, levels, nil, shared)
				got := Into(qf, hist, horizon, nil, shared)
				for s := range want {
					if math.Float64bits(want[s]) != math.Float64bits(got[s]) {
						t.Fatalf("point forecast after quantile call diverged at %d: %v vs %v",
							s, got[s], want[s])
					}
				}
			})
		}
	}
}

// TestEnvelopeQuantileSemantics pins the keep-alive family's empirical
// contract: high levels reproduce the envelope (the point forecast) and
// the lowest level is the window minimum (with keep-warm rounding for
// CeilPeak).
func TestEnvelopeQuantileSemantics(t *testing.T) {
	hist := []float64{0.2, 3, 1, 0.5, 2, 0.8, 1.5, 0.4, 2.5, 0.9}
	const horizon = 2
	for _, fc := range []QuantileForecaster{NewRecentPeak(10), NewCeilPeak(10)} {
		point := Into(fc, hist, horizon, nil, nil)
		flat := fc.ForecastQuantilesInto(hist, horizon, []float64{0.05, 0.999}, nil, nil)
		for s := 0; s < horizon; s++ {
			if flat[horizon+s] != point[s] {
				t.Fatalf("%s: p99.9[%d] = %v, want envelope %v", fc.Name(), s, flat[horizon+s], point[s])
			}
		}
		wantLow := 0.2
		if fc.Name() == "warm10" {
			wantLow = 1 // ceil of the min
		}
		if flat[0] != wantLow {
			t.Fatalf("%s: p5 = %v, want window min %v", fc.Name(), flat[0], wantLow)
		}
	}
}
