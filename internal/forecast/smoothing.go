package forecast

import "math"

// ExpSmoothing is single exponential smoothing with dynamic parameter
// selection: the smoothing factor alpha is chosen per call by minimizing the
// one-step-ahead squared error over the history window (§4.3.3 notes ES and
// Holt have "dynamic parameter selection"). ES tracks general trends in
// dense traffic without assuming structure.
type ExpSmoothing struct {
	grid []float64
}

// NewExpSmoothing returns an exponential smoothing forecaster.
func NewExpSmoothing() *ExpSmoothing {
	return &ExpSmoothing{grid: alphaGrid()}
}

func alphaGrid() []float64 {
	g := make([]float64, 0, 19)
	for a := 0.05; a < 1.0; a += 0.05 {
		g = append(g, a)
	}
	return g
}

// Name implements Forecaster.
func (e *ExpSmoothing) Name() string { return "expsmooth" }

// Forecast implements Forecaster.
func (e *ExpSmoothing) Forecast(history []float64, horizon int) []float64 {
	if horizon <= 0 {
		return nil
	}
	if len(history) == 0 {
		return make([]float64, horizon)
	}
	bestLevel := history[len(history)-1]
	bestSSE := math.Inf(1)
	for _, alpha := range e.grid {
		level := history[0]
		var sse float64
		for i := 1; i < len(history); i++ {
			err := history[i] - level
			sse += err * err
			level += alpha * err
		}
		if sse < bestSSE {
			bestSSE = sse
			bestLevel = level
		}
	}
	// ES forecasts a flat continuation of the smoothed level.
	return constant(bestLevel, horizon)
}

// Holt is double exponential smoothing: a smoothed level plus a smoothed
// linear trend, with (alpha, beta) selected per call by one-step-ahead SSE.
// Holt follows trending traffic (growing adoption, ramping launches) that a
// flat ES forecast lags behind.
type Holt struct {
	alphas []float64
	betas  []float64
}

// NewHolt returns a Holt double-exponential-smoothing forecaster.
func NewHolt() *Holt {
	return &Holt{
		alphas: []float64{0.1, 0.2, 0.3, 0.5, 0.7, 0.9},
		betas:  []float64{0.05, 0.1, 0.2, 0.4, 0.8},
	}
}

// Name implements Forecaster.
func (h *Holt) Name() string { return "holt" }

// Forecast implements Forecaster.
func (h *Holt) Forecast(history []float64, horizon int) []float64 {
	if horizon <= 0 {
		return nil
	}
	if len(history) < 2 {
		v := 0.0
		if len(history) == 1 {
			v = history[0]
		}
		return constant(v, horizon)
	}
	bestSSE := math.Inf(1)
	var bestLevel, bestTrend float64
	for _, alpha := range h.alphas {
		for _, beta := range h.betas {
			level := history[0]
			trend := history[1] - history[0]
			var sse float64
			for i := 1; i < len(history); i++ {
				pred := level + trend
				err := history[i] - pred
				sse += err * err
				newLevel := pred + alpha*err
				trend += alpha * beta * err
				level = newLevel
			}
			if sse < bestSSE {
				bestSSE = sse
				bestLevel, bestTrend = level, trend
			}
		}
	}
	out := make([]float64, horizon)
	for t := 0; t < horizon; t++ {
		out[t] = bestLevel + float64(t+1)*bestTrend
	}
	return clampNonNegative(out)
}
