package forecast

import "math"

// ExpSmoothing is single exponential smoothing with dynamic parameter
// selection: the smoothing factor alpha is chosen per call by minimizing the
// one-step-ahead squared error over the history window (§4.3.3 notes ES and
// Holt have "dynamic parameter selection"). ES tracks general trends in
// dense traffic without assuming structure.
type ExpSmoothing struct {
	grid []float64
}

// NewExpSmoothing returns an exponential smoothing forecaster.
func NewExpSmoothing() *ExpSmoothing {
	return &ExpSmoothing{grid: alphaGrid()}
}

func alphaGrid() []float64 {
	g := make([]float64, 0, 19)
	for a := 0.05; a < 1.0; a += 0.05 {
		g = append(g, a)
	}
	return g
}

// Name implements Forecaster.
func (e *ExpSmoothing) Name() string { return "expsmooth" }

// Forecast implements Forecaster.
func (e *ExpSmoothing) Forecast(history []float64, horizon int) []float64 {
	return e.ForecastInto(history, horizon, nil, nil)
}

// ForecastInto implements IntoForecaster. The grid search runs all alpha
// chains interleaved — history outer, grid inner, one level/SSE slot per
// alpha — so one pass over the history updates every candidate. Each
// chain performs its reference operations in its reference order, so the
// selected level is bit-identical to the chain-at-a-time search.
func (e *ExpSmoothing) ForecastInto(history []float64, horizon int, dst []float64, ws *Workspace) []float64 {
	if horizon <= 0 {
		return nil
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	dst = ensureDst(dst, horizon)
	if len(history) == 0 {
		zeroInto(dst)
		return dst
	}
	bestLevel, _ := esSearchWS(history, e.grid, ws)
	// ES forecasts a flat continuation of the smoothed level.
	constantInto(dst, bestLevel)
	return dst
}

// esSearchWS runs the interleaved alpha grid search and returns the
// SSE-minimizing smoothed level with its SSE (strict < in grid order,
// matching the reference tie-breaking). The final per-alpha levels are
// left in ws.levels for callers that want the grid spread.
func esSearchWS(history, g []float64, ws *Workspace) (bestLevel, bestSSE float64) {
	levels := growF(ws.levels, len(g))
	ws.levels = levels
	sses := growF(ws.sses, len(g))
	ws.sses = sses
	// Re-slicing to len(g) is a no-op at runtime (growF sized them) but
	// lets the compiler drop the bounds checks in the hot interleave.
	levels = levels[:len(g)]
	sses = sses[:len(g)]
	for a := range g {
		levels[a] = history[0]
		sses[a] = 0
	}
	for i := 1; i < len(history); i++ {
		hv := history[i]
		for a, alpha := range g {
			err := hv - levels[a]
			sses[a] += err * err
			levels[a] += alpha * err
		}
	}
	bestLevel = history[len(history)-1]
	bestSSE = math.Inf(1)
	for a := range g {
		if sses[a] < bestSSE {
			bestSSE = sses[a]
			bestLevel = levels[a]
		}
	}
	return bestLevel, bestSSE
}

// ForecastQuantilesInto implements QuantileForecaster. The scale
// combines the winning chain's one-step residual variance with the
// disagreement (variance) of the final smoothed levels across the alpha
// grid — both byproducts of the search already in the workspace. ES
// forecasts a flat continuation, so the band does not widen with t.
func (e *ExpSmoothing) ForecastQuantilesInto(history []float64, horizon int, levels, dst []float64, ws *Workspace) []float64 {
	if horizon <= 0 || len(levels) == 0 {
		return nil
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	dst = ensureDst(dst, len(levels)*horizon)
	if len(history) == 0 {
		zeroInto(dst)
		return dst
	}
	bestLevel, bestSSE := esSearchWS(history, e.grid, ws)
	denom := len(history) - 1
	if denom < 1 {
		denom = 1
	}
	residVar := bestSSE / float64(denom)
	chains := ws.levels[:len(e.grid)]
	var gm float64
	for _, v := range chains {
		gm += v
	}
	gm /= float64(len(chains))
	var gv float64
	for _, v := range chains {
		d := v - gm
		gv += d * d
	}
	gv /= float64(len(chains))
	sigma := guardSigma(math.Sqrt(residVar + gv))
	fillConstQuantilesWS(dst, bestLevel, sigma, levels, horizon, ws)
	return dst
}

// Holt is double exponential smoothing: a smoothed level plus a smoothed
// linear trend, with (alpha, beta) selected per call by one-step-ahead SSE.
// Holt follows trending traffic (growing adoption, ramping launches) that a
// flat ES forecast lags behind.
type Holt struct {
	alphas []float64
	betas  []float64
}

// NewHolt returns a Holt double-exponential-smoothing forecaster.
func NewHolt() *Holt {
	return &Holt{
		alphas: []float64{0.1, 0.2, 0.3, 0.5, 0.7, 0.9},
		betas:  []float64{0.05, 0.1, 0.2, 0.4, 0.8},
	}
}

// Name implements Forecaster.
func (h *Holt) Name() string { return "holt" }

// Forecast implements Forecaster.
func (h *Holt) Forecast(history []float64, horizon int) []float64 {
	return h.ForecastInto(history, horizon, nil, nil)
}

// ForecastInto implements IntoForecaster. Like ExpSmoothing, all
// (alpha, beta) chains run interleaved over a single history pass, one
// level/trend/SSE slot per combination in (alpha outer, beta inner)
// order. alpha*beta is precomputed per combination — the reference
// evaluates alpha*beta*err left-to-right, so the product is the same —
// and each chain's recurrence is order-identical, so the selected
// (level, trend) is bit-identical to the reference search.
func (h *Holt) ForecastInto(history []float64, horizon int, dst []float64, ws *Workspace) []float64 {
	if horizon <= 0 {
		return nil
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	dst = ensureDst(dst, horizon)
	if len(history) < 2 {
		v := 0.0
		if len(history) == 1 {
			v = history[0]
		}
		constantInto(dst, v)
		return dst
	}
	bestLevel, bestTrend, _ := holtSearchWS(history, h.alphas, h.betas, ws)
	for t := range dst {
		v := bestLevel + float64(t+1)*bestTrend
		if v < 0 || v != v {
			v = 0
		}
		dst[t] = v
	}
	return dst
}

// holtSearchWS runs the interleaved (alpha, beta) grid search and
// returns the SSE-minimizing (level, trend) with its SSE. The final
// per-combination levels and trends are left in ws.levels/ws.trends for
// callers that want the grid spread. len(history) must be >= 2.
func holtSearchWS(history, alphas, betas []float64, ws *Workspace) (bestLevel, bestTrend, bestSSE float64) {
	combos := len(alphas) * len(betas)
	levels := growF(ws.levels, combos)
	ws.levels = levels
	trends := growF(ws.trends, combos)
	ws.trends = trends
	sses := growF(ws.sses, combos)
	ws.sses = sses
	ga := growF(ws.ga, combos)
	ws.ga = ga
	gab := growF(ws.gab, combos)
	ws.gab = gab
	c := 0
	for _, alpha := range alphas {
		for _, beta := range betas {
			ga[c] = alpha
			gab[c] = alpha * beta
			c++
		}
	}
	trend0 := history[1] - history[0]
	for c := 0; c < combos; c++ {
		levels[c] = history[0]
		trends[c] = trend0
		sses[c] = 0
	}
	// No-op re-slices that let the compiler drop bounds checks in the
	// interleaved recurrence.
	levels = levels[:combos]
	trends = trends[:combos]
	sses = sses[:combos]
	ga = ga[:combos]
	gab = gab[:combos]
	for i := 1; i < len(history); i++ {
		hv := history[i]
		for c := range levels {
			pred := levels[c] + trends[c]
			err := hv - pred
			sses[c] += err * err
			levels[c] = pred + ga[c]*err
			trends[c] += gab[c] * err
		}
	}
	bestSSE = math.Inf(1)
	for c := 0; c < combos; c++ {
		if sses[c] < bestSSE {
			bestSSE = sses[c]
			bestLevel, bestTrend = levels[c], trends[c]
		}
	}
	return bestLevel, bestTrend, bestSSE
}

// ForecastQuantilesInto implements QuantileForecaster. The per-step
// scale combines the winning chain's one-step residual variance with the
// variance of the step-t extrapolations across the (alpha, beta) grid,
// so the band widens with the horizon exactly as the candidate trends
// fan out.
func (h *Holt) ForecastQuantilesInto(history []float64, horizon int, levels, dst []float64, ws *Workspace) []float64 {
	if horizon <= 0 || len(levels) == 0 {
		return nil
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	dst = ensureDst(dst, len(levels)*horizon)
	if len(history) < 2 {
		v := 0.0
		if len(history) == 1 {
			v = history[0]
		}
		fillConstQuantilesWS(dst, v, 0, levels, horizon, ws)
		return dst
	}
	bestLevel, bestTrend, bestSSE := holtSearchWS(history, h.alphas, h.betas, ws)
	denom := len(history) - 1
	if denom < 1 {
		denom = 1
	}
	residVar := bestSSE / float64(denom)
	combos := len(h.alphas) * len(h.betas)
	lv := ws.levels[:combos]
	tr := ws.trends[:combos]
	qpt := ws.qPoint(horizon)
	sig := ws.qSig(horizon)
	for t := 0; t < horizon; t++ {
		step := float64(t + 1)
		v := bestLevel + step*bestTrend
		if v < 0 || v != v {
			v = 0
		}
		qpt[t] = v
		var gm float64
		for c := range lv {
			gm += lv[c] + step*tr[c]
		}
		gm /= float64(combos)
		var gv float64
		for c := range lv {
			d := lv[c] + step*tr[c] - gm
			gv += d * d
		}
		gv /= float64(combos)
		sig[t] = guardSigma(math.Sqrt(residVar + gv))
	}
	fillQuantilesWS(dst, qpt, sig, levels, horizon, ws)
	return dst
}
