package forecast

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// allForecasters returns every forecaster plus the simple baselines.
func allForecasters() []Forecaster {
	return append(DefaultSet(), NewMovingAverage(1), Naive{}, Zero{})
}

func sine(n int, period float64, amp, offset float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = offset + amp*math.Sin(2*math.Pi*float64(i)/period)
	}
	return out
}

func TestForecastContracts(t *testing.T) {
	// Contract for every forecaster: correct horizon length, non-negative,
	// finite, and graceful on degenerate inputs.
	histories := [][]float64{
		nil,
		{},
		{5},
		{1, 2},
		{0, 0, 0, 0, 0, 0, 0, 0},
		sine(120, 24, 3, 5),
		make([]float64, 200), // zeros
	}
	rng := rand.New(rand.NewSource(1))
	noisy := make([]float64, 150)
	for i := range noisy {
		noisy[i] = math.Abs(rng.NormFloat64() * 10)
	}
	histories = append(histories, noisy)

	for _, f := range allForecasters() {
		for hi, h := range histories {
			for _, horizon := range []int{0, 1, 5, 30} {
				got := f.Forecast(h, horizon)
				if horizon <= 0 {
					if got != nil {
						t.Errorf("%s: horizon 0 returned %v", f.Name(), got)
					}
					continue
				}
				if len(got) != horizon {
					t.Fatalf("%s history %d: len = %d, want %d", f.Name(), hi, len(got), horizon)
				}
				for j, v := range got {
					if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("%s history %d: forecast[%d] = %v", f.Name(), hi, j, v)
					}
				}
			}
		}
	}
}

func TestForecastDeterminism(t *testing.T) {
	h := sine(120, 30, 2, 4)
	for _, f := range allForecasters() {
		a := f.Forecast(h, 10)
		b := f.Forecast(h, 10)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: non-deterministic forecast", f.Name())
				break
			}
		}
	}
}

func TestARRecoverFromARProcess(t *testing.T) {
	// Generate a stable AR(2) process; AR(10) should forecast much better
	// than the mean on one-step-ahead.
	rng := rand.New(rand.NewSource(2))
	n := 400
	x := make([]float64, n)
	x[0], x[1] = 5, 5
	for i := 2; i < n; i++ {
		x[i] = 2 + 0.6*x[i-1] + 0.25*x[i-2] + 0.2*rng.NormFloat64()
	}
	ar := NewAR(10)
	var arErr, meanErr float64
	for i := 200; i < n-1; i++ {
		pred := ar.Forecast(x[:i], 1)[0]
		arErr += math.Abs(pred - x[i])
		meanErr += math.Abs(mean(x[:i]) - x[i])
	}
	if arErr >= meanErr*0.6 {
		t.Errorf("AR error %v should be well below mean-forecast error %v", arErr, meanErr)
	}
}

func TestARShortHistoryFallsBackToMean(t *testing.T) {
	h := []float64{2, 4}
	got := NewAR(10).Forecast(h, 3)
	for _, v := range got {
		if math.Abs(v-3) > 1e-12 {
			t.Errorf("short-history AR = %v, want mean 3", got)
		}
	}
}

func TestFFTTracksPeriodicSignal(t *testing.T) {
	// A clean sinusoid must be extrapolated accurately.
	period := 24.0
	h := sine(120, period, 3, 5)
	f := NewFFT(10)
	got := f.Forecast(h, 24)
	for i := range got {
		want := 5 + 3*math.Sin(2*math.Pi*float64(120+i)/period)
		if want < 0 {
			want = 0
		}
		if math.Abs(got[i]-want) > 0.5 {
			t.Fatalf("FFT forecast[%d] = %v, want ~%v", i, got[i], want)
		}
	}
}

func TestFFTBeatsARonPeriodic(t *testing.T) {
	// Periodic bursty pattern: FFT should dominate AR over a long horizon,
	// the behaviour underlying §4.2's forecaster-diversity argument.
	n := 240
	h := make([]float64, n)
	for i := range h {
		if i%30 < 3 {
			h[i] = 10
		}
	}
	future := make([]float64, 60)
	for i := range future {
		if (n+i)%30 < 3 {
			future[i] = 10
		}
	}
	fftErr := sumAbsErr(NewFFT(10).Forecast(h, 60), future)
	arErr := sumAbsErr(NewAR(10).Forecast(h, 60), future)
	if fftErr >= arErr {
		t.Errorf("FFT error %v should beat AR error %v on periodic traffic", fftErr, arErr)
	}
}

func sumAbsErr(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

func TestSETARHandlesRegimeSwitching(t *testing.T) {
	// Two-regime series: low regime decays, high regime persists. SETAR
	// should not blow up and should produce regime-plausible forecasts.
	rng := rand.New(rand.NewSource(3))
	n := 300
	x := make([]float64, n)
	x[0] = 1
	for i := 1; i < n; i++ {
		if x[i-1] < 5 {
			x[i] = 0.9*x[i-1] + 1 + 0.1*rng.NormFloat64()
			if rng.Float64() < 0.05 {
				x[i] += 10
			}
		} else {
			x[i] = 0.7*x[i-1] + 0.2*rng.NormFloat64()
		}
		if x[i] < 0 {
			x[i] = 0
		}
	}
	got := NewSETAR(10, 2).Forecast(x, 10)
	for i, v := range got {
		if v > 50 {
			t.Fatalf("SETAR forecast[%d] = %v diverged", i, v)
		}
	}
}

func TestSETARConstantSeriesFallback(t *testing.T) {
	h := make([]float64, 100)
	for i := range h {
		h[i] = 7
	}
	got := NewSETAR(10, 2).Forecast(h, 5)
	for _, v := range got {
		if math.Abs(v-7) > 0.5 {
			t.Errorf("constant series forecast = %v, want ~7", got)
			break
		}
	}
}

func TestExpSmoothingConvergesToLevel(t *testing.T) {
	// Step series settling at 8: smoothed level should be close to 8.
	h := make([]float64, 100)
	for i := range h {
		if i < 20 {
			h[i] = 2
		} else {
			h[i] = 8
		}
	}
	got := NewExpSmoothing().Forecast(h, 5)
	for _, v := range got {
		if math.Abs(v-8) > 1 {
			t.Errorf("ES forecast = %v, want ~8", v)
		}
	}
	// Flat forecast: all horizon values identical.
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Error("ES forecast should be flat")
		}
	}
}

func TestHoltFollowsTrend(t *testing.T) {
	// Linear ramp: Holt should continue the ramp, ES should lag.
	h := make([]float64, 100)
	for i := range h {
		h[i] = float64(i) * 0.5
	}
	holt := NewHolt().Forecast(h, 10)
	for i, v := range holt {
		want := float64(100+i) * 0.5
		if math.Abs(v-want) > 2 {
			t.Fatalf("Holt forecast[%d] = %v, want ~%v", i, v, want)
		}
	}
	es := NewExpSmoothing().Forecast(h, 10)
	if es[9] >= holt[9] {
		t.Errorf("ES %v should lag Holt %v on a ramp", es[9], holt[9])
	}
}

func TestMarkovChainLearnsAlternation(t *testing.T) {
	// Deterministic alternation between 0 and 10: the chain must predict
	// the opposite state next.
	h := make([]float64, 100)
	for i := range h {
		if i%2 == 0 {
			h[i] = 10
		}
	}
	// history ends with h[99] = 0 (odd index), so next is 10.
	got := NewMarkovChain(4).Forecast(h, 2)
	if got[0] < 7 {
		t.Errorf("Markov forecast[0] = %v, want ~10 (alternation)", got[0])
	}
	if got[1] > 3 {
		t.Errorf("Markov forecast[1] = %v, want ~0 (alternation)", got[1])
	}
}

func TestMarkovChainConstantSeries(t *testing.T) {
	h := make([]float64, 50)
	for i := range h {
		h[i] = 3
	}
	got := NewMarkovChain(4).Forecast(h, 3)
	for _, v := range got {
		if math.Abs(v-3) > 1e-9 {
			t.Errorf("constant Markov forecast = %v, want 3", got)
		}
	}
}

func TestMovingAverageWindow(t *testing.T) {
	h := []float64{10, 10, 10, 2, 4}
	got := NewMovingAverage(2).Forecast(h, 3)
	for _, v := range got {
		if v != 3 {
			t.Errorf("MA(2) = %v, want 3", got)
			break
		}
	}
	// Window larger than history uses everything.
	got = NewMovingAverage(100).Forecast([]float64{2, 4}, 1)
	if got[0] != 3 {
		t.Errorf("oversized window = %v, want 3", got[0])
	}
}

func TestNaiveAndZero(t *testing.T) {
	h := []float64{1, 2, 9}
	if got := (Naive{}).Forecast(h, 2); got[0] != 9 || got[1] != 9 {
		t.Errorf("Naive = %v", got)
	}
	if got := (Zero{}).Forecast(h, 2); got[0] != 0 || got[1] != 0 {
		t.Errorf("Zero = %v", got)
	}
}

func TestByName(t *testing.T) {
	set := DefaultSet()
	f, err := ByName(set, "fft10")
	if err != nil || f.Name() != "fft10" {
		t.Errorf("ByName(fft10) = %v, %v", f, err)
	}
	if _, err := ByName(set, "nope"); err == nil {
		t.Error("expected error for unknown name")
	}
}

func TestNamesAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range allForecasters() {
		if seen[f.Name()] {
			t.Errorf("duplicate forecaster name %q", f.Name())
		}
		seen[f.Name()] = true
	}
}

func TestForecastNonNegativityProperty(t *testing.T) {
	// Property: whatever the history (including negative inputs from a
	// buggy upstream), forecasts are non-negative and finite.
	fs := allForecasters()
	f := func(raw []float64, horizon uint8) bool {
		h := int(horizon%20) + 1
		hist := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Scale into a plausible concurrency range.
			hist = append(hist, math.Mod(math.Abs(v), 1000))
		}
		for _, fc := range fs {
			out := fc.Forecast(hist, h)
			if len(out) != h {
				return false
			}
			for _, v := range out {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkForecasters(b *testing.B) {
	h := sine(120, 24, 3, 5)
	for _, f := range DefaultSet() {
		b.Run(f.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f.Forecast(h, 1)
			}
		})
	}
}
