package forecast

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/ubc-cirrus-lab/femux-go/internal/mathx"
)

// This file retains the pre-workspace forecaster implementations verbatim
// (same pattern as features/bds_ref_test.go) and asserts the ForecastInto
// kernels are bit-for-bit identical to them: same Float64bits for every
// element, every forecaster, across history shapes, lengths, horizons,
// and workspace/destination reuse. Bit-identity is what keeps memo cache
// keys, trained models, and restart-resume forecasts valid regardless of
// which path produced a value.

// ---- reference implementations (verbatim pre-optimization code) ----

func refClampNonNegative(xs []float64) []float64 {
	for i, v := range xs {
		if v < 0 || v != v {
			xs[i] = 0
		}
	}
	return xs
}

func refConstant(v float64, horizon int) []float64 {
	if v < 0 || v != v {
		v = 0
	}
	out := make([]float64, horizon)
	for i := range out {
		out[i] = v
	}
	return out
}

func refFitAR(history []float64, lags int) ([]float64, bool) {
	n := len(history)
	rows := n - lags
	if rows < lags+2 {
		return nil, false
	}
	x := make([][]float64, rows)
	y := make([]float64, rows)
	for r := 0; r < rows; r++ {
		row := make([]float64, lags+1)
		row[0] = 1
		for l := 1; l <= lags; l++ {
			row[l] = history[r+lags-l]
		}
		x[r] = row
		y[r] = history[r+lags]
	}
	coef, err := mathx.LeastSquares(x, y)
	if err != nil {
		return nil, false
	}
	return coef, true
}

func refPredictAR(history, coef []float64, lags, horizon int) []float64 {
	buf := append([]float64(nil), history...)
	out := make([]float64, horizon)
	for t := 0; t < horizon; t++ {
		v := coef[0]
		for l := 1; l <= lags; l++ {
			idx := len(buf) - l
			if idx >= 0 {
				v += coef[l] * buf[idx]
			}
		}
		if v < 0 || v != v {
			v = 0
		}
		out[t] = v
		buf = append(buf, v)
	}
	return out
}

func refARForecast(lags int, history []float64, horizon int) []float64 {
	if horizon <= 0 {
		return nil
	}
	coef, ok := refFitAR(history, lags)
	if !ok {
		return refConstant(mean(history), horizon)
	}
	return refClampNonNegative(refPredictAR(history, coef, lags, horizon))
}

func refFitARRows(history []float64, rowIdx []int, lags int) ([]float64, bool) {
	if len(rowIdx) < lags+2 {
		return nil, false
	}
	x := make([][]float64, len(rowIdx))
	y := make([]float64, len(rowIdx))
	for i, r := range rowIdx {
		row := make([]float64, lags+1)
		row[0] = 1
		for l := 1; l <= lags; l++ {
			row[l] = history[r+lags-l]
		}
		x[i] = row
		y[i] = history[r+lags]
	}
	coef, err := mathx.LeastSquares(x, y)
	if err != nil {
		return nil, false
	}
	return coef, true
}

func refRegimeThresholds(history []float64, k int) []float64 {
	if len(history) < 4 {
		return nil
	}
	sorted := append([]float64(nil), history...)
	sort.Float64s(sorted)
	if sorted[0] == sorted[len(sorted)-1] {
		return nil
	}
	out := make([]float64, 0, k)
	for i := 1; i <= k; i++ {
		q := float64(i) / float64(k+1)
		v := sorted[int(q*float64(len(sorted)-1))]
		if len(out) == 0 || v > out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func refSETARForecast(lags, thresholds int, history []float64, horizon int) []float64 {
	if horizon <= 0 {
		return nil
	}
	thr := refRegimeThresholds(history, thresholds)
	if len(thr) == 0 {
		return refARForecast(lags, history, horizon)
	}
	type regimeFit struct {
		coef []float64
		ok   bool
	}
	nRegimes := len(thr) + 1
	fits := make([]regimeFit, nRegimes)
	rows := len(history) - lags
	if rows < lags+2 {
		return refARForecast(lags, history, horizon)
	}
	regimeRows := make([][]int, nRegimes)
	for r := 0; r < rows; r++ {
		reg := regimeOf(history[r+lags-1], thr)
		regimeRows[reg] = append(regimeRows[reg], r)
	}
	for reg := 0; reg < nRegimes; reg++ {
		coef, ok := refFitARRows(history, regimeRows[reg], lags)
		fits[reg] = regimeFit{coef: coef, ok: ok}
	}
	globalCoef, globalOK := refFitAR(history, lags)

	buf := append([]float64(nil), history...)
	out := make([]float64, horizon)
	for t := 0; t < horizon; t++ {
		reg := regimeOf(buf[len(buf)-1], thr)
		var coef []float64
		switch {
		case fits[reg].ok:
			coef = fits[reg].coef
		case globalOK:
			coef = globalCoef
		default:
			out[t] = mean(history)
			buf = append(buf, out[t])
			continue
		}
		v := coef[0]
		for l := 1; l <= lags; l++ {
			idx := len(buf) - l
			if idx >= 0 {
				v += coef[l] * buf[idx]
			}
		}
		if v < 0 || v != v {
			v = 0
		}
		out[t] = v
		buf = append(buf, v)
	}
	return out
}

func refFFTForecast(harmonics int, history []float64, horizon int) []float64 {
	if horizon <= 0 {
		return nil
	}
	n := len(history)
	if n < 4 {
		return refConstant(mean(history), horizon)
	}
	m := mean(history)
	hs := mathx.TopHarmonics(history, harmonics)
	out := mathx.SynthesizeHarmonics(m, hs, n, n, horizon)
	return refClampNonNegative(out)
}

func refExpSmoothingForecast(grid, history []float64, horizon int) []float64 {
	if horizon <= 0 {
		return nil
	}
	if len(history) == 0 {
		return make([]float64, horizon)
	}
	bestLevel := history[len(history)-1]
	bestSSE := math.Inf(1)
	for _, alpha := range grid {
		level := history[0]
		var sse float64
		for i := 1; i < len(history); i++ {
			err := history[i] - level
			sse += err * err
			level += alpha * err
		}
		if sse < bestSSE {
			bestSSE = sse
			bestLevel = level
		}
	}
	return refConstant(bestLevel, horizon)
}

func refHoltForecast(alphas, betas, history []float64, horizon int) []float64 {
	if horizon <= 0 {
		return nil
	}
	if len(history) < 2 {
		v := 0.0
		if len(history) == 1 {
			v = history[0]
		}
		return refConstant(v, horizon)
	}
	bestSSE := math.Inf(1)
	var bestLevel, bestTrend float64
	for _, alpha := range alphas {
		for _, beta := range betas {
			level := history[0]
			trend := history[1] - history[0]
			var sse float64
			for i := 1; i < len(history); i++ {
				pred := level + trend
				err := history[i] - pred
				sse += err * err
				newLevel := pred + alpha*err
				trend += alpha * beta * err
				level = newLevel
			}
			if sse < bestSSE {
				bestSSE = sse
				bestLevel, bestTrend = level, trend
			}
		}
	}
	out := make([]float64, horizon)
	for t := 0; t < horizon; t++ {
		out[t] = bestLevel + float64(t+1)*bestTrend
	}
	return refClampNonNegative(out)
}

func refDiscretize(history []float64, k int) (bounds, centroids []float64) {
	sorted := append([]float64(nil), history...)
	sort.Float64s(sorted)
	if sorted[0] == sorted[len(sorted)-1] {
		return nil, nil
	}
	bounds = make([]float64, 0, k-1)
	for i := 1; i < k; i++ {
		q := float64(i) / float64(k)
		v := sorted[int(q*float64(len(sorted)-1))]
		if len(bounds) == 0 || v > bounds[len(bounds)-1] {
			bounds = append(bounds, v)
		}
	}
	n := len(bounds) + 1
	sums := make([]float64, n)
	counts := make([]float64, n)
	for _, v := range history {
		s := stateOf(v, bounds)
		sums[s] += v
		counts[s]++
	}
	centroids = make([]float64, n)
	for i := range centroids {
		if counts[i] > 0 {
			centroids[i] = sums[i] / counts[i]
		}
	}
	return bounds, centroids
}

func refMarkovForecast(states int, history []float64, horizon int) []float64 {
	if horizon <= 0 {
		return nil
	}
	if len(history) < states*2 {
		return refConstant(mean(history), horizon)
	}
	bounds, centroids := refDiscretize(history, states)
	if bounds == nil {
		return refConstant(history[len(history)-1], horizon)
	}
	k := len(centroids)
	trans := make([][]float64, k)
	for i := range trans {
		trans[i] = make([]float64, k)
		for j := range trans[i] {
			trans[i][j] = 0.1
		}
	}
	prev := stateOf(history[0], bounds)
	for i := 1; i < len(history); i++ {
		cur := stateOf(history[i], bounds)
		trans[prev][cur]++
		prev = cur
	}
	for i := range trans {
		var row float64
		for _, v := range trans[i] {
			row += v
		}
		for j := range trans[i] {
			trans[i][j] /= row
		}
	}
	dist := make([]float64, k)
	dist[stateOf(history[len(history)-1], bounds)] = 1
	out := make([]float64, horizon)
	next := make([]float64, k)
	for t := 0; t < horizon; t++ {
		for j := range next {
			next[j] = 0
		}
		for i := range dist {
			if dist[i] == 0 {
				continue
			}
			for j := range next {
				next[j] += dist[i] * trans[i][j]
			}
		}
		copy(dist, next)
		var ev float64
		for j := range dist {
			ev += dist[j] * centroids[j]
		}
		out[t] = ev
	}
	return refClampNonNegative(out)
}

func refMovingAverageForecast(window int, history []float64, horizon int) []float64 {
	if horizon <= 0 {
		return nil
	}
	w := window
	if w > len(history) {
		w = len(history)
	}
	if w == 0 {
		return make([]float64, horizon)
	}
	return refConstant(mean(history[len(history)-w:]), horizon)
}

func refRecentPeakForecast(window int, history []float64, horizon int) []float64 {
	if horizon <= 0 {
		return nil
	}
	w := window
	if w > len(history) {
		w = len(history)
	}
	peak := 0.0
	for _, v := range history[len(history)-w:] {
		if v > peak {
			peak = v
		}
	}
	return refConstant(peak, horizon)
}

func refCeilPeakForecast(window int, history []float64, horizon int) []float64 {
	if horizon <= 0 {
		return nil
	}
	w := window
	if w > len(history) {
		w = len(history)
	}
	peak := 0.0
	for _, v := range history[len(history)-w:] {
		if v > peak {
			peak = v
		}
	}
	if peak > 0 {
		peak = math.Ceil(peak)
	}
	return refConstant(peak, horizon)
}

func refNaiveForecast(history []float64, horizon int) []float64 {
	if horizon <= 0 {
		return nil
	}
	if len(history) == 0 {
		return make([]float64, horizon)
	}
	return refConstant(history[len(history)-1], horizon)
}

func refZeroForecast(_ []float64, horizon int) []float64 {
	if horizon <= 0 {
		return nil
	}
	return make([]float64, horizon)
}

// ---- equivalence harness ----

type refPair struct {
	fc  Forecaster
	ref func(history []float64, horizon int) []float64
}

func refPairs() []refPair {
	esGrid := alphaGrid()
	holt := NewHolt()
	return []refPair{
		{NewAR(10), func(h []float64, n int) []float64 { return refARForecast(10, h, n) }},
		{NewAR(3), func(h []float64, n int) []float64 { return refARForecast(3, h, n) }},
		{NewSETAR(10, 2), func(h []float64, n int) []float64 { return refSETARForecast(10, 2, h, n) }},
		{NewSETAR(4, 3), func(h []float64, n int) []float64 { return refSETARForecast(4, 3, h, n) }},
		{NewFFT(10), func(h []float64, n int) []float64 { return refFFTForecast(10, h, n) }},
		{NewFFT(3), func(h []float64, n int) []float64 { return refFFTForecast(3, h, n) }},
		{NewExpSmoothing(), func(h []float64, n int) []float64 { return refExpSmoothingForecast(esGrid, h, n) }},
		{holt, func(h []float64, n int) []float64 { return refHoltForecast(holt.alphas, holt.betas, h, n) }},
		{NewMarkovChain(4), func(h []float64, n int) []float64 { return refMarkovForecast(4, h, n) }},
		{NewMarkovChain(2), func(h []float64, n int) []float64 { return refMarkovForecast(2, h, n) }},
		{NewMovingAverage(60), func(h []float64, n int) []float64 { return refMovingAverageForecast(60, h, n) }},
		{NewRecentPeak(10), func(h []float64, n int) []float64 { return refRecentPeakForecast(10, h, n) }},
		{NewCeilPeak(1), func(h []float64, n int) []float64 { return refCeilPeakForecast(1, h, n) }},
		{NewCeilPeak(30), func(h []float64, n int) []float64 { return refCeilPeakForecast(30, h, n) }},
		{Naive{}, refNaiveForecast},
		{Zero{}, refZeroForecast},
	}
}

// refHistories covers the interesting shapes: empty/tiny (fallbacks),
// constants (degenerate quantiles), power-of-two and Bluestein FFT
// lengths, sparse series with many exact zeros (the vi == 0 accumulation
// skip), trickle traffic, bursts, and trending ramps.
func refHistories() map[string][]float64 {
	rng := rand.New(rand.NewSource(1234))
	hs := map[string][]float64{
		"nil":      nil,
		"empty":    {},
		"one":      {2.5},
		"two":      {1, 3},
		"three":    {0, 1, 0},
		"const5":   make([]float64, 40),
		"zeros":    make([]float64, 64),
		"len4":     {1, 2, 3, 4},
		"negative": {-1, 2, -3, 4, -5, 6, -7, 8, -2, 1, 0, 3},
	}
	for i := range hs["const5"] {
		hs["const5"][i] = 5
	}
	for _, n := range []int{10, 60, 64, 120, 128, 504, 600} {
		sine := make([]float64, n)
		noisy := make([]float64, n)
		sparse := make([]float64, n)
		ramp := make([]float64, n)
		for i := 0; i < n; i++ {
			sine[i] = 5 + 4*math.Sin(2*math.Pi*float64(i)/12)
			noisy[i] = math.Max(0, 3+2*math.Sin(2*math.Pi*float64(i)/30)+rng.NormFloat64())
			if rng.Intn(10) == 0 {
				sparse[i] = float64(1 + rng.Intn(5))
			}
			ramp[i] = 0.05 * float64(i)
		}
		hs[fmt.Sprintf("sine%d", n)] = sine
		hs[fmt.Sprintf("noisy%d", n)] = noisy
		hs[fmt.Sprintf("sparse%d", n)] = sparse
		hs[fmt.Sprintf("ramp%d", n)] = ramp
	}
	return hs
}

func assertSameForecast(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d want %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d: got %v (%#x) want %v (%#x)", label, i,
				got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// TestForecastMatchesReference checks the allocating Forecast wrapper
// (which routes through ForecastInto with nil dst/ws) against the
// retained reference implementations.
func TestForecastMatchesReference(t *testing.T) {
	histories := refHistories()
	for _, p := range refPairs() {
		for hname, h := range histories {
			for _, horizon := range []int{0, 1, 5, 30} {
				label := fmt.Sprintf("%s/%s/h=%d", p.fc.Name(), hname, horizon)
				assertSameForecast(t, label, p.fc.Forecast(h, horizon), p.ref(h, horizon))
			}
		}
	}
}

// TestForecastIntoSharedWorkspaceMatchesReference reuses ONE workspace and
// ONE destination buffer across every forecaster, history shape, and
// horizon — in two passes, so every buffer is dirty with another
// forecaster's state on reuse — and requires bit-identical output. This
// is the test that catches stale scratch state leaking between calls.
func TestForecastIntoSharedWorkspaceMatchesReference(t *testing.T) {
	histories := refHistories()
	names := make([]string, 0, len(histories))
	for n := range histories {
		names = append(names, n)
	}
	sort.Strings(names)
	ws := NewWorkspace()
	dst := make([]float64, 0, 4) // deliberately undersized: exercises both reuse and regrow
	for pass := 0; pass < 2; pass++ {
		for _, p := range refPairs() {
			into, ok := p.fc.(IntoForecaster)
			if !ok {
				t.Fatalf("%s does not implement IntoForecaster", p.fc.Name())
			}
			for _, hname := range names {
				h := histories[hname]
				for _, horizon := range []int{0, 1, 5, 30} {
					label := fmt.Sprintf("pass%d/%s/%s/h=%d", pass, p.fc.Name(), hname, horizon)
					got := into.ForecastInto(h, horizon, dst, ws)
					assertSameForecast(t, label, got, p.ref(h, horizon))
					if cap(got) > cap(dst) {
						dst = got[:0]
					}
				}
			}
		}
	}
}

// TestIntoHelperFallsBack checks forecast.Into on a forecaster without a
// fast path.
func TestIntoHelperFallsBack(t *testing.T) {
	fc := plainForecaster{}
	got := Into(fc, []float64{1, 2, 3}, 4, nil, NewWorkspace())
	assertSameForecast(t, "fallback", got, []float64{3, 3, 3, 3})
}

type plainForecaster struct{}

func (plainForecaster) Name() string { return "plain" }
func (plainForecaster) Forecast(history []float64, horizon int) []float64 {
	out := make([]float64, horizon)
	for i := range out {
		out[i] = history[len(history)-1]
	}
	return out
}
