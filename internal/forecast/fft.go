package forecast

import (
	"fmt"

	"github.com/ubc-cirrus-lab/femux-go/internal/mathx"
)

// FFT extrapolates the dominant harmonics of the history window, the
// approach used by IceBreaker and by the Huawei characterization's best
// statistical model (§4.3.2). It excels on periodic traffic (timers, cron
// workloads, diurnal patterns) and is the forecaster the characterization
// study evaluates at 10-second and 60-second timesteps (Fig 5).
type FFT struct {
	harmonics int
}

// NewFFT returns an FFT forecaster keeping the top-k harmonics (the paper
// uses 10).
func NewFFT(harmonics int) *FFT {
	if harmonics < 1 {
		harmonics = 1
	}
	return &FFT{harmonics: harmonics}
}

// Name implements Forecaster.
func (f *FFT) Name() string { return fmt.Sprintf("fft%d", f.harmonics) }

// Forecast implements Forecaster.
func (f *FFT) Forecast(history []float64, horizon int) []float64 {
	return f.ForecastInto(history, horizon, nil, nil)
}

// ForecastInto implements IntoForecaster. The workspace caches the FFT
// plan (twiddle and Bluestein chirp tables) per window length, so
// repeated forecasts over the same window size skip all plan setup and
// allocate nothing.
func (f *FFT) ForecastInto(history []float64, horizon int, dst []float64, ws *Workspace) []float64 {
	if horizon <= 0 {
		return nil
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	dst = ensureDst(dst, horizon)
	n := len(history)
	if n < 4 {
		constantInto(dst, mean(history))
		return dst
	}
	m := mean(history)
	hs := ws.fft.TopHarmonics(history, f.harmonics)
	// Extrapolate the harmonic model past the end of the window: sample
	// offsets n..n+horizon-1 of the length-n periodic reconstruction,
	// with the non-negativity clamp folded into the write loop.
	mathx.SynthesizeHarmonicsInto(m, hs, n, n, horizon, dst, true)
	return dst
}
