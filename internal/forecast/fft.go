package forecast

import (
	"fmt"
	"math"

	"github.com/ubc-cirrus-lab/femux-go/internal/mathx"
)

// FFT extrapolates the dominant harmonics of the history window, the
// approach used by IceBreaker and by the Huawei characterization's best
// statistical model (§4.3.2). It excels on periodic traffic (timers, cron
// workloads, diurnal patterns) and is the forecaster the characterization
// study evaluates at 10-second and 60-second timesteps (Fig 5).
type FFT struct {
	harmonics int
}

// NewFFT returns an FFT forecaster keeping the top-k harmonics (the paper
// uses 10).
func NewFFT(harmonics int) *FFT {
	if harmonics < 1 {
		harmonics = 1
	}
	return &FFT{harmonics: harmonics}
}

// Name implements Forecaster.
func (f *FFT) Name() string { return fmt.Sprintf("fft%d", f.harmonics) }

// Forecast implements Forecaster.
func (f *FFT) Forecast(history []float64, horizon int) []float64 {
	return f.ForecastInto(history, horizon, nil, nil)
}

// ForecastInto implements IntoForecaster. The workspace caches the FFT
// plan (twiddle and Bluestein chirp tables) per window length, so
// repeated forecasts over the same window size skip all plan setup and
// allocate nothing.
func (f *FFT) ForecastInto(history []float64, horizon int, dst []float64, ws *Workspace) []float64 {
	if horizon <= 0 {
		return nil
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	dst = ensureDst(dst, horizon)
	n := len(history)
	if n < 4 {
		constantInto(dst, mean(history))
		return dst
	}
	m := mean(history)
	hs := ws.fft.TopHarmonics(history, f.harmonics)
	// Extrapolate the harmonic model past the end of the window: sample
	// offsets n..n+horizon-1 of the length-n periodic reconstruction,
	// with the non-negativity clamp folded into the write loop.
	mathx.SynthesizeHarmonicsInto(m, hs, n, n, horizon, dst, true)
	return dst
}

// ForecastQuantilesInto implements QuantileForecaster. The scale is the
// in-sample residual of the truncated harmonic model: the top-k
// reconstruction is synthesized back over the window (offsets 0..n-1,
// unclamped — the model's raw output) and compared to the history. The
// band is flat in t: a periodic model's error does not compound with
// the horizon the way a rolled-forward AR's does.
func (f *FFT) ForecastQuantilesInto(history []float64, horizon int, levels, dst []float64, ws *Workspace) []float64 {
	if horizon <= 0 || len(levels) == 0 {
		return nil
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	dst = ensureDst(dst, len(levels)*horizon)
	n := len(history)
	if n < 4 {
		fillConstQuantilesWS(dst, mean(history), histStd(history), levels, horizon, ws)
		return dst
	}
	m := mean(history)
	hs := ws.fft.TopHarmonics(history, f.harmonics)
	qpt := ws.qPoint(horizon)
	mathx.SynthesizeHarmonicsInto(m, hs, n, n, horizon, qpt, true)
	recon := growF(ws.qres, n)
	ws.qres = recon
	mathx.SynthesizeHarmonicsInto(m, hs, n, 0, n, recon, false)
	var sse float64
	for i, v := range history {
		e := v - recon[i]
		sse += e * e
	}
	sigma := guardSigma(math.Sqrt(sse / float64(n)))
	sig := ws.qSig(horizon)
	for t := range sig {
		sig[t] = sigma
	}
	fillQuantilesWS(dst, qpt, sig, levels, horizon, ws)
	return dst
}
