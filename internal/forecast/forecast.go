// Package forecast implements the lightweight traffic forecasters FeMux
// multiplexes between (§4.3.3): autoregression (AR), self-excitation
// threshold autoregression (SETAR), FFT harmonic extrapolation, exponential
// smoothing, Holt double exponential smoothing, and a Markov chain — plus
// the simple baselines used throughout the evaluation (moving average as
// used by Knative's default autoscaler, naive last-value, and zero).
//
// Every forecaster consumes a history window of per-interval average
// concurrency (the Knative representation, §4.3.1) and predicts the next
// horizon intervals. Forecasts are clamped to be non-negative: negative
// concurrency has no meaning for scaling.
package forecast

import "fmt"

// Forecaster predicts future values of a fixed-interval series.
// Implementations must be deterministic and cheap: FeMux budgets a few
// milliseconds per forecast (§5.2 reports a 7 ms mean).
type Forecaster interface {
	// Name identifies the forecaster in classifier assignments and reports.
	Name() string
	// Forecast predicts the next horizon values following history.
	// history may be shorter than the forecaster's preferred window; all
	// implementations degrade gracefully (typically to a mean or naive
	// forecast) rather than failing.
	Forecast(history []float64, horizon int) []float64
}

// mean returns the arithmetic mean of xs, or 0 for empty input.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// DefaultSet returns the forecaster set FeMux ships with, in the paper's
// configuration: AR(10), SETAR(10 lags, 2 thresholds), FFT with the top 10
// harmonics, Exponential Smoothing and Holt with dynamic parameter
// selection, a 4-state Markov chain, and a family of keep-alive-style
// forecasters (Fig 17 lists fixed keep-alive in FeMux's set): a 10-interval
// peak-hold plus keep-warm ceiling variants at 1, 10, and 30 intervals,
// covering trickle traffic and different idle-gap economics.
func DefaultSet() []Forecaster {
	return []Forecaster{
		NewAR(10),
		NewSETAR(10, 2),
		NewFFT(10),
		NewExpSmoothing(),
		NewHolt(),
		NewMarkovChain(4),
		NewRecentPeak(10),
		NewCeilPeak(1),
		NewCeilPeak(10),
		NewCeilPeak(30),
	}
}

// ByName returns the forecaster with the given name from set.
func ByName(set []Forecaster, name string) (Forecaster, error) {
	for _, f := range set {
		if f.Name() == name {
			return f, nil
		}
	}
	return nil, fmt.Errorf("forecast: unknown forecaster %q", name)
}
