package forecast

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzForecastQuantiles drives every forecaster's quantile path with
// arbitrary histories and levels — raw float bits, so NaN, ±Inf,
// subnormals, short/empty histories, and degenerate levels (<=0, >=1,
// duplicates, unsorted, NaN) all occur naturally. The invariants that
// must survive anything:
//
//   - no NaN ever escapes (the write-side clamp maps NaN to 0);
//   - every value is non-negative;
//   - curves are monotone across comparable (non-NaN) levels;
//   - a second call is Float64bits-identical (workspace reuse included).
//
// CI's fuzz-smoke step runs this for 10s per push on top of the corpus.
func FuzzForecastQuantiles(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint8(1), uint8(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, uint8(2), uint8(3), uint8(2))
	// A NaN, an Inf, and a negative packed as raw float64 bits.
	seed := make([]byte, 0, 40)
	for _, v := range []float64{math.NaN(), math.Inf(1), -3, 0.5, 1e300} {
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(v))
	}
	f.Add(seed, uint8(5), uint8(4), uint8(3))

	set := quantileSet()
	f.Fuzz(func(t *testing.T, data []byte, fcIdx, horizonB, nLevelsB uint8) {
		qf := set[int(fcIdx)%len(set)]
		horizon := 1 + int(horizonB)%8
		nLevels := 1 + int(nLevelsB)%8

		// Levels come off the front of data (raw bits: adversarial),
		// history off the rest.
		levels := make([]float64, 0, nLevels)
		for len(levels) < nLevels && len(data) >= 8 {
			levels = append(levels, math.Float64frombits(binary.LittleEndian.Uint64(data[:8])))
			data = data[8:]
		}
		for len(levels) < nLevels {
			levels = append(levels, 0.9)
		}
		hist := make([]float64, 0, 512)
		for len(hist) < 512 && len(data) >= 8 {
			hist = append(hist, math.Float64frombits(binary.LittleEndian.Uint64(data[:8])))
			data = data[8:]
		}

		ws := NewWorkspace()
		flat := qf.ForecastQuantilesInto(hist, horizon, levels, nil, ws)
		if len(flat) != len(levels)*horizon {
			t.Fatalf("%s: got %d values, want %d", qf.Name(), len(flat), len(levels)*horizon)
		}
		for i, v := range flat {
			if math.IsNaN(v) {
				t.Fatalf("%s: value[%d] is NaN", qf.Name(), i)
			}
			if v < 0 {
				t.Fatalf("%s: value[%d] = %v < 0", qf.Name(), i, v)
			}
		}
		for a := range levels {
			for b := range levels {
				if math.IsNaN(levels[a]) || math.IsNaN(levels[b]) || levels[a] > levels[b] {
					continue
				}
				for s := 0; s < horizon; s++ {
					if flat[a*horizon+s] > flat[b*horizon+s] {
						t.Fatalf("%s: curves cross at step %d: p(%v)=%v > p(%v)=%v",
							qf.Name(), s, levels[a], flat[a*horizon+s], levels[b], flat[b*horizon+s])
					}
				}
			}
		}
		again := qf.ForecastQuantilesInto(hist, horizon, levels, nil, ws)
		for i := range flat {
			if math.Float64bits(flat[i]) != math.Float64bits(again[i]) {
				t.Fatalf("%s: repeat call diverged at %d: %v vs %v", qf.Name(), i, flat[i], again[i])
			}
		}
	})
}
