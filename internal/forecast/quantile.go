package forecast

import (
	"math"
	"sort"
)

// This file adds forecast quantiles to every forecaster: instead of one
// point trajectory, ForecastQuantilesInto emits one trajectory per
// requested probability level, so a pod-conversion policy can provision
// for "the p95 demand of this app" instead of point × fixed headroom.
// The uncertainty estimates are byproducts the kernels already compute:
// AR/SETAR reuse their normal-equation fits for in-sample residual
// variance, ES/Holt reuse the grid-search chains (residual variance of
// the winner plus disagreement across the candidate grid), FFT measures
// the in-sample harmonic reconstruction error, and the Markov chain
// reads exact discrete quantiles off the state distribution it already
// rolls forward. The peak-hold and keep-warm envelopes read empirical
// quantiles straight off the trailing demand window (a peak-hold is the
// q->1 limit of "cover fraction q of recent intervals"), the moving
// average carries a Gaussian band from the window's dispersion, and the
// remaining heuristics (naive, zero) return a point mass: every level
// equals the point forecast.
//
// Results are level-major: dst[q*horizon+t] is level levels[q] at step
// t. Guarantees, pinned by quantile_prop_test.go and the fuzz target:
//
//   - monotone: for levels p <= p', every step of the p-curve is <= the
//     p'-curve (curves never cross, even for unsorted/duplicate levels);
//   - the 0.5 level is bit-identical to ForecastInto's point forecast
//     for every Gaussian-band forecaster (the Markov chain's point
//     forecast is an expected value, not a median, so it is exempt);
//   - values are clamped non-negative with the exact clamp the point
//     kernels use, and never NaN;
//   - degenerate levels (<=0, >=1, NaN) stay finite: levels are clamped
//     into (0, 1) and a NaN level falls back to the point forecast;
//   - repeated calls are Float64bits-identical, and a warmed workspace
//     makes the whole path allocation-free (alloc_test.go).

// QuantileForecaster is implemented by every built-in forecaster: emit
// one forecast trajectory per probability level into dst (level-major,
// len(levels)*horizon values), reusing ws for all intermediate state.
// dst and ws may be nil, in which case the call allocates.
type QuantileForecaster interface {
	IntoForecaster
	ForecastQuantilesInto(history []float64, horizon int, levels, dst []float64, ws *Workspace) []float64
}

// QuantilesInto invokes fc's quantile fast path when it has one. Unknown
// (external) forecasters degrade to a point mass: the point forecast
// replicated at every level.
func QuantilesInto(fc Forecaster, history []float64, horizon int, levels, dst []float64, ws *Workspace) []float64 {
	if qf, ok := fc.(QuantileForecaster); ok {
		return qf.ForecastQuantilesInto(history, horizon, levels, dst, ws)
	}
	if horizon <= 0 || len(levels) == 0 {
		return nil
	}
	dst = ensureDst(dst, len(levels)*horizon)
	pt := Into(fc, history, horizon, dst[:horizon], ws)
	if len(pt) > horizon {
		pt = pt[:horizon]
	}
	copy(dst[:horizon], pt)
	for t := len(pt); t < horizon; t++ {
		dst[t] = 0
	}
	for q := 1; q < len(levels); q++ {
		copy(dst[q*horizon:(q+1)*horizon], dst[:horizon])
	}
	return dst
}

// ForecastQuantiles is the allocating wrapper: one freshly allocated
// row per level, rows ordered like levels.
func ForecastQuantiles(fc Forecaster, history []float64, horizon int, levels []float64) [][]float64 {
	flat := QuantilesInto(fc, history, horizon, levels, nil, nil)
	if flat == nil {
		return nil
	}
	out := make([][]float64, len(levels))
	for q := range out {
		out[q] = flat[q*horizon : (q+1)*horizon : (q+1)*horizon]
	}
	return out
}

// GaussianQuantilesInto is the building block for forecasters outside
// this package (the Aquatope LSTM baseline, BYOM adapters): expand an
// already-clamped point trajectory and a per-step scale into level-major
// quantile curves with the same monotonicity, finiteness, and clamp
// guarantees as the built-in kernels. horizon is len(point); sig must
// have the same length (entries are sanitized like guardSigma).
func GaussianQuantilesInto(point, sig, levels, dst []float64, ws *Workspace) []float64 {
	horizon := len(point)
	if horizon <= 0 || len(levels) == 0 || len(sig) != horizon {
		return nil
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	dst = ensureDst(dst, len(levels)*horizon)
	s := ws.qSig(horizon)
	for t, v := range sig {
		s[t] = guardSigma(v)
	}
	fillQuantilesWS(dst, point, s, levels, horizon, ws)
	return dst
}

// quantileZ maps a probability level to a standard-normal z-score.
// Degenerate levels are clamped into (0, 1) so the result is always
// finite; a NaN level means "the point forecast" and maps to z = 0.
func quantileZ(level float64) float64 {
	if level != level {
		return 0
	}
	const eps = 1e-9
	if level < eps {
		level = eps
	}
	if level > 1-eps {
		level = 1 - eps
	}
	return normalQuantile(level)
}

// normalQuantile is Acklam's rational approximation to the inverse
// standard-normal CDF (relative error < 1.2e-9): deterministic, branch
// few, and dependency free. p must be in (0, 1).
func normalQuantile(p float64) float64 {
	const (
		a0 = -3.969683028665376e+01
		a1 = 2.209460984245205e+02
		a2 = -2.759285104469687e+02
		a3 = 1.383577518672690e+02
		a4 = -3.066479806614716e+01
		a5 = 2.506628277459239e+00

		b0 = -5.447609879822406e+01
		b1 = 1.615858368580409e+02
		b2 = -1.556989798598866e+02
		b3 = 6.680131188771972e+01
		b4 = -1.328068155288572e+01

		c0 = -7.784894002430293e-03
		c1 = -3.223964580411365e-01
		c2 = -2.400758277161838e+00
		c3 = -2.549732539343734e+00
		c4 = 4.374664141464968e+00
		c5 = 2.938163982698783e+00

		d0 = 7.784695709041462e-03
		d1 = 3.224671290700398e-01
		d2 = 2.445134137142996e+00
		d3 = 3.754408661907416e+00

		plow = 0.02425
	)
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c0*q+c1)*q+c2)*q+c3)*q+c4)*q + c5) /
			((((d0*q+d1)*q+d2)*q+d3)*q + 1)
	case p > 1-plow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c0*q+c1)*q+c2)*q+c3)*q+c4)*q + c5) /
			((((d0*q+d1)*q+d2)*q+d3)*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a0*r+a1)*r+a2)*r+a3)*r+a4)*r + a5) * q /
			(((((b0*r+b1)*r+b2)*r+b3)*r+b4)*r + 1)
	}
}

// guardSigma sanitizes a scale estimate: NaN, infinite, or negative
// spreads (all reachable from pathological histories) collapse to 0,
// which degrades the quantile curves to the point forecast instead of
// poisoning them.
func guardSigma(s float64) float64 {
	if s != s || s < 0 || math.IsInf(s, 0) {
		return 0
	}
	return s
}

// histStd is the sample standard deviation of the window, the graceful
// spread estimate used when a forecaster's model-based one is
// unavailable (fit failure, history too short for the model).
func histStd(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	var sse float64
	for _, v := range xs {
		e := v - m
		sse += e * e
	}
	return guardSigma(math.Sqrt(sse / float64(len(xs)-1)))
}

// qPoint returns the horizon-length point-trajectory scratch.
func (ws *Workspace) qPoint(n int) []float64 {
	ws.qpt = growF(ws.qpt, n)
	return ws.qpt
}

// qSig returns the horizon-length per-step scale scratch.
func (ws *Workspace) qSig(n int) []float64 {
	ws.qsig = growF(ws.qsig, n)
	return ws.qsig
}

// computeZWS fills ws.qz with each level's z-score, then forces the
// scores monotone non-decreasing in level. The rational approximation
// has ~1e-9 seams between its regions; without this pass two levels
// straddling a seam could produce curves that cross by a ulp, which
// would break the never-crossing guarantee the policy layer relies on.
// NaN levels (z = 0, "point forecast") are excluded — they are
// incomparable and never ordered against real levels.
func computeZWS(levels []float64, ws *Workspace) []float64 {
	z := growF(ws.qz, len(levels))
	ws.qz = z
	for i, p := range levels {
		z[i] = quantileZ(p)
	}
	ord := growI(ws.qord, len(levels))
	ws.qord = ord
	m := 0
	for i, p := range levels {
		if p == p {
			ord[m] = i
			m++
		}
	}
	ord = ord[:m]
	// Insertion sort by level (levels lists are tiny); stable, so
	// duplicate levels keep their relative order and end with equal z.
	for i := 1; i < m; i++ {
		for j := i; j > 0 && levels[ord[j]] < levels[ord[j-1]]; j-- {
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}
	for j := 1; j < m; j++ {
		if z[ord[j]] < z[ord[j-1]] {
			z[ord[j]] = z[ord[j-1]]
		}
	}
	return z
}

// fillQuantilesWS expands a point trajectory plus a per-step scale into
// the level-major destination: dst[q*horizon+t] = point[t] + z_q*sig[t],
// clamped exactly like the point kernels clamp. point must already
// carry the point path's clamps so the 0.5 level reproduces ForecastInto
// bit for bit; sig must be guardSigma-sanitized (>= 0, finite).
func fillQuantilesWS(dst, point, sig, levels []float64, horizon int, ws *Workspace) {
	z := computeZWS(levels, ws)
	for q := range levels {
		row := dst[q*horizon : (q+1)*horizon]
		zq := z[q]
		for t := range row {
			v := point[t] + zq*sig[t]
			if v < 0 || v != v {
				v = 0
			}
			row[t] = v
		}
	}
}

// fillConstQuantilesWS is fillQuantilesWS for a constant point forecast
// with a horizon-independent scale — the degenerate-history path shared
// by several forecasters.
func fillConstQuantilesWS(dst []float64, base, sigma float64, levels []float64, horizon int, ws *Workspace) {
	if base < 0 || base != base {
		base = 0
	}
	sigma = guardSigma(sigma)
	z := computeZWS(levels, ws)
	for q := range levels {
		v := base + z[q]*sigma
		if v < 0 || v != v {
			v = 0
		}
		row := dst[q*horizon : (q+1)*horizon]
		for t := range row {
			row[t] = v
		}
	}
}

// windowQuantilesInto is the keep-alive family's quantile kernel: each
// level's curve is the flat empirical level-quantile (nearest-rank,
// rounding up, so levels at or above (n-1)/n hit the window max) of the
// trailing window. NaN window values are ignored — they never raise the
// point kernels' peak either — and negatives clamp to zero exactly like
// the point paths, whose running peak starts at 0. A window with no
// finite values degenerates to a zero point mass; a NaN level falls
// back to the point forecast (the max), mirroring Markov's convention.
// ceilWarm applies CeilPeak's keep-warm rounding per level.
func windowQuantilesInto(history []float64, horizon, window int, levels, dst []float64, ws *Workspace, ceilWarm bool) []float64 {
	if horizon <= 0 || len(levels) == 0 {
		return nil
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	dst = ensureDst(dst, len(levels)*horizon)
	w := window
	if w > len(history) {
		w = len(history)
	}
	buf := growF(ws.qres, w)[:0]
	for _, v := range history[len(history)-w:] {
		if v != v {
			continue
		}
		if v < 0 {
			v = 0
		}
		buf = append(buf, v)
	}
	ws.qres = buf[:cap(buf)]
	n := len(buf)
	if n == 0 {
		fillConstQuantilesWS(dst, 0, 0, levels, horizon, ws)
		return dst
	}
	sort.Float64s(buf)
	for q, lv := range levels {
		v := buf[n-1] // NaN level or lv >= 1: the envelope itself
		switch {
		case lv != lv:
		case lv <= 0:
			v = buf[0]
		case lv < 1:
			idx := int(math.Ceil(lv*float64(n))) - 1
			if idx < 0 {
				idx = 0
			} else if idx >= n {
				idx = n - 1
			}
			v = buf[idx]
		}
		if ceilWarm && v > 0 {
			v = math.Ceil(v)
		}
		constantInto(dst[q*horizon:(q+1)*horizon], v)
	}
	return dst
}

// pointMassQuantilesInto replicates the point forecast at every level —
// the quantile semantics of forecasters with no error model or demand
// distribution to draw from (naive last-value hold, the zero floor, and
// any external forecaster without a quantile path).
func pointMassQuantilesInto(fc IntoForecaster, history []float64, horizon int, levels, dst []float64, ws *Workspace) []float64 {
	if horizon <= 0 || len(levels) == 0 {
		return nil
	}
	dst = ensureDst(dst, len(levels)*horizon)
	pt := fc.ForecastInto(history, horizon, dst[:horizon], ws)
	copy(dst[:horizon], pt)
	for q := 1; q < len(levels); q++ {
		copy(dst[q*horizon:(q+1)*horizon], dst[:horizon])
	}
	return dst
}
