package forecast

import (
	"fmt"
	"math"
	"sort"
)

// SETAR is a Self-Excitation Threshold AutoRegressive forecaster: the series
// is partitioned into regimes by thresholds on the most recent value, and a
// separate AR model is fit per regime. SETAR handles piece-wise linear,
// non-stationary patterns that defeat a single AR fit (§4.3.2) — e.g. an
// application that alternates between an idle regime and a busy regime with
// different dynamics.
type SETAR struct {
	lags       int
	thresholds int // number of thresholds => thresholds+1 regimes
}

// NewSETAR returns a SETAR forecaster with the given lags and up to the
// given number of thresholds (the paper uses 10 lags, up to 2 thresholds).
func NewSETAR(lags, thresholds int) *SETAR {
	if lags < 1 {
		lags = 1
	}
	if thresholds < 1 {
		thresholds = 1
	}
	return &SETAR{lags: lags, thresholds: thresholds}
}

// Name implements Forecaster.
func (s *SETAR) Name() string { return fmt.Sprintf("setar%d-%d", s.lags, s.thresholds) }

// Forecast implements Forecaster.
func (s *SETAR) Forecast(history []float64, horizon int) []float64 {
	return s.ForecastInto(history, horizon, nil, nil)
}

// ForecastInto implements IntoForecaster.
func (s *SETAR) ForecastInto(history []float64, horizon int, dst []float64, ws *Workspace) []float64 {
	if horizon <= 0 {
		return nil
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	thr := regimeThresholdsWS(history, s.thresholds, ws)
	if len(thr) == 0 {
		// Degenerate (constant or tiny) history: plain AR fallback.
		return arForecastInto(history, horizon, s.lags, dst, ws)
	}
	// Partition training rows by regime of y_{t-1}.
	nRegimes := len(thr) + 1
	rows := len(history) - s.lags
	if rows < s.lags+2 {
		return arForecastInto(history, horizon, s.lags, dst, ws)
	}
	dst = ensureDst(dst, horizon)
	// Bucket row indices by regime, preserving increasing-row order within
	// each regime: one pass per regime into a shared index buffer, with
	// rowOff marking each regime's span.
	rowIdx := growI(ws.rowIdx, rows)
	ws.rowIdx = rowIdx
	rowOff := growI(ws.rowOff, nRegimes+1)
	ws.rowOff = rowOff
	pos := 0
	for reg := 0; reg < nRegimes; reg++ {
		rowOff[reg] = pos
		for r := 0; r < rows; r++ {
			if regimeOf(history[r+s.lags-1], thr) == reg {
				rowIdx[pos] = r
				pos++
			}
		}
	}
	rowOff[nRegimes] = pos
	// Fit one AR per regime plus the global fallback; each fit's
	// coefficients are copied out of the shared solver scratch into the
	// workspace coefficient store before the next fit reuses it.
	cols := s.lags + 1
	coefStore := growF(ws.coef, (nRegimes+1)*cols)
	ws.coef = coefStore
	fitOK := growBool(ws.fitOK, nRegimes+1)
	ws.fitOK = fitOK
	for reg := 0; reg < nRegimes; reg++ {
		coef, ok := fitARRowsWS(history, rowIdx[rowOff[reg]:rowOff[reg+1]], s.lags, ws)
		fitOK[reg] = ok
		if ok {
			copy(coefStore[reg*cols:(reg+1)*cols], coef)
		}
	}
	globalCoef, globalOK := fitARWS(history, s.lags, ws)
	fitOK[nRegimes] = globalOK
	if globalOK {
		copy(coefStore[nRegimes*cols:], globalCoef)
	}
	histMean := mean(history)

	buf := growBuf(ws.buf, history, horizon)
	for t := 0; t < horizon; t++ {
		reg := regimeOf(buf[len(buf)-1], thr)
		var coef []float64
		switch {
		case fitOK[reg]:
			coef = coefStore[reg*cols : (reg+1)*cols]
		case globalOK:
			coef = coefStore[nRegimes*cols:]
		default:
			dst[t] = histMean
			buf = append(buf, dst[t])
			continue
		}
		v := coef[0]
		for l := 1; l <= s.lags; l++ {
			idx := len(buf) - l
			if idx >= 0 {
				v += coef[l] * buf[idx]
			}
		}
		if v < 0 || v != v {
			v = 0
		}
		dst[t] = v
		buf = append(buf, v)
	}
	ws.buf = buf[:0]
	return dst
}

// ForecastQuantilesInto implements QuantileForecaster. The regime fits
// are re-run exactly like the point path; the band scale is the pooled
// in-sample one-step residual of the per-row forecasts under the same
// regime → global → mean fallback chain the forecast loop uses, widened
// by sqrt(t+1) for the compounding rolled-forward horizon.
func (s *SETAR) ForecastQuantilesInto(history []float64, horizon int, levels, dst []float64, ws *Workspace) []float64 {
	if horizon <= 0 || len(levels) == 0 {
		return nil
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	thr := regimeThresholdsWS(history, s.thresholds, ws)
	rows := len(history) - s.lags
	if len(thr) == 0 || rows < s.lags+2 {
		return arQuantilesInto(history, horizon, s.lags, levels, dst, ws)
	}
	dst = ensureDst(dst, len(levels)*horizon)
	// Fit phase: identical call sequence to ForecastInto, so the
	// coefficients (and the 0.5-level trajectory) are bit-identical.
	nRegimes := len(thr) + 1
	rowIdx := growI(ws.rowIdx, rows)
	ws.rowIdx = rowIdx
	rowOff := growI(ws.rowOff, nRegimes+1)
	ws.rowOff = rowOff
	pos := 0
	for reg := 0; reg < nRegimes; reg++ {
		rowOff[reg] = pos
		for r := 0; r < rows; r++ {
			if regimeOf(history[r+s.lags-1], thr) == reg {
				rowIdx[pos] = r
				pos++
			}
		}
	}
	rowOff[nRegimes] = pos
	cols := s.lags + 1
	coefStore := growF(ws.coef, (nRegimes+1)*cols)
	ws.coef = coefStore
	fitOK := growBool(ws.fitOK, nRegimes+1)
	ws.fitOK = fitOK
	for reg := 0; reg < nRegimes; reg++ {
		coef, ok := fitARRowsWS(history, rowIdx[rowOff[reg]:rowOff[reg+1]], s.lags, ws)
		fitOK[reg] = ok
		if ok {
			copy(coefStore[reg*cols:(reg+1)*cols], coef)
		}
	}
	globalCoef, globalOK := fitARWS(history, s.lags, ws)
	fitOK[nRegimes] = globalOK
	if globalOK {
		copy(coefStore[nRegimes*cols:], globalCoef)
	}
	histMean := mean(history)

	// Pooled one-step residuals over the training rows.
	drow := growF(ws.drow, cols)
	ws.drow = drow
	var sse float64
	for r := 0; r < rows; r++ {
		reg := regimeOf(history[r+s.lags-1], thr)
		var coef []float64
		switch {
		case fitOK[reg]:
			coef = coefStore[reg*cols : (reg+1)*cols]
		case globalOK:
			coef = coefStore[nRegimes*cols:]
		}
		var pred float64
		if coef != nil {
			arDesignRow(history, r, s.lags, drow)
			for j, c := range coef {
				pred += c * drow[j]
			}
		} else {
			pred = histMean
		}
		e := history[r+s.lags] - pred
		sse += e * e
	}
	denom := rows - cols
	if denom < 1 {
		denom = 1
	}
	sigma := guardSigma(math.Sqrt(sse / float64(denom)))

	// Point trajectory: the exact rolling loop from ForecastInto.
	qpt := ws.qPoint(horizon)
	buf := growBuf(ws.buf, history, horizon)
	for t := 0; t < horizon; t++ {
		reg := regimeOf(buf[len(buf)-1], thr)
		var coef []float64
		switch {
		case fitOK[reg]:
			coef = coefStore[reg*cols : (reg+1)*cols]
		case globalOK:
			coef = coefStore[nRegimes*cols:]
		default:
			qpt[t] = histMean
			buf = append(buf, qpt[t])
			continue
		}
		v := coef[0]
		for l := 1; l <= s.lags; l++ {
			idx := len(buf) - l
			if idx >= 0 {
				v += coef[l] * buf[idx]
			}
		}
		if v < 0 || v != v {
			v = 0
		}
		qpt[t] = v
		buf = append(buf, v)
	}
	ws.buf = buf[:0]

	sig := ws.qSig(horizon)
	for t := range sig {
		sig[t] = sigma * math.Sqrt(float64(t+1))
	}
	fillQuantilesWS(dst, qpt, sig, levels, horizon, ws)
	return dst
}

// fitARRowsWS fits an AR(lags) model using only the given training rows
// (row r predicts history[r+lags] from the preceding lags values),
// accumulating the normal equations directly into workspace buffers in
// the same term order as mathx.LeastSquares over the materialized rows.
// The returned slice is solver scratch, invalidated by the next fit.
func fitARRowsWS(history []float64, rowIdx []int, lags int, ws *Workspace) ([]float64, bool) {
	if len(rowIdx) < lags+2 {
		return nil, false
	}
	cols := lags + 1
	xtx := growZeroF(ws.xtx, cols*cols)
	ws.xtx = xtx
	xty := growZeroF(ws.xty, cols)
	ws.xty = xty
	row := growF(ws.drow, cols)
	ws.drow = row
	for _, r := range rowIdx {
		arDesignRow(history, r, lags, row)
		accumulateARRow(xtx, xty, row, history[r+lags], cols)
	}
	return solveNormalEquations(xtx, xty, cols, ws)
}

// regimeThresholdsWS picks up to k thresholds at evenly spaced quantiles
// of the history, like the reference regimeThresholds, but sorts into the
// workspace quantile buffer. It returns an empty slice when the history
// has no spread (all regimes would coincide).
func regimeThresholdsWS(history []float64, k int, ws *Workspace) []float64 {
	if len(history) < 4 {
		return nil
	}
	sorted := growF(ws.sorted, len(history))
	ws.sorted = sorted
	copy(sorted, history)
	sort.Float64s(sorted)
	if sorted[0] == sorted[len(sorted)-1] {
		return nil
	}
	if cap(ws.thr) < k {
		ws.thr = make([]float64, 0, k)
	}
	out := ws.thr[:0]
	for i := 1; i <= k; i++ {
		q := float64(i) / float64(k+1)
		v := sorted[int(q*float64(len(sorted)-1))]
		if len(out) == 0 || v > out[len(out)-1] {
			out = append(out, v)
		}
	}
	ws.thr = out
	return out
}

// regimeOf returns the regime index of value v given ascending thresholds.
func regimeOf(v float64, thr []float64) int {
	for i, t := range thr {
		if v <= t {
			return i
		}
	}
	return len(thr)
}
