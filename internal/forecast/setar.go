package forecast

import (
	"fmt"
	"sort"

	"github.com/ubc-cirrus-lab/femux-go/internal/mathx"
)

// SETAR is a Self-Excitation Threshold AutoRegressive forecaster: the series
// is partitioned into regimes by thresholds on the most recent value, and a
// separate AR model is fit per regime. SETAR handles piece-wise linear,
// non-stationary patterns that defeat a single AR fit (§4.3.2) — e.g. an
// application that alternates between an idle regime and a busy regime with
// different dynamics.
type SETAR struct {
	lags       int
	thresholds int // number of thresholds => thresholds+1 regimes
}

// NewSETAR returns a SETAR forecaster with the given lags and up to the
// given number of thresholds (the paper uses 10 lags, up to 2 thresholds).
func NewSETAR(lags, thresholds int) *SETAR {
	if lags < 1 {
		lags = 1
	}
	if thresholds < 1 {
		thresholds = 1
	}
	return &SETAR{lags: lags, thresholds: thresholds}
}

// Name implements Forecaster.
func (s *SETAR) Name() string { return fmt.Sprintf("setar%d-%d", s.lags, s.thresholds) }

// Forecast implements Forecaster.
func (s *SETAR) Forecast(history []float64, horizon int) []float64 {
	if horizon <= 0 {
		return nil
	}
	thr := regimeThresholds(history, s.thresholds)
	if len(thr) == 0 {
		// Degenerate (constant or tiny) history: plain AR fallback.
		return NewAR(s.lags).Forecast(history, horizon)
	}
	// Fit one AR per regime over the observations whose delay-1 value
	// falls in that regime.
	type regimeFit struct {
		coef []float64
		ok   bool
	}
	nRegimes := len(thr) + 1
	fits := make([]regimeFit, nRegimes)
	// Partition training rows by regime of y_{t-1}.
	rows := len(history) - s.lags
	if rows < s.lags+2 {
		return NewAR(s.lags).Forecast(history, horizon)
	}
	regimeRows := make([][]int, nRegimes)
	for r := 0; r < rows; r++ {
		reg := regimeOf(history[r+s.lags-1], thr)
		regimeRows[reg] = append(regimeRows[reg], r)
	}
	for reg := 0; reg < nRegimes; reg++ {
		coef, ok := fitARRows(history, regimeRows[reg], s.lags)
		fits[reg] = regimeFit{coef: coef, ok: ok}
	}
	// Global fallback coefficients.
	globalCoef, globalOK := fitAR(history, s.lags)

	buf := append([]float64(nil), history...)
	out := make([]float64, horizon)
	for t := 0; t < horizon; t++ {
		reg := regimeOf(buf[len(buf)-1], thr)
		var coef []float64
		switch {
		case fits[reg].ok:
			coef = fits[reg].coef
		case globalOK:
			coef = globalCoef
		default:
			out[t] = mean(history)
			buf = append(buf, out[t])
			continue
		}
		v := coef[0]
		for l := 1; l <= s.lags; l++ {
			idx := len(buf) - l
			if idx >= 0 {
				v += coef[l] * buf[idx]
			}
		}
		if v < 0 || v != v {
			v = 0
		}
		out[t] = v
		buf = append(buf, v)
	}
	return out
}

// fitARRows fits an AR(lags) model using only the given training rows
// (row r predicts history[r+lags] from the preceding lags values).
func fitARRows(history []float64, rowIdx []int, lags int) ([]float64, bool) {
	if len(rowIdx) < lags+2 {
		return nil, false
	}
	x := make([][]float64, len(rowIdx))
	y := make([]float64, len(rowIdx))
	for i, r := range rowIdx {
		row := make([]float64, lags+1)
		row[0] = 1
		for l := 1; l <= lags; l++ {
			row[l] = history[r+lags-l]
		}
		x[i] = row
		y[i] = history[r+lags]
	}
	coef, err := mathx.LeastSquares(x, y)
	if err != nil {
		return nil, false
	}
	return coef, true
}

// regimeThresholds picks up to k thresholds at evenly spaced quantiles of
// the history. It returns nil when the history has no spread (all regimes
// would coincide).
func regimeThresholds(history []float64, k int) []float64 {
	if len(history) < 4 {
		return nil
	}
	sorted := append([]float64(nil), history...)
	sort.Float64s(sorted)
	if sorted[0] == sorted[len(sorted)-1] {
		return nil
	}
	out := make([]float64, 0, k)
	for i := 1; i <= k; i++ {
		q := float64(i) / float64(k+1)
		v := sorted[int(q*float64(len(sorted)-1))]
		if len(out) == 0 || v > out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// regimeOf returns the regime index of value v given ascending thresholds.
func regimeOf(v float64, thr []float64) int {
	for i, t := range thr {
		if v <= t {
			return i
		}
	}
	return len(thr)
}
