package forecast

import (
	"fmt"
	"sort"
)

// MarkovChain discretizes the history into quantile states, estimates the
// state-transition matrix, and forecasts the expected value of the state
// distribution rolled forward. It captures repetitive invocation patterns —
// the paper's Fig 9 shows it learning a periodic trace "perfectly" in its
// second hour — using four states (§4.3.3).
type MarkovChain struct {
	states int
}

// NewMarkovChain returns a Markov chain forecaster with the given number of
// states (the paper uses 4).
func NewMarkovChain(states int) *MarkovChain {
	if states < 2 {
		states = 2
	}
	return &MarkovChain{states: states}
}

// Name implements Forecaster.
func (m *MarkovChain) Name() string { return fmt.Sprintf("markov%d", m.states) }

// Forecast implements Forecaster.
func (m *MarkovChain) Forecast(history []float64, horizon int) []float64 {
	if horizon <= 0 {
		return nil
	}
	if len(history) < m.states*2 {
		return constant(mean(history), horizon)
	}
	bounds, centroids := discretize(history, m.states)
	if bounds == nil {
		return constant(history[len(history)-1], horizon)
	}
	k := len(centroids)
	// Transition counts with add-one smoothing to keep the chain ergodic.
	trans := make([][]float64, k)
	for i := range trans {
		trans[i] = make([]float64, k)
		for j := range trans[i] {
			trans[i][j] = 0.1
		}
	}
	prev := stateOf(history[0], bounds)
	for i := 1; i < len(history); i++ {
		cur := stateOf(history[i], bounds)
		trans[prev][cur]++
		prev = cur
	}
	for i := range trans {
		var row float64
		for _, v := range trans[i] {
			row += v
		}
		for j := range trans[i] {
			trans[i][j] /= row
		}
	}
	// Roll the state distribution forward from the last observation.
	dist := make([]float64, k)
	dist[stateOf(history[len(history)-1], bounds)] = 1
	out := make([]float64, horizon)
	next := make([]float64, k)
	for t := 0; t < horizon; t++ {
		for j := range next {
			next[j] = 0
		}
		for i := range dist {
			if dist[i] == 0 {
				continue
			}
			for j := range next {
				next[j] += dist[i] * trans[i][j]
			}
		}
		copy(dist, next)
		var ev float64
		for j := range dist {
			ev += dist[j] * centroids[j]
		}
		out[t] = ev
	}
	return clampNonNegative(out)
}

// discretize splits the value range into up to k quantile states and returns
// the state upper bounds (len k-1) and per-state centroids. It returns nil
// bounds for a constant series.
func discretize(history []float64, k int) (bounds, centroids []float64) {
	sorted := append([]float64(nil), history...)
	sort.Float64s(sorted)
	if sorted[0] == sorted[len(sorted)-1] {
		return nil, nil
	}
	bounds = make([]float64, 0, k-1)
	for i := 1; i < k; i++ {
		q := float64(i) / float64(k)
		v := sorted[int(q*float64(len(sorted)-1))]
		if len(bounds) == 0 || v > bounds[len(bounds)-1] {
			bounds = append(bounds, v)
		}
	}
	n := len(bounds) + 1
	sums := make([]float64, n)
	counts := make([]float64, n)
	for _, v := range history {
		s := stateOf(v, bounds)
		sums[s] += v
		counts[s]++
	}
	centroids = make([]float64, n)
	for i := range centroids {
		if counts[i] > 0 {
			centroids[i] = sums[i] / counts[i]
		}
	}
	return bounds, centroids
}

// stateOf maps a value to its state index given ascending upper bounds.
func stateOf(v float64, bounds []float64) int {
	for i, b := range bounds {
		if v <= b {
			return i
		}
	}
	return len(bounds)
}
