package forecast

import (
	"fmt"
	"sort"
)

// MarkovChain discretizes the history into quantile states, estimates the
// state-transition matrix, and forecasts the expected value of the state
// distribution rolled forward. It captures repetitive invocation patterns —
// the paper's Fig 9 shows it learning a periodic trace "perfectly" in its
// second hour — using four states (§4.3.3).
type MarkovChain struct {
	states int
}

// NewMarkovChain returns a Markov chain forecaster with the given number of
// states (the paper uses 4).
func NewMarkovChain(states int) *MarkovChain {
	if states < 2 {
		states = 2
	}
	return &MarkovChain{states: states}
}

// Name implements Forecaster.
func (m *MarkovChain) Name() string { return fmt.Sprintf("markov%d", m.states) }

// Forecast implements Forecaster.
func (m *MarkovChain) Forecast(history []float64, horizon int) []float64 {
	return m.ForecastInto(history, horizon, nil, nil)
}

// ForecastInto implements IntoForecaster. The transition matrix is a flat
// row-major workspace buffer and the state distributions live in reused
// slices; the non-negativity clamp is folded into the expected-value
// write.
func (m *MarkovChain) ForecastInto(history []float64, horizon int, dst []float64, ws *Workspace) []float64 {
	if horizon <= 0 {
		return nil
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	dst = ensureDst(dst, horizon)
	if len(history) < m.states*2 {
		constantInto(dst, mean(history))
		return dst
	}
	bounds, centroids := discretizeWS(history, m.states, ws)
	if bounds == nil {
		constantInto(dst, history[len(history)-1])
		return dst
	}
	k := len(centroids)
	// Transition counts with add-one smoothing to keep the chain ergodic.
	trans := growF(ws.trans, k*k)
	ws.trans = trans
	for i := range trans {
		trans[i] = 0.1
	}
	prev := stateOf(history[0], bounds)
	for i := 1; i < len(history); i++ {
		cur := stateOf(history[i], bounds)
		trans[prev*k+cur]++
		prev = cur
	}
	for i := 0; i < k; i++ {
		tRow := trans[i*k : i*k+k]
		var row float64
		for _, v := range tRow {
			row += v
		}
		for j := range tRow {
			tRow[j] /= row
		}
	}
	// Roll the state distribution forward from the last observation.
	dist := growZeroF(ws.dist, k)
	ws.dist = dist
	dist[stateOf(history[len(history)-1], bounds)] = 1
	next := growF(ws.next, k)
	ws.next = next
	for t := 0; t < horizon; t++ {
		for j := range next {
			next[j] = 0
		}
		for i := range dist {
			if dist[i] == 0 {
				continue
			}
			tRow := trans[i*k : i*k+k]
			for j := range next {
				next[j] += dist[i] * tRow[j]
			}
		}
		copy(dist, next)
		var ev float64
		for j := range dist {
			ev += dist[j] * centroids[j]
		}
		if ev < 0 || ev != ev {
			ev = 0
		}
		dst[t] = ev
	}
	return dst
}

// ForecastQuantilesInto implements QuantileForecaster. Unlike the
// Gaussian-band forecasters, the Markov chain carries a full predictive
// distribution — the state distribution it rolls forward — so each
// requested level reads an exact discrete quantile off the cumulative
// state probabilities in ascending-centroid order. No normal
// approximation is involved, and a NaN level falls back to the expected
// value (the point forecast).
func (m *MarkovChain) ForecastQuantilesInto(history []float64, horizon int, levels, dst []float64, ws *Workspace) []float64 {
	if horizon <= 0 || len(levels) == 0 {
		return nil
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	dst = ensureDst(dst, len(levels)*horizon)
	if len(history) < m.states*2 {
		fillConstQuantilesWS(dst, mean(history), histStd(history), levels, horizon, ws)
		return dst
	}
	bounds, centroids := discretizeWS(history, m.states, ws)
	if bounds == nil {
		fillConstQuantilesWS(dst, history[len(history)-1], 0, levels, horizon, ws)
		return dst
	}
	k := len(centroids)
	// Pre-apply the output clamp to the centroids: the point path clamps
	// per emitted value, and clamping before the sort keeps the
	// ascending-centroid order consistent with the clamped outputs (a
	// NaN centroid from a NaN-gapped history would otherwise sort
	// arbitrarily and break monotonicity after clamping).
	for i, c := range centroids {
		if c < 0 || c != c {
			centroids[i] = 0
		}
	}
	trans := growF(ws.trans, k*k)
	ws.trans = trans
	for i := range trans {
		trans[i] = 0.1
	}
	prev := stateOf(history[0], bounds)
	for i := 1; i < len(history); i++ {
		cur := stateOf(history[i], bounds)
		trans[prev*k+cur]++
		prev = cur
	}
	for i := 0; i < k; i++ {
		tRow := trans[i*k : i*k+k]
		var row float64
		for _, v := range tRow {
			row += v
		}
		for j := range tRow {
			tRow[j] /= row
		}
	}
	dist := growZeroF(ws.dist, k)
	ws.dist = dist
	dist[stateOf(history[len(history)-1], bounds)] = 1
	next := growF(ws.next, k)
	ws.next = next
	// States in ascending-centroid order (insertion sort; k is tiny).
	// Empty buckets carry centroid 0, so index order is not value order.
	ord := growI(ws.qord, k)
	ws.qord = ord
	for i := range ord {
		ord[i] = i
	}
	for i := 1; i < k; i++ {
		for j := i; j > 0 && centroids[ord[j]] < centroids[ord[j-1]]; j-- {
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}
	for t := 0; t < horizon; t++ {
		for j := range next {
			next[j] = 0
		}
		for i := range dist {
			if dist[i] == 0 {
				continue
			}
			tRow := trans[i*k : i*k+k]
			for j := range next {
				next[j] += dist[i] * tRow[j]
			}
		}
		copy(dist, next)
		var ev float64
		for j := range dist {
			ev += dist[j] * centroids[j]
		}
		if ev < 0 || ev != ev {
			ev = 0
		}
		for q, level := range levels {
			var v float64
			if level != level {
				v = ev
			} else {
				// Walk the cumulative distribution in centroid order; the
				// epsilon absorbs cumulative-sum rounding so level 1.0
				// still lands on the last state.
				idx := ord[k-1]
				var cum float64
				for _, s := range ord {
					cum += dist[s]
					if cum+1e-12 >= level {
						idx = s
						break
					}
				}
				v = centroids[idx]
			}
			if v < 0 || v != v {
				v = 0
			}
			dst[q*horizon+t] = v
		}
	}
	return dst
}

// discretizeWS splits the value range into up to k quantile states like
// the reference discretize, using the workspace quantile and moment
// buffers. It returns nil bounds for a constant series.
func discretizeWS(history []float64, k int, ws *Workspace) (bounds, centroids []float64) {
	sorted := growF(ws.sorted, len(history))
	ws.sorted = sorted
	copy(sorted, history)
	sort.Float64s(sorted)
	if sorted[0] == sorted[len(sorted)-1] {
		return nil, nil
	}
	if ws.bounds == nil || cap(ws.bounds) < k-1 {
		ws.bounds = make([]float64, 0, k)
	}
	bounds = ws.bounds[:0]
	for i := 1; i < k; i++ {
		q := float64(i) / float64(k)
		v := sorted[int(q*float64(len(sorted)-1))]
		if len(bounds) == 0 || v > bounds[len(bounds)-1] {
			bounds = append(bounds, v)
		}
	}
	ws.bounds = bounds
	n := len(bounds) + 1
	sums := growZeroF(ws.sums, n)
	ws.sums = sums
	counts := growZeroF(ws.counts, n)
	ws.counts = counts
	for _, v := range history {
		s := stateOf(v, bounds)
		sums[s] += v
		counts[s]++
	}
	centroids = growF(ws.centroids, n)
	ws.centroids = centroids
	for i := range centroids {
		if counts[i] > 0 {
			centroids[i] = sums[i] / counts[i]
		} else {
			centroids[i] = 0
		}
	}
	return bounds, centroids
}

// stateOf maps a value to its state index given ascending upper bounds.
func stateOf(v float64, bounds []float64) int {
	for i, b := range bounds {
		if v <= b {
			return i
		}
	}
	return len(bounds)
}
