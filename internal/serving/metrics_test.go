package serving

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func scrape(t *testing.T, reg *Registry) string {
	t.Helper()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestCounterRender(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("femux_test_total", "A test counter.", "endpoint", "code")
	c.Inc("observe", "200")
	c.Add(2, "observe", "200")
	c.Inc("target", "400")
	out := scrape(t, reg)
	for _, want := range []string{
		"# HELP femux_test_total A test counter.",
		"# TYPE femux_test_total counter",
		`femux_test_total{endpoint="observe",code="200"} 3`,
		`femux_test_total{endpoint="target",code="400"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q in:\n%s", want, out)
		}
	}
	if got := c.Value("observe", "200"); got != 3 {
		t.Errorf("Value = %v", got)
	}
	if got := c.Sum(); got != 4 {
		t.Errorf("Sum = %v", got)
	}
}

func TestGaugeSetAddReset(t *testing.T) {
	reg := NewRegistry()
	g := reg.NewGauge("femux_gauge", "g.", "which")
	g.Set(5, "a")
	g.Add(-2, "a")
	if got := g.Value("a"); got != 3 {
		t.Errorf("gauge = %v", got)
	}
	out := scrape(t, reg)
	if !strings.Contains(out, `femux_gauge{which="a"} 3`) {
		t.Errorf("scrape:\n%s", out)
	}
	g.Reset()
	g.Set(7, "b")
	out = scrape(t, reg)
	if strings.Contains(out, `which="a"`) {
		t.Errorf("reset left old child:\n%s", out)
	}
	if !strings.Contains(out, `femux_gauge{which="b"} 7`) {
		t.Errorf("scrape after reset:\n%s", out)
	}
}

func TestGaugeFuncAndScrapeHook(t *testing.T) {
	reg := NewRegistry()
	v := 1.5
	reg.NewGaugeFunc("femux_fn", "fn gauge.", func() float64 { return v })
	hooked := 0
	reg.OnScrape(func() { hooked++ })
	out := scrape(t, reg)
	if !strings.Contains(out, "femux_fn 1.5") {
		t.Errorf("scrape:\n%s", out)
	}
	if hooked != 1 {
		t.Errorf("scrape hook ran %d times", hooked)
	}
	v = 2
	out = scrape(t, reg)
	if !strings.Contains(out, "femux_fn 2") {
		t.Errorf("scrape after change:\n%s", out)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("femux_lat_seconds", "latency.", []float64{0.01, 0.1, 1}, "endpoint")
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v, "observe")
	}
	out := scrape(t, reg)
	for _, want := range []string{
		`femux_lat_seconds_bucket{endpoint="observe",le="0.01"} 1`,
		`femux_lat_seconds_bucket{endpoint="observe",le="0.1"} 3`,
		`femux_lat_seconds_bucket{endpoint="observe",le="1"} 4`,
		`femux_lat_seconds_bucket{endpoint="observe",le="+Inf"} 5`,
		`femux_lat_seconds_count{endpoint="observe"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q in:\n%s", want, out)
		}
	}
	if got := h.Count("observe"); got != 5 {
		t.Errorf("Count = %d", got)
	}
	// Boundary value lands in its own bucket (le is inclusive).
	h.Observe(0.01, "edge")
	out = scrape(t, reg)
	if !strings.Contains(out, `femux_lat_seconds_bucket{endpoint="edge",le="0.01"} 1`) {
		t.Errorf("inclusive upper bound violated:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("femux_esc_total", "escaping.", "app")
	c.Inc(`we"ird\app` + "\n")
	out := scrape(t, reg)
	if !strings.Contains(out, `femux_esc_total{app="we\"ird\\app\n"} 1`) {
		t.Errorf("escaping wrong:\n%s", out)
	}
}

func TestRegisterIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.NewCounter("femux_dup_total", "dup.")
	b := reg.NewCounter("femux_dup_total", "dup.")
	a.Inc()
	b.Inc()
	out := scrape(t, reg)
	if !strings.Contains(out, "femux_dup_total 2") {
		t.Errorf("re-registration should share state:\n%s", out)
	}
	if strings.Count(out, "# TYPE femux_dup_total") != 1 {
		t.Errorf("family rendered twice:\n%s", out)
	}
}

func TestGoMetricsPresent(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterGoMetrics()
	out := scrape(t, reg)
	for _, name := range []string{"go_goroutines", "go_memstats_heap_alloc_bytes", "go_gc_cycles_total"} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("missing runtime metric %s:\n%s", name, out)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("femux_conc_total", "c.", "worker")
	h := reg.NewHistogram("femux_conc_seconds", "h.", []float64{0.5})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w%4))
			for i := 0; i < per; i++ {
				c.Inc(lbl)
				h.Observe(0.1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Sum(); got != workers*per {
		t.Errorf("counter sum = %v, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
}

// TestCounterCardinalityCap: past the cap, new label values fold into
// one {app="_other"} child — the family's sum stays exact (that is what
// femux-load's conservation checks scrape), memory stays bounded, and
// pre-cap children keep exact per-value attribution.
func TestCounterCardinalityCap(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("capped_total", "test.", "app").LimitCardinality(3)
	for i := 0; i < 50; i++ {
		c.Add(2, fmt.Sprintf("app-%d", i%10))
	}
	if got := c.Sum(); got != 100 {
		t.Fatalf("Sum = %v, want 100 (folding must not lose counts)", got)
	}
	// 5 increments each for app-0..app-2, the remaining 7 apps folded.
	for i := 0; i < 3; i++ {
		if got := c.Value(fmt.Sprintf("app-%d", i)); got != 10 {
			t.Errorf("app-%d = %v, want 10", i, got)
		}
	}
	body := scrape(t, reg)
	if !strings.Contains(body, `capped_total{app="_other"} 70`) {
		t.Errorf("scrape missing folded overflow child:\n%s", body)
	}
	if strings.Contains(body, `app="app-5"`) {
		t.Errorf("scrape leaked a beyond-cap child:\n%s", body)
	}
	// The cap counts real children; the overflow child itself must not
	// consume a slot and re-increments of pre-cap values stay attributed.
	c.Inc("app-1")
	if got := c.Value("app-1"); got != 11 {
		t.Errorf("app-1 after cap = %v, want 11", got)
	}
}
