package serving

import (
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// statusWriter captures the response status and byte count for logging and
// metrics without changing handler behavior.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush lets streaming handlers (pprof, trace) flush through the wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// EndpointLabel collapses a request path into a bounded-cardinality metric
// label: app names never leak into the endpoint dimension.
func EndpointLabel(path string) string {
	switch {
	case path == "/healthz":
		return "healthz"
	case path == "/metrics":
		return "metrics"
	case strings.HasPrefix(path, "/debug/pprof"):
		return "pprof"
	case path == "/v1/observe/batch":
		return "observe_batch"
	case strings.HasPrefix(path, "/v1/admin/"):
		return "admin_" + strings.TrimPrefix(path, "/v1/admin/")
	case strings.HasPrefix(path, "/v1/apps/"):
		rest := strings.TrimPrefix(path, "/v1/apps/")
		if i := strings.IndexByte(rest, '/'); i >= 0 && i+1 < len(rest) {
			switch action := rest[i+1:]; action {
			case "observe", "target", "forecast":
				return action
			}
		}
		return "apps_other"
	default:
		return "other"
	}
}

// HTTPMetrics bundles the per-endpoint serving metrics.
type HTTPMetrics struct {
	Requests *Counter   // femux_http_requests_total{endpoint,method,code}
	Latency  *Histogram // femux_http_request_duration_seconds{endpoint}
	InFlight *Gauge     // femux_http_in_flight_requests
}

// NewHTTPMetrics registers the serving metric families on reg.
func NewHTTPMetrics(reg *Registry) *HTTPMetrics {
	return &HTTPMetrics{
		Requests: reg.NewCounter("femux_http_requests_total",
			"HTTP requests served, by endpoint, method, and status code.",
			"endpoint", "method", "code"),
		Latency: reg.NewHistogram("femux_http_request_duration_seconds",
			"HTTP request latency by endpoint.", DefaultLatencyBuckets, "endpoint"),
		InFlight: reg.NewGauge("femux_http_in_flight_requests",
			"Requests currently being served."),
	}
}

// Instrument wraps next with request counting and latency histograms.
func (m *HTTPMetrics) Instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		endpoint := EndpointLabel(r.URL.Path)
		m.InFlight.Add(1)
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start).Seconds()
		m.InFlight.Add(-1)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		m.Requests.Inc(endpoint, r.Method, strconv.Itoa(status))
		m.Latency.Observe(elapsed, endpoint)
	})
}

// LogRequests wraps next with one structured key=value log line per
// request. Health checks and metric scrapes are logged only on failure to
// keep steady-state logs readable.
func LogRequests(logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		if status < http.StatusBadRequest &&
			(r.URL.Path == "/healthz" || r.URL.Path == "/metrics") {
			return
		}
		logger.Printf("method=%s path=%s status=%d bytes=%d dur_ms=%.3f remote=%s",
			r.Method, r.URL.Path, status, sw.bytes,
			float64(time.Since(start).Microseconds())/1000, r.RemoteAddr)
	})
}

// LimitBody rejects request bodies larger than n bytes. Handlers see the
// limit as a decode error; http.MaxBytesReader closes the connection and
// stamps the 413 status.
func LimitBody(n int64, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, n)
		}
		next.ServeHTTP(w, r)
	})
}
