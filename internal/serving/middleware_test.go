package serving

import (
	"bytes"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestEndpointLabel(t *testing.T) {
	cases := map[string]string{
		"/healthz":                 "healthz",
		"/metrics":                 "metrics",
		"/debug/pprof/profile":     "pprof",
		"/v1/admin/reload":         "admin_reload",
		"/v1/apps/foo/observe":     "observe",
		"/v1/observe/batch":        "observe_batch",
		"/v1/apps/foo/target":      "target",
		"/v1/apps/a-b.c/forecast":  "forecast",
		"/v1/apps/foo/whatever":    "apps_other",
		"/v1/apps/":                "apps_other",
		"/v1/apps/secret-app-name": "apps_other",
		"/anything/else":           "other",
	}
	for path, want := range cases {
		if got := EndpointLabel(path); got != want {
			t.Errorf("EndpointLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestInstrumentCountsAndTimes(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/apps/x/observe" {
			w.WriteHeader(http.StatusOK)
			io.WriteString(w, "ok")
			return
		}
		http.Error(w, "nope", http.StatusNotFound)
	})
	srv := httptest.NewServer(m.Instrument(inner))
	defer srv.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Post(srv.URL+"/v1/apps/x/observe", "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if got := m.Requests.Value("observe", "POST", "200"); got != 3 {
		t.Errorf("observe count = %v, want 3", got)
	}
	if got := m.Requests.Value("other", "GET", "404"); got != 1 {
		t.Errorf("404 count = %v, want 1", got)
	}
	if got := m.Latency.Count("observe"); got != 3 {
		t.Errorf("latency observations = %d, want 3", got)
	}
	if got := m.InFlight.Value(); got != 0 {
		t.Errorf("in-flight after drain = %v", got)
	}
}

func TestLogRequests(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	h := LogRequests(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz", "/metrics":
			w.WriteHeader(http.StatusOK)
		case "/boom":
			http.Error(w, "bad", http.StatusBadRequest)
		default:
			io.WriteString(w, "hello")
		}
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	for _, p := range []string{"/healthz", "/metrics", "/v1/apps/a/target", "/boom"} {
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	out := buf.String()
	if strings.Contains(out, "/healthz") || strings.Contains(out, "path=/metrics") {
		t.Errorf("health/metrics should not be logged on success:\n%s", out)
	}
	if !strings.Contains(out, "path=/v1/apps/a/target status=200 bytes=5") {
		t.Errorf("missing request log line:\n%s", out)
	}
	if !strings.Contains(out, "path=/boom status=400") {
		t.Errorf("missing error log line:\n%s", out)
	}
}

func TestLimitBody(t *testing.T) {
	h := LimitBody(16, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := io.ReadAll(r.Body); err != nil {
			http.Error(w, "too large", http.StatusRequestEntityTooLarge)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Post(srv.URL, "text/plain", strings.NewReader("small"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("small body status = %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL, "text/plain", strings.NewReader(strings.Repeat("x", 64)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status = %d, want 413", resp.StatusCode)
	}
}

func TestRunGracefulShutdown(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		io.WriteString(w, "done")
	})
	ln := httptest.NewUnstartedServer(nil)
	addr := ln.Listener.Addr().String()
	ln.Listener.Close() // free the port for our server

	srv := &http.Server{Addr: addr, Handler: mux}
	stop := make(chan struct{})
	runErr := make(chan error, 1)
	go func() { runErr <- Run(srv, stop, 5*time.Second, nil) }()

	// Wait for the listener, then park a request in-flight.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/nope")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never came up")
		}
		time.Sleep(10 * time.Millisecond)
	}
	got := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/slow")
		if err != nil {
			got <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		got <- string(b)
	}()
	<-started
	close(stop) // begin shutdown while /slow is in flight
	time.Sleep(50 * time.Millisecond)
	close(release)
	if body := <-got; body != "done" {
		t.Errorf("in-flight request dropped during shutdown: %q", body)
	}
	if err := <-runErr; err != nil {
		t.Errorf("Run returned %v", err)
	}
}
