// Package serving provides the production plumbing for the FeMux online
// serving path (Fig 13): a dependency-free Prometheus-text metrics
// registry, HTTP instrumentation and structured request-logging
// middleware, and a graceful-shutdown server runner. The paper's policy
// service lives or dies by per-request latency and observable cold-start
// accounting; this package makes the hot path measurable without pulling
// any module outside the standard library.
package serving

import (
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultLatencyBuckets covers the paper's serving-latency range: 7 ms
// mean / 25 ms p99 forecasting latency sit in the middle of the ladder.
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. All methods are safe for concurrent use; counter and
// histogram updates are lock-free on the hot path (atomic CAS on float
// bits), so instrumenting the serving loop costs nanoseconds, not mutexes.
type Registry struct {
	mu        sync.RWMutex
	families  []*family
	byName    map[string]*family
	scrapeFns []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

type family struct {
	name       string
	help       string
	kind       string // "counter", "gauge", or "histogram"
	labelNames []string
	buckets    []float64 // histograms only; must be sorted ascending

	mu       sync.RWMutex
	children map[string]*child
	order    []string
	fn       func() float64 // value callback (single-child gauges/counters)

	// maxChildren, when > 0, caps the number of distinct label sets; the
	// excess folds into one overflow child whose label values all render
	// as "_other". Family sums stay exact — only attribution is lost.
	maxChildren int
	overflow    *child
}

type child struct {
	labelPairs string // pre-rendered {a="b",c="d"} or ""

	// counter/gauge value as float64 bits.
	valBits atomic.Uint64

	// histogram state: per-bucket counts (last slot is +Inf), sum, count.
	bucketCounts []atomic.Uint64
	sumBits      atomic.Uint64
	count        atomic.Uint64
}

func addFloatBits(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (r *Registry) register(f *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.byName[f.name]; ok {
		// Same name re-registered: return the existing family so wiring
		// code can be idempotent (e.g. reload paths).
		return existing
	}
	r.byName[f.name] = f
	r.families = append(r.families, f)
	return f
}

// OnScrape registers fn to run at the start of every scrape, before
// rendering. Used to refresh snapshot-style gauges (runtime stats, live
// app counts) without polling.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.scrapeFns = append(r.scrapeFns, fn)
	r.mu.Unlock()
}

// labelKey joins label values into a child map key. \xff cannot appear in
// valid UTF-8 label values produced by this codebase.
func labelKey(values []string) string { return strings.Join(values, "\xff") }

// overflowKey is the children-map key of the cardinality-overflow child.
// It cannot collide with a real label set: \xff never appears in valid
// UTF-8 label values, so no joined key is the bare separator pair.
const overflowKey = "\xff\xff"

func renderLabelPairs(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func (f *family) child(labelValues []string) *child {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("serving: metric %s expects %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := labelKey(labelValues)
	f.mu.RLock()
	c := f.children[key]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c = f.children[key]; c != nil {
		return c
	}
	if f.maxChildren > 0 && len(f.children) >= f.maxChildren {
		// At the cardinality cap: fold this label set into the overflow
		// child instead of allocating per-value state. A million-app
		// fleet would otherwise hold a child (map entry, key, rendered
		// labels, value) per app ever seen — per-app serving state is
		// tiered and bounded, so the metrics must be too.
		if f.overflow == nil {
			other := make([]string, len(f.labelNames))
			for i := range other {
				other[i] = "_other"
			}
			f.overflow = &child{labelPairs: renderLabelPairs(f.labelNames, other)}
			if f.kind == "histogram" {
				f.overflow.bucketCounts = make([]atomic.Uint64, len(f.buckets)+1)
			}
			f.children[overflowKey] = f.overflow
			f.order = append(f.order, overflowKey)
		}
		return f.overflow
	}
	c = &child{labelPairs: renderLabelPairs(f.labelNames, labelValues)}
	if f.kind == "histogram" {
		c.bucketCounts = make([]atomic.Uint64, len(f.buckets)+1)
	}
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// reset drops all children (used when a labeled gauge's label set is
// replaced wholesale, e.g. model metadata after a hot reload).
func (f *family) reset() {
	f.mu.Lock()
	f.children = map[string]*child{}
	f.order = nil
	f.overflow = nil
	f.mu.Unlock()
}

// limitCardinality sets the family's distinct-label-set cap.
func (f *family) limitCardinality(n int) {
	f.mu.Lock()
	f.maxChildren = n
	f.mu.Unlock()
}

// Counter is a monotonically increasing metric family.
type Counter struct{ fam *family }

// NewCounter registers a counter family with the given label names.
func (r *Registry) NewCounter(name, help string, labelNames ...string) *Counter {
	f := r.register(&family{
		name: name, help: help, kind: "counter",
		labelNames: labelNames, children: map[string]*child{},
	})
	if len(f.labelNames) == 0 {
		f.child(nil) // unlabeled families render 0 before the first Inc
	}
	return &Counter{fam: f}
}

// Inc adds one to the child identified by labelValues.
func (c *Counter) Inc(labelValues ...string) { c.Add(1, labelValues...) }

// Add adds delta (must be >= 0) to the child identified by labelValues.
func (c *Counter) Add(delta float64, labelValues ...string) {
	if delta < 0 {
		panic("serving: counter decrease")
	}
	addFloatBits(&c.fam.child(labelValues).valBits, delta)
}

// Value reads the current value of one child (testing and self-checks).
func (c *Counter) Value(labelValues ...string) float64 {
	return math.Float64frombits(c.fam.child(labelValues).valBits.Load())
}

// LimitCardinality caps the number of distinct label sets this counter
// tracks; increments beyond the cap fold into a single child labeled
// "_other", keeping Sum exact while bounding memory on per-app families.
// Returns the counter for call chaining at registration sites.
func (c *Counter) LimitCardinality(n int) *Counter {
	c.fam.limitCardinality(n)
	return c
}

// Sum returns the sum across all children (testing and self-checks).
func (c *Counter) Sum() float64 {
	c.fam.mu.RLock()
	defer c.fam.mu.RUnlock()
	var s float64
	for _, ch := range c.fam.children {
		s += math.Float64frombits(ch.valBits.Load())
	}
	return s
}

// Gauge is a metric family whose value can move both ways.
type Gauge struct{ fam *family }

// NewGauge registers a gauge family with the given label names.
func (r *Registry) NewGauge(name, help string, labelNames ...string) *Gauge {
	f := r.register(&family{
		name: name, help: help, kind: "gauge",
		labelNames: labelNames, children: map[string]*child{},
	})
	if len(f.labelNames) == 0 {
		f.child(nil)
	}
	return &Gauge{fam: f}
}

// Set stores v in the child identified by labelValues.
func (g *Gauge) Set(v float64, labelValues ...string) {
	g.fam.child(labelValues).valBits.Store(math.Float64bits(v))
}

// Add adds delta to the child identified by labelValues.
func (g *Gauge) Add(delta float64, labelValues ...string) {
	addFloatBits(&g.fam.child(labelValues).valBits, delta)
}

// Value reads the current value of one child.
func (g *Gauge) Value(labelValues ...string) float64 {
	return math.Float64frombits(g.fam.child(labelValues).valBits.Load())
}

// Reset drops every child, so the next Set defines a fresh label set.
func (g *Gauge) Reset() { g.fam.reset() }

// NewGaugeFunc registers an unlabeled gauge whose value is read from fn at
// scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(&family{
		name: name, help: help, kind: "gauge",
		children: map[string]*child{}, fn: fn,
	})
}

// NewCounterFunc registers an unlabeled counter whose cumulative value is
// read from fn at scrape time (e.g. total GC cycles).
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	r.register(&family{
		name: name, help: help, kind: "counter",
		children: map[string]*child{}, fn: fn,
	})
}

// Histogram is a metric family of cumulative-bucket latency histograms.
type Histogram struct{ fam *family }

// NewHistogram registers a histogram family. buckets must be sorted
// ascending; the implicit +Inf bucket is added automatically.
func (r *Registry) NewHistogram(name, help string, buckets []float64, labelNames ...string) *Histogram {
	if len(buckets) == 0 {
		buckets = DefaultLatencyBuckets
	}
	if !sort.Float64sAreSorted(buckets) {
		panic("serving: histogram buckets not sorted")
	}
	return &Histogram{fam: r.register(&family{
		name: name, help: help, kind: "histogram",
		labelNames: labelNames, buckets: buckets,
		children: map[string]*child{},
	})}
}

// Observe records one value.
func (h *Histogram) Observe(v float64, labelValues ...string) {
	c := h.fam.child(labelValues)
	// Find the first bucket with upper bound >= v; +Inf is the last slot.
	idx := sort.SearchFloat64s(h.fam.buckets, v)
	c.bucketCounts[idx].Add(1)
	addFloatBits(&c.sumBits, v)
	c.count.Add(1)
}

// Count returns the total number of observations for one child.
func (h *Histogram) Count(labelValues ...string) uint64 {
	return h.fam.child(labelValues).count.Load()
}

// Handler returns an http.Handler rendering the registry in Prometheus
// text exposition format (version 0.0.4).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r.mu.RLock()
		fns := append([]func(){}, r.scrapeFns...)
		fams := append([]*family{}, r.families...)
		r.mu.RUnlock()
		for _, fn := range fns {
			fn()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		for _, f := range fams {
			f.render(&b)
		}
		fmt.Fprint(w, b.String())
	})
}

func (f *family) render(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	if f.fn != nil {
		fmt.Fprintf(b, "%s %s\n", f.name, formatValue(f.fn()))
		return
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, key := range f.order {
		c := f.children[key]
		switch f.kind {
		case "histogram":
			var cum uint64
			for i, ub := range f.buckets {
				cum += c.bucketCounts[i].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, leLabel(c.labelPairs, formatValue(ub)), cum)
			}
			cum += c.bucketCounts[len(f.buckets)].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, leLabel(c.labelPairs, "+Inf"), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, c.labelPairs, formatValue(math.Float64frombits(c.sumBits.Load())))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, c.labelPairs, c.count.Load())
		default:
			fmt.Fprintf(b, "%s%s %s\n", f.name, c.labelPairs, formatValue(math.Float64frombits(c.valBits.Load())))
		}
	}
}

// leLabel splices le="bound" into an existing (possibly empty) label set.
func leLabel(pairs, bound string) string {
	if pairs == "" {
		return `{le="` + bound + `"}`
	}
	return pairs[:len(pairs)-1] + `,le="` + bound + `"}`
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// RegisterGoMetrics adds Go runtime gauges (goroutines, heap, GC) that
// refresh once per scrape via a single ReadMemStats snapshot.
func (r *Registry) RegisterGoMetrics() {
	goroutines := r.NewGauge("go_goroutines", "Number of live goroutines.")
	heapAlloc := r.NewGauge("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.")
	heapSys := r.NewGauge("go_memstats_heap_sys_bytes", "Bytes of heap memory obtained from the OS.")
	totalAlloc := r.NewGauge("go_memstats_alloc_bytes_total", "Cumulative bytes allocated for heap objects.")
	gcCycles := r.NewGauge("go_gc_cycles_total", "Completed GC cycles.")
	gcPause := r.NewGauge("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.")
	r.OnScrape(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapSys.Set(float64(ms.HeapSys))
		totalAlloc.Set(float64(ms.TotalAlloc))
		gcCycles.Set(float64(ms.NumGC))
		gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
	})
}
