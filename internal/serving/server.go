package serving

import (
	"context"
	"errors"
	"net/http"
	"time"
)

// Run serves srv until stop is closed, then drains in-flight requests via
// context-aware graceful shutdown bounded by shutdownTimeout. It returns
// nil on a clean stop; logf (optional) narrates lifecycle transitions.
func Run(srv *http.Server, stop <-chan struct{}, shutdownTimeout time.Duration, logf func(format string, args ...interface{})) error {
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case <-stop:
		logf("shutting down, draining in-flight requests (timeout %s)", shutdownTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// Drain deadline exceeded: force-close lingering connections.
			srv.Close()
			return err
		}
		<-errc // ListenAndServe has returned ErrServerClosed.
		logf("shutdown complete")
		return nil
	}
}
