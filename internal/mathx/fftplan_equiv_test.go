package mathx

import (
	"math"
	"math/rand"
	"testing"
)

// The scratch-backed transforms must be bit-for-bit identical to the
// allocating reference path in fft.go — the forecast kernels rely on this
// so that workspace reuse never changes a forecast, a cache key, or a
// trained model.

func sameBits(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s: got %v (%#x) want %v (%#x)", name,
			got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

func fftTestLengths() []int {
	ls := []int{1, 2, 3, 4, 5, 7, 8, 10, 15, 16, 31, 32, 60, 64, 120, 128, 504, 600}
	return ls
}

func TestFFTScratchRealMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var ws FFTScratch
	// Interleave lengths (including repeats) so stale scratch state from a
	// longer transform would corrupt a shorter one if anything leaked.
	lens := append(fftTestLengths(), 600, 10, 504, 64, 10)
	for _, n := range lens {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		want := FFTReal(x)
		got := ws.FFTReal(x)
		if len(got) != len(want) {
			t.Fatalf("n=%d: len %d want %d", n, len(got), len(want))
		}
		for i := range want {
			sameBits(t, "real", real(got[i]), real(want[i]))
			sameBits(t, "imag", imag(got[i]), imag(want[i]))
		}
	}
}

func TestFFTScratchTopHarmonicsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ws FFTScratch
	for _, n := range fftTestLengths() {
		x := make([]float64, n)
		for i := range x {
			x[i] = 5 + 3*math.Sin(2*math.Pi*float64(i)/12) + rng.NormFloat64()
		}
		for _, k := range []int{1, 3, 10, n} {
			want := TopHarmonics(x, k)
			got := ws.TopHarmonics(x, k)
			if len(got) != len(want) {
				t.Fatalf("n=%d k=%d: len %d want %d", n, k, len(got), len(want))
			}
			for i := range want {
				if got[i].Index != want[i].Index {
					t.Fatalf("n=%d k=%d harmonic %d: index %d want %d", n, k, i, got[i].Index, want[i].Index)
				}
				sameBits(t, "amplitude", got[i].Amplitude, want[i].Amplitude)
				sameBits(t, "phase", got[i].Phase, want[i].Phase)
			}
		}
	}
}

func TestSynthesizeHarmonicsIntoMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	x := make([]float64, 60)
	for i := range x {
		x[i] = rng.Float64() * 4
	}
	hs := TopHarmonics(x, 10)
	for _, horizon := range []int{1, 5, 30} {
		want := SynthesizeHarmonics(-1.5, hs, 60, 60, horizon) // negative mean forces clamping
		dst := make([]float64, horizon)
		SynthesizeHarmonicsInto(-1.5, hs, 60, 60, horizon, dst, false)
		for i := range want {
			sameBits(t, "synth", dst[i], want[i])
		}
		SynthesizeHarmonicsInto(-1.5, hs, 60, 60, horizon, dst, true)
		clamped := 0
		for i := range want {
			w := want[i]
			if w < 0 || w != w {
				w = 0
				clamped++
			}
			sameBits(t, "synth-clamped", dst[i], w)
		}
		if horizon == 30 && clamped == 0 {
			t.Fatal("clamp path not exercised; adjust the test inputs")
		}
	}
}

func TestSolveLinearFlatMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		a := make([][]float64, n)
		flat := make([]float64, n*n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				v := rng.NormFloat64()
				if rng.Intn(5) == 0 {
					v = 0 // exercise the f == 0 elimination skip
				}
				a[i][j] = v
				flat[i*n+j] = v
			}
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want, wantErr := SolveLinear(a, b)
		bf := append([]float64(nil), b...)
		gotErr := SolveLinearFlat(flat, bf, n)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: err %v want %v", trial, gotErr, wantErr)
		}
		if wantErr != nil {
			continue
		}
		for i := range want {
			sameBits(t, "solution", bf[i], want[i])
		}
	}
}

func TestSolveLinearFlatSingular(t *testing.T) {
	flat := []float64{1, 2, 2, 4}
	b := []float64{1, 2}
	if err := SolveLinearFlat(flat, b, 2); err != ErrSingular {
		t.Fatalf("got %v want ErrSingular", err)
	}
}
