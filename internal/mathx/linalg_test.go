package mathx

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveLinearKnownSystem(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveLinearDoesNotModifyInputs(t *testing.T) {
	a := [][]float64{{4, 1}, {1, 3}}
	b := []float64{1, 2}
	if _, err := SolveLinear(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0][0] != 4 || a[1][1] != 3 || b[0] != 1 || b[1] != 2 {
		t.Error("SolveLinear modified its inputs")
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := SolveLinear(a, b); err == nil {
		t.Error("expected ErrSingular for a rank-deficient matrix")
	}
}

func TestSolveLinearDimensionErrors(t *testing.T) {
	if _, err := SolveLinear(nil, nil); err == nil {
		t.Error("expected error for empty system")
	}
	if _, err := SolveLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("expected error for non-square matrix")
	}
	if _, err := SolveLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("expected error for mismatched b")
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := [][]float64{
		{0, 1},
		{1, 0},
	}
	b := []float64{3, 7}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-7) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("got %v, want [7 3]", x)
	}
}

func TestSolveLinearRandomRoundTrip(t *testing.T) {
	// Property: for a random well-conditioned A and known x, solving A(Ax)
	// recovers x.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(12)
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
			}
			a[i][i] += float64(n) // diagonal dominance keeps it well-conditioned
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			b[i] = Dot(a[i], want)
		}
		got, err := SolveLinear(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-7 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestLeastSquaresExactFit(t *testing.T) {
	// y = 3 + 2*x fits exactly with design [1, x].
	x := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	y := []float64{3, 5, 7, 9}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-3) > 1e-6 || math.Abs(beta[1]-2) > 1e-6 {
		t.Errorf("beta = %v, want [3 2]", beta)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Noisy overdetermined system: recovered coefficients should be close
	// to the generating ones.
	rng := rand.New(rand.NewSource(12))
	n := 400
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x[i] = []float64{1, a, b}
		y[i] = 1.5 - 0.7*a + 2.2*b + 0.01*rng.NormFloat64()
	}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, -0.7, 2.2}
	for i := range want {
		if math.Abs(beta[i]-want[i]) > 0.01 {
			t.Errorf("beta[%d] = %v, want ~%v", i, beta[i], want[i])
		}
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Error("expected error for empty design")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("expected error for ragged design matrix")
	}
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Error("expected error for y length mismatch")
	}
}

func TestLeastSquaresNearConstantSeries(t *testing.T) {
	// A constant regressor column alongside an intercept is collinear; the
	// ridge term must keep this solvable rather than erroring out, because
	// idle applications produce exactly this design.
	x := make([][]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = []float64{1, 5}
		y[i] = 10
	}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatalf("collinear design should still solve: %v", err)
	}
	pred := beta[0] + 5*beta[1]
	if math.Abs(pred-10) > 1e-3 {
		t.Errorf("prediction = %v, want 10", pred)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Errorf("Dot(nil,nil) = %v, want 0", got)
	}
}
