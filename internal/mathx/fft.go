// Package mathx provides the numeric kernels shared by the forecasting,
// feature-extraction, and clustering packages: fast Fourier transforms,
// dense linear algebra, and small numeric helpers.
//
// Everything here is deterministic and allocation-conscious: these kernels
// sit on the hot path of the forecasting simulations, which evaluate every
// forecaster over every block of every application trace.
package mathx

import (
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the discrete Fourier transform of x.
// For power-of-two lengths it uses an iterative radix-2 Cooley-Tukey
// transform; other lengths go through Bluestein's algorithm so callers never
// need to pad. The input slice is not modified.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	if n&(n-1) == 0 {
		fftRadix2(out, false)
		return out
	}
	return bluestein(out, false)
}

// IFFT computes the inverse discrete Fourier transform of x, including the
// 1/n normalization, so IFFT(FFT(x)) == x up to floating-point error.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	if n&(n-1) == 0 {
		fftRadix2(out, true)
	} else {
		out = bluestein(out, true)
	}
	scale := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= scale
	}
	return out
}

// FFTReal transforms a real-valued series. It is the form used by the FFT
// forecaster and the periodicity feature.
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	if len(c) == 0 {
		return nil
	}
	if len(c)&(len(c)-1) == 0 {
		fftRadix2(c, false)
		return c
	}
	return bluestein(c, false)
}

// fftRadix2 performs an in-place iterative radix-2 FFT.
// inverse selects the conjugate transform (without normalization).
func fftRadix2(a []complex128, inverse bool) {
	n := len(a)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			a[i], a[j] = a[j], a[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
				w *= wStep
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution, enabling FFT
// of non-power-of-two series (block sizes like 504 minutes).
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp terms: w[k] = exp(sign * i*pi*k^2/n).
	w := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k*k may overflow for huge n; keep it modular in 2n.
		kk := (int64(k) * int64(k)) % int64(2*n)
		w[k] = cmplx.Exp(complex(0, sign*math.Pi*float64(kk)/float64(n)))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * w[k]
		b[k] = cmplx.Conj(w[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(w[k])
	}
	fftRadix2(a, false)
	fftRadix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftRadix2(a, true)
	invM := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * invM * w[k]
	}
	return out
}

// Harmonic describes one frequency component of a real series: its bin index
// in the DFT, amplitude, and phase. Frequency in cycles-per-sample is
// Index/N for a series of length N.
type Harmonic struct {
	Index     int
	Amplitude float64
	Phase     float64
}

// TopHarmonics returns the k largest-amplitude harmonics of x, excluding the
// DC component, ordered by descending amplitude. It is the basis of both the
// FFT forecaster (top-10 harmonics, §4.3.3) and the periodicity feature.
func TopHarmonics(x []float64, k int) []Harmonic {
	n := len(x)
	if n < 2 || k <= 0 {
		return nil
	}
	spec := FFTReal(x)
	half := n / 2
	hs := make([]Harmonic, 0, half)
	for i := 1; i <= half; i++ {
		amp := cmplx.Abs(spec[i]) * 2 / float64(n)
		hs = append(hs, Harmonic{Index: i, Amplitude: amp, Phase: cmplx.Phase(spec[i])})
	}
	// Partial selection sort: k is small (typically 10).
	if k > len(hs) {
		k = len(hs)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(hs); j++ {
			if hs[j].Amplitude > hs[best].Amplitude {
				best = j
			}
		}
		hs[i], hs[best] = hs[best], hs[i]
	}
	return hs[:k]
}

// SynthesizeHarmonics reconstructs a length-n series from a mean value and a
// set of harmonics taken from a length-period series, evaluated at sample
// offsets start..start+n-1. This extrapolates the periodic structure beyond
// the analysis window, which is how the FFT forecaster predicts.
func SynthesizeHarmonics(mean float64, hs []Harmonic, period, start, n int) []float64 {
	out := make([]float64, n)
	for t := 0; t < n; t++ {
		v := mean
		for _, h := range hs {
			angle := 2*math.Pi*float64(h.Index)*float64(start+t)/float64(period) + h.Phase
			v += h.Amplitude * math.Cos(angle)
		}
		out[t] = v
	}
	return out
}
