package mathx

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n^2) reference transform used to validate both FFT paths.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			s += x[t] * cmplx.Exp(complex(0, angle))
		}
		out[k] = s
	}
	return out
}

func complexClose(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func randomComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestFFTMatchesNaiveDFTPowerOfTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := randomComplex(rng, n)
		got := FFT(x)
		want := naiveDFT(x)
		if !complexClose(got, want, 1e-8*float64(n)) {
			t.Errorf("n=%d: FFT does not match naive DFT", n)
		}
	}
}

func TestFFTMatchesNaiveDFTArbitraryLength(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{3, 5, 7, 12, 100, 504} {
		x := randomComplex(rng, n)
		got := FFT(x)
		want := naiveDFT(x)
		if !complexClose(got, want, 1e-7*float64(n)) {
			t.Errorf("n=%d: Bluestein FFT does not match naive DFT", n)
		}
	}
}

func TestFFTDoesNotModifyInput(t *testing.T) {
	x := []complex128{1, 2, 3, 4, 5}
	orig := append([]complex128(nil), x...)
	FFT(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatalf("FFT modified input at %d", i)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 4, 17, 60, 128, 504} {
		x := randomComplex(rng, n)
		back := IFFT(FFT(x))
		if !complexClose(back, x, 1e-8*float64(n)) {
			t.Errorf("n=%d: IFFT(FFT(x)) != x", n)
		}
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	// Property: for any real series, round-tripping through FFT/IFFT
	// recovers the series.
	f := func(vals []float64) bool {
		if len(vals) == 0 || len(vals) > 512 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				return true
			}
		}
		x := make([]complex128, len(vals))
		for i, v := range vals {
			x[i] = complex(v, 0)
		}
		back := IFFT(FFT(x))
		for i := range back {
			if cmplx.Abs(back[i]-x[i]) > 1e-6*(1+math.Abs(vals[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	// Property: FFT(a*x + y) == a*FFT(x) + FFT(y).
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		x := randomComplex(rng, n)
		y := randomComplex(rng, n)
		a := complex(rng.NormFloat64(), 0)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a*x[i] + y[i]
		}
		left := FFT(sum)
		fx, fy := FFT(x), FFT(y)
		right := make([]complex128, n)
		for i := range right {
			right[i] = a*fx[i] + fy[i]
		}
		if !complexClose(left, right, 1e-7*float64(n)) {
			t.Fatalf("n=%d: FFT is not linear", n)
		}
	}
}

func TestFFTEmptyInput(t *testing.T) {
	if got := FFT(nil); got != nil {
		t.Errorf("FFT(nil) = %v, want nil", got)
	}
	if got := IFFT(nil); got != nil {
		t.Errorf("IFFT(nil) = %v, want nil", got)
	}
	if got := FFTReal(nil); got != nil {
		t.Errorf("FFTReal(nil) = %v, want nil", got)
	}
}

func TestTopHarmonicsPureSinusoid(t *testing.T) {
	// A pure cosine at bin 5 of a length-100 series must dominate.
	n := 100
	x := make([]float64, n)
	for i := range x {
		x[i] = 3 * math.Cos(2*math.Pi*5*float64(i)/float64(n))
	}
	hs := TopHarmonics(x, 3)
	if len(hs) != 3 {
		t.Fatalf("got %d harmonics, want 3", len(hs))
	}
	if hs[0].Index != 5 {
		t.Errorf("dominant harmonic index = %d, want 5", hs[0].Index)
	}
	if math.Abs(hs[0].Amplitude-3) > 1e-9 {
		t.Errorf("dominant amplitude = %v, want 3", hs[0].Amplitude)
	}
	if hs[1].Amplitude > 1e-9 {
		t.Errorf("second harmonic amplitude = %v, want ~0", hs[1].Amplitude)
	}
}

func TestTopHarmonicsExcludesDC(t *testing.T) {
	x := make([]float64, 64)
	for i := range x {
		x[i] = 42 // pure DC
	}
	hs := TopHarmonics(x, 5)
	for _, h := range hs {
		if h.Index == 0 {
			t.Fatal("TopHarmonics included the DC component")
		}
		if h.Amplitude > 1e-9 {
			t.Errorf("constant series should have zero harmonics, got %v", h.Amplitude)
		}
	}
}

func TestTopHarmonicsEdgeCases(t *testing.T) {
	if hs := TopHarmonics([]float64{1}, 3); hs != nil {
		t.Errorf("too-short series: got %v, want nil", hs)
	}
	if hs := TopHarmonics([]float64{1, 2, 3, 4}, 0); hs != nil {
		t.Errorf("k=0: got %v, want nil", hs)
	}
	// k larger than available bins is truncated, not an error.
	hs := TopHarmonics([]float64{1, 2, 3, 4}, 100)
	if len(hs) != 2 {
		t.Errorf("k clamp: got %d harmonics, want 2", len(hs))
	}
}

func TestSynthesizeHarmonicsReconstruction(t *testing.T) {
	// Synthesize from the full harmonic set: must reproduce the original
	// periodic series, including at extrapolated offsets.
	n := 64
	x := make([]float64, n)
	for i := range x {
		x[i] = 2 + math.Sin(2*math.Pi*4*float64(i)/float64(n)) + 0.5*math.Cos(2*math.Pi*9*float64(i)/float64(n))
	}
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	hs := TopHarmonics(x, n/2)
	rec := SynthesizeHarmonics(mean, hs, n, 0, 2*n)
	for i := 0; i < 2*n; i++ {
		if math.Abs(rec[i]-x[i%n]) > 1e-6 {
			t.Fatalf("reconstruction mismatch at %d: got %v want %v", i, rec[i], x[i%n])
		}
	}
}

func BenchmarkFFT512(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := randomComplex(rng, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFT504Bluestein(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x := randomComplex(rng, 504)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}
