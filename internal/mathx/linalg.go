package mathx

import (
	"errors"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("mathx: singular matrix")

// SolveLinear solves A x = b by Gaussian elimination with partial pivoting.
// A is given in row-major order as a slice of rows and is not modified.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, errors.New("mathx: dimension mismatch")
	}
	// Work on copies: the callers reuse their matrices across lags.
	m := make([][]float64, n)
	for i := range a {
		if len(a[i]) != n {
			return nil, errors.New("mathx: matrix is not square")
		}
		m[i] = append([]float64(nil), a[i]...)
	}
	x := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		maxAbs := math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r][col]); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		x[col], x[pivot] = x[pivot], x[col]

		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		s := x[col]
		for c := col + 1; c < n; c++ {
			s -= m[col][c] * x[c]
		}
		x[col] = s / m[col][col]
	}
	return x, nil
}

// LeastSquares fits y ~= X beta by solving the normal equations
// (X'X) beta = X'y. X is row-major with one observation per row.
// A small ridge term stabilizes near-collinear designs, which occur for
// constant or nearly-constant traffic series.
func LeastSquares(x [][]float64, y []float64) ([]float64, error) {
	rows := len(x)
	if rows == 0 || len(y) != rows {
		return nil, errors.New("mathx: dimension mismatch")
	}
	cols := len(x[0])
	xtx := make([][]float64, cols)
	for i := range xtx {
		xtx[i] = make([]float64, cols)
	}
	xty := make([]float64, cols)
	for r := 0; r < rows; r++ {
		row := x[r]
		if len(row) != cols {
			return nil, errors.New("mathx: ragged design matrix")
		}
		for i := 0; i < cols; i++ {
			vi := row[i]
			if vi == 0 {
				continue
			}
			for j := i; j < cols; j++ {
				xtx[i][j] += vi * row[j]
			}
			xty[i] += vi * y[r]
		}
	}
	// Mirror the upper triangle and add ridge.
	const ridge = 1e-9
	for i := 0; i < cols; i++ {
		xtx[i][i] += ridge
		for j := i + 1; j < cols; j++ {
			xtx[j][i] = xtx[i][j]
		}
	}
	return SolveLinear(xtx, xty)
}

// SolveLinearFlat solves A x = b like SolveLinear, but A is a row-major
// flat n×n matrix and both A and b are destroyed in place: the solution is
// left in b. The pivoting and elimination perform the same floating-point
// operations in the same order as SolveLinear (rows are swapped by element
// instead of by pointer, which moves the same values), so the result is
// bit-identical. This is the zero-allocation path used by the forecast
// workspace kernels.
func SolveLinearFlat(m []float64, b []float64, n int) error {
	if n == 0 || len(m) != n*n || len(b) != n {
		return errors.New("mathx: dimension mismatch")
	}
	for col := 0; col < n; col++ {
		pivot := col
		maxAbs := math.Abs(m[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r*n+col]); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs < 1e-12 {
			return ErrSingular
		}
		if pivot != col {
			rc, rp := m[col*n:col*n+n], m[pivot*n:pivot*n+n]
			for c := range rc {
				rc[c], rp[c] = rp[c], rc[c]
			}
			b[col], b[pivot] = b[pivot], b[col]
		}
		inv := 1 / m[col*n+col]
		base := m[col*n : col*n+n]
		for r := col + 1; r < n; r++ {
			row := m[r*n : r*n+n]
			f := row[col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				row[c] -= f * base[c]
			}
			b[r] -= f * b[col]
		}
	}
	for col := n - 1; col >= 0; col-- {
		s := b[col]
		row := m[col*n : col*n+n]
		for c := col + 1; c < n; c++ {
			s -= row[c] * b[c]
		}
		b[col] = s / row[col]
	}
	return nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Clamp restricts v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
