// Package characterize computes the workload statistics reported in the
// paper's characterization (§3, Figs 1-7) and appendix (Figs 15-16) from a
// trace dataset: traffic seasonality, inter-arrival-time distributions,
// execution-time distributions and variability, platform-delay
// distributions, configuration shares, and cross-workload traffic shares.
package characterize

import (
	"sort"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/stats"
	"github.com/ubc-cirrus-lab/femux-go/internal/trace"
)

// Traffic buckets the dataset's invocations into fixed windows (Fig 1 uses
// hours) and returns the counts.
func Traffic(d *trace.Dataset, bucket time.Duration) []float64 {
	if bucket <= 0 {
		bucket = time.Hour
	}
	n := int(d.Horizon/bucket) + 1
	out := make([]float64, n)
	for _, a := range d.Apps {
		for _, inv := range a.Invocations {
			b := int(inv.Arrival / bucket)
			if b >= 0 && b < n {
				out[b]++
			}
		}
	}
	return out
}

// SeasonalityStats summarizes Fig 1: the peak-to-trough span of daily
// traffic relative to peak, separately for weekdays and weekends, and the
// ratio of late-trace to early-trace volume (the seasonal ramp).
type SeasonalityStats struct {
	WeekdaySpan  float64 // (peak - trough) / peak over mean weekday hours
	WeekendSpan  float64
	SeasonalGain float64 // second-half volume / first-half volume
}

// Seasonality computes SeasonalityStats from hourly traffic counts. At
// least one full day is required; weekend statistics stay zero until the
// trace covers a weekend.
func Seasonality(hourly []float64) SeasonalityStats {
	var s SeasonalityStats
	if len(hourly) < 24 {
		return s
	}
	// Average each hour-of-day across weekdays and weekends.
	var wk, we [24]float64
	var wkN, weN [24]int
	for h, v := range hourly {
		day := (h / 24) % 7
		hod := h % 24
		if day >= 5 {
			we[hod] += v
			weN[hod]++
		} else {
			wk[hod] += v
			wkN[hod]++
		}
	}
	span := func(sum [24]float64, n [24]int) float64 {
		peak, trough := 0.0, -1.0
		for h := 0; h < 24; h++ {
			if n[h] == 0 {
				continue
			}
			avg := sum[h] / float64(n[h])
			if avg > peak {
				peak = avg
			}
			if trough < 0 || avg < trough {
				trough = avg
			}
		}
		if peak <= 0 || trough < 0 {
			return 0
		}
		return (peak - trough) / peak
	}
	s.WeekdaySpan = span(wk, wkN)
	s.WeekendSpan = span(we, weN)

	half := len(hourly) / 2
	var first, second float64
	for i, v := range hourly {
		if i < half {
			first += v
		} else {
			second += v
		}
	}
	if first > 0 {
		s.SeasonalGain = second / first
	}
	return s
}

// IATStats summarizes Fig 2.
type IATStats struct {
	// Invocation-level.
	SubSecondInvFrac float64 // share of all IATs under 1 s (paper: 94.5%)
	SubMinuteInvFrac float64 // share under 60 s (paper: 99.8%)
	// Workload-level.
	SubSecondMedianFrac float64 // workloads with median IAT < 1 s (paper: 46%)
	SubMinuteMedianFrac float64 // workloads with median IAT < 60 s (paper: 86%)
	CVAbove1Frac        float64 // workloads with IAT CV > 1 (paper: 96%)
	MedianIATs          []float64
	P99IATs             []float64
}

// IAT computes the inter-arrival-time characterization. Workloads with
// fewer than minInvocations invocations are excluded from workload-level
// statistics (they have no meaningful IAT distribution).
func IAT(d *trace.Dataset, minInvocations int) IATStats {
	if minInvocations < 2 {
		minInvocations = 2
	}
	var out IATStats
	var subSec, subMin, total int
	var apps, medSec, medMin, cvHigh int
	for _, a := range d.Apps {
		iats := a.IATs()
		for _, v := range iats {
			total++
			if v < 1 {
				subSec++
			}
			if v < 60 {
				subMin++
			}
		}
		if len(a.Invocations) < minInvocations {
			continue
		}
		apps++
		med := stats.Median(iats)
		out.MedianIATs = append(out.MedianIATs, med)
		out.P99IATs = append(out.P99IATs, stats.Percentile(iats, 99))
		if med < 1 {
			medSec++
		}
		if med < 60 {
			medMin++
		}
		if stats.CV(iats) > 1 {
			cvHigh++
		}
	}
	if total > 0 {
		out.SubSecondInvFrac = float64(subSec) / float64(total)
		out.SubMinuteInvFrac = float64(subMin) / float64(total)
	}
	if apps > 0 {
		out.SubSecondMedianFrac = float64(medSec) / float64(apps)
		out.SubMinuteMedianFrac = float64(medMin) / float64(apps)
		out.CVAbove1Frac = float64(cvHigh) / float64(apps)
	}
	return out
}

// ExecStats summarizes Figs 3 and 4.
type ExecStats struct {
	SubSecondAppFrac float64   // apps with mean exec < 1 s (paper: 82%)
	SubSecondInvFrac float64   // invocations with exec < 1 s (paper: 96%)
	MedianOfMeans    float64   // median per-app mean (paper: ~10 ms)
	MedianOfP99s     float64   // median per-app p99 (paper: ~800 ms)
	AppMeans         []float64 // per-app mean exec seconds
	AppP99s          []float64
}

// Exec computes the execution-time characterization.
func Exec(d *trace.Dataset) ExecStats {
	var out ExecStats
	var subSecApps, apps int
	var subSecInv, totalInv int
	for _, a := range d.Apps {
		if len(a.Invocations) == 0 {
			continue
		}
		durs := a.Durations()
		for _, v := range durs {
			totalInv++
			if v < 1 {
				subSecInv++
			}
		}
		apps++
		mean := stats.Mean(durs)
		out.AppMeans = append(out.AppMeans, mean)
		out.AppP99s = append(out.AppP99s, stats.Percentile(durs, 99))
		if mean < 1 {
			subSecApps++
		}
	}
	if apps > 0 {
		out.SubSecondAppFrac = float64(subSecApps) / float64(apps)
		out.MedianOfMeans = stats.Median(out.AppMeans)
		out.MedianOfP99s = stats.Median(out.AppP99s)
	}
	if totalInv > 0 {
		out.SubSecondInvFrac = float64(subSecInv) / float64(totalInv)
	}
	return out
}

// DelayStats summarizes Fig 6 from per-app platform-delay samples (seconds).
type DelayStats struct {
	SubMsInvFrac      float64 // invocations with delay < 1 ms
	P99Below10msFrac  float64 // workloads with p99 delay < 10 ms (paper: 73%)
	P99Above1sFrac    float64 // workloads with p99 delay > 1 s (paper: ~20%)
	P99Above10sFrac   float64 // workloads with p99 delay > 10 s (paper: ~9%)
	MaxDelay          float64 // the extreme tail (paper: > 300 s)
	WorkloadP99Delays []float64
}

// PlatformDelay computes the delay characterization from per-app delay
// vectors (as produced by the event simulator or Knative emulation).
func PlatformDelay(perApp [][]float64) DelayStats {
	var out DelayStats
	var subMs, total int
	var apps int
	for _, delays := range perApp {
		if len(delays) == 0 {
			continue
		}
		apps++
		for _, v := range delays {
			total++
			if v < 0.001 {
				subMs++
			}
			if v > out.MaxDelay {
				out.MaxDelay = v
			}
		}
		out.WorkloadP99Delays = append(out.WorkloadP99Delays, stats.Percentile(delays, 99))
	}
	if total > 0 {
		out.SubMsInvFrac = float64(subMs) / float64(total)
	}
	if apps > 0 {
		out.P99Below10msFrac = stats.FractionBelow(out.WorkloadP99Delays, 0.010)
		out.P99Above1sFrac = 1 - stats.CDFAt(out.WorkloadP99Delays, 1)
		out.P99Above10sFrac = 1 - stats.CDFAt(out.WorkloadP99Delays, 10)
	}
	return out
}

// ConfigStats summarizes Fig 7: how users alter the default configurations.
type ConfigStats struct {
	CPUDefaultFrac, CPUBelowFrac, CPUAboveFrac     float64
	MemDefaultFrac, MemBelowFrac, MemAboveFrac     float64
	MinScale0Frac, MinScale1Frac, MinScaleMoreFrac float64
	ConcDefaultFrac, ConcBelowFrac, ConcAboveFrac  float64
}

// Configs computes the configuration shares over the dataset's apps.
func Configs(d *trace.Dataset) ConfigStats {
	var out ConfigStats
	n := float64(len(d.Apps))
	if n == 0 {
		return out
	}
	for _, a := range d.Apps {
		c := a.Config
		switch {
		case c.CPU == 1:
			out.CPUDefaultFrac++
		case c.CPU < 1:
			out.CPUBelowFrac++
		default:
			out.CPUAboveFrac++
		}
		switch {
		case c.MemoryGB == 4:
			out.MemDefaultFrac++
		case c.MemoryGB < 4:
			out.MemBelowFrac++
		default:
			out.MemAboveFrac++
		}
		switch {
		case c.MinScale == 0:
			out.MinScale0Frac++
		case c.MinScale == 1:
			out.MinScale1Frac++
		default:
			out.MinScaleMoreFrac++
		}
		switch {
		case c.Concurrency == 100:
			out.ConcDefaultFrac++
		case c.Concurrency < 100:
			out.ConcBelowFrac++
		default:
			out.ConcAboveFrac++
		}
	}
	div := func(v *float64) { *v /= n }
	for _, v := range []*float64{
		&out.CPUDefaultFrac, &out.CPUBelowFrac, &out.CPUAboveFrac,
		&out.MemDefaultFrac, &out.MemBelowFrac, &out.MemAboveFrac,
		&out.MinScale0Frac, &out.MinScale1Frac, &out.MinScaleMoreFrac,
		&out.ConcDefaultFrac, &out.ConcBelowFrac, &out.ConcAboveFrac,
	} {
		div(v)
	}
	return out
}

// TrafficShares returns each workload's share of total traffic, sorted
// descending (Fig 15). The second return value counts workloads with at
// least 10% of the busiest workload's traffic.
func TrafficShares(d *trace.Dataset) (shares []float64, atLeastTenthOfMax int) {
	counts := make([]float64, 0, len(d.Apps))
	var total float64
	for _, a := range d.Apps {
		c := float64(len(a.Invocations))
		counts = append(counts, c)
		total += c
	}
	if total == 0 {
		return nil, 0
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(counts)))
	max := counts[0]
	shares = make([]float64, len(counts))
	for i, c := range counts {
		shares[i] = c / total
		if max > 0 && c >= max/10 {
			atLeastTenthOfMax++
		}
	}
	return shares, atLeastTenthOfMax
}

// HourlySeries returns an app's hourly invocation counts (Fig 16).
func HourlySeries(a *trace.App, horizon time.Duration) []float64 {
	n := int(horizon/time.Hour) + 1
	out := make([]float64, n)
	for _, inv := range a.Invocations {
		h := int(inv.Arrival / time.Hour)
		if h >= 0 && h < n {
			out[h]++
		}
	}
	return out
}
