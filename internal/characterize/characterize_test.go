package characterize

import (
	"math"
	"testing"
	"time"

	"github.com/ubc-cirrus-lab/femux-go/internal/trace"
)

func synthApp(name string, arrivalsSec []float64, durSec float64, cfg trace.Config) *trace.App {
	a := &trace.App{Name: name, Config: cfg}
	for _, s := range arrivalsSec {
		a.Invocations = append(a.Invocations, trace.Invocation{
			Arrival:  time.Duration(s * float64(time.Second)),
			Duration: time.Duration(durSec * float64(time.Second)),
		})
	}
	return a
}

func TestTrafficBuckets(t *testing.T) {
	d := &trace.Dataset{Horizon: 3 * time.Hour}
	d.Apps = append(d.Apps, synthApp("a", []float64{10, 20, 3700, 7300}, 0.1, trace.DefaultConfig()))
	got := Traffic(d, time.Hour)
	if got[0] != 2 || got[1] != 1 || got[2] != 1 {
		t.Errorf("traffic = %v", got)
	}
}

func TestSeasonality(t *testing.T) {
	// Two weeks of synthetic hourly counts: weekday peak 100/trough 40,
	// weekend peak 50/trough 30, constant across weeks.
	hourly := make([]float64, 14*24)
	for h := range hourly {
		day := (h / 24) % 7
		hod := h % 24
		base := 100.0
		trough := 40.0
		if day >= 5 {
			base, trough = 50, 30
		}
		hourly[h] = trough + (base-trough)*0.5*(1+math.Cos(2*math.Pi*float64(hod-14)/24))
	}
	s := Seasonality(hourly)
	if math.Abs(s.WeekdaySpan-0.6) > 0.02 {
		t.Errorf("weekday span = %v, want ~0.6", s.WeekdaySpan)
	}
	if math.Abs(s.WeekendSpan-0.4) > 0.02 {
		t.Errorf("weekend span = %v, want ~0.4", s.WeekendSpan)
	}
	if math.Abs(s.SeasonalGain-1) > 0.05 {
		t.Errorf("seasonal gain = %v, want ~1 (flat)", s.SeasonalGain)
	}
	if Seasonality(nil) != (SeasonalityStats{}) {
		t.Error("short input should return zero stats")
	}
}

func TestIATStats(t *testing.T) {
	d := &trace.Dataset{Horizon: time.Hour}
	// App with all sub-second IATs (0.5 s apart).
	fast := make([]float64, 101)
	for i := range fast {
		fast[i] = float64(i) * 0.5
	}
	// App with 2-minute IATs.
	slow := make([]float64, 11)
	for i := range slow {
		slow[i] = float64(i) * 120
	}
	d.Apps = append(d.Apps,
		synthApp("fast", fast, 0.1, trace.DefaultConfig()),
		synthApp("slow", slow, 0.1, trace.DefaultConfig()),
	)
	s := IAT(d, 2)
	wantSubSec := 100.0 / 110.0
	if math.Abs(s.SubSecondInvFrac-wantSubSec) > 1e-9 {
		t.Errorf("sub-second frac = %v, want %v", s.SubSecondInvFrac, wantSubSec)
	}
	if s.SubSecondMedianFrac != 0.5 {
		t.Errorf("sub-second median frac = %v, want 0.5", s.SubSecondMedianFrac)
	}
	if s.SubMinuteMedianFrac != 0.5 {
		t.Errorf("sub-minute median frac = %v, want 0.5", s.SubMinuteMedianFrac)
	}
	if len(s.MedianIATs) != 2 || len(s.P99IATs) != 2 {
		t.Errorf("per-app IAT vectors missing: %d/%d", len(s.MedianIATs), len(s.P99IATs))
	}
	// Constant IATs -> CV 0 for both apps.
	if s.CVAbove1Frac != 0 {
		t.Errorf("CV frac = %v, want 0 for constant IATs", s.CVAbove1Frac)
	}
}

func TestExecStats(t *testing.T) {
	d := &trace.Dataset{Horizon: time.Hour}
	d.Apps = append(d.Apps,
		synthApp("short", []float64{1, 2, 3, 4}, 0.01, trace.DefaultConfig()),
		synthApp("long", []float64{1, 2}, 5, trace.DefaultConfig()),
		&trace.App{Name: "idle", Config: trace.DefaultConfig()}, // no invocations
	)
	s := Exec(d)
	if s.SubSecondAppFrac != 0.5 {
		t.Errorf("sub-second app frac = %v, want 0.5", s.SubSecondAppFrac)
	}
	wantInvFrac := 4.0 / 6.0
	if math.Abs(s.SubSecondInvFrac-wantInvFrac) > 1e-9 {
		t.Errorf("sub-second inv frac = %v, want %v", s.SubSecondInvFrac, wantInvFrac)
	}
	if len(s.AppMeans) != 2 {
		t.Errorf("idle app should be excluded: %d", len(s.AppMeans))
	}
}

func TestPlatformDelay(t *testing.T) {
	perApp := [][]float64{
		{0.0001, 0.0002, 0.0001}, // fast app: p99 < 10 ms
		{0.0001, 0.0001, 2.0},    // tail app: p99 > 1 s
		{0.0001, 0.0002, 350},    // extreme app
		nil,                      // idle app ignored
	}
	s := PlatformDelay(perApp)
	if s.MaxDelay != 350 {
		t.Errorf("max delay = %v", s.MaxDelay)
	}
	if math.Abs(s.P99Below10msFrac-1.0/3) > 1e-9 {
		t.Errorf("p99<10ms frac = %v, want 1/3", s.P99Below10msFrac)
	}
	if math.Abs(s.P99Above1sFrac-2.0/3) > 1e-9 {
		t.Errorf("p99>1s frac = %v, want 2/3", s.P99Above1sFrac)
	}
	if math.Abs(s.P99Above10sFrac-1.0/3) > 1e-9 {
		t.Errorf("p99>10s frac = %v, want 1/3", s.P99Above10sFrac)
	}
	wantSubMs := 7.0 / 9.0
	if math.Abs(s.SubMsInvFrac-wantSubMs) > 1e-9 {
		t.Errorf("sub-ms frac = %v, want %v", s.SubMsInvFrac, wantSubMs)
	}
}

func TestConfigs(t *testing.T) {
	mk := func(cpu, mem float64, conc, minScale int) *trace.App {
		cfg := trace.DefaultConfig()
		cfg.CPU = cpu
		cfg.MemoryGB = mem
		cfg.Concurrency = conc
		cfg.MinScale = minScale
		return &trace.App{Config: cfg}
	}
	d := &trace.Dataset{Apps: []*trace.App{
		mk(1, 4, 100, 0),
		mk(0.5, 2, 100, 1),
		mk(2, 8, 1000, 1),
		mk(1, 4, 1, 3),
	}}
	s := Configs(d)
	if s.CPUDefaultFrac != 0.5 || s.CPUBelowFrac != 0.25 || s.CPUAboveFrac != 0.25 {
		t.Errorf("cpu fracs = %+v", s)
	}
	if s.MinScale0Frac != 0.25 || s.MinScale1Frac != 0.5 || s.MinScaleMoreFrac != 0.25 {
		t.Errorf("min scale fracs = %+v", s)
	}
	if s.ConcDefaultFrac != 0.5 || s.ConcAboveFrac != 0.25 || s.ConcBelowFrac != 0.25 {
		t.Errorf("concurrency fracs = %+v", s)
	}
	if Configs(&trace.Dataset{}) != (ConfigStats{}) {
		t.Error("empty dataset should be zero stats")
	}
}

func TestTrafficShares(t *testing.T) {
	d := &trace.Dataset{Horizon: time.Hour}
	mk := func(n int) *trace.App {
		arr := make([]float64, n)
		for i := range arr {
			arr[i] = float64(i)
		}
		return synthApp("x", arr, 0.1, trace.DefaultConfig())
	}
	d.Apps = []*trace.App{mk(100), mk(50), mk(5)}
	shares, big := TrafficShares(d)
	if len(shares) != 3 {
		t.Fatalf("shares = %v", shares)
	}
	if shares[0] < shares[1] || shares[1] < shares[2] {
		t.Error("shares not sorted descending")
	}
	if math.Abs(shares[0]-100.0/155) > 1e-9 {
		t.Errorf("top share = %v", shares[0])
	}
	if big != 2 { // 100 and 50 are >= 10; 5 is below 10%of max
		t.Errorf("atLeastTenthOfMax = %d, want 2", big)
	}
	if s, n := TrafficShares(&trace.Dataset{}); s != nil || n != 0 {
		t.Error("empty dataset should return nil")
	}
}

func TestHourlySeries(t *testing.T) {
	a := synthApp("a", []float64{10, 3599, 3601, 7300}, 0.1, trace.DefaultConfig())
	got := HourlySeries(a, 3*time.Hour)
	if got[0] != 2 || got[1] != 1 || got[2] != 1 {
		t.Errorf("hourly = %v", got)
	}
}

func TestCharacterizationOnGeneratedDataset(t *testing.T) {
	// End-to-end: the synthetic IBM dataset must land near the published
	// headline numbers (tolerances widened for small scale).
	d := trace.GenerateIBM(trace.IBMGenConfig{Seed: 30, Apps: 120, Days: 1, TrafficScale: 1})
	iat := IAT(d, 5)
	if iat.SubSecondInvFrac < 0.85 {
		t.Errorf("sub-second IAT fraction = %v (paper 0.945)", iat.SubSecondInvFrac)
	}
	if iat.CVAbove1Frac < 0.8 {
		t.Errorf("CV>1 fraction = %v (paper 0.96)", iat.CVAbove1Frac)
	}
	exec := Exec(d)
	if exec.SubSecondAppFrac < 0.6 || exec.SubSecondAppFrac > 0.95 {
		t.Errorf("sub-second app fraction = %v (paper 0.82)", exec.SubSecondAppFrac)
	}
	if exec.MedianOfP99s < exec.MedianOfMeans*5 {
		t.Errorf("exec variability too low: median mean %v vs median p99 %v",
			exec.MedianOfMeans, exec.MedianOfP99s)
	}
	cfgs := Configs(d)
	if cfgs.MinScale1Frac+cfgs.MinScaleMoreFrac < 0.5 {
		t.Errorf("min-scale>=1 share = %v (paper 0.588)",
			cfgs.MinScale1Frac+cfgs.MinScaleMoreFrac)
	}
}
